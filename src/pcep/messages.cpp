#include "pcep/messages.hpp"

#include <stdexcept>

namespace lispcp::pcep {

std::string to_string(MessageType type) {
  switch (type) {
    case MessageType::kOpen: return "Open";
    case MessageType::kKeepalive: return "Keepalive";
    case MessageType::kRequest: return "PCReq";
    case MessageType::kReply: return "PCRep";
    case MessageType::kError: return "PCErr";
    case MessageType::kClose: return "Close";
  }
  return "?";
}

void Message::serialize(net::ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(kPcepVersion << 5));  // version | flags(0)
  w.u8(static_cast<std::uint8_t>(type()));
  w.u16(static_cast<std::uint16_t>(wire_size()));
  serialize_body(w);
}

std::shared_ptr<const Message> parse_message(net::ByteReader& r) {
  const std::uint8_t ver_flags = r.u8();
  if ((ver_flags >> 5) != kPcepVersion) {
    throw std::invalid_argument("PCEP: unsupported version");
  }
  const std::uint8_t raw_type = r.u8();
  const std::uint16_t length = r.u16();
  if (length < kCommonHeaderSize ||
      static_cast<std::size_t>(length - kCommonHeaderSize) > r.remaining()) {
    throw std::invalid_argument("PCEP: length field exceeds message");
  }
  const std::size_t body_len = length - kCommonHeaderSize;
  const std::size_t before = r.remaining();

  std::shared_ptr<const Message> parsed;
  switch (static_cast<MessageType>(raw_type)) {
    case MessageType::kOpen: {
      const auto keepalive = r.u8();
      const auto dead = r.u8();
      parsed = std::make_shared<Open>(keepalive, dead, r.u8());
      break;
    }
    case MessageType::kKeepalive:
      parsed = std::make_shared<Keepalive>();
      break;
    case MessageType::kRequest: {
      const auto id = r.u32();
      parsed = std::make_shared<MapComputationRequest>(
          id, net::Ipv4Address(r.u32()));
      break;
    }
    case MessageType::kReply: {
      const auto id = r.u32();
      if (r.u8() != 0) {
        parsed = std::make_shared<MapComputationReply>(
            id, lisp::parse_map_entry(r));
      } else {
        parsed = std::make_shared<MapComputationReply>(id);
      }
      break;
    }
    case MessageType::kError:
      parsed = std::make_shared<Error>(static_cast<Error::Kind>(r.u8()));
      break;
    case MessageType::kClose:
      parsed = std::make_shared<Close>(static_cast<Close::Reason>(r.u8()));
      break;
    default:
      throw std::invalid_argument("PCEP: unknown message type " +
                                  std::to_string(raw_type));
  }
  if (before - r.remaining() != body_len) {
    throw std::invalid_argument("PCEP: body length disagrees with header");
  }
  return parsed;
}

std::string Open::describe() const {
  return "PCEP-Open keepalive=" + std::to_string(keepalive_seconds_) +
         "s dead=" + std::to_string(dead_seconds_) +
         "s sid=" + std::to_string(session_id_);
}

void Open::serialize_body(net::ByteWriter& w) const {
  w.u8(keepalive_seconds_);
  w.u8(dead_seconds_);
  w.u8(session_id_);
}

std::string MapComputationRequest::describe() const {
  return "PCEP-PCReq id=" + std::to_string(request_id_) + " eid=" +
         eid_.to_string();
}

void MapComputationRequest::serialize_body(net::ByteWriter& w) const {
  w.u32(request_id_);
  w.address(eid_);
}

const lisp::MapEntry& MapComputationReply::mapping() const {
  if (!mapping_.has_value()) {
    throw std::logic_error("MapComputationReply::mapping on NO-PATH reply");
  }
  return *mapping_;
}

std::size_t MapComputationReply::body_size() const noexcept {
  return 5 + (mapping_.has_value() ? lisp::map_entry_wire_size(*mapping_) : 0);
}

void MapComputationReply::serialize_body(net::ByteWriter& w) const {
  w.u32(request_id_);
  w.u8(mapping_.has_value() ? 1 : 0);
  if (mapping_.has_value()) lisp::serialize_map_entry(w, *mapping_);
}

std::string MapComputationReply::describe() const {
  if (no_path()) return "PCEP-PCRep id=" + std::to_string(request_id_) + " NO-PATH";
  return "PCEP-PCRep id=" + std::to_string(request_id_) + " map=[" +
         mapping_->to_string() + "]";
}

std::string Error::describe() const {
  return "PCEP-PCErr kind=" + std::to_string(static_cast<int>(kind_));
}

void Error::serialize_body(net::ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(kind_));
}

std::string Close::describe() const {
  return "PCEP-Close reason=" + std::to_string(static_cast<int>(reason_));
}

void Close::serialize_body(net::ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(reason_));
}

}  // namespace lispcp::pcep
