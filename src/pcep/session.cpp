#include "pcep/session.hpp"

#include <algorithm>
#include <vector>

namespace lispcp::pcep {

std::string to_string(SessionState state) {
  switch (state) {
    case SessionState::kIdle: return "Idle";
    case SessionState::kOpenWait: return "OpenWait";
    case SessionState::kKeepWait: return "KeepWait";
    case SessionState::kUp: return "Up";
    case SessionState::kClosed: return "Closed";
  }
  return "?";
}

Session::Session(sim::Simulator& sim, SessionConfig config, SendFn send)
    : sim_(sim), config_(config), send_(std::move(send)) {
  if (!send_) {
    throw std::invalid_argument("pcep::Session: send function is required");
  }
  if (config_.dead_factor == 0) {
    throw std::invalid_argument("pcep::Session: dead_factor must be >= 1");
  }
}

void Session::transmit(std::shared_ptr<const Message> message) {
  send_(std::move(message));
}

void Session::open() {
  if (state_ != SessionState::kIdle) return;
  state_ = SessionState::kOpenWait;
  send_open();
  arm_dead_timer();
}

void Session::send_open() {
  const auto keepalive_s = static_cast<std::uint8_t>(
      std::min<std::int64_t>(255, config_.keepalive.ns() / 1'000'000'000));
  const auto dead_s = static_cast<std::uint8_t>(std::min<std::uint32_t>(
      255, static_cast<std::uint32_t>(keepalive_s) * config_.dead_factor));
  ++stats_.opens_sent;
  sent_open_ = true;
  transmit(std::make_shared<Open>(keepalive_s, dead_s, config_.session_id));

  // Retransmit until the handshake completes or the budget runs out.  The
  // retry is foreground on purpose: an opening session *is* pending work.
  open_retry_timer_ = sim_.schedule(config_.open_retry, [this] {
    if (state_ == SessionState::kUp || state_ == SessionState::kClosed) return;
    if (open_retries_ >= config_.max_open_retries) {
      enter_closed();
      return;
    }
    ++open_retries_;
    send_open();
  });
}

void Session::close(Close::Reason reason) {
  if (state_ == SessionState::kClosed) return;
  transmit(std::make_shared<Close>(reason));
  enter_closed();
}

void Session::enter_closed() {
  state_ = SessionState::kClosed;
  open_retry_timer_.cancel();
  keepalive_timer_.cancel();
  dead_timer_.cancel();
  fail_all_outstanding();
}

void Session::fail_all_outstanding() {
  // Handlers may re-enter the session; detach state first.
  std::vector<ReplyHandler> handlers;
  handlers.reserve(outstanding_.size());
  for (auto& [id, pending] : outstanding_) {
    pending.timeout.cancel();
    handlers.push_back(std::move(pending.handler));
    ++stats_.requests_failed;
  }
  outstanding_.clear();
  queued_.clear();
  for (auto& handler : handlers) {
    if (handler) handler(std::nullopt);
  }
}

void Session::arm_dead_timer() {
  dead_timer_.cancel();
  if (state_ == SessionState::kClosed) return;
  const auto dead = sim::SimDuration::nanos(config_.keepalive.ns() *
                                            config_.dead_factor);
  // Daemon: supervision must not keep an unbounded run() alive.
  dead_timer_ = sim_.schedule_daemon(dead, [this] {
    ++stats_.dead_timer_expiries;
    transmit(std::make_shared<Close>(Close::Reason::kDeadTimer));
    enter_closed();
  });
}

void Session::keepalive_tick() {
  if (state_ != SessionState::kUp) return;
  ++stats_.keepalives_sent;
  transmit(std::make_shared<Keepalive>());
  keepalive_timer_ =
      sim_.schedule_daemon(config_.keepalive, [this] { keepalive_tick(); });
}

void Session::maybe_session_up() {
  if (state_ == SessionState::kUp || state_ == SessionState::kClosed) return;
  if (!(sent_open_ && got_open_ && got_ack_)) return;
  state_ = SessionState::kUp;
  open_retry_timer_.cancel();
  keepalive_timer_ =
      sim_.schedule_daemon(config_.keepalive, [this] { keepalive_tick(); });
  // Flush requests that queued while the handshake was in flight.
  std::deque<std::uint32_t> queued;
  queued.swap(queued_);
  for (const std::uint32_t id : queued) {
    if (outstanding_.contains(id)) send_request(id);
  }
}

void Session::on_message(const Message& message) {
  if (state_ == SessionState::kClosed) return;
  arm_dead_timer();  // any traffic proves liveness (RFC 5440 §10.1)
  switch (message.type()) {
    case MessageType::kOpen:
      handle_open(static_cast<const Open&>(message));
      break;
    case MessageType::kKeepalive:
      handle_keepalive();
      break;
    case MessageType::kRequest:
      handle_request(static_cast<const MapComputationRequest&>(message));
      break;
    case MessageType::kReply:
      handle_reply(static_cast<const MapComputationReply&>(message));
      break;
    case MessageType::kError:
      ++stats_.errors_received;
      break;
    case MessageType::kClose:
      enter_closed();
      break;
  }
}

void Session::handle_open(const Open&) {
  if (got_open_) {
    // Duplicate Open after the handshake is a protocol error (RFC 5440
    // §6.7), but retransmissions during it are expected: only complain when
    // the session is already up.
    if (state_ == SessionState::kUp) {
      ++stats_.errors_sent;
      transmit(std::make_shared<Error>(Error::Kind::kSessionFailure));
      return;
    }
  }
  got_open_ = true;
  if (!sent_open_) {
    // Passive side: answer with our own Open.
    state_ = SessionState::kOpenWait;
    send_open();
  }
  // Acknowledge the peer's Open.
  ++stats_.keepalives_sent;
  transmit(std::make_shared<Keepalive>());
  if (state_ == SessionState::kOpenWait) state_ = SessionState::kKeepWait;
  maybe_session_up();
}

void Session::handle_keepalive() {
  ++stats_.keepalives_received;
  got_ack_ = true;
  maybe_session_up();
}

void Session::handle_request(const MapComputationRequest& request) {
  if (state_ != SessionState::kUp) {
    // A request before the handshake finished: tolerated (our Keepalive may
    // still be in flight), answered all the same — the requester's clock is
    // ticking.
  }
  ++stats_.requests_served;
  std::optional<lisp::MapEntry> mapping;
  if (provider_) mapping = provider_(request.eid());
  if (mapping.has_value()) {
    transmit(std::make_shared<MapComputationReply>(request.request_id(),
                                                   std::move(*mapping)));
  } else {
    transmit(std::make_shared<MapComputationReply>(request.request_id()));
  }
}

void Session::handle_reply(const MapComputationReply& reply) {
  auto it = outstanding_.find(reply.request_id());
  if (it == outstanding_.end()) {
    ++stats_.errors_sent;
    transmit(std::make_shared<Error>(Error::Kind::kUnknownRequest));
    return;
  }
  PendingRequest pending = std::move(it->second);
  outstanding_.erase(it);
  pending.timeout.cancel();
  ++stats_.replies_received;
  if (reply.no_path()) {
    ++stats_.no_paths_received;
    if (pending.handler) pending.handler(std::nullopt);
  } else {
    if (pending.handler) pending.handler(reply.mapping());
  }
}

void Session::request_mapping(net::Ipv4Address eid, ReplyHandler handler) {
  if (state_ == SessionState::kClosed) {
    ++stats_.requests_failed;
    // Fail asynchronously so the caller never re-enters itself.
    sim_.schedule(sim::SimDuration{}, [handler = std::move(handler)] {
      if (handler) handler(std::nullopt);
    });
    return;
  }
  const std::uint32_t id = next_request_id_++;
  outstanding_.emplace(id, PendingRequest{eid, std::move(handler), 0, {}});
  if (state_ == SessionState::kUp) {
    send_request(id);
  } else {
    queued_.push_back(id);
    if (state_ == SessionState::kIdle) open();
  }
}

void Session::send_request(std::uint32_t id) {
  auto it = outstanding_.find(id);
  if (it == outstanding_.end()) return;
  ++stats_.requests_sent;
  transmit(std::make_shared<MapComputationRequest>(id, it->second.eid));
  it->second.timeout = sim_.schedule(config_.request_timeout,
                                     [this, id] { on_request_timeout(id); });
}

void Session::on_request_timeout(std::uint32_t id) {
  auto it = outstanding_.find(id);
  if (it == outstanding_.end()) return;
  ++stats_.request_timeouts;
  if (it->second.retries >= config_.max_request_retries) {
    PendingRequest pending = std::move(it->second);
    outstanding_.erase(it);
    ++stats_.requests_failed;
    if (pending.handler) pending.handler(std::nullopt);
    return;
  }
  ++it->second.retries;
  send_request(id);
}

}  // namespace lispcp::pcep
