// messages.hpp — PCEP-style wire messages for PCE-to-PCE communication.
//
// The paper's control plane "borrows concepts from the Path Computation
// Element (PCE)".  Its Step-6 port-P UDP encapsulation is a bespoke
// transport; this module provides the standards-flavoured alternative: a
// PCEP session (RFC 5440 message set — Open, Keepalive, PCReq, PCRep,
// Error, Close) adapted to mapping computation.  PCReq carries the EID
// whose mapping is wanted; PCRep returns the EID-to-RLOC mapping the remote
// IRC engine selected, or NO-PATH.
//
// The on-demand PCEP query costs one PCE-to-PCE RTT *after* the DNS answer,
// where Step-6 snooping pre-positions the mapping at zero extra RTT — that
// latency gap is exactly what bench/a5_transport measures.
//
// Wire format: the RFC 5440 common header (version 1, message type, 16-bit
// total length) followed by a message-specific body.  Parsing validates
// version, known type, and exact length; violations throw
// std::invalid_argument, consistent with the other wire formats in this
// library.  (Transport substitution: real PCEP runs over TCP port 4189; the
// simulator carries it in UDP packets like every other control protocol
// here.  Session semantics — handshake, keepalives, dead-timer — are
// preserved; segmentation/retransmission is not what the experiments
// measure.  See DESIGN.md.)
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "lisp/control.hpp"
#include "lisp/map_entry.hpp"
#include "net/packet.hpp"

namespace lispcp::pcep {

/// RFC 5440 §6 message types (the subset this library speaks).
enum class MessageType : std::uint8_t {
  kOpen = 1,
  kKeepalive = 2,
  kRequest = 3,  ///< PCReq, adapted: "compute the mapping for this EID"
  kReply = 4,    ///< PCRep: the mapping, or NO-PATH
  kError = 6,
  kClose = 7,
};

[[nodiscard]] std::string to_string(MessageType type);

inline constexpr std::uint8_t kPcepVersion = 1;
inline constexpr std::size_t kCommonHeaderSize = 4;

/// Base of all PCEP messages: owns the common header so every subclass
/// serializes as  [ver/flags | type | length16 | body...].
class Message : public net::Payload {
 public:
  [[nodiscard]] virtual MessageType type() const noexcept = 0;

  [[nodiscard]] std::size_t wire_size() const noexcept final {
    return kCommonHeaderSize + body_size();
  }
  void serialize(net::ByteWriter& w) const final;

 protected:
  [[nodiscard]] virtual std::size_t body_size() const noexcept = 0;
  virtual void serialize_body(net::ByteWriter& w) const = 0;
};

/// Parses one PCEP message; throws std::invalid_argument on bad version,
/// unknown type, or a length field that disagrees with the body.
[[nodiscard]] std::shared_ptr<const Message> parse_message(net::ByteReader& r);

/// Open: proposes session timers (RFC 5440 §6.2's OPEN object, flattened).
class Open final : public Message {
 public:
  Open(std::uint8_t keepalive_seconds, std::uint8_t dead_seconds,
       std::uint8_t session_id)
      : keepalive_seconds_(keepalive_seconds),
        dead_seconds_(dead_seconds),
        session_id_(session_id) {}

  [[nodiscard]] MessageType type() const noexcept override {
    return MessageType::kOpen;
  }
  [[nodiscard]] std::uint8_t keepalive_seconds() const noexcept {
    return keepalive_seconds_;
  }
  [[nodiscard]] std::uint8_t dead_seconds() const noexcept {
    return dead_seconds_;
  }
  [[nodiscard]] std::uint8_t session_id() const noexcept { return session_id_; }
  [[nodiscard]] std::string describe() const override;

 protected:
  [[nodiscard]] std::size_t body_size() const noexcept override { return 3; }
  void serialize_body(net::ByteWriter& w) const override;

 private:
  std::uint8_t keepalive_seconds_;
  std::uint8_t dead_seconds_;
  std::uint8_t session_id_;
};

/// Keepalive: header-only (RFC 5440 §6.3).
class Keepalive final : public Message {
 public:
  [[nodiscard]] MessageType type() const noexcept override {
    return MessageType::kKeepalive;
  }
  [[nodiscard]] std::string describe() const override { return "PCEP-Keepalive"; }

 protected:
  [[nodiscard]] std::size_t body_size() const noexcept override { return 0; }
  void serialize_body(net::ByteWriter&) const override {}
};

/// PCReq adapted to the LISP control plane: request the EID-to-RLOC mapping
/// for `eid`, correlated by `request_id` (RFC 5440's RP object).
class MapComputationRequest final : public Message {
 public:
  MapComputationRequest(std::uint32_t request_id, net::Ipv4Address eid)
      : request_id_(request_id), eid_(eid) {}

  [[nodiscard]] MessageType type() const noexcept override {
    return MessageType::kRequest;
  }
  [[nodiscard]] std::uint32_t request_id() const noexcept { return request_id_; }
  [[nodiscard]] net::Ipv4Address eid() const noexcept { return eid_; }
  [[nodiscard]] std::string describe() const override;

 protected:
  [[nodiscard]] std::size_t body_size() const noexcept override { return 8; }
  void serialize_body(net::ByteWriter& w) const override;

 private:
  std::uint32_t request_id_;
  net::Ipv4Address eid_;
};

/// PCRep: the mapping for the request, or NO-PATH (RFC 5440 §6.5).
class MapComputationReply final : public Message {
 public:
  /// NO-PATH reply.
  explicit MapComputationReply(std::uint32_t request_id)
      : request_id_(request_id) {}
  /// Successful reply.
  MapComputationReply(std::uint32_t request_id, lisp::MapEntry mapping)
      : request_id_(request_id), mapping_(std::move(mapping)) {}

  [[nodiscard]] MessageType type() const noexcept override {
    return MessageType::kReply;
  }
  [[nodiscard]] std::uint32_t request_id() const noexcept { return request_id_; }
  [[nodiscard]] bool no_path() const noexcept { return !mapping_.has_value(); }
  /// The mapping; throws std::logic_error on a NO-PATH reply.
  [[nodiscard]] const lisp::MapEntry& mapping() const;
  [[nodiscard]] std::string describe() const override;

 protected:
  [[nodiscard]] std::size_t body_size() const noexcept override;
  void serialize_body(net::ByteWriter& w) const override;

 private:
  std::uint32_t request_id_;
  std::optional<lisp::MapEntry> mapping_;
};

/// PCErr (RFC 5440 §6.7): error type/value pairs, the subset we raise.
class Error final : public Message {
 public:
  enum class Kind : std::uint8_t {
    kSessionFailure = 1,       ///< handshake violation
    kUnknownRequest = 2,       ///< reply with no matching request
    kCapabilityNotSupported = 3,
  };

  explicit Error(Kind kind) : kind_(kind) {}

  [[nodiscard]] MessageType type() const noexcept override {
    return MessageType::kError;
  }
  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] std::string describe() const override;

 protected:
  [[nodiscard]] std::size_t body_size() const noexcept override { return 1; }
  void serialize_body(net::ByteWriter& w) const override;

 private:
  Kind kind_;
};

/// Close (RFC 5440 §6.8).
class Close final : public Message {
 public:
  enum class Reason : std::uint8_t {
    kNoExplanation = 1,
    kDeadTimer = 2,
    kMalformedMessage = 3,
  };

  explicit Close(Reason reason) : reason_(reason) {}

  [[nodiscard]] MessageType type() const noexcept override {
    return MessageType::kClose;
  }
  [[nodiscard]] Reason reason() const noexcept { return reason_; }
  [[nodiscard]] std::string describe() const override;

 protected:
  [[nodiscard]] std::size_t body_size() const noexcept override { return 1; }
  void serialize_body(net::ByteWriter& w) const override;

 private:
  Reason reason_;
};

}  // namespace lispcp::pcep
