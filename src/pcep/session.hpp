// session.hpp — the PCEP session state machine (RFC 5440 §4.2, adapted).
//
// Transport-agnostic: the owner supplies a send function and feeds received
// messages in; the session handles the Open handshake, keepalive emission,
// dead-timer supervision, request/reply correlation with timeout + retry,
// and teardown.  core::Pce embeds one Session per peer PCE and moves the
// messages in UDP packets over the simulated network; unit tests drive two
// Sessions back-to-back with plain function calls.
//
// Handshake (both sides symmetric): each side sends Open, acknowledges the
// peer's Open with a Keepalive, and declares the session up once it has
// (a) sent its Open, (b) received the peer's Open, and (c) received a
// Keepalive acknowledging its own Open.  Keepalives then flow every
// `keepalive` interval; silence for `keepalive * dead_factor` expires the
// dead timer and closes the session.  Both periodic timers are daemon
// events — background maintenance must not keep Simulator::run() alive.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>

#include "pcep/messages.hpp"
#include "sim/simulator.hpp"

namespace lispcp::pcep {

enum class SessionState : std::uint8_t {
  kIdle,      ///< constructed; nothing sent or received
  kOpenWait,  ///< our Open is out; waiting for the peer's
  kKeepWait,  ///< peer's Open seen; waiting for the Keepalive that acks ours
  kUp,        ///< handshake complete; requests may flow
  kClosed,    ///< terminal: Close sent/received, dead timer, or open failure
};

[[nodiscard]] std::string to_string(SessionState state);

struct SessionConfig {
  sim::SimDuration keepalive = sim::SimDuration::seconds(30);
  /// Dead timer = keepalive * dead_factor (RFC 5440 recommends 4x).
  std::uint32_t dead_factor = 4;
  /// Open retransmission while the handshake is incomplete.
  sim::SimDuration open_retry = sim::SimDuration::seconds(10);
  std::uint32_t max_open_retries = 3;
  /// Request timeout and retry budget.
  sim::SimDuration request_timeout = sim::SimDuration::seconds(2);
  std::uint32_t max_request_retries = 2;
  std::uint8_t session_id = 1;
};

struct SessionStats {
  std::uint64_t opens_sent = 0;
  std::uint64_t keepalives_sent = 0;
  std::uint64_t keepalives_received = 0;
  std::uint64_t requests_sent = 0;      ///< includes retransmissions
  std::uint64_t requests_served = 0;    ///< PCReq answered by our provider
  std::uint64_t replies_received = 0;
  std::uint64_t no_paths_received = 0;
  std::uint64_t request_timeouts = 0;   ///< individual expiries (pre-retry)
  std::uint64_t requests_failed = 0;    ///< gave up after all retries
  std::uint64_t errors_sent = 0;
  std::uint64_t errors_received = 0;
  std::uint64_t dead_timer_expiries = 0;
};

class Session {
 public:
  using SendFn = std::function<void(std::shared_ptr<const Message>)>;
  /// Answers a peer's PCReq: the mapping for `eid`, or nullopt → NO-PATH.
  using MappingProvider =
      std::function<std::optional<lisp::MapEntry>(net::Ipv4Address)>;
  /// Receives the outcome of request_mapping: the mapping, or nullopt on
  /// NO-PATH, timeout, or session failure.
  using ReplyHandler = std::function<void(std::optional<lisp::MapEntry>)>;

  Session(sim::Simulator& sim, SessionConfig config, SendFn send);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Initiates the handshake (active side).  No-op unless state is kIdle.
  void open();

  /// Sends Close and moves to kClosed; outstanding requests fail.
  void close(Close::Reason reason);

  /// Feeds one received message into the state machine.
  void on_message(const Message& message);

  /// Requests the EID-to-RLOC mapping from the peer.  Queued until the
  /// session is up; fails immediately (asynchronously) when closed.
  void request_mapping(net::Ipv4Address eid, ReplyHandler handler);

  /// Installs the responder-side mapping source.  Without one, every PCReq
  /// is answered NO-PATH.
  void set_mapping_provider(MappingProvider provider) {
    provider_ = std::move(provider);
  }

  [[nodiscard]] SessionState state() const noexcept { return state_; }
  [[nodiscard]] const SessionStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const SessionConfig& config() const noexcept { return config_; }
  /// Requests awaiting a reply (including those queued for session-up —
  /// queued ids keep their entry in the outstanding table).
  [[nodiscard]] std::size_t outstanding_requests() const noexcept {
    return outstanding_.size();
  }

 private:
  void send_open();
  void transmit(std::shared_ptr<const Message> message);
  void maybe_session_up();
  void enter_closed();
  void arm_dead_timer();
  void keepalive_tick();
  void send_request(std::uint32_t id);
  void on_request_timeout(std::uint32_t id);
  void fail_all_outstanding();

  void handle_open(const Open& open);
  void handle_keepalive();
  void handle_request(const MapComputationRequest& request);
  void handle_reply(const MapComputationReply& reply);

  sim::Simulator& sim_;
  SessionConfig config_;
  SendFn send_;
  MappingProvider provider_;

  SessionState state_ = SessionState::kIdle;
  bool sent_open_ = false;
  bool got_open_ = false;
  bool got_ack_ = false;
  std::uint32_t open_retries_ = 0;
  sim::EventHandle open_retry_timer_;
  sim::EventHandle keepalive_timer_;
  sim::EventHandle dead_timer_;

  struct PendingRequest {
    net::Ipv4Address eid;
    ReplyHandler handler;
    std::uint32_t retries = 0;
    sim::EventHandle timeout;
  };
  std::uint32_t next_request_id_ = 1;
  std::unordered_map<std::uint32_t, PendingRequest> outstanding_;
  std::deque<std::uint32_t> queued_;  ///< ids waiting for session-up

  SessionStats stats_;
};

}  // namespace lispcp::pcep
