// histogram.hpp — latency statistics for experiment reporting.
//
// Two collectors: `Summary` keeps exact running moments plus min/max;
// `Histogram` adds percentile queries via logarithmic bucketing (HDR-style,
// ~1% relative error over nine decades), which is how every latency series
// in EXPERIMENTS.md is reported.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace lispcp::metrics {

/// Running mean / variance (Welford) with min and max.
class Summary {
 public:
  void add(double x) noexcept;

  /// Records `n` identical observations of `x` in O(1) — the flow-aggregate
  /// engine's per-batch path.  Equivalent to n add(x) calls up to FP
  /// association (Chan's pairwise update).
  void add_n(double x, std::uint64_t n) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const noexcept { return count_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double total() const noexcept { return total_; }

  void merge(const Summary& other) noexcept;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double total_ = 0.0;
};

/// Log-bucketed histogram over non-negative values.
///
/// Buckets: [0], then per-decade subdivisions with `kSubBuckets` buckets per
/// decade covering [1, 1e9] after scaling by `unit`.  Values are recorded in
/// any unit the caller chooses (we use microseconds for latencies).
class Histogram {
 public:
  Histogram() = default;

  void add(double value) noexcept;
  void add_duration(sim::SimDuration d) noexcept { add(d.us()); }

  /// `n` identical observations in O(1) (see Summary::add_n).
  void add_n(double value, std::uint64_t n) noexcept;
  void add_duration_n(sim::SimDuration d, std::uint64_t n) noexcept {
    add_n(d.us(), n);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return summary_.count(); }
  [[nodiscard]] double mean() const noexcept { return summary_.mean(); }
  [[nodiscard]] double min() const noexcept { return summary_.min(); }
  [[nodiscard]] double max() const noexcept { return summary_.max(); }
  [[nodiscard]] double stddev() const noexcept { return summary_.stddev(); }

  /// Value at quantile q in [0, 1]; exact min/max at the ends, bucket upper
  /// bound otherwise.  Returns 0 for an empty histogram.
  [[nodiscard]] double percentile(double q) const noexcept;

  [[nodiscard]] double p50() const noexcept { return percentile(0.50); }
  [[nodiscard]] double p95() const noexcept { return percentile(0.95); }
  [[nodiscard]] double p99() const noexcept { return percentile(0.99); }

  void merge(const Histogram& other) noexcept;

  /// "n=..., mean=..., p50/p95/p99=..., max=..." one-liner.
  [[nodiscard]] std::string brief(const std::string& unit = "us") const;

 private:
  static constexpr int kSubBuckets = 64;   // per decade
  static constexpr int kDecades = 10;      // [1, 1e10)
  static constexpr int kBucketCount = 1 + kSubBuckets * kDecades;

  [[nodiscard]] static int bucket_of(double value) noexcept;
  [[nodiscard]] static double bucket_upper(int bucket) noexcept;

  Summary summary_;
  std::vector<std::uint64_t> buckets_ = std::vector<std::uint64_t>(kBucketCount, 0);
};

}  // namespace lispcp::metrics
