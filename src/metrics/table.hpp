// table.hpp — aligned-text and CSV table output for the benchmark harness.
//
// Every bench binary prints the paper-style table through this class, so all
// experiment output has a uniform, machine-parsable shape.
#pragma once

#include <cstdio>
#include <iosfwd>
#include <string>
#include <vector>

namespace lispcp::metrics {

/// A simple column-oriented table: set headers once, append rows of cells.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Formatting helpers for numeric cells.
  static std::string num(double v, int precision = 2);
  static std::string integer(std::uint64_t v);
  static std::string percent(double fraction, int precision = 2);

  /// True when `cell` renders as a number (integer, decimal, or percent);
  /// such cells are right-aligned by print() so value columns line up.
  [[nodiscard]] static bool is_numeric(const std::string& cell) noexcept;

  /// Writes an aligned, pipe-separated table (markdown-compatible).
  /// Numeric cells are right-aligned, text cells left-aligned.
  void print(std::ostream& os) const;

  /// Writes RFC-4180-style CSV (cells containing commas/quotes get quoted).
  /// This is the one CSV emitter in the tree: the sweep ResultSet CSV sink
  /// renders through it too.
  void to_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& headers() const noexcept {
    return headers_;
  }
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const {
    return rows_.at(i);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& t);

}  // namespace lispcp::metrics
