#include "metrics/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace lispcp::metrics {

void Summary::add(double x) noexcept {
  ++count_;
  total_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  if (count_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

void Summary::add_n(double x, std::uint64_t n) noexcept {
  if (n == 0) return;
  // Merge of a degenerate n-point summary at x (Chan's parallel update);
  // equivalent to n add(x) calls up to floating-point association.
  const double nn = static_cast<double>(n);
  const double n1 = static_cast<double>(count_);
  const double delta = x - mean_;
  const double total_n = n1 + nn;
  mean_ += delta * nn / total_n;
  m2_ += delta * delta * n1 * nn / total_n;
  total_ += x * nn;
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  count_ += n;
}

double Summary::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

void Summary::merge(const Summary& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  total_ += other.total_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

int Histogram::bucket_of(double value) noexcept {
  if (value < 1.0) return 0;
  // log-linear: decade via log10, sub-bucket linear within the decade.
  const double l = std::log10(value);
  int decade = static_cast<int>(l);
  if (decade >= kDecades) return kBucketCount - 1;
  const double lo = std::pow(10.0, decade);
  const double frac = (value - lo) / (lo * 9.0);  // [0,1) within decade
  int sub = static_cast<int>(frac * kSubBuckets);
  sub = std::clamp(sub, 0, kSubBuckets - 1);
  return 1 + decade * kSubBuckets + sub;
}

double Histogram::bucket_upper(int bucket) noexcept {
  if (bucket <= 0) return 1.0;
  const int idx = bucket - 1;
  const int decade = idx / kSubBuckets;
  const int sub = idx % kSubBuckets;
  const double lo = std::pow(10.0, decade);
  return lo + lo * 9.0 * (static_cast<double>(sub + 1) / kSubBuckets);
}

void Histogram::add(double value) noexcept {
  summary_.add(value);
  ++buckets_[static_cast<std::size_t>(bucket_of(std::max(value, 0.0)))];
}

void Histogram::add_n(double value, std::uint64_t n) noexcept {
  if (n == 0) return;
  summary_.add_n(value, n);
  buckets_[static_cast<std::size_t>(bucket_of(std::max(value, 0.0)))] += n;
}

double Histogram::percentile(double q) const noexcept {
  const auto n = summary_.count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) return summary_.min();
  if (q >= 1.0) return summary_.max();
  const auto target = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n)));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBucketCount; ++b) {
    seen += buckets_[static_cast<std::size_t>(b)];
    if (seen >= target) {
      return std::min(bucket_upper(b), summary_.max());
    }
  }
  return summary_.max();
}

void Histogram::merge(const Histogram& other) noexcept {
  summary_.merge(other.summary_);
  for (int b = 0; b < kBucketCount; ++b) {
    buckets_[static_cast<std::size_t>(b)] +=
        other.buckets_[static_cast<std::size_t>(b)];
  }
}

std::string Histogram::brief(const std::string& unit) const {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "n=%llu mean=%.2f%s p50=%.2f%s p95=%.2f%s p99=%.2f%s max=%.2f%s",
                static_cast<unsigned long long>(count()), mean(), unit.c_str(),
                p50(), unit.c_str(), p95(), unit.c_str(), p99(), unit.c_str(),
                max(), unit.c_str());
  return buf;
}

}  // namespace lispcp::metrics
