#include "metrics/table.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

namespace lispcp::metrics {

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: expected " +
                                std::to_string(headers_.size()) + " cells, got " +
                                std::to_string(cells.size()));
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::integer(std::uint64_t v) { return std::to_string(v); }

std::string Table::percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

bool Table::is_numeric(const std::string& cell) noexcept {
  if (cell.empty()) return false;
  std::size_t i = cell.front() == '-' ? 1 : 0;
  std::size_t end = cell.size();
  if (end > i && cell[end - 1] == '%') --end;  // percent() cells
  if (i >= end) return false;
  bool digit = false, dot = false;
  for (; i < end; ++i) {
    const char ch = cell[i];
    if (ch >= '0' && ch <= '9') {
      digit = true;
    } else if (ch == '.' && !dot) {
      dot = true;
    } else {
      return false;
    }
  }
  return digit;
}

void Table::print(std::ostream& os) const {
  // A table with no columns (e.g. a fully filtered-out ResultSet) has
  // nothing to render; bare '|' separators would just be noise.
  if (headers_.empty()) return;
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells, bool align) {
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::string pad(widths[c] - cells[c].size(), ' ');
      if (align && is_numeric(cells[c])) {
        os << " " << pad << cells[c] << " |";
      } else {
        os << " " << cells[c] << pad << " |";
      }
    }
    os << "\n";
  };
  print_row(headers_, /*align=*/false);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row, /*align=*/true);
}

void Table::to_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ",";
      const std::string& cell = cells[c];
      if (cell.find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (char ch : cell) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << cell;
      }
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  t.print(os);
  return os;
}

}  // namespace lispcp::metrics
