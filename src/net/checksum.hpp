// checksum.hpp — RFC 1071 Internet checksum.
//
// Used by the IPv4 header serializer so that serialized headers are
// wire-faithful and parsers can verify integrity end to end.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace lispcp::net {

/// One's-complement sum over `data`, folded to 16 bits, per RFC 1071.
/// An odd trailing byte is padded with zero (treated as the high byte of the
/// final 16-bit word).
[[nodiscard]] std::uint16_t internet_checksum(std::span<const std::byte> data) noexcept;

/// Verifies data whose checksum field is already in place: the RFC 1071 sum
/// over the whole buffer must be zero.
[[nodiscard]] bool checksum_ok(std::span<const std::byte> data) noexcept;

}  // namespace lispcp::net
