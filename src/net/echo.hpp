// echo.hpp — the UDP Echo protocol (RFC 862).
//
// The liveness primitive under the failover machinery: every sim::Node
// answers an echo request to one of its own addresses with an echo reply
// (as real routers answer ping), so a border router can verify a specific
// uplink by echoing off the node at its far end.  core::LinkHealthMonitor
// builds BFD-style up/down detection on top of this.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/packet.hpp"

namespace lispcp::net {

class EchoPayload final : public Payload {
 public:
  EchoPayload(std::uint64_t nonce, bool is_reply)
      : nonce_(nonce), is_reply_(is_reply) {}

  [[nodiscard]] std::uint64_t nonce() const noexcept { return nonce_; }
  [[nodiscard]] bool is_reply() const noexcept { return is_reply_; }

  [[nodiscard]] std::size_t wire_size() const noexcept override { return 9; }
  void serialize(ByteWriter& w) const override {
    w.u64(nonce_);
    w.u8(is_reply_ ? 1 : 0);
  }
  static std::shared_ptr<const EchoPayload> parse_wire(ByteReader& r) {
    const auto nonce = r.u64();
    return std::make_shared<EchoPayload>(nonce, r.u8() != 0);
  }
  [[nodiscard]] std::string describe() const override {
    return std::string(is_reply_ ? "Echo-Reply" : "Echo-Request") +
           " nonce=" + std::to_string(nonce_);
  }

 private:
  std::uint64_t nonce_;
  bool is_reply_;
};

}  // namespace lispcp::net
