// packet.hpp — the simulation packet: a typed header stack plus a payload.
//
// The simulator forwards packets as structured objects rather than raw byte
// buffers: a stack of typed headers (outermost first) and an immutable,
// shared application payload.  This keeps hot paths allocation-light (LISP
// encapsulation pushes three small headers; decapsulation pops them) while
// staying wire-faithful: `serialize()` emits the exact byte sequence a real
// stack would, and the header formats round-trip through bytes in tests.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "net/headers.hpp"

namespace lispcp::net {

/// Base class for application messages carried inside packets (DNS messages,
/// LISP Map-Requests, PCE control messages, ...).  Payloads are immutable
/// after construction and shared between packet copies.
class Payload {
 public:
  virtual ~Payload() = default;

  /// Size this payload would occupy on the wire, in bytes.  Links use it for
  /// serialization delay; IPv4/UDP length fields derive from it.
  [[nodiscard]] virtual std::size_t wire_size() const noexcept = 0;

  /// Writes the payload's wire format.
  virtual void serialize(ByteWriter& w) const = 0;

  /// One-line human-readable description for traces.
  [[nodiscard]] virtual std::string describe() const = 0;
};

using PayloadPtr = std::shared_ptr<const Payload>;

/// An opaque payload of a given size — models application data (e.g. the
/// bytes of a TCP segment) whose content the simulation does not inspect.
class RawPayload final : public Payload {
 public:
  explicit RawPayload(std::size_t size) : size_(size) {}

  [[nodiscard]] std::size_t wire_size() const noexcept override { return size_; }
  void serialize(ByteWriter& w) const override {
    for (std::size_t i = 0; i < size_; ++i) w.u8(0);
  }
  [[nodiscard]] std::string describe() const override {
    return "raw[" + std::to_string(size_) + "B]";
  }

 private:
  std::size_t size_;
};

/// One protocol header.  Outermost-first ordering in Packet::stack().
using Header = std::variant<Ipv4Header, UdpHeader, TcpHeader, LispHeader>;

/// A network packet travelling through the simulator.
///
/// Invariant: the header stack is outermost-first and, when non-empty,
/// starts with an Ipv4Header (everything in this system is IP).  Length
/// fields inside headers are backfilled by serialize(); in-memory headers
/// need not keep them current.
class Packet {
 public:
  Packet() = default;

  /// Convenience factory: IPv4 + UDP around `payload`.
  static Packet udp(Ipv4Address src, Ipv4Address dst, std::uint16_t src_port,
                    std::uint16_t dst_port, PayloadPtr payload, std::uint8_t ttl = 64);

  /// Convenience factory: IPv4 + TCP segment carrying `payload_bytes` of data.
  static Packet tcp(Ipv4Address src, Ipv4Address dst, const TcpHeader& tcp_header,
                    std::size_t payload_bytes = 0, std::uint8_t ttl = 64);

  /// Pushes a header at the *outside* of the stack (encapsulation).
  void push_outer(Header h) { stack_.insert(stack_.begin(), std::move(h)); }

  /// Removes and returns the outermost header (decapsulation).
  /// Throws std::logic_error if the stack is empty.
  Header pop_outer();

  [[nodiscard]] const std::vector<Header>& stack() const noexcept { return stack_; }
  [[nodiscard]] std::vector<Header>& stack() noexcept { return stack_; }
  [[nodiscard]] bool empty() const noexcept { return stack_.empty(); }

  /// Outermost IPv4 header; throws std::logic_error if absent — forwarding a
  /// packet without an IP header is a programming error.
  [[nodiscard]] const Ipv4Header& outer_ip() const;
  [[nodiscard]] Ipv4Header& outer_ip();

  /// The innermost IPv4 header (the original end-host packet inside any
  /// tunnel encapsulation); equals outer_ip() for plain packets.
  [[nodiscard]] const Ipv4Header& inner_ip() const;

  /// First UDP header at or below the outermost IP layer, if any.
  [[nodiscard]] const UdpHeader* udp() const noexcept;
  /// First TCP header, if any.
  [[nodiscard]] const TcpHeader* tcp() const noexcept;
  /// LISP shim header, if the packet is LISP-encapsulated.
  [[nodiscard]] const LispHeader* lisp() const noexcept;

  void set_payload(PayloadPtr p) noexcept { payload_ = std::move(p); }
  [[nodiscard]] const PayloadPtr& payload() const noexcept { return payload_; }

  /// Typed payload accessor; nullptr when the payload is absent or of a
  /// different type.
  template <typename T>
  [[nodiscard]] std::shared_ptr<const T> payload_as() const noexcept {
    return std::dynamic_pointer_cast<const T>(payload_);
  }

  /// Total on-wire size: all headers plus payload.
  [[nodiscard]] std::size_t wire_size() const noexcept;

  /// Serializes the full packet with length fields backfilled, producing the
  /// byte sequence a real stack would transmit.
  [[nodiscard]] std::vector<std::byte> serialize() const;

  /// Monotonically increasing id assigned at construction, for tracing.
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

  /// Human-readable summary of the header stack and payload.
  [[nodiscard]] std::string describe() const;

 private:
  std::vector<Header> stack_;
  PayloadPtr payload_;
  std::uint64_t id_ = next_id();

  static std::uint64_t next_id() noexcept;
};

}  // namespace lispcp::net
