// bytes.hpp — bounds-checked big-endian byte serialization.
//
// All wire formats in the library (IPv4/UDP/TCP/LISP headers, DNS messages,
// PCE control messages) serialize through ByteWriter and parse through
// ByteReader.  Network byte order (big endian) throughout.  Readers throw
// ParseError on truncated input — a packet that parses is structurally valid.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "net/ipv4.hpp"

namespace lispcp::net {

/// Thrown by ByteReader (and message parsers built on it) on malformed or
/// truncated wire input.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends big-endian fields to a growable byte buffer.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buffer_.reserve(reserve); }

  void u8(std::uint8_t v) { buffer_.push_back(std::byte{v}); }

  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v >> 8));
    u8(static_cast<std::uint8_t>(v));
  }

  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }

  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }

  void address(Ipv4Address a) { u32(a.value()); }

  void bytes(std::span<const std::byte> data) {
    buffer_.insert(buffer_.end(), data.begin(), data.end());
  }

  /// Length-prefixed (u8) string; throws std::length_error beyond 255 bytes.
  /// Used by DNS labels and PCE message fields.
  void counted_string(std::string_view s) {
    if (s.size() > 255) {
      throw std::length_error("ByteWriter::counted_string: > 255 bytes");
    }
    u8(static_cast<std::uint8_t>(s.size()));
    for (char c : s) u8(static_cast<std::uint8_t>(c));
  }

  /// Overwrites a previously written u16 at `offset` (e.g. a length field
  /// backfilled after the body is known).
  void patch_u16(std::size_t offset, std::uint16_t v) {
    if (offset + 2 > buffer_.size()) {
      throw std::out_of_range("ByteWriter::patch_u16 outside buffer");
    }
    buffer_[offset] = std::byte{static_cast<std::uint8_t>(v >> 8)};
    buffer_[offset + 1] = std::byte{static_cast<std::uint8_t>(v)};
  }

  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }
  [[nodiscard]] std::span<const std::byte> view() const noexcept { return buffer_; }

  /// Moves the accumulated buffer out; the writer is left empty but reusable.
  [[nodiscard]] std::vector<std::byte> take() noexcept { return std::move(buffer_); }

 private:
  std::vector<std::byte> buffer_;
};

/// Consumes big-endian fields from a byte span.  Throws ParseError when the
/// input is shorter than a requested field.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) noexcept : data_(data) {}

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] bool empty() const noexcept { return remaining() == 0; }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

  std::uint8_t u8() {
    require(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint16_t u16() {
    const auto hi = u8();
    return static_cast<std::uint16_t>((std::uint16_t{hi} << 8) | u8());
  }

  std::uint32_t u32() {
    const auto hi = u16();
    return (std::uint32_t{hi} << 16) | u16();
  }

  std::uint64_t u64() {
    const auto hi = u32();
    return (std::uint64_t{hi} << 32) | u32();
  }

  Ipv4Address address() { return Ipv4Address(u32()); }

  std::span<const std::byte> bytes(std::size_t n) {
    require(n);
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  /// Counterpart of ByteWriter::counted_string.
  std::string counted_string() {
    const auto n = u8();
    auto raw = bytes(n);
    return std::string(reinterpret_cast<const char*>(raw.data()), raw.size());
  }

  void skip(std::size_t n) { require(n), pos_ += n; }

 private:
  void require(std::size_t n) const {
    if (remaining() < n) {
      throw ParseError("ByteReader: truncated input (need " + std::to_string(n) +
                       " bytes, have " + std::to_string(remaining()) + ")");
    }
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace lispcp::net
