#include "net/packet.hpp"

#include <atomic>
#include <stdexcept>

namespace lispcp::net {

namespace {

std::size_t header_wire_size(const Header& h) noexcept {
  return std::visit([](const auto& v) { return v.kWireSize; }, h);
}

}  // namespace

std::uint64_t Packet::next_id() noexcept {
  // Atomic: sweep points run concurrently, one simulation per thread.  Ids
  // only need to be unique (trace correlation); nothing branches on their
  // absolute values, so cross-thread interleaving cannot perturb results.
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

Packet Packet::udp(Ipv4Address src, Ipv4Address dst, std::uint16_t src_port,
                   std::uint16_t dst_port, PayloadPtr payload, std::uint8_t ttl) {
  Packet p;
  Ipv4Header ip;
  ip.src = src;
  ip.dst = dst;
  ip.protocol = IpProto::kUdp;
  ip.ttl = ttl;
  UdpHeader udp;
  udp.src_port = src_port;
  udp.dst_port = dst_port;
  p.stack_.push_back(ip);
  p.stack_.push_back(udp);
  p.payload_ = std::move(payload);
  return p;
}

Packet Packet::tcp(Ipv4Address src, Ipv4Address dst, const TcpHeader& tcp_header,
                   std::size_t payload_bytes, std::uint8_t ttl) {
  Packet p;
  Ipv4Header ip;
  ip.src = src;
  ip.dst = dst;
  ip.protocol = IpProto::kTcp;
  ip.ttl = ttl;
  p.stack_.push_back(ip);
  p.stack_.push_back(tcp_header);
  if (payload_bytes > 0) {
    p.payload_ = std::make_shared<RawPayload>(payload_bytes);
  }
  return p;
}

Header Packet::pop_outer() {
  if (stack_.empty()) throw std::logic_error("Packet::pop_outer on empty stack");
  Header h = std::move(stack_.front());
  stack_.erase(stack_.begin());
  return h;
}

const Ipv4Header& Packet::outer_ip() const {
  if (stack_.empty() || !std::holds_alternative<Ipv4Header>(stack_.front())) {
    throw std::logic_error("Packet::outer_ip: no outer IPv4 header");
  }
  return std::get<Ipv4Header>(stack_.front());
}

Ipv4Header& Packet::outer_ip() {
  if (stack_.empty() || !std::holds_alternative<Ipv4Header>(stack_.front())) {
    throw std::logic_error("Packet::outer_ip: no outer IPv4 header");
  }
  return std::get<Ipv4Header>(stack_.front());
}

const Ipv4Header& Packet::inner_ip() const {
  for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
    if (const auto* ip = std::get_if<Ipv4Header>(&*it)) return *ip;
  }
  throw std::logic_error("Packet::inner_ip: no IPv4 header");
}

const UdpHeader* Packet::udp() const noexcept {
  for (const auto& h : stack_) {
    if (const auto* u = std::get_if<UdpHeader>(&h)) return u;
  }
  return nullptr;
}

const TcpHeader* Packet::tcp() const noexcept {
  for (const auto& h : stack_) {
    if (const auto* t = std::get_if<TcpHeader>(&h)) return t;
  }
  return nullptr;
}

const LispHeader* Packet::lisp() const noexcept {
  for (const auto& h : stack_) {
    if (const auto* l = std::get_if<LispHeader>(&h)) return l;
  }
  return nullptr;
}

std::size_t Packet::wire_size() const noexcept {
  std::size_t size = payload_ ? payload_->wire_size() : 0;
  for (const auto& h : stack_) size += header_wire_size(h);
  return size;
}

std::vector<std::byte> Packet::serialize() const {
  // Walk the stack innermost-first computing the length each IP/UDP layer
  // must carry, then emit outermost-first with lengths backfilled.
  std::vector<Header> fixed = stack_;
  std::size_t below = payload_ ? payload_->wire_size() : 0;
  for (auto it = fixed.rbegin(); it != fixed.rend(); ++it) {
    std::visit(
        [&](auto& h) {
          using T = std::decay_t<decltype(h)>;
          below += T::kWireSize;
          if constexpr (std::is_same_v<T, Ipv4Header>) {
            h.total_length = static_cast<std::uint16_t>(below);
          } else if constexpr (std::is_same_v<T, UdpHeader>) {
            h.length = static_cast<std::uint16_t>(below);
          }
        },
        *it);
  }
  ByteWriter w(below);
  for (const auto& h : fixed) {
    std::visit([&](const auto& v) { v.serialize(w); }, h);
  }
  if (payload_) payload_->serialize(w);
  return w.take();
}

std::string Packet::describe() const {
  std::string out = "#" + std::to_string(id_);
  for (const auto& h : stack_) {
    out += " | ";
    out += std::visit([](const auto& v) { return v.to_string(); }, h);
  }
  if (payload_) out += " | " + payload_->describe();
  return out;
}

}  // namespace lispcp::net
