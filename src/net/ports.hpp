// ports.hpp — well-known protocol numbers and transport ports.
#pragma once

#include <cstdint>

namespace lispcp::net {

/// IP protocol numbers (IPv4 header "protocol" field).
enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kIpInIp = 4,  ///< IP-over-IP tunnelling (LISP data plane per draft-08 §5)
  kTcp = 6,
  kUdp = 17,
};

/// Transport ports used across the library.
namespace ports {
/// UDP Echo (RFC 862): the liveness primitive under failover detection.
inline constexpr std::uint16_t kEcho = 7;
inline constexpr std::uint16_t kDns = 53;
/// LISP data-plane encapsulation port (draft-farinacci-lisp-08).
inline constexpr std::uint16_t kLispData = 4341;
/// LISP control-plane port (Map-Request / Map-Reply).
inline constexpr std::uint16_t kLispControl = 4342;
/// The paper's "special transport port P" listened on by the source-domain
/// PCE (Step 6/7 of Fig. 1).  The draft reserves nothing for this, so we use
/// an adjacent experimental value.
inline constexpr std::uint16_t kPceP = 4344;
/// Port used for PCE -> ITR mapping-push control messages (Step 7b).
inline constexpr std::uint16_t kPcePush = 4345;
/// Port used for ETR reverse-mapping multicast (paper §2, last paragraph).
inline constexpr std::uint16_t kEtrSync = 4346;
/// NERD database push/delta distribution.
inline constexpr std::uint16_t kNerd = 4347;
/// PCEP (RFC 5440).  Real PCEP runs over TCP on this port; the simulator
/// carries the same messages in UDP packets (see src/pcep/messages.hpp).
inline constexpr std::uint16_t kPcep = 4189;
}  // namespace ports

}  // namespace lispcp::net
