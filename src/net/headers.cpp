#include "net/headers.hpp"

#include "net/checksum.hpp"

namespace lispcp::net {

void Ipv4Header::serialize(ByteWriter& w) const {
  ByteWriter h(kWireSize);
  h.u8(0x45);  // version 4, IHL 5
  h.u8(dscp << 2);
  h.u16(total_length);
  h.u16(identification);
  h.u16(0x4000);  // flags: DF set, no fragmentation modelled
  h.u8(ttl);
  h.u8(static_cast<std::uint8_t>(protocol));
  h.u16(0);  // checksum placeholder
  h.address(src);
  h.address(dst);
  auto bytes = h.take();
  const std::uint16_t sum = internet_checksum(bytes);
  bytes[10] = std::byte{static_cast<std::uint8_t>(sum >> 8)};
  bytes[11] = std::byte{static_cast<std::uint8_t>(sum)};
  w.bytes(bytes);
}

Ipv4Header Ipv4Header::parse(ByteReader& r) {
  auto raw = r.bytes(kWireSize);
  if (!checksum_ok(raw)) throw ParseError("Ipv4Header: bad checksum");
  ByteReader h(raw);
  const auto version_ihl = h.u8();
  if (version_ihl != 0x45) {
    throw ParseError("Ipv4Header: unsupported version/IHL");
  }
  Ipv4Header out;
  out.dscp = static_cast<std::uint8_t>(h.u8() >> 2);
  out.total_length = h.u16();
  out.identification = h.u16();
  h.u16();  // flags/fragment offset
  out.ttl = h.u8();
  out.protocol = static_cast<IpProto>(h.u8());
  h.u16();  // checksum (verified above)
  out.src = h.address();
  out.dst = h.address();
  return out;
}

std::string Ipv4Header::to_string() const {
  return "IPv4 " + src.to_string() + " -> " + dst.to_string() +
         " proto=" + std::to_string(static_cast<int>(protocol)) +
         " ttl=" + std::to_string(ttl) + " len=" + std::to_string(total_length);
}

void UdpHeader::serialize(ByteWriter& w) const {
  w.u16(src_port);
  w.u16(dst_port);
  w.u16(length);
  w.u16(0);  // checksum not computed (valid for IPv4)
}

UdpHeader UdpHeader::parse(ByteReader& r) {
  UdpHeader out;
  out.src_port = r.u16();
  out.dst_port = r.u16();
  out.length = r.u16();
  if (out.length < kWireSize) throw ParseError("UdpHeader: length < 8");
  r.u16();  // checksum
  return out;
}

std::string UdpHeader::to_string() const {
  return "UDP " + std::to_string(src_port) + " -> " + std::to_string(dst_port) +
         " len=" + std::to_string(length);
}

void TcpHeader::serialize(ByteWriter& w) const {
  w.u16(src_port);
  w.u16(dst_port);
  w.u32(seq);
  w.u32(ack);
  std::uint16_t offset_flags = std::uint16_t{5} << 12;  // data offset 5 words
  if (flags.fin) offset_flags |= 0x001;
  if (flags.syn) offset_flags |= 0x002;
  if (flags.rst) offset_flags |= 0x004;
  if (flags.ack) offset_flags |= 0x010;
  w.u16(offset_flags);
  w.u16(0xFFFF);  // window (fixed; not modelled)
  w.u16(0);       // checksum (not modelled)
  w.u16(0);       // urgent pointer
}

TcpHeader TcpHeader::parse(ByteReader& r) {
  TcpHeader out;
  out.src_port = r.u16();
  out.dst_port = r.u16();
  out.seq = r.u32();
  out.ack = r.u32();
  const auto offset_flags = r.u16();
  if ((offset_flags >> 12) != 5) {
    throw ParseError("TcpHeader: options not supported");
  }
  out.flags.fin = (offset_flags & 0x001) != 0;
  out.flags.syn = (offset_flags & 0x002) != 0;
  out.flags.rst = (offset_flags & 0x004) != 0;
  out.flags.ack = (offset_flags & 0x010) != 0;
  r.skip(6);  // window, checksum, urgent
  return out;
}

std::string TcpHeader::to_string() const {
  std::string f;
  if (flags.syn) f += "S";
  if (flags.ack) f += "A";
  if (flags.fin) f += "F";
  if (flags.rst) f += "R";
  return "TCP " + std::to_string(src_port) + " -> " + std::to_string(dst_port) +
         " [" + f + "] seq=" + std::to_string(seq) + " ack=" + std::to_string(ack);
}

void LispHeader::serialize(ByteWriter& w) const {
  // Flags byte: N (nonce present) in the top bit, L (locator-status-bits
  // present) next, matching the draft's N|L|E|V|I|flags layout in spirit.
  std::uint8_t flags = 0;
  if (nonce_present) flags |= 0x80;
  flags |= 0x40;  // LSBs always carried in this implementation
  w.u8(flags);
  w.u8(static_cast<std::uint8_t>(nonce >> 16));
  w.u8(static_cast<std::uint8_t>(nonce >> 8));
  w.u8(static_cast<std::uint8_t>(nonce));
  w.u32(locator_status_bits);
}

LispHeader LispHeader::parse(ByteReader& r) {
  LispHeader out;
  const auto flags = r.u8();
  out.nonce_present = (flags & 0x80) != 0;
  std::uint32_t nonce = r.u8();
  nonce = (nonce << 8) | r.u8();
  nonce = (nonce << 8) | r.u8();
  out.nonce = nonce;
  out.locator_status_bits = r.u32();
  return out;
}

std::string LispHeader::to_string() const {
  return "LISP nonce=" + std::to_string(nonce) +
         " lsb=" + std::to_string(locator_status_bits);
}

}  // namespace lispcp::net
