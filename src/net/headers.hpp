// headers.hpp — IPv4 / UDP / TCP / LISP header value types with wire
// serialization.
//
// Each header is a plain struct plus `serialize` / `parse` functions.  The
// simulator moves packets around as typed header stacks (see packet.hpp) for
// speed and debuggability, but every header can round-trip through real wire
// bytes; the test suite exercises this so the formats stay honest.
#pragma once

#include <cstdint>
#include <string>

#include "net/bytes.hpp"
#include "net/ipv4.hpp"
#include "net/ports.hpp"

namespace lispcp::net {

/// IPv4 header (no options; IHL always 5).
struct Ipv4Header {
  static constexpr std::size_t kWireSize = 20;

  Ipv4Address src;
  Ipv4Address dst;
  IpProto protocol = IpProto::kUdp;
  std::uint8_t ttl = 64;
  /// Total datagram length (header + payload), maintained by Packet.
  std::uint16_t total_length = kWireSize;
  std::uint16_t identification = 0;
  std::uint8_t dscp = 0;

  /// Serializes 20 bytes with a valid RFC 1071 header checksum.
  void serialize(ByteWriter& w) const;
  /// Parses and verifies the header checksum; throws ParseError on failure.
  static Ipv4Header parse(ByteReader& r);

  [[nodiscard]] std::string to_string() const;
  friend bool operator==(const Ipv4Header&, const Ipv4Header&) = default;
};

/// UDP header.  The simulator does not compute the UDP pseudo-header
/// checksum (legal for IPv4: checksum 0 means "not computed").
struct UdpHeader {
  static constexpr std::size_t kWireSize = 8;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  /// Header + payload length, maintained by Packet.
  std::uint16_t length = kWireSize;

  void serialize(ByteWriter& w) const;
  static UdpHeader parse(ByteReader& r);

  [[nodiscard]] std::string to_string() const;
  friend bool operator==(const UdpHeader&, const UdpHeader&) = default;
};

/// TCP flags relevant to the connection-setup model.
struct TcpFlags {
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;

  friend bool operator==(const TcpFlags&, const TcpFlags&) = default;
};

/// Simplified TCP header: enough for the workload model to run real
/// SYN / SYN-ACK / ACK handshakes and measure setup latency (paper §1's
/// T_setup formulas).  Window/urgent/options are not modelled.
struct TcpHeader {
  static constexpr std::size_t kWireSize = 20;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  TcpFlags flags;

  void serialize(ByteWriter& w) const;
  static TcpHeader parse(ByteReader& r);

  [[nodiscard]] std::string to_string() const;
  friend bool operator==(const TcpHeader&, const TcpHeader&) = default;
};

/// LISP data-plane shim header, modelled on draft-farinacci-lisp-08 §5.1:
/// 8 bytes carried between the outer UDP header and the inner IPv4 packet.
struct LispHeader {
  static constexpr std::size_t kWireSize = 8;

  /// Nonce echoed for reachability testing (24 bits on the wire).
  std::uint32_t nonce = 0;
  /// Locator-status-bits advertising the up/down state of the source site's
  /// RLOCs.  Bit i set = RLOC i up.
  std::uint32_t locator_status_bits = 0;
  bool nonce_present = true;

  void serialize(ByteWriter& w) const;
  static LispHeader parse(ByteReader& r);

  [[nodiscard]] std::string to_string() const;
  friend bool operator==(const LispHeader&, const LispHeader&) = default;
};

}  // namespace lispcp::net
