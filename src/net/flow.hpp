// flow.hpp — shared flow/nonce helpers for control-plane state tables.
//
// Every component that correlates per-flow state (the ITR's flow-tuple and
// pending-resolution tables, the PCE's active-flow map) packs an ordered
// address pair into one 64-bit key, and every component that emits control
// messages draws nonces from a monotone sequence.  Defined once here so the
// key layouts can never drift apart.
#pragma once

#include <cstdint>

#include "net/ipv4.hpp"

namespace lispcp::net {

/// Packs the ordered pair (a, b) into one table key.  Directional:
/// pair_key(a, b) != pair_key(b, a).
[[nodiscard]] constexpr std::uint64_t pair_key(Ipv4Address a,
                                               Ipv4Address b) noexcept {
  return (std::uint64_t{a.value()} << 32) | b.value();
}

/// Monotone nonce source for control messages (Map-Requests, probes,
/// registrations).  Starts at 1; 0 stays free as the "no nonce" sentinel.
class NonceSequence {
 public:
  [[nodiscard]] std::uint64_t next() noexcept { return next_++; }
  [[nodiscard]] std::uint64_t last_issued() const noexcept { return next_ - 1; }

 private:
  std::uint64_t next_ = 1;
};

}  // namespace lispcp::net
