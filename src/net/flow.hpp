// flow.hpp — shared flow/nonce helpers for control-plane state tables.
//
// Every component that correlates per-flow state (the ITR's flow-tuple and
// pending-resolution tables, the PCE's active-flow map) packs an ordered
// address pair into one 64-bit key, and every component that emits control
// messages draws nonces from a monotone sequence.  Defined once here so the
// key layouts can never drift apart.
#pragma once

#include <cstdint>

#include "net/ipv4.hpp"

namespace lispcp::net {

/// Packs the ordered pair (a, b) into one table key.  Directional:
/// pair_key(a, b) != pair_key(b, a).
[[nodiscard]] constexpr std::uint64_t pair_key(Ipv4Address a,
                                               Ipv4Address b) noexcept {
  return (std::uint64_t{a.value()} << 32) | b.value();
}

/// Closed-form per-flow wire accounting for the flow-aggregate workload
/// engine: packet and byte counts of one paper-§1 session (SYN + handshake
/// ACK + data burst forward; SYN-ACK + per-data responses reverse) without
/// constructing any net::Packet.  Header sizes mirror headers.hpp
/// (Ipv4Header/TcpHeader 20, UdpHeader/LispHeader 8); `encap_overhead()`
/// is the LISP outer stack a TunnelRouter pushes per data packet.
struct FlowWireModel {
  int data_packets = 4;
  std::size_t data_packet_bytes = 1000;
  std::size_t response_packet_bytes = 1000;
  bool lisp_encapsulated = true;

  [[nodiscard]] static constexpr std::size_t tcp_header_bytes() noexcept {
    return 20 + 20;  // Ipv4Header::kWireSize + TcpHeader::kWireSize
  }
  [[nodiscard]] constexpr std::size_t encap_overhead() const noexcept {
    // Outer Ipv4 (20) + UDP (8) + LISP shim (8).
    return lisp_encapsulated ? 20 + 8 + 8 : 0;
  }
  /// Client-originated packets per successful session (SYN, handshake ACK,
  /// data burst) — everything the source ITR sees outbound.
  [[nodiscard]] constexpr std::uint64_t forward_packets() const noexcept {
    return 2 + static_cast<std::uint64_t>(data_packets);
  }
  /// Server-originated packets (SYN-ACK plus one response per data packet).
  [[nodiscard]] constexpr std::uint64_t reverse_packets() const noexcept {
    return 1 + static_cast<std::uint64_t>(data_packets);
  }
  [[nodiscard]] constexpr std::uint64_t forward_bytes() const noexcept {
    return forward_packets() * (tcp_header_bytes() + encap_overhead()) +
           static_cast<std::uint64_t>(data_packets) * data_packet_bytes;
  }
  [[nodiscard]] constexpr std::uint64_t reverse_bytes() const noexcept {
    return reverse_packets() * (tcp_header_bytes() + encap_overhead()) +
           static_cast<std::uint64_t>(data_packets) * response_packet_bytes;
  }
};

/// Monotone nonce source for control messages (Map-Requests, probes,
/// registrations).  Starts at 1; 0 stays free as the "no nonce" sentinel.
class NonceSequence {
 public:
  [[nodiscard]] std::uint64_t next() noexcept { return next_++; }
  [[nodiscard]] std::uint64_t last_issued() const noexcept { return next_ - 1; }

 private:
  std::uint64_t next_ = 1;
};

}  // namespace lispcp::net
