#include "net/ipv4.hpp"

#include <charconv>
#include <ostream>

namespace lispcp::net {

namespace {

/// Parses one decimal octet in [0, 255] from the front of `text`, advancing
/// it past the digits.  Returns std::nullopt on failure.
std::optional<std::uint8_t> parse_octet(std::string_view& text) noexcept {
  unsigned value = 0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr == begin || value > 255) return std::nullopt;
  // Reject leading zeros like "01" which often indicate octal intent.
  if (ptr - begin > 1 && *begin == '0') return std::nullopt;
  text.remove_prefix(static_cast<std::size_t>(ptr - begin));
  return static_cast<std::uint8_t>(value);
}

}  // namespace

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) noexcept {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    if (i > 0) {
      if (text.empty() || text.front() != '.') return std::nullopt;
      text.remove_prefix(1);
    }
    auto octet = parse_octet(text);
    if (!octet) return std::nullopt;
    value = (value << 8) | *octet;
  }
  if (!text.empty()) return std::nullopt;
  return Ipv4Address(value);
}

Ipv4Address Ipv4Address::from_string(std::string_view text) {
  auto parsed = parse(text);
  if (!parsed) {
    throw std::invalid_argument("Ipv4Address: malformed address '" +
                                std::string(text) + "'");
  }
  return *parsed;
}

std::string Ipv4Address::to_string() const {
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(octet(i));
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, Ipv4Address addr) {
  return os << addr.to_string();
}

std::optional<Ipv4Prefix> Ipv4Prefix::parse(std::string_view text) noexcept {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto address = Ipv4Address::parse(text.substr(0, slash));
  if (!address) return std::nullopt;
  const std::string_view len_text = text.substr(slash + 1);
  int length = 0;
  auto [ptr, ec] =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(), length);
  if (ec != std::errc{} || ptr != len_text.data() + len_text.size() ||
      length < 0 || length > 32) {
    return std::nullopt;
  }
  return Ipv4Prefix(*address, length);
}

Ipv4Prefix Ipv4Prefix::from_string(std::string_view text) {
  auto parsed = parse(text);
  if (!parsed) {
    throw std::invalid_argument("Ipv4Prefix: malformed prefix '" +
                                std::string(text) + "'");
  }
  return *parsed;
}

Ipv4Address Ipv4Prefix::nth(std::uint64_t i) const {
  if (i >= size()) {
    throw std::out_of_range("Ipv4Prefix::nth: index " + std::to_string(i) +
                            " outside " + to_string());
  }
  return Ipv4Address(address_.value() + static_cast<std::uint32_t>(i));
}

std::string Ipv4Prefix::to_string() const {
  return address_.to_string() + "/" + std::to_string(length_);
}

std::ostream& operator<<(std::ostream& os, const Ipv4Prefix& prefix) {
  return os << prefix.to_string();
}

}  // namespace lispcp::net
