// prefix_trie.hpp — longest-prefix-match binary trie.
//
// The routing substrate: every router's forwarding table, the ALT overlay's
// EID-prefix aggregation tree and the ITR map-cache index are all
// PrefixTrie<T> instances.  A straightforward uncompressed binary trie keyed
// on prefix bits: at the topology sizes this library simulates (tens of
// domains, thousands of EID prefixes) lookups stay well under a hundred
// nanoseconds (see bench/m1_micro).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "net/ipv4.hpp"

namespace lispcp::net {

/// Maps Ipv4Prefix -> T with longest-prefix-match lookup by address.
template <typename T>
class PrefixTrie {
 public:
  PrefixTrie() : root_(std::make_unique<Node>()) {}

  PrefixTrie(PrefixTrie&&) noexcept = default;
  PrefixTrie& operator=(PrefixTrie&&) noexcept = default;
  PrefixTrie(const PrefixTrie&) = delete;
  PrefixTrie& operator=(const PrefixTrie&) = delete;

  /// Inserts or replaces the value at `prefix`.  Returns true if a new entry
  /// was created, false if an existing one was overwritten.
  bool insert(const Ipv4Prefix& prefix, T value) {
    Node* node = descend_create(prefix);
    const bool created = !node->value.has_value();
    node->value = std::move(value);
    if (created) ++size_;
    return created;
  }

  /// Removes the exact entry at `prefix`.  Returns true iff it existed.
  /// (Trie nodes are not pruned; tables in this simulator are built once and
  /// mutated rarely, so reclaiming interior nodes is not worth the code.)
  bool erase(const Ipv4Prefix& prefix) noexcept {
    Node* node = descend_find(prefix);
    if (node == nullptr || !node->value.has_value()) return false;
    node->value.reset();
    --size_;
    return true;
  }

  /// Exact-match lookup.
  [[nodiscard]] const T* find_exact(const Ipv4Prefix& prefix) const noexcept {
    const Node* node = descend_find(prefix);
    return (node != nullptr && node->value.has_value()) ? &*node->value : nullptr;
  }

  [[nodiscard]] T* find_exact(const Ipv4Prefix& prefix) noexcept {
    return const_cast<T*>(std::as_const(*this).find_exact(prefix));
  }

  /// Longest-prefix match: the value of the most specific prefix containing
  /// `addr`, or nullptr if no prefix covers it.
  [[nodiscard]] const T* lookup(Ipv4Address addr) const noexcept {
    const Node* node = root_.get();
    const T* best = node->value ? &*node->value : nullptr;
    std::uint32_t bits = addr.value();
    for (int depth = 0; depth < 32 && node != nullptr; ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      node = node->child[bit].get();
      if (node != nullptr && node->value) best = &*node->value;
    }
    return best;
  }

  [[nodiscard]] T* lookup(Ipv4Address addr) noexcept {
    return const_cast<T*>(std::as_const(*this).lookup(addr));
  }

  /// As lookup(), but also reports the matching prefix.
  [[nodiscard]] std::optional<std::pair<Ipv4Prefix, const T*>> lookup_with_prefix(
      Ipv4Address addr) const noexcept {
    const Node* node = root_.get();
    std::optional<std::pair<Ipv4Prefix, const T*>> best;
    if (node->value) best = {Ipv4Prefix(), &*node->value};
    std::uint32_t bits = addr.value();
    std::uint32_t path = 0;
    for (int depth = 0; depth < 32 && node != nullptr; ++depth) {
      const std::uint32_t bit = (bits >> (31 - depth)) & 1;
      path |= bit << (31 - depth);
      node = node->child[bit].get();
      if (node != nullptr && node->value) {
        best = {Ipv4Prefix(Ipv4Address(path), depth + 1), &*node->value};
      }
    }
    return best;
  }

  /// Visits every (prefix, value) pair in lexicographic prefix order.
  void for_each(
      const std::function<void(const Ipv4Prefix&, const T&)>& visit) const {
    walk(root_.get(), 0, 0, visit);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  void clear() {
    root_ = std::make_unique<Node>();
    size_ = 0;
  }

 private:
  struct Node {
    std::optional<T> value;
    std::unique_ptr<Node> child[2];
  };

  Node* descend_create(const Ipv4Prefix& prefix) {
    Node* node = root_.get();
    const std::uint32_t bits = prefix.address().value();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      if (!node->child[bit]) node->child[bit] = std::make_unique<Node>();
      node = node->child[bit].get();
    }
    return node;
  }

  const Node* descend_find(const Ipv4Prefix& prefix) const noexcept {
    const Node* node = root_.get();
    const std::uint32_t bits = prefix.address().value();
    for (int depth = 0; depth < prefix.length() && node != nullptr; ++depth) {
      const int bit = (bits >> (31 - depth)) & 1;
      node = node->child[bit].get();
    }
    return node;
  }

  Node* descend_find(const Ipv4Prefix& prefix) noexcept {
    return const_cast<Node*>(std::as_const(*this).descend_find(prefix));
  }

  void walk(const Node* node, std::uint32_t path, int depth,
            const std::function<void(const Ipv4Prefix&, const T&)>& visit) const {
    if (node == nullptr) return;
    if (node->value) visit(Ipv4Prefix(Ipv4Address(path), depth), *node->value);
    if (depth == 32) return;
    walk(node->child[0].get(), path, depth + 1, visit);
    walk(node->child[1].get(), path | (std::uint32_t{1} << (31 - depth)),
         depth + 1, visit);
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace lispcp::net
