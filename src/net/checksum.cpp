#include "net/checksum.hpp"

namespace lispcp::net {

std::uint16_t internet_checksum(std::span<const std::byte> data) noexcept {
  std::uint64_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (std::uint64_t{static_cast<std::uint8_t>(data[i])} << 8) |
           std::uint64_t{static_cast<std::uint8_t>(data[i + 1])};
  }
  if (i < data.size()) {
    sum += std::uint64_t{static_cast<std::uint8_t>(data[i])} << 8;
  }
  // Fold carries until the sum fits 16 bits (at most a few iterations).
  while (sum >> 16) {
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum & 0xFFFF);
}

bool checksum_ok(std::span<const std::byte> data) noexcept {
  return internet_checksum(data) == 0;
}

}  // namespace lispcp::net
