// ipv4.hpp — IPv4 address and prefix value types.
//
// Strong types used pervasively across the library: an `Ipv4Address` is a
// 32-bit value with dotted-quad parsing/formatting, and an `Ipv4Prefix` is an
// address/length pair kept in canonical form (host bits cleared).  Both are
// regular types: cheap to copy, totally ordered, hashable.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace lispcp::net {

/// A 32-bit IPv4 address.  Stored in host byte order; serialization to wire
/// format (network byte order) is handled by ByteWriter/ByteReader.
class Ipv4Address {
 public:
  /// Default-constructs the unspecified address 0.0.0.0.
  constexpr Ipv4Address() noexcept = default;

  /// Constructs from a raw 32-bit value in host byte order.
  constexpr explicit Ipv4Address(std::uint32_t value) noexcept : value_(value) {}

  /// Constructs from four dotted-quad octets, e.g. {10, 0, 0, 1}.
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d) noexcept
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  /// Parses "a.b.c.d".  Returns std::nullopt on malformed input.
  static std::optional<Ipv4Address> parse(std::string_view text) noexcept;

  /// Parses "a.b.c.d"; throws std::invalid_argument on malformed input.
  /// Intended for literals in tests and topology builders.
  static Ipv4Address from_string(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }

  /// Octet accessor: octet(0) is the most significant ("a" in a.b.c.d).
  [[nodiscard]] constexpr std::uint8_t octet(int i) const {
    if (i < 0 || i > 3) throw std::out_of_range("Ipv4Address::octet index");
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  [[nodiscard]] constexpr bool is_unspecified() const noexcept { return value_ == 0; }

  /// Dotted-quad representation, e.g. "10.0.0.1".
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

std::ostream& operator<<(std::ostream& os, Ipv4Address addr);

/// An IPv4 prefix (address + mask length) in canonical form: construction
/// clears all host bits, so two prefixes covering the same range compare
/// equal regardless of how they were written.
class Ipv4Prefix {
 public:
  /// Default-constructs the default route 0.0.0.0/0.
  constexpr Ipv4Prefix() noexcept = default;

  /// Canonicalising constructor; throws std::invalid_argument if length > 32.
  constexpr Ipv4Prefix(Ipv4Address address, int length)
      : length_(length) {
    if (length < 0 || length > 32) {
      throw std::invalid_argument("Ipv4Prefix: length must be in [0, 32]");
    }
    address_ = Ipv4Address(address.value() & mask());
  }

  /// Parses "a.b.c.d/len".  Returns std::nullopt on malformed input.
  static std::optional<Ipv4Prefix> parse(std::string_view text) noexcept;

  /// Parses "a.b.c.d/len"; throws std::invalid_argument on malformed input.
  static Ipv4Prefix from_string(std::string_view text);

  /// The /32 host prefix for a single address.
  static constexpr Ipv4Prefix host(Ipv4Address address) noexcept {
    Ipv4Prefix p;
    p.address_ = address;
    p.length_ = 32;
    return p;
  }

  [[nodiscard]] constexpr Ipv4Address address() const noexcept { return address_; }
  [[nodiscard]] constexpr int length() const noexcept { return length_; }

  /// Network mask as a 32-bit value, e.g. /8 -> 0xFF000000.
  [[nodiscard]] constexpr std::uint32_t mask() const noexcept {
    return length_ == 0 ? 0u : ~std::uint32_t{0} << (32 - length_);
  }

  /// True iff `addr` falls inside this prefix.
  [[nodiscard]] constexpr bool contains(Ipv4Address addr) const noexcept {
    return (addr.value() & mask()) == address_.value();
  }

  /// True iff `other` is fully covered by this prefix (equal or more specific).
  [[nodiscard]] constexpr bool contains(const Ipv4Prefix& other) const noexcept {
    return other.length_ >= length_ && contains(other.address_);
  }

  /// Number of addresses covered (2^(32-length)); 2^32 saturates to
  /// std::uint64_t precision, which is exact.
  [[nodiscard]] constexpr std::uint64_t size() const noexcept {
    return std::uint64_t{1} << (32 - length_);
  }

  /// The i-th address inside the prefix; throws std::out_of_range if i is
  /// outside the block.  Used by topology builders to assign host addresses.
  [[nodiscard]] Ipv4Address nth(std::uint64_t i) const;

  /// "a.b.c.d/len" representation.
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Ipv4Prefix&, const Ipv4Prefix&) noexcept =
      default;

 private:
  Ipv4Address address_;
  int length_ = 0;
};

std::ostream& operator<<(std::ostream& os, const Ipv4Prefix& prefix);

}  // namespace lispcp::net

template <>
struct std::hash<lispcp::net::Ipv4Address> {
  std::size_t operator()(lispcp::net::Ipv4Address a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

template <>
struct std::hash<lispcp::net::Ipv4Prefix> {
  std::size_t operator()(const lispcp::net::Ipv4Prefix& p) const noexcept {
    // Mix length into the high bits so /8 and /16 of the same base differ.
    return std::hash<std::uint64_t>{}(
        (std::uint64_t{p.address().value()} << 6) ^
        static_cast<std::uint64_t>(p.length()));
  }
};
