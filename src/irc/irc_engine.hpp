// irc_engine.hpp — Intelligent Route Control engine.
//
// The paper's Step 1 / Step 6 machinery: "the algorithms used to determine
// the ingress RLOC are inherently the same used today by Intelligent Route
// Control techniques", and "the mapping selection performed at PCED is made
// by an online IRC engine running in background, so the mapping is always
// known aforehand".
//
// The engine monitors the domain's border links (one per provider), keeps
// EWMA load estimates, and continuously precomputes the ingress-RLOC choice
// for the configured policy.  choose_ingress() is therefore O(1) — a table
// read — which is what lets the PCE encapsulate DNS replies "roughly at
// line rate" (Step 6).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lisp/map_entry.hpp"
#include "sim/link.hpp"
#include "sim/network.hpp"

namespace lispcp::irc {

/// One provider attachment of a multihomed domain.
struct BorderLink {
  net::Ipv4Address rloc;     ///< the RLOC reachable over this provider
  sim::Link* link = nullptr; ///< the xTR <-> provider/core link
  sim::NodeId xtr;           ///< domain-side endpoint of `link`
  double capacity_bps = 1e9;
};

/// RLOC selection policies, in increasing order of feedback use.
enum class TePolicy {
  kPrimaryBackup,   ///< all traffic on the first link (vanilla single-homed behaviour)
  kRoundRobin,      ///< rotate per flow, load-blind
  kCapacityWeighted,///< static split proportional to capacity
  kLeastLoaded,     ///< smooth-WRR with weights from measured load headroom
  kLowestLatency,   ///< prefer the link with the smallest propagation delay
};

[[nodiscard]] std::string to_string(TePolicy policy);

struct IrcConfig {
  TePolicy policy = TePolicy::kLeastLoaded;
  /// Background refresh period for measurements and precomputed choices.
  sim::SimDuration refresh_interval = sim::SimDuration::millis(500);
  /// EWMA smoothing factor for load samples (0 < alpha <= 1).
  double ewma_alpha = 0.3;
};

class IrcEngine {
 public:
  IrcEngine(sim::Network& network, std::vector<BorderLink> links, IrcConfig config);

  /// Begins the background measurement/refresh loop.
  void start();

  /// The precomputed ingress RLOC for a new flow.  O(1); deterministic.
  [[nodiscard]] net::Ipv4Address choose_ingress();

  /// Ingress choice pinned by hash (stable for a given flow).
  [[nodiscard]] net::Ipv4Address choose_ingress_for(std::uint64_t flow_hash) const;

  /// Current site mapping for `eid_prefix`: every RLOC at priority 1 with
  /// weights reflecting the policy's current split — what a Map-Reply or a
  /// Step-6 encapsulation should advertise.
  [[nodiscard]] lisp::MapEntry site_mapping(const net::Ipv4Prefix& eid_prefix) const;

  /// Smoothed inbound utilization (0..1) of border link `i`.
  [[nodiscard]] double ingress_load(std::size_t i) const;
  /// Smoothed outbound utilization (0..1) of border link `i`.
  [[nodiscard]] double egress_load(std::size_t i) const;

  [[nodiscard]] const std::vector<BorderLink>& links() const noexcept {
    return links_;
  }
  [[nodiscard]] std::size_t refresh_count() const noexcept { return refreshes_; }

  /// Marks a border link administratively down for selection purposes.
  void set_link_usable(std::size_t i, bool usable);
  [[nodiscard]] bool link_usable(std::size_t i) const { return state_.at(i).usable; }

 private:
  struct LinkState {
    sim::LinkWindow ingress_window;
    sim::LinkWindow egress_window;
    double ingress_ewma = 0.0;
    double egress_ewma = 0.0;
    // Smooth weighted round robin state.
    double weight = 1.0;
    double wrr_credit = 0.0;
    bool usable = true;
  };

  void refresh();
  void recompute_weights();

  sim::Network& network_;
  std::vector<BorderLink> links_;
  IrcConfig config_;
  std::vector<LinkState> state_;
  std::uint64_t refreshes_ = 0;
  bool started_ = false;
};

}  // namespace lispcp::irc
