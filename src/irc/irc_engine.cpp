#include "irc/irc_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace lispcp::irc {

std::string to_string(TePolicy policy) {
  switch (policy) {
    case TePolicy::kPrimaryBackup: return "primary-backup";
    case TePolicy::kRoundRobin: return "round-robin";
    case TePolicy::kCapacityWeighted: return "capacity-weighted";
    case TePolicy::kLeastLoaded: return "least-loaded";
    case TePolicy::kLowestLatency: return "lowest-latency";
  }
  return "?";
}

IrcEngine::IrcEngine(sim::Network& network, std::vector<BorderLink> links,
                     IrcConfig config)
    : network_(network), links_(std::move(links)), config_(config) {
  if (links_.empty()) {
    throw std::invalid_argument("IrcEngine: at least one border link required");
  }
  if (config_.ewma_alpha <= 0.0 || config_.ewma_alpha > 1.0) {
    throw std::invalid_argument("IrcEngine: ewma_alpha must be in (0, 1]");
  }
  state_.resize(links_.size());
  for (std::size_t i = 0; i < links_.size(); ++i) {
    const sim::NodeId far = links_[i].link->peer_of(links_[i].xtr);
    state_[i].ingress_window = links_[i].link->open_window(far);
    state_[i].egress_window = links_[i].link->open_window(links_[i].xtr);
  }
  recompute_weights();
}

void IrcEngine::start() {
  if (started_) return;
  started_ = true;
  network_.sim().schedule_daemon(config_.refresh_interval, [this] { refresh(); });
}

void IrcEngine::refresh() {
  ++refreshes_;
  for (std::size_t i = 0; i < links_.size(); ++i) {
    const sim::NodeId far = links_[i].link->peer_of(links_[i].xtr);
    const double in_sample = links_[i].link->utilization(far, state_[i].ingress_window);
    const double out_sample =
        links_[i].link->utilization(links_[i].xtr, state_[i].egress_window);
    state_[i].ingress_ewma = config_.ewma_alpha * in_sample +
                             (1.0 - config_.ewma_alpha) * state_[i].ingress_ewma;
    state_[i].egress_ewma = config_.ewma_alpha * out_sample +
                            (1.0 - config_.ewma_alpha) * state_[i].egress_ewma;
    state_[i].ingress_window = links_[i].link->open_window(far);
    state_[i].egress_window = links_[i].link->open_window(links_[i].xtr);
  }
  recompute_weights();
  network_.sim().schedule_daemon(config_.refresh_interval, [this] { refresh(); });
}

void IrcEngine::recompute_weights() {
  switch (config_.policy) {
    case TePolicy::kPrimaryBackup: {
      bool first = true;
      for (std::size_t i = 0; i < state_.size(); ++i) {
        const bool use = state_[i].usable && first;
        if (use) first = false;
        state_[i].weight = use ? 1.0 : 0.0;
      }
      break;
    }
    case TePolicy::kRoundRobin:
      for (auto& s : state_) s.weight = s.usable ? 1.0 : 0.0;
      break;
    case TePolicy::kCapacityWeighted:
      for (std::size_t i = 0; i < state_.size(); ++i) {
        state_[i].weight = state_[i].usable ? links_[i].capacity_bps : 0.0;
      }
      break;
    case TePolicy::kLeastLoaded:
      // Weight by measured inbound headroom: an idle link gets the most new
      // flows, a saturated one almost none (epsilon keeps it selectable so
      // measurements can recover).
      for (auto& s : state_) {
        s.weight = s.usable ? std::max(1.0 - s.ingress_ewma, 0.02) : 0.0;
      }
      break;
    case TePolicy::kLowestLatency: {
      double best = std::numeric_limits<double>::max();
      for (std::size_t i = 0; i < links_.size(); ++i) {
        if (state_[i].usable) {
          best = std::min(best, links_[i].link->config().delay.sec());
        }
      }
      for (std::size_t i = 0; i < links_.size(); ++i) {
        state_[i].weight =
            (state_[i].usable && links_[i].link->config().delay.sec() <= best)
                ? 1.0
                : 0.0;
      }
      break;
    }
  }
}

net::Ipv4Address IrcEngine::choose_ingress() {
  // Smooth weighted round robin (nginx-style): each call credits every link
  // by its weight and picks the highest-credit link, keeping the sequence
  // proportional to weights without bursts.
  double total = 0.0;
  for (const auto& s : state_) total += s.weight;
  if (total <= 0.0) return links_.front().rloc;  // all down: degrade gracefully

  std::size_t best = 0;
  double best_credit = -std::numeric_limits<double>::max();
  for (std::size_t i = 0; i < state_.size(); ++i) {
    state_[i].wrr_credit += state_[i].weight;
    if (state_[i].wrr_credit > best_credit) {
      best_credit = state_[i].wrr_credit;
      best = i;
    }
  }
  state_[best].wrr_credit -= total;
  return links_[best].rloc;
}

net::Ipv4Address IrcEngine::choose_ingress_for(std::uint64_t flow_hash) const {
  double total = 0.0;
  for (const auto& s : state_) total += s.weight;
  if (total <= 0.0) return links_.front().rloc;
  double point = (static_cast<double>(flow_hash % 1000003) / 1000003.0) * total;
  for (std::size_t i = 0; i < state_.size(); ++i) {
    if (point < state_[i].weight) return links_[i].rloc;
    point -= state_[i].weight;
  }
  return links_.back().rloc;
}

lisp::MapEntry IrcEngine::site_mapping(const net::Ipv4Prefix& eid_prefix) const {
  lisp::MapEntry entry;
  entry.eid_prefix = eid_prefix;
  double total = 0.0;
  for (const auto& s : state_) total += s.weight;
  for (std::size_t i = 0; i < links_.size(); ++i) {
    lisp::Rloc rloc;
    rloc.address = links_[i].rloc;
    rloc.priority = 1;
    rloc.reachable = state_[i].usable;
    rloc.weight =
        total <= 0.0
            ? 1
            : static_cast<std::uint8_t>(std::clamp(
                  std::lround(state_[i].weight / total * 100.0), 1L, 255L));
    entry.rlocs.push_back(rloc);
  }
  return entry;
}

double IrcEngine::ingress_load(std::size_t i) const {
  return state_.at(i).ingress_ewma;
}

double IrcEngine::egress_load(std::size_t i) const {
  return state_.at(i).egress_ewma;
}

void IrcEngine::set_link_usable(std::size_t i, bool usable) {
  state_.at(i).usable = usable;
  recompute_weights();
}

}  // namespace lispcp::irc
