// tunnel_router.hpp — the LISP tunnel router (xTR).
//
// One class implements both roles of draft-farinacci-lisp-08, enabled
// independently so a topology can deploy dedicated ITRs and ETRs (as drawn
// in the paper's Fig. 1) or combined xTRs:
//
//   ITR role — intercepts outbound packets whose destination is a *remote*
//   EID, resolves the EID-to-RLOC mapping (map-cache, pushed flow tuples, or
//   an on-demand Map-Request into the configured overlay) and encapsulates.
//   The behaviour on a cache miss is the crux of the paper's claim (i) and
//   is selectable: drop (vanilla LISP), queue (palliative), or forward the
//   data through the mapping overlay (the "data over control plane"
//   palliative the paper criticises).
//
//   ETR role — terminates LISP tunnels addressed to this router's RLOC,
//   decapsulates and forwards the inner packet into the site, answers
//   Map-Requests for the site's EID prefixes, and learns reverse mappings
//   from arriving data (gleaning), optionally reporting them to the control
//   plane via a hook (the PCE control plane uses this for the ETR-multicast
//   completion of the two-way mapping, paper §2 last paragraph).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "lisp/control.hpp"
#include "lisp/map_cache.hpp"
#include "lisp/map_entry.hpp"
#include "lisp/resolution.hpp"
#include "metrics/histogram.hpp"
#include "net/flow.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"

namespace lispcp::lisp {

/// What the ITR does with data packets that miss the map-cache while the
/// mapping is being resolved (paper §1's three alternatives).
enum class MissPolicy {
  kDrop,            ///< vanilla LISP: initial packets are lost
  kQueue,           ///< palliative: buffer at the ITR until the reply arrives
  kForwardOverlay,  ///< palliative: tunnel data through the mapping overlay
};

struct XtrConfig {
  bool itr_role = true;
  bool etr_role = true;

  /// EID prefixes of this router's own site (never encapsulated toward).
  std::vector<net::Ipv4Prefix> local_eid_prefixes;
  /// The global EID superblocks: destinations inside these (and outside the
  /// local prefixes) require LISP encapsulation; everything else is plain
  /// RLOC-space traffic and forwards natively.
  std::vector<net::Ipv4Prefix> eid_space;

  /// Map-cache capacity in entries (0 = unlimited, as a NERD database).
  std::size_t cache_capacity = 0;

  MissPolicy miss_policy = MissPolicy::kDrop;

  /// ETR: install gleaned reverse mappings into the local map-cache
  /// (vanilla LISP behaviour that forces ingress==egress for return flows).
  bool glean_on_decap = true;

  /// Mappings this ETR is authoritative for (answers Map-Requests).
  std::vector<MapEntry> site_mappings;

  /// kQueue parameters.
  std::size_t queue_capacity_per_eid = 16;
  sim::SimDuration queue_timeout = sim::SimDuration::millis(3000);

  /// Map-Request retransmission.
  sim::SimDuration request_timeout = sim::SimDuration::millis(1000);
  int max_request_retries = 2;

  /// Forwarding/encapsulation processing latency ("line rate" per the
  /// paper's assumption; keep small but nonzero).
  sim::SimDuration processing_delay = sim::SimDuration::micros(10);

  /// RLOC-probing (draft §6.3): when enabled, the ITR probes every RLOC it
  /// is actively using and flips reachability in its map-cache after
  /// `probe_down_threshold` consecutive losses (probing resumes so the
  /// locator can come back).
  bool rloc_probing = false;
  sim::SimDuration probe_interval = sim::SimDuration::seconds(10);
  sim::SimDuration probe_timeout = sim::SimDuration::seconds(2);
  int probe_down_threshold = 3;
};

/// Stat deltas booked in one shot by the flow-aggregate workload engine
/// (counts in, counts out — no per-packet net::Packet allocation).  Only the
/// counters the closed-form session model can attribute are present.
struct AggregateCounts {
  std::uint64_t data_seen = 0;
  std::uint64_t encapsulated = 0;
  std::uint64_t decapsulated = 0;
  std::uint64_t miss_dropped = 0;
  std::uint64_t miss_queued = 0;
  std::uint64_t queue_flushed = 0;
  std::uint64_t queue_overflow_drops = 0;
  std::uint64_t queue_timeout_drops = 0;
  std::uint64_t overlay_data_forwarded = 0;
  std::uint64_t entry_pushes_received = 0;
};

struct XtrStats {
  // ITR side
  std::uint64_t data_seen = 0;
  std::uint64_t encapsulated = 0;
  std::uint64_t flow_tuple_used = 0;  ///< encapsulations driven by Step-7b tuples
  std::uint64_t miss_events = 0;      ///< first-packet resolution misses
  std::uint64_t miss_dropped = 0;
  std::uint64_t miss_queued = 0;
  std::uint64_t queue_overflow_drops = 0;
  std::uint64_t queue_timeout_drops = 0;
  std::uint64_t queue_flushed = 0;
  std::uint64_t overlay_data_forwarded = 0;
  std::uint64_t map_requests_sent = 0;
  std::uint64_t map_request_retries = 0;
  std::uint64_t map_replies_received = 0;
  std::uint64_t flow_pushes_received = 0;
  std::uint64_t entry_pushes_received = 0;
  // ETR side
  std::uint64_t decapsulated = 0;
  std::uint64_t gleaned = 0;
  std::uint64_t map_requests_answered = 0;
  std::uint64_t not_local_after_decap = 0;
  // RLOC probing
  std::uint64_t probes_sent = 0;
  std::uint64_t probe_replies_received = 0;
  std::uint64_t probes_answered = 0;
  std::uint64_t rlocs_marked_down = 0;
  std::uint64_t rlocs_marked_up = 0;
};

// `final` so calls through concrete TunnelRouter pointers (the aggregate
// engine's batch path, the topology builders) devirtualize.
class TunnelRouter final : public sim::Node {
 public:
  /// Notified when a resolution episode this observer joined completes:
  /// `resolved` is true when a mapping arrived (reply or push), false when
  /// the episode gave up (retries exhausted / push timeout).
  using AggregateObserver = std::function<void(bool resolved)>;

  /// Invoked by the ETR role when a data packet reveals a reverse mapping:
  /// the tuple maps the *return* flow (inner dst -> inner src) onto
  /// (egress RLOC to be chosen locally, outer source RLOC of the sender).
  /// `first_packet` is true the first time this flow is seen and again
  /// whenever the sender's outer source RLOC changes (a remote TE move).
  using ReverseMappingHook =
      std::function<void(TunnelRouter& etr, const FlowMapping& reverse,
                         bool first_packet)>;

  TunnelRouter(sim::Network& network, std::string name, net::Ipv4Address rloc,
               XtrConfig config);

  // -- Node interface -------------------------------------------------------
  TransitAction transit(net::Packet& packet) override;
  void deliver(net::Packet packet) override;

  // -- Control-plane surface ------------------------------------------------
  /// Installs a mapping record into the map-cache (push distribution).
  void install_mapping(const MapEntry& entry);

  /// Installs a Step-7b per-flow tuple; consulted before the map-cache.
  void install_flow_mapping(const FlowMapping& mapping);

  [[nodiscard]] const FlowMapping* find_flow_mapping(net::Ipv4Address src_eid,
                                                     net::Ipv4Address dst_eid) const;

  void set_reverse_mapping_hook(ReverseMappingHook hook) {
    reverse_hook_ = std::move(hook);
  }

  /// Sets the mappings this ETR answers Map-Requests for (assigned once the
  /// site is registered in the mapping registry).
  void set_site_mappings(std::vector<MapEntry> mappings) {
    config_.site_mappings = std::move(mappings);
  }

  /// Installs the miss-resolution behaviour (the mapping system's side of
  /// the ITR seam).  No strategy behaves as push-only: misses wait for a
  /// push and time out otherwise.
  void set_resolution_strategy(std::unique_ptr<ResolutionStrategy> strategy) {
    resolution_ = std::move(strategy);
  }
  [[nodiscard]] const ResolutionStrategy* resolution() const noexcept {
    return resolution_.get();
  }

  /// Sends one Map-Request toward `target` (called by pull strategies; the
  /// packet mechanics and stats stay inside the router).
  void emit_map_request(net::Ipv4Address target, net::Ipv4Address eid,
                        std::uint64_t nonce, bool record_route);

  // -- Flow-aggregate surface (workload::FlowAggregateEngine) ---------------
  /// Batch map-cache probe: one LPM walk, `flows` lookups' worth of stats.
  /// Does not start a resolution — pair with aggregate_resolve() on miss.
  /// The returned view is valid until the cache's next mutating call.
  [[nodiscard]] const MapEntry* aggregate_lookup(net::Ipv4Address eid,
                                                 std::uint64_t flows);

  /// Joins (or starts) the resolution episode for `eid` exactly as a missed
  /// packet would — Map-Request, retry timers and push timeouts are the same
  /// simulator events packet mode runs — and calls `observer` on completion.
  void aggregate_resolve(net::Ipv4Address eid, AggregateObserver observer);

  /// Books pre-attributed packet counters (closed-form session model).
  void aggregate_account(const AggregateCounts& counts) noexcept;

  /// Records `flows` buffered-SYN residence times of `delay` each.
  void aggregate_queue_delay(sim::SimDuration delay, std::uint64_t flows);

  /// Marks an RLOC up/down in every cached entry (reachability propagation).
  void set_rloc_reachability(net::Ipv4Address rloc, bool reachable);

  /// True iff the prober currently considers `rloc` reachable (always true
  /// for never-probed locators).
  [[nodiscard]] bool rloc_reachable(net::Ipv4Address rloc) const;

  // -- Introspection ---------------------------------------------------------
  [[nodiscard]] net::Ipv4Address rloc() const { return address(); }
  [[nodiscard]] MapCache& cache() noexcept { return cache_; }
  [[nodiscard]] const MapCache& cache() const noexcept { return cache_; }
  [[nodiscard]] const XtrStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const XtrConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t flow_table_size() const noexcept {
    return flow_table_.size();
  }
  /// Queueing delay experienced by packets buffered during resolution (us).
  [[nodiscard]] const metrics::Histogram& queue_delay() const noexcept {
    return queue_delay_;
  }

  [[nodiscard]] bool is_local_eid(net::Ipv4Address a) const noexcept;
  [[nodiscard]] bool is_eid(net::Ipv4Address a) const noexcept;

 private:
  struct QueuedPacket {
    net::Packet packet;
    sim::SimTime enqueued;
  };
  struct PendingResolution {
    std::uint64_t nonce = 0;
    std::deque<QueuedPacket> queue;
    int retries = 0;
    sim::EventHandle timer;
    sim::SimTime started;
    std::vector<AggregateObserver> observers;  ///< aggregate-mode joiners
  };

  // ITR role
  void handle_outbound(net::Packet packet);
  void encapsulate_and_send(net::Packet inner, net::Ipv4Address outer_src,
                            net::Ipv4Address outer_dst, std::uint32_t lsb);
  void on_miss(net::Packet packet, net::Ipv4Address eid);
  /// Single exit point of a resolution episode (reply, push, or give-up):
  /// flushes or drains the queued packets and notifies aggregate observers.
  /// Callers remove the entry from `pending_` first and pass it by value so
  /// re-entrant handle_outbound() calls see a consistent table.
  void finish_pending(PendingResolution pending, bool resolved);
  void send_map_request(net::Ipv4Address eid, PendingResolution& pending);
  void on_request_timeout(net::Ipv4Address eid);
  void on_map_reply(const MapReply& reply);
  void forward_via_overlay(net::Packet packet);

  // ETR role
  void handle_lisp_data(net::Packet packet);
  void handle_overlay_data(net::Packet packet);
  void handle_map_request(const net::Packet& packet, const MapRequest& request);
  void glean(const net::Packet& decapsulated_outer, const net::Packet& inner);

  // Shared
  void handle_flow_push(const FlowMappingPush& push);
  void handle_entry_push(const MapPush& push);

  // RLOC probing
  void probe_cycle();
  void send_probe(net::Ipv4Address rloc);
  void on_probe_timeout(net::Ipv4Address rloc, std::uint64_t nonce);
  void handle_probe(const net::Packet& packet, const RlocProbe& probe);

  XtrConfig config_;
  MapCache cache_;
  XtrStats stats_;
  metrics::Histogram queue_delay_;
  std::unique_ptr<ResolutionStrategy> resolution_;
  std::unordered_map<std::uint64_t, FlowMapping> flow_table_;
  std::unordered_map<net::Ipv4Address, PendingResolution> pending_;
  /// Reverse-flow key -> last gleaned outer source RLOC (change detection).
  std::unordered_map<std::uint64_t, net::Ipv4Address> seen_reverse_flows_;
  ReverseMappingHook reverse_hook_;
  net::NonceSequence nonces_;
  std::uint64_t highest_push_generation_ = 0;

  struct ProbeState {
    std::uint64_t outstanding_nonce = 0;  ///< 0 = none in flight
    int consecutive_losses = 0;
    bool considered_up = true;
    sim::EventHandle timeout;
  };
  std::unordered_map<net::Ipv4Address, ProbeState> probe_states_;
};

}  // namespace lispcp::lisp
