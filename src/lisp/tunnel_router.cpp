#include "lisp/tunnel_router.hpp"

#include <algorithm>

#include "net/ports.hpp"

namespace lispcp::lisp {

TunnelRouter::TunnelRouter(sim::Network& network, std::string name,
                           net::Ipv4Address rloc, XtrConfig config)
    : Node(network, std::move(name)),
      config_(std::move(config)),
      cache_(config_.cache_capacity) {
  add_address(rloc);
  if (config_.rloc_probing && config_.itr_role) {
    sim().schedule_daemon(config_.probe_interval, [this] { probe_cycle(); });
  }
}

bool TunnelRouter::is_local_eid(net::Ipv4Address a) const noexcept {
  for (const auto& p : config_.local_eid_prefixes) {
    if (p.contains(a)) return true;
  }
  return false;
}

bool TunnelRouter::is_eid(net::Ipv4Address a) const noexcept {
  for (const auto& p : config_.eid_space) {
    if (p.contains(a)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Forwarding-path hooks
// ---------------------------------------------------------------------------

sim::Node::TransitAction TunnelRouter::transit(net::Packet& packet) {
  if (!config_.itr_role) return TransitAction::kForward;
  // Only plain (not already encapsulated) packets toward remote EIDs get
  // LISP treatment; RLOC-space traffic (DNS, PCE, tunnels) forwards natively.
  if (packet.lisp() != nullptr) return TransitAction::kForward;
  const auto dst = packet.outer_ip().dst;
  if (!is_eid(dst) || is_local_eid(dst)) return TransitAction::kForward;

  handle_outbound(std::move(packet));
  return TransitAction::kConsumed;
}

void TunnelRouter::handle_outbound(net::Packet packet) {
  ++stats_.data_seen;
  const auto src = packet.outer_ip().src;
  const auto dst = packet.outer_ip().dst;

  // Step-7b per-flow tuples take precedence: they carry the PCE/IRC chosen
  // one-way tunnel, including an outer source RLOC that may not be ours.
  if (const FlowMapping* fm = find_flow_mapping(src, dst)) {
    ++stats_.flow_tuple_used;
    encapsulate_and_send(std::move(packet), fm->source_rloc, fm->destination_rloc,
                         /*lsb=*/~std::uint32_t{0});
    return;
  }

  if (auto entry = cache_.lookup(dst, sim().now())) {
    std::uint16_t sport = 0;
    std::uint16_t dport = 0;
    if (const auto* tcp = packet.tcp()) {
      sport = tcp->src_port;
      dport = tcp->dst_port;
    } else if (const auto* udp = packet.udp()) {
      sport = udp->src_port;
      dport = udp->dst_port;
    }
    const auto chosen = entry->select_rloc(flow_hash(src, dst, sport, dport));
    if (chosen) {
      encapsulate_and_send(std::move(packet), rloc(), chosen->address,
                           entry->locator_status_bits());
      return;
    }
    // All locators down: fall through to the miss path (re-resolution).
  }

  on_miss(std::move(packet), dst);
}

void TunnelRouter::encapsulate_and_send(net::Packet inner,
                                        net::Ipv4Address outer_src,
                                        net::Ipv4Address outer_dst,
                                        std::uint32_t lsb) {
  ++stats_.encapsulated;
  net::LispHeader shim;
  shim.nonce = static_cast<std::uint32_t>(nonces_.next() & 0xFFFFFF);
  shim.locator_status_bits = lsb;
  net::UdpHeader udp;
  // Source port derived from the inner flow for core ECMP friendliness.
  udp.src_port = static_cast<std::uint16_t>(
      0xF000 | (inner.outer_ip().src.value() & 0x0FFF));
  udp.dst_port = net::ports::kLispData;
  net::Ipv4Header outer;
  outer.src = outer_src;
  outer.dst = outer_dst;
  outer.protocol = net::IpProto::kUdp;
  outer.ttl = 64;

  inner.push_outer(shim);
  inner.push_outer(udp);
  inner.push_outer(outer);
  sim().schedule(config_.processing_delay,
                 [this, p = std::move(inner)]() mutable { send(std::move(p)); });
}

void TunnelRouter::on_miss(net::Packet packet, net::Ipv4Address eid) {
  const bool can_pull = resolution_ != nullptr && resolution_->pull();
  auto it = pending_.find(eid);
  const bool new_resolution = (it == pending_.end());
  if (new_resolution) {
    ++stats_.miss_events;
    PendingResolution pending;
    pending.started = sim().now();
    it = pending_.emplace(eid, std::move(pending)).first;
    if (can_pull) {
      send_map_request(eid, it->second);
    }
  }

  switch (config_.miss_policy) {
    case MissPolicy::kDrop:
      ++stats_.miss_dropped;
      network().drop(sim::DropReason::kMappingMiss, packet);
      break;
    case MissPolicy::kQueue:
      if (it->second.queue.size() >= config_.queue_capacity_per_eid) {
        ++stats_.queue_overflow_drops;
        network().drop(sim::DropReason::kMappingMiss, packet);
      } else {
        ++stats_.miss_queued;
        it->second.queue.push_back(QueuedPacket{std::move(packet), sim().now()});
      }
      break;
    case MissPolicy::kForwardOverlay:
      forward_via_overlay(std::move(packet));
      break;
  }

  // Without any resolution path (NERD between pushes, or a PCE push that has
  // not arrived yet), the pending entry would leak; time it out.
  if (new_resolution && !can_pull) {
    it->second.timer = sim().schedule(config_.queue_timeout, [this, eid] {
      auto found = pending_.find(eid);
      if (found == pending_.end()) return;
      PendingResolution timed_out = std::move(found->second);
      pending_.erase(found);
      finish_pending(std::move(timed_out), /*resolved=*/false);
    });
  }
}

void TunnelRouter::finish_pending(PendingResolution pending, bool resolved) {
  pending.timer.cancel();
  if (resolved) {
    for (auto& queued : pending.queue) {
      ++stats_.queue_flushed;
      queue_delay_.add_duration(sim().now() - queued.enqueued);
      handle_outbound(std::move(queued.packet));
    }
  } else {
    for (auto& queued : pending.queue) {
      ++stats_.queue_timeout_drops;
      network().drop(sim::DropReason::kMappingMiss, queued.packet);
    }
  }
  for (auto& observer : pending.observers) observer(resolved);
}

void TunnelRouter::send_map_request(net::Ipv4Address eid,
                                    PendingResolution& pending) {
  pending.nonce = nonces_.next();
  resolution_->send_map_request(*this, eid, pending.nonce, pending.retries);
  pending.timer = sim().schedule(config_.request_timeout,
                                 [this, eid] { on_request_timeout(eid); });
}

void TunnelRouter::emit_map_request(net::Ipv4Address target,
                                    net::Ipv4Address eid, std::uint64_t nonce,
                                    bool record_route) {
  ++stats_.map_requests_sent;
  std::shared_ptr<const MapRequest> request =
      std::make_shared<MapRequest>(nonce, eid, rloc(), record_route);
  if (record_route) {
    // Seed the recorded path with ourselves so the relayed reply's final
    // hop knows where to deliver it (CONS semantics).
    request = request->with_hop(rloc());
  }
  send(net::Packet::udp(rloc(), target, net::ports::kLispControl,
                        net::ports::kLispControl, std::move(request)));
}

void TunnelRouter::on_request_timeout(net::Ipv4Address eid) {
  auto it = pending_.find(eid);
  if (it == pending_.end()) return;
  PendingResolution& pending = it->second;
  if (pending.retries < config_.max_request_retries) {
    ++pending.retries;
    ++stats_.map_request_retries;
    send_map_request(eid, pending);
    return;
  }
  // Give up: drain the queue as mapping-miss drops.
  PendingResolution abandoned = std::move(pending);
  pending_.erase(it);
  finish_pending(std::move(abandoned), /*resolved=*/false);
}

void TunnelRouter::forward_via_overlay(net::Packet packet) {
  const auto target =
      resolution_ != nullptr
          ? resolution_->data_forward_target(*this, packet.outer_ip().dst)
          : std::nullopt;
  if (!target.has_value()) {
    ++stats_.miss_dropped;
    network().drop(sim::DropReason::kMappingMiss, packet);
    return;
  }
  ++stats_.overlay_data_forwarded;
  // IP-in-IP toward the overlay attachment; overlay routers re-tunnel it
  // hop by hop toward the registering ETR.
  net::Ipv4Header outer;
  outer.src = rloc();
  outer.dst = *target;
  outer.protocol = net::IpProto::kIpInIp;
  packet.push_outer(outer);
  sim().schedule(config_.processing_delay,
                 [this, p = std::move(packet)]() mutable { send(std::move(p)); });
}

void TunnelRouter::on_map_reply(const MapReply& reply) {
  ++stats_.map_replies_received;
  cache_.insert(reply.entry(), sim().now());

  // Find the pending resolution this answers (nonce match).
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->second.nonce != reply.nonce()) continue;
    PendingResolution pending = std::move(it->second);
    pending_.erase(it);
    finish_pending(std::move(pending), /*resolved=*/true);
    return;
  }
}

// ---------------------------------------------------------------------------
// Delivery (control messages and tunnel termination)
// ---------------------------------------------------------------------------

void TunnelRouter::deliver(net::Packet packet) {
  const auto& ip = packet.outer_ip();

  if (ip.protocol == net::IpProto::kIpInIp) {
    if (config_.etr_role) {
      handle_overlay_data(std::move(packet));
    } else {
      Node::deliver(std::move(packet));
    }
    return;
  }

  const auto* udp = packet.udp();
  if (udp == nullptr) {
    Node::deliver(std::move(packet));
    return;
  }

  switch (udp->dst_port) {
    case net::ports::kLispData:
      if (config_.etr_role) {
        handle_lisp_data(std::move(packet));
        return;
      }
      break;
    case net::ports::kLispControl: {
      if (auto reply = packet.payload_as<MapReply>()) {
        if (config_.itr_role) {
          on_map_reply(*reply);
          return;
        }
      } else if (auto request = packet.payload_as<MapRequest>()) {
        if (config_.etr_role) {
          handle_map_request(packet, *request);
          return;
        }
      } else if (auto probe = packet.payload_as<RlocProbe>()) {
        handle_probe(packet, *probe);
        return;
      }
      break;
    }
    case net::ports::kPcePush:
    case net::ports::kEtrSync: {
      if (auto flow_push = packet.payload_as<FlowMappingPush>()) {
        handle_flow_push(*flow_push);
        return;
      }
      break;
    }
    case net::ports::kNerd: {
      if (auto entry_push = packet.payload_as<MapPush>()) {
        handle_entry_push(*entry_push);
        return;
      }
      break;
    }
    default:
      break;
  }
  Node::deliver(std::move(packet));
}

void TunnelRouter::handle_lisp_data(net::Packet packet) {
  // Keep a copy of the outer header for gleaning before stripping it.
  const net::Packet outer_view = packet;
  packet.pop_outer();  // outer IPv4
  packet.pop_outer();  // UDP
  packet.pop_outer();  // LISP shim
  ++stats_.decapsulated;

  const auto inner_dst = packet.inner_ip().dst;
  if (!is_local_eid(inner_dst)) {
    // Mis-delivered tunnel (stale mapping after TE moves); count and drop.
    ++stats_.not_local_after_decap;
    network().drop(sim::DropReason::kNoRoute, packet);
    return;
  }

  glean(outer_view, packet);

  sim().schedule(config_.processing_delay,
                 [this, p = std::move(packet)]() mutable { send(std::move(p)); });
}

void TunnelRouter::handle_overlay_data(net::Packet packet) {
  packet.pop_outer();  // strip the overlay IP-in-IP header
  ++stats_.decapsulated;
  const auto inner_dst = packet.inner_ip().dst;
  if (!is_local_eid(inner_dst)) {
    ++stats_.not_local_after_decap;
    network().drop(sim::DropReason::kNoRoute, packet);
    return;
  }
  sim().schedule(config_.processing_delay,
                 [this, p = std::move(packet)]() mutable { send(std::move(p)); });
}

void TunnelRouter::glean(const net::Packet& outer, const net::Packet& inner) {
  const auto source_eid = inner.inner_ip().src;
  const auto source_rloc = outer.outer_ip().src;
  if (!is_eid(source_eid) || is_local_eid(source_eid)) return;

  const auto key = net::pair_key(inner.inner_ip().dst, source_eid);
  // "First" also covers a changed outer source RLOC mid-flow: when the
  // remote domain re-optimises its ingress (new RLOC_S in its Step-7b
  // tuples), the change must propagate through the same multicast path.
  const auto seen = seen_reverse_flows_.find(key);
  const bool first =
      seen == seen_reverse_flows_.end() || seen->second != source_rloc;
  seen_reverse_flows_[key] = source_rloc;

  if (config_.glean_on_decap) {
    // Vanilla LISP: cache ES/32 -> RLOC_S so return traffic needs no
    // two-way resolution — forcing it back through the sender's ITR (§1,
    // third weakness).
    MapEntry gleaned;
    gleaned.eid_prefix = net::Ipv4Prefix::host(source_eid);
    gleaned.rlocs = {Rloc{source_rloc, 1, 100, true}};
    gleaned.ttl_seconds = 60;
    cache_.insert(gleaned, sim().now());
    ++stats_.gleaned;
  }

  if (reverse_hook_) {
    // Reverse tuple for the return flow (inner dst -> inner src): the local
    // egress RLOC is left unset for the control plane to choose.
    FlowMapping reverse;
    reverse.source_eid = inner.inner_ip().dst;
    reverse.destination_eid = source_eid;
    reverse.source_rloc = net::Ipv4Address();  // chosen by PCE/IRC
    reverse.destination_rloc = source_rloc;
    reverse_hook_(*this, reverse, first);
  }
}

void TunnelRouter::handle_map_request(const net::Packet& packet,
                                      const MapRequest& request) {
  (void)packet;
  const MapEntry* match = nullptr;
  for (const auto& entry : config_.site_mappings) {
    if (entry.eid_prefix.contains(request.target_eid())) {
      if (match == nullptr ||
          entry.eid_prefix.length() > match->eid_prefix.length()) {
        match = &entry;
      }
    }
  }
  if (match == nullptr) return;  // not authoritative; ignore
  ++stats_.map_requests_answered;

  if (request.record_route() && !request.path().empty()) {
    // CONS: reply retraces the recorded overlay path.
    auto reply = std::make_shared<MapReply>(request.nonce(), *match,
                                            request.path());
    const auto next_hop = request.path().back();
    auto popped = reply->with_path_popped();
    sim().schedule(config_.processing_delay, [this, next_hop, popped] {
      send(net::Packet::udp(rloc(), next_hop, net::ports::kLispControl,
                            net::ports::kLispControl, popped));
    });
  } else {
    // ALT: reply goes straight back to the requesting ITR's RLOC.
    auto reply = std::make_shared<MapReply>(request.nonce(), *match);
    const auto to = request.reply_to_rloc();
    sim().schedule(config_.processing_delay, [this, to, reply] {
      send(net::Packet::udp(rloc(), to, net::ports::kLispControl,
                            net::ports::kLispControl, reply));
    });
  }
}

void TunnelRouter::handle_flow_push(const FlowMappingPush& push) {
  ++stats_.flow_pushes_received;
  for (const auto& mapping : push.mappings()) {
    install_flow_mapping(mapping);
  }
}

void TunnelRouter::handle_entry_push(const MapPush& push) {
  ++stats_.entry_pushes_received;
  if (push.generation() != 0 && push.generation() < highest_push_generation_) {
    return;  // stale replay
  }
  highest_push_generation_ = std::max(highest_push_generation_, push.generation());
  for (const auto& entry : push.entries()) {
    install_mapping(entry);
  }
}

// ---------------------------------------------------------------------------
// Control-plane surface
// ---------------------------------------------------------------------------

void TunnelRouter::install_mapping(const MapEntry& entry) {
  cache_.insert(entry, sim().now());
  // A freshly pushed mapping resolves any outstanding miss for that prefix.
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (!entry.eid_prefix.contains(it->first)) {
      ++it;
      continue;
    }
    PendingResolution pending = std::move(it->second);
    it = pending_.erase(it);
    finish_pending(std::move(pending), /*resolved=*/true);
  }
}

void TunnelRouter::install_flow_mapping(const FlowMapping& mapping) {
  const auto key = net::pair_key(mapping.source_eid, mapping.destination_eid);
  auto it = flow_table_.find(key);
  if (it != flow_table_.end() && it->second.version > mapping.version) {
    return;  // keep the newer tuple
  }
  flow_table_[key] = mapping;

  // Flush any resolution waiting on this destination EID for this flow.
  auto pending_it = pending_.find(mapping.destination_eid);
  if (pending_it != pending_.end()) {
    PendingResolution pending = std::move(pending_it->second);
    pending_.erase(pending_it);
    finish_pending(std::move(pending), /*resolved=*/true);
  }
}

const FlowMapping* TunnelRouter::find_flow_mapping(
    net::Ipv4Address src_eid, net::Ipv4Address dst_eid) const {
  auto it = flow_table_.find(net::pair_key(src_eid, dst_eid));
  return it == flow_table_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// Flow-aggregate surface
// ---------------------------------------------------------------------------

const MapEntry* TunnelRouter::aggregate_lookup(net::Ipv4Address eid,
                                               std::uint64_t flows) {
  return cache_.lookup_batch(eid, flows, sim().now());
}

void TunnelRouter::aggregate_resolve(net::Ipv4Address eid,
                                     AggregateObserver observer) {
  const bool can_pull = resolution_ != nullptr && resolution_->pull();
  auto it = pending_.find(eid);
  if (it == pending_.end()) {
    ++stats_.miss_events;
    PendingResolution pending;
    pending.started = sim().now();
    it = pending_.emplace(eid, std::move(pending)).first;
    if (can_pull) {
      send_map_request(eid, it->second);
    } else {
      // Push-only planes: wait for the push, give up after queue_timeout —
      // same lifecycle on_miss() gives a packet-mode episode.
      it->second.timer = sim().schedule(config_.queue_timeout, [this, eid] {
        auto found = pending_.find(eid);
        if (found == pending_.end()) return;
        PendingResolution timed_out = std::move(found->second);
        pending_.erase(found);
        finish_pending(std::move(timed_out), /*resolved=*/false);
      });
    }
  }
  it->second.observers.push_back(std::move(observer));
}

void TunnelRouter::aggregate_account(const AggregateCounts& counts) noexcept {
  stats_.data_seen += counts.data_seen;
  stats_.encapsulated += counts.encapsulated;
  stats_.decapsulated += counts.decapsulated;
  stats_.miss_dropped += counts.miss_dropped;
  stats_.miss_queued += counts.miss_queued;
  stats_.queue_flushed += counts.queue_flushed;
  stats_.queue_overflow_drops += counts.queue_overflow_drops;
  stats_.queue_timeout_drops += counts.queue_timeout_drops;
  stats_.overlay_data_forwarded += counts.overlay_data_forwarded;
  stats_.entry_pushes_received += counts.entry_pushes_received;
}

void TunnelRouter::aggregate_queue_delay(sim::SimDuration delay,
                                         std::uint64_t flows) {
  queue_delay_.add_n(delay.us(), flows);
}

// ---------------------------------------------------------------------------
// RLOC probing (draft §6.3)
// ---------------------------------------------------------------------------

void TunnelRouter::probe_cycle() {
  // Working set: every locator referenced by the cache or by flow tuples.
  auto targets = cache_.distinct_rlocs();
  for (const auto& [key, tuple] : flow_table_) {
    (void)key;
    if (std::find(targets.begin(), targets.end(), tuple.destination_rloc) ==
        targets.end()) {
      targets.push_back(tuple.destination_rloc);
    }
  }
  for (auto rloc_addr : targets) {
    if (rloc_addr == rloc()) continue;  // never probe ourselves
    if (probe_states_[rloc_addr].outstanding_nonce != 0) continue;  // in flight
    send_probe(rloc_addr);
  }
  sim().schedule_daemon(config_.probe_interval, [this] { probe_cycle(); });
}

void TunnelRouter::send_probe(net::Ipv4Address rloc_addr) {
  ProbeState& state = probe_states_[rloc_addr];
  state.outstanding_nonce = nonces_.next();
  ++stats_.probes_sent;
  auto probe = std::make_shared<RlocProbe>(state.outstanding_nonce,
                                           /*is_reply=*/false);
  send(net::Packet::udp(rloc(), rloc_addr, net::ports::kLispControl,
                        net::ports::kLispControl, std::move(probe)));
  const auto nonce = state.outstanding_nonce;
  // Daemon: probing a dead RLOC must not keep an unbounded run() alive.
  state.timeout =
      sim().schedule_daemon(config_.probe_timeout, [this, rloc_addr, nonce] {
        on_probe_timeout(rloc_addr, nonce);
      });
}

void TunnelRouter::on_probe_timeout(net::Ipv4Address rloc_addr,
                                    std::uint64_t nonce) {
  auto it = probe_states_.find(rloc_addr);
  if (it == probe_states_.end() || it->second.outstanding_nonce != nonce) return;
  ProbeState& state = it->second;
  state.outstanding_nonce = 0;
  ++state.consecutive_losses;
  if (state.considered_up &&
      state.consecutive_losses >= config_.probe_down_threshold) {
    state.considered_up = false;
    ++stats_.rlocs_marked_down;
    cache_.set_rloc_reachability_all(rloc_addr, false);
  }
}

void TunnelRouter::handle_probe(const net::Packet& packet,
                                const RlocProbe& probe) {
  if (!probe.is_reply()) {
    // Any tunnel router answers probes for its own RLOC.
    ++stats_.probes_answered;
    auto reply = std::make_shared<RlocProbe>(probe.nonce(), /*is_reply=*/true);
    const auto to = packet.outer_ip().src;
    sim().schedule(config_.processing_delay, [this, to, reply] {
      send(net::Packet::udp(rloc(), to, net::ports::kLispControl,
                            net::ports::kLispControl, reply));
    });
    return;
  }
  // A reply: find the probed locator by nonce.
  const auto from = packet.outer_ip().src;
  auto it = probe_states_.find(from);
  if (it == probe_states_.end() || it->second.outstanding_nonce != probe.nonce()) {
    return;  // stale or unsolicited
  }
  ProbeState& state = it->second;
  state.timeout.cancel();
  state.outstanding_nonce = 0;
  state.consecutive_losses = 0;
  ++stats_.probe_replies_received;
  if (!state.considered_up) {
    state.considered_up = true;
    ++stats_.rlocs_marked_up;
    cache_.set_rloc_reachability_all(from, true);
  }
}

bool TunnelRouter::rloc_reachable(net::Ipv4Address rloc_addr) const {
  auto it = probe_states_.find(rloc_addr);
  return it == probe_states_.end() || it->second.considered_up;
}

void TunnelRouter::set_rloc_reachability(net::Ipv4Address rloc_addr,
                                         bool reachable) {
  cache_.set_rloc_reachability_all(rloc_addr, reachable);
  // Keep our authoritative site mappings consistent so future Map-Replies
  // advertise the change.
  for (auto& entry : config_.site_mappings) {
    for (auto& r : entry.rlocs) {
      if (r.address == rloc_addr) r.reachable = reachable;
    }
  }
}

}  // namespace lispcp::lisp
