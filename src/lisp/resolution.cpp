#include "lisp/resolution.hpp"

#include <stdexcept>

#include "lisp/tunnel_router.hpp"

namespace lispcp::lisp {

std::optional<net::Ipv4Address> ResolutionStrategy::data_forward_target(
    const TunnelRouter& itr, net::Ipv4Address eid) const {
  (void)itr;
  (void)eid;
  return std::nullopt;
}

void UnicastPullResolution::send_map_request(TunnelRouter& itr,
                                             net::Ipv4Address eid,
                                             std::uint64_t nonce,
                                             int attempt) {
  (void)attempt;
  itr.emit_map_request(target_, eid, nonce, record_route_);
}

std::optional<net::Ipv4Address> UnicastPullResolution::data_forward_target(
    const TunnelRouter& itr, net::Ipv4Address eid) const {
  (void)itr;
  (void)eid;
  return target_;
}

ReplicaPullResolution::ReplicaPullResolution(
    std::vector<net::Ipv4Address> replicas)
    : replicas_(std::move(replicas)) {
  if (replicas_.empty()) {
    throw std::invalid_argument("ReplicaPullResolution: no replicas");
  }
}

void ReplicaPullResolution::send_map_request(TunnelRouter& itr,
                                             net::Ipv4Address eid,
                                             std::uint64_t nonce,
                                             int attempt) {
  const auto& replica =
      replicas_[static_cast<std::size_t>(attempt) % replicas_.size()];
  itr.emit_map_request(replica, eid, nonce, /*record_route=*/false);
}

std::optional<net::Ipv4Address> ReplicaPullResolution::data_forward_target(
    const TunnelRouter& itr, net::Ipv4Address eid) const {
  (void)itr;
  (void)eid;
  return replicas_.front();
}

}  // namespace lispcp::lisp
