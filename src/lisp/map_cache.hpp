// map_cache.hpp — the ITR's EID-to-RLOC map-cache.
//
// Longest-prefix-match cache with TTL aging and LRU capacity eviction.  The
// paper's claim (i) hinges on this component's behaviour: "a hit might not
// necessarily be found, either because the mapping has aged out, or simply
// because it was never requested before" (§1).  Experiment E1 sweeps its
// capacity and the workload skew to regenerate exactly those miss causes.
//
// Storage layout: entries live in a flat slot vector with an intrusive
// doubly-linked LRU (prev/next slot indices), and the PrefixTrie maps an
// address straight to its slot index — the per-packet hit path is one trie
// walk plus one array access, with no node-based containers and no hash
// find.  The exact-match operations (insert/erase/failover) go through a
// FlatMap<prefix, slot>.  Anything order-sensitive (distinct_rlocs feeds
// the probe scheduler) is emitted from a sorted snapshot, never from hash
// order.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/flat_map.hpp"
#include "lisp/map_entry.hpp"
#include "net/prefix_trie.hpp"
#include "sim/time.hpp"

namespace lispcp::lisp {

struct MapCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses_absent = 0;   ///< never inserted (cold miss)
  std::uint64_t misses_expired = 0;  ///< entry present but TTL-aged out
  std::uint64_t inserts = 0;
  std::uint64_t updates = 0;
  std::uint64_t evictions = 0;  ///< LRU capacity evictions

  [[nodiscard]] double hit_ratio() const noexcept {
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) / static_cast<double>(lookups);
  }
};

/// Not a Node: a passive data structure embedded in the ITR (and, under
/// NERD, doubling as the full local database with capacity = 0 = unlimited).
class MapCache {
 public:
  /// `capacity` = maximum number of entries (0 means unlimited).
  explicit MapCache(std::size_t capacity = 0) : capacity_(capacity) {}

  /// LPM lookup of `eid` at time `now`, returning a view of the entry (valid
  /// until the next mutating call) or nullptr.  Expired entries are removed
  /// and counted as expired misses.  A hit refreshes LRU recency.
  [[nodiscard]] const MapEntry* lookup(net::Ipv4Address eid, sim::SimTime now) {
    return lookup_batch(eid, 1, now);
  }

  /// Batch form for the flow-aggregate workload engine: one LPM walk and one
  /// LRU touch, stats advanced by `count` lookups (all hit or all miss — a
  /// batch models same-epoch flows to one destination, which in packet mode
  /// would indeed probe the same entry back to back).
  [[nodiscard]] const MapEntry* lookup_batch(net::Ipv4Address eid,
                                             std::uint64_t count,
                                             sim::SimTime now);

  /// As lookup(), but returns an owned copy (convenience for tests and
  /// callers that outlive the next mutation).
  [[nodiscard]] std::optional<MapEntry> lookup_copy(net::Ipv4Address eid,
                                                    sim::SimTime now) {
    const MapEntry* entry = lookup(eid, now);
    return entry == nullptr ? std::nullopt : std::optional<MapEntry>(*entry);
  }

  /// Inserts or replaces the entry for its EID prefix, stamped at `now`.
  /// Eviction runs if the cache is over capacity.
  void insert(const MapEntry& entry, sim::SimTime now);

  /// Marks one RLOC of an entry unreachable/reachable (failover handling).
  /// Returns false if no exact entry for `prefix` exists.
  bool set_rloc_reachability(const net::Ipv4Prefix& prefix,
                             net::Ipv4Address rloc, bool reachable);

  /// Marks `rloc` up/down in every entry that references it; returns the
  /// number of entries touched.  Used when locator-status propagation or a
  /// failover controller reports a locator change.  O(entries referencing
  /// `rloc`) via the reverse index — this is the failover hot path, and a
  /// full-cache scan would melt at f2_rib_scaling cache sizes.
  std::size_t set_rloc_reachability_all(net::Ipv4Address rloc, bool reachable);

  /// Every distinct locator address referenced by live entries (the RLOC
  /// probing working set), ascending.  Sorted because the probe scheduler
  /// turns this list into event order — it must not reflect table layout.
  [[nodiscard]] std::vector<net::Ipv4Address> distinct_rlocs() const;

  /// Number of live entries whose RLOC set references `rloc`.
  [[nodiscard]] std::size_t entries_referencing(net::Ipv4Address rloc) const;

  /// Removes the exact entry; returns true iff it existed.
  bool erase(const net::Ipv4Prefix& prefix);

  [[nodiscard]] std::size_t size() const noexcept { return live_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] const MapCacheStats& stats() const noexcept { return stats_; }

  void clear();

 private:
  static constexpr std::uint32_t kNone = static_cast<std::uint32_t>(-1);

  struct Slot {
    MapEntry entry;
    sim::SimTime expiry;
    std::uint32_t lru_prev = kNone;
    std::uint32_t lru_next = kNone;
  };

  [[nodiscard]] std::uint32_t acquire_slot();
  void erase_slot(std::uint32_t index);
  void touch(std::uint32_t index);
  void link_front(std::uint32_t index);
  void unlink(std::uint32_t index);
  void evict_if_needed();
  void index_rlocs(const MapEntry& entry);
  void unindex_rlocs(const MapEntry& entry);

  std::size_t capacity_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;  ///< retired slot indices (buffers kept)
  std::size_t live_ = 0;
  std::uint32_t lru_head_ = kNone;  ///< most recently used
  std::uint32_t lru_tail_ = kNone;  ///< eviction victim
  net::PrefixTrie<std::uint32_t> index_;  ///< LPM -> slot index
  core::FlatMap<net::Ipv4Prefix, std::uint32_t> by_prefix_;
  /// Reverse index: RLOC -> prefixes of entries referencing it, so locator
  /// flaps touch only the affected entries.
  core::FlatMap<net::Ipv4Address, core::FlatSet<net::Ipv4Prefix>> rloc_index_;
  MapCacheStats stats_;
};

}  // namespace lispcp::lisp
