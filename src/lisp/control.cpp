#include "lisp/control.hpp"

namespace lispcp::lisp {

void serialize_map_entry(net::ByteWriter& w, const MapEntry& entry) {
  w.address(entry.eid_prefix.address());
  w.u8(static_cast<std::uint8_t>(entry.eid_prefix.length()));
  w.u32(entry.ttl_seconds);
  w.u64(entry.version);
  w.u8(static_cast<std::uint8_t>(entry.rlocs.size()));
  for (const auto& rloc : entry.rlocs) {
    w.address(rloc.address);
    w.u8(rloc.priority);
    w.u8(rloc.weight);
    w.u8(rloc.reachable ? 1 : 0);
  }
}

MapEntry parse_map_entry(net::ByteReader& r) {
  MapEntry entry;
  const auto base = r.address();
  const auto length = r.u8();
  if (length > 32) throw net::ParseError("MapEntry: prefix length > 32");
  entry.eid_prefix = net::Ipv4Prefix(base, length);
  entry.ttl_seconds = r.u32();
  entry.version = r.u64();
  const auto n = r.u8();
  entry.rlocs.reserve(n);
  for (int i = 0; i < n; ++i) {
    Rloc rloc;
    rloc.address = r.address();
    rloc.priority = r.u8();
    rloc.weight = r.u8();
    rloc.reachable = r.u8() != 0;
    entry.rlocs.push_back(rloc);
  }
  return entry;
}

std::size_t map_entry_wire_size(const MapEntry& entry) noexcept {
  return 4 + 1 + 4 + 8 + 1 + entry.rlocs.size() * 7;
}

std::size_t MapRegister::wire_size() const noexcept {
  std::size_t total = 8 + 4 + 2;
  for (const auto& entry : entries_) total += map_entry_wire_size(entry);
  return total;
}

void MapRegister::serialize(net::ByteWriter& w) const {
  w.u64(nonce_);
  w.u32(ttl_seconds_);
  w.u16(static_cast<std::uint16_t>(entries_.size()));
  for (const auto& entry : entries_) serialize_map_entry(w, entry);
}

std::shared_ptr<const MapRegister> MapRegister::parse_wire(net::ByteReader& r) {
  const auto nonce = r.u64();
  const auto ttl = r.u32();
  const auto n = r.u16();
  std::vector<MapEntry> entries;
  entries.reserve(n);
  for (int i = 0; i < n; ++i) entries.push_back(parse_map_entry(r));
  return std::make_shared<MapRegister>(nonce, ttl, std::move(entries));
}

std::string MapRegister::describe() const {
  return "Map-Register nonce=" + std::to_string(nonce_) + " ttl=" +
         std::to_string(ttl_seconds_) + "s records=" +
         std::to_string(entries_.size());
}

std::shared_ptr<const MapRequest> MapRequest::with_hop(net::Ipv4Address hop) const {
  auto copy = std::make_shared<MapRequest>(nonce_, target_eid_, reply_to_rloc_,
                                           record_route_);
  copy->path_ = path_;
  copy->path_.push_back(hop);
  return copy;
}

std::size_t MapRequest::wire_size() const noexcept {
  return 8 + 4 + 4 + 1 + 1 + path_.size() * 4;
}

void MapRequest::serialize(net::ByteWriter& w) const {
  w.u64(nonce_);
  w.address(target_eid_);
  w.address(reply_to_rloc_);
  w.u8(record_route_ ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(path_.size()));
  for (auto hop : path_) w.address(hop);
}

std::shared_ptr<const MapRequest> MapRequest::parse_wire(net::ByteReader& r) {
  const auto nonce = r.u64();
  const auto target = r.address();
  const auto reply_to = r.address();
  const bool record_route = r.u8() != 0;
  auto out = std::make_shared<MapRequest>(nonce, target, reply_to, record_route);
  const auto hops = r.u8();
  for (int i = 0; i < hops; ++i) out->path_.push_back(r.address());
  return out;
}

std::string MapRequest::describe() const {
  return "Map-Request nonce=" + std::to_string(nonce_) + " eid=" +
         target_eid_.to_string() + " reply-to=" + reply_to_rloc_.to_string() +
         (record_route_ ? " rr(" + std::to_string(path_.size()) + ")" : "");
}

std::shared_ptr<const MapReply> MapReply::with_path_popped() const {
  std::vector<net::Ipv4Address> remaining = path_;
  if (!remaining.empty()) remaining.pop_back();
  return std::make_shared<MapReply>(nonce_, entry_, std::move(remaining));
}

std::size_t MapReply::wire_size() const noexcept {
  return 8 + map_entry_wire_size(entry_) + 1 + path_.size() * 4;
}

void MapReply::serialize(net::ByteWriter& w) const {
  w.u64(nonce_);
  serialize_map_entry(w, entry_);
  w.u8(static_cast<std::uint8_t>(path_.size()));
  for (auto hop : path_) w.address(hop);
}

std::shared_ptr<const MapReply> MapReply::parse_wire(net::ByteReader& r) {
  const auto nonce = r.u64();
  auto entry = parse_map_entry(r);
  std::vector<net::Ipv4Address> path;
  const auto hops = r.u8();
  for (int i = 0; i < hops; ++i) path.push_back(r.address());
  return std::make_shared<MapReply>(nonce, std::move(entry), std::move(path));
}

std::string MapReply::describe() const {
  return "Map-Reply nonce=" + std::to_string(nonce_) + " " + entry_.to_string();
}

std::size_t MapPush::wire_size() const noexcept {
  std::size_t size = 8 + 2;
  for (const auto& e : entries_) size += map_entry_wire_size(e);
  return size;
}

void MapPush::serialize(net::ByteWriter& w) const {
  w.u64(generation_);
  w.u16(static_cast<std::uint16_t>(entries_.size()));
  for (const auto& e : entries_) serialize_map_entry(w, e);
}

std::shared_ptr<const MapPush> MapPush::parse_wire(net::ByteReader& r) {
  const auto generation = r.u64();
  const auto n = r.u16();
  std::vector<MapEntry> entries;
  entries.reserve(n);
  for (int i = 0; i < n; ++i) entries.push_back(parse_map_entry(r));
  return std::make_shared<MapPush>(std::move(entries), generation);
}

std::string MapPush::describe() const {
  return "Map-Push gen=" + std::to_string(generation_) + " " +
         std::to_string(entries_.size()) + " entries";
}

void FlowMappingPush::serialize(net::ByteWriter& w) const {
  w.u16(static_cast<std::uint16_t>(mappings_.size()));
  for (const auto& m : mappings_) {
    w.address(m.source_eid);
    w.address(m.destination_eid);
    w.address(m.source_rloc);
    w.address(m.destination_rloc);
    w.u64(m.version);
  }
}

std::shared_ptr<const FlowMappingPush> FlowMappingPush::parse_wire(
    net::ByteReader& r) {
  const auto n = r.u16();
  std::vector<FlowMapping> mappings;
  mappings.reserve(n);
  for (int i = 0; i < n; ++i) {
    FlowMapping m;
    m.source_eid = r.address();
    m.destination_eid = r.address();
    m.source_rloc = r.address();
    m.destination_rloc = r.address();
    m.version = r.u64();
    mappings.push_back(m);
  }
  return std::make_shared<FlowMappingPush>(std::move(mappings));
}

std::string FlowMappingPush::describe() const {
  std::string out = "Flow-Push " + std::to_string(mappings_.size()) + " tuples";
  if (!mappings_.empty()) out += " [" + mappings_.front().to_string() + ", ...]";
  return out;
}

}  // namespace lispcp::lisp
