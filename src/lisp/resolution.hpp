// resolution.hpp — pluggable ITR miss-resolution strategies.
//
// What an ITR does when the map-cache misses is the property that separates
// the mapping systems the paper compares: pull systems (ALT, CONS,
// Map-Server) send a Map-Request somewhere and wait; push systems (NERD,
// PCE) have no on-demand path at all — a miss either waits for the next
// push or times out.  The seed entangled both modes in XtrConfig fields
// (`overlay_attachment`, `record_route`); this seam makes the mapping
// system install the behaviour instead: mapping::MappingSystem::attach_itr
// hands each tunnel router a ResolutionStrategy, and the router's
// pending-nonce machinery (retries, queue flush, give-up) stays generic.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/ipv4.hpp"

namespace lispcp::lisp {

class TunnelRouter;

class ResolutionStrategy {
 public:
  virtual ~ResolutionStrategy() = default;

  /// Strategy tag for traces and tests.
  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// True when an on-demand resolution path exists.  Push-only systems
  /// return false: the ITR arms no Map-Request retries and a miss is
  /// resolved only by a later push (or dropped at the queue timeout).
  [[nodiscard]] virtual bool pull() const noexcept = 0;

  /// Emits one Map-Request for `eid` from `itr`.  `attempt` is 0 for the
  /// first transmission and counts retries after that.  Only called when
  /// pull() is true (push-only strategies stub it out).
  virtual void send_map_request(TunnelRouter& itr, net::Ipv4Address eid,
                                std::uint64_t nonce, int attempt) = 0;

  /// Where MissPolicy::kForwardOverlay tunnels data packets while the
  /// mapping resolves; nullopt = the system has no data plane for misses,
  /// so the packet is dropped.
  [[nodiscard]] virtual std::optional<net::Ipv4Address> data_forward_target(
      const TunnelRouter& itr, net::Ipv4Address eid) const;
};

/// NERD / PCE / plain-IP: mappings arrive by push only.
class PushOnlyResolution final : public ResolutionStrategy {
 public:
  [[nodiscard]] const char* name() const noexcept override { return "push-only"; }
  [[nodiscard]] bool pull() const noexcept override { return false; }
  void send_map_request(TunnelRouter&, net::Ipv4Address, std::uint64_t,
                        int) override {}  // unreachable: pull() is false
};

/// ALT / CONS / Map-Server: Map-Requests go to one fixed attachment point
/// (the regional overlay leaf, or the site's Map-Resolver shard).  CONS
/// sets `record_route` so replies retrace the overlay tree.
class UnicastPullResolution : public ResolutionStrategy {
 public:
  explicit UnicastPullResolution(net::Ipv4Address target,
                                 bool record_route = false)
      : target_(target), record_route_(record_route) {}

  [[nodiscard]] const char* name() const noexcept override {
    return record_route_ ? "unicast-pull(record-route)" : "unicast-pull";
  }
  [[nodiscard]] bool pull() const noexcept override { return true; }
  void send_map_request(TunnelRouter& itr, net::Ipv4Address eid,
                        std::uint64_t nonce, int attempt) override;
  [[nodiscard]] std::optional<net::Ipv4Address> data_forward_target(
      const TunnelRouter& itr, net::Ipv4Address eid) const override;

  [[nodiscard]] net::Ipv4Address target() const noexcept { return target_; }
  [[nodiscard]] bool record_route() const noexcept { return record_route_; }

 private:
  net::Ipv4Address target_;
  bool record_route_;
};

/// Replicated Map-Resolver tier: `replicas` is ordered nearest-first for
/// this ITR (the mapping system computes distances from the topology when
/// it attaches the strategy).  The first transmission goes to the nearest
/// replica; each retry rotates to the next one, so a dead or unreachable
/// replica costs one request timeout, not the session.
class ReplicaPullResolution final : public ResolutionStrategy {
 public:
  explicit ReplicaPullResolution(std::vector<net::Ipv4Address> replicas);

  [[nodiscard]] const char* name() const noexcept override {
    return "replica-pull";
  }
  [[nodiscard]] bool pull() const noexcept override { return true; }
  void send_map_request(TunnelRouter& itr, net::Ipv4Address eid,
                        std::uint64_t nonce, int attempt) override;
  [[nodiscard]] std::optional<net::Ipv4Address> data_forward_target(
      const TunnelRouter& itr, net::Ipv4Address eid) const override;

  [[nodiscard]] const std::vector<net::Ipv4Address>& replicas() const noexcept {
    return replicas_;
  }

 private:
  std::vector<net::Ipv4Address> replicas_;  ///< nearest first
};

}  // namespace lispcp::lisp
