// control.hpp — LISP control-plane messages (Map-Request / Map-Reply) and
// mapping-distribution payloads.
//
// Map-Request/Map-Reply follow draft-farinacci-lisp-08 §6.1 in spirit
// (nonce-matched, carrying the requested EID and the replying mapping).  The
// same Map-Request serves both ALT (reply sent directly to the requester)
// and CONS (reply relayed back down the tree): `record_route` makes each
// overlay hop append itself, and the ETR replies along the recorded path.
// MapPush carries batches of records for push-style distribution (NERD
// database deltas).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "lisp/map_entry.hpp"
#include "net/packet.hpp"

namespace lispcp::lisp {

/// Wire helpers shared by the control messages.
void serialize_map_entry(net::ByteWriter& w, const MapEntry& entry);
[[nodiscard]] MapEntry parse_map_entry(net::ByteReader& r);
[[nodiscard]] std::size_t map_entry_wire_size(const MapEntry& entry) noexcept;

class MapRequest final : public net::Payload {
 public:
  MapRequest(std::uint64_t nonce, net::Ipv4Address target_eid,
             net::Ipv4Address reply_to_rloc, bool record_route)
      : nonce_(nonce),
        target_eid_(target_eid),
        reply_to_rloc_(reply_to_rloc),
        record_route_(record_route) {}

  [[nodiscard]] std::uint64_t nonce() const noexcept { return nonce_; }
  [[nodiscard]] net::Ipv4Address target_eid() const noexcept { return target_eid_; }
  [[nodiscard]] net::Ipv4Address reply_to_rloc() const noexcept {
    return reply_to_rloc_;
  }
  [[nodiscard]] bool record_route() const noexcept { return record_route_; }
  [[nodiscard]] const std::vector<net::Ipv4Address>& path() const noexcept {
    return path_;
  }

  /// A copy with `hop` appended to the recorded path (CONS relaying).
  [[nodiscard]] std::shared_ptr<const MapRequest> with_hop(
      net::Ipv4Address hop) const;

  [[nodiscard]] std::size_t wire_size() const noexcept override;
  void serialize(net::ByteWriter& w) const override;
  static std::shared_ptr<const MapRequest> parse_wire(net::ByteReader& r);
  [[nodiscard]] std::string describe() const override;

 private:
  std::uint64_t nonce_;
  net::Ipv4Address target_eid_;
  net::Ipv4Address reply_to_rloc_;
  bool record_route_;
  std::vector<net::Ipv4Address> path_;
};

class MapReply final : public net::Payload {
 public:
  MapReply(std::uint64_t nonce, MapEntry entry,
           std::vector<net::Ipv4Address> remaining_path = {})
      : nonce_(nonce), entry_(std::move(entry)), path_(std::move(remaining_path)) {}

  [[nodiscard]] std::uint64_t nonce() const noexcept { return nonce_; }
  [[nodiscard]] const MapEntry& entry() const noexcept { return entry_; }
  [[nodiscard]] const std::vector<net::Ipv4Address>& path() const noexcept {
    return path_;
  }

  /// A copy with the last path hop removed (consumed by a CONS relay).
  [[nodiscard]] std::shared_ptr<const MapReply> with_path_popped() const;

  [[nodiscard]] std::size_t wire_size() const noexcept override;
  void serialize(net::ByteWriter& w) const override;
  static std::shared_ptr<const MapReply> parse_wire(net::ByteReader& r);
  [[nodiscard]] std::string describe() const override;

 private:
  std::uint64_t nonce_;
  MapEntry entry_;
  std::vector<net::Ipv4Address> path_;
};

/// A batch of mapping records pushed to a consumer (NERD distribution).
class MapPush final : public net::Payload {
 public:
  explicit MapPush(std::vector<MapEntry> entries, std::uint64_t generation = 0)
      : entries_(std::move(entries)), generation_(generation) {}

  [[nodiscard]] const std::vector<MapEntry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::uint64_t generation() const noexcept { return generation_; }

  [[nodiscard]] std::size_t wire_size() const noexcept override;
  void serialize(net::ByteWriter& w) const override;
  static std::shared_ptr<const MapPush> parse_wire(net::ByteReader& r);
  [[nodiscard]] std::string describe() const override;

 private:
  std::vector<MapEntry> entries_;
  std::uint64_t generation_;
};

/// Map-Register (draft-lisp-ms §4.2): an ETR registers the mapping records
/// for its site with a Map-Server.  Registrations carry a TTL and must be
/// refreshed before it lapses, or the Map-Server drops the site (exactly
/// the liveness property that lets the MS answer or forward authoritatively).
class MapRegister final : public net::Payload {
 public:
  MapRegister(std::uint64_t nonce, std::uint32_t ttl_seconds,
              std::vector<MapEntry> entries)
      : nonce_(nonce), ttl_seconds_(ttl_seconds), entries_(std::move(entries)) {}

  [[nodiscard]] std::uint64_t nonce() const noexcept { return nonce_; }
  [[nodiscard]] std::uint32_t ttl_seconds() const noexcept { return ttl_seconds_; }
  [[nodiscard]] const std::vector<MapEntry>& entries() const noexcept {
    return entries_;
  }

  [[nodiscard]] std::size_t wire_size() const noexcept override;
  void serialize(net::ByteWriter& w) const override;
  static std::shared_ptr<const MapRegister> parse_wire(net::ByteReader& r);
  [[nodiscard]] std::string describe() const override;

 private:
  std::uint64_t nonce_;
  std::uint32_t ttl_seconds_;
  std::vector<MapEntry> entries_;
};

/// RLOC liveness probe (draft-farinacci-lisp-08 §6.3 "RLOC reachability"):
/// an xTR periodically probes the locators it is using; a locator that
/// misses several consecutive probes is marked unreachable in every cached
/// mapping, steering traffic to backup RLOCs without control-plane help.
class RlocProbe final : public net::Payload {
 public:
  RlocProbe(std::uint64_t nonce, bool is_reply)
      : nonce_(nonce), is_reply_(is_reply) {}

  [[nodiscard]] std::uint64_t nonce() const noexcept { return nonce_; }
  [[nodiscard]] bool is_reply() const noexcept { return is_reply_; }

  [[nodiscard]] std::size_t wire_size() const noexcept override { return 9; }
  void serialize(net::ByteWriter& w) const override {
    w.u64(nonce_);
    w.u8(is_reply_ ? 1 : 0);
  }
  static std::shared_ptr<const RlocProbe> parse_wire(net::ByteReader& r) {
    const auto nonce = r.u64();
    return std::make_shared<RlocProbe>(nonce, r.u8() != 0);
  }
  [[nodiscard]] std::string describe() const override {
    return std::string(is_reply_ ? "RLOC-Probe-Reply" : "RLOC-Probe") +
           " nonce=" + std::to_string(nonce_);
  }

 private:
  std::uint64_t nonce_;
  bool is_reply_;
};

/// A batch of per-flow mapping tuples (paper Step 7b) pushed to tunnel
/// routers: by the source-domain PCE after decapsulating the mapping
/// (Step 7b), and by an ETR multicasting a learned reverse mapping to its
/// peer ETRs (paper §2, last paragraph).
class FlowMappingPush final : public net::Payload {
 public:
  explicit FlowMappingPush(std::vector<FlowMapping> mappings)
      : mappings_(std::move(mappings)) {}

  [[nodiscard]] const std::vector<FlowMapping>& mappings() const noexcept {
    return mappings_;
  }

  [[nodiscard]] std::size_t wire_size() const noexcept override {
    return 2 + mappings_.size() * 24;
  }
  void serialize(net::ByteWriter& w) const override;
  static std::shared_ptr<const FlowMappingPush> parse_wire(net::ByteReader& r);
  [[nodiscard]] std::string describe() const override;

 private:
  std::vector<FlowMapping> mappings_;
};

}  // namespace lispcp::lisp
