// map_entry.hpp — EID-to-RLOC mapping records.
//
// The unit of the mapping system (draft-farinacci-lisp-08 §6): an EID prefix
// maps to a set of RLOCs, each with priority (lower preferred) and weight
// (load-split among equal priorities).  The paper's Step 7b extends the
// plain record with the per-flow tuple (ES, ED, RLOC_S, RLOC_D) — see
// FlowMapping — enabling two independent one-way tunnels.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/ipv4.hpp"
#include "sim/time.hpp"

namespace lispcp::lisp {

/// One locator within a mapping.
struct Rloc {
  net::Ipv4Address address;
  std::uint8_t priority = 1;  ///< lower value preferred
  std::uint8_t weight = 100;  ///< share among equal-priority locators
  bool reachable = true;

  friend bool operator==(const Rloc&, const Rloc&) = default;
};

/// An EID-prefix-to-RLOC-set mapping record.
struct MapEntry {
  net::Ipv4Prefix eid_prefix;
  std::vector<Rloc> rlocs;
  std::uint32_t ttl_seconds = 900;  ///< draft default: 15 minutes
  /// Version counter bumped by the origin on TE changes; consumers keep the
  /// highest version seen (staleness detection in NERD, ablation benches).
  std::uint64_t version = 0;

  /// Selects an RLOC: the reachable locator with the lowest priority value;
  /// weights split ties deterministically by `flow_hash` so one flow always
  /// pins to one locator (no reordering).  Returns nullopt if every locator
  /// is unreachable.
  [[nodiscard]] std::optional<Rloc> select_rloc(std::uint64_t flow_hash) const;

  /// Locator-status-bits as carried in the LISP data header: bit i set iff
  /// rlocs[i].reachable.
  [[nodiscard]] std::uint32_t locator_status_bits() const noexcept;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const MapEntry&, const MapEntry&) = default;
};

/// The paper's Step 7b mapping tuple (ES, ED, RLOC_S, RLOC_D): packets of
/// the flow ES -> ED are encapsulated from RLOC_S to RLOC_D, where RLOC_S
/// may differ from the encapsulating ITR's own address (one-way tunnels,
/// the basis of the inbound-TE claim (iii)).
struct FlowMapping {
  net::Ipv4Address source_eid;       ///< ES
  net::Ipv4Address destination_eid;  ///< ED
  net::Ipv4Address source_rloc;      ///< RLOC_S — chosen by the local PCE/IRC
  net::Ipv4Address destination_rloc; ///< RLOC_D — chosen by the remote PCE/IRC
  std::uint64_t version = 0;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const FlowMapping&, const FlowMapping&) = default;
};

/// Computes the canonical flow hash used for weight-based RLOC selection.
[[nodiscard]] std::uint64_t flow_hash(net::Ipv4Address src, net::Ipv4Address dst,
                                      std::uint16_t src_port,
                                      std::uint16_t dst_port) noexcept;

}  // namespace lispcp::lisp
