#include "lisp/map_cache.hpp"

#include <algorithm>
#include <vector>

namespace lispcp::lisp {

std::optional<MapEntry> MapCache::lookup(net::Ipv4Address eid, sim::SimTime now) {
  return lookup_batch(eid, 1, now);
}

std::optional<MapEntry> MapCache::lookup_batch(net::Ipv4Address eid,
                                               std::uint64_t count,
                                               sim::SimTime now) {
  stats_.lookups += count;
  const net::Ipv4Prefix* key = index_.lookup(eid);
  if (key == nullptr) {
    stats_.misses_absent += count;
    return std::nullopt;
  }
  auto it = entries_.find(*key);
  if (it == entries_.end()) {
    // Index and map out of sync would be a bug; treat as absent defensively.
    stats_.misses_absent += count;
    return std::nullopt;
  }
  if (it->second.expiry <= now) {
    stats_.misses_expired += count;
    erase(*key);
    return std::nullopt;
  }
  touch(it->second);
  stats_.hits += count;
  return it->second.entry;
}

void MapCache::insert(const MapEntry& entry, sim::SimTime now) {
  const auto expiry = now + sim::SimDuration::seconds(entry.ttl_seconds);
  auto it = entries_.find(entry.eid_prefix);
  if (it != entries_.end()) {
    unindex_rlocs(it->second.entry);
    it->second.entry = entry;
    it->second.expiry = expiry;
    index_rlocs(entry);
    touch(it->second);
    ++stats_.updates;
    return;
  }
  lru_.push_front(entry.eid_prefix);
  entries_.emplace(entry.eid_prefix, Stored{entry, expiry, lru_.begin()});
  index_.insert(entry.eid_prefix, entry.eid_prefix);
  index_rlocs(entry);
  ++stats_.inserts;
  evict_if_needed();
}

bool MapCache::set_rloc_reachability(const net::Ipv4Prefix& prefix,
                                     net::Ipv4Address rloc, bool reachable) {
  auto it = entries_.find(prefix);
  if (it == entries_.end()) return false;
  for (auto& r : it->second.entry.rlocs) {
    if (r.address == rloc) {
      r.reachable = reachable;
      return true;
    }
  }
  return false;
}

std::size_t MapCache::set_rloc_reachability_all(net::Ipv4Address rloc,
                                                bool reachable) {
  const auto indexed = rloc_index_.find(rloc);
  if (indexed == rloc_index_.end()) return 0;
  std::size_t touched = 0;
  for (const auto& prefix : indexed->second) {
    auto it = entries_.find(prefix);
    if (it == entries_.end()) continue;  // defensive; index mirrors entries_
    for (auto& r : it->second.entry.rlocs) {
      if (r.address == rloc && r.reachable != reachable) {
        r.reachable = reachable;
        ++touched;
      }
    }
  }
  return touched;
}

std::vector<net::Ipv4Address> MapCache::distinct_rlocs() const {
  std::vector<net::Ipv4Address> out;
  out.reserve(rloc_index_.size());
  for (const auto& [rloc, prefixes] : rloc_index_) {
    (void)prefixes;
    out.push_back(rloc);
  }
  return out;
}

std::size_t MapCache::entries_referencing(net::Ipv4Address rloc) const {
  const auto it = rloc_index_.find(rloc);
  return it == rloc_index_.end() ? 0 : it->second.size();
}

bool MapCache::erase(const net::Ipv4Prefix& prefix) {
  auto it = entries_.find(prefix);
  if (it == entries_.end()) return false;
  unindex_rlocs(it->second.entry);
  lru_.erase(it->second.lru_position);
  index_.erase(prefix);
  entries_.erase(it);
  return true;
}

void MapCache::clear() {
  entries_.clear();
  lru_.clear();
  index_.clear();
  rloc_index_.clear();
}

void MapCache::index_rlocs(const MapEntry& entry) {
  for (const auto& rloc : entry.rlocs) {
    rloc_index_[rloc.address].insert(entry.eid_prefix);
  }
}

void MapCache::unindex_rlocs(const MapEntry& entry) {
  for (const auto& rloc : entry.rlocs) {
    auto it = rloc_index_.find(rloc.address);
    if (it == rloc_index_.end()) continue;
    it->second.erase(entry.eid_prefix);
    if (it->second.empty()) rloc_index_.erase(it);
  }
}

void MapCache::touch(Stored& stored) {
  lru_.splice(lru_.begin(), lru_, stored.lru_position);
  stored.lru_position = lru_.begin();
}

void MapCache::evict_if_needed() {
  while (capacity_ != 0 && entries_.size() > capacity_) {
    const net::Ipv4Prefix victim = lru_.back();
    erase(victim);
    ++stats_.evictions;
  }
}

}  // namespace lispcp::lisp
