#include "lisp/map_cache.hpp"

#include <algorithm>
#include <vector>

namespace lispcp::lisp {

std::optional<MapEntry> MapCache::lookup(net::Ipv4Address eid, sim::SimTime now) {
  ++stats_.lookups;
  const net::Ipv4Prefix* key = index_.lookup(eid);
  if (key == nullptr) {
    ++stats_.misses_absent;
    return std::nullopt;
  }
  auto it = entries_.find(*key);
  if (it == entries_.end()) {
    // Index and map out of sync would be a bug; treat as absent defensively.
    ++stats_.misses_absent;
    return std::nullopt;
  }
  if (it->second.expiry <= now) {
    ++stats_.misses_expired;
    erase(*key);
    return std::nullopt;
  }
  touch(it->second);
  ++stats_.hits;
  return it->second.entry;
}

void MapCache::insert(const MapEntry& entry, sim::SimTime now) {
  const auto expiry = now + sim::SimDuration::seconds(entry.ttl_seconds);
  auto it = entries_.find(entry.eid_prefix);
  if (it != entries_.end()) {
    it->second.entry = entry;
    it->second.expiry = expiry;
    touch(it->second);
    ++stats_.updates;
    return;
  }
  lru_.push_front(entry.eid_prefix);
  entries_.emplace(entry.eid_prefix, Stored{entry, expiry, lru_.begin()});
  index_.insert(entry.eid_prefix, entry.eid_prefix);
  ++stats_.inserts;
  evict_if_needed();
}

bool MapCache::set_rloc_reachability(const net::Ipv4Prefix& prefix,
                                     net::Ipv4Address rloc, bool reachable) {
  auto it = entries_.find(prefix);
  if (it == entries_.end()) return false;
  for (auto& r : it->second.entry.rlocs) {
    if (r.address == rloc) {
      r.reachable = reachable;
      return true;
    }
  }
  return false;
}

std::size_t MapCache::set_rloc_reachability_all(net::Ipv4Address rloc,
                                                bool reachable) {
  std::size_t touched = 0;
  for (auto& [prefix, stored] : entries_) {
    for (auto& r : stored.entry.rlocs) {
      if (r.address == rloc && r.reachable != reachable) {
        r.reachable = reachable;
        ++touched;
      }
    }
  }
  return touched;
}

std::vector<net::Ipv4Address> MapCache::distinct_rlocs() const {
  std::vector<net::Ipv4Address> out;
  for (const auto& [prefix, stored] : entries_) {
    for (const auto& rloc : stored.entry.rlocs) {
      if (std::find(out.begin(), out.end(), rloc.address) == out.end()) {
        out.push_back(rloc.address);
      }
    }
  }
  return out;
}

bool MapCache::erase(const net::Ipv4Prefix& prefix) {
  auto it = entries_.find(prefix);
  if (it == entries_.end()) return false;
  lru_.erase(it->second.lru_position);
  index_.erase(prefix);
  entries_.erase(it);
  return true;
}

void MapCache::clear() {
  entries_.clear();
  lru_.clear();
  index_.clear();
}

void MapCache::touch(Stored& stored) {
  lru_.splice(lru_.begin(), lru_, stored.lru_position);
  stored.lru_position = lru_.begin();
}

void MapCache::evict_if_needed() {
  while (capacity_ != 0 && entries_.size() > capacity_) {
    const net::Ipv4Prefix victim = lru_.back();
    erase(victim);
    ++stats_.evictions;
  }
}

}  // namespace lispcp::lisp
