#include "lisp/map_cache.hpp"

#include <algorithm>

namespace lispcp::lisp {

const MapEntry* MapCache::lookup_batch(net::Ipv4Address eid, std::uint64_t count,
                                       sim::SimTime now) {
  stats_.lookups += count;
  const std::uint32_t* slot_index = index_.lookup(eid);
  if (slot_index == nullptr) {
    stats_.misses_absent += count;
    return nullptr;
  }
  Slot& slot = slots_[*slot_index];
  if (slot.expiry <= now) {
    stats_.misses_expired += count;
    erase_slot(*slot_index);
    return nullptr;
  }
  touch(*slot_index);
  stats_.hits += count;
  return &slot.entry;
}

void MapCache::insert(const MapEntry& entry, sim::SimTime now) {
  const auto expiry = now + sim::SimDuration::seconds(entry.ttl_seconds);
  if (const std::uint32_t* existing = by_prefix_.find(entry.eid_prefix)) {
    Slot& slot = slots_[*existing];
    unindex_rlocs(slot.entry);
    slot.entry = entry;
    slot.expiry = expiry;
    index_rlocs(entry);
    touch(*existing);
    ++stats_.updates;
    return;
  }
  const std::uint32_t index = acquire_slot();
  Slot& slot = slots_[index];
  slot.entry = entry;
  slot.expiry = expiry;
  link_front(index);
  by_prefix_.insert_or_assign(entry.eid_prefix, index);
  index_.insert(entry.eid_prefix, index);
  index_rlocs(entry);
  ++stats_.inserts;
  evict_if_needed();
}

bool MapCache::set_rloc_reachability(const net::Ipv4Prefix& prefix,
                                     net::Ipv4Address rloc, bool reachable) {
  const std::uint32_t* index = by_prefix_.find(prefix);
  if (index == nullptr) return false;
  for (auto& r : slots_[*index].entry.rlocs) {
    if (r.address == rloc) {
      r.reachable = reachable;
      return true;
    }
  }
  return false;
}

std::size_t MapCache::set_rloc_reachability_all(net::Ipv4Address rloc,
                                                bool reachable) {
  const auto* prefixes = rloc_index_.find(rloc);
  if (prefixes == nullptr) return 0;
  std::size_t touched = 0;
  // Slot-order visit is fine here: each entry's flip is independent and
  // idempotent, so the order entries are touched in is unobservable.
  prefixes->for_each([&](const net::Ipv4Prefix& prefix) {
    const std::uint32_t* index = by_prefix_.find(prefix);
    if (index == nullptr) return;  // defensive; index mirrors the table
    for (auto& r : slots_[*index].entry.rlocs) {
      if (r.address == rloc && r.reachable != reachable) {
        r.reachable = reachable;
        ++touched;
      }
    }
  });
  return touched;
}

std::vector<net::Ipv4Address> MapCache::distinct_rlocs() const {
  return rloc_index_.sorted_keys();
}

std::size_t MapCache::entries_referencing(net::Ipv4Address rloc) const {
  const auto* prefixes = rloc_index_.find(rloc);
  return prefixes == nullptr ? 0 : prefixes->size();
}

bool MapCache::erase(const net::Ipv4Prefix& prefix) {
  const std::uint32_t* index = by_prefix_.find(prefix);
  if (index == nullptr) return false;
  erase_slot(*index);
  return true;
}

void MapCache::clear() {
  slots_.clear();
  free_.clear();
  live_ = 0;
  lru_head_ = kNone;
  lru_tail_ = kNone;
  index_.clear();
  by_prefix_.clear();
  rloc_index_.clear();
}

std::uint32_t MapCache::acquire_slot() {
  if (!free_.empty()) {
    const std::uint32_t index = free_.back();
    free_.pop_back();
    ++live_;
    return index;
  }
  const auto index = static_cast<std::uint32_t>(slots_.size());
  slots_.emplace_back();
  ++live_;
  return index;
}

void MapCache::erase_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  unindex_rlocs(slot.entry);
  unlink(index);
  index_.erase(slot.entry.eid_prefix);
  by_prefix_.erase(slot.entry.eid_prefix);
  // The retired slot keeps its MapEntry (and the rlocs vector's capacity);
  // the next acquire_slot() overwrites it by assignment.
  free_.push_back(index);
  --live_;
}

void MapCache::touch(std::uint32_t index) {
  if (lru_head_ == index) return;
  unlink(index);
  link_front(index);
}

void MapCache::link_front(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.lru_prev = kNone;
  slot.lru_next = lru_head_;
  if (lru_head_ != kNone) slots_[lru_head_].lru_prev = index;
  lru_head_ = index;
  if (lru_tail_ == kNone) lru_tail_ = index;
}

void MapCache::unlink(std::uint32_t index) {
  Slot& slot = slots_[index];
  if (slot.lru_prev != kNone) {
    slots_[slot.lru_prev].lru_next = slot.lru_next;
  } else if (lru_head_ == index) {
    lru_head_ = slot.lru_next;
  }
  if (slot.lru_next != kNone) {
    slots_[slot.lru_next].lru_prev = slot.lru_prev;
  } else if (lru_tail_ == index) {
    lru_tail_ = slot.lru_prev;
  }
  slot.lru_prev = kNone;
  slot.lru_next = kNone;
}

void MapCache::evict_if_needed() {
  while (capacity_ != 0 && live_ > capacity_) {
    erase_slot(lru_tail_);
    ++stats_.evictions;
  }
}

void MapCache::index_rlocs(const MapEntry& entry) {
  for (const auto& rloc : entry.rlocs) {
    rloc_index_[rloc.address].insert(entry.eid_prefix);
  }
}

void MapCache::unindex_rlocs(const MapEntry& entry) {
  for (const auto& rloc : entry.rlocs) {
    core::FlatSet<net::Ipv4Prefix>* prefixes = rloc_index_.find(rloc.address);
    if (prefixes == nullptr) continue;
    prefixes->erase(entry.eid_prefix);
    if (prefixes->empty()) rloc_index_.erase(rloc.address);
  }
}

}  // namespace lispcp::lisp
