#include "lisp/map_entry.hpp"

#include <algorithm>

namespace lispcp::lisp {

std::optional<Rloc> MapEntry::select_rloc(std::uint64_t flow_hash) const {
  // Find the best (lowest) priority among reachable locators.
  std::uint8_t best_priority = 255;
  std::uint32_t total_weight = 0;
  for (const auto& rloc : rlocs) {
    if (!rloc.reachable) continue;
    if (rloc.priority < best_priority) best_priority = rloc.priority;
  }
  for (const auto& rloc : rlocs) {
    if (rloc.reachable && rloc.priority == best_priority) {
      total_weight += rloc.weight;
    }
  }
  if (total_weight == 0) {
    // Either no reachable locator, or all best-priority weights are zero;
    // fall back to the first reachable best-priority locator if any.
    for (const auto& rloc : rlocs) {
      if (rloc.reachable && rloc.priority == best_priority) return rloc;
    }
    return std::nullopt;
  }
  // Deterministic weighted choice: hash picks a point on the weight wheel.
  std::uint32_t point = static_cast<std::uint32_t>(flow_hash % total_weight);
  for (const auto& rloc : rlocs) {
    if (!rloc.reachable || rloc.priority != best_priority) continue;
    if (point < rloc.weight) return rloc;
    point -= rloc.weight;
  }
  return std::nullopt;  // unreachable: the wheel always lands
}

std::uint32_t MapEntry::locator_status_bits() const noexcept {
  std::uint32_t bits = 0;
  for (std::size_t i = 0; i < rlocs.size() && i < 32; ++i) {
    if (rlocs[i].reachable) bits |= (std::uint32_t{1} << i);
  }
  return bits;
}

std::string MapEntry::to_string() const {
  std::string out = eid_prefix.to_string() + " -> {";
  for (std::size_t i = 0; i < rlocs.size(); ++i) {
    if (i > 0) out += ", ";
    out += rlocs[i].address.to_string() + "(p" + std::to_string(rlocs[i].priority) +
           "/w" + std::to_string(rlocs[i].weight) +
           (rlocs[i].reachable ? "" : ",down") + ")";
  }
  out += "} ttl=" + std::to_string(ttl_seconds) + "s v" + std::to_string(version);
  return out;
}

std::string FlowMapping::to_string() const {
  return "(" + source_eid.to_string() + ", " + destination_eid.to_string() + ", " +
         source_rloc.to_string() + ", " + destination_rloc.to_string() + ") v" +
         std::to_string(version);
}

std::uint64_t flow_hash(net::Ipv4Address src, net::Ipv4Address dst,
                        std::uint16_t src_port, std::uint16_t dst_port) noexcept {
  // FNV-1a over the 4-tuple.
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    h = (h ^ v) * 0x100000001b3ull;
  };
  mix(src.value());
  mix(dst.value());
  mix(src_port);
  mix(dst_port);
  return h;
}

}  // namespace lispcp::lisp
