// message.hpp — DNS wire messages (RFC 1035 subset: A and NS records).
//
// A DnsMessage is a net::Payload, so it travels inside simulated UDP packets
// and also serializes to a real wire format (12-byte header, question,
// answer/authority/additional sections; no name compression).  The PCE
// control plane never modifies DNS messages — it only observes them in
// transit and re-encapsulates replies (paper Fig. 1, Steps 2-7) — so
// immutability after construction is enforced by the Payload contract.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dns/name.hpp"
#include "net/ipv4.hpp"
#include "net/packet.hpp"

namespace lispcp::dns {

enum class RrType : std::uint16_t {
  kA = 1,
  kNs = 2,
};

enum class Rcode : std::uint8_t {
  kNoError = 0,
  kServFail = 2,
  kNxDomain = 3,
};

/// One resource record.  rdata is the union of the two supported types:
/// kA carries `addr`, kNs carries `ns_name`.
struct ResourceRecord {
  DomainName name;
  RrType type = RrType::kA;
  std::uint32_t ttl_seconds = 300;
  net::Ipv4Address addr;  ///< kA rdata
  DomainName ns_name;     ///< kNs rdata

  static ResourceRecord a(DomainName name, net::Ipv4Address addr,
                          std::uint32_t ttl_seconds = 300);
  static ResourceRecord ns(DomainName zone, DomainName ns_name,
                           std::uint32_t ttl_seconds = 3600);

  void serialize(net::ByteWriter& w) const;
  static ResourceRecord parse_wire(net::ByteReader& r);
  [[nodiscard]] std::size_t wire_size() const noexcept;

  friend bool operator==(const ResourceRecord&, const ResourceRecord&) = default;
};

struct Question {
  DomainName name;
  RrType type = RrType::kA;

  friend bool operator==(const Question&, const Question&) = default;
};

/// An immutable DNS message.  Build with the static factories, then wrap in
/// a shared_ptr and attach to a packet.
class DnsMessage final : public net::Payload {
 public:
  /// A query for `question` with transaction id `id`.
  static std::shared_ptr<const DnsMessage> query(std::uint16_t id, Question question,
                                                 bool recursion_desired);

  /// An (authoritative) answer to `question`.
  static std::shared_ptr<const DnsMessage> answer(std::uint16_t id, Question question,
                                                  std::vector<ResourceRecord> answers,
                                                  bool authoritative);

  /// A referral: NS records in authority, glue A records in additional.
  static std::shared_ptr<const DnsMessage> referral(
      std::uint16_t id, Question question, std::vector<ResourceRecord> authority,
      std::vector<ResourceRecord> additional);

  /// An error response (NXDOMAIN / SERVFAIL).
  static std::shared_ptr<const DnsMessage> error(std::uint16_t id, Question question,
                                                 Rcode rcode);

  [[nodiscard]] std::uint16_t id() const noexcept { return id_; }
  [[nodiscard]] bool is_response() const noexcept { return is_response_; }
  [[nodiscard]] bool authoritative() const noexcept { return authoritative_; }
  [[nodiscard]] bool recursion_desired() const noexcept { return recursion_desired_; }
  [[nodiscard]] Rcode rcode() const noexcept { return rcode_; }
  [[nodiscard]] const Question& question() const noexcept { return question_; }
  [[nodiscard]] const std::vector<ResourceRecord>& answers() const noexcept {
    return answers_;
  }
  [[nodiscard]] const std::vector<ResourceRecord>& authority() const noexcept {
    return authority_;
  }
  [[nodiscard]] const std::vector<ResourceRecord>& additional() const noexcept {
    return additional_;
  }

  /// True if this response delegates to other servers rather than answering.
  [[nodiscard]] bool is_referral() const noexcept {
    return is_response_ && rcode_ == Rcode::kNoError && answers_.empty() &&
           !authority_.empty();
  }

  /// First A record in the answer section, if any.
  [[nodiscard]] std::optional<net::Ipv4Address> first_address() const noexcept;

  // net::Payload
  [[nodiscard]] std::size_t wire_size() const noexcept override;
  void serialize(net::ByteWriter& w) const override;
  [[nodiscard]] std::string describe() const override;

  /// Parses a full message previously produced by serialize().
  static std::shared_ptr<const DnsMessage> parse_wire(net::ByteReader& r);

 private:
  DnsMessage() = default;

  std::uint16_t id_ = 0;
  bool is_response_ = false;
  bool authoritative_ = false;
  bool recursion_desired_ = false;
  Rcode rcode_ = Rcode::kNoError;
  Question question_;
  std::vector<ResourceRecord> answers_;
  std::vector<ResourceRecord> authority_;
  std::vector<ResourceRecord> additional_;
};

}  // namespace lispcp::dns
