// name.hpp — DNS domain names.
//
// A DomainName is an ordered list of labels, most-specific first
// ("www.example.com" = ["www", "example", "com"]).  Names are normalised to
// lower case at construction (DNS is case-insensitive) and can be wire-
// encoded in the standard label format (RFC 1035 §3.1, without compression).
#pragma once

#include <compare>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/bytes.hpp"

namespace lispcp::dns {

class DomainName {
 public:
  /// The root name (zero labels), written ".".
  DomainName() = default;

  /// From explicit labels, most-specific first.
  explicit DomainName(std::vector<std::string> labels);

  /// Parses dotted notation: "www.example.com" (a trailing dot is allowed;
  /// "." alone is the root).  Returns nullopt for malformed names (empty
  /// labels, labels > 63 octets, total length > 255).
  static std::optional<DomainName> parse(std::string_view text);

  /// Parses dotted notation; throws std::invalid_argument on failure.
  static DomainName from_string(std::string_view text);

  [[nodiscard]] const std::vector<std::string>& labels() const noexcept {
    return labels_;
  }
  [[nodiscard]] std::size_t label_count() const noexcept { return labels_.size(); }
  [[nodiscard]] bool is_root() const noexcept { return labels_.empty(); }

  /// True iff this name equals `ancestor` or lies below it in the tree
  /// ("www.example.com" is under "example.com", "com" and the root).
  [[nodiscard]] bool is_under(const DomainName& ancestor) const noexcept;

  /// The name with the most-specific label removed ("example.com" for
  /// "www.example.com"); the root's parent is the root.
  [[nodiscard]] DomainName parent() const;

  /// A child of this name: label.this ("www" + "example.com").
  [[nodiscard]] DomainName child(std::string_view label) const;

  /// Dotted representation without trailing dot; "." for the root.
  [[nodiscard]] std::string to_string() const;

  /// RFC 1035 label wire encoding, terminated by the zero-length root label.
  void serialize(net::ByteWriter& w) const;
  static DomainName parse_wire(net::ByteReader& r);

  /// Wire-encoded size in bytes.
  [[nodiscard]] std::size_t wire_size() const noexcept;

  friend auto operator<=>(const DomainName&, const DomainName&) = default;

 private:
  std::vector<std::string> labels_;
};

std::ostream& operator<<(std::ostream& os, const DomainName& name);

}  // namespace lispcp::dns

template <>
struct std::hash<lispcp::dns::DomainName> {
  std::size_t operator()(const lispcp::dns::DomainName& n) const noexcept {
    std::size_t h = 0xcbf29ce484222325ull;
    for (const auto& label : n.labels()) {
      for (char c : label) {
        h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ull;
      }
      h = (h ^ 0xFF) * 0x100000001b3ull;  // label separator
    }
    return h;
  }
};
