// resolver.hpp — caching recursive resolver (the paper's DNSS).
//
// Accepts recursion-desired queries from end-hosts and resolves them
// iteratively: root hints -> TLD referral -> site-authoritative answer,
// exactly the multi-round-trip process whose duration is the paper's T_DNS.
// Caches positive answers, negative answers and referrals (with TTL), so
// warm-cache resolutions complete in one local round trip — which is why
// claim (ii) is interesting: the PCE must keep mapping resolution inside
// *whatever* T_DNS happens to be.
//
// The resolver is deliberately PCE-unaware.  The PCE sits in the resolver's
// data path and re-encapsulates in-flight replies (Fig. 1 Steps 5-7) without
// the resolver ever noticing — reproducing the paper's "no changes to the
// DNS system" property.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dns/message.hpp"
#include "metrics/histogram.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"

namespace lispcp::dns {

struct ResolverConfig {
  std::vector<net::Ipv4Address> root_hints;
  /// Local processing before a cached answer / after the last upstream hop.
  sim::SimDuration processing_delay = sim::SimDuration::micros(200);
  /// Per-attempt upstream timeout before trying the next server.
  sim::SimDuration query_timeout = sim::SimDuration::millis(2000);
  /// Total upstream attempts per resolution before SERVFAIL.
  int max_attempts = 6;
  /// Bound on referral chain length.
  int max_iterations = 16;
  bool enable_cache = true;
  /// TTL for cached NXDOMAIN results.
  std::uint32_t negative_ttl_seconds = 60;
};

struct ResolverStats {
  std::uint64_t client_queries = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t coalesced = 0;       ///< joined an in-flight resolution
  std::uint64_t upstream_queries = 0;
  std::uint64_t retries = 0;
  std::uint64_t answered = 0;
  std::uint64_t nxdomain = 0;
  std::uint64_t servfail = 0;
};

class DnsResolver : public sim::Node {
 public:
  DnsResolver(sim::Network& network, std::string name, net::Ipv4Address address,
              ResolverConfig config);

  void deliver(net::Packet packet) override;

  /// The paper's Step 1 "IPC with the DNS" (Fig. 1 dashed line): an observer
  /// — in practice the co-located PCE — is told which end-host asked for
  /// which name, so it can later associate the answered EID with the
  /// requesting ES.  This is process-local IPC, not a DNS protocol change.
  using QueryObserver =
      std::function<void(net::Ipv4Address client, const DomainName& name)>;
  void set_query_observer(QueryObserver observer) {
    query_observer_ = std::move(observer);
  }

  [[nodiscard]] const ResolverStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ResolverConfig& config() const noexcept { return config_; }

  /// Latency of completed resolutions as observed at the resolver
  /// (client query in -> client response out), microseconds.
  [[nodiscard]] const metrics::Histogram& resolution_latency() const noexcept {
    return latency_;
  }

  /// Drops every cached entry (used by cold-cache experiment arms).
  void flush_cache();

  /// Test/experiment hook: true iff `name` has a live positive cache entry.
  [[nodiscard]] bool is_cached(const DomainName& name) const;

 private:
  struct ClientRef {
    net::Ipv4Address address;
    std::uint16_t port;
    std::uint16_t query_id;
  };

  struct Task {
    Question question;
    std::vector<ClientRef> clients;
    std::vector<net::Ipv4Address> servers;  ///< candidates at the current cut
    std::size_t server_index = 0;
    int attempts = 0;
    int iterations = 0;
    std::uint16_t upstream_id = 0;
    sim::EventHandle timeout;
    sim::SimTime started;
  };

  struct PositiveEntry {
    std::vector<ResourceRecord> records;
    sim::SimTime expiry;
  };

  struct ReferralEntry {
    DomainName zone;
    std::vector<net::Ipv4Address> servers;
    sim::SimTime expiry;
  };

  void handle_client_query(const net::Packet& packet, const DnsMessage& query);
  void handle_upstream_response(const net::Packet& packet, const DnsMessage& response);

  /// Sends the task's question to its current candidate server.
  void query_upstream(Task& task);
  void on_timeout(const DomainName& name);

  /// Finishes a task: replies to every waiting client and erases it.
  void conclude(const DomainName& name,
                const std::vector<ResourceRecord>& answers, Rcode rcode);

  /// Best cached delegation for `name`, else root hints.
  [[nodiscard]] std::vector<net::Ipv4Address> closest_servers(
      const DomainName& name) const;

  void cache_positive(const DomainName& name,
                      const std::vector<ResourceRecord>& records);
  void cache_referral(const DnsMessage& response);
  [[nodiscard]] const PositiveEntry* cached_positive(const DomainName& name) const;

  void reply_to(const ClientRef& client, std::shared_ptr<const DnsMessage> message);

  ResolverConfig config_;
  ResolverStats stats_;
  metrics::Histogram latency_;
  std::unordered_map<DomainName, Task> tasks_;
  std::unordered_map<DomainName, PositiveEntry> positive_cache_;
  std::unordered_map<DomainName, sim::SimTime> negative_cache_;
  std::vector<ReferralEntry> referral_cache_;
  std::uint16_t next_upstream_id_ = 1;
  QueryObserver query_observer_;
};

}  // namespace lispcp::dns
