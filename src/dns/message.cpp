#include "dns/message.hpp"

namespace lispcp::dns {

ResourceRecord ResourceRecord::a(DomainName name, net::Ipv4Address addr,
                                 std::uint32_t ttl_seconds) {
  ResourceRecord rr;
  rr.name = std::move(name);
  rr.type = RrType::kA;
  rr.ttl_seconds = ttl_seconds;
  rr.addr = addr;
  return rr;
}

ResourceRecord ResourceRecord::ns(DomainName zone, DomainName ns_name,
                                  std::uint32_t ttl_seconds) {
  ResourceRecord rr;
  rr.name = std::move(zone);
  rr.type = RrType::kNs;
  rr.ttl_seconds = ttl_seconds;
  rr.ns_name = std::move(ns_name);
  return rr;
}

void ResourceRecord::serialize(net::ByteWriter& w) const {
  name.serialize(w);
  w.u16(static_cast<std::uint16_t>(type));
  w.u16(1);  // class IN
  w.u32(ttl_seconds);
  if (type == RrType::kA) {
    w.u16(4);
    w.address(addr);
  } else {
    w.u16(static_cast<std::uint16_t>(ns_name.wire_size()));
    ns_name.serialize(w);
  }
}

ResourceRecord ResourceRecord::parse_wire(net::ByteReader& r) {
  ResourceRecord rr;
  rr.name = DomainName::parse_wire(r);
  rr.type = static_cast<RrType>(r.u16());
  const auto klass = r.u16();
  if (klass != 1) throw net::ParseError("ResourceRecord: class must be IN");
  rr.ttl_seconds = r.u32();
  const auto rdlength = r.u16();
  if (rr.type == RrType::kA) {
    if (rdlength != 4) throw net::ParseError("ResourceRecord: A rdlength != 4");
    rr.addr = r.address();
  } else if (rr.type == RrType::kNs) {
    rr.ns_name = DomainName::parse_wire(r);
  } else {
    throw net::ParseError("ResourceRecord: unsupported type");
  }
  return rr;
}

std::size_t ResourceRecord::wire_size() const noexcept {
  std::size_t size = name.wire_size() + 2 + 2 + 4 + 2;  // type class ttl rdlen
  size += type == RrType::kA ? 4 : ns_name.wire_size();
  return size;
}

std::shared_ptr<const DnsMessage> DnsMessage::query(std::uint16_t id,
                                                    Question question,
                                                    bool recursion_desired) {
  auto m = std::shared_ptr<DnsMessage>(new DnsMessage());
  m->id_ = id;
  m->question_ = std::move(question);
  m->recursion_desired_ = recursion_desired;
  return m;
}

std::shared_ptr<const DnsMessage> DnsMessage::answer(
    std::uint16_t id, Question question, std::vector<ResourceRecord> answers,
    bool authoritative) {
  auto m = std::shared_ptr<DnsMessage>(new DnsMessage());
  m->id_ = id;
  m->is_response_ = true;
  m->authoritative_ = authoritative;
  m->question_ = std::move(question);
  m->answers_ = std::move(answers);
  return m;
}

std::shared_ptr<const DnsMessage> DnsMessage::referral(
    std::uint16_t id, Question question, std::vector<ResourceRecord> authority,
    std::vector<ResourceRecord> additional) {
  auto m = std::shared_ptr<DnsMessage>(new DnsMessage());
  m->id_ = id;
  m->is_response_ = true;
  m->question_ = std::move(question);
  m->authority_ = std::move(authority);
  m->additional_ = std::move(additional);
  return m;
}

std::shared_ptr<const DnsMessage> DnsMessage::error(std::uint16_t id,
                                                    Question question,
                                                    Rcode rcode) {
  auto m = std::shared_ptr<DnsMessage>(new DnsMessage());
  m->id_ = id;
  m->is_response_ = true;
  m->rcode_ = rcode;
  m->question_ = std::move(question);
  return m;
}

std::optional<net::Ipv4Address> DnsMessage::first_address() const noexcept {
  for (const auto& rr : answers_) {
    if (rr.type == RrType::kA) return rr.addr;
  }
  return std::nullopt;
}

std::size_t DnsMessage::wire_size() const noexcept {
  std::size_t size = 12;  // header
  size += question_.name.wire_size() + 4;
  for (const auto& rr : answers_) size += rr.wire_size();
  for (const auto& rr : authority_) size += rr.wire_size();
  for (const auto& rr : additional_) size += rr.wire_size();
  return size;
}

void DnsMessage::serialize(net::ByteWriter& w) const {
  w.u16(id_);
  std::uint16_t flags = 0;
  if (is_response_) flags |= 0x8000;
  if (authoritative_) flags |= 0x0400;
  if (recursion_desired_) flags |= 0x0100;
  flags |= static_cast<std::uint16_t>(rcode_) & 0x000F;
  w.u16(flags);
  w.u16(1);  // qdcount
  w.u16(static_cast<std::uint16_t>(answers_.size()));
  w.u16(static_cast<std::uint16_t>(authority_.size()));
  w.u16(static_cast<std::uint16_t>(additional_.size()));
  question_.name.serialize(w);
  w.u16(static_cast<std::uint16_t>(question_.type));
  w.u16(1);  // class IN
  for (const auto& rr : answers_) rr.serialize(w);
  for (const auto& rr : authority_) rr.serialize(w);
  for (const auto& rr : additional_) rr.serialize(w);
}

std::shared_ptr<const DnsMessage> DnsMessage::parse_wire(net::ByteReader& r) {
  auto m = std::shared_ptr<DnsMessage>(new DnsMessage());
  m->id_ = r.u16();
  const auto flags = r.u16();
  m->is_response_ = (flags & 0x8000) != 0;
  m->authoritative_ = (flags & 0x0400) != 0;
  m->recursion_desired_ = (flags & 0x0100) != 0;
  m->rcode_ = static_cast<Rcode>(flags & 0x000F);
  const auto qdcount = r.u16();
  if (qdcount != 1) throw net::ParseError("DnsMessage: qdcount must be 1");
  const auto ancount = r.u16();
  const auto nscount = r.u16();
  const auto arcount = r.u16();
  m->question_.name = DomainName::parse_wire(r);
  m->question_.type = static_cast<RrType>(r.u16());
  if (r.u16() != 1) throw net::ParseError("DnsMessage: question class must be IN");
  for (int i = 0; i < ancount; ++i) m->answers_.push_back(ResourceRecord::parse_wire(r));
  for (int i = 0; i < nscount; ++i) m->authority_.push_back(ResourceRecord::parse_wire(r));
  for (int i = 0; i < arcount; ++i) m->additional_.push_back(ResourceRecord::parse_wire(r));
  return m;
}

std::string DnsMessage::describe() const {
  std::string out = is_response_ ? "DNS-R" : "DNS-Q";
  out += " id=" + std::to_string(id_);
  out += " q=" + question_.name.to_string();
  if (is_response_) {
    if (rcode_ != Rcode::kNoError) {
      out += rcode_ == Rcode::kNxDomain ? " NXDOMAIN" : " SERVFAIL";
    } else if (is_referral()) {
      out += " referral(" + std::to_string(authority_.size()) + " ns)";
    } else if (auto addr = first_address()) {
      out += " a=" + addr->to_string();
      if (authoritative_) out += " AA";
    }
  }
  return out;
}

}  // namespace lispcp::dns
