#include "dns/name.hpp"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <stdexcept>

namespace lispcp::dns {

namespace {

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool valid_label(std::string_view label) noexcept {
  return !label.empty() && label.size() <= 63;
}

}  // namespace

DomainName::DomainName(std::vector<std::string> labels) {
  labels_.reserve(labels.size());
  for (auto& label : labels) {
    if (!valid_label(label)) {
      throw std::invalid_argument("DomainName: invalid label '" + label + "'");
    }
    labels_.push_back(to_lower(label));
  }
}

std::optional<DomainName> DomainName::parse(std::string_view text) {
  if (text.empty()) return std::nullopt;
  if (text == ".") return DomainName();
  if (text.back() == '.') text.remove_suffix(1);
  std::vector<std::string> labels;
  std::size_t total = 0;
  while (!text.empty()) {
    const auto dot = text.find('.');
    const std::string_view label =
        dot == std::string_view::npos ? text : text.substr(0, dot);
    if (!valid_label(label)) return std::nullopt;
    total += label.size() + 1;
    if (total > 255) return std::nullopt;
    labels.push_back(to_lower(label));
    if (dot == std::string_view::npos) break;
    text.remove_prefix(dot + 1);
    if (text.empty()) return std::nullopt;  // trailing ".." or "a."
  }
  DomainName out;
  out.labels_ = std::move(labels);
  return out;
}

DomainName DomainName::from_string(std::string_view text) {
  auto parsed = parse(text);
  if (!parsed) {
    throw std::invalid_argument("DomainName: malformed name '" + std::string(text) +
                                "'");
  }
  return *parsed;
}

bool DomainName::is_under(const DomainName& ancestor) const noexcept {
  if (ancestor.labels_.size() > labels_.size()) return false;
  // Compare trailing labels (the least-specific end).
  return std::equal(ancestor.labels_.rbegin(), ancestor.labels_.rend(),
                    labels_.rbegin());
}

DomainName DomainName::parent() const {
  DomainName out;
  if (labels_.size() > 1) {
    out.labels_.assign(labels_.begin() + 1, labels_.end());
  }
  return out;
}

DomainName DomainName::child(std::string_view label) const {
  if (!valid_label(label)) {
    throw std::invalid_argument("DomainName::child: invalid label");
  }
  DomainName out;
  out.labels_.reserve(labels_.size() + 1);
  out.labels_.push_back(to_lower(label));
  out.labels_.insert(out.labels_.end(), labels_.begin(), labels_.end());
  return out;
}

std::string DomainName::to_string() const {
  if (labels_.empty()) return ".";
  std::string out;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (i > 0) out.push_back('.');
    out += labels_[i];
  }
  return out;
}

void DomainName::serialize(net::ByteWriter& w) const {
  for (const auto& label : labels_) {
    w.counted_string(label);
  }
  w.u8(0);  // root label terminator
}

DomainName DomainName::parse_wire(net::ByteReader& r) {
  DomainName out;
  std::size_t total = 0;
  for (;;) {
    // Peek length; counted_string consumes it.
    std::string label = r.counted_string();
    if (label.empty()) break;  // root terminator
    if (label.size() > 63) throw net::ParseError("DomainName: label > 63 octets");
    total += label.size() + 1;
    if (total > 255) throw net::ParseError("DomainName: name > 255 octets");
    out.labels_.push_back(to_lower(label));
  }
  return out;
}

std::size_t DomainName::wire_size() const noexcept {
  std::size_t size = 1;  // terminator
  for (const auto& label : labels_) size += 1 + label.size();
  return size;
}

std::ostream& operator<<(std::ostream& os, const DomainName& name) {
  return os << name.to_string();
}

}  // namespace lispcp::dns
