// server.hpp — authoritative DNS server node.
//
// Serves one zone: answers A queries for owned names, returns referrals
// (NS + glue) for delegated child zones, NXDOMAIN otherwise.  The DNS
// hierarchy in a topology is a chain of these servers: a root server
// delegating TLDs, TLD servers delegating site zones, and each LISP domain's
// local authoritative server (DNSD in the paper) answering for its own
// end-hosts.  Replies leave after a configurable processing delay, which is
// what makes T_DNS a real, measurable quantity in the simulation.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dns/message.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"

namespace lispcp::dns {

/// A delegation to a child zone: the nameserver names and glue addresses.
struct Delegation {
  DomainName zone;
  std::vector<std::pair<DomainName, net::Ipv4Address>> nameservers;
};

/// Zone contents for an authoritative server.
class Zone {
 public:
  explicit Zone(DomainName origin) : origin_(std::move(origin)) {}

  [[nodiscard]] const DomainName& origin() const noexcept { return origin_; }

  /// Adds an A record for `name` (must be at or under the origin).
  void add_a(const DomainName& name, net::Ipv4Address addr,
             std::uint32_t ttl_seconds = 300);

  /// Delegates child `zone` (must be under the origin) to `nameservers`.
  void delegate(Delegation delegation);

  [[nodiscard]] const std::vector<ResourceRecord>* find_a(
      const DomainName& name) const noexcept;

  /// The most specific delegation covering `name`, if any.
  [[nodiscard]] const Delegation* find_delegation(
      const DomainName& name) const noexcept;

  [[nodiscard]] std::size_t record_count() const noexcept;

 private:
  DomainName origin_;
  std::unordered_map<DomainName, std::vector<ResourceRecord>> a_records_;
  std::vector<Delegation> delegations_;
};

/// Counters exposed for tests and benches.
struct DnsServerStats {
  std::uint64_t queries = 0;
  std::uint64_t answers = 0;
  std::uint64_t referrals = 0;
  std::uint64_t nxdomain = 0;
};

class DnsServer : public sim::Node {
 public:
  DnsServer(sim::Network& network, std::string name, net::Ipv4Address address,
            Zone zone, sim::SimDuration processing_delay = sim::SimDuration::micros(500));

  [[nodiscard]] Zone& zone() noexcept { return zone_; }
  [[nodiscard]] const Zone& zone() const noexcept { return zone_; }
  [[nodiscard]] const DnsServerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] sim::SimDuration processing_delay() const noexcept {
    return processing_delay_;
  }

  void deliver(net::Packet packet) override;

 private:
  [[nodiscard]] std::shared_ptr<const DnsMessage> respond(const DnsMessage& query);

  Zone zone_;
  sim::SimDuration processing_delay_;
  DnsServerStats stats_;
};

}  // namespace lispcp::dns
