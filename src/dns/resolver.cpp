#include "dns/resolver.hpp"

#include <algorithm>

#include "net/ports.hpp"

namespace lispcp::dns {

DnsResolver::DnsResolver(sim::Network& network, std::string name,
                         net::Ipv4Address address, ResolverConfig config)
    : Node(network, std::move(name)), config_(std::move(config)) {
  if (config_.root_hints.empty()) {
    throw std::invalid_argument("DnsResolver: root hints required");
  }
  add_address(address);
}

void DnsResolver::deliver(net::Packet packet) {
  const auto* udp = packet.udp();
  if (udp == nullptr) {
    Node::deliver(std::move(packet));
    return;
  }
  auto message = packet.payload_as<DnsMessage>();
  if (!message) {
    Node::deliver(std::move(packet));
    return;
  }
  if (!message->is_response() && udp->dst_port == net::ports::kDns) {
    handle_client_query(packet, *message);
  } else if (message->is_response()) {
    handle_upstream_response(packet, *message);
  } else {
    Node::deliver(std::move(packet));
  }
}

void DnsResolver::flush_cache() {
  positive_cache_.clear();
  negative_cache_.clear();
  referral_cache_.clear();
}

bool DnsResolver::is_cached(const DomainName& name) const {
  return cached_positive(name) != nullptr;
}

const DnsResolver::PositiveEntry* DnsResolver::cached_positive(
    const DomainName& name) const {
  auto it = positive_cache_.find(name);
  if (it == positive_cache_.end()) return nullptr;
  if (it->second.expiry <= sim().now()) return nullptr;  // aged out
  return &it->second;
}

void DnsResolver::handle_client_query(const net::Packet& packet,
                                      const DnsMessage& query) {
  ++stats_.client_queries;
  const ClientRef client{packet.outer_ip().src, packet.udp()->src_port, query.id()};
  const DomainName& name = query.question().name;
  if (query_observer_) query_observer_(client.address, name);

  if (config_.enable_cache) {
    if (const auto* hit = cached_positive(name)) {
      ++stats_.cache_hits;
      ++stats_.answered;
      auto response = DnsMessage::answer(client.query_id, query.question(),
                                         hit->records, /*authoritative=*/false);
      sim().schedule(config_.processing_delay, [this, client, response] {
        reply_to(client, response);
      });
      latency_.add_duration(config_.processing_delay);
      return;
    }
    auto neg = negative_cache_.find(name);
    if (neg != negative_cache_.end() && neg->second > sim().now()) {
      ++stats_.cache_hits;
      ++stats_.nxdomain;
      auto response =
          DnsMessage::error(client.query_id, query.question(), Rcode::kNxDomain);
      sim().schedule(config_.processing_delay, [this, client, response] {
        reply_to(client, response);
      });
      return;
    }
  }
  ++stats_.cache_misses;

  // Coalesce with an in-flight resolution of the same name.
  if (auto it = tasks_.find(name); it != tasks_.end()) {
    ++stats_.coalesced;
    it->second.clients.push_back(client);
    return;
  }

  Task task;
  task.question = query.question();
  task.clients.push_back(client);
  task.servers = closest_servers(name);
  task.started = sim().now();
  auto [it, inserted] = tasks_.emplace(name, std::move(task));
  query_upstream(it->second);
}

std::vector<net::Ipv4Address> DnsResolver::closest_servers(
    const DomainName& name) const {
  const ReferralEntry* best = nullptr;
  if (config_.enable_cache) {
    for (const auto& entry : referral_cache_) {
      if (entry.expiry <= sim().now()) continue;
      if (!name.is_under(entry.zone)) continue;
      if (best == nullptr ||
          entry.zone.label_count() > best->zone.label_count()) {
        best = &entry;
      }
    }
  }
  return best != nullptr ? best->servers : config_.root_hints;
}

void DnsResolver::query_upstream(Task& task) {
  const net::Ipv4Address server = task.servers[task.server_index];
  task.upstream_id = next_upstream_id_++;
  if (next_upstream_id_ == 0) next_upstream_id_ = 1;
  ++task.attempts;
  ++stats_.upstream_queries;

  auto query = DnsMessage::query(task.upstream_id, task.question,
                                 /*recursion_desired=*/false);
  send(net::Packet::udp(address(), server, net::ports::kDns, net::ports::kDns,
                        query));

  const DomainName name = task.question.name;
  task.timeout = sim().schedule(config_.query_timeout,
                                [this, name] { on_timeout(name); });
}

void DnsResolver::on_timeout(const DomainName& name) {
  auto it = tasks_.find(name);
  if (it == tasks_.end()) return;
  Task& task = it->second;
  ++stats_.retries;
  if (task.attempts >= config_.max_attempts) {
    conclude(name, {}, Rcode::kServFail);
    return;
  }
  task.server_index = (task.server_index + 1) % task.servers.size();
  query_upstream(task);
}

void DnsResolver::handle_upstream_response(const net::Packet& packet,
                                           const DnsMessage& response) {
  (void)packet;
  auto it = tasks_.find(response.question().name);
  if (it == tasks_.end()) return;  // stale / duplicate response
  Task& task = it->second;
  if (response.id() != task.upstream_id) return;  // not the outstanding query
  task.timeout.cancel();

  if (response.rcode() == Rcode::kNxDomain) {
    if (config_.enable_cache) {
      negative_cache_[response.question().name] =
          sim().now() + sim::SimDuration::seconds(config_.negative_ttl_seconds);
    }
    conclude(response.question().name, {}, Rcode::kNxDomain);
    return;
  }
  if (response.rcode() != Rcode::kNoError) {
    // SERVFAIL upstream: rotate to the next candidate server.
    if (task.attempts >= config_.max_attempts) {
      conclude(response.question().name, {}, Rcode::kServFail);
    } else {
      task.server_index = (task.server_index + 1) % task.servers.size();
      query_upstream(task);
    }
    return;
  }

  if (!response.answers().empty()) {
    if (config_.enable_cache) {
      cache_positive(response.question().name, response.answers());
    }
    conclude(response.question().name, response.answers(), Rcode::kNoError);
    return;
  }

  if (response.is_referral()) {
    if (config_.enable_cache) cache_referral(response);
    std::vector<net::Ipv4Address> next;
    for (const auto& rr : response.additional()) {
      if (rr.type == RrType::kA) next.push_back(rr.addr);
    }
    if (next.empty() || ++task.iterations > config_.max_iterations) {
      conclude(response.question().name, {}, Rcode::kServFail);
      return;
    }
    task.servers = std::move(next);
    task.server_index = 0;
    query_upstream(task);
    return;
  }

  // NOERROR with no data: treat as resolution failure.
  conclude(response.question().name, {}, Rcode::kServFail);
}

void DnsResolver::cache_positive(const DomainName& name,
                                 const std::vector<ResourceRecord>& records) {
  std::uint32_t ttl = ~std::uint32_t{0};
  for (const auto& rr : records) ttl = std::min(ttl, rr.ttl_seconds);
  positive_cache_[name] = PositiveEntry{
      records, sim().now() + sim::SimDuration::seconds(ttl)};
}

void DnsResolver::cache_referral(const DnsMessage& response) {
  if (response.authority().empty()) return;
  ReferralEntry entry;
  entry.zone = response.authority().front().name;
  std::uint32_t ttl = ~std::uint32_t{0};
  for (const auto& rr : response.authority()) ttl = std::min(ttl, rr.ttl_seconds);
  for (const auto& rr : response.additional()) {
    if (rr.type == RrType::kA) entry.servers.push_back(rr.addr);
  }
  if (entry.servers.empty()) return;
  entry.expiry = sim().now() + sim::SimDuration::seconds(ttl);
  // Replace any existing entry for the same zone.
  std::erase_if(referral_cache_,
                [&](const ReferralEntry& e) { return e.zone == entry.zone; });
  referral_cache_.push_back(std::move(entry));
}

void DnsResolver::conclude(const DomainName& name,
                           const std::vector<ResourceRecord>& answers,
                           Rcode rcode) {
  auto it = tasks_.find(name);
  if (it == tasks_.end()) return;
  Task task = std::move(it->second);
  tasks_.erase(it);
  task.timeout.cancel();

  latency_.add_duration(sim().now() - task.started + config_.processing_delay);
  switch (rcode) {
    case Rcode::kNoError: ++stats_.answered; break;
    case Rcode::kNxDomain: ++stats_.nxdomain; break;
    case Rcode::kServFail: ++stats_.servfail; break;
  }

  for (const auto& client : task.clients) {
    std::shared_ptr<const DnsMessage> response;
    if (rcode == Rcode::kNoError) {
      response = DnsMessage::answer(client.query_id, task.question, answers,
                                    /*authoritative=*/false);
    } else {
      response = DnsMessage::error(client.query_id, task.question, rcode);
    }
    sim().schedule(config_.processing_delay, [this, client, response] {
      reply_to(client, response);
    });
  }
}

void DnsResolver::reply_to(const ClientRef& client,
                           std::shared_ptr<const DnsMessage> message) {
  send(net::Packet::udp(address(), client.address, net::ports::kDns, client.port,
                        std::move(message)));
}

}  // namespace lispcp::dns
