#include "dns/server.hpp"

#include <stdexcept>

#include "net/ports.hpp"

namespace lispcp::dns {

void Zone::add_a(const DomainName& name, net::Ipv4Address addr,
                 std::uint32_t ttl_seconds) {
  if (!name.is_under(origin_)) {
    throw std::invalid_argument("Zone::add_a: " + name.to_string() +
                                " not under origin " + origin_.to_string());
  }
  a_records_[name].push_back(ResourceRecord::a(name, addr, ttl_seconds));
}

void Zone::delegate(Delegation delegation) {
  if (!delegation.zone.is_under(origin_) || delegation.zone == origin_) {
    throw std::invalid_argument("Zone::delegate: " + delegation.zone.to_string() +
                                " not strictly under origin " + origin_.to_string());
  }
  if (delegation.nameservers.empty()) {
    throw std::invalid_argument("Zone::delegate: no nameservers");
  }
  delegations_.push_back(std::move(delegation));
}

const std::vector<ResourceRecord>* Zone::find_a(
    const DomainName& name) const noexcept {
  auto it = a_records_.find(name);
  return it == a_records_.end() ? nullptr : &it->second;
}

const Delegation* Zone::find_delegation(const DomainName& name) const noexcept {
  const Delegation* best = nullptr;
  for (const auto& d : delegations_) {
    if (name.is_under(d.zone) &&
        (best == nullptr || d.zone.label_count() > best->zone.label_count())) {
      best = &d;
    }
  }
  return best;
}

std::size_t Zone::record_count() const noexcept {
  std::size_t n = 0;
  for (const auto& [name, records] : a_records_) n += records.size();
  return n;
}

DnsServer::DnsServer(sim::Network& network, std::string name,
                     net::Ipv4Address address, Zone zone,
                     sim::SimDuration processing_delay)
    : Node(network, std::move(name)),
      zone_(std::move(zone)),
      processing_delay_(processing_delay) {
  add_address(address);
}

void DnsServer::deliver(net::Packet packet) {
  const auto* udp = packet.udp();
  if (udp == nullptr || udp->dst_port != net::ports::kDns) {
    Node::deliver(std::move(packet));  // counts as unexpected
    return;
  }
  auto query = packet.payload_as<DnsMessage>();
  if (!query || query->is_response()) {
    Node::deliver(std::move(packet));
    return;
  }
  ++stats_.queries;
  auto response = respond(*query);

  const net::Ipv4Address client = packet.outer_ip().src;
  const std::uint16_t client_port = udp->src_port;
  sim().schedule(processing_delay_, [this, client, client_port, response]() {
    send(net::Packet::udp(address(), client, net::ports::kDns, client_port,
                          response));
  });
}

std::shared_ptr<const DnsMessage> DnsServer::respond(const DnsMessage& query) {
  const Question& q = query.question();

  if (!q.name.is_under(zone_.origin())) {
    ++stats_.nxdomain;
    return DnsMessage::error(query.id(), q, Rcode::kNxDomain);
  }

  // Delegation wins over data for names below a zone cut.
  if (const Delegation* d = zone_.find_delegation(q.name)) {
    std::vector<ResourceRecord> authority;
    std::vector<ResourceRecord> additional;
    for (const auto& [ns_name, ns_addr] : d->nameservers) {
      authority.push_back(ResourceRecord::ns(d->zone, ns_name));
      additional.push_back(ResourceRecord::a(ns_name, ns_addr));
    }
    ++stats_.referrals;
    return DnsMessage::referral(query.id(), q, std::move(authority),
                                std::move(additional));
  }

  if (q.type == RrType::kA) {
    if (const auto* records = zone_.find_a(q.name)) {
      ++stats_.answers;
      return DnsMessage::answer(query.id(), q, *records, /*authoritative=*/true);
    }
  }

  ++stats_.nxdomain;
  return DnsMessage::error(query.id(), q, Rcode::kNxDomain);
}

}  // namespace lispcp::dns
