// flat_map.hpp — open-addressing hash containers with SoA slot storage.
//
// The BGP speaker's RIBs were std::map (one node allocation per route,
// pointer-chasing on every find) purely to get ordered iteration.  But the
// hot paths — the decision process probing Adj-RIB-In, Loc-RIB installs,
// pending-delta upserts — only need point lookups; ordering matters at two
// cold edges (MRAI flush emission and rib_prefixes()), which take an
// explicit sorted snapshot instead.  These containers provide the hot half:
// linear-probing open addressing over parallel key/value/state arrays
// (structure-of-arrays: a probe run touches only the key array), power-of-
// two capacity, tombstone deletion with same-size rehash when tombstones
// accumulate.
//
// Iteration (for_each) runs in *slot* order, which depends on capacity
// history — callers that need a reproducible order must sort, which is the
// point of sorted_keys(): the byte-identical-records contract must never
// rest on hash-table order (DESIGN.md "Memory layout and the perf
// ratchet").
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace lispcp::core {

namespace detail {
/// splitmix64 finaliser: the element hashes here (addresses, prefixes,
/// ASNs) are mostly identity functions over structured values, whose low
/// bits are often constant (site blocks are /20-aligned) — exactly the bits
/// a power-of-two mask keeps.
inline std::size_t mix_hash(std::size_t h) noexcept {
  std::uint64_t x = h;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<std::size_t>(x);
}
}  // namespace detail

template <typename K, typename V, typename Hash = std::hash<K>>
class FlatMap {
  enum : std::uint8_t { kEmpty = 0, kFull = 1, kTombstone = 2 };

 public:
  FlatMap() = default;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] V* find(const K& key) noexcept {
    const std::size_t i = locate(key);
    return i == npos ? nullptr : &values_[i];
  }
  [[nodiscard]] const V* find(const K& key) const noexcept {
    const std::size_t i = locate(key);
    return i == npos ? nullptr : &values_[i];
  }
  [[nodiscard]] bool contains(const K& key) const noexcept {
    return locate(key) != npos;
  }

  /// The value for `key`, default-constructed on first access.
  V& operator[](const K& key) { return *insert_slot(key).first; }

  /// Returns (value*, inserted).
  std::pair<V*, bool> try_emplace(const K& key) { return insert_slot(key); }

  void insert_or_assign(const K& key, V value) {
    *insert_slot(key).first = std::move(value);
  }

  /// Removes `key`; returns 1 if it was present.  The slot's value is
  /// reset so erased entries do not pin their buffers.
  std::size_t erase(const K& key) {
    const std::size_t i = locate(key);
    if (i == npos) return 0;
    state_[i] = kTombstone;
    values_[i] = V{};
    --size_;
    return 1;
  }

  void clear() {
    keys_.clear();
    values_.clear();
    state_.clear();
    size_ = 0;
    used_ = 0;
  }

  /// Pre-sizes the table for `n` live entries: capacity jumps straight to
  /// the power-of-two the growth policy would reach anyway, so a build-up
  /// of known size (a BGP origination storm filling a RIB) performs zero
  /// intermediate rehashes.  Capacity history affects only slot order,
  /// which no sanctioned output depends on (sorted_keys() sorts).  No-op
  /// if the table is already at least that big.
  void reserve(std::size_t n) {
    const std::size_t capacity = capacity_for(n);
    if (capacity > state_.size()) rehash(capacity);
  }

  /// Visits every (key, value) in slot order (NOT deterministic across
  /// capacity histories — sort before anything order-sensitive).
  template <typename F>
  void for_each(F&& fn) const {
    for (std::size_t i = 0; i < state_.size(); ++i) {
      if (state_[i] == kFull) fn(keys_[i], values_[i]);
    }
  }
  template <typename F>
  void for_each(F&& fn) {
    for (std::size_t i = 0; i < state_.size(); ++i) {
      if (state_[i] == kFull) fn(keys_[i], values_[i]);
    }
  }

  /// The sorted-snapshot view: every key, ascending.  This is the only
  /// sanctioned way to iterate into output or event order.
  [[nodiscard]] std::vector<K> sorted_keys() const {
    std::vector<K> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < state_.size(); ++i) {
      if (state_[i] == kFull) out.push_back(keys_[i]);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  [[nodiscard]] std::size_t locate(const K& key) const noexcept {
    if (state_.empty()) return npos;
    const std::size_t mask = state_.size() - 1;
    std::size_t i = detail::mix_hash(Hash{}(key)) & mask;
    for (;;) {
      if (state_[i] == kEmpty) return npos;
      if (state_[i] == kFull && keys_[i] == key) return i;
      i = (i + 1) & mask;
    }
  }

  std::pair<V*, bool> insert_slot(const K& key) {
    if (state_.empty() || (used_ + 1) * 8 > state_.size() * 7) rehash();
    const std::size_t mask = state_.size() - 1;
    std::size_t i = detail::mix_hash(Hash{}(key)) & mask;
    std::size_t first_tombstone = npos;
    for (;;) {
      if (state_[i] == kFull) {
        if (keys_[i] == key) return {&values_[i], false};
      } else if (state_[i] == kTombstone) {
        if (first_tombstone == npos) first_tombstone = i;
      } else {  // empty: key is absent, insert here or at an earlier grave
        if (first_tombstone != npos) {
          i = first_tombstone;
        } else {
          ++used_;
        }
        state_[i] = kFull;
        keys_[i] = key;
        ++size_;
        return {&values_[i], true};
      }
      i = (i + 1) & mask;
    }
  }

  [[nodiscard]] static std::size_t capacity_for(std::size_t n) noexcept {
    std::size_t capacity = 16;
    while (capacity < n * 4) capacity *= 2;
    return capacity;
  }

  // Grow when genuinely full; a tombstone-heavy table rehashes in place.
  void rehash() { rehash(capacity_for(size_)); }

  void rehash(std::size_t capacity) {
    std::vector<K> old_keys = std::move(keys_);
    std::vector<V> old_values = std::move(values_);
    std::vector<std::uint8_t> old_state = std::move(state_);
    keys_.assign(capacity, K{});
    values_.assign(capacity, V{});
    state_.assign(capacity, kEmpty);
    size_ = 0;
    used_ = 0;
    const std::size_t mask = capacity - 1;
    for (std::size_t i = 0; i < old_state.size(); ++i) {
      if (old_state[i] != kFull) continue;
      std::size_t j = detail::mix_hash(Hash{}(old_keys[i])) & mask;
      while (state_[j] == kFull) j = (j + 1) & mask;
      state_[j] = kFull;
      keys_[j] = std::move(old_keys[i]);
      values_[j] = std::move(old_values[i]);
      ++size_;
      ++used_;
    }
  }

  std::vector<K> keys_;
  std::vector<V> values_;
  std::vector<std::uint8_t> state_;  ///< parallel to keys_/values_
  std::size_t size_ = 0;             ///< live entries
  std::size_t used_ = 0;             ///< live + tombstoned slots
};

/// Set counterpart, sharing FlatMap's probe logic.
template <typename K, typename Hash = std::hash<K>>
class FlatSet {
 public:
  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  [[nodiscard]] bool empty() const noexcept { return map_.empty(); }
  [[nodiscard]] bool contains(const K& key) const noexcept {
    return map_.contains(key);
  }
  /// Returns true iff newly inserted.
  bool insert(const K& key) { return map_.try_emplace(key).second; }
  std::size_t erase(const K& key) { return map_.erase(key); }
  void clear() { map_.clear(); }
  void reserve(std::size_t n) { map_.reserve(n); }
  /// Visits every key in slot order (NOT deterministic — see FlatMap).
  template <typename F>
  void for_each(F&& fn) const {
    map_.for_each([&fn](const K& key, const auto&) { fn(key); });
  }
  [[nodiscard]] std::vector<K> sorted_keys() const {
    return map_.sorted_keys();
  }

 private:
  struct Nothing {};
  FlatMap<K, Nothing, Hash> map_;
};

}  // namespace lispcp::core
