// failover.hpp — automatic border-link failure detection and TE recovery.
//
// The failover story the paper's TE claim (iii) implies but leaves manual:
// when a provider link dies, the domain's ingress/egress choices must move
// to the surviving RLOCs *without* re-resolving any mapping — a Step-7b
// re-push suffices because every ITR holds every active flow's tuple.
//
// Two pieces:
//
//   LinkHealthMonitor — BFD-style liveness over one border link: the border
//   router echoes (RFC 862, src/net/echo.hpp) off the node at the far end
//   of its uplink every hello interval; `down_threshold` consecutive missed
//   replies declare the link down, the first reply after that declares it
//   up again.  Detection latency is therefore bounded by
//   hello_interval * down_threshold + reply_timeout.
//
//   FailoverController — owns one monitor per border link of a domain and,
//   on a transition, (a) tells the IRC engine to stop/resume using the
//   link, (b) flips the RLOC's reachability in every local map-cache, and
//   (c) has the PCE re-push all active flows (Step 7b).  Intra-domain
//   routing moves (what the IGP would do) are delegated to an injectable
//   adapter, since they are topology knowledge, not control-plane logic.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "irc/irc_engine.hpp"
#include "lisp/tunnel_router.hpp"
#include "net/echo.hpp"
#include "net/flow.hpp"
#include "sim/simulator.hpp"

namespace lispcp::core {

class PceControlPlane;

struct LinkHealthConfig {
  sim::SimDuration hello_interval = sim::SimDuration::millis(300);
  sim::SimDuration reply_timeout = sim::SimDuration::millis(200);
  /// Consecutive missed hellos before the link is declared down.
  std::uint32_t down_threshold = 3;
};

struct LinkHealthStats {
  std::uint64_t hellos_sent = 0;
  std::uint64_t replies_received = 0;
  std::uint64_t hellos_missed = 0;
  std::uint64_t down_transitions = 0;
  std::uint64_t up_transitions = 0;
};

/// Liveness of one border link, detected by echoing off `target` (the node
/// at the provider end of the uplink) from the border router itself — the
/// echo path exercises exactly the link under test, both directions.
class LinkHealthMonitor {
 public:
  using TransitionHandler = std::function<void(bool up)>;

  LinkHealthMonitor(lisp::TunnelRouter& xtr, net::Ipv4Address target,
                    LinkHealthConfig config, TransitionHandler on_transition);

  LinkHealthMonitor(const LinkHealthMonitor&) = delete;
  LinkHealthMonitor& operator=(const LinkHealthMonitor&) = delete;

  /// Starts the hello cycle.  Idempotent.
  void start();

  [[nodiscard]] bool link_up() const noexcept { return up_; }
  [[nodiscard]] const LinkHealthStats& stats() const noexcept { return stats_; }
  [[nodiscard]] sim::SimTime last_transition_at() const noexcept {
    return last_transition_;
  }

 private:
  void hello_cycle();
  void on_reply(std::uint64_t nonce);
  void on_timeout(std::uint64_t nonce);

  lisp::TunnelRouter& xtr_;
  net::Ipv4Address target_;
  LinkHealthConfig config_;
  TransitionHandler on_transition_;

  bool started_ = false;
  bool up_ = true;
  std::uint32_t misses_ = 0;
  net::NonceSequence nonces_;
  std::uint64_t outstanding_nonce_ = 0;  ///< 0 = none in flight
  sim::SimTime last_transition_;
  LinkHealthStats stats_;
};

struct FailoverStats {
  std::uint64_t failovers = 0;   ///< links declared down and traffic moved
  std::uint64_t recoveries = 0;  ///< links restored into the TE pool
  std::uint64_t flows_repushed = 0;
};

/// Per-domain recovery orchestration.  One monitor per border link; on a
/// transition the controller rewires IRC, locator status and active-flow
/// tuples, and calls the routing adapter for the IGP-side moves.
class FailoverController {
 public:
  /// Applies the topology-level routing changes for border link `index`
  /// going up or down (e.g. moving the internal default route).
  using RoutingAdapter = std::function<void(std::size_t index, bool up)>;

  FailoverController(PceControlPlane& control_plane, irc::IrcEngine& irc,
                     std::vector<lisp::TunnelRouter*> xtrs,
                     net::Ipv4Address echo_target, LinkHealthConfig health,
                     RoutingAdapter routing_adapter);

  FailoverController(const FailoverController&) = delete;
  FailoverController& operator=(const FailoverController&) = delete;

  /// Arms every monitor.  Idempotent.
  void start();

  [[nodiscard]] const FailoverStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const LinkHealthMonitor& monitor(std::size_t i) const {
    return *monitors_.at(i);
  }
  [[nodiscard]] std::size_t monitor_count() const noexcept {
    return monitors_.size();
  }
  /// True while at least one border link is usable.
  [[nodiscard]] bool has_usable_link() const;

 private:
  void on_transition(std::size_t index, bool up);

  PceControlPlane& control_plane_;
  irc::IrcEngine& irc_;
  std::vector<lisp::TunnelRouter*> xtrs_;
  RoutingAdapter routing_adapter_;
  std::vector<std::unique_ptr<LinkHealthMonitor>> monitors_;
  FailoverStats stats_;
};

}  // namespace lispcp::core
