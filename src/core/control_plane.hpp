// control_plane.hpp — per-domain orchestration of the PCE control plane.
//
// Wires one domain's components into the architecture of Fig. 1:
//
//   * the resolver's Step-1 IPC observer feeds the PCE,
//   * the PCE learns the domain's ITRs (Step-7b push targets) and its
//     background IRC engine,
//   * every ETR's reverse-mapping hook completes the two-way resolution:
//     on the first data packet of a flow it installs the return tuple
//     locally, multicasts it to the peer ETRs, and updates the PCE database
//     (paper §2, last paragraph).
//
// Activation is the only LISP-router-visible change the architecture needs;
// the DNS servers themselves are untouched (the paper's headline property).
#pragma once

#include <vector>

#include "core/pce.hpp"
#include "dns/resolver.hpp"
#include "irc/irc_engine.hpp"
#include "lisp/tunnel_router.hpp"

namespace lispcp::core {

struct ControlPlaneConfig {
  /// Ablation A3: multicast learned reverse mappings to peer ETRs (paper
  /// behaviour) or keep them only at the receiving ETR.
  bool multicast_reverse = true;
};

class PceControlPlane {
 public:
  /// All pointers are non-owning and must outlive the control plane.
  PceControlPlane(Pce& pce, dns::DnsResolver& resolver,
                  std::vector<lisp::TunnelRouter*> xtrs, irc::IrcEngine& irc,
                  ControlPlaneConfig config = {});

  /// Installs the hooks.  Idempotent.
  void activate();

  [[nodiscard]] Pce& pce() noexcept { return pce_; }
  [[nodiscard]] irc::IrcEngine& irc() noexcept { return irc_; }
  [[nodiscard]] const std::vector<lisp::TunnelRouter*>& xtrs() const noexcept {
    return xtrs_;
  }

  /// Local TE action: recompute ingress choices for active flows and
  /// re-push their tuples (exercises the push-to-all-ITRs rationale, A1).
  std::size_t reoptimize() { return pce_.reoptimize_flows(); }

 private:
  void on_reverse_mapping(lisp::TunnelRouter& etr, const lisp::FlowMapping& reverse,
                          bool first_packet);

  Pce& pce_;
  dns::DnsResolver& resolver_;
  std::vector<lisp::TunnelRouter*> xtrs_;
  irc::IrcEngine& irc_;
  ControlPlaneConfig config_;
  bool activated_ = false;
};

}  // namespace lispcp::core
