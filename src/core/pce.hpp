// pce.hpp — the Path Computation Element node (the paper's contribution).
//
// One PCE per domain, wired into the data path of that domain's DNS servers
// (Fig. 1): every DNS packet entering or leaving the domain's resolver and
// authoritative server physically traverses this node, so it can observe
// the resolution transparently (Steps 2-5) and act on it:
//
//   Destination side (PCED, Step 6): when the local authoritative server's
//   reply carries an A record inside the local EID space, the PCE consumes
//   the reply and re-emits it encapsulated in a UDP message to the querying
//   resolver's address on port P, bundling the EID-to-RLOC mapping that the
//   background IRC engine has already selected ("known aforehand" — the
//   encapsulation adds only constant per-packet work).
//
//   Source side (PCES, Step 7): a port-P packet headed for the local
//   resolver is intercepted, the original DNS reply is released to the
//   resolver unchanged (7a), and the bundled mapping is combined with the
//   requesting end-host learned through Step-1 IPC to form the tuple
//   (ES, ED, RLOC_S, RLOC_D), where RLOC_S is this domain's *ingress*
//   choice computed by its own IRC engine.  The tuple is pushed to the
//   domain's ITRs (7b) — to all of them by default, so later TE moves need
//   no re-resolution.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/pce_message.hpp"
#include "dns/message.hpp"
#include "irc/irc_engine.hpp"
#include "lisp/tunnel_router.hpp"
#include "metrics/histogram.hpp"
#include "pcep/session.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"

namespace lispcp::core {

struct PceConfig {
  /// Addresses of the local DNS servers this PCE fronts.
  net::Ipv4Address resolver_address;       ///< DNSS (source-side role)
  net::Ipv4Address authoritative_address;  ///< DNSD (destination-side role)
  /// The domain's own EID space (answers inside it trigger Step 6).
  std::vector<net::Ipv4Prefix> local_eid_prefixes;
  /// Per-packet constant work for snoop/encap/decap.
  sim::SimDuration processing_delay = sim::SimDuration::micros(50);
  /// Ablation A2: with snooping off, Step 6 is skipped entirely and the
  /// DNS reply passes through untouched (mappings must then come from
  /// gleaning or on-demand resolution).
  bool snoop_enabled = true;
  /// Ablation A5: acquire mappings by explicit PCEP request/reply instead
  /// of (or as a fallback to) Step-6 snooping.  When the resolver's answer
  /// to a local client reveals a remote EID with no database entry, the PCE
  /// issues a PCReq to the EID's home PCE (found via the directory) and
  /// configures the flow when the PCRep lands — one PCE-to-PCE RTT after
  /// the DNS answer, where snooping pre-positions the mapping at zero.
  bool on_demand_pcep = false;
  /// Session parameters for the PCEP speaker (A5 transport).
  pcep::SessionConfig pcep;
  /// Ablation A1: push Step-7b tuples to every ITR (paper default) or only
  /// to the first one.
  bool push_all_itrs = true;
  /// How long a Step-1 (client, qname) observation stays correlatable.
  sim::SimDuration pending_query_ttl = sim::SimDuration::seconds(10);
};

struct PceStats {
  std::uint64_t dns_queries_observed = 0;   ///< Step 1 IPC notifications
  std::uint64_t dns_replies_snooped = 0;    ///< replies inspected in transit
  std::uint64_t replies_encapsulated = 0;   ///< Step 6 actions
  std::uint64_t port_p_received = 0;        ///< Step 7 interceptions
  std::uint64_t replies_released = 0;       ///< Step 7a
  std::uint64_t tuples_pushed = 0;          ///< Step 7b push messages sent
  std::uint64_t flows_configured = 0;       ///< distinct (ES, ED) tuples formed
  std::uint64_t reverse_updates = 0;        ///< ETR-multicast database updates
  std::uint64_t uncorrelated_replies = 0;   ///< port-P arrivals with no Step-1 match
  std::uint64_t pcep_requests = 0;          ///< A5: PCReq issued on demand
  std::uint64_t pcep_mappings_learned = 0;  ///< A5: PCRep with a mapping
  std::uint64_t pcep_failures = 0;          ///< A5: NO-PATH / timeout / no peer
};

class Pce : public sim::Node {
 public:
  Pce(sim::Network& network, std::string name, net::Ipv4Address address,
      PceConfig config);

  /// The background IRC engine that precomputes this domain's ingress RLOC
  /// choices.  Must be set before traffic flows.
  void set_irc(irc::IrcEngine* irc) noexcept { irc_ = irc; }

  /// Registers a local tunnel router as a Step-7b push target.
  void add_itr(net::Ipv4Address itr_rloc) { itr_rlocs_.push_back(itr_rloc); }

  /// Step-1 IPC endpoint: the co-located resolver reports (client, qname).
  void on_client_query(net::Ipv4Address client, const dns::DomainName& name);

  /// ETR-multicast database update (paper §2 last paragraph).
  void record_reverse_mapping(const lisp::FlowMapping& mapping);

  /// PCE discovery substitute (A5): registers which peer PCE is
  /// authoritative for an EID prefix.  Real deployments learn this through
  /// IGP-based PCE discovery (RFC 5088/5089); the topology builder wires it.
  void add_pce_directory_entry(const net::Ipv4Prefix& prefix,
                               net::Ipv4Address pce_address);

  /// The PCEP session to `peer`, created (and opened lazily on first
  /// request) on demand.  Exposed for tests and stats inspection.
  [[nodiscard]] pcep::Session& pcep_session(net::Ipv4Address peer);

  // Node interface: the PCE forwards everything, intercepting only the DNS
  // replies of Step 6 and the port-P messages of Step 7.
  TransitAction transit(net::Packet& packet) override;
  void deliver(net::Packet packet) override;

  [[nodiscard]] const PceStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const PceConfig& config() const noexcept { return config_; }

  /// Mapping database: remote mappings learned via port P, keyed by EID
  /// prefix, plus the peer PCE address each came from.
  struct RemoteMapping {
    lisp::MapEntry entry;
    net::Ipv4Address pce_address;
    sim::SimTime learned_at;
  };
  [[nodiscard]] const RemoteMapping* find_remote(net::Ipv4Address eid) const;
  [[nodiscard]] std::size_t database_size() const noexcept {
    return database_.size();
  }

  /// Re-pushes tuples for all active flows with freshly chosen ingress
  /// RLOCs — a local TE action ("move part of its internal traffic",
  /// Step 7b rationale).  Returns the number of flows re-pushed.
  std::size_t reoptimize_flows();

  /// Time from DNS-answer release (7a) to the tuple push send (7b): the
  /// extra control-plane latency on top of T_DNS; claim (ii) says ~0.
  [[nodiscard]] const metrics::Histogram& push_slack() const noexcept {
    return push_slack_;
  }

 private:
  /// Step 6: the destination-side action.
  void encapsulate_reply(net::Packet reply_packet, const dns::DnsMessage& reply);
  /// Step 7: the source-side action.
  void handle_port_p(net::Packet packet, const PceMessage& message);
  /// Step 7b: form and push tuples for every host waiting on `qname`.
  void push_tuples_for(const dns::DomainName& qname, net::Ipv4Address ed,
                       const lisp::MapEntry& mapping);
  /// Warm-cache path: configure one (ES, ED) flow from the local database,
  /// consuming the Step-1 observation for `qname`.
  void configure_flow(net::Ipv4Address es, net::Ipv4Address ed,
                      const lisp::MapEntry& mapping,
                      const dns::DomainName& qname);
  /// Builds the Step-7b tuple (ES, ED, RLOC_S, RLOC_D) and records it.
  std::optional<lisp::FlowMapping> make_tuple(net::Ipv4Address es,
                                              net::Ipv4Address ed,
                                              const lisp::MapEntry& mapping);
  void push_to_itrs(const std::vector<lisp::FlowMapping>& tuples);

  /// The mapping this domain advertises for one of its own EIDs — the IRC
  /// engine's current choice (Step 6 and the PCEP responder share it).
  [[nodiscard]] lisp::MapEntry local_mapping_for(net::Ipv4Address eid);
  /// A5 requester side: ask `ed`'s home PCE for the mapping, then configure.
  void request_mapping_via_pcep(net::Ipv4Address es, net::Ipv4Address ed,
                                const dns::DomainName& qname);

  [[nodiscard]] bool is_local_eid(net::Ipv4Address a) const noexcept;

  PceConfig config_;
  PceStats stats_;
  irc::IrcEngine* irc_ = nullptr;
  std::vector<net::Ipv4Address> itr_rlocs_;

  /// Step-1 observations: qname -> clients awaiting that name.
  struct PendingClient {
    net::Ipv4Address client;
    sim::SimTime observed_at;
  };
  std::unordered_map<dns::DomainName, std::deque<PendingClient>> pending_queries_;

  net::PrefixTrie<RemoteMapping> database_;
  /// A5: EID prefix -> authoritative peer PCE address.
  net::PrefixTrie<net::Ipv4Address> pce_directory_;
  std::unordered_map<net::Ipv4Address, std::unique_ptr<pcep::Session>>
      pcep_sessions_;
  /// Active flows configured by this PCE: key (ES<<32|ED) -> tuple.
  std::unordered_map<std::uint64_t, lisp::FlowMapping> active_flows_;
  std::uint64_t next_version_ = 1;
  metrics::Histogram push_slack_;
};

}  // namespace lispcp::core
