#include "core/control_plane.hpp"

#include "net/ports.hpp"

namespace lispcp::core {

PceControlPlane::PceControlPlane(Pce& pce, dns::DnsResolver& resolver,
                                 std::vector<lisp::TunnelRouter*> xtrs,
                                 irc::IrcEngine& irc, ControlPlaneConfig config)
    : pce_(pce),
      resolver_(resolver),
      xtrs_(std::move(xtrs)),
      irc_(irc),
      config_(config) {}

void PceControlPlane::activate() {
  if (activated_) return;
  activated_ = true;

  pce_.set_irc(&irc_);

  // Step-1 IPC: resolver -> PCE, process-local (no DNS protocol change).
  resolver_.set_query_observer(
      [this](net::Ipv4Address client, const dns::DomainName& name) {
        pce_.on_client_query(client, name);
      });

  for (lisp::TunnelRouter* xtr : xtrs_) {
    if (xtr->config().itr_role) {
      pce_.add_itr(xtr->rloc());
    }
    if (xtr->config().etr_role) {
      xtr->set_reverse_mapping_hook(
          [this](lisp::TunnelRouter& etr, const lisp::FlowMapping& reverse,
                 bool first_packet) {
            on_reverse_mapping(etr, reverse, first_packet);
          });
    }
  }

  irc_.start();
}

void PceControlPlane::on_reverse_mapping(lisp::TunnelRouter& etr,
                                         const lisp::FlowMapping& reverse,
                                         bool first_packet) {
  if (!first_packet) return;

  // The return flow's outer source is the RLOC the forward traffic arrived
  // at — the locator this domain advertised for the flow in Step 6 — so the
  // two directions stay consistent with the local ingress-TE decision.
  lisp::FlowMapping tuple = reverse;
  tuple.source_rloc = etr.rloc();

  // Install locally: this ETR may also serve as the return-path ITR.
  etr.install_flow_mapping(tuple);

  if (!config_.multicast_reverse) return;

  // Multicast to the peer tunnel routers and the PCE database (§2 last
  // paragraph: "pushes this mapping to the rest of the ETRs (and updates
  // the PCED database) via multicast").
  auto payload =
      std::make_shared<lisp::FlowMappingPush>(std::vector<lisp::FlowMapping>{tuple});
  for (lisp::TunnelRouter* peer : xtrs_) {
    if (peer == &etr) continue;
    etr.network().sim().schedule(sim::SimDuration::micros(10),
                                 [&etr, peer, payload] {
                                   etr.send(net::Packet::udp(
                                       etr.rloc(), peer->rloc(),
                                       net::ports::kEtrSync, net::ports::kEtrSync,
                                       payload));
                                 });
  }
  etr.network().sim().schedule(
      sim::SimDuration::micros(10), [this, &etr, payload] {
        etr.send(net::Packet::udp(etr.rloc(), pce_.address(),
                                  net::ports::kEtrSync, net::ports::kEtrSync,
                                  payload));
      });
}

}  // namespace lispcp::core
