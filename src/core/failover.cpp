#include "core/failover.hpp"

#include "core/control_plane.hpp"
#include "net/ports.hpp"

namespace lispcp::core {

LinkHealthMonitor::LinkHealthMonitor(lisp::TunnelRouter& xtr,
                                     net::Ipv4Address target,
                                     LinkHealthConfig config,
                                     TransitionHandler on_transition)
    : xtr_(xtr),
      target_(target),
      config_(config),
      on_transition_(std::move(on_transition)) {
  if (config_.down_threshold == 0) {
    throw std::invalid_argument(
        "LinkHealthMonitor: down_threshold must be >= 1");
  }
  if (config_.reply_timeout >= config_.hello_interval) {
    throw std::invalid_argument(
        "LinkHealthMonitor: reply_timeout must be < hello_interval (one "
        "hello in flight at a time)");
  }
}

void LinkHealthMonitor::start() {
  if (started_) return;
  started_ = true;
  xtr_.set_echo_reply_handler(
      [this](net::Ipv4Address from, std::uint64_t nonce) {
        if (from == target_) on_reply(nonce);
      });
  hello_cycle();
}

void LinkHealthMonitor::hello_cycle() {
  const std::uint64_t nonce = nonces_.next();
  outstanding_nonce_ = nonce;
  ++stats_.hellos_sent;
  xtr_.send(net::Packet::udp(
      xtr_.rloc(), target_, net::ports::kEcho, net::ports::kEcho,
      std::make_shared<net::EchoPayload>(nonce, /*is_reply=*/false)));
  // Both timers are daemons: liveness supervision is background maintenance.
  xtr_.sim().schedule_daemon(config_.reply_timeout,
                             [this, nonce] { on_timeout(nonce); });
  xtr_.sim().schedule_daemon(config_.hello_interval, [this] { hello_cycle(); });
}

void LinkHealthMonitor::on_reply(std::uint64_t nonce) {
  if (nonce != outstanding_nonce_) return;  // late reply to a missed hello
  outstanding_nonce_ = 0;
  ++stats_.replies_received;
  misses_ = 0;
  if (!up_) {
    up_ = true;
    ++stats_.up_transitions;
    last_transition_ = xtr_.sim().now();
    if (on_transition_) on_transition_(true);
  }
}

void LinkHealthMonitor::on_timeout(std::uint64_t nonce) {
  if (nonce != outstanding_nonce_) return;  // the reply got here first
  outstanding_nonce_ = 0;
  ++stats_.hellos_missed;
  ++misses_;
  if (up_ && misses_ >= config_.down_threshold) {
    up_ = false;
    ++stats_.down_transitions;
    last_transition_ = xtr_.sim().now();
    if (on_transition_) on_transition_(false);
  }
}

FailoverController::FailoverController(PceControlPlane& control_plane,
                                       irc::IrcEngine& irc,
                                       std::vector<lisp::TunnelRouter*> xtrs,
                                       net::Ipv4Address echo_target,
                                       LinkHealthConfig health,
                                       RoutingAdapter routing_adapter)
    : control_plane_(control_plane),
      irc_(irc),
      xtrs_(std::move(xtrs)),
      routing_adapter_(std::move(routing_adapter)) {
  for (std::size_t i = 0; i < xtrs_.size(); ++i) {
    monitors_.push_back(std::make_unique<LinkHealthMonitor>(
        *xtrs_[i], echo_target, health,
        [this, i](bool up) { on_transition(i, up); }));
  }
}

void FailoverController::start() {
  for (auto& monitor : monitors_) monitor->start();
}

bool FailoverController::has_usable_link() const {
  for (const auto& monitor : monitors_) {
    if (monitor->link_up()) return true;
  }
  return false;
}

void FailoverController::on_transition(std::size_t index, bool up) {
  // (a) The IRC engine stops (or resumes) choosing this ingress/egress.
  irc_.set_link_usable(index, up);
  // (b) Locator status in every local map-cache, so already-encapsulating
  // flows steer away immediately even before the re-push lands.
  const net::Ipv4Address rloc = xtrs_[index]->rloc();
  for (auto* xtr : xtrs_) {
    xtr->set_rloc_reachability(rloc, up);
  }
  // (c) IGP-side moves, delegated.
  if (routing_adapter_) routing_adapter_(index, up);
  // (d) Step-7b re-push of every active flow with fresh ingress choices —
  // the paper's TE mechanism doubling as the recovery mechanism.
  stats_.flows_repushed += control_plane_.reoptimize();
  if (up) {
    ++stats_.recoveries;
  } else {
    ++stats_.failovers;
  }
}

}  // namespace lispcp::core
