// snapshot_cache.hpp — scope-gated sharing of immutable world snapshots.
//
// Sweep points that differ only in protocol knobs rebuild identical
// topology-shaped state from scratch: the F2 DFZ points re-run
// build_synthetic_internet for every (scenario, deagg) arm of the same stub
// count, and every Experiment re-derives the same DNS name tables for its
// domain count.  This cache lets the first point of a shape publish the
// immutable part as a shared snapshot that every later point forks from
// (shared_ptr<const Value> — copy-on-write in the only sense the
// simulators need: the shared part is never written, each point builds its
// own mutable state on top).
//
// Caching is *scoped*: entries are retained only while at least one Scope
// object is alive.  scenario::Runner::run opens a Scope around its point
// loop, so sweeps share snapshots across points and workers, while
// stand-alone constructions (tests, single studies) build privately and
// keep no global state alive.  Thread-safe; a build in progress holds the
// lock, so concurrent workers requesting the same shape wait and then
// share instead of duplicating the build.
#pragma once

#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace lispcp::core {

template <typename Key, typename Value>
class SnapshotCache {
 public:
  /// Retains cache entries while alive (see file comment).
  class Scope {
   public:
    explicit Scope(SnapshotCache& cache) : cache_(cache) {
      std::lock_guard<std::mutex> lock(cache_.mu_);
      ++cache_.scopes_;
    }
    ~Scope() {
      std::lock_guard<std::mutex> lock(cache_.mu_);
      if (--cache_.scopes_ == 0) cache_.entries_.clear();
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    SnapshotCache& cache_;
  };

  /// The snapshot for `key`, building it with `build()` on first request.
  /// Outside any Scope the build is private and nothing is retained.
  template <typename Build>
  [[nodiscard]] std::shared_ptr<const Value> acquire(const Key& key,
                                                     Build&& build) {
    std::unique_lock<std::mutex> lock(mu_);
    if (scopes_ == 0) {
      lock.unlock();
      return std::make_shared<const Value>(build());
    }
    for (const auto& [cached_key, snapshot] : entries_) {
      if (cached_key == key) return snapshot;
    }
    // Shapes per sweep number in the tens; a linear scan beats requiring
    // every key type to be hashable.  Built under the lock so concurrent
    // workers share the first build instead of racing duplicates.
    auto snapshot = std::make_shared<const Value>(build());
    entries_.emplace_back(key, snapshot);
    return snapshot;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

 private:
  mutable std::mutex mu_;
  int scopes_ = 0;
  std::vector<std::pair<Key, std::shared_ptr<const Value>>> entries_;
};

}  // namespace lispcp::core
