#include "core/pce.hpp"

#include "net/flow.hpp"
#include "net/ports.hpp"

namespace lispcp::core {

Pce::Pce(sim::Network& network, std::string name, net::Ipv4Address address,
         PceConfig config)
    : Node(network, std::move(name)), config_(std::move(config)) {
  add_address(address);
}

bool Pce::is_local_eid(net::Ipv4Address a) const noexcept {
  for (const auto& p : config_.local_eid_prefixes) {
    if (p.contains(a)) return true;
  }
  return false;
}

void Pce::on_client_query(net::Ipv4Address client, const dns::DomainName& name) {
  ++stats_.dns_queries_observed;
  auto& waiting = pending_queries_[name];
  waiting.push_back(PendingClient{client, sim().now()});
  // Bound the queue: expire stale observations from the front.
  const auto horizon = sim().now() - config_.pending_query_ttl;
  while (!waiting.empty() && waiting.front().observed_at < horizon) {
    waiting.pop_front();
  }
}

// ---------------------------------------------------------------------------
// Transit interception: Steps 2-7 all happen on packets passing through.
// ---------------------------------------------------------------------------

sim::Node::TransitAction Pce::transit(net::Packet& packet) {
  const auto* udp = packet.udp();
  if (udp == nullptr) return TransitAction::kForward;

  // Step 7: a port-P message addressed to our resolver.
  if (udp->dst_port == net::ports::kPceP &&
      packet.outer_ip().dst == config_.resolver_address) {
    if (auto message = packet.payload_as<PceMessage>()) {
      handle_port_p(std::move(packet), *message);
      return TransitAction::kConsumed;
    }
  }

  // Steps 2-6: DNS replies in transit.
  if (udp->src_port == net::ports::kDns || udp->dst_port == net::ports::kDns) {
    if (auto message = packet.payload_as<dns::DnsMessage>()) {
      if (message->is_response()) {
        ++stats_.dns_replies_snooped;
        // Step 6 trigger: an authoritative reply from *our* authoritative
        // server whose answer is an EID of this domain, headed to a remote
        // resolver.
        if (config_.snoop_enabled && message->authoritative() &&
            packet.outer_ip().src == config_.authoritative_address) {
          if (auto answer = message->first_address();
              answer && is_local_eid(*answer)) {
            encapsulate_reply(std::move(packet), *message);
            return TransitAction::kConsumed;
          }
        }
        // Warm-cache safety net (extension; see DESIGN.md): when our own
        // resolver answers a *local* client from its cache, no port-P
        // message is generated — but the answer still traverses us, and the
        // mapping may already be in our database from an earlier resolution.
        // Push the tuple now so cached resolutions are covered too.
        //
        // The same observation point drives A5's on-demand mode: a remote
        // EID with no database entry triggers an explicit PCEP request to
        // its home PCE instead of relying on Step-6 snooping.
        if ((config_.snoop_enabled || config_.on_demand_pcep) &&
            packet.outer_ip().src == config_.resolver_address) {
          if (auto answer = message->first_address();
              answer && !is_local_eid(*answer)) {
            if (const RemoteMapping* remote = find_remote(*answer)) {
              configure_flow(packet.outer_ip().dst, *answer, remote->entry,
                             message->question().name);
            } else if (config_.on_demand_pcep) {
              request_mapping_via_pcep(packet.outer_ip().dst, *answer,
                                       message->question().name);
            }
          }
        }
      }
    }
  }
  return TransitAction::kForward;
}

void Pce::deliver(net::Packet packet) {
  const auto* udp = packet.udp();
  if (udp != nullptr && udp->dst_port == net::ports::kEtrSync) {
    // ETR multicast also updates the PCE database (paper §2 last paragraph).
    if (auto push = packet.payload_as<lisp::FlowMappingPush>()) {
      for (const auto& mapping : push->mappings()) {
        record_reverse_mapping(mapping);
      }
      return;
    }
  }
  if (udp != nullptr && udp->dst_port == net::ports::kPcep) {
    if (auto message = packet.payload_as<pcep::Message>()) {
      pcep_session(packet.outer_ip().src).on_message(*message);
      return;
    }
  }
  Node::deliver(std::move(packet));
}

// ---------------------------------------------------------------------------
// Step 6 — destination-side encapsulation.
// ---------------------------------------------------------------------------

lisp::MapEntry Pce::local_mapping_for(net::Ipv4Address eid) {
  // The mapping is precomputed by the background IRC engine: site_mapping()
  // is a table read reflecting the engine's current ingress split, so this
  // path stays O(1) per packet ("roughly at line rate").
  lisp::MapEntry mapping;
  if (irc_ != nullptr) {
    const net::Ipv4Prefix* local = nullptr;
    for (const auto& p : config_.local_eid_prefixes) {
      if (p.contains(eid)) {
        local = &p;
        break;
      }
    }
    mapping = irc_->site_mapping(local != nullptr ? *local
                                                  : net::Ipv4Prefix::host(eid));
  } else {
    mapping.eid_prefix = net::Ipv4Prefix::host(eid);
  }
  mapping.version = next_version_++;
  return mapping;
}

void Pce::encapsulate_reply(net::Packet reply_packet,
                            const dns::DnsMessage& reply) {
  const auto ed = *reply.first_address();
  const auto resolver = reply_packet.outer_ip().dst;
  lisp::MapEntry mapping = local_mapping_for(ed);

  ++stats_.replies_encapsulated;
  auto payload = std::make_shared<PceMessage>(std::move(reply_packet),
                                              std::move(mapping), address());
  sim().schedule(config_.processing_delay, [this, resolver, payload] {
    send(net::Packet::udp(address(), resolver, net::ports::kPceP,
                          net::ports::kPceP, payload));
  });
}

// ---------------------------------------------------------------------------
// Step 7 — source-side decapsulation, release, and push.
// ---------------------------------------------------------------------------

void Pce::handle_port_p(net::Packet packet, const PceMessage& message) {
  (void)packet;
  ++stats_.port_p_received;

  // Record the remote mapping and the peer PCE in the database.
  RemoteMapping remote{message.mapping(), message.pce_address(), sim().now()};
  database_.insert(message.mapping().eid_prefix, remote);

  sim().schedule(config_.processing_delay, [this, inner = message.inner(),
                                            mapping = message.mapping()]() mutable {
    auto reply = inner.payload_as<dns::DnsMessage>();

    // Step 7a: release the original DNS reply toward the resolver.
    ++stats_.replies_released;
    send(std::move(inner));

    // Step 7b: configure the ITRs.  The answered EID and the qname are in
    // the reply; Step-1 IPC tells us which local hosts asked for that name.
    if (auto ed = reply ? reply->first_address() : std::nullopt) {
      push_tuples_for(reply->question().name, *ed, mapping);
    }
  });
}

void Pce::push_tuples_for(const dns::DomainName& qname, net::Ipv4Address ed,
                          const lisp::MapEntry& mapping) {
  auto it = pending_queries_.find(qname);
  if (it == pending_queries_.end() || it->second.empty()) {
    ++stats_.uncorrelated_replies;
    return;
  }
  std::vector<lisp::FlowMapping> tuples;
  for (const auto& pending : it->second) {
    if (auto tuple = make_tuple(pending.client, ed, mapping)) {
      tuples.push_back(*tuple);
      // Mapping-configuration latency relative to the Step-1 observation —
      // the quantity claim (ii) bounds by T_DNS.
      push_slack_.add_duration(sim().now() - pending.observed_at);
    }
  }
  pending_queries_.erase(it);
  push_to_itrs(tuples);
}

void Pce::configure_flow(net::Ipv4Address es, net::Ipv4Address ed,
                         const lisp::MapEntry& mapping,
                         const dns::DomainName& qname) {
  // Consume the Step-1 observation for this client so the correlation state
  // (and the slack accounting) stays clean when the port-P path is skipped.
  if (auto pending = pending_queries_.find(qname);
      pending != pending_queries_.end()) {
    auto& waiting = pending->second;
    for (auto it = waiting.begin(); it != waiting.end(); ++it) {
      if (it->client == es) {
        push_slack_.add_duration(sim().now() - it->observed_at);
        waiting.erase(it);
        break;
      }
    }
    if (waiting.empty()) pending_queries_.erase(pending);
  }

  const std::uint64_t key = net::pair_key(es, ed);
  if (active_flows_.contains(key)) return;  // already configured
  if (auto tuple = make_tuple(es, ed, mapping)) {
    push_to_itrs({*tuple});
  }
}

std::optional<lisp::FlowMapping> Pce::make_tuple(net::Ipv4Address es,
                                                 net::Ipv4Address ed,
                                                 const lisp::MapEntry& mapping) {
  const auto chosen = mapping.select_rloc(lisp::flow_hash(es, ed, 0, 0));
  if (!chosen) return std::nullopt;
  lisp::FlowMapping tuple;
  tuple.source_eid = es;
  tuple.destination_eid = ed;
  // RLOC_S: this domain's ingress choice for the reverse direction,
  // precomputed by the background IRC engine (Step 1).
  tuple.source_rloc = irc_ != nullptr ? irc_->choose_ingress() : net::Ipv4Address();
  tuple.destination_rloc = chosen->address;
  tuple.version = next_version_++;
  const std::uint64_t key = net::pair_key(es, ed);
  active_flows_[key] = tuple;
  ++stats_.flows_configured;
  return tuple;
}

std::size_t Pce::reoptimize_flows() {
  if (irc_ == nullptr || active_flows_.empty()) return 0;
  std::vector<lisp::FlowMapping> tuples;
  tuples.reserve(active_flows_.size());
  for (auto& [key, flow] : active_flows_) {
    (void)key;
    flow.source_rloc = irc_->choose_ingress();
    flow.version = next_version_++;
    tuples.push_back(flow);
  }
  push_to_itrs(tuples);
  return tuples.size();
}

void Pce::record_reverse_mapping(const lisp::FlowMapping& mapping) {
  ++stats_.reverse_updates;
  const std::uint64_t key =
      net::pair_key(mapping.source_eid, mapping.destination_eid);
  auto it = active_flows_.find(key);
  if (it == active_flows_.end() || it->second.version <= mapping.version) {
    active_flows_[key] = mapping;
  }
}

const Pce::RemoteMapping* Pce::find_remote(net::Ipv4Address eid) const {
  return database_.lookup(eid);
}

// ---------------------------------------------------------------------------
// A5 — on-demand mapping acquisition over PCEP.
// ---------------------------------------------------------------------------

void Pce::add_pce_directory_entry(const net::Ipv4Prefix& prefix,
                                  net::Ipv4Address pce_address) {
  pce_directory_.insert(prefix, pce_address);
}

pcep::Session& Pce::pcep_session(net::Ipv4Address peer) {
  auto it = pcep_sessions_.find(peer);
  if (it == pcep_sessions_.end()) {
    auto session = std::make_unique<pcep::Session>(
        sim(), config_.pcep,
        [this, peer](std::shared_ptr<const pcep::Message> message) {
          send(net::Packet::udp(address(), peer, net::ports::kPcep,
                                net::ports::kPcep, std::move(message)));
        });
    // Responder side: we answer PCReq for our own EID space from the IRC
    // engine's current choice, exactly as Step 6 would.
    session->set_mapping_provider(
        [this](net::Ipv4Address eid) -> std::optional<lisp::MapEntry> {
          if (!is_local_eid(eid)) return std::nullopt;
          return local_mapping_for(eid);
        });
    it = pcep_sessions_.emplace(peer, std::move(session)).first;
  }
  return *it->second;
}

void Pce::request_mapping_via_pcep(net::Ipv4Address es, net::Ipv4Address ed,
                                   const dns::DomainName& qname) {
  const net::Ipv4Address* peer = pce_directory_.lookup(ed);
  if (peer == nullptr) {
    ++stats_.pcep_failures;
    return;
  }
  ++stats_.pcep_requests;
  pcep_session(*peer).request_mapping(
      ed, [this, es, ed, qname, peer_address = *peer](
              std::optional<lisp::MapEntry> mapping) {
        if (!mapping.has_value()) {
          ++stats_.pcep_failures;
          return;
        }
        ++stats_.pcep_mappings_learned;
        database_.insert(mapping->eid_prefix,
                         RemoteMapping{*mapping, peer_address, sim().now()});
        configure_flow(es, ed, *mapping, qname);
      });
}

void Pce::push_to_itrs(const std::vector<lisp::FlowMapping>& tuples) {
  if (tuples.empty() || itr_rlocs_.empty()) return;
  auto payload = std::make_shared<lisp::FlowMappingPush>(tuples);
  const std::size_t targets = config_.push_all_itrs ? itr_rlocs_.size() : 1;
  for (std::size_t i = 0; i < targets; ++i) {
    ++stats_.tuples_pushed;
    send(net::Packet::udp(address(), itr_rlocs_[i], net::ports::kPcePush,
                          net::ports::kPcePush, payload));
  }
}

}  // namespace lispcp::core
