// inline_function.hpp — a move-only callable with inline capture storage.
//
// std::function's small-buffer optimisation (16 bytes in libstdc++) is too
// small for the event closures the simulators enqueue: a BGP delivery
// captures {fabric, from, to, message} and a packet hop captures a
// shared_ptr plus endpoints, so every schedule() paid a heap allocation
// per event.  This type keeps captures up to `Capacity` bytes inline in
// the enqueued entry itself — the event queues' dominant allocation
// disappears — and transparently falls back to the heap for oversized
// captures, so no caller ever has to size its lambda.
//
// Move-only by design: event actions are consumed exactly once, and
// requiring copyability (as std::function does) would forbid captured
// move-only state.  Any copyable callable that fits std::function also
// fits here.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace lispcp::core {

template <typename Signature, std::size_t Capacity = 88>
class InlineFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  InlineFunction() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT: implicit like std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= Capacity &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      invoke_ = [](void* s, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<Fn*>(s)))(
            std::forward<Args>(args)...);
      };
      manage_ = [](Op op, void* s, void* dst) {
        Fn* fn = std::launder(reinterpret_cast<Fn*>(s));
        if (op == Op::kMove) ::new (dst) Fn(std::move(*fn));
        fn->~Fn();
      };
    } else {
      // Oversized capture: one allocation, exactly what std::function paid.
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      invoke_ = [](void* s, Args&&... args) -> R {
        return (**std::launder(reinterpret_cast<Fn**>(s)))(
            std::forward<Args>(args)...);
      };
      manage_ = [](Op op, void* s, void* dst) {
        Fn** slot = std::launder(reinterpret_cast<Fn**>(s));
        if (op == Op::kMove) {
          ::new (dst) Fn*(*slot);
        } else {
          delete *slot;
        }
      };
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { take(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      take(other);
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  R operator()(Args... args) {
    return invoke_(storage_, std::forward<Args>(args)...);
  }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  void reset() noexcept {
    if (manage_ != nullptr) manage_(Op::kDestroy, storage_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

 private:
  enum class Op { kMove, kDestroy };
  using Invoke = R (*)(void*, Args&&...);
  using Manage = void (*)(Op, void* src, void* dst);

  void take(InlineFunction& other) noexcept {
    if (other.manage_ != nullptr) {
      other.manage_(Op::kMove, other.storage_, storage_);
    }
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[Capacity];
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
};

}  // namespace lispcp::core
