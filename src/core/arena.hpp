// arena.hpp — pooled allocation for the simulators' per-event records.
//
// The discrete-event hot loops allocate and free one small object per event
// (an EventQueue record, an UpdateMessage per MRAI flush), so the general
// allocator dominated their profiles.  Two primitives replace it:
//
//   * Pool<T>: slab-backed free-list pool with per-slot generation
//     counters.  Indices are recycled; a (index, generation) pair names one
//     *lifetime* of a slot, so stale handles to a recycled slot are
//     detectable (EventHandle safety — see sim/event_queue.hpp).  Slabs
//     never move, so T's address is stable for the slot's lifetime.
//
//   * Recycler<T>: a bounded stack of retired objects whose *buffers* are
//     worth keeping (vectors that would otherwise re-grow from zero).
//     acquire() hands back a retired object with its capacity intact;
//     callers clear content themselves, so the recycler stays policy-free.
//
// Neither is thread-safe; each simulation thread owns its own (the shard
// engine keeps one Recycler per worker via thread_local).
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace lispcp::core {

template <typename T>
class Pool {
 public:
  static constexpr std::size_t kSlabSize = 256;

  /// Takes a free slot (reusing a released one first) and returns its index.
  /// The slot's T keeps whatever state its previous lifetime left — callers
  /// reinitialise the fields they use (that reuse is the point: a vector
  /// member keeps its capacity).
  std::uint32_t allocate() {
    if (free_.empty()) grow();
    const std::uint32_t index = free_.back();
    free_.pop_back();
    ++live_;
    return index;
  }

  /// Returns a slot to the free list and invalidates its generation, so
  /// handles created for the old lifetime no longer match.
  void release(std::uint32_t index) {
    ++slot(index).generation;
    free_.push_back(index);
    --live_;
  }

  [[nodiscard]] T& operator[](std::uint32_t index) noexcept {
    return slot(index).value;
  }
  [[nodiscard]] const T& operator[](std::uint32_t index) const noexcept {
    return slot(index).value;
  }

  /// The current lifetime stamp of a slot; incremented on every release.
  [[nodiscard]] std::uint32_t generation(std::uint32_t index) const noexcept {
    return slot(index).generation;
  }

  [[nodiscard]] std::size_t live() const noexcept { return live_; }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return slabs_.size() * kSlabSize;
  }

 private:
  struct Slot {
    T value{};
    std::uint32_t generation = 0;
  };

  [[nodiscard]] Slot& slot(std::uint32_t index) noexcept {
    return slabs_[index / kSlabSize][index % kSlabSize];
  }
  [[nodiscard]] const Slot& slot(std::uint32_t index) const noexcept {
    return slabs_[index / kSlabSize][index % kSlabSize];
  }

  void grow() {
    const auto base = static_cast<std::uint32_t>(capacity());
    slabs_.push_back(std::make_unique<Slot[]>(kSlabSize));
    free_.reserve(free_.size() + kSlabSize);
    // Low indices come off the free list first (nicer cache locality for
    // shallow queues).
    for (std::uint32_t i = kSlabSize; i > 0; --i) {
      free_.push_back(base + i - 1);
    }
  }

  std::vector<std::unique_ptr<Slot[]>> slabs_;
  std::vector<std::uint32_t> free_;
  std::size_t live_ = 0;
};

template <typename T>
class Recycler {
 public:
  explicit Recycler(std::size_t max_retired = 64) : max_retired_(max_retired) {}

  /// A retired object (buffers intact) or a fresh default-constructed one.
  [[nodiscard]] T acquire() {
    if (retired_.empty()) return T{};
    T out = std::move(retired_.back());
    retired_.pop_back();
    return out;
  }

  /// Retires an object for reuse; beyond the bound it is simply destroyed.
  void release(T&& value) {
    if (retired_.size() < max_retired_) retired_.push_back(std::move(value));
  }

  [[nodiscard]] std::size_t retired() const noexcept { return retired_.size(); }

 private:
  std::size_t max_retired_;
  std::vector<T> retired_;
};

}  // namespace lispcp::core
