// pce_message.hpp — the Step-6 PCE-to-PCE encapsulation.
//
// "it encapsulates the reply into a new UDP message, with source address
//  PCED, destination address DNSS, and a special transport port P ...
//  The payload of the outer-packet contains the mapping for ED."  (§2)
//
// The PceMessage payload carries (a) the original, untouched DNS reply
// packet, re-emitted verbatim at the source-domain PCE (Step 7a), and
// (b) the EID-to-RLOC mapping for ED as selected by the destination
// domain's background IRC engine, plus the PCED address the source PCE
// learns from the message (Step 7b).
#pragma once

#include <memory>

#include "lisp/control.hpp"
#include "net/packet.hpp"

namespace lispcp::core {

class PceMessage final : public net::Payload {
 public:
  PceMessage(net::Packet inner_dns_reply, lisp::MapEntry mapping,
             net::Ipv4Address pce_address)
      : inner_(std::move(inner_dns_reply)),
        mapping_(std::move(mapping)),
        pce_address_(pce_address) {}

  /// The encapsulated DNS reply packet, exactly as DNSD emitted it.
  [[nodiscard]] const net::Packet& inner() const noexcept { return inner_; }

  /// The EID-to-RLOC mapping for the answered ED.
  [[nodiscard]] const lisp::MapEntry& mapping() const noexcept { return mapping_; }

  /// The address of the destination-domain PCE ("From the outer-packet
  /// PCES learns the address of PCED").
  [[nodiscard]] net::Ipv4Address pce_address() const noexcept { return pce_address_; }

  [[nodiscard]] std::size_t wire_size() const noexcept override {
    return 4 + lisp::map_entry_wire_size(mapping_) + 2 + inner_.wire_size();
  }

  void serialize(net::ByteWriter& w) const override {
    w.address(pce_address_);
    lisp::serialize_map_entry(w, mapping_);
    const auto inner_bytes = inner_.serialize();
    w.u16(static_cast<std::uint16_t>(inner_bytes.size()));
    w.bytes(inner_bytes);
  }

  [[nodiscard]] std::string describe() const override {
    return "PCE-Encap from=" + pce_address_.to_string() + " map=[" +
           mapping_.to_string() + "] carrying {" + inner_.describe() + "}";
  }

 private:
  net::Packet inner_;
  lisp::MapEntry mapping_;
  net::Ipv4Address pce_address_;
};

}  // namespace lispcp::core
