// nerd.hpp — NERD-style push mapping database.
//
// NERD (draft-lear-lisp-nerd) distributes the *entire* EID-to-RLOC database
// to every consumer ahead of time: there are no resolution misses, so no
// packets are dropped or queued — but every mapping change must propagate
// through a periodic (signed, in the real protocol) database update, so
// consumers forward on stale mappings between pushes.  This is the "no
// drops, but slow to change and heavyweight" corner of the design space the
// paper positions the PCE control plane against.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "lisp/control.hpp"
#include "mapping/registry.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"

namespace lispcp::mapping {

struct NerdConfig {
  /// Interval between delta pushes (the protocol's refresh period).
  sim::SimDuration push_interval = sim::SimDuration::seconds(60);
  /// Server-side processing per push batch.
  sim::SimDuration processing_delay = sim::SimDuration::millis(1);
  /// Records per push packet (large databases are chunked).
  std::size_t chunk_size = 64;
};

struct NerdStats {
  std::uint64_t full_pushes = 0;
  std::uint64_t delta_pushes = 0;
  std::uint64_t entries_pushed = 0;
  std::uint64_t updates_submitted = 0;
};

class NerdAuthority : public sim::Node {
 public:
  NerdAuthority(sim::Network& network, std::string name, net::Ipv4Address address,
                NerdConfig config);

  /// Adds a consumer (ITR) that receives database pushes.
  void subscribe(net::Ipv4Address consumer);

  /// Seeds the database from the registry snapshot.
  void load_database(std::vector<lisp::MapEntry> entries);

  /// Accepts a mapping change; it is distributed with the *next* periodic
  /// delta push (this batching delay is NERD's staleness window).
  void submit_update(lisp::MapEntry entry);

  /// Immediately pushes the full database to all subscribers (bootstrap).
  void push_full();

  /// Starts the periodic delta push cycle.
  void start();

  [[nodiscard]] const NerdStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t database_size() const noexcept { return database_.size(); }
  [[nodiscard]] std::uint64_t generation() const noexcept { return generation_; }

 private:
  void push_entries(const std::vector<lisp::MapEntry>& entries);
  void on_push_timer();

  NerdConfig config_;
  NerdStats stats_;
  std::vector<net::Ipv4Address> subscribers_;
  std::unordered_map<net::Ipv4Prefix, lisp::MapEntry> database_;
  std::vector<lisp::MapEntry> pending_updates_;
  std::uint64_t generation_ = 1;
  bool started_ = false;
};

}  // namespace lispcp::mapping
