#include "mapping/nerd.hpp"

#include "net/ports.hpp"

namespace lispcp::mapping {

NerdAuthority::NerdAuthority(sim::Network& network, std::string name,
                             net::Ipv4Address address, NerdConfig config)
    : Node(network, std::move(name)), config_(config) {
  add_address(address);
}

void NerdAuthority::subscribe(net::Ipv4Address consumer) {
  subscribers_.push_back(consumer);
}

void NerdAuthority::load_database(std::vector<lisp::MapEntry> entries) {
  for (auto& entry : entries) {
    database_[entry.eid_prefix] = std::move(entry);
  }
}

void NerdAuthority::submit_update(lisp::MapEntry entry) {
  ++stats_.updates_submitted;
  database_[entry.eid_prefix] = entry;
  pending_updates_.push_back(std::move(entry));
}

void NerdAuthority::push_full() {
  ++stats_.full_pushes;
  std::vector<lisp::MapEntry> all;
  all.reserve(database_.size());
  for (const auto& [prefix, entry] : database_) all.push_back(entry);
  push_entries(all);
}

void NerdAuthority::start() {
  if (started_) return;
  started_ = true;
  sim().schedule_daemon(config_.push_interval, [this] { on_push_timer(); });
}

void NerdAuthority::on_push_timer() {
  if (!pending_updates_.empty()) {
    ++stats_.delta_pushes;
    push_entries(pending_updates_);
    pending_updates_.clear();
  }
  sim().schedule_daemon(config_.push_interval, [this] { on_push_timer(); });
}

void NerdAuthority::push_entries(const std::vector<lisp::MapEntry>& entries) {
  ++generation_;
  for (std::size_t start = 0; start < entries.size(); start += config_.chunk_size) {
    const std::size_t end = std::min(start + config_.chunk_size, entries.size());
    std::vector<lisp::MapEntry> chunk(entries.begin() + start, entries.begin() + end);
    auto push = std::make_shared<lisp::MapPush>(std::move(chunk), generation_);
    stats_.entries_pushed += end - start;
    for (auto consumer : subscribers_) {
      sim().schedule(config_.processing_delay, [this, consumer, push] {
        send(net::Packet::udp(address(), consumer, net::ports::kNerd,
                              net::ports::kNerd, push));
      });
    }
  }
}

}  // namespace lispcp::mapping
