// overlay_router.hpp — ALT / CONS mapping-overlay routers.
//
// Both baselines the paper cites are aggregation hierarchies of dedicated
// routers that carry Map-Requests toward the ETR registering the queried
// EID prefix:
//
//   * LISP+ALT (draft-fuller-lisp-alt): GRE/BGP overlay; the Map-Request is
//     routed hop by hop up and down the aggregation tree, and the ETR sends
//     the Map-Reply *directly* to the requesting ITR over the native
//     Internet.
//
//   * LISP-CONS (draft-meyer-lisp-cons): a content-distribution hierarchy
//     of CARs/CDRs; the request records its route and the *reply retraces
//     the overlay path*, roughly doubling resolution latency relative to
//     ALT for symmetric trees.
//
// One router class covers both: in CONS mode it appends itself to the
// request's recorded route and relays replies back down.  Overlay hops are
// unicast UDP between router addresses, so the underlay topology (and its
// congestion) shapes resolution latency exactly as it would in deployment.
// ALT routers also forward data packets tunnelled into the overlay by ITRs
// using the kForwardOverlay miss palliative (IP-in-IP hop-by-hop re-tunnel).
#pragma once

#include <cstdint>

#include "lisp/control.hpp"
#include "net/prefix_trie.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"

namespace lispcp::mapping {

enum class OverlayMode {
  kAlt,   ///< direct Map-Reply to the requester
  kCons,  ///< record-route request, reply relayed back down the tree
};

struct OverlayRouterConfig {
  OverlayMode mode = OverlayMode::kAlt;
  /// Per-hop control processing (BGP/GRE lookup on 2008 hardware).
  sim::SimDuration processing_delay = sim::SimDuration::micros(300);
};

struct OverlayRouterStats {
  std::uint64_t requests_forwarded = 0;
  std::uint64_t replies_relayed = 0;
  std::uint64_t data_forwarded = 0;
  std::uint64_t no_route = 0;
};

class OverlayRouter : public sim::Node {
 public:
  OverlayRouter(sim::Network& network, std::string name, net::Ipv4Address address,
                OverlayRouterConfig config);

  /// Installs an overlay route: EID `prefix` is reached via `next_hop`
  /// (another overlay router, or the registering ETR's RLOC at the edge).
  void add_overlay_route(const net::Ipv4Prefix& prefix, net::Ipv4Address next_hop);

  /// The default (aggregate) route toward the parent router.
  void set_parent(net::Ipv4Address parent) {
    add_overlay_route(net::Ipv4Prefix(), parent);
  }

  void deliver(net::Packet packet) override;

  [[nodiscard]] const OverlayRouterStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t route_count() const noexcept { return routes_.size(); }

 private:
  void forward_request(const lisp::MapRequest& request);
  void relay_reply(const lisp::MapReply& reply);
  void forward_data(net::Packet packet);

  OverlayRouterConfig config_;
  net::PrefixTrie<net::Ipv4Address> routes_;
  OverlayRouterStats stats_;
};

}  // namespace lispcp::mapping
