// systems.hpp — the built-in mapping systems behind the MappingSystem seam.
//
// Each class owns the construction and lifecycle of one control plane from
// the paper's comparison set (plus the two degenerate baselines).  The code
// here is the former body of topo::Internet::build_overlay / build_nerd /
// build_map_server / activate_pce, re-homed so the topology builder is
// system-agnostic and new control planes register instead of patching it.
//
// The sharded/replicated Map-Resolver tier lives in
// mapping/replicated_resolver.hpp.
#pragma once

#include <vector>

#include "mapping/mapping_system.hpp"
#include "mapping/map_server.hpp"
#include "mapping/nerd.hpp"
#include "mapping/overlay_router.hpp"

namespace lispcp::core {
class Pce;
}  // namespace lispcp::core

namespace lispcp::mapping {

/// Pre-LISP baseline: EID prefixes are globally routed, xTRs are plain
/// routers, and there is no mapping state anywhere.
class PlainIpSystem final : public MappingSystem {
 public:
  [[nodiscard]] ControlPlaneKind kind() const noexcept override {
    return ControlPlaneKind::kPlainIp;
  }
  [[nodiscard]] const char* name() const noexcept override { return "plain-ip"; }
  void configure_xtr(const topo::InternetSpec& spec,
                     lisp::XtrConfig& config) override;
  void build(topo::Internet& internet) override;
  void register_site(topo::Internet& internet, topo::DomainHandle& dom,
                     const std::vector<lisp::MapEntry>& entries) override;
};

/// LISP encapsulation with no mapping distribution at all: every remote-EID
/// packet misses forever.  The degenerate lower bound (and the default for a
/// raw InternetSpec), useful for isolating encapsulation costs.
class NoMappingSystem final : public MappingSystem {
 public:
  [[nodiscard]] ControlPlaneKind kind() const noexcept override {
    return ControlPlaneKind::kNoMapping;
  }
  [[nodiscard]] const char* name() const noexcept override { return "lisp-none"; }
  void build(topo::Internet& internet) override;
};

/// LISP+ALT / LISP-CONS: an aggregation-tree overlay of dedicated routers;
/// ITRs pull mappings through their regional leaf.  CONS differs in reply
/// routing (relayed back down the recorded tree path) which the ITR-side
/// strategy selects via record-route.
class AltOverlaySystem final : public MappingSystem {
 public:
  AltOverlaySystem(ControlPlaneKind kind, OverlayMode mode)
      : kind_(kind), mode_(mode) {}

  [[nodiscard]] ControlPlaneKind kind() const noexcept override { return kind_; }
  [[nodiscard]] const char* name() const noexcept override {
    return mode_ == OverlayMode::kCons ? "lisp-cons" : "lisp-alt";
  }
  void build(topo::Internet& internet) override;
  void attach_itr(topo::Internet& internet, topo::DomainHandle& dom,
                  lisp::TunnelRouter& itr) override;
  [[nodiscard]] MappingSystemStats stats() const override;

 private:
  ControlPlaneKind kind_;
  OverlayMode mode_;
  std::vector<OverlayRouter*> routers_;
  std::vector<net::Ipv4Address> leaf_of_domain_;
};

/// NERD: a central authority pushes the entire database to every ITR.
class NerdSystem final : public MappingSystem {
 public:
  [[nodiscard]] ControlPlaneKind kind() const noexcept override {
    return ControlPlaneKind::kNerd;
  }
  [[nodiscard]] const char* name() const noexcept override { return "lisp-nerd"; }
  void configure_xtr(const topo::InternetSpec& spec,
                     lisp::XtrConfig& config) override;
  void build(topo::Internet& internet) override;
  void register_site(topo::Internet& internet, topo::DomainHandle& dom,
                     const std::vector<lisp::MapEntry>& entries) override;
  void activate(topo::Internet& internet) override;
  [[nodiscard]] MappingSystemStats stats() const override;

 private:
  NerdAuthority* authority_ = nullptr;
};

/// Map-Server / Map-Resolver (draft-lisp-ms): sites register with a sharded
/// Map-Server; ITRs pull through their shard's colocated Map-Resolver.
class MapServerSystem final : public MappingSystem {
 public:
  [[nodiscard]] ControlPlaneKind kind() const noexcept override {
    return ControlPlaneKind::kMapServer;
  }
  [[nodiscard]] const char* name() const noexcept override { return "lisp-ms"; }
  void build(topo::Internet& internet) override;
  void register_site(topo::Internet& internet, topo::DomainHandle& dom,
                     const std::vector<lisp::MapEntry>& entries) override;
  void attach_itr(topo::Internet& internet, topo::DomainHandle& dom,
                  lisp::TunnelRouter& itr) override;
  [[nodiscard]] MappingSystemStats stats() const override;

 private:
  std::vector<MapServer*> servers_;
  std::vector<MapResolver*> resolvers_;
};

/// The paper's PCE control plane: per-domain PCEs in the DNS data path push
/// flow tuples to the ITRs, so there is no on-demand resolution at all.
class PceSystem final : public MappingSystem {
 public:
  [[nodiscard]] ControlPlaneKind kind() const noexcept override {
    return ControlPlaneKind::kPce;
  }
  [[nodiscard]] const char* name() const noexcept override { return "lisp-pce"; }
  void attach_domain_dns(topo::Internet& internet,
                         topo::DomainHandle& dom) override;
  void build(topo::Internet& internet) override;
  void activate(topo::Internet& internet) override;
  [[nodiscard]] MappingSystemStats stats() const override;

 private:
  std::vector<const core::Pce*> pces_;
};

}  // namespace lispcp::mapping
