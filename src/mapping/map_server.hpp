// map_server.hpp — the Map-Server / Map-Resolver mapping system
// (draft-lisp-ms), the fourth contemporaneous control-plane proposal next
// to the ALT / CONS / NERD baselines the paper names — and the one the
// LISP community eventually deployed.
//
// Division of labour:
//
//   * ETRs register their site's mapping records with a Map-Server
//     (Map-Register, lisp::MapRegister) under a registration TTL and
//     refresh them periodically (EtrRegistrar); a site that stops
//     refreshing ages out.
//   * ITRs send Map-Requests to a Map-Resolver, which routes them to the
//     Map-Server holding the registration (in deployment the MR finds the
//     MS over the ALT; this simulation flattens that into a static
//     prefix-to-MS table — the substitution changes one overlay traversal
//     into one hop, documented in DESIGN.md).
//   * The Map-Server forwards the request to a registered ETR, which sends
//     the Map-Reply directly to the ITR (non-proxy mode, the draft
//     default), or answers itself from the registration (proxy mode).
//   * Unregistered EIDs get a Negative Map-Reply (an entry with no
//     locators and a short TTL) so the ITR caches the miss.
//
// Resolution latency is therefore ITR->MR->MS->ETR->ITR (three control
// hops plus the reply), between ALT (overlay traversal) and NERD (no
// resolution at all) — exactly the regime experiment E5 compares.
#pragma once

#include <cstdint>
#include <map>

#include "lisp/control.hpp"
#include "lisp/tunnel_router.hpp"
#include "net/flow.hpp"
#include "net/prefix_trie.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"

namespace lispcp::mapping {

struct MapServerConfig {
  /// Answer from the registration instead of forwarding to the ETR.
  bool proxy_reply = false;
  /// Negative Map-Reply TTL (draft-lisp-ms §4.1 suggests short).
  std::uint32_t negative_ttl_seconds = 15;
  /// Per-message control-plane processing.
  sim::SimDuration processing_delay = sim::SimDuration::micros(200);
  /// How often expired registrations are swept out.
  sim::SimDuration sweep_interval = sim::SimDuration::seconds(5);
};

struct MapServerStats {
  std::uint64_t registers_received = 0;
  std::uint64_t records_registered = 0;   ///< entries currently live
  std::uint64_t requests_received = 0;
  std::uint64_t requests_forwarded = 0;   ///< non-proxy: handed to the ETR
  std::uint64_t proxy_replies = 0;
  std::uint64_t negative_replies = 0;
  std::uint64_t registrations_expired = 0;
};

class MapServer : public sim::Node {
 public:
  MapServer(sim::Network& network, std::string name, net::Ipv4Address address,
            MapServerConfig config);

  void deliver(net::Packet packet) override;

  [[nodiscard]] const MapServerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t registration_count() const noexcept {
    return expiry_index_.size();
  }
  /// The registering ETR for `eid`, if a live registration covers it.
  [[nodiscard]] const lisp::MapEntry* find_registration(net::Ipv4Address eid) const;

 private:
  struct Registration {
    lisp::MapEntry entry;
    net::Ipv4Address etr_rloc;   ///< who registered (forward target)
    sim::SimTime expires;
  };

  void handle_register(const net::Packet& packet,
                       const lisp::MapRegister& reg);
  void handle_request(const net::Packet& packet,
                      const lisp::MapRequest& request);
  void send_negative_reply(const lisp::MapRequest& request);
  void sweep();

  MapServerConfig config_;
  net::PrefixTrie<Registration> registrations_;
  std::map<net::Ipv4Prefix, sim::SimTime> expiry_index_;  ///< for the sweep
  MapServerStats stats_;
};

struct MapResolverStats {
  std::uint64_t requests_received = 0;
  std::uint64_t requests_forwarded = 0;
  std::uint64_t negative_replies = 0;  ///< no Map-Server covers the EID
};

/// The ITR-facing front end: routes Map-Requests to the Map-Server that
/// holds the registration.
class MapResolver : public sim::Node {
 public:
  MapResolver(sim::Network& network, std::string name, net::Ipv4Address address,
              sim::SimDuration processing_delay = sim::SimDuration::micros(200));

  /// Routes requests for `prefix` to the Map-Server at `map_server`.
  void add_map_server_route(const net::Ipv4Prefix& prefix,
                            net::Ipv4Address map_server);

  void deliver(net::Packet packet) override;

  [[nodiscard]] const MapResolverStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t route_count() const noexcept {
    return ms_table_.size();
  }

 private:
  sim::SimDuration processing_delay_;
  net::PrefixTrie<net::Ipv4Address> ms_table_;
  MapResolverStats stats_;
};

struct RegistrarConfig {
  /// Registration lifetime granted to the Map-Server.
  std::uint32_t ttl_seconds = 180;
  /// Refresh period; must be comfortably below the TTL.
  sim::SimDuration refresh_interval = sim::SimDuration::seconds(60);
};

struct RegistrarStats {
  std::uint64_t registers_sent = 0;
};

/// Periodic Map-Register emission on behalf of one border router (the
/// draft's ETR registration loop).
class EtrRegistrar {
 public:
  EtrRegistrar(lisp::TunnelRouter& xtr, net::Ipv4Address map_server,
               std::vector<lisp::MapEntry> entries, RegistrarConfig config);

  EtrRegistrar(const EtrRegistrar&) = delete;
  EtrRegistrar& operator=(const EtrRegistrar&) = delete;

  /// Sends the first Map-Register now and refreshes on a daemon timer.
  /// Idempotent.
  void start();

  /// Stops refreshing (site decommission / mobility-away); the Map-Server
  /// entry then lapses at its TTL.
  void stop() noexcept { running_ = false; }

  [[nodiscard]] const RegistrarStats& stats() const noexcept { return stats_; }

 private:
  void register_now();

  lisp::TunnelRouter& xtr_;
  net::Ipv4Address map_server_;
  std::vector<lisp::MapEntry> entries_;
  RegistrarConfig config_;
  bool started_ = false;
  bool running_ = true;
  net::NonceSequence nonces_;
  RegistrarStats stats_;
};

}  // namespace lispcp::mapping
