#include "mapping/replicated_resolver.hpp"

#include <algorithm>

#include "lisp/resolution.hpp"
#include "lisp/tunnel_router.hpp"
#include "topo/address_plan.hpp"
#include "topo/internet.hpp"

namespace lispcp::mapping {

void ReplicatedResolverSystem::build(topo::Internet& internet) {
  const auto& spec = internet.spec();
  auto& network = internet.network();
  sim::Node& core = internet.core_router();

  const std::size_t shards = std::max<std::size_t>(1, spec.map_server_count);
  const std::size_t replicas =
      std::min(std::max<std::size_t>(1, spec.ms_replica_count), spec.domains);

  sim::LinkConfig core_attach;
  core_attach.delay = spec.dns_infra_delay;
  core_attach.bandwidth_bps = spec.core_bandwidth_bps;

  // Authoritative tier: sharded Map-Servers at the core, as in the MS
  // system (registration load shards; it does not need geographic spread).
  MapServerConfig mscfg;
  mscfg.proxy_reply = spec.ms_proxy_reply;
  for (std::size_t i = 0; i < shards; ++i) {
    auto& ms = network.make<MapServer>("ms" + std::to_string(i),
                                       topo::map_server_addr(i), mscfg);
    network.connect(ms.id(), core.id(), core_attach);
    network.add_host_route(core.id(), ms.address(), ms.id());
    network.add_route(ms.id(), net::Ipv4Prefix(), core.id());
    servers_.push_back(&ms);
    internet.mapping_infra().map_servers.push_back(&ms);
  }

  // Resolver tier: replicas live inside evenly spaced home domains, one
  // LAN hop from that region's ITRs (the anycast-PoP stand-in).
  sim::LinkConfig lan_attach;
  lan_attach.delay = spec.intra_domain_delay;
  lan_attach.bandwidth_bps = spec.lan_bandwidth_bps;
  for (std::size_t r = 0; r < replicas; ++r) {
    const std::size_t home = replica_home_domain(r, replicas, spec.domains);
    topo::DomainHandle& dom = internet.domain(home);
    const auto addr = topo::replica_resolver_addr(r);
    auto& mr = network.make<MapResolver>("mr-rep" + std::to_string(r), addr);
    network.connect(mr.id(), dom.internal_router->id(), lan_attach);
    network.add_host_route(dom.internal_router->id(), addr, mr.id());
    network.add_route(mr.id(), net::Ipv4Prefix(), dom.internal_router->id());
    // The rest of the world reaches the replica through its home domain's
    // border routers; the border routers hand it inward.
    network.add_host_route(core.id(), addr, dom.xtrs.front()->id());
    for (auto* xtr : dom.xtrs) {
      network.add_host_route(xtr->id(), addr, dom.internal_router->id());
    }
    resolvers_.push_back(&mr);
    internet.mapping_infra().map_resolvers.push_back(&mr);
  }

  // Replicated routing state: every replica holds the full
  // prefix-to-shard table.
  for (std::size_t d = 0; d < spec.domains; ++d) {
    const auto ms_addr = topo::map_server_addr(d % shards);
    for (const auto& prefix : internet.site_prefixes(d)) {
      for (auto* mr : resolvers_) {
        mr->add_map_server_route(prefix, ms_addr);
      }
    }
  }
}

void ReplicatedResolverSystem::register_site(
    topo::Internet& internet, topo::DomainHandle& dom,
    const std::vector<lisp::MapEntry>& entries) {
  RegistrarConfig rcfg;
  rcfg.ttl_seconds = internet.spec().ms_registration_ttl_seconds;
  rcfg.refresh_interval = internet.spec().ms_refresh_interval;
  auto registrar = std::make_unique<EtrRegistrar>(
      *dom.xtrs.front(), topo::map_server_addr(dom.index % servers_.size()),
      entries, rcfg);
  registrar->start();
  internet.mapping_infra().registrars.push_back(std::move(registrar));
}

void ReplicatedResolverSystem::attach_itr(topo::Internet& internet,
                                          topo::DomainHandle& dom,
                                          lisp::TunnelRouter& itr) {
  // Nearest-replica selection: order the replica set by propagation delay
  // from this ITR.  Equidistant replicas (the common case for domains with
  // no local replica, which see every replica across the core) are rotated
  // by the ITR's domain so load spreads the way anycast vantage points do,
  // instead of every remote domain piling onto replica 0.
  std::vector<std::pair<sim::SimDuration, net::Ipv4Address>> ranked;
  ranked.reserve(resolvers_.size());
  for (const auto* mr : resolvers_) {
    const auto delay = internet.network().path_delay(itr.id(), mr->id());
    ranked.emplace_back(delay.value_or(sim::SimDuration::seconds(3600)),
                        mr->address());
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto run = ranked.begin(); run != ranked.end();) {
    auto run_end = run + 1;
    while (run_end != ranked.end() && run_end->first == run->first) ++run_end;
    const auto run_size = static_cast<std::size_t>(run_end - run);
    std::rotate(run, run + dom.index % run_size, run_end);
    run = run_end;
  }
  std::vector<net::Ipv4Address> ordered;
  ordered.reserve(ranked.size());
  for (const auto& [delay, addr] : ranked) {
    (void)delay;
    ordered.push_back(addr);
  }
  itr.set_resolution_strategy(
      std::make_unique<lisp::ReplicaPullResolution>(std::move(ordered)));
}

MappingSystemStats ReplicatedResolverSystem::stats() const {
  MappingSystemStats out;
  out.infrastructure_nodes = servers_.size() + resolvers_.size();
  for (const auto* ms : servers_) {
    out.database_records += ms->registration_count();
    out.control_messages +=
        ms->stats().registers_received + ms->stats().requests_received;
  }
  for (const auto* mr : resolvers_) {
    out.database_records += mr->route_count();
    out.control_messages += mr->stats().requests_received;
  }
  return out;
}

}  // namespace lispcp::mapping
