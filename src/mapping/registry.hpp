// registry.hpp — ground-truth EID-to-RLOC mapping database.
//
// Every site registers its mapping here when the topology is built.  The
// registry itself is not a protocol — it is the oracle the control planes
// are seeded from: the ALT/CONS overlays derive their aggregation routes
// from it, the NERD authority snapshots it as the pushed database, and the
// per-domain PCE/IRC engines own the records for their local prefixes.
// Tests use it to check that whatever a control plane resolved matches the
// truth.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "lisp/map_entry.hpp"
#include "net/prefix_trie.hpp"

namespace lispcp::mapping {

class MappingRegistry {
 public:
  /// Registers (or replaces) the mapping for its EID prefix.  Replacements
  /// bump the version so consumers can detect staleness.
  void register_site(lisp::MapEntry entry);

  /// Longest-prefix-match lookup of the authoritative mapping for `eid`.
  [[nodiscard]] const lisp::MapEntry* lookup(net::Ipv4Address eid) const noexcept;

  /// Exact lookup by prefix.
  [[nodiscard]] const lisp::MapEntry* find(const net::Ipv4Prefix& prefix) const noexcept;

  /// Applies a TE change to an existing mapping (new RLOC set), bumping the
  /// version.  Returns the new version, or 0 if the prefix is unknown.
  std::uint64_t update_rlocs(const net::Ipv4Prefix& prefix,
                             std::vector<lisp::Rloc> rlocs);

  /// Snapshot of every registered record (NERD database bootstrap).
  [[nodiscard]] std::vector<lisp::MapEntry> all() const;

  [[nodiscard]] std::size_t size() const noexcept { return count_; }

 private:
  net::PrefixTrie<lisp::MapEntry> entries_;
  std::size_t count_ = 0;
  std::uint64_t next_version_ = 1;
};

}  // namespace lispcp::mapping
