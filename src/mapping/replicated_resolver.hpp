// replicated_resolver.hpp — sharded Map-Servers with a replicated,
// regionally-placed Map-Resolver tier (ControlPlaneKind::kMsReplicated).
//
// The draft-lisp-ms architecture of mapping/map_server.hpp puts every
// Map-Resolver at the core, so each resolution pays a full core round trip
// before the request even enters the mapping system.  At the
// millions-of-users scale the roadmap targets, that front end is the
// bottleneck: every ITR in the world funnels through a handful of central
// resolvers.
//
// This system scales the front end the way production anycast DNS does:
//
//   * Registrations stay sharded across `map_server_count` Map-Servers
//     (unchanged from the MS system — the authoritative tier shards).
//   * The resolver tier is *replicated*: `ms_replica_count` Map-Resolvers,
//     each holding the full prefix-to-shard table, placed inside evenly
//     spaced "home" domains rather than at the core (the stand-in for
//     anycast PoPs).
//   * Each ITR resolves via its nearest replica — distances come from the
//     built topology (sim::Network::path_delay), and the ordered replica
//     list is baked into a lisp::ReplicaPullResolution, which rotates to
//     the next-nearest replica on every retry so a dead replica costs one
//     request timeout instead of the session.
//
// Built entirely through the MappingSystem interface: topo::Internet knows
// nothing about it beyond the registry entry.
#pragma once

#include <vector>

#include "mapping/map_server.hpp"
#include "mapping/mapping_system.hpp"

namespace lispcp::mapping {

class ReplicatedResolverSystem final : public MappingSystem {
 public:
  [[nodiscard]] ControlPlaneKind kind() const noexcept override {
    return ControlPlaneKind::kMsReplicated;
  }
  [[nodiscard]] const char* name() const noexcept override {
    return "lisp-ms-repl";
  }
  void build(topo::Internet& internet) override;
  void register_site(topo::Internet& internet, topo::DomainHandle& dom,
                     const std::vector<lisp::MapEntry>& entries) override;
  void attach_itr(topo::Internet& internet, topo::DomainHandle& dom,
                  lisp::TunnelRouter& itr) override;
  [[nodiscard]] MappingSystemStats stats() const override;

  /// The home domain of replica `r` out of `replicas`, spread evenly.
  [[nodiscard]] static std::size_t replica_home_domain(std::size_t r,
                                                       std::size_t replicas,
                                                       std::size_t domains) {
    return (r * domains) / replicas;
  }

 private:
  std::vector<MapServer*> servers_;
  std::vector<MapResolver*> resolvers_;
};

}  // namespace lispcp::mapping
