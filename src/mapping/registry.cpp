#include "mapping/registry.hpp"

namespace lispcp::mapping {

void MappingRegistry::register_site(lisp::MapEntry entry) {
  entry.version = next_version_++;
  if (entries_.insert(entry.eid_prefix, entry)) {
    ++count_;
  }
}

const lisp::MapEntry* MappingRegistry::lookup(net::Ipv4Address eid) const noexcept {
  return entries_.lookup(eid);
}

const lisp::MapEntry* MappingRegistry::find(
    const net::Ipv4Prefix& prefix) const noexcept {
  return entries_.find_exact(prefix);
}

std::uint64_t MappingRegistry::update_rlocs(const net::Ipv4Prefix& prefix,
                                            std::vector<lisp::Rloc> rlocs) {
  lisp::MapEntry* entry = entries_.find_exact(prefix);
  if (entry == nullptr) return 0;
  entry->rlocs = std::move(rlocs);
  entry->version = next_version_++;
  return entry->version;
}

std::vector<lisp::MapEntry> MappingRegistry::all() const {
  std::vector<lisp::MapEntry> out;
  out.reserve(count_);
  entries_.for_each([&out](const net::Ipv4Prefix&, const lisp::MapEntry& e) {
    out.push_back(e);
  });
  return out;
}

}  // namespace lispcp::mapping
