#include "mapping/map_server.hpp"

#include "net/ports.hpp"

namespace lispcp::mapping {

MapServer::MapServer(sim::Network& network, std::string name,
                     net::Ipv4Address address, MapServerConfig config)
    : Node(network, std::move(name)), config_(config) {
  add_address(address);
  sim().schedule_daemon(config_.sweep_interval, [this] { sweep(); });
}

void MapServer::deliver(net::Packet packet) {
  const auto* udp = packet.udp();
  if (udp != nullptr && udp->dst_port == net::ports::kLispControl) {
    if (auto reg = packet.payload_as<lisp::MapRegister>()) {
      handle_register(packet, *reg);
      return;
    }
    if (auto request = packet.payload_as<lisp::MapRequest>()) {
      handle_request(packet, *request);
      return;
    }
  }
  Node::deliver(std::move(packet));
}

void MapServer::handle_register(const net::Packet& packet,
                                const lisp::MapRegister& reg) {
  ++stats_.registers_received;
  const auto expires =
      sim().now() + sim::SimDuration::seconds(reg.ttl_seconds());
  for (const auto& entry : reg.entries()) {
    const bool fresh = !expiry_index_.contains(entry.eid_prefix);
    registrations_.insert(
        entry.eid_prefix,
        Registration{entry, packet.outer_ip().src, expires});
    expiry_index_[entry.eid_prefix] = expires;
    if (fresh) ++stats_.records_registered;
  }
}

void MapServer::handle_request(const net::Packet& packet,
                               const lisp::MapRequest& request) {
  (void)packet;
  ++stats_.requests_received;
  Registration* registration = registrations_.lookup(request.target_eid());
  if (registration == nullptr || registration->expires <= sim().now()) {
    send_negative_reply(request);
    return;
  }
  if (config_.proxy_reply) {
    ++stats_.proxy_replies;
    auto reply =
        std::make_shared<lisp::MapReply>(request.nonce(), registration->entry);
    sim().schedule(config_.processing_delay, [this, reply,
                                              to = request.reply_to_rloc()] {
      send(net::Packet::udp(address(), to, net::ports::kLispControl,
                            net::ports::kLispControl, reply));
    });
    return;
  }
  // Non-proxy: hand the request to the registering ETR; it replies straight
  // to the ITR named inside the request.
  ++stats_.requests_forwarded;
  auto forwarded = std::make_shared<lisp::MapRequest>(
      request.nonce(), request.target_eid(), request.reply_to_rloc(),
      /*record_route=*/false);
  sim().schedule(config_.processing_delay,
                 [this, forwarded, to = registration->etr_rloc] {
                   send(net::Packet::udp(address(), to,
                                         net::ports::kLispControl,
                                         net::ports::kLispControl, forwarded));
                 });
}

void MapServer::send_negative_reply(const lisp::MapRequest& request) {
  ++stats_.negative_replies;
  // A Negative Map-Reply: no locators, short TTL, covering just the host.
  lisp::MapEntry negative;
  negative.eid_prefix = net::Ipv4Prefix::host(request.target_eid());
  negative.ttl_seconds = config_.negative_ttl_seconds;
  auto reply =
      std::make_shared<lisp::MapReply>(request.nonce(), std::move(negative));
  sim().schedule(config_.processing_delay, [this, reply,
                                            to = request.reply_to_rloc()] {
    send(net::Packet::udp(address(), to, net::ports::kLispControl,
                          net::ports::kLispControl, reply));
  });
}

void MapServer::sweep() {
  const auto now = sim().now();
  for (auto it = expiry_index_.begin(); it != expiry_index_.end();) {
    if (it->second <= now) {
      registrations_.erase(it->first);
      it = expiry_index_.erase(it);
      ++stats_.registrations_expired;
      if (stats_.records_registered > 0) --stats_.records_registered;
    } else {
      ++it;
    }
  }
  sim().schedule_daemon(config_.sweep_interval, [this] { sweep(); });
}

const lisp::MapEntry* MapServer::find_registration(net::Ipv4Address eid) const {
  const Registration* registration = registrations_.lookup(eid);
  if (registration == nullptr || registration->expires <= sim().now()) {
    return nullptr;
  }
  return &registration->entry;
}

MapResolver::MapResolver(sim::Network& network, std::string name,
                         net::Ipv4Address address,
                         sim::SimDuration processing_delay)
    : Node(network, std::move(name)), processing_delay_(processing_delay) {
  add_address(address);
}

void MapResolver::add_map_server_route(const net::Ipv4Prefix& prefix,
                                       net::Ipv4Address map_server) {
  ms_table_.insert(prefix, map_server);
}

void MapResolver::deliver(net::Packet packet) {
  const auto* udp = packet.udp();
  if (udp != nullptr && udp->dst_port == net::ports::kLispControl) {
    if (auto request = packet.payload_as<lisp::MapRequest>()) {
      ++stats_.requests_received;
      const net::Ipv4Address* ms = ms_table_.lookup(request->target_eid());
      if (ms == nullptr) {
        ++stats_.negative_replies;
        lisp::MapEntry negative;
        negative.eid_prefix = net::Ipv4Prefix::host(request->target_eid());
        negative.ttl_seconds = 15;
        auto reply = std::make_shared<lisp::MapReply>(request->nonce(),
                                                      std::move(negative));
        sim().schedule(processing_delay_,
                       [this, reply, to = request->reply_to_rloc()] {
                         send(net::Packet::udp(address(), to,
                                               net::ports::kLispControl,
                                               net::ports::kLispControl,
                                               reply));
                       });
        return;
      }
      ++stats_.requests_forwarded;
      auto forwarded = request;
      sim().schedule(processing_delay_, [this, forwarded, to = *ms] {
        send(net::Packet::udp(address(), to, net::ports::kLispControl,
                              net::ports::kLispControl, forwarded));
      });
      return;
    }
  }
  Node::deliver(std::move(packet));
}

EtrRegistrar::EtrRegistrar(lisp::TunnelRouter& xtr, net::Ipv4Address map_server,
                           std::vector<lisp::MapEntry> entries,
                           RegistrarConfig config)
    : xtr_(xtr),
      map_server_(map_server),
      entries_(std::move(entries)),
      config_(config) {
  const auto ttl = sim::SimDuration::seconds(config_.ttl_seconds);
  if (config_.refresh_interval >= ttl) {
    throw std::invalid_argument(
        "EtrRegistrar: refresh_interval must be below the registration TTL");
  }
}

void EtrRegistrar::start() {
  if (started_) return;
  started_ = true;
  register_now();
}

void EtrRegistrar::register_now() {
  if (!running_) return;
  ++stats_.registers_sent;
  auto reg = std::make_shared<lisp::MapRegister>(nonces_.next(),
                                                 config_.ttl_seconds, entries_);
  xtr_.send(net::Packet::udp(xtr_.rloc(), map_server_,
                             net::ports::kLispControl,
                             net::ports::kLispControl, std::move(reg)));
  xtr_.sim().schedule_daemon(config_.refresh_interval,
                             [this] { register_now(); });
}

}  // namespace lispcp::mapping
