#include "mapping/overlay_router.hpp"

#include "net/ports.hpp"

namespace lispcp::mapping {

OverlayRouter::OverlayRouter(sim::Network& network, std::string name,
                             net::Ipv4Address address, OverlayRouterConfig config)
    : Node(network, std::move(name)), config_(config) {
  add_address(address);
}

void OverlayRouter::add_overlay_route(const net::Ipv4Prefix& prefix,
                                      net::Ipv4Address next_hop) {
  routes_.insert(prefix, next_hop);
}

void OverlayRouter::deliver(net::Packet packet) {
  if (packet.outer_ip().protocol == net::IpProto::kIpInIp) {
    forward_data(std::move(packet));
    return;
  }
  const auto* udp = packet.udp();
  if (udp != nullptr && udp->dst_port == net::ports::kLispControl) {
    if (auto request = packet.payload_as<lisp::MapRequest>()) {
      forward_request(*request);
      return;
    }
    if (auto reply = packet.payload_as<lisp::MapReply>()) {
      relay_reply(*reply);
      return;
    }
  }
  Node::deliver(std::move(packet));
}

void OverlayRouter::forward_request(const lisp::MapRequest& request) {
  const net::Ipv4Address* next = routes_.lookup(request.target_eid());
  if (next == nullptr) {
    ++stats_.no_route;
    return;
  }
  ++stats_.requests_forwarded;
  std::shared_ptr<const lisp::MapRequest> forwarded;
  if (config_.mode == OverlayMode::kCons && request.record_route()) {
    forwarded = request.with_hop(address());
  } else {
    forwarded = std::make_shared<lisp::MapRequest>(request);
  }
  const net::Ipv4Address to = *next;
  sim().schedule(config_.processing_delay, [this, to, forwarded] {
    send(net::Packet::udp(address(), to, net::ports::kLispControl,
                          net::ports::kLispControl, forwarded));
  });
}

void OverlayRouter::relay_reply(const lisp::MapReply& reply) {
  if (reply.path().empty()) {
    // Nothing left to retrace: misdirected reply.
    ++stats_.no_route;
    return;
  }
  ++stats_.replies_relayed;
  const net::Ipv4Address next = reply.path().back();
  auto popped = reply.with_path_popped();
  sim().schedule(config_.processing_delay, [this, next, popped] {
    send(net::Packet::udp(address(), next, net::ports::kLispControl,
                          net::ports::kLispControl, popped));
  });
}

void OverlayRouter::forward_data(net::Packet packet) {
  // Strip the incoming overlay hop and re-tunnel toward the next one.
  packet.pop_outer();
  const net::Ipv4Address* next = routes_.lookup(packet.inner_ip().dst);
  if (next == nullptr) {
    ++stats_.no_route;
    network().drop(sim::DropReason::kNoRoute, packet);
    return;
  }
  ++stats_.data_forwarded;
  net::Ipv4Header outer;
  outer.src = address();
  outer.dst = *next;
  outer.protocol = net::IpProto::kIpInIp;
  packet.push_outer(outer);
  sim().schedule(config_.processing_delay,
                 [this, p = std::move(packet)]() mutable { send(std::move(p)); });
}

}  // namespace lispcp::mapping
