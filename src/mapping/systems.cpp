#include "mapping/systems.hpp"

#include <algorithm>

#include "core/control_plane.hpp"
#include "core/pce.hpp"
#include "irc/irc_engine.hpp"
#include "lisp/resolution.hpp"
#include "lisp/tunnel_router.hpp"
#include "topo/address_plan.hpp"
#include "topo/internet.hpp"

namespace lispcp::mapping {

// ---------------------------------------------------------------------------
// PlainIpSystem
// ---------------------------------------------------------------------------

void PlainIpSystem::configure_xtr(const topo::InternetSpec& spec,
                                  lisp::XtrConfig& config) {
  (void)spec;
  // The pre-LISP Internet: border routers forward natively.
  config.itr_role = false;
  config.etr_role = false;
  config.eid_space.clear();
}

void PlainIpSystem::build(topo::Internet& internet) { (void)internet; }

void PlainIpSystem::register_site(topo::Internet& internet,
                                  topo::DomainHandle& dom,
                                  const std::vector<lisp::MapEntry>& entries) {
  (void)entries;
  // EIDs are globally routable (this is exactly what LISP exists to end).
  internet.network().add_route(internet.core_router().id(), dom.eid_prefix,
                               dom.xtrs.front()->id());
}

// ---------------------------------------------------------------------------
// NoMappingSystem
// ---------------------------------------------------------------------------

void NoMappingSystem::build(topo::Internet& internet) { (void)internet; }

// ---------------------------------------------------------------------------
// AltOverlaySystem
// ---------------------------------------------------------------------------

void AltOverlaySystem::build(topo::Internet& internet) {
  const auto& spec = internet.spec();
  auto& network = internet.network();
  sim::Node& core = internet.core_router();

  // Aggregation tree bottom-up: leaves cover `overlay_fanout` domains each,
  // every level above covers `overlay_fanout` children.
  const std::size_t fanout = std::max<std::size_t>(2, spec.overlay_fanout);
  sim::LinkConfig attach;
  attach.delay = spec.overlay_link_delay;
  attach.bandwidth_bps = spec.core_bandwidth_bps;

  OverlayRouterConfig orcfg;
  orcfg.mode = mode_;

  std::size_t next_index = 0;
  auto make_router = [&]() -> OverlayRouter* {
    const auto addr = topo::overlay_addr(next_index);
    auto& router = network.make<OverlayRouter>(
        "ovl" + std::to_string(next_index), addr, orcfg);
    ++next_index;
    network.connect(router.id(), core.id(), attach);
    network.add_host_route(core.id(), addr, router.id());
    network.add_route(router.id(), net::Ipv4Prefix(), core.id());
    routers_.push_back(&router);
    internet.mapping_infra().overlay_routers.push_back(&router);
    return &router;
  };

  // Level 0: leaves.  covered[i] = domains leaf i is responsible for.
  struct Level {
    std::vector<OverlayRouter*> routers;
    std::vector<std::vector<std::size_t>> covered;  // domain indices
  };
  Level level;
  leaf_of_domain_.resize(spec.domains);
  for (std::size_t d = 0; d < spec.domains; d += fanout) {
    OverlayRouter* leaf = make_router();
    std::vector<std::size_t> covered;
    for (std::size_t k = d; k < std::min(d + fanout, spec.domains); ++k) {
      covered.push_back(k);
      // Leaf routes every registered (possibly de-aggregated) prefix
      // straight to the site's ETR.
      for (const auto& prefix : internet.site_prefixes(k)) {
        leaf->add_overlay_route(prefix, topo::xtr_rloc(k, 0));
      }
      leaf_of_domain_[k] = leaf->address();
    }
    level.routers.push_back(leaf);
    level.covered.push_back(std::move(covered));
  }

  // Build parents until a single root remains.
  while (level.routers.size() > 1) {
    Level parent_level;
    for (std::size_t c = 0; c < level.routers.size(); c += fanout) {
      OverlayRouter* parent = make_router();
      std::vector<std::size_t> covered;
      for (std::size_t k = c; k < std::min(c + fanout, level.routers.size());
           ++k) {
        OverlayRouter* child = level.routers[k];
        child->set_parent(parent->address());
        for (std::size_t d : level.covered[k]) {
          parent->add_overlay_route(internet.domain(d).eid_prefix,
                                    child->address());
          covered.push_back(d);
        }
      }
      parent_level.routers.push_back(parent);
      parent_level.covered.push_back(std::move(covered));
    }
    level = std::move(parent_level);
  }
}

void AltOverlaySystem::attach_itr(topo::Internet& internet,
                                  topo::DomainHandle& dom,
                                  lisp::TunnelRouter& itr) {
  (void)internet;
  itr.set_resolution_strategy(std::make_unique<lisp::UnicastPullResolution>(
      leaf_of_domain_.at(dom.index),
      /*record_route=*/mode_ == OverlayMode::kCons));
}

MappingSystemStats AltOverlaySystem::stats() const {
  MappingSystemStats out;
  out.infrastructure_nodes = routers_.size();
  for (const auto* router : routers_) {
    out.database_records += router->route_count();
    out.control_messages += router->stats().requests_forwarded +
                            router->stats().replies_relayed;
  }
  return out;
}

// ---------------------------------------------------------------------------
// NerdSystem
// ---------------------------------------------------------------------------

void NerdSystem::configure_xtr(const topo::InternetSpec& spec,
                               lisp::XtrConfig& config) {
  (void)spec;
  // NERD is a *database*, not a cache: consumers must hold the full mapping
  // set, so capacity eviction would break the protocol's premise (that is
  // precisely its memory-footprint drawback).
  config.cache_capacity = 0;
}

void NerdSystem::build(topo::Internet& internet) {
  const auto& spec = internet.spec();
  auto& network = internet.network();
  sim::Node& core = internet.core_router();

  NerdConfig ncfg;
  ncfg.push_interval = spec.nerd_push_interval;
  authority_ = &network.make<NerdAuthority>("nerd", topo::kNerdAddr, ncfg);
  internet.mapping_infra().nerd = authority_;

  sim::LinkConfig attach;
  attach.delay = spec.dns_infra_delay;
  attach.bandwidth_bps = spec.core_bandwidth_bps;
  network.connect(authority_->id(), core.id(), attach);
  network.add_host_route(core.id(), topo::kNerdAddr, authority_->id());
  network.add_route(authority_->id(), net::Ipv4Prefix(), core.id());
}

void NerdSystem::register_site(topo::Internet& internet,
                               topo::DomainHandle& dom,
                               const std::vector<lisp::MapEntry>& entries) {
  (void)internet;
  (void)entries;
  for (auto* xtr : dom.xtrs) authority_->subscribe(xtr->rloc());
}

void NerdSystem::activate(topo::Internet& internet) {
  // Database records do not age out between refreshes; only explicit
  // updates replace them.  (Cache-style TTLs would silently re-introduce
  // the miss behaviour NERD exists to eliminate.)
  auto database = internet.registry().all();
  for (auto& entry : database) {
    entry.ttl_seconds = 30 * 24 * 3600;
  }
  authority_->load_database(std::move(database));
  authority_->push_full();
  authority_->start();
}

MappingSystemStats NerdSystem::stats() const {
  MappingSystemStats out;
  out.infrastructure_nodes = 1;
  out.database_records = authority_->database_size();
  out.control_messages =
      authority_->stats().entries_pushed + authority_->stats().updates_submitted;
  return out;
}

// ---------------------------------------------------------------------------
// MapServerSystem
// ---------------------------------------------------------------------------

void MapServerSystem::build(topo::Internet& internet) {
  const auto& spec = internet.spec();
  auto& network = internet.network();
  sim::Node& core = internet.core_router();

  const std::size_t count = std::max<std::size_t>(1, spec.map_server_count);
  sim::LinkConfig attach;
  attach.delay = spec.dns_infra_delay;
  attach.bandwidth_bps = spec.core_bandwidth_bps;

  // Map-Servers and (colocated, one per MS) Map-Resolvers on the core.
  MapServerConfig mscfg;
  mscfg.proxy_reply = spec.ms_proxy_reply;
  for (std::size_t i = 0; i < count; ++i) {
    auto& ms = network.make<MapServer>("ms" + std::to_string(i),
                                       topo::map_server_addr(i), mscfg);
    network.connect(ms.id(), core.id(), attach);
    network.add_host_route(core.id(), ms.address(), ms.id());
    network.add_route(ms.id(), net::Ipv4Prefix(), core.id());
    servers_.push_back(&ms);
    internet.mapping_infra().map_servers.push_back(&ms);

    auto& mr = network.make<MapResolver>("mr" + std::to_string(i),
                                         topo::map_resolver_addr(i));
    network.connect(mr.id(), core.id(), attach);
    network.add_host_route(core.id(), mr.address(), mr.id());
    network.add_route(mr.id(), net::Ipv4Prefix(), core.id());
    resolvers_.push_back(&mr);
    internet.mapping_infra().map_resolvers.push_back(&mr);
  }

  // Every resolver knows which Map-Server each site registers with (the
  // MR-to-MS rendezvous that deployment runs over the ALT; see DESIGN.md).
  for (std::size_t d = 0; d < spec.domains; ++d) {
    const auto ms_addr = topo::map_server_addr(d % count);
    for (const auto& prefix : internet.site_prefixes(d)) {
      for (auto* mr : resolvers_) {
        mr->add_map_server_route(prefix, ms_addr);
      }
    }
  }
}

void MapServerSystem::register_site(topo::Internet& internet,
                                    topo::DomainHandle& dom,
                                    const std::vector<lisp::MapEntry>& entries) {
  // Each domain's first border router runs the registration loop.
  RegistrarConfig rcfg;
  rcfg.ttl_seconds = internet.spec().ms_registration_ttl_seconds;
  rcfg.refresh_interval = internet.spec().ms_refresh_interval;
  auto registrar = std::make_unique<EtrRegistrar>(
      *dom.xtrs.front(), topo::map_server_addr(dom.index % servers_.size()),
      entries, rcfg);
  registrar->start();
  internet.mapping_infra().registrars.push_back(std::move(registrar));
}

void MapServerSystem::attach_itr(topo::Internet& internet,
                                 topo::DomainHandle& dom,
                                 lisp::TunnelRouter& itr) {
  (void)internet;
  // ITRs use their shard's resolver as the Map-Request target.
  itr.set_resolution_strategy(std::make_unique<lisp::UnicastPullResolution>(
      topo::map_resolver_addr(dom.index % resolvers_.size())));
}

MappingSystemStats MapServerSystem::stats() const {
  MappingSystemStats out;
  out.infrastructure_nodes = servers_.size() + resolvers_.size();
  for (const auto* ms : servers_) {
    out.database_records += ms->registration_count();
    out.control_messages +=
        ms->stats().registers_received + ms->stats().requests_received;
  }
  for (const auto* mr : resolvers_) {
    out.control_messages += mr->stats().requests_received;
  }
  return out;
}

// ---------------------------------------------------------------------------
// PceSystem
// ---------------------------------------------------------------------------

void PceSystem::attach_domain_dns(topo::Internet& internet,
                                  topo::DomainHandle& dom) {
  const auto& spec = internet.spec();
  auto& network = internet.network();
  sim::Node& r = *dom.internal_router;
  const std::size_t d = dom.index;
  const auto resolver_addr = dom.resolver->address();
  const auto auth_addr = dom.authoritative->address();

  sim::LinkConfig dns_attach;
  dns_attach.delay = sim::SimDuration::micros(50);
  dns_attach.bandwidth_bps = spec.lan_bandwidth_bps;

  // "The PCEs are in the data path of the DNS servers" (Fig. 1): the PCE
  // fronts both the caching resolver and the authoritative server.
  core::PceConfig pcfg;
  pcfg.resolver_address = resolver_addr;
  pcfg.authoritative_address = auth_addr;
  // The registered (possibly de-aggregated) prefixes: Step 6 advertises
  // the covering mapping at registration granularity.
  pcfg.local_eid_prefixes = internet.site_prefixes(d);
  pcfg.snoop_enabled = spec.pce_snoop;
  pcfg.on_demand_pcep = spec.pce_on_demand;
  pcfg.push_all_itrs = spec.pce_push_all_itrs;
  dom.pce = &network.make<core::Pce>(dom.name + "-pce", topo::domain_infra(d, 1),
                                     pcfg);
  pces_.push_back(dom.pce);
  network.connect(r.id(), dom.pce->id(), dns_attach);
  network.connect(dom.pce->id(), dom.resolver->id(), dns_attach);
  network.connect(dom.pce->id(), dom.authoritative->id(), dns_attach);

  network.add_route(r.id(), topo::domain_infra_prefix(d), dom.pce->id());
  network.add_host_route(dom.pce->id(), resolver_addr, dom.resolver->id());
  network.add_host_route(dom.pce->id(), auth_addr, dom.authoritative->id());
  network.add_route(dom.pce->id(), net::Ipv4Prefix(), r.id());
  network.add_route(dom.resolver->id(), net::Ipv4Prefix(), dom.pce->id());
  network.add_route(dom.authoritative->id(), net::Ipv4Prefix(), dom.pce->id());
}

void PceSystem::build(topo::Internet& internet) { (void)internet; }

void PceSystem::activate(topo::Internet& internet) {
  const auto& spec = internet.spec();
  for (auto& dom : internet.domains()) {
    std::vector<irc::BorderLink> border;
    for (std::size_t j = 0; j < dom.xtrs.size(); ++j) {
      irc::BorderLink bl;
      bl.rloc = dom.xtrs[j]->rloc();
      bl.link = dom.provider_links[j];
      bl.xtr = dom.xtrs[j]->id();
      bl.capacity_bps = spec.access_bandwidth_bps;
      border.push_back(bl);
    }
    irc::IrcConfig icfg;
    icfg.policy = spec.te_policy;
    dom.irc = std::make_unique<irc::IrcEngine>(internet.network(),
                                               std::move(border), icfg);

    core::ControlPlaneConfig ccfg;
    ccfg.multicast_reverse = spec.multicast_reverse;
    dom.control_plane = std::make_unique<core::PceControlPlane>(
        *dom.pce, *dom.resolver, dom.xtrs, *dom.irc, ccfg);
    dom.control_plane->activate();
  }

  // A5: PCE discovery substitute — every PCE learns which peer PCE is
  // authoritative for each remote EID prefix (RFC 5088/5089-style discovery
  // flattened into configuration; see DESIGN.md).
  if (spec.pce_on_demand) {
    for (auto& dom : internet.domains()) {
      for (const auto& other : internet.domains()) {
        if (other.index == dom.index) continue;
        for (const auto& prefix : internet.site_prefixes(other.index)) {
          dom.pce->add_pce_directory_entry(prefix, other.pce->address());
        }
      }
    }
  }
}

MappingSystemStats PceSystem::stats() const {
  MappingSystemStats out;
  out.infrastructure_nodes = pces_.size();
  for (const auto* pce : pces_) {
    out.database_records += pce->database_size();
    out.control_messages += pce->stats().dns_queries_observed +
                            pce->stats().tuples_pushed +
                            pce->stats().pcep_requests;
  }
  return out;
}

}  // namespace lispcp::mapping
