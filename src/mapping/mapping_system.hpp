// mapping_system.hpp — the pluggable mapping-system seam.
//
// The paper's contribution is a comparison across mapping control planes;
// this interface makes each one a first-class, registered component instead
// of a set of boolean flags wired through the topology builder.  One
// MappingSystem instance owns everything a control plane adds to the
// emulated Internet:
//
//   configure_xtr     — per-border-router knobs (roles, cache discipline)
//   attach_domain_dns — the domain's DNS attachment (the PCE interposes here)
//   build             — global infrastructure (overlay trees, servers)
//   register_site     — one site's mappings enter the system
//   attach_itr        — installs the ITR's lisp::ResolutionStrategy
//   activate          — post-registration start-up (pushes, control planes)
//   stats             — uniform footprint/traffic summary
//
// topo::Internet::build() drives this lifecycle for whatever kind the spec
// selects; it neither knows nor branches on which system is present.
// Systems are created through the MappingSystemFactory registry, so adding
// a control plane is a registration —
// MappingSystemFactory::instance().register_kind(...) — not a surgery
// across topo/, lisp/ and every bench.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "lisp/map_entry.hpp"

namespace lispcp::lisp {
class TunnelRouter;
struct XtrConfig;
}  // namespace lispcp::lisp

namespace lispcp::topo {
class Internet;
struct InternetSpec;
struct DomainHandle;
}  // namespace lispcp::topo

namespace lispcp::mapping {

/// The control planes the experiments compare.  Registered kinds are
/// enumerable through the factory; benches iterate the registry instead of
/// hard-coding this list.
enum class ControlPlaneKind {
  kPlainIp,      ///< pre-LISP Internet: EIDs globally routed, no tunnels
  kNoMapping,    ///< LISP encapsulation with no mapping distribution at all
  kAltDrop,      ///< LISP+ALT, vanilla drop-on-miss
  kAltQueue,     ///< LISP+ALT, queue-at-ITR palliative
  kAltForward,   ///< LISP+ALT, data-over-control-plane palliative
  kCons,         ///< LISP-CONS (replies relayed down the tree), drop-on-miss
  kNerd,         ///< NERD push database
  kMapServer,    ///< Map-Server / Map-Resolver (draft-lisp-ms)
  kMsReplicated, ///< sharded MS + replicated MR tier, nearest-replica pull
  kPce,          ///< the paper's PCE-based control plane
};

[[nodiscard]] const char* to_string(ControlPlaneKind kind);

/// Uniform footprint summary every system reports (the state/traffic cost
/// axis of the paper's comparison).
struct MappingSystemStats {
  std::size_t infrastructure_nodes = 0;  ///< dedicated nodes this system built
  std::size_t database_records = 0;      ///< mapping state it holds server-side
  std::uint64_t control_messages = 0;    ///< control-plane messages handled
};

class MappingSystem {
 public:
  virtual ~MappingSystem() = default;

  [[nodiscard]] virtual ControlPlaneKind kind() const noexcept = 0;
  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Tunes one border router's configuration before it is instantiated
  /// (e.g. plain-IP disables the LISP roles; NERD lifts the cache cap so
  /// the pushed database is never evicted).
  virtual void configure_xtr(const topo::InternetSpec& spec,
                             lisp::XtrConfig& config);

  /// Wires the domain's resolver and authoritative server into the domain.
  /// Default: both attach directly to the internal router.  The PCE system
  /// overrides this to sit in the DNS data path (Fig. 1).
  virtual void attach_domain_dns(topo::Internet& internet,
                                 topo::DomainHandle& dom);

  /// Builds the system's global infrastructure.  Runs after every domain
  /// exists and the ground-truth registry is populated.
  virtual void build(topo::Internet& internet) = 0;

  /// Feeds one site's registered mappings into the system (overlay routes,
  /// database records, Map-Server registrations...).
  virtual void register_site(topo::Internet& internet, topo::DomainHandle& dom,
                             const std::vector<lisp::MapEntry>& entries);

  /// Installs the miss-resolution strategy into one of `dom`'s ITRs.
  virtual void attach_itr(topo::Internet& internet, topo::DomainHandle& dom,
                          lisp::TunnelRouter& itr);

  /// Post-registration start-up: initial pushes, periodic refresh timers,
  /// per-domain control-plane activation.
  virtual void activate(topo::Internet& internet);

  [[nodiscard]] virtual MappingSystemStats stats() const;
};

/// Registry of mapping-system kinds.  A registration carries everything the
/// rest of the codebase needs to treat the kind uniformly: its display
/// name, the spec defaults its preset applies, whether comparative benches
/// include it, and the constructor.
class MappingSystemFactory {
 public:
  struct Registration {
    ControlPlaneKind kind{};
    const char* name = "?";
    /// Included when benches enumerate "the compared control planes"
    /// (baselines like plain-IP register with false).
    bool in_comparison_set = true;
    /// Preset spec defaults for this kind (miss policy etc.); may be null.
    std::function<void(topo::InternetSpec&)> apply_preset;
    std::function<std::unique_ptr<MappingSystem>(const topo::InternetSpec&)>
        create;
  };

  [[nodiscard]] static MappingSystemFactory& instance();

  /// Registers (or replaces) a kind.
  void register_kind(Registration registration);

  [[nodiscard]] bool contains(ControlPlaneKind kind) const noexcept;
  [[nodiscard]] const char* name(ControlPlaneKind kind) const;
  /// Applies the kind's preset defaults onto `spec` (and sets spec.kind).
  void apply_preset(ControlPlaneKind kind, topo::InternetSpec& spec) const;
  /// Instantiates the system selected by `spec.kind`.
  [[nodiscard]] std::unique_ptr<MappingSystem> create(
      const topo::InternetSpec& spec) const;

  /// Every registered kind, in registration order.
  [[nodiscard]] std::vector<ControlPlaneKind> kinds() const;
  /// The kinds comparative benches enumerate.
  [[nodiscard]] std::vector<ControlPlaneKind> comparison_kinds() const;
  /// Reverse lookup by registered display name ("lisp-pce" -> kPce); the
  /// seam CLI flags and sweep filters resolve user-supplied names through.
  [[nodiscard]] std::optional<ControlPlaneKind> find_kind(
      std::string_view name) const noexcept;

 private:
  MappingSystemFactory() = default;

  const Registration* find(ControlPlaneKind kind) const noexcept;

  std::vector<Registration> registrations_;
};

}  // namespace lispcp::mapping
