#include "mapping/mapping_system.hpp"

#include <stdexcept>
#include <string>

#include "lisp/resolution.hpp"
#include "lisp/tunnel_router.hpp"
#include "mapping/replicated_resolver.hpp"
#include "mapping/systems.hpp"
#include "topo/internet.hpp"

namespace lispcp::mapping {

const char* to_string(ControlPlaneKind kind) {
  return MappingSystemFactory::instance().name(kind);
}

// ---------------------------------------------------------------------------
// MappingSystem default lifecycle
// ---------------------------------------------------------------------------

void MappingSystem::configure_xtr(const topo::InternetSpec& spec,
                                  lisp::XtrConfig& config) {
  (void)spec;
  (void)config;
}

void MappingSystem::attach_domain_dns(topo::Internet& internet,
                                      topo::DomainHandle& dom) {
  // Default attachment: resolver and authoritative server hang directly off
  // the internal router.
  auto& network = internet.network();
  sim::Node& r = *dom.internal_router;

  sim::LinkConfig dns_attach;
  dns_attach.delay = sim::SimDuration::micros(50);
  dns_attach.bandwidth_bps = internet.spec().lan_bandwidth_bps;

  network.connect(r.id(), dom.resolver->id(), dns_attach);
  network.connect(r.id(), dom.authoritative->id(), dns_attach);
  network.add_host_route(r.id(), dom.resolver->address(), dom.resolver->id());
  network.add_host_route(r.id(), dom.authoritative->address(),
                         dom.authoritative->id());
  network.add_route(dom.resolver->id(), net::Ipv4Prefix(), r.id());
  network.add_route(dom.authoritative->id(), net::Ipv4Prefix(), r.id());
}

void MappingSystem::register_site(topo::Internet& internet,
                                  topo::DomainHandle& dom,
                                  const std::vector<lisp::MapEntry>& entries) {
  (void)internet;
  (void)dom;
  (void)entries;
}

void MappingSystem::attach_itr(topo::Internet& internet,
                               topo::DomainHandle& dom,
                               lisp::TunnelRouter& itr) {
  (void)internet;
  (void)dom;
  // Push systems (and the no-system baselines) have no on-demand path.
  itr.set_resolution_strategy(std::make_unique<lisp::PushOnlyResolution>());
}

void MappingSystem::activate(topo::Internet& internet) { (void)internet; }

MappingSystemStats MappingSystem::stats() const { return {}; }

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

namespace {

void register_builtins(MappingSystemFactory& factory) {
  using Registration = MappingSystemFactory::Registration;
  using Spec = topo::InternetSpec;

  auto simple = [](auto make_system) {
    return [make_system](const Spec& spec) -> std::unique_ptr<MappingSystem> {
      (void)spec;
      return make_system();
    };
  };

  factory.register_kind(Registration{
      ControlPlaneKind::kPlainIp, "plain-ip", /*in_comparison_set=*/false,
      nullptr, simple([] { return std::make_unique<PlainIpSystem>(); })});
  factory.register_kind(Registration{
      ControlPlaneKind::kNoMapping, "lisp-none", /*in_comparison_set=*/false,
      nullptr, simple([] { return std::make_unique<NoMappingSystem>(); })});
  factory.register_kind(Registration{
      ControlPlaneKind::kAltDrop, "lisp-alt(drop)", true,
      [](Spec& spec) { spec.miss_policy = lisp::MissPolicy::kDrop; },
      simple([] {
        return std::make_unique<AltOverlaySystem>(ControlPlaneKind::kAltDrop,
                                                  OverlayMode::kAlt);
      })});
  factory.register_kind(Registration{
      ControlPlaneKind::kAltQueue, "lisp-alt(queue)", true,
      [](Spec& spec) { spec.miss_policy = lisp::MissPolicy::kQueue; },
      simple([] {
        return std::make_unique<AltOverlaySystem>(ControlPlaneKind::kAltQueue,
                                                  OverlayMode::kAlt);
      })});
  factory.register_kind(Registration{
      ControlPlaneKind::kAltForward, "lisp-alt(cp-fwd)", true,
      [](Spec& spec) { spec.miss_policy = lisp::MissPolicy::kForwardOverlay; },
      simple([] {
        return std::make_unique<AltOverlaySystem>(ControlPlaneKind::kAltForward,
                                                  OverlayMode::kAlt);
      })});
  factory.register_kind(Registration{
      ControlPlaneKind::kCons, "lisp-cons", true,
      [](Spec& spec) { spec.miss_policy = lisp::MissPolicy::kDrop; },
      simple([] {
        return std::make_unique<AltOverlaySystem>(ControlPlaneKind::kCons,
                                                  OverlayMode::kCons);
      })});
  factory.register_kind(Registration{
      ControlPlaneKind::kNerd, "lisp-nerd", true, nullptr,
      simple([] { return std::make_unique<NerdSystem>(); })});
  factory.register_kind(Registration{
      ControlPlaneKind::kMapServer, "lisp-ms", true,
      [](Spec& spec) { spec.miss_policy = lisp::MissPolicy::kDrop; },
      simple([] { return std::make_unique<MapServerSystem>(); })});
  factory.register_kind(Registration{
      ControlPlaneKind::kMsReplicated, "lisp-ms-repl", true,
      [](Spec& spec) { spec.miss_policy = lisp::MissPolicy::kDrop; },
      simple([] { return std::make_unique<ReplicatedResolverSystem>(); })});
  factory.register_kind(Registration{
      ControlPlaneKind::kPce, "lisp-pce", true, nullptr,
      simple([] { return std::make_unique<PceSystem>(); })});
}

}  // namespace

MappingSystemFactory& MappingSystemFactory::instance() {
  static MappingSystemFactory factory = [] {
    MappingSystemFactory f;
    register_builtins(f);
    return f;
  }();
  return factory;
}

void MappingSystemFactory::register_kind(Registration registration) {
  if (!registration.create) {
    throw std::invalid_argument(
        "MappingSystemFactory::register_kind: null creator");
  }
  for (auto& existing : registrations_) {
    if (existing.kind == registration.kind) {
      existing = std::move(registration);
      return;
    }
  }
  registrations_.push_back(std::move(registration));
}

const MappingSystemFactory::Registration* MappingSystemFactory::find(
    ControlPlaneKind kind) const noexcept {
  for (const auto& registration : registrations_) {
    if (registration.kind == kind) return &registration;
  }
  return nullptr;
}

bool MappingSystemFactory::contains(ControlPlaneKind kind) const noexcept {
  return find(kind) != nullptr;
}

const char* MappingSystemFactory::name(ControlPlaneKind kind) const {
  const auto* registration = find(kind);
  return registration == nullptr ? "?" : registration->name;
}

void MappingSystemFactory::apply_preset(ControlPlaneKind kind,
                                        topo::InternetSpec& spec) const {
  const auto* registration = find(kind);
  if (registration == nullptr) {
    throw std::invalid_argument(
        "MappingSystemFactory::apply_preset: unregistered control plane kind " +
        std::to_string(static_cast<int>(kind)));
  }
  spec.kind = kind;
  if (registration->apply_preset) registration->apply_preset(spec);
}

std::unique_ptr<MappingSystem> MappingSystemFactory::create(
    const topo::InternetSpec& spec) const {
  const auto* registration = find(spec.kind);
  if (registration == nullptr) {
    throw std::invalid_argument(
        "MappingSystemFactory::create: unregistered control plane kind " +
        std::to_string(static_cast<int>(spec.kind)));
  }
  return registration->create(spec);
}

std::vector<ControlPlaneKind> MappingSystemFactory::kinds() const {
  std::vector<ControlPlaneKind> out;
  out.reserve(registrations_.size());
  for (const auto& registration : registrations_) out.push_back(registration.kind);
  return out;
}

std::vector<ControlPlaneKind> MappingSystemFactory::comparison_kinds() const {
  std::vector<ControlPlaneKind> out;
  for (const auto& registration : registrations_) {
    if (registration.in_comparison_set) out.push_back(registration.kind);
  }
  return out;
}

std::optional<ControlPlaneKind> MappingSystemFactory::find_kind(
    std::string_view name) const noexcept {
  for (const auto& registration : registrations_) {
    if (name == registration.name) return registration.kind;
  }
  return std::nullopt;
}

}  // namespace lispcp::mapping
