#include "workload/generator.hpp"

#include <stdexcept>

namespace lispcp::workload {

TrafficGenerator::TrafficGenerator(sim::Simulator& sim, std::vector<Host*> clients,
                                   std::vector<dns::DomainName> destinations,
                                   TrafficConfig config, sim::Rng rng)
    : sim_(sim),
      clients_(std::move(clients)),
      destinations_(std::move(destinations)),
      config_(config),
      rng_(rng),
      zipf_(destinations_.empty() ? 1 : destinations_.size(), config.zipf_alpha) {
  if (clients_.empty()) {
    throw std::invalid_argument("TrafficGenerator: no client hosts");
  }
  if (destinations_.empty()) {
    throw std::invalid_argument("TrafficGenerator: no destinations");
  }
  if (config_.sessions_per_second <= 0.0) {
    throw std::invalid_argument("TrafficGenerator: rate must be positive");
  }
}

void TrafficGenerator::start() {
  end_time_ = sim_.now() + config_.duration;
  const double mean_gap = 1.0 / config_.sessions_per_second;
  sim_.schedule(sim::SimDuration::seconds_f(rng_.exponential(mean_gap)),
                [this] { arrival(); });
}

void TrafficGenerator::arrival() {
  if (sim_.now() >= end_time_) return;
  if (config_.max_sessions != 0 && launched_ >= config_.max_sessions) return;

  Host* client = clients_[rng_.uniform_int(0, clients_.size() - 1)];
  const auto& destination = destinations_[zipf_(rng_)];
  client->start_session(destination);
  ++launched_;

  const double mean_gap = 1.0 / config_.sessions_per_second;
  sim_.schedule(sim::SimDuration::seconds_f(rng_.exponential(mean_gap)),
                [this] { arrival(); });
}

}  // namespace lispcp::workload
