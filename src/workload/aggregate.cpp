#include "workload/aggregate.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>
#include <utility>

namespace lispcp::workload {

FlowAggregateEngine::FlowAggregateEngine(AggregateWorld world,
                                         TrafficConfig config, sim::Rng rng)
    : world_(std::move(world)),
      config_(config),
      rng_(rng),
      zipf_(world_.destinations.empty() ? 1 : world_.destinations.size(),
            config.zipf_alpha),
      epoch_len_(config.aggregate_epoch.ns() > 0
                     ? config.aggregate_epoch
                     : sim::SimDuration::millis(500)) {
  if (world_.sim == nullptr || world_.metrics == nullptr) {
    throw std::invalid_argument("FlowAggregateEngine: sim/metrics required");
  }
  if (world_.destinations.empty()) {
    throw std::invalid_argument("FlowAggregateEngine: no destinations");
  }
  for (const auto& dest : world_.destinations) {
    if (dest.peer >= world_.peers.size()) {
      throw std::invalid_argument("FlowAggregateEngine: bad peer index");
    }
  }
  dest_states_.resize(world_.destinations.size());
  auth_referral_.resize(world_.peers.size());
  epoch_counts_.assign(world_.destinations.size(), 0);
  touched_.reserve(std::min<std::size_t>(world_.destinations.size(), 4096));
}

void FlowAggregateEngine::start() {
  end_time_ = world_.sim->now() + config_.duration;
  world_.sim->schedule(sim::SimDuration{}, [this] { epoch(); });
}

void FlowAggregateEngine::epoch() {
  const auto now = world_.sim->now();
  if (now >= end_time_) return;
  auto window = epoch_len_;
  if (now + window > end_time_) window = end_time_ - now;

  // Poisson arrival count over the epoch window — same process the
  // per-packet generator realizes with exponential inter-arrival gaps.
  const double lambda = config_.sessions_per_second * window.sec();
  std::uint64_t n =
      lambda > 0.0
          ? std::poisson_distribution<std::uint64_t>(lambda)(rng_.engine())
          : 0;
  if (config_.max_sessions > 0 && launched_ + n > config_.max_sessions) {
    n = config_.max_sessions - launched_;
  }
  launched_ += n;
  if (n > 0) {
    world_.metrics->aggregate_sessions_started(n);
    // Bucket the epoch's flows over destinations by Zipf popularity;
    // first-touch order keeps per-destination processing deterministic.
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto rank = static_cast<std::uint32_t>(zipf_(rng_));
      if (epoch_counts_[rank]++ == 0) touched_.push_back(rank);
    }
    for (const auto rank : touched_) {
      const auto flows = std::exchange(epoch_counts_[rank], 0);
      process(rank, flows);
    }
    touched_.clear();
  }
  world_.sim->schedule(window, [this] { epoch(); });
}

void FlowAggregateEngine::process(std::size_t rank, std::uint64_t flows) {
  if (flows == 0) return;
  auto& state = dest_states_[rank];
  const auto now = world_.sim->now();
  const auto& dest = world_.destinations[rank];

  // DNS: the first flow of a cold window pays the iterative legs; arrivals
  // while that query is in flight coalesce at the resolver and pay the mean
  // residual; everything after hits the positive cache until the A record
  // (cached when the answer arrives) expires.
  Batch batch{now, flows, 0, sim::SimDuration{}, 0, sim::SimDuration{}, now};
  if (state.dns_ready_at > now) {
    // A previous epoch's cold query is still in flight (latency exceeded
    // the epoch): this epoch's early arrivals coalesce onto it too.
    const auto rem = state.dns_ready_at - now;
    const double frac =
        epoch_len_.ns() > 0 ? std::clamp(rem / epoch_len_, 0.0, 1.0) : 1.0;
    batch.dns_waiters = round_with_residue(
        state.dns_wait_residue, frac * static_cast<double>(flows), flows);
    batch.t_dns_wait = rem - std::min(rem, epoch_len_) / 2;
    batch.itr_at = state.dns_ready_at;
  } else if (state.dns_positive_until <= now) {
    // The trigger is the epoch's first arrival for this name, landing the
    // mean of the first order statistic (window/(flows+1)) into the epoch.
    // Anchoring the coalesce window there, not at the epoch boundary, keeps
    // the expected waiter count at rate x latency — the window never
    // contains the gap that precedes a renewal process's first arrival.
    const auto t0 = epoch_len_ / static_cast<std::int64_t>(flows + 1);
    batch.cold_dns = 1;
    batch.t_dns_cold = cold_dns_latency(rank);
    state.dns_ready_at = now + t0 + batch.t_dns_cold;
    state.dns_positive_until =
        state.dns_ready_at +
        sim::SimDuration::seconds(world_.dns_record_ttl_seconds);
    const auto span = epoch_len_ - t0;  // epoch remainder after the trigger
    const double frac =
        span.ns() > 0 ? std::clamp(batch.t_dns_cold / span, 0.0, 1.0) : 1.0;
    batch.dns_waiters = round_with_residue(
        state.dns_wait_residue, frac * static_cast<double>(flows - 1),
        flows - 1);
    batch.t_dns_wait =
        batch.t_dns_cold - std::min(batch.t_dns_cold, span) / 2;
    batch.itr_at = state.dns_ready_at;
  }

  if (world_.itr == nullptr) {  // plain-IP baseline: nothing can miss
    complete(rank, batch, sim::SimDuration{}, false);
    return;
  }

  if (world_.pce_push) {
    // Step-6 snooping: the PCE observes every DNS query (warm or cold — the
    // query observer fires before the resolver cache check) and pushes the
    // destination site's current mapping, so data packets never miss.
    const auto* peer_irc = world_.peers[dest.peer].irc;
    if (peer_irc != nullptr) {
      world_.itr->install_mapping(peer_irc->site_mapping(dest.registered_prefix));
      lisp::AggregateCounts pushes;
      pushes.entry_pushes_received = flows;
      world_.itr->aggregate_account(pushes);
    }
  }

  if (state.resolving) {  // join the in-flight resolution episode
    state.backlog.push_back(batch);
    return;
  }

  const lisp::MapEntry* entry = world_.itr->aggregate_lookup(dest.eid, flows);
  if (entry != nullptr && entry->select_rloc(0).has_value()) {
    complete(rank, batch, sim::SimDuration{}, false);
    return;
  }

  // Miss: the whole batch backs up behind one resolution episode driven
  // through the real control plane (Map-Request / overlay / timer events).
  // The episode starts when the batch's first SYN reaches the ITR — after
  // the cold DNS answer lands — so the resolution window and the policy
  // timers line up with the modeled arrival timeline.
  state.resolving = true;
  state.backlog.assign(1, batch);
  const auto defer = batch.itr_at - now;
  const auto kickoff = [this, rank, eid = dest.eid] {
    world_.itr->aggregate_resolve(
        eid, [this, rank](bool resolved) { settle(rank, resolved); });
  };
  if (defer.ns() > 0) {
    world_.sim->schedule(defer, kickoff);
  } else {
    kickoff();
  }
}

void FlowAggregateEngine::settle(std::size_t rank, bool resolved) {
  auto& state = dest_states_[rank];
  const auto now = world_.sim->now();
  std::vector<Batch> backlog = std::move(state.backlog);
  state.backlog.clear();
  state.resolving = false;

  if (!resolved) {
    // The episode gave up (retries exhausted, no mapping): every backlogged
    // flow fails — in packet mode their SYN retries would re-trigger the
    // same doomed episode and eventually exhaust max_syn_retries.
    for (const auto& batch : backlog) fail(rank, batch);
    return;
  }

  // The real control-plane episode was kicked off at the first batch's
  // modeled SYN-arrival time (itr_at), so `now` is when the mapping lands
  // on that same timeline.
  const auto t_resolved = now;

  const std::uint64_t cap = world_.queue_capacity_per_eid;
  std::uint64_t queued_so_far = 0;
  bool first = true;
  for (auto& batch : backlog) {
    // The DNS cohort (trigger + coalesced waiters) hits the ITR as one
    // burst at itr_at; the warm arrivals trickle in uniformly over the
    // epoch after it.  Everything landing before the mapping resolved takes
    // the miss-policy penalty.
    const auto waited =
        t_resolved > batch.itr_at ? t_resolved - batch.itr_at : sim::SimDuration{};
    const std::uint64_t cohort =
        std::min(batch.cold_dns + batch.dns_waiters, batch.flows);
    const std::uint64_t warm_flows = batch.flows - cohort;
    const double window_frac =
        epoch_len_.ns() > 0 ? std::clamp(waited / epoch_len_, 0.0, 1.0) : 1.0;
    std::uint64_t affected =
        waited.ns() <= 0
            ? 0
            : cohort + round_with_residue(
                           state.settle_residue,
                           window_frac * static_cast<double>(warm_flows),
                           warm_flows);
    if (first && affected == 0) affected = 1;  // the triggering flow itself
    first = false;

    Batch hit = split_front(batch, affected);
    // `batch` now holds the unaffected remainder (arrived after t_resolved).
    if (batch.flows > 0) {
      complete(rank, batch, sim::SimDuration{}, false);
    }
    if (hit.flows == 0) continue;

    switch (world_.miss_policy) {
      case lisp::MissPolicy::kDrop: {
        // Dropped SYN; the RFC 2988 retransmit (one initial RTO later) hits
        // the now-warm cache.  The dropped SYN is an extra packet the ITR
        // saw but did not encapsulate.
        complete(rank, hit, world_.syn_rto, /*retransmitted=*/true);
        lisp::AggregateCounts extra;
        extra.data_seen = hit.flows;
        extra.miss_dropped = hit.flows;
        world_.itr->aggregate_account(extra);
        break;
      }
      case lisp::MissPolicy::kQueue: {
        const std::uint64_t room = cap > queued_so_far ? cap - queued_so_far : 0;
        const std::uint64_t queued = std::min(hit.flows, room);
        queued_so_far += queued;
        Batch q = split_front(hit, queued);
        if (q.flows > 0) {
          // Residence time: the DNS cohort waits the full gap from its
          // burst arrival to the resolution; the trickled-in warm arrivals
          // wait half their window on average.
          const std::uint64_t q_cohort =
              std::min(q.cold_dns + q.dns_waiters, q.flows);
          const auto warm_delay = waited - std::min(waited, epoch_len_) / 2;
          const auto delay =
              q.flows == 0
                  ? sim::SimDuration{}
                  : (waited * static_cast<std::int64_t>(q_cohort) +
                     warm_delay * static_cast<std::int64_t>(q.flows - q_cohort)) /
                        static_cast<std::int64_t>(q.flows);
          complete(rank, q, delay, /*retransmitted=*/false);
          lisp::AggregateCounts flushed;
          flushed.miss_queued = q.flows;
          flushed.queue_flushed = q.flows;
          world_.itr->aggregate_account(flushed);
          world_.itr->aggregate_queue_delay(delay, q.flows);
        }
        if (hit.flows > 0) {  // overflow beyond the per-EID queue capacity
          complete(rank, hit, world_.syn_rto, /*retransmitted=*/true);
          lisp::AggregateCounts extra;
          extra.data_seen = hit.flows;
          extra.queue_overflow_drops = hit.flows;
          world_.itr->aggregate_account(extra);
        }
        break;
      }
      case lisp::MissPolicy::kForwardOverlay: {
        // The SYN rode the mapping overlay instead of waiting; no penalty
        // beyond the (unmodeled) overlay detour.
        complete(rank, hit, sim::SimDuration{}, /*retransmitted=*/false,
                 /*overlay_syns=*/hit.flows);
        break;
      }
    }
  }
}

FlowAggregateEngine::Batch FlowAggregateEngine::split_front(
    Batch& batch, std::uint64_t take) {
  take = std::min(take, batch.flows);
  Batch front = batch;
  front.flows = take;
  front.cold_dns = std::min(batch.cold_dns, take);
  front.dns_waiters = std::min(batch.dns_waiters, take - front.cold_dns);
  batch.flows -= take;
  batch.cold_dns -= front.cold_dns;
  batch.dns_waiters -= front.dns_waiters;
  return front;
}

void FlowAggregateEngine::complete(std::size_t rank, const Batch& batch,
                                   sim::SimDuration penalty, bool retransmitted,
                                   std::uint64_t overlay_syns) {
  const std::uint64_t flows = batch.flows;
  if (flows == 0) return;
  const auto& dest = world_.destinations[rank];
  const auto& peer = world_.peers[dest.peer];
  const bool lisp = world_.itr != nullptr;
  const auto one_way =
      peer.owd + (lisp ? world_.xtr_crossing_delay : sim::SimDuration{});

  const std::uint64_t cold = std::min(batch.cold_dns, flows);
  const std::uint64_t waiters = std::min(batch.dns_waiters, flows - cold);
  const std::uint64_t warm = flows - cold - waiters;
  const auto book = [&](std::uint64_t n, sim::SimDuration t_dns) {
    if (n == 0) return;
    world_.metrics->aggregate_dns_resolved(n, t_dns);
    world_.metrics->aggregate_connected(n, t_dns + 2 * one_way + penalty,
                                        retransmitted);
    world_.metrics->aggregate_established(n, t_dns + 3 * one_way + penalty);
  };
  book(warm, world_.dns_warm);
  book(cold, batch.t_dns_cold);
  book(waiters, batch.t_dns_wait);
  completed_ += flows;

  const auto fp = world_.wire.forward_packets();
  const auto rp = world_.wire.reverse_packets();

  if (lisp) {
    lisp::AggregateCounts fwd;
    fwd.data_seen = flows * fp;
    fwd.encapsulated = flows * fp - overlay_syns;
    fwd.overlay_data_forwarded = overlay_syns;
    world_.itr->aggregate_account(fwd);
    if (peer.xtr != nullptr) {
      lisp::AggregateCounts rev;
      rev.data_seen = flows * rp;        // responses are outbound at the ETR
      rev.decapsulated = flows * fp;     // the forward burst lands on it
      rev.encapsulated = flows * rp;
      peer.xtr->aggregate_account(rev);
    }
  }

  if (world_.uplinks.empty()) return;

  // Forward bytes leave on the egress uplink (the internal default route).
  const auto& egress = world_.uplinks.front();
  egress.link->account_aggregate(egress.xtr_node, flows * fp,
                                 flows * world_.wire.forward_bytes());

  // Reverse bytes enter on the TE-chosen ingress: per flow via the domain's
  // IRC under the PCE, pinned to the egress RLOC otherwise (gleaning).
  std::uint64_t per_ingress[8] = {0};
  const std::size_t n_up = std::min<std::size_t>(world_.uplinks.size(), 8);
  if (world_.source_irc != nullptr && n_up > 1) {
    for (std::uint64_t i = 0; i < flows; ++i) {
      const auto rloc = world_.source_irc->choose_ingress();
      std::size_t j = 0;
      for (std::size_t k = 0; k < n_up; ++k) {
        if (world_.uplinks[k].rloc == rloc) {
          j = k;
          break;
        }
      }
      ++per_ingress[j];
    }
  } else {
    per_ingress[0] = flows;
  }
  for (std::size_t j = 0; j < n_up; ++j) {
    if (per_ingress[j] == 0) continue;
    const auto& up = world_.uplinks[j];
    up.link->account_aggregate(up.link->peer_of(up.xtr_node),
                               per_ingress[j] * rp,
                               per_ingress[j] * world_.wire.reverse_bytes());
    if (lisp && up.xtr != nullptr) {
      lisp::AggregateCounts ingress;
      ingress.decapsulated = per_ingress[j] * rp;
      up.xtr->aggregate_account(ingress);
    }
  }
}

void FlowAggregateEngine::fail(std::size_t rank, const Batch& batch) {
  if (batch.flows == 0) return;
  const std::uint64_t cold = std::min(batch.cold_dns, batch.flows);
  const std::uint64_t waiters =
      std::min(batch.dns_waiters, batch.flows - cold);
  const std::uint64_t warm = batch.flows - cold - waiters;
  if (warm > 0) world_.metrics->aggregate_dns_resolved(warm, world_.dns_warm);
  if (cold > 0) world_.metrics->aggregate_dns_resolved(cold, batch.t_dns_cold);
  if (waiters > 0) {
    world_.metrics->aggregate_dns_resolved(waiters, batch.t_dns_wait);
  }
  world_.metrics->aggregate_connect_failed(batch.flows);

  if (world_.itr == nullptr) return;
  // Initial SYN plus every RFC 2988 retry, all swallowed at the ITR.
  const std::uint64_t syns =
      batch.flows * (1 + static_cast<std::uint64_t>(world_.max_syn_retries));
  lisp::AggregateCounts drops;
  drops.data_seen = syns;
  if (world_.miss_policy == lisp::MissPolicy::kQueue) {
    const std::uint64_t queued =
        std::min<std::uint64_t>(batch.flows, world_.queue_capacity_per_eid);
    drops.miss_queued = queued;
    drops.queue_timeout_drops = queued;
    drops.queue_overflow_drops = syns - queued;
  } else {
    drops.miss_dropped = syns;
  }
  world_.itr->aggregate_account(drops);
}

sim::SimDuration FlowAggregateEngine::cold_dns_latency(std::size_t rank) {
  const auto now = world_.sim->now();
  const auto& dest = world_.destinations[rank];
  const auto referral_ttl =
      sim::SimDuration::seconds(world_.dns_referral_ttl_seconds);
  sim::SimDuration legs;
  if (!tld_referral_.cached(now)) {
    // The TLD delegation isn't usable yet: this resolution walks the root
    // itself.  The referral only lands when the root's answer arrives, so
    // a burst of cold names starting together all pay this leg.
    legs += world_.dns_leg_root;
    if (now >= tld_referral_.expiry) {  // first walker (re)fetches it
      tld_referral_.ready = now + world_.dns_leg_root;
      tld_referral_.expiry = tld_referral_.ready + referral_ttl;
    }
  }
  auto& auth = auth_referral_[dest.peer];
  if (!auth.cached(now)) {
    legs += world_.dns_leg_tld;
    if (now >= auth.expiry) {
      auth.ready = now + legs;  // lands once this walk reaches the TLD
      auth.expiry = auth.ready + referral_ttl;
    }
  }
  legs += world_.peers[dest.peer].dns_leg_auth;
  return world_.dns_warm + legs;
}

std::uint64_t FlowAggregateEngine::round_with_residue(double& residue,
                                                      double want,
                                                      std::uint64_t cap) {
  want += residue;
  if (want < 0.0) want = 0.0;
  auto take = static_cast<std::uint64_t>(want);
  if (take > cap) take = cap;
  residue = want - static_cast<double>(take);
  if (residue > 1.0) residue = 1.0;
  return take;
}

}  // namespace lispcp::workload
