// host.hpp — end-host node (the paper's ES and ED).
//
// Client side: start_session() runs the full §1 sequence — DNS lookup via
// the local resolver, TCP three-way handshake to the answered EID, then a
// configurable data exchange.  SYN loss (e.g. dropped at an ITR during
// mapping resolution) is recovered by RFC 2988 retransmission: 3 s initial
// RTO, doubling per retry — which is precisely why claim (i) matters.
//
// Server side: every host listens; SYNs are answered with SYN-ACKs, the
// handshake-completing ACK is reported to the metrics sink (giving the
// paper's T_setup measured at the destination), and each received data
// packet is answered with a response packet (driving the reverse direction
// used by the TE and two-way-mapping experiments).
//
// Session correlation across hosts is carried *in the TCP segments
// themselves*: the client puts the session id in the SYN's sequence number,
// so the server can attribute handshake completion without out-of-band
// state.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "dns/message.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"
#include "workload/session.hpp"

namespace lispcp::workload {

struct HostConfig {
  net::Ipv4Address resolver;  ///< local caching resolver (DNSS)
  sim::SimDuration dns_timeout = sim::SimDuration::seconds(8);
  /// RFC 2988 (2008-era) initial retransmission timeout for SYNs.
  sim::SimDuration syn_rto = sim::SimDuration::seconds(3);
  int max_syn_retries = 4;
  /// Data exchange after the handshake.
  int data_packets = 4;
  std::size_t data_packet_bytes = 1000;
  std::size_t response_packet_bytes = 1000;
};

/// Plain (non-atomic) counters — single-writer by construction.  Each Host
/// belongs to exactly one sim::Simulator, and scenario::Runner parallelism
/// is *between* sweep points: every point builds its own Internet (its own
/// hosts) and runs its event loop on one thread, so these counters are only
/// ever mutated from that thread.  Probe callbacks fire inside the same
/// event loop.  Audited with the parallel Runner; do not share a Host across
/// simulators.
struct HostStats {
  std::uint64_t syns_received = 0;
  std::uint64_t connections_accepted = 0;
  std::uint64_t data_packets_received = 0;
  std::uint64_t responses_sent = 0;
  std::uint64_t responses_received = 0;
};

// `final`: deliver() is the per-packet hot path — every DNS answer, TCP
// segment and response lands here, and the generator/session bookkeeping
// calls back into the concrete class.  Sealing it lets those calls
// devirtualize behind the workload::Traffic seam.
class Host final : public sim::Node {
 public:
  Host(sim::Network& network, std::string name, net::Ipv4Address eid,
       HostConfig config, WorkloadMetrics* metrics);

  /// Starts a session toward `target`; returns the session id.
  std::uint64_t start_session(const dns::DomainName& target);

  void deliver(net::Packet packet) override;

  [[nodiscard]] const HostStats& stats() const noexcept { return host_stats_; }
  [[nodiscard]] std::uint64_t sessions_in_flight() const noexcept {
    return by_port_.size() + resolving_.size();
  }

 private:
  enum class State { kResolving, kConnecting, kEstablished };

  struct Session {
    std::uint64_t id = 0;
    State state = State::kResolving;
    sim::SimTime started;
    dns::DomainName target;
    net::Ipv4Address peer;
    std::uint16_t local_port = 0;
    std::uint16_t dns_id = 0;
    int syn_retries = 0;
    int responses_outstanding = 0;
    sim::EventHandle timer;
  };

  void handle_dns_response(const net::Packet& packet, const dns::DnsMessage& message);
  void handle_tcp(const net::Packet& packet, const net::TcpHeader& tcp);
  void send_syn(Session& session);
  void on_syn_timeout(std::uint16_t port);
  void on_established(Session& session);
  void send_data_burst(Session& session);

  /// Passive (server) side connection bookkeeping.
  struct PassiveConn {
    std::uint64_t session_id = 0;
    bool established = false;
  };

  HostConfig config_;
  WorkloadMetrics* metrics_;
  HostStats host_stats_;
  std::unordered_map<std::uint16_t, Session> by_port_;     // dns-resolved sessions
  std::unordered_map<std::uint16_t, std::uint64_t> resolving_;  // dns id -> port
  std::unordered_map<std::uint64_t, PassiveConn> passive_;  // key: peer<<16|port
  std::uint16_t next_port_ = 1024;
  std::uint16_t next_dns_id_ = 1;

  std::uint64_t next_session_id() noexcept;
};

}  // namespace lispcp::workload
