// traffic.hpp — the workload-engine seam.
//
// Two interchangeable engines drive the paper's session workload over a
// built topology:
//
//   * workload::TrafficGenerator (generator.hpp) — the per-packet path:
//     every session is a real DNS exchange, TCP handshake and data burst,
//     one simulator event per packet.  Full protocol fidelity (nonces,
//     retransmission timers, queue occupancy), cost linear in packets.
//
//   * workload::FlowAggregateEngine (aggregate.hpp) — the flow-aggregate
//     path: one event per epoch carries flow *counts* per destination;
//     map-cache misses, drops, SYN-retransmit penalties and TE splits are
//     evaluated in closed form against the real map-caches and the real
//     control plane.  Cost linear in (destinations x epochs), which is what
//     lets e1/e3/e4 sweep 10k domains x 10^6+ flows.
//
// Scenario code talks to this seam only; benches pick the engine through
// the workload::Mode axis on scenario::SweepSpec (Axis::workload_modes).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace lispcp::workload {

/// Which engine drives the workload.
enum class Mode {
  kPacket,     ///< discrete per-packet simulation
  kAggregate,  ///< flow-aggregate epochs (analytic per-flow accounting)
};

[[nodiscard]] constexpr const char* to_string(Mode mode) noexcept {
  switch (mode) {
    case Mode::kPacket: return "packet";
    case Mode::kAggregate: return "aggregate";
  }
  return "?";
}

[[nodiscard]] constexpr std::optional<Mode> parse_mode(
    std::string_view text) noexcept {
  if (text == "packet") return Mode::kPacket;
  if (text == "aggregate") return Mode::kAggregate;
  return std::nullopt;
}

/// The engine seam: scenario::Experiment owns one Traffic per source domain
/// and never looks behind it.
class Traffic {
 public:
  virtual ~Traffic() = default;

  /// Schedules the arrival process from the current simulation time.
  virtual void start() = 0;

  [[nodiscard]] virtual Mode mode() const noexcept = 0;

  /// Sessions (flows) the arrival process has admitted so far.
  [[nodiscard]] virtual std::uint64_t sessions_launched() const noexcept = 0;
};

}  // namespace lispcp::workload
