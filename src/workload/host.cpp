#include "workload/host.hpp"

#include "net/ports.hpp"

namespace lispcp::workload {

namespace {

std::uint64_t passive_key(net::Ipv4Address peer, std::uint16_t port) noexcept {
  return (std::uint64_t{peer.value()} << 16) | port;
}

constexpr std::uint16_t kServerPort = 80;

}  // namespace

std::uint64_t Host::next_session_id() noexcept {
  // Per-network, not process-global: parallel sweep points each own a
  // Network, so their id spaces never interleave (and never race).
  return network().next_uid();
}

Host::Host(sim::Network& network, std::string name, net::Ipv4Address eid,
           HostConfig config, WorkloadMetrics* metrics)
    : Node(network, std::move(name)), config_(config), metrics_(metrics) {
  add_address(eid);
}

std::uint64_t Host::start_session(const dns::DomainName& target) {
  Session session;
  session.id = next_session_id();
  session.started = sim().now();
  session.target = target;
  session.local_port = next_port_++;
  if (next_port_ < 1024) next_port_ = 1024;  // wrapped
  session.dns_id = next_dns_id_++;
  session.responses_outstanding = config_.data_packets;

  if (metrics_ != nullptr) metrics_->session_started(session.id, session.started);

  // DNS query to the local resolver (Step 1 of the paper's sequence).
  auto query = dns::DnsMessage::query(session.dns_id, {target, dns::RrType::kA},
                                      /*recursion_desired=*/true);
  send(net::Packet::udp(address(), config_.resolver, session.local_port,
                        net::ports::kDns, std::move(query)));

  const std::uint16_t port = session.local_port;
  session.timer = sim().schedule(config_.dns_timeout, [this, port] {
    auto it = by_port_.find(port);
    if (it == by_port_.end() || it->second.state != State::kResolving) return;
    if (metrics_ != nullptr) metrics_->dns_failed(it->second.id);
    resolving_.erase(it->second.dns_id);
    by_port_.erase(it);
  });

  const std::uint64_t id = session.id;
  resolving_[session.dns_id] = session.local_port;
  by_port_.emplace(port, std::move(session));
  return id;
}

void Host::deliver(net::Packet packet) {
  if (const auto* udp = packet.udp();
      udp != nullptr && udp->src_port == net::ports::kDns) {
    if (auto message = packet.payload_as<dns::DnsMessage>()) {
      handle_dns_response(packet, *message);
      return;
    }
  }
  if (const auto* tcp = packet.tcp()) {
    handle_tcp(packet, *tcp);
    return;
  }
  Node::deliver(std::move(packet));
}

void Host::handle_dns_response(const net::Packet& packet,
                               const dns::DnsMessage& message) {
  (void)packet;
  auto resolving_it = resolving_.find(message.id());
  if (resolving_it == resolving_.end()) return;  // late/duplicate answer
  auto session_it = by_port_.find(static_cast<std::uint16_t>(resolving_it->second));
  resolving_.erase(resolving_it);
  if (session_it == by_port_.end()) return;
  Session& session = session_it->second;
  if (session.state != State::kResolving) return;
  session.timer.cancel();

  const auto answer = message.first_address();
  if (message.rcode() != dns::Rcode::kNoError || !answer) {
    if (metrics_ != nullptr) metrics_->dns_failed(session.id);
    by_port_.erase(session_it);
    return;
  }

  if (metrics_ != nullptr) {
    metrics_->dns_resolved(session.id, sim().now() - session.started);
  }
  session.peer = *answer;
  session.state = State::kConnecting;
  send_syn(session);
}

void Host::send_syn(Session& session) {
  net::TcpHeader syn;
  syn.src_port = session.local_port;
  syn.dst_port = kServerPort;
  // The session id rides in the sequence number so the server can report
  // handshake completion for the right session.
  syn.seq = static_cast<std::uint32_t>(session.id);
  syn.flags.syn = true;
  send(net::Packet::tcp(address(), session.peer, syn));

  const std::uint16_t port = session.local_port;
  // Exponential backoff: 3s, 6s, 12s, ... (RFC 2988 with 2008-era initial RTO).
  const auto rto = config_.syn_rto * (std::int64_t{1} << session.syn_retries);
  session.timer = sim().schedule(rto, [this, port] { on_syn_timeout(port); });
}

void Host::on_syn_timeout(std::uint16_t port) {
  auto it = by_port_.find(port);
  if (it == by_port_.end() || it->second.state != State::kConnecting) return;
  Session& session = it->second;
  if (session.syn_retries >= config_.max_syn_retries) {
    if (metrics_ != nullptr) metrics_->connect_failed(session.id);
    by_port_.erase(it);
    return;
  }
  ++session.syn_retries;
  send_syn(session);
}

void Host::handle_tcp(const net::Packet& packet, const net::TcpHeader& tcp) {
  const auto peer = packet.outer_ip().src;

  // --- Server side ---------------------------------------------------------
  if (tcp.dst_port == kServerPort) {
    const auto key = passive_key(peer, tcp.src_port);
    if (tcp.flags.syn && !tcp.flags.ack) {
      ++host_stats_.syns_received;
      auto& conn = passive_[key];
      conn.session_id = tcp.seq;
      net::TcpHeader synack;
      synack.src_port = kServerPort;
      synack.dst_port = tcp.src_port;
      synack.seq = tcp.seq;  // echo the session id back
      synack.ack = tcp.seq + 1;
      synack.flags.syn = true;
      synack.flags.ack = true;
      send(net::Packet::tcp(address(), peer, synack));
      return;
    }
    auto conn_it = passive_.find(key);
    if (conn_it == passive_.end()) return;  // stray segment
    PassiveConn& conn = conn_it->second;
    if (tcp.flags.ack && !tcp.flags.syn && !conn.established) {
      conn.established = true;
      ++host_stats_.connections_accepted;
      if (metrics_ != nullptr) {
        metrics_->handshake_complete(conn.session_id, sim().now());
      }
      return;
    }
    if (!tcp.flags.syn && packet.payload() != nullptr) {
      // Data packet: answer with a response packet (reverse-direction load).
      ++host_stats_.data_packets_received;
      net::TcpHeader resp;
      resp.src_port = kServerPort;
      resp.dst_port = tcp.src_port;
      resp.seq = tcp.seq;
      resp.ack = tcp.seq + 1;
      resp.flags.ack = true;
      ++host_stats_.responses_sent;
      send(net::Packet::tcp(address(), peer, resp, config_.response_packet_bytes));
      return;
    }
    return;
  }

  // --- Client side ----------------------------------------------------------
  auto it = by_port_.find(tcp.dst_port);
  if (it == by_port_.end()) return;
  Session& session = it->second;
  if (peer != session.peer) return;

  if (tcp.flags.syn && tcp.flags.ack && session.state == State::kConnecting) {
    session.timer.cancel();
    session.state = State::kEstablished;
    if (metrics_ != nullptr) {
      metrics_->client_connected(session.id, sim().now() - session.started,
                                 session.syn_retries);
    }
    on_established(session);
    return;
  }

  if (session.state == State::kEstablished && tcp.flags.ack &&
      packet.payload() != nullptr) {
    ++host_stats_.responses_received;
    if (--session.responses_outstanding <= 0) {
      if (metrics_ != nullptr) metrics_->data_complete(session.id, sim().now());
      by_port_.erase(it);
    }
    return;
  }
}

void Host::on_established(Session& session) {
  // Complete the handshake, then stream the data burst.
  net::TcpHeader ack;
  ack.src_port = session.local_port;
  ack.dst_port = kServerPort;
  ack.seq = static_cast<std::uint32_t>(session.id) + 1;
  ack.ack = static_cast<std::uint32_t>(session.id) + 1;
  ack.flags.ack = true;
  send(net::Packet::tcp(address(), session.peer, ack));
  send_data_burst(session);
}

void Host::send_data_burst(Session& session) {
  for (int i = 0; i < config_.data_packets; ++i) {
    net::TcpHeader data;
    data.src_port = session.local_port;
    data.dst_port = kServerPort;
    data.seq = static_cast<std::uint32_t>(session.id) + 2 +
               static_cast<std::uint32_t>(i);
    data.flags.ack = true;
    // Small pacing to avoid an unrealistic instantaneous burst.
    const auto delay = sim::SimDuration::micros(50) * (i + 1);
    const auto peer = session.peer;
    auto packet = net::Packet::tcp(address(), peer, data, config_.data_packet_bytes);
    sim().schedule(delay, [this, p = std::move(packet)]() mutable {
      send(std::move(p));
    });
  }
}

}  // namespace lispcp::workload
