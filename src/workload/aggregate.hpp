// aggregate.hpp — the flow-aggregate workload engine.
//
// One simulator event per *epoch* (default 500 ms) instead of one per
// packet: each epoch draws the number of new flows from the Poisson arrival
// process, buckets them over destinations by the same Zipf popularity the
// per-packet generator uses, and evaluates the paper-§1 session model in
// closed form per (destination, epoch) batch:
//
//   T_DNS     — modeled from the real topology's path delays and the
//               resolver/server cache behaviour (positive records 300 s,
//               referral records effectively run-long), cold legs paid by
//               the first flow of a cold window.
//   map-cache — *real*: batches probe the source ITR's MapCache through
//               TunnelRouter::aggregate_lookup (one LPM walk per batch,
//               per-flow stats), and misses drive the *real* control plane
//               through TunnelRouter::aggregate_resolve — Map-Requests,
//               overlay hops and pushes are genuine simulator events, so
//               resolution latency is measured, not assumed.
//   drops     — on resolution completion at Tc, the fraction of backlogged
//               flows that arrived before Tc takes the miss-policy penalty:
//               kDrop costs one RFC 2988 SYN RTO, kQueue costs the measured
//               queueing delay (capacity-capped, overflow behaves as kDrop).
//   TE splits — per-flow ingress choice via the real IrcEngine; forward and
//               reverse wire bytes are credited onto the real provider
//               sim::Links so the E4 probes and the IRC's own load feedback
//               work identically in both modes.
//
// Scope: the engine reproduces the comparative metrics of e1/e3/e4 (drop
// rates, setup latency, TE splits) at scales per-packet simulation cannot
// reach.  Nonce-level protocol behaviour (RLOC probing, failure injection,
// pce_on_demand transport, per-packet loss) still requires packet mode —
// see DESIGN.md "Flow-aggregate workloads" for the model's derivations and
// stated approximations.
#pragma once

#include <cstdint>
#include <vector>

#include "irc/irc_engine.hpp"
#include "lisp/tunnel_router.hpp"
#include "net/flow.hpp"
#include "sim/link.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"
#include "workload/session.hpp"
#include "workload/traffic.hpp"

namespace lispcp::workload {

/// Everything the engine needs to know about the built topology, assembled
/// by scenario::Experiment (the layer that can see topo::Internet) so the
/// engine itself stays topology-agnostic.  All pointers are non-owning and
/// must outlive the engine.
struct AggregateWorld {
  sim::Simulator* sim = nullptr;
  WorkloadMetrics* metrics = nullptr;

  // -- Source-domain side ---------------------------------------------------
  /// The egress xTR (where the internal default route points).  Null for
  /// the plain-IP baseline: no encapsulation, no misses.
  lisp::TunnelRouter* itr = nullptr;
  /// The domain's IRC engine (PCE control plane): chooses the reverse
  /// ingress per flow.  Null otherwise (reverse enters via the egress RLOC,
  /// as gleaning forces in vanilla LISP).
  irc::IrcEngine* source_irc = nullptr;

  struct Uplink {
    sim::Link* link = nullptr;
    sim::NodeId xtr_node;  ///< domain-side endpoint (direction selector)
    lisp::TunnelRouter* xtr = nullptr;
    net::Ipv4Address rloc;
  };
  /// Provider links of the source domain; index 0 is the egress.
  std::vector<Uplink> uplinks;

  lisp::MissPolicy miss_policy = lisp::MissPolicy::kDrop;
  std::size_t queue_capacity_per_eid = 16;
  /// kPce: mappings are pushed to the ITR when the DNS query is observed
  /// (Step 6 snooping), so flows never miss; reverse ingress follows the
  /// remote IRC's current site mapping.
  bool pce_push = false;

  // -- Host model (mirrors workload::HostConfig) ----------------------------
  sim::SimDuration syn_rto = sim::SimDuration::seconds(3);
  int max_syn_retries = 4;
  net::FlowWireModel wire;
  /// Per-crossing processing overhead when LISP-encapsulated (encap at the
  /// ITR plus decap at the ETR).
  sim::SimDuration xtr_crossing_delay;

  // -- DNS model ------------------------------------------------------------
  /// Warm resolution: client<->resolver round trip + resolver processing.
  sim::SimDuration dns_warm;
  /// Iterative legs (resolver<->server round trip + server processing),
  /// paid only while the corresponding referral/record is uncached.
  sim::SimDuration dns_leg_root;
  sim::SimDuration dns_leg_tld;
  std::uint32_t dns_record_ttl_seconds = 300;
  std::uint32_t dns_referral_ttl_seconds = 3600;

  // -- Destination side -----------------------------------------------------
  struct Peer {  ///< one destination domain
    lisp::TunnelRouter* xtr = nullptr;   ///< primary border router
    const irc::IrcEngine* irc = nullptr; ///< inbound-TE engine (PCE only)
    sim::SimDuration owd;                ///< host -> host one-way delay
    sim::SimDuration dns_leg_auth;       ///< resolver <-> authoritative leg
  };
  std::vector<Peer> peers;  ///< indexed by destination domain position

  struct Destination {
    std::uint32_t peer = 0;  ///< index into `peers`
    net::Ipv4Address eid;
    net::Ipv4Prefix registered_prefix;  ///< the site mapping covering `eid`
  };
  /// Index-aligned with the Zipf ranks — must enumerate destinations in the
  /// same interleaved order as topo::Internet::destination_names().
  std::vector<Destination> destinations;
};

class FlowAggregateEngine final : public Traffic {
 public:
  FlowAggregateEngine(AggregateWorld world, TrafficConfig config, sim::Rng rng);

  void start() override;
  [[nodiscard]] Mode mode() const noexcept override { return Mode::kAggregate; }
  [[nodiscard]] std::uint64_t sessions_launched() const noexcept override {
    return launched_;
  }

  /// Flows that finished the closed-form session model successfully.
  [[nodiscard]] std::uint64_t flows_completed() const noexcept {
    return completed_;
  }

 private:
  /// One (destination, epoch) batch.  DNS bookkeeping splits the flows into
  /// three groups, mirroring what the real resolver does to a burst hitting
  /// a cold name: one *trigger* pays the full iterative latency, the
  /// *waiters* (arrivals while the query is in flight) coalesce and pay the
  /// mean residual, and the rest hit the warm positive cache.  The trigger
  /// and waiters all receive their answer at the same instant (`itr_at`), so
  /// they reach the ITR as one burst — which is exactly the cohort that a
  /// cold map-cache drops or queues together in packet mode.
  struct Batch {
    sim::SimTime start;        ///< epoch begin; arrivals uniform over epoch
    std::uint64_t flows = 0;
    std::uint64_t cold_dns = 0;    ///< flows that paid the full cold legs
    sim::SimDuration t_dns_cold;   ///< the trigger's latency
    std::uint64_t dns_waiters = 0; ///< flows coalesced onto the query
    sim::SimDuration t_dns_wait;   ///< their mean residual latency
    sim::SimTime itr_at;           ///< when the batch's first SYN hits the ITR
  };

  struct DestState {
    sim::SimTime dns_positive_until;  ///< modeled resolver positive cache
    sim::SimTime dns_ready_at;        ///< when the in-flight query completes
    bool resolving = false;
    double settle_residue = 0.0;    ///< fractional-flow rounding carry
    double dns_wait_residue = 0.0;  ///< same, for the coalesced-waiter count
    std::vector<Batch> backlog;
  };

  void epoch();
  void process(std::size_t rank, std::uint64_t flows);
  void settle(std::size_t rank, bool resolved);

  /// Books one batch of successful sessions against destination `rank`:
  /// latencies into the metrics sink (per DNS group), packets/bytes onto
  /// the ITR, the remote xTR and the provider links.  `penalty` is added to
  /// both T_connect and T_setup (SYN RTO or queueing delay).  `overlay_syns`
  /// of the flows sent their SYN via the mapping overlay instead of
  /// encapsulating it (kForwardOverlay).
  void complete(std::size_t rank, const Batch& batch, sim::SimDuration penalty,
                bool retransmitted, std::uint64_t overlay_syns = 0);
  /// Books one batch of failed sessions (resolution gave up; every SYN
  /// retry dropped at the ITR).
  void fail(std::size_t rank, const Batch& batch);

  /// Splits the front `take` flows off `batch` into a new Batch, taking the
  /// DNS cohort (trigger, then waiters) first — they are the earliest
  /// arrivals at the ITR, so penalty splits peel them preferentially.
  [[nodiscard]] static Batch split_front(Batch& batch, std::uint64_t take);

  /// T_DNS of a cold resolution right now (updates the modeled caches).
  [[nodiscard]] sim::SimDuration cold_dns_latency(std::size_t rank);

  /// Deterministic fractional rounding with carry in `residue`.
  [[nodiscard]] static std::uint64_t round_with_residue(double& residue,
                                                        double want,
                                                        std::uint64_t cap);

  AggregateWorld world_;
  TrafficConfig config_;
  sim::Rng rng_;
  sim::ZipfDistribution zipf_;
  sim::SimDuration epoch_len_;
  sim::SimTime end_time_;
  std::uint64_t launched_ = 0;
  std::uint64_t completed_ = 0;

  std::vector<DestState> dest_states_;
  /// Modeled resolver referral cache (one resolver per source domain).  A
  /// referral only becomes usable when the upstream answer carrying it
  /// lands (`ready`), so resolutions racing ahead of that — a cold burst
  /// fanning out over many names — each walk the upper tiers themselves,
  /// exactly as the real resolver's per-name tasks do.
  struct ReferralCache {
    sim::SimTime ready;   ///< when the referral lands in the cache
    sim::SimTime expiry;  ///< ready + referral TTL
    [[nodiscard]] bool cached(sim::SimTime now) const noexcept {
      return now >= ready && now < expiry;
    }
  };
  ReferralCache tld_referral_;
  std::vector<ReferralCache> auth_referral_;  ///< per peer domain

  // Epoch scratch (reused; avoids per-epoch allocation at 10k destinations).
  std::vector<std::uint32_t> epoch_counts_;
  std::vector<std::uint32_t> touched_;
};

}  // namespace lispcp::workload
