// session.hpp — session outcome records and the shared metrics sink.
//
// A "session" is the paper's §1 scenario: an end-host looks up a name in
// the DNS, opens a TCP connection to the answered EID, and exchanges data.
// The sink collects exactly the quantities the paper's formulas speak
// about: T_DNS, the client-side connect time, the full three-way-handshake
// setup time T_setup, and the SYN retransmissions caused by first-packet
// drops at the ITR (claim (i)'s failure mode: a dropped SYN costs a full
// 3-second RFC 2988 initial RTO).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "metrics/histogram.hpp"
#include "sim/time.hpp"

namespace lispcp::workload {

struct SessionResult {
  std::uint64_t id = 0;
  sim::SimTime started;
  std::optional<sim::SimDuration> t_dns;      ///< DNS query -> answer
  std::optional<sim::SimDuration> t_connect;  ///< start -> SYN-ACK at client
  std::optional<sim::SimDuration> t_setup;    ///< start -> ACK at server (§1 formula)
  int syn_retransmissions = 0;
  bool dns_failed = false;
  bool connect_failed = false;
  bool data_complete = false;
};

/// Shared collector; hosts report into it as sessions progress.
///
/// "Shared" means shared between the hosts (and the aggregate engine) of
/// *one* experiment, never between threads: like HostStats (host.hpp), the
/// counters are plain integers under the single-writer invariant — every
/// caller runs inside the owning point's event loop, and scenario::Runner
/// parallelism is between points, each with its own Simulator, hosts and
/// collector.  CI's TSan job runs the parallel-Runner tests to keep the
/// invariant honest.
class WorkloadMetrics {
 public:
  void session_started(std::uint64_t id, sim::SimTime now) {
    ++sessions_started_;
    starts_[id] = now;
  }

  void dns_resolved(std::uint64_t id, sim::SimDuration t_dns) {
    (void)id;
    t_dns_.add_duration(t_dns);
  }

  void dns_failed(std::uint64_t id) {
    (void)id;
    ++dns_failures_;
  }

  void client_connected(std::uint64_t id, sim::SimDuration t_connect,
                        int retransmissions) {
    (void)id;
    t_connect_.add_duration(t_connect);
    syn_retransmissions_ += static_cast<std::uint64_t>(retransmissions);
    if (retransmissions > 0) ++sessions_with_retransmission_;
  }

  /// Called by the *server-side* host when the handshake ACK arrives.
  void handshake_complete(std::uint64_t id, sim::SimTime now) {
    auto it = starts_.find(id);
    if (it == starts_.end()) return;
    t_setup_.add_duration(now - it->second);
    ++established_;
  }

  void connect_failed(std::uint64_t id) {
    (void)id;
    ++connect_failures_;
  }

  void data_complete(std::uint64_t id, sim::SimTime now) {
    (void)now;
    ++completed_;
    starts_.erase(id);
  }

  // -- Batch entry points (flow-aggregate engine) ---------------------------
  // The closed-form session model books whole batches of identical outcomes;
  // these advance the same counters and histograms the per-session calls do,
  // in O(1) per batch.  No per-id start table: the aggregate engine computes
  // T_setup directly.

  void aggregate_sessions_started(std::uint64_t n) { sessions_started_ += n; }

  void aggregate_dns_resolved(std::uint64_t n, sim::SimDuration t_dns) {
    t_dns_.add_duration_n(t_dns, n);
  }

  void aggregate_connected(std::uint64_t n, sim::SimDuration t_connect,
                           bool retransmitted) {
    t_connect_.add_duration_n(t_connect, n);
    if (retransmitted) {
      syn_retransmissions_ += n;
      sessions_with_retransmission_ += n;
    }
  }

  /// Successful batches establish and complete in one step (the aggregate
  /// model has no separate data phase).
  void aggregate_established(std::uint64_t n, sim::SimDuration t_setup) {
    t_setup_.add_duration_n(t_setup, n);
    established_ += n;
    completed_ += n;
  }

  void aggregate_connect_failed(std::uint64_t n) { connect_failures_ += n; }

  [[nodiscard]] const metrics::Histogram& t_dns() const noexcept { return t_dns_; }
  [[nodiscard]] const metrics::Histogram& t_connect() const noexcept {
    return t_connect_;
  }
  [[nodiscard]] const metrics::Histogram& t_setup() const noexcept {
    return t_setup_;
  }
  [[nodiscard]] std::uint64_t sessions_started() const noexcept {
    return sessions_started_;
  }
  [[nodiscard]] std::uint64_t established() const noexcept { return established_; }
  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }
  [[nodiscard]] std::uint64_t dns_failures() const noexcept { return dns_failures_; }
  [[nodiscard]] std::uint64_t connect_failures() const noexcept {
    return connect_failures_;
  }
  [[nodiscard]] std::uint64_t syn_retransmissions() const noexcept {
    return syn_retransmissions_;
  }
  [[nodiscard]] std::uint64_t sessions_with_retransmission() const noexcept {
    return sessions_with_retransmission_;
  }

 private:
  metrics::Histogram t_dns_;
  metrics::Histogram t_connect_;
  metrics::Histogram t_setup_;
  std::unordered_map<std::uint64_t, sim::SimTime> starts_;
  std::uint64_t sessions_started_ = 0;
  std::uint64_t established_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t dns_failures_ = 0;
  std::uint64_t connect_failures_ = 0;
  std::uint64_t syn_retransmissions_ = 0;
  std::uint64_t sessions_with_retransmission_ = 0;
};

}  // namespace lispcp::workload
