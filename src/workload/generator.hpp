// generator.hpp — traffic generation for the experiments.
//
// Sessions arrive as a Poisson process; each picks a uniformly random client
// host and a destination *name* drawn from a Zipf popularity distribution
// over the remote host population.  Zipf skew is the lever that controls
// map-cache hit ratios in experiment E1 (hot destinations stay cached, the
// tail always misses).
#pragma once

#include <cstdint>
#include <vector>

#include "dns/name.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "workload/host.hpp"
#include "workload/traffic.hpp"

namespace lispcp::workload {

struct TrafficConfig {
  double sessions_per_second = 50.0;
  sim::SimDuration duration = sim::SimDuration::seconds(60);
  double zipf_alpha = 0.9;
  /// If > 0, stop after exactly this many sessions regardless of duration.
  std::uint64_t max_sessions = 0;
  /// Flow-aggregate mode only: the epoch length (arrival batching window).
  /// Ignored by the per-packet engine.
  sim::SimDuration aggregate_epoch = sim::SimDuration::millis(500);
};

class TrafficGenerator final : public Traffic {
 public:
  /// `clients` originate sessions; `destinations` are resolvable names of
  /// remote hosts, index-aligned with the Zipf ranks (index 0 = hottest).
  TrafficGenerator(sim::Simulator& sim, std::vector<Host*> clients,
                   std::vector<dns::DomainName> destinations, TrafficConfig config,
                   sim::Rng rng);

  /// Schedules the arrival process from the current simulation time.
  void start() override;

  [[nodiscard]] Mode mode() const noexcept override { return Mode::kPacket; }

  [[nodiscard]] std::uint64_t sessions_launched() const noexcept override {
    return launched_;
  }

 private:
  void arrival();

  sim::Simulator& sim_;
  std::vector<Host*> clients_;
  std::vector<dns::DomainName> destinations_;
  TrafficConfig config_;
  sim::Rng rng_;
  sim::ZipfDistribution zipf_;
  sim::SimTime end_time_;
  std::uint64_t launched_ = 0;
};

}  // namespace lispcp::workload
