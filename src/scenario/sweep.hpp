// sweep.hpp — the declarative experiment-sweep API.
//
// The paper's evaluation is a grid of comparative sweeps (control plane ×
// OWD × Zipf skew × cache size × topology size).  Instead of each bench
// hand-rolling a serial for-loop over copied ExperimentConfigs, a bench
// declares the parameter space once and hands it to a runner:
//
//   SweepSpec   — a base ExperimentConfig plus named axes.  Axes compose by
//                 cross-product (`axis`) or advance together (`zip`); the
//                 spec expands into an ordered vector of RunPoints with
//                 deterministic per-point seeds (sim::Rng::derive keyed by
//                 the point's axis coordinates — invariant under axis
//                 reordering and under the runner's thread count).
//   Runner      — executes the points, optionally on a thread pool
//                 (--jobs N).  Every point owns its Simulator/Internet, so
//                 the single-threaded simulation core is untouched; records
//                 land at the point's index, making the output independent
//                 of scheduling.  Measurement is expressed as Probes that
//                 write named fields into the point's Record — no post-hoc
//                 poking at internet() from bench code.
//   ResultSet   — the ordered records with typed fields, renderable as a
//                 metrics::Table (flat or pivoted) and serialisable to
//                 JSON/CSV sinks so CI can archive BENCH_*.json perf
//                 trajectories.
//
// See DESIGN.md §"Running sweeps" for the walkthrough.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "metrics/table.hpp"
#include "scenario/experiment.hpp"
#include "sim/failure.hpp"
#include "workload/traffic.hpp"

namespace lispcp::scenario {

// ---------------------------------------------------------------------------
// Fields and records
// ---------------------------------------------------------------------------

/// One typed cell of a record.  Knows both its table rendering (precision,
/// percent formatting — centralised here instead of per-bench snprintf
/// calls) and its raw JSON value.
class Field {
 public:
  enum class Kind { kInt, kReal, kPercent, kText, kBool };

  static Field integer(std::uint64_t v);
  static Field real(double v, int precision = 2);
  /// A fraction in [0, 1], rendered as "12.34%"; JSON carries the fraction.
  static Field percent(double fraction, int precision = 2);
  static Field text(std::string v);
  static Field boolean(bool v);

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] std::uint64_t as_int() const noexcept { return int_; }
  [[nodiscard]] double as_real() const noexcept { return real_; }
  [[nodiscard]] const std::string& as_text() const noexcept { return text_; }
  [[nodiscard]] bool as_bool() const noexcept { return bool_; }
  [[nodiscard]] int precision() const noexcept { return precision_; }

  /// The numeric value of an int/real/percent field (nan for text/bool);
  /// what replication aggregation averages over.
  [[nodiscard]] double numeric() const noexcept;

  /// The table-cell rendering ("42", "3.14", "12.34%", "yes").
  [[nodiscard]] std::string cell() const;
  /// The JSON value (42, 3.14, 0.1234, "text", true).
  void to_json(std::ostream& os) const;

  friend bool operator==(const Field& a, const Field& b) noexcept;

 private:
  Kind kind_ = Kind::kText;
  std::uint64_t int_ = 0;
  double real_ = 0.0;
  bool bool_ = false;
  int precision_ = 2;
  std::string text_;
};

/// Writes `s` as a JSON string literal (quoted, escaped) to `os`.
void json_escape(std::ostream& os, const std::string& s);

/// One sweep point's results: ordered named fields.  The runner seeds the
/// record with the point's axis coordinates; probes append metric fields.
class Record {
 public:
  /// Pre-sizes the field sink (records are built by appending; callers that
  /// know the coordinate/metric count skip the growth reallocations).
  void reserve(std::size_t fields) { fields_.reserve(fields); }

  void set(std::string name, Field value);
  void set_int(std::string name, std::uint64_t v) { set(std::move(name), Field::integer(v)); }
  void set_real(std::string name, double v, int precision = 2) {
    set(std::move(name), Field::real(v, precision));
  }
  void set_percent(std::string name, double fraction, int precision = 2) {
    set(std::move(name), Field::percent(fraction, precision));
  }
  void set_text(std::string name, std::string v) { set(std::move(name), Field::text(std::move(v))); }
  void set_bool(std::string name, bool v) { set(std::move(name), Field::boolean(v)); }

  [[nodiscard]] const Field* find(const std::string& name) const noexcept;
  [[nodiscard]] const std::vector<std::pair<std::string, Field>>& fields()
      const noexcept {
    return fields_;
  }

  friend bool operator==(const Record& a, const Record& b) noexcept {
    return a.fields_ == b.fields_;
  }

 private:
  std::vector<std::pair<std::string, Field>> fields_;
};

// ---------------------------------------------------------------------------
// Axes and the sweep spec
// ---------------------------------------------------------------------------

/// One named sweep dimension: an ordered list of points, each carrying a
/// display label, a typed coordinate value, and the config mutation it
/// applies.
class Axis {
 public:
  struct Point {
    std::string label;  ///< short display form ("pce", "8", "0.9")
    Field value;        ///< the coordinate recorded into the Record
    std::function<void(ExperimentConfig&)> apply;
  };

  Axis(std::string name, std::vector<Point> points);

  /// Control-plane axis: applies each kind's registry preset onto the
  /// point's spec (sets spec.kind plus the kind's preset defaults, e.g. the
  /// ALT variants' miss policies).  With no explicit list, sweeps the
  /// registry's comparison set — a newly registered system shows up in
  /// every comparative bench without touching it.  `labels`, when given,
  /// overrides the registered display names (index-aligned with `kinds`).
  static Axis control_planes(std::string name = "control plane");
  static Axis control_planes(std::string name,
                             std::vector<topo::ControlPlaneKind> kinds,
                             std::vector<std::string> labels = {});

  /// Integer-valued axis (cache sizes, replica counts, OWDs in ms...).
  static Axis integers(std::string name, std::vector<std::uint64_t> values,
                       std::function<void(ExperimentConfig&, std::uint64_t)> fn);
  /// Real-valued axis (Zipf alpha, rates); `precision` fixes the rendering.
  static Axis reals(std::string name, std::vector<double> values,
                    std::function<void(ExperimentConfig&, double)> fn,
                    int precision = 2);
  /// Duration-valued axis, recorded in milliseconds.
  static Axis durations_ms(
      std::string name, std::vector<sim::SimDuration> values,
      std::function<void(ExperimentConfig&, sim::SimDuration)> fn);
  /// Catch-all labelled axis (ablation toggles, policies, cold/warm...).
  static Axis labeled(
      std::string name,
      std::vector<std::pair<std::string, std::function<void(ExperimentConfig&)>>>
          points);

  // -- Topology-size axes ---------------------------------------------------
  // First-class sweep dimensions over InternetSpec's shape knobs: every
  // point builds a differently sized Internet, so multi-topology studies
  // (scaling curves over sites, multihoming degree, host population) ride
  // the same Runner as the parameter sweeps.
  static Axis domains(std::vector<std::uint64_t> values,
                      std::string name = "domains");
  static Axis hosts_per_domain(std::vector<std::uint64_t> values,
                               std::string name = "hosts/domain");
  static Axis providers_per_domain(std::vector<std::uint64_t> values,
                                   std::string name = "providers/domain");

  /// Workload-engine axis (packet vs flow-aggregate, workload/traffic.hpp):
  /// the same scenario runs once per engine, so cross-mode parity is a
  /// first-class sweep dimension — check_bench.py's mode_parity guard pairs
  /// points whose coordinates differ only in this "mode" field.  Defaults
  /// to both engines.
  static Axis workload_modes(
      std::vector<workload::Mode> modes = {workload::Mode::kPacket,
                                           workload::Mode::kAggregate},
      std::string name = "mode");

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<Point>& points() const noexcept {
    return points_;
  }

 private:
  std::string name_;
  std::vector<Point> points_;
};

/// One expanded sweep point, ready to run.
struct RunPoint {
  std::size_t index = 0;       ///< position in expansion order
  std::uint64_t seed = 0;      ///< the seed config.spec.seed was set to
  std::string series;          ///< joined coordinate labels ("pce / 8")
  /// Replication group (the pre-replication point index) and the replica's
  /// position within it.  Without replications: group == index, replica 0.
  std::size_t group = 0;
  std::size_t replica = 0;
  /// Axis-name -> coordinate value, in axis declaration order.  The runner
  /// copies these into the record as its leading fields ("replica" is
  /// appended when the spec replicates).
  std::vector<std::pair<std::string, Field>> coordinates;
  ExperimentConfig config;
};

/// How per-point seeds are assigned.
enum class SeedMode {
  /// Every point runs the spec's base seed verbatim: identical workloads
  /// across points, the paired-comparison discipline of the comparative
  /// benches (control planes judged on the same arrival process).
  kShared,
  /// Each point's seed is sim::Rng::derive_seed(base seed, stream id) where
  /// the stream id hashes the point's (axis name, label) coordinates with
  /// an order-independent combine — reordering axes, filtering points, or
  /// changing the runner's job count never changes a point's seed.
  kPerPoint,
};

/// A declarative parameter space over ExperimentConfig.
class SweepSpec {
 public:
  SweepSpec() = default;
  explicit SweepSpec(ExperimentConfig base) : base_(std::move(base)) {}

  /// Canonical starting configs shared by the comparative benches (the
  /// former per-bench base_config() copies).  Cold-resolution: tiny cache
  /// and TTL so nearly every session resolves and the T_map term is
  /// visible.  Steady-state: moderate cache/TTL where hit ratios and drop
  /// behaviour differentiate the control planes.
  static SweepSpec cold_resolution();
  static SweepSpec steady_state();

  SweepSpec& named(std::string name);
  /// Mutates the base config (applied before any axis).
  SweepSpec& base(const std::function<void(ExperimentConfig&)>& fn);
  /// Adds a cross-product axis.  The first axis varies slowest (outermost
  /// loop of the equivalent nested for-loops).
  SweepSpec& axis(Axis a);
  /// Zips an axis with the previously added one (must have the same number
  /// of points); the pair advances together instead of multiplying.
  SweepSpec& zip(Axis a);
  /// Per-point adjustment applied after all axis mutations (e.g. a miss
  /// policy that depends on the control plane the axis just selected).
  SweepSpec& tweak(std::function<void(ExperimentConfig&)> fn);
  SweepSpec& seed_mode(SeedMode mode);
  /// Expands every point into `n` seed-derived replicas (multi-seed
  /// replication: error bars instead of single draws).  Replica 0 keeps
  /// the point's seed-mode seed, replica r > 0 runs
  /// sim::Rng::derive_seed(point seed, r) — so replications(1) is the
  /// identity and replica seeds are stable under axis reordering,
  /// filtering, and the runner's job count.  Records gain a trailing
  /// "replica" coordinate; ResultSet::aggregate() folds the replicas into
  /// mean/stddev/min/max columns.
  SweepSpec& replications(std::size_t n);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const ExperimentConfig& base_config() const noexcept {
    return base_;
  }

  /// Expands the axes into the ordered point vector.
  [[nodiscard]] std::vector<RunPoint> expand() const;

 private:
  /// A group of axes advancing in lockstep (axis + its zipped partners).
  struct AxisGroup {
    std::vector<Axis> axes;
    [[nodiscard]] std::size_t size() const { return axes.front().points().size(); }
  };

  /// Throws if an axis named `name` was already added.
  void require_fresh_name(const std::string& name) const;

  std::string name_ = "sweep";
  ExperimentConfig base_;
  std::vector<AxisGroup> groups_;
  std::vector<std::function<void(ExperimentConfig&)>> tweaks_;
  SeedMode seed_mode_ = SeedMode::kShared;
  std::size_t replications_ = 1;
};

// ---------------------------------------------------------------------------
// Probes
// ---------------------------------------------------------------------------

/// Per-point measurement hooks.  The runner constructs one probe instance
/// per point (via the registered factory), so stateful probes — open a link
/// window before the run, read it after — need no locking.
class Probe {
 public:
  virtual ~Probe() = default;
  /// After the Experiment (and its Internet) is constructed, before run().
  virtual void on_configured(Experiment& experiment, const RunPoint& point);
  /// After run(); write named metric fields into the record.
  virtual void on_finished(Experiment& experiment, const RunPoint& point,
                           Record& record) = 0;
};

/// Executes the point's ExperimentConfig::failure plan: schedules the link
/// outage (or renewal outage process) and, when the plan asks for it, arms
/// the domain's FailoverController — then reports the standard recovery
/// metrics ("link-down drops"; with a controller, "flows re-pushed",
/// "hellos sent" and, for one-shot outages, "detect ms" against the
/// analytic "bound ms"; for renewal processes, "outages").  Fields the plan
/// does not produce are simply absent, so mixed arms pivot cleanly.
class FailureProbe final : public Probe {
 public:
  void on_configured(Experiment& experiment, const RunPoint& point) override;
  void on_finished(Experiment& experiment, const RunPoint& point,
                   Record& record) override;

  /// The factory benches hand to Runner::probe_factory.
  static std::unique_ptr<Probe> make() { return std::make_unique<FailureProbe>(); }

 private:
  std::unique_ptr<sim::FailureSchedule> schedule_;
};

// ---------------------------------------------------------------------------
// Result set
// ---------------------------------------------------------------------------

/// The ordered records of one executed sweep.
class ResultSet {
 public:
  ResultSet() = default;
  ResultSet(std::string name, std::vector<RunPoint> points,
            std::vector<Record> records);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<RunPoint>& points() const noexcept {
    return points_;
  }
  [[nodiscard]] const std::vector<Record>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

  /// True when the set carries multi-seed replicas (any point's replica
  /// index is non-zero).
  [[nodiscard]] bool replicated() const noexcept;

  /// Folds each replication group into one record: coordinate fields (and
  /// the "replica" index) pass through from replica 0, a "replicas" count
  /// is added, every numeric metric becomes four columns — "<name> mean",
  /// "<name> sd" (sample stddev), "<name> min", "<name> max" — and
  /// non-numeric metrics copy replica 0's value.  The identity when the
  /// set is not replicated.
  [[nodiscard]] ResultSet aggregate() const;

  /// Flat rendering: one row per record; columns are the union of field
  /// names in first-appearance order (missing fields render empty).
  [[nodiscard]] metrics::Table table() const;

  /// Pivoted rendering: one row per distinct `row_field` value, one column
  /// group per distinct `col_field` value.  Within a group, one column per
  /// requested value field that at least one record of that group carries
  /// (so asymmetric groups — extra PCE-only metrics — only add columns
  /// where they exist).  Headers are "<col> <field>", or just "<col>" when
  /// a single value field is requested.
  [[nodiscard]] metrics::Table pivot(
      const std::string& row_field, const std::string& col_field,
      const std::vector<std::string>& value_fields) const;

  /// JSON sink: {"name": ..., "points": [{"index", "seed", "series",
  /// "fields": {...}}, ...]}.  Field values keep their JSON types.  A
  /// replicated set additionally carries "aggregates": one entry per
  /// replication group with {"series", "group", "n", "fields": {name:
  /// {"mean", "sd", "min", "max"}}} — the error bars CI archives.
  void to_json(std::ostream& os) const;
  /// CSV sink (via metrics::Table::to_csv on the flat rendering).
  void to_csv(std::ostream& os) const;

  friend bool operator==(const ResultSet& a, const ResultSet& b) noexcept;

 private:
  std::string name_ = "sweep";
  std::vector<RunPoint> points_;
  std::vector<Record> records_;
};

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

struct RunOptions {
  /// Worker threads; each point owns its Simulator/Internet so points are
  /// embarrassingly parallel.  Records land at their point's index — output
  /// is byte-identical for any job count.
  std::size_t jobs = 1;
  /// When non-empty, only points whose series label contains this substring
  /// (compared case-insensitively, e.g. "pce" or "PCE") run.  Filtering
  /// never changes a surviving point's seed.
  std::string filter;
};

/// Executes a SweepSpec's points and collects the ResultSet.
class Runner {
 public:
  explicit Runner(SweepSpec spec) : spec_(std::move(spec)) {}

  /// Registers a stateless measurement: called after each point's run()
  /// with the finished experiment and the point's record.
  Runner& probe(std::function<void(Experiment&, const RunPoint&, Record&)> fn);
  /// Registers a stateful probe: the factory runs once per point.
  Runner& probe_factory(std::function<std::unique_ptr<Probe>()> factory);

  /// Replaces the default point execution (build an Experiment, run the
  /// workload, fire the probes) with a custom executor.  The adapter path
  /// for studies that build their own world instead of an Experiment —
  /// the DFZ/BGP studies of bench f2 (scenario/dfz_adapter.hpp).  The
  /// executor receives the expanded point (axis mutations applied) and
  /// writes metric fields into the record; coordinates are pre-seeded.
  /// Probes are not invoked on this path.
  Runner& execute(std::function<void(const RunPoint&, Record&)> executor);

  [[nodiscard]] const SweepSpec& spec() const noexcept { return spec_; }

  /// Runs all (filtered) points and returns their records in point order.
  [[nodiscard]] ResultSet run(const RunOptions& options = {}) const;

 private:
  /// Throws when an executor is already set (probes would never run).
  void require_no_executor() const;

  SweepSpec spec_;
  std::vector<std::function<std::unique_ptr<Probe>()>> probe_factories_;
  std::function<void(const RunPoint&, Record&)> executor_;
};

}  // namespace lispcp::scenario
