#include "scenario/dfz_adapter.hpp"

#include "routing/dfz_study.hpp"
#include "sim/rng.hpp"

namespace lispcp::scenario::dfz {

using routing::AddressingScenario;

Axis scenarios(std::string name) {
  std::vector<Axis::Point> points;
  for (const auto scenario :
       {AddressingScenario::kLegacyBgp, AddressingScenario::kLispRlocOnly}) {
    const std::string label = routing::to_string(scenario);
    points.push_back(Axis::Point{
        label, Field::text(label), [scenario](ExperimentConfig& config) {
          config.dfz.scenario = scenario;
        }});
  }
  return Axis(std::move(name), std::move(points));
}

Axis stub_sites(std::vector<std::uint64_t> values, std::string name) {
  return Axis::integers(std::move(name), std::move(values),
                        [](ExperimentConfig& config, std::uint64_t v) {
                          config.dfz.internet.stub_count =
                              static_cast<std::size_t>(v);
                        });
}

Axis deaggregation(std::vector<std::uint64_t> values, std::string name) {
  return Axis::integers(std::move(name), std::move(values),
                        [](ExperimentConfig& config, std::uint64_t v) {
                          config.dfz.deaggregation_factor =
                              static_cast<std::size_t>(v);
                        });
}

std::function<void(ExperimentConfig&)> sharded(std::size_t shards,
                                               std::size_t workers) {
  return [shards, workers](ExperimentConfig& config) {
    config.dfz.bgp.shards = shards == 0 ? 1 : shards;
    config.dfz.bgp.shard_workers = workers;
  };
}

void run_study(const RunPoint& point, Record& record) {
  const auto result = routing::run_dfz_study(point.config.dfz);
  record.set_int("DFZ table", result.dfz_table_size);
  record.set_real("mean RIB", result.mean_rib_size, 1);
  record.set_int("max RIB", result.max_rib_size);
  record.set_int("updates", result.update_messages);
  record.set_int("route records", result.route_records);
  record.set_real("converge ms", result.convergence_ms, 1);
  record.set_int("mapping entries", result.mapping_system_entries);
}

void run_churn(const RunPoint& point, Record& record) {
  const auto churn = routing::run_rehoming_churn(point.config.dfz);
  record.set_int("updates", churn.update_messages);
  record.set_int("route records", churn.route_records);
  record.set_int("ASes touched", churn.ases_touched);
  record.set_real("settle ms", churn.settle_ms, 1);
}

std::function<void(ExperimentConfig&)> full_replay() {
  return [](ExperimentConfig& config) { config.dfz.soak.full_replay = true; };
}

Axis soak_flaps(std::vector<std::uint64_t> values, std::string name) {
  return Axis::integers(std::move(name), std::move(values),
                        [](ExperimentConfig& config, std::uint64_t v) {
                          config.dfz.soak.flaps =
                              static_cast<std::size_t>(v);
                        });
}

void run_soak(const RunPoint& point, Record& record) {
  const routing::DfzStudyConfig& config = point.config.dfz;
  // The plan derives from the point's internet seed through its own
  // stream, so seed_mode kPerPoint / replications() sweep distinct flap
  // sequences while topology and plan stay locked together per point.
  routing::ChurnPlan plan = routing::make_flap_plan(
      config.soak.flaps, config.internet.stub_count,
      sim::Rng::derive_seed(config.internet.seed, 0x536f616bu /* 'Soak' */),
      config.soak.mean_spacing, config.soak.hold);
  plan.full_replay = config.soak.full_replay;
  const auto result = routing::run_churn_plan(config, plan);

  record.set_int("flaps", result.flaps);
  record.set_int("updates", result.update_messages);
  record.set_int("route records", result.route_records);
  record.set_real("updates/flap", result.mean_updates_per_flap, 2);
  record.set_real("records/flap", result.mean_records_per_flap, 2);
  record.set_real("settle ms", result.mean_settle_ms, 2);
  record.set_real("max settle ms", result.max_settle_ms, 1);
  record.set_int("engine events", result.engine_events);
  record.set_real("sim days", result.span_ms / 86'400'000.0, 2);
}

std::function<void(ExperimentConfig&)> roles_enabled() {
  return [](ExperimentConfig& config) { config.dfz.policy.roles = true; };
}

Axis policy_events(std::vector<routing::PolicyEvent::Kind> kinds,
                   std::string name) {
  std::vector<Axis::Point> points;
  for (const auto kind : kinds) {
    const std::string label = routing::to_string(kind);
    points.push_back(Axis::Point{
        label, Field::text(label), [kind](ExperimentConfig& config) {
          config.dfz.policy.event.kind = kind;
        }});
  }
  return Axis(std::move(name), std::move(points));
}

Axis filtered_transits(std::vector<double> fractions, std::string name) {
  return Axis::reals(std::move(name), std::move(fractions),
                     [](ExperimentConfig& config, double v) {
                       config.dfz.policy.filtered_transit_fraction = v;
                     });
}

Axis event_deagg(std::vector<std::uint64_t> values, std::string name) {
  return Axis::integers(std::move(name), std::move(values),
                        [](ExperimentConfig& config, std::uint64_t v) {
                          config.dfz.policy.event.deagg_factor =
                              static_cast<std::size_t>(v);
                        });
}

void run_policy_event(const RunPoint& point, Record& record) {
  const auto result = routing::run_policy_event(point.config.dfz);
  record.set_int("DFZ before", result.dfz_table_before);
  record.set_int("DFZ after", result.dfz_table_after);
  record.set_int("updates", result.update_messages);
  record.set_int("route records", result.route_records);
  record.set_real("settle ms", result.settle_ms, 1);
  record.set_int("ASes touched", result.ases_touched);
  record.set_int("announcements", result.event_announcements);
  record.set_int("RIB delta", result.rib_delta);
  record.set_real("RIB/ann", result.rib_cost_per_announcement, 2);
  record.set_real("churn/ann", result.churn_per_announcement, 2);
  record.set_int("captured ASes", result.ases_preferring_actor);
  record.set_percent("captured", result.actor_preference_fraction);
}

}  // namespace lispcp::scenario::dfz
