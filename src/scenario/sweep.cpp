#include "scenario/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <exception>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <thread>

#include "mapping/mapping_system.hpp"
#include "metrics/histogram.hpp"
#include "routing/as_graph.hpp"
#include "sim/rng.hpp"
#include "topo/blueprint.hpp"

namespace lispcp::scenario {

namespace {

/// FNV-1a over a string: the coordinate-key hash feeding Rng::derive_seed.
std::uint64_t fnv1a(const std::string& s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const unsigned char ch : s) {
    h ^= ch;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string shortest_double(double v) {
  // JSON has no inf/nan literals; null keeps the artifact parseable.
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// ASCII lower-casing for the case-insensitive --filter match.
std::string ascii_lower(std::string s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return s;
}

}  // namespace

// ---------------------------------------------------------------------------
// Field
// ---------------------------------------------------------------------------

Field Field::integer(std::uint64_t v) {
  Field f;
  f.kind_ = Kind::kInt;
  f.int_ = v;
  return f;
}

Field Field::real(double v, int precision) {
  Field f;
  f.kind_ = Kind::kReal;
  f.real_ = v;
  f.precision_ = precision;
  return f;
}

Field Field::percent(double fraction, int precision) {
  Field f;
  f.kind_ = Kind::kPercent;
  f.real_ = fraction;
  f.precision_ = precision;
  return f;
}

Field Field::text(std::string v) {
  Field f;
  f.kind_ = Kind::kText;
  f.text_ = std::move(v);
  return f;
}

Field Field::boolean(bool v) {
  Field f;
  f.kind_ = Kind::kBool;
  f.bool_ = v;
  return f;
}

double Field::numeric() const noexcept {
  switch (kind_) {
    case Kind::kInt:
      return static_cast<double>(int_);
    case Kind::kReal:
    case Kind::kPercent:
      return real_;
    case Kind::kBool:
    case Kind::kText:
      break;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

std::string Field::cell() const {
  switch (kind_) {
    case Kind::kInt:
      return metrics::Table::integer(int_);
    case Kind::kReal:
      return metrics::Table::num(real_, precision_);
    case Kind::kPercent:
      return metrics::Table::percent(real_, precision_);
    case Kind::kBool:
      return bool_ ? "yes" : "no";
    case Kind::kText:
      return text_;
  }
  return text_;
}

void json_escape(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          os << buf;
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

void Field::to_json(std::ostream& os) const {
  switch (kind_) {
    case Kind::kInt:
      os << int_;
      return;
    case Kind::kReal:
    case Kind::kPercent:
      os << shortest_double(real_);
      return;
    case Kind::kBool:
      os << (bool_ ? "true" : "false");
      return;
    case Kind::kText:
      json_escape(os, text_);
      return;
  }
}

bool operator==(const Field& a, const Field& b) noexcept {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case Field::Kind::kInt:
      return a.int_ == b.int_;
    case Field::Kind::kReal:
    case Field::Kind::kPercent:
      return a.real_ == b.real_ && a.precision_ == b.precision_;
    case Field::Kind::kBool:
      return a.bool_ == b.bool_;
    case Field::Kind::kText:
      return a.text_ == b.text_;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Record
// ---------------------------------------------------------------------------

void Record::set(std::string name, Field value) {
  for (auto& [existing, field] : fields_) {
    if (existing == name) {
      field = std::move(value);
      return;
    }
  }
  fields_.emplace_back(std::move(name), std::move(value));
}

const Field* Record::find(const std::string& name) const noexcept {
  for (const auto& [existing, field] : fields_) {
    if (existing == name) return &field;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Axis
// ---------------------------------------------------------------------------

Axis::Axis(std::string name, std::vector<Point> points)
    : name_(std::move(name)), points_(std::move(points)) {
  if (points_.empty()) {
    throw std::invalid_argument("Axis '" + name_ + "': no points");
  }
  // Labels key the rendered tables (pivot groups by them); two points that
  // format identically would silently merge there, so fail loudly instead.
  for (std::size_t i = 0; i < points_.size(); ++i) {
    for (std::size_t j = i + 1; j < points_.size(); ++j) {
      if (points_[i].label == points_[j].label) {
        throw std::invalid_argument("Axis '" + name_ +
                                    "': duplicate point label '" +
                                    points_[i].label +
                                    "' (raise the axis precision)");
      }
    }
  }
}

Axis Axis::control_planes(std::string name) {
  return control_planes(std::move(name),
                        mapping::MappingSystemFactory::instance().comparison_kinds());
}

Axis Axis::control_planes(std::string name,
                          std::vector<topo::ControlPlaneKind> kinds,
                          std::vector<std::string> labels) {
  if (!labels.empty() && labels.size() != kinds.size()) {
    throw std::invalid_argument("Axis::control_planes: labels/kinds mismatch");
  }
  std::vector<Point> points;
  points.reserve(kinds.size());
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    const auto kind = kinds[i];
    std::string label = labels.empty() ? topo::to_string(kind) : labels[i];
    points.push_back(Point{
        label, Field::text(label), [kind](ExperimentConfig& config) {
          mapping::MappingSystemFactory::instance().apply_preset(kind,
                                                                 config.spec);
        }});
  }
  return Axis(std::move(name), std::move(points));
}

Axis Axis::integers(std::string name, std::vector<std::uint64_t> values,
                    std::function<void(ExperimentConfig&, std::uint64_t)> fn) {
  std::vector<Point> points;
  points.reserve(values.size());
  for (const auto v : values) {
    points.push_back(Point{metrics::Table::integer(v), Field::integer(v),
                           [fn, v](ExperimentConfig& config) { fn(config, v); }});
  }
  return Axis(std::move(name), std::move(points));
}

Axis Axis::reals(std::string name, std::vector<double> values,
                 std::function<void(ExperimentConfig&, double)> fn,
                 int precision) {
  std::vector<Point> points;
  points.reserve(values.size());
  for (const auto v : values) {
    points.push_back(Point{metrics::Table::num(v, precision),
                           Field::real(v, precision),
                           [fn, v](ExperimentConfig& config) { fn(config, v); }});
  }
  return Axis(std::move(name), std::move(points));
}

Axis Axis::durations_ms(
    std::string name, std::vector<sim::SimDuration> values,
    std::function<void(ExperimentConfig&, sim::SimDuration)> fn) {
  std::vector<Point> points;
  points.reserve(values.size());
  for (const auto v : values) {
    points.push_back(Point{metrics::Table::num(v.ms(), 1),
                           Field::real(v.ms(), 1),
                           [fn, v](ExperimentConfig& config) { fn(config, v); }});
  }
  return Axis(std::move(name), std::move(points));
}

Axis Axis::labeled(
    std::string name,
    std::vector<std::pair<std::string, std::function<void(ExperimentConfig&)>>>
        points) {
  std::vector<Point> out;
  out.reserve(points.size());
  for (auto& [label, fn] : points) {
    out.push_back(Point{label, Field::text(label), std::move(fn)});
  }
  return Axis(std::move(name), std::move(out));
}

Axis Axis::domains(std::vector<std::uint64_t> values, std::string name) {
  return integers(std::move(name), std::move(values),
                  [](ExperimentConfig& config, std::uint64_t v) {
                    config.spec.domains = static_cast<std::size_t>(v);
                  });
}

Axis Axis::hosts_per_domain(std::vector<std::uint64_t> values,
                            std::string name) {
  return integers(std::move(name), std::move(values),
                  [](ExperimentConfig& config, std::uint64_t v) {
                    config.spec.hosts_per_domain = static_cast<std::size_t>(v);
                  });
}

Axis Axis::providers_per_domain(std::vector<std::uint64_t> values,
                                std::string name) {
  return integers(std::move(name), std::move(values),
                  [](ExperimentConfig& config, std::uint64_t v) {
                    config.spec.providers_per_domain =
                        static_cast<std::size_t>(v);
                  });
}

Axis Axis::workload_modes(std::vector<workload::Mode> modes,
                          std::string name) {
  std::vector<Point> points;
  points.reserve(modes.size());
  for (const auto mode : modes) {
    const std::string label = workload::to_string(mode);
    points.push_back(Point{label, Field::text(label),
                           [mode](ExperimentConfig& config) {
                             config.spec.workload_mode = mode;
                           }});
  }
  return Axis(std::move(name), std::move(points));
}

// ---------------------------------------------------------------------------
// SweepSpec
// ---------------------------------------------------------------------------

SweepSpec SweepSpec::cold_resolution() {
  ExperimentConfig config;
  config.spec.domains = 12;
  config.spec.hosts_per_domain = 2;
  config.spec.providers_per_domain = 2;
  // Tiny cache and TTL: nearly every session resolves, making the mapping
  // resolution term visible.
  config.spec.cache_capacity = 2;
  config.spec.mapping_ttl_seconds = 5;
  config.spec.seed = 2;
  config.traffic.sessions_per_second = 20;
  config.traffic.duration = sim::SimDuration::seconds(30);
  config.traffic.zipf_alpha = 0.7;
  config.drain = sim::SimDuration::seconds(30);
  return SweepSpec(config);
}

SweepSpec SweepSpec::steady_state() {
  ExperimentConfig config;
  config.spec.domains = 16;
  config.spec.hosts_per_domain = 2;
  config.spec.providers_per_domain = 2;
  // Moderate cache/TTL: hit ratios and drop behaviour differentiate the
  // control planes instead of being forced by the configuration.
  config.spec.cache_capacity = 8;
  config.spec.mapping_ttl_seconds = 60;
  config.spec.seed = 8;
  config.traffic.sessions_per_second = 30;
  config.traffic.duration = sim::SimDuration::seconds(30);
  config.drain = sim::SimDuration::seconds(30);
  return SweepSpec(config);
}

SweepSpec& SweepSpec::named(std::string name) {
  name_ = std::move(name);
  return *this;
}

SweepSpec& SweepSpec::base(const std::function<void(ExperimentConfig&)>& fn) {
  fn(base_);
  return *this;
}

SweepSpec& SweepSpec::axis(Axis a) {
  require_fresh_name(a.name());
  groups_.push_back(AxisGroup{{std::move(a)}});
  return *this;
}

SweepSpec& SweepSpec::zip(Axis a) {
  if (groups_.empty()) {
    throw std::logic_error("SweepSpec::zip: no axis to zip with");
  }
  require_fresh_name(a.name());
  auto& group = groups_.back();
  if (a.points().size() != group.size()) {
    throw std::invalid_argument("SweepSpec::zip: axis '" + a.name() + "' has " +
                                std::to_string(a.points().size()) +
                                " points, expected " +
                                std::to_string(group.size()));
  }
  group.axes.push_back(std::move(a));
  return *this;
}

void SweepSpec::require_fresh_name(const std::string& name) const {
  // Axis names key record coordinates (Record::set overwrites by name) and
  // feed the per-point stream-id hash; a duplicate would silently drop the
  // first axis's coordinate and can collide derived seeds.
  for (const auto& group : groups_) {
    for (const auto& existing : group.axes) {
      if (existing.name() == name) {
        throw std::invalid_argument("SweepSpec: duplicate axis name '" + name +
                                    "'");
      }
    }
  }
}

SweepSpec& SweepSpec::tweak(std::function<void(ExperimentConfig&)> fn) {
  tweaks_.push_back(std::move(fn));
  return *this;
}

SweepSpec& SweepSpec::seed_mode(SeedMode mode) {
  seed_mode_ = mode;
  return *this;
}

SweepSpec& SweepSpec::replications(std::size_t n) {
  if (n == 0) {
    throw std::invalid_argument("SweepSpec::replications: n must be >= 1");
  }
  replications_ = n;
  return *this;
}

std::vector<RunPoint> SweepSpec::expand() const {
  std::size_t total = 1;
  for (const auto& group : groups_) total *= group.size();
  // The replica coordinate would shadow (and its stream id collide with) an
  // axis of the same name.
  if (replications_ > 1) require_fresh_name("replica");

  std::vector<RunPoint> points;
  points.reserve(total * replications_);
  std::size_t axis_count = replications_ > 1 ? 1 : 0;
  for (const auto& group : groups_) axis_count += group.axes.size();
  std::vector<std::size_t> radix(groups_.size(), 0);
  for (std::size_t index = 0; index < total; ++index) {
    RunPoint point;
    point.coordinates.reserve(axis_count);
    point.group = index;
    point.config = base_;
    std::uint64_t stream_id = 0;
    for (std::size_t g = 0; g < groups_.size(); ++g) {
      for (const auto& axis : groups_[g].axes) {
        const auto& axis_point = axis.points()[radix[g]];
        axis_point.apply(point.config);
        point.coordinates.emplace_back(axis.name(), axis_point.value);
        if (!point.series.empty()) point.series += " / ";
        point.series += axis_point.label;
        // Order-independent combine (XOR of per-coordinate hashes): the
        // stream id is a function of the coordinate *set*, so reordering
        // axes never changes a point's seed.
        stream_id ^= sim::Rng::splitmix64(fnv1a(axis.name()) ^
                                          sim::Rng::splitmix64(fnv1a(axis_point.label)));
      }
    }
    for (const auto& fn : tweaks_) fn(point.config);
    if (seed_mode_ == SeedMode::kPerPoint) {
      point.config.spec.seed =
          sim::Rng::derive_seed(base_.spec.seed, stream_id);
      // The DFZ adapter path reads its own seed field; keep it in step so
      // per-point seeding means the same thing on both execution paths.
      point.config.dfz.internet.seed = point.config.spec.seed;
    }
    point.seed = point.config.spec.seed;
    // Multi-seed replication: replica 0 keeps the point's seeds, replica
    // r > 0 derives independent streams from them — pure functions of
    // (point seed, r), so unaffected by axis order, filtering, or jobs.
    // The DFZ topology seed derives from its own base, not from
    // spec.seed: the two families stay independently honest even when a
    // config sets one without the other (under kPerPoint they were
    // already equal, so the derived values coincide).
    for (std::size_t r = 0; r < replications_; ++r) {
      RunPoint replica = point;
      replica.index = points.size();
      replica.replica = r;
      if (r > 0) {
        replica.config.spec.seed =
            sim::Rng::derive_seed(point.config.spec.seed, r);
        replica.config.dfz.internet.seed =
            sim::Rng::derive_seed(point.config.dfz.internet.seed, r);
        replica.seed = replica.config.spec.seed;
      }
      if (replications_ > 1) {
        replica.coordinates.emplace_back("replica", Field::integer(r));
      }
      points.push_back(std::move(replica));
    }
    // Advance the mixed-radix counter, last group fastest (so the first
    // axis is the outermost loop, matching the old hand-written nesting).
    for (std::size_t g = groups_.size(); g-- > 0;) {
      if (++radix[g] < groups_[g].size()) break;
      radix[g] = 0;
    }
  }
  return points;
}

// ---------------------------------------------------------------------------
// Probe
// ---------------------------------------------------------------------------

void Probe::on_configured(Experiment& experiment, const RunPoint& point) {
  (void)experiment;
  (void)point;
}

void FailureProbe::on_configured(Experiment& experiment, const RunPoint& point) {
  const FailurePlan& plan = point.config.failure;
  auto& internet = experiment.internet();
  // Order matters for determinism: arm the monitors first, then schedule
  // the outage — the exact sequence the hand-written benches used.
  if (plan.arm_failover) {
    internet.arm_failover(plan.domain, plan.health);
  }
  if (!plan.enabled()) return;
  schedule_ = std::make_unique<sim::FailureSchedule>(internet.network());
  sim::Link& link = *internet.domain(plan.domain).provider_links.at(plan.link);
  switch (plan.mode) {
    case FailurePlan::Mode::kLinkOutage:
      schedule_->link_outage(link, plan.fail_at, plan.outage_duration);
      break;
    case FailurePlan::Mode::kRandomOutages:
      schedule_->random_outages(link, plan.until, plan.mtbf, plan.mttr,
                                sim::Rng(plan.process_seed));
      break;
    case FailurePlan::Mode::kNone:
      break;
  }
}

void FailureProbe::on_finished(Experiment& experiment, const RunPoint& point,
                               Record& record) {
  const FailurePlan& plan = point.config.failure;
  auto& internet = experiment.internet();
  record.set_int("link-down drops",
                 internet.network().counters().drops_link_down);
  if (plan.mode == FailurePlan::Mode::kRandomOutages) {
    record.set_int("outages", schedule_ ? schedule_->outages_injected() : 0);
  }
  if (!plan.arm_failover) return;
  const auto* controller = internet.domain(plan.domain).failover.get();
  if (controller == nullptr) return;
  record.set_int("flows re-pushed", controller->stats().flows_repushed);
  std::uint64_t hellos = 0;
  for (std::size_t i = 0; i < controller->monitor_count(); ++i) {
    hellos += controller->monitor(i).stats().hellos_sent;
  }
  record.set_int("hellos sent", hellos);
  // Detection latency is only well-defined for a permanent outage the
  // monitor actually noticed: after a restore last_transition_at() is the
  // up-transition, and before any detection it is still time zero.
  if (plan.mode == FailurePlan::Mode::kLinkOutage &&
      plan.outage_duration <= sim::SimDuration{} &&
      controller->monitor(plan.link).last_transition_at() > plan.fail_at) {
    record.set_real("bound ms", plan.detect_bound_ms(), 0);
    record.set_real(
        "detect ms",
        (controller->monitor(plan.link).last_transition_at() - plan.fail_at)
            .ms(),
        1);
  }
}

namespace {

/// Adapter wrapping a stateless on_finished lambda as a Probe.
class LambdaProbe final : public Probe {
 public:
  explicit LambdaProbe(
      std::function<void(Experiment&, const RunPoint&, Record&)> fn)
      : fn_(std::move(fn)) {}

  void on_finished(Experiment& experiment, const RunPoint& point,
                   Record& record) override {
    fn_(experiment, point, record);
  }

 private:
  std::function<void(Experiment&, const RunPoint&, Record&)> fn_;
};

}  // namespace

// ---------------------------------------------------------------------------
// ResultSet
// ---------------------------------------------------------------------------

namespace {

/// Record indices per replication group, groups in first-appearance order.
std::vector<std::vector<std::size_t>> replication_groups(
    const std::vector<RunPoint>& points) {
  std::vector<std::size_t> ids;
  std::vector<std::vector<std::size_t>> members;
  for (std::size_t i = 0; i < points.size(); ++i) {
    std::size_t g = ids.size();
    for (std::size_t k = 0; k < ids.size(); ++k) {
      if (ids[k] == points[i].group) {
        g = k;
        break;
      }
    }
    if (g == ids.size()) {
      ids.push_back(points[i].group);
      members.emplace_back();
    }
    members[g].push_back(i);
  }
  return members;
}

bool is_coordinate_of(const RunPoint& point, const std::string& name) {
  for (const auto& [coordinate, value] : point.coordinates) {
    (void)value;
    if (coordinate == name) return true;
  }
  return false;
}

/// The spread of one metric over a group (replicas missing the field —
/// per-arm conditional metrics — are simply left out of the statistic;
/// count() reports how many actually contributed).
metrics::Summary metric_spread(const std::vector<Record>& records,
                                   const std::vector<std::size_t>& members,
                                   const std::string& name) {
  metrics::Summary stat;
  for (const std::size_t i : members) {
    const Field* field = records[i].find(name);
    if (field == nullptr) continue;
    const double v = field->numeric();
    if (!std::isnan(v)) stat.add(v);
  }
  return stat;
}

/// Metric names over a whole group in first-appearance order — the union,
/// not replica 0's set, so a conditional metric the lead run happened to
/// skip still aggregates.
std::vector<std::string> group_metric_names(
    const std::vector<Record>& records,
    const std::vector<std::size_t>& members, const RunPoint& lead) {
  std::vector<std::string> names;
  for (const std::size_t i : members) {
    for (const auto& [name, field] : records[i].fields()) {
      (void)field;
      if (name == "replica" || is_coordinate_of(lead, name)) continue;
      bool seen = false;
      for (const auto& known : names) {
        if (known == name) {
          seen = true;
          break;
        }
      }
      if (!seen) names.push_back(name);
    }
  }
  return names;
}

/// The field to take kind/precision (or a pass-through value) from: the
/// first replica of the group that carries it.
const Field* group_exemplar(const std::vector<Record>& records,
                            const std::vector<std::size_t>& members,
                            const std::string& name) {
  for (const std::size_t i : members) {
    if (const Field* field = records[i].find(name)) return field;
  }
  return nullptr;
}

}  // namespace

ResultSet::ResultSet(std::string name, std::vector<RunPoint> points,
                     std::vector<Record> records)
    : name_(std::move(name)),
      points_(std::move(points)),
      records_(std::move(records)) {
  if (points_.size() != records_.size()) {
    throw std::invalid_argument("ResultSet: points/records size mismatch");
  }
}

bool ResultSet::replicated() const noexcept {
  for (const RunPoint& point : points_) {
    if (point.replica != 0) return true;
  }
  return false;
}

ResultSet ResultSet::aggregate() const {
  if (!replicated()) return *this;
  const auto groups = replication_groups(points_);

  std::vector<RunPoint> points;
  std::vector<Record> records;
  points.reserve(groups.size());
  records.reserve(groups.size());
  for (const auto& members : groups) {
    const std::size_t lead = members.front();
    RunPoint point = points_[lead];
    point.index = points.size();
    std::erase_if(point.coordinates,
                  [](const auto& c) { return c.first == "replica"; });

    Record record;
    for (const auto& [name, field] : records_[lead].fields()) {
      if (is_coordinate_of(points_[lead], name) && name != "replica") {
        record.set(name, field);
      }
    }
    record.set_int("replicas", members.size());
    for (const std::string& name :
         group_metric_names(records_, members, points_[lead])) {
      const Field& field = *group_exemplar(records_, members, name);
      const double v = field.numeric();
      if (std::isnan(v)) {
        record.set(name, field);  // text/bool metric: nothing to average
        continue;
      }
      const auto stat = metric_spread(records_, members, name);
      const int precision = field.precision();
      switch (field.kind()) {
        case Field::Kind::kInt:
          record.set(name + " mean", Field::real(stat.mean(), 2));
          record.set(name + " sd", Field::real(stat.stddev(), 2));
          record.set(name + " min",
                     Field::integer(static_cast<std::uint64_t>(stat.min())));
          record.set(name + " max",
                     Field::integer(static_cast<std::uint64_t>(stat.max())));
          break;
        case Field::Kind::kPercent:
          record.set(name + " mean", Field::percent(stat.mean(), precision));
          record.set(name + " sd", Field::percent(stat.stddev(), precision));
          record.set(name + " min", Field::percent(stat.min(), precision));
          record.set(name + " max", Field::percent(stat.max(), precision));
          break;
        default:
          record.set(name + " mean", Field::real(stat.mean(), precision));
          record.set(name + " sd", Field::real(stat.stddev(), precision));
          record.set(name + " min", Field::real(stat.min(), precision));
          record.set(name + " max", Field::real(stat.max(), precision));
          break;
      }
    }
    points.push_back(std::move(point));
    records.push_back(std::move(record));
  }
  return ResultSet(name_, std::move(points), std::move(records));
}

metrics::Table ResultSet::table() const {
  std::vector<std::string> columns;
  for (const auto& record : records_) {
    for (const auto& [name, field] : record.fields()) {
      (void)field;
      bool known = false;
      for (const auto& column : columns) {
        if (column == name) {
          known = true;
          break;
        }
      }
      if (!known) columns.push_back(name);
    }
  }
  metrics::Table out(columns);
  for (const auto& record : records_) {
    std::vector<std::string> row;
    row.reserve(columns.size());
    for (const auto& column : columns) {
      const Field* field = record.find(column);
      row.push_back(field == nullptr ? "" : field->cell());
    }
    out.add_row(std::move(row));
  }
  return out;
}

metrics::Table ResultSet::pivot(
    const std::string& row_field, const std::string& col_field,
    const std::vector<std::string>& value_fields) const {
  // Distinct row/column labels in first-appearance order.
  std::vector<std::string> row_labels;
  std::vector<std::string> col_labels;
  auto remember = [](std::vector<std::string>& seen, const std::string& label) {
    for (const auto& s : seen) {
      if (s == label) return;
    }
    seen.push_back(label);
  };
  for (const auto& record : records_) {
    const Field* r = record.find(row_field);
    const Field* c = record.find(col_field);
    if (r != nullptr) remember(row_labels, r->cell());
    if (c != nullptr) remember(col_labels, c->cell());
  }

  // A (column label, value field) pair becomes a table column when at least
  // one record of that column group carries the field.
  struct PivotColumn {
    std::string header;
    std::string col_label;
    std::string value_field;
  };
  std::vector<PivotColumn> columns;
  for (const auto& col : col_labels) {
    for (const auto& vf : value_fields) {
      bool present = false;
      for (const auto& record : records_) {
        const Field* c = record.find(col_field);
        if (c != nullptr && c->cell() == col && record.find(vf) != nullptr) {
          present = true;
          break;
        }
      }
      if (!present) continue;
      columns.push_back(PivotColumn{
          value_fields.size() == 1 ? col : col + " " + vf, col, vf});
    }
  }

  std::vector<std::string> headers{row_field};
  for (const auto& column : columns) headers.push_back(column.header);
  metrics::Table out(std::move(headers));
  for (const auto& row : row_labels) {
    std::vector<std::string> cells{row};
    for (const auto& column : columns) {
      std::string cell;
      for (const auto& record : records_) {
        const Field* r = record.find(row_field);
        const Field* c = record.find(col_field);
        if (r == nullptr || c == nullptr) continue;
        if (r->cell() != row || c->cell() != column.col_label) continue;
        const Field* v = record.find(column.value_field);
        if (v != nullptr) cell = v->cell();
        break;
      }
      cells.push_back(std::move(cell));
    }
    out.add_row(std::move(cells));
  }
  return out;
}

void ResultSet::to_json(std::ostream& os) const {
  os << "{";
  json_escape(os, "name");
  os << ": ";
  json_escape(os, name_);
  os << ", ";
  json_escape(os, "points");
  os << ": [";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    if (i > 0) os << ",";
    os << "\n  {";
    json_escape(os, "index");
    os << ": " << points_[i].index << ", ";
    json_escape(os, "seed");
    os << ": " << points_[i].seed << ", ";
    json_escape(os, "series");
    os << ": ";
    json_escape(os, points_[i].series);
    os << ", ";
    json_escape(os, "fields");
    os << ": {";
    bool first = true;
    for (const auto& [name, field] : records_[i].fields()) {
      if (!first) os << ", ";
      first = false;
      json_escape(os, name);
      os << ": ";
      field.to_json(os);
    }
    os << "}}";
  }
  os << "\n]";
  if (replicated()) {
    // Error bars: one entry per replication group, every numeric metric
    // summarised as mean/sd/min/max over its n replicas.
    os << ", ";
    json_escape(os, "aggregates");
    os << ": [";
    const auto groups = replication_groups(points_);
    bool first_group = true;
    for (const auto& members : groups) {
      const std::size_t lead = members.front();
      if (!first_group) os << ",";
      first_group = false;
      os << "\n  {";
      json_escape(os, "series");
      os << ": ";
      json_escape(os, points_[lead].series);
      os << ", ";
      json_escape(os, "group");
      os << ": " << points_[lead].group << ", ";
      json_escape(os, "n");
      os << ": " << members.size() << ", ";
      json_escape(os, "fields");
      os << ": {";
      bool first_field = true;
      for (const std::string& name :
           group_metric_names(records_, members, points_[lead])) {
        const Field* exemplar = group_exemplar(records_, members, name);
        if (exemplar == nullptr || std::isnan(exemplar->numeric())) continue;
        const auto stat = metric_spread(records_, members, name);
        if (!first_field) os << ", ";
        first_field = false;
        json_escape(os, name);
        // Per-field n: conditional metrics may be carried by fewer
        // replicas than the group holds.
        os << ": {\"mean\": " << shortest_double(stat.mean())
           << ", \"sd\": " << shortest_double(stat.stddev())
           << ", \"min\": " << shortest_double(stat.min())
           << ", \"max\": " << shortest_double(stat.max())
           << ", \"n\": " << stat.count() << "}";
      }
      os << "}}";
    }
    os << "\n]";
  }
  os << "}\n";
}

void ResultSet::to_csv(std::ostream& os) const { table().to_csv(os); }

bool operator==(const ResultSet& a, const ResultSet& b) noexcept {
  if (a.name_ != b.name_ || a.records_ != b.records_) return false;
  if (a.points_.size() != b.points_.size()) return false;
  for (std::size_t i = 0; i < a.points_.size(); ++i) {
    if (a.points_[i].index != b.points_[i].index ||
        a.points_[i].seed != b.points_[i].seed ||
        a.points_[i].series != b.points_[i].series) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

Runner& Runner::probe(
    std::function<void(Experiment&, const RunPoint&, Record&)> fn) {
  require_no_executor();
  probe_factories_.push_back([fn]() -> std::unique_ptr<Probe> {
    return std::make_unique<LambdaProbe>(fn);
  });
  return *this;
}

Runner& Runner::probe_factory(std::function<std::unique_ptr<Probe>()> factory) {
  require_no_executor();
  probe_factories_.push_back(std::move(factory));
  return *this;
}

Runner& Runner::execute(std::function<void(const RunPoint&, Record&)> executor) {
  // Probes only fire on the default Experiment path; mixing the two would
  // silently drop the probes' fields.
  if (!probe_factories_.empty()) {
    throw std::logic_error(
        "Runner::execute: probes are already registered; a custom executor "
        "replaces the probe path entirely");
  }
  executor_ = std::move(executor);
  return *this;
}

void Runner::require_no_executor() const {
  if (executor_) {
    throw std::logic_error(
        "Runner::probe: a custom executor is set; probes would never run");
  }
}

ResultSet Runner::run(const RunOptions& options) const {
  std::vector<RunPoint> points = spec_.expand();
  if (!options.filter.empty()) {
    const std::string needle = ascii_lower(options.filter);
    std::vector<RunPoint> kept;
    for (auto& point : points) {
      // Match the series label OR the point's resolved control-plane name
      // (both case-insensitively), so "--filter PCE" selects PCE points
      // even when the axis uses short labels or the plane is pinned in the
      // base config (single-point series have an empty series label and
      // match only this way).  On the executor path spec.kind is
      // meaningless (the study builds its own world), so only the series
      // label counts there.
      const bool kind_match =
          !executor_ && ascii_lower(topo::to_string(point.config.spec.kind))
                                .find(needle) != std::string::npos;
      if (ascii_lower(point.series).find(needle) != std::string::npos ||
          kind_match) {
        kept.push_back(std::move(point));
      }
    }
    points = std::move(kept);
  }

  // Copy-on-write world snapshots: while these scopes are alive, points
  // sharing a topology shape fork prebuilt immutable state — the synthetic
  // AS graph (DFZ executors) and the topo name/address tables — instead of
  // rebuilding it per point.  The snapshots are shared across worker
  // threads; both caches build under their lock, so concurrent workers
  // wait for the first build rather than duplicating it.
  routing::SyntheticInternetScope graph_scope;
  topo::BlueprintScope blueprint_scope;

  std::vector<Record> records(points.size());
  std::vector<std::exception_ptr> errors(points.size());

  auto run_point = [&](std::size_t i) {
    try {
      Record record;
      record.reserve(points[i].coordinates.size() + 16);  // + typical metrics
      for (const auto& [name, value] : points[i].coordinates) {
        record.set(name, value);
      }
      if (executor_) {
        executor_(points[i], record);
      } else {
        std::vector<std::unique_ptr<Probe>> probes;
        probes.reserve(probe_factories_.size());
        for (const auto& factory : probe_factories_) probes.push_back(factory());
        Experiment experiment(points[i].config);
        for (auto& p : probes) p->on_configured(experiment, points[i]);
        experiment.run();
        for (auto& p : probes) p->on_finished(experiment, points[i], record);
      }
      records[i] = std::move(record);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  };

  const std::size_t jobs =
      std::max<std::size_t>(1, std::min(options.jobs, points.size()));
  if (jobs <= 1) {
    for (std::size_t i = 0; i < points.size(); ++i) run_point(i);
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> workers;
    workers.reserve(jobs);
    for (std::size_t w = 0; w < jobs; ++w) {
      workers.emplace_back([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= points.size()) return;
          run_point(i);
        }
      });
    }
    for (auto& worker : workers) worker.join();
  }

  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return ResultSet(spec_.name(), std::move(points), std::move(records));
}

}  // namespace lispcp::scenario
