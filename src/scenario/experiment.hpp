// experiment.hpp — one-call experiment harness.
//
// Builds an Internet from a spec, drives a session workload over it, and
// summarises the quantities every bench reports: session outcomes, the
// latency histograms of the paper's formulas, and the ITR mapping-miss
// counters of claim (i).  Benches that need bespoke measurement (TE link
// utilization, step timelines) use the Internet directly; this harness
// covers the common comparative runs.
#pragma once

#include <memory>

#include "topo/internet.hpp"
#include "workload/generator.hpp"

namespace lispcp::scenario {

/// Who talks to whom.
enum class TrafficMode {
  kSingleSource,  ///< domain 0's hosts open sessions to all other domains
  kAllToAll,      ///< every domain's hosts open sessions to every other
};

struct ExperimentConfig {
  topo::InternetSpec spec;
  workload::TrafficConfig traffic;
  TrafficMode mode = TrafficMode::kSingleSource;
  /// Idle time after the arrival process ends, letting handshakes and
  /// retransmissions finish before counters are read.
  sim::SimDuration drain = sim::SimDuration::seconds(20);
};

struct ExperimentSummary {
  std::uint64_t sessions = 0;
  std::uint64_t established = 0;
  std::uint64_t completed = 0;
  std::uint64_t dns_failures = 0;
  std::uint64_t connect_failures = 0;
  std::uint64_t syn_retransmissions = 0;
  std::uint64_t sessions_with_retransmission = 0;
  std::uint64_t miss_events = 0;
  std::uint64_t miss_drops = 0;
  std::uint64_t encapsulated = 0;

  double t_dns_mean_ms = 0.0;
  double t_dns_p95_ms = 0.0;
  double t_setup_mean_ms = 0.0;
  double t_setup_p50_ms = 0.0;
  double t_setup_p95_ms = 0.0;
  double t_setup_p99_ms = 0.0;

  [[nodiscard]] double first_packet_loss_rate() const noexcept {
    return sessions == 0 ? 0.0
                         : static_cast<double>(sessions_with_retransmission) /
                               static_cast<double>(sessions);
  }
};

class Experiment {
 public:
  explicit Experiment(ExperimentConfig config);

  /// Runs the arrival process plus drain; returns the summary.
  ExperimentSummary run();

  [[nodiscard]] topo::Internet& internet() noexcept { return *internet_; }
  [[nodiscard]] ExperimentSummary summary() const;

 private:
  ExperimentConfig config_;
  std::unique_ptr<topo::Internet> internet_;
  std::vector<std::unique_ptr<workload::TrafficGenerator>> generators_;
};

}  // namespace lispcp::scenario
