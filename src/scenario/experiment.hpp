// experiment.hpp — one-call experiment harness.
//
// Builds an Internet from a spec, drives a session workload over it, and
// summarises the quantities every bench reports: session outcomes, the
// latency histograms of the paper's formulas, and the ITR mapping-miss
// counters of claim (i).  Benches that need bespoke measurement (TE link
// utilization, step timelines) use the Internet directly; this harness
// covers the common comparative runs.
#pragma once

#include <memory>

#include "routing/dfz_study.hpp"
#include "topo/internet.hpp"
#include "workload/aggregate.hpp"
#include "workload/generator.hpp"
#include "workload/traffic.hpp"

namespace lispcp::scenario {

/// Who talks to whom.
enum class TrafficMode {
  kSingleSource,  ///< domain 0's hosts open sessions to all other domains
  kAllToAll,      ///< every domain's hosts open sessions to every other
};

/// Declarative failure-injection plan, executed by scenario::FailureProbe
/// (sweep.hpp) between topology construction and the workload run.  Living
/// in the config — rather than in bench driver code — makes outage timing,
/// the renewal process, and the BFD detection parameters sweepable axes
/// like any other knob (see bench/a4_failure_recovery).
struct FailurePlan {
  enum class Mode {
    kNone,           ///< no injection (the reference arm)
    kLinkOutage,     ///< one provider-link outage at `fail_at`
    kRandomOutages,  ///< renewal outage process until `until`
  };
  Mode mode = Mode::kNone;
  std::size_t domain = 0;  ///< domain whose provider link fails
  std::size_t link = 0;    ///< border-link index within that domain

  // kLinkOutage: down at `fail_at`, restored `outage_duration` later
  // (<= 0 keeps the link down for good).
  sim::SimTime fail_at;
  sim::SimDuration outage_duration;

  // kRandomOutages: Exponential(mtbf) up-times / Exponential(mttr)
  // down-times until `until`, deterministic per `process_seed`.
  sim::SimTime until;
  sim::SimDuration mtbf = sim::SimDuration::seconds(10);
  sim::SimDuration mttr = sim::SimDuration::seconds(3);
  std::uint64_t process_seed = 77;

  /// Arm the domain's FailoverController (BFD-style monitors + Step-7b
  /// re-push recovery) with `health` before the run.
  bool arm_failover = false;
  core::LinkHealthConfig health;

  [[nodiscard]] bool enabled() const noexcept { return mode != Mode::kNone; }
  /// The analytic detection-latency bound for `health`:
  /// hello_interval * down_threshold + reply_timeout + one hello period.
  [[nodiscard]] double detect_bound_ms() const noexcept {
    return health.hello_interval.ms() * health.down_threshold +
           health.reply_timeout.ms() + health.hello_interval.ms();
  }
};

struct ExperimentConfig {
  topo::InternetSpec spec;
  workload::TrafficConfig traffic;
  TrafficMode mode = TrafficMode::kSingleSource;
  /// Idle time after the arrival process ends, letting handshakes and
  /// retransmissions finish before counters are read.
  sim::SimDuration drain = sim::SimDuration::seconds(20);
  /// Failure injection applied by scenario::FailureProbe (none by default).
  FailurePlan failure;
  /// The BGP DFZ-study section: consumed by the scenario::dfz adapter's
  /// executors (which build routing::run_dfz_study's three-tier Internet
  /// instead of an Experiment).  Ignored by the Experiment path.
  routing::DfzStudyConfig dfz;
};

struct ExperimentSummary {
  std::uint64_t sessions = 0;
  std::uint64_t established = 0;
  std::uint64_t completed = 0;
  std::uint64_t dns_failures = 0;
  std::uint64_t connect_failures = 0;
  std::uint64_t syn_retransmissions = 0;
  std::uint64_t sessions_with_retransmission = 0;
  std::uint64_t miss_events = 0;
  std::uint64_t miss_drops = 0;
  std::uint64_t encapsulated = 0;

  double t_dns_mean_ms = 0.0;
  double t_dns_p95_ms = 0.0;
  double t_setup_mean_ms = 0.0;
  double t_setup_p50_ms = 0.0;
  double t_setup_p95_ms = 0.0;
  double t_setup_p99_ms = 0.0;

  [[nodiscard]] double first_packet_loss_rate() const noexcept {
    return sessions == 0 ? 0.0
                         : static_cast<double>(sessions_with_retransmission) /
                               static_cast<double>(sessions);
  }
};

class Experiment {
 public:
  explicit Experiment(ExperimentConfig config);

  /// Runs the arrival process plus drain; returns the summary.
  ExperimentSummary run();

  [[nodiscard]] topo::Internet& internet() noexcept { return *internet_; }
  [[nodiscard]] ExperimentSummary summary() const;

  /// The workload engines behind the seam (one per source domain); which
  /// engine was built follows spec.workload_mode.
  [[nodiscard]] const std::vector<std::unique_ptr<workload::Traffic>>&
  traffic() const noexcept {
    return generators_;
  }

 private:
  ExperimentConfig config_;
  std::unique_ptr<topo::Internet> internet_;
  std::vector<std::unique_ptr<workload::Traffic>> generators_;
};

}  // namespace lispcp::scenario
