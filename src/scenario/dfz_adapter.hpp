// dfz_adapter.hpp — runs the BGP DFZ studies as sweep points.
//
// The F2 experiments (routing/dfz_study.hpp) build their own three-tier
// synthetic Internet and converge a BGP-lite mesh over it — there is no
// Experiment, no Simulator workload, nothing the default Runner path knows
// how to drive.  This adapter closes the gap so the DFZ benches get the
// same declarative treatment as everything else:
//
//   * axes over the DFZ section of ExperimentConfig (addressing scenario,
//     stub-site count — a topology-size axis — and the de-aggregation
//     factor), and
//   * executors for Runner::execute that run the convergence study or the
//     re-homing churn event for a point and write its typed Record fields
//     (DFZ table size, mean/max RIB, update messages, convergence time).
//
// Bench f2 composes these; tests/test_sweep_axes.cpp round-trips the
// records through the JSON sink.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "routing/dfz_study.hpp"
#include "scenario/sweep.hpp"

namespace lispcp::scenario::dfz {

/// Addressing-scenario axis: legacy BGP (stub prefixes in the DFZ) vs the
/// Loc/ID split (RLOC aggregates only).  Labels are the routing layer's
/// to_string names, so tables read like the paper's.
[[nodiscard]] Axis scenarios(std::string name = "scenario");

/// Topology-size axis over the synthetic Internet's stub-site count.
[[nodiscard]] Axis stub_sites(std::vector<std::uint64_t> values,
                              std::string name = "stub sites");

/// De-aggregation-factor axis (§3's Latin-America observation).
[[nodiscard]] Axis deaggregation(std::vector<std::uint64_t> values,
                                 std::string name = "deagg");

/// Base-config mutation for SweepSpec::base: partitions every point's BGP
/// convergence run across `shards` RIB shards (the sharded convergence
/// engine; records are byte-identical for any value — only wall-clock
/// changes).  `workers` caps each point's engine threads (0 = all cores);
/// benches pass BenchContext::shard_workers() so --jobs and --shards
/// share the host instead of multiplying.  The f benches wire the
/// --shards CLI flag through this.
[[nodiscard]] std::function<void(ExperimentConfig&)> sharded(
    std::size_t shards, std::size_t workers = 0);

/// Runner executor: origination-to-convergence for the point's DFZ config.
/// Fields: "DFZ table", "mean RIB", "max RIB", "updates", "route records",
/// "converge ms", "mapping entries".
void run_study(const RunPoint& point, Record& record);

/// Runner executor: the post-convergence re-homing churn event.  Fields:
/// "updates", "route records", "ASes touched", "settle ms".
void run_churn(const RunPoint& point, Record& record);

// ---------------------------------------------------------------------------
// Churn soak (routing::ChurnPlan): sustained flapping over simulated days
// ---------------------------------------------------------------------------

/// Base-config mutation: make every churn plan re-measure each event
/// against a freshly rebuilt world (ChurnPlan::full_replay) instead of the
/// incremental long-lived fabric.  Measures are byte-identical for
/// state-restoring plans — the CI parity leg diffs the two modes.
[[nodiscard]] std::function<void(ExperimentConfig&)> full_replay();

/// Soak-size axis: number of whole-site flaps in the plan
/// (config.dfz.soak.flaps; the plan itself derives from the point's
/// internet seed, so replications() sweeps distinct flap sequences).
[[nodiscard]] Axis soak_flaps(std::vector<std::uint64_t> values,
                              std::string name = "flaps");

/// Runner executor: converge once, then run the point's generated flap
/// plan incrementally (routing::run_churn_plan).  Fields: "flaps",
/// "updates", "route records", "updates/flap", "records/flap",
/// "settle ms", "max settle ms", "engine events", "sim days".
void run_soak(const RunPoint& point, Record& record);

// ---------------------------------------------------------------------------
// Policy layer (routing/policy.hpp): roles, incidents, containment
// ---------------------------------------------------------------------------

/// Base-config mutation: attach the Gao-Rexford role table to every BGP
/// session (config.dfz.policy.roles).  Required by run_policy_event; also
/// usable on the plain study to pin roles-on/policy-off record parity.
[[nodiscard]] std::function<void(ExperimentConfig&)> roles_enabled();

/// Policy-incident axis over PolicyEvent kinds (hijacks, route leak, the
/// de-aggregation TE variants).  Labels are the routing layer's to_string
/// names ("hijack-more-specific", ...).
[[nodiscard]] Axis policy_events(std::vector<routing::PolicyEvent::Kind> kinds,
                                 std::string name = "event");

/// Containment axis: fraction of transits applying IRR-style strict
/// customer-origin import filters (policy.filtered_transit_fraction).
[[nodiscard]] Axis filtered_transits(std::vector<double> fractions,
                                     std::string name = "filtered");

/// Event split-factor axis (PolicyEvent::deagg_factor, relative to the
/// study's base de-aggregation factor).
[[nodiscard]] Axis event_deagg(std::vector<std::uint64_t> values,
                               std::string name = "event deagg");

/// Runner executor: converge, apply the point's PolicyEvent, reconverge
/// (routing::run_policy_event).  Fields: "DFZ before", "DFZ after",
/// "updates", "route records", "settle ms", "ASes touched",
/// "announcements", "RIB delta", "RIB/ann", "churn/ann", "captured ASes",
/// "captured".
void run_policy_event(const RunPoint& point, Record& record);

}  // namespace lispcp::scenario::dfz
