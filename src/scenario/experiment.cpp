#include "scenario/experiment.hpp"

#include <stdexcept>

namespace lispcp::scenario {

namespace {

/// Assembles the flow-aggregate engine's view of the built topology for one
/// source domain.  Everything the closed-form session model needs — path
/// delays, DNS leg costs, provider links, miss policy — is read off the
/// *actual* Internet, so the engine has no topology assumptions of its own.
/// Two Dijkstra sweeps (client root, resolver root) amortize the per-peer
/// path queries; per-pair Network::path_delay would be quadratic at 10k
/// domains.
workload::AggregateWorld build_aggregate_world(topo::Internet& net,
                                               std::size_t source) {
  workload::AggregateWorld world;
  world.sim = &net.sim();
  world.metrics = &net.metrics();

  auto& network = net.network();
  const auto& spec = net.spec();
  auto& src = net.domain(source);

  lisp::TunnelRouter* front = src.xtrs.front();
  const bool lisp = front->config().itr_role;
  if (lisp) {
    world.itr = front;
    world.miss_policy = front->config().miss_policy;
    world.queue_capacity_per_eid = front->config().queue_capacity_per_eid;
    // Encap at the ITR plus decap at the ETR, per crossing direction.
    world.xtr_crossing_delay = 2 * front->config().processing_delay;
  }
  world.source_irc = src.irc.get();
  world.pce_push = src.control_plane != nullptr && spec.pce_snoop;
  for (std::size_t j = 0; j < src.xtrs.size(); ++j) {
    world.uplinks.push_back(workload::AggregateWorld::Uplink{
        src.provider_links[j], src.xtrs[j]->id(), src.xtrs[j],
        src.xtrs[j]->rloc()});
  }

  const workload::HostConfig host_defaults;  // what build_domain installs
  world.syn_rto = host_defaults.syn_rto;
  world.max_syn_retries = host_defaults.max_syn_retries;
  world.wire.data_packets = host_defaults.data_packets;
  world.wire.data_packet_bytes = host_defaults.data_packet_bytes;
  world.wire.response_packet_bytes = host_defaults.response_packet_bytes;
  world.wire.lisp_encapsulated = lisp;

  // DNS model: warm resolution plus the per-tier iterative legs, all read
  // off the real node placement (so a PCE interposed in the DNS path is
  // included via its attachment links).
  const auto from_client =
      network.path_delays_from(src.hosts.front()->id());
  const auto from_resolver = network.path_delays_from(src.resolver->id());
  const auto leg = [&](const std::vector<std::optional<sim::SimDuration>>& spt,
                       sim::NodeId to, sim::SimDuration processing) {
    const auto& d = spt.at(to.value());
    if (!d.has_value()) {
      throw std::logic_error("aggregate world: disconnected DNS path");
    }
    return 2 * *d + processing;
  };
  world.dns_warm = leg(from_client, src.resolver->id(),
                       src.resolver->config().processing_delay);
  world.dns_leg_root =
      leg(from_resolver, net.root_dns().id(), net.root_dns().processing_delay());
  world.dns_leg_tld =
      leg(from_resolver, net.tld_dns().id(), net.tld_dns().processing_delay());

  std::vector<std::uint32_t> peer_of_domain(spec.domains, 0);
  for (std::size_t d = 0; d < spec.domains; ++d) {
    if (d == source) continue;
    auto& dom = net.domain(d);
    workload::AggregateWorld::Peer peer;
    peer.xtr = lisp ? dom.xtrs.front() : nullptr;
    peer.irc = dom.irc.get();
    const auto& owd = from_client.at(dom.hosts.front()->id().value());
    if (!owd.has_value()) {
      throw std::logic_error("aggregate world: disconnected domain");
    }
    peer.owd = *owd;
    peer.dns_leg_auth = leg(from_resolver, dom.authoritative->id(),
                            dom.authoritative->processing_delay());
    if (src.pce != nullptr && dom.pce != nullptr) {
      // Step-6 interception: the authoritative answer detours through the
      // remote PCE's encapsulation and the local PCE's port-P relay.
      peer.dns_leg_auth += src.pce->config().processing_delay +
                           dom.pce->config().processing_delay;
    }
    peer_of_domain[d] = static_cast<std::uint32_t>(world.peers.size());
    world.peers.push_back(std::move(peer));
  }

  // Destination ranks mirror Internet::destination_names: interleaved
  // host-major so Zipf skew spreads over sites identically in both modes.
  for (std::size_t h = 0; h < spec.hosts_per_domain; ++h) {
    for (std::size_t d = 0; d < spec.domains; ++d) {
      if (d == source) continue;
      workload::AggregateWorld::Destination dest;
      dest.peer = peer_of_domain[d];
      dest.eid = net.host_eid(d, h);
      const lisp::MapEntry* best = nullptr;
      for (const auto& entry : net.domain(d).registered_entries) {
        if (entry.eid_prefix.contains(dest.eid) &&
            (best == nullptr ||
             entry.eid_prefix.length() > best->eid_prefix.length())) {
          best = &entry;
        }
      }
      dest.registered_prefix =
          best != nullptr ? best->eid_prefix : net.domain(d).eid_prefix;
      world.destinations.push_back(dest);
    }
  }
  return world;
}

std::unique_ptr<workload::Traffic> make_traffic(topo::Internet& net,
                                                std::size_t source,
                                                const workload::TrafficConfig& cfg,
                                                sim::Rng rng) {
  if (net.spec().workload_mode == workload::Mode::kAggregate) {
    return std::make_unique<workload::FlowAggregateEngine>(
        build_aggregate_world(net, source), cfg, std::move(rng));
  }
  return std::make_unique<workload::TrafficGenerator>(
      net.sim(), net.domain(source).hosts, net.destination_names(source), cfg,
      std::move(rng));
}

}  // namespace

Experiment::Experiment(ExperimentConfig config) : config_(std::move(config)) {
  internet_ = std::make_unique<topo::Internet>(config_.spec);

  auto& net = *internet_;
  sim::Rng seeder(config_.spec.seed ^ 0x9e3779b97f4a7c15ull);

  if (config_.mode == TrafficMode::kSingleSource) {
    generators_.push_back(make_traffic(net, 0, config_.traffic, seeder.fork()));
  } else {
    // Split the aggregate rate evenly over the sending domains.
    workload::TrafficConfig per_domain = config_.traffic;
    per_domain.sessions_per_second =
        config_.traffic.sessions_per_second /
        static_cast<double>(config_.spec.domains);
    if (config_.traffic.max_sessions != 0) {
      per_domain.max_sessions =
          config_.traffic.max_sessions / config_.spec.domains;
    }
    for (std::size_t d = 0; d < config_.spec.domains; ++d) {
      generators_.push_back(make_traffic(net, d, per_domain, seeder.fork()));
    }
  }
}

ExperimentSummary Experiment::run() {
  for (auto& generator : generators_) generator->start();
  internet_->sim().run_until(internet_->sim().now() + config_.traffic.duration +
                             config_.drain);
  return summary();
}

ExperimentSummary Experiment::summary() const {
  const auto& m = internet_->metrics();
  ExperimentSummary s;
  s.sessions = m.sessions_started();
  s.established = m.established();
  s.completed = m.completed();
  s.dns_failures = m.dns_failures();
  s.connect_failures = m.connect_failures();
  s.syn_retransmissions = m.syn_retransmissions();
  s.sessions_with_retransmission = m.sessions_with_retransmission();
  s.miss_events = internet_->total_miss_events();
  s.miss_drops = internet_->total_miss_drops();
  s.encapsulated = internet_->total_encapsulated();
  s.t_dns_mean_ms = m.t_dns().mean() / 1000.0;
  s.t_dns_p95_ms = m.t_dns().p95() / 1000.0;
  s.t_setup_mean_ms = m.t_setup().mean() / 1000.0;
  s.t_setup_p50_ms = m.t_setup().p50() / 1000.0;
  s.t_setup_p95_ms = m.t_setup().p95() / 1000.0;
  s.t_setup_p99_ms = m.t_setup().p99() / 1000.0;
  return s;
}

}  // namespace lispcp::scenario
