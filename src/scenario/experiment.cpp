#include "scenario/experiment.hpp"

namespace lispcp::scenario {

Experiment::Experiment(ExperimentConfig config) : config_(std::move(config)) {
  internet_ = std::make_unique<topo::Internet>(config_.spec);

  auto& net = *internet_;
  sim::Rng seeder(config_.spec.seed ^ 0x9e3779b97f4a7c15ull);

  if (config_.mode == TrafficMode::kSingleSource) {
    generators_.push_back(std::make_unique<workload::TrafficGenerator>(
        net.sim(), net.domain(0).hosts, net.destination_names(0),
        config_.traffic, seeder.fork()));
  } else {
    // Split the aggregate rate evenly over the sending domains.
    workload::TrafficConfig per_domain = config_.traffic;
    per_domain.sessions_per_second =
        config_.traffic.sessions_per_second /
        static_cast<double>(config_.spec.domains);
    if (config_.traffic.max_sessions != 0) {
      per_domain.max_sessions =
          config_.traffic.max_sessions / config_.spec.domains;
    }
    for (std::size_t d = 0; d < config_.spec.domains; ++d) {
      generators_.push_back(std::make_unique<workload::TrafficGenerator>(
          net.sim(), net.domain(d).hosts, net.destination_names(d), per_domain,
          seeder.fork()));
    }
  }
}

ExperimentSummary Experiment::run() {
  for (auto& generator : generators_) generator->start();
  internet_->sim().run_until(internet_->sim().now() + config_.traffic.duration +
                             config_.drain);
  return summary();
}

ExperimentSummary Experiment::summary() const {
  const auto& m = internet_->metrics();
  ExperimentSummary s;
  s.sessions = m.sessions_started();
  s.established = m.established();
  s.completed = m.completed();
  s.dns_failures = m.dns_failures();
  s.connect_failures = m.connect_failures();
  s.syn_retransmissions = m.syn_retransmissions();
  s.sessions_with_retransmission = m.sessions_with_retransmission();
  s.miss_events = internet_->total_miss_events();
  s.miss_drops = internet_->total_miss_drops();
  s.encapsulated = internet_->total_encapsulated();
  s.t_dns_mean_ms = m.t_dns().mean() / 1000.0;
  s.t_dns_p95_ms = m.t_dns().p95() / 1000.0;
  s.t_setup_mean_ms = m.t_setup().mean() / 1000.0;
  s.t_setup_p50_ms = m.t_setup().p50() / 1000.0;
  s.t_setup_p95_ms = m.t_setup().p95() / 1000.0;
  s.t_setup_p99_ms = m.t_setup().p99() / 1000.0;
  return s;
}

}  // namespace lispcp::scenario
