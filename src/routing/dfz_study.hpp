// dfz_study.hpp — quantifying the paper's §1 premise on the BGP substrate.
//
// "The scaling benefits arise when EID addresses are not routable through
// the Internet — only the RLOCs are globally routable [2]."  This harness
// measures exactly that, on the same synthetic Internet, under two
// addressing scenarios:
//
//   kLegacyBgp   — every stub site injects its provider-independent prefix
//                  (times the de-aggregation factor, §3) into BGP, as the
//                  pre-LISP Internet does;
//   kLispRlocOnly — only providers announce their RLOC aggregates; stub EID
//                  blocks go to the LISP mapping system instead and never
//                  appear in a DFZ table.
//
// Outputs per run: DFZ table size (tier-1 Loc-RIB), mean/max RIB over all
// ASes, total update messages and route records to converge, convergence
// time, and — for the LISP scenario — how many entries moved into the
// mapping system.  A second harness measures re-homing churn: the update
// storm when one multihomed stub swings between providers (the event the
// paper's IRC/TE engine triggers on), legacy vs LISP.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/ipv4.hpp"
#include "routing/as_graph.hpp"
#include "routing/bgp.hpp"

namespace lispcp::routing {

enum class AddressingScenario : std::uint8_t { kLegacyBgp, kLispRlocOnly };

[[nodiscard]] std::string to_string(AddressingScenario scenario);

/// A declarative post-convergence policy scenario on the DFZ substrate.
/// Each kind is the textbook incident the policy layer exists to model:
///
///   kHijackMoreSpecific — the actor originates more-specifics of the
///       victim's block (split by deagg_factor); longest-prefix match pulls
///       traffic everywhere the announcement survives import filters.
///   kHijackSameSpecific — the actor originates the victim's exact
///       prefixes; capture is decided by the decision process, so it stays
///       distance-limited.  The paper-facing contrast with the above.
///   kRouteLeak — the actor (a multihomed stub) drops the valley-free gate
///       toward its last provider and refreshes the session, re-exporting
///       provider-learned routes upward (the classic type-1 leak).
///   kSelectiveDeagg — the victim splits its block and announces the
///       more-specifics toward ONE provider only (export maps deny them on
///       the other sessions): the paper's claim-(iii) TE knob, now with a
///       realistic per-announcement RIB/churn cost.
///   kBroadcastDeagg — the same split announced to every provider; the
///       baseline that prices what "selective" saves.
struct PolicyEvent {
  enum class Kind : std::uint8_t {
    kNone,
    kHijackMoreSpecific,
    kHijackSameSpecific,
    kRouteLeak,
    kSelectiveDeagg,
    kBroadcastDeagg,
  };
  Kind kind = Kind::kNone;
  /// Stub index owning the affected prefix block.
  std::size_t victim_stub = 0;
  /// Stub index of the attacker/leaker; SIZE_MAX = the last stub.
  std::size_t actor_stub = static_cast<std::size_t>(-1);
  /// More-specific split factor for the hijack/de-aggregation events,
  /// relative to the study's base deaggregation_factor.  Power of two.
  std::size_t deagg_factor = 2;
};

[[nodiscard]] std::string to_string(PolicyEvent::Kind kind);

/// Policy section of the DFZ study.  `roles` attaches the Gao-Rexford
/// table (policy::PolicyTable::gao_rexford) to every speaker — required by
/// run_policy_event.  `filtered_transit_fraction` puts IRR-style strict
/// customer-origin import prefix-lists on the stub sessions of the first
/// ceil(fraction * transit_count) transits: the containment knob the F2e
/// hijack series sweeps.
struct PolicyStudyConfig {
  bool roles = false;
  double filtered_transit_fraction = 0.0;
  PolicyEvent event;
};

/// Parameters of the generated flap plan behind the F2f/F2g churn-soak
/// series (run via the dfz adapter's run_soak executor): `flaps` events
/// drawn over the stub population with exponential inter-arrival spacing,
/// so a thousand flaps at the 120 s default mean spread over simulated
/// days.  `full_replay` switches run_churn_plan to the marginal-cost
/// baseline (rebuild + re-converge the world per event); records are
/// byte-identical for state-restoring plans — the CI parity diff.
struct ChurnSoakConfig {
  std::size_t flaps = 0;
  sim::SimDuration mean_spacing = sim::SimDuration::seconds(120);
  /// Down-time between the withdrawal settling and the re-announcement.
  sim::SimDuration hold = sim::SimDuration::seconds(30);
  bool full_replay = false;
};

struct DfzStudyConfig {
  SyntheticInternetConfig internet;
  AddressingScenario scenario = AddressingScenario::kLegacyBgp;
  /// §3: each stub splits its site block into this many more-specifics
  /// ("the world's largest IPv4 de-aggregation factor").  Power of two.
  std::size_t deaggregation_factor = 1;
  BgpConfig bgp;
  PolicyStudyConfig policy;
  ChurnSoakConfig soak;
};

struct DfzStudyResult {
  std::size_t dfz_table_size = 0;       ///< tier-1 Loc-RIB entries
  double mean_rib_size = 0.0;           ///< over every AS
  std::size_t max_rib_size = 0;
  std::uint64_t update_messages = 0;    ///< MRAI flushes to converge
  std::uint64_t route_records = 0;      ///< announce records to converge
  double convergence_ms = 0.0;
  std::size_t mapping_system_entries = 0;  ///< EID prefixes kept out of BGP
  std::size_t bgp_origin_prefixes = 0;     ///< prefixes actually injected
};

/// Runs origination-to-convergence for the configured scenario.
[[nodiscard]] DfzStudyResult run_dfz_study(const DfzStudyConfig& config);

struct RehomingChurnResult {
  /// Update messages and route records triggered network-wide by one stub
  /// moving its traffic between providers.
  std::uint64_t update_messages = 0;
  std::uint64_t route_records = 0;
  double settle_ms = 0.0;
  /// ASes whose Loc-RIB changed at least once during the event.
  std::size_t ases_touched = 0;
};

/// After convergence, re-homes one multihomed stub (legacy: withdraw +
/// re-announce its prefixes; LISP: a mapping-system update that touches no
/// BGP speaker) and measures the churn.  The contrast is the paper's TE
/// argument: with LISP+PCE, moving ingress traffic is a mapping push, not a
/// BGP event.
[[nodiscard]] RehomingChurnResult run_rehoming_churn(const DfzStudyConfig& config);

struct PolicyEventResult {
  std::size_t dfz_table_before = 0;   ///< tier-1 Loc-RIB pre-event
  std::size_t dfz_table_after = 0;
  std::uint64_t update_messages = 0;  ///< event-triggered MRAI flushes
  std::uint64_t route_records = 0;    ///< announce+withdraw records
  double settle_ms = 0.0;
  std::size_t ases_touched = 0;       ///< Loc-RIB changed during the event
  /// Route records the event itself injected (hijack/TE originations, or
  /// the leaked session's refresh size) — the denominator of the
  /// per-announcement costs.
  std::size_t event_announcements = 0;
  /// Network-wide Loc-RIB growth, total and per injected announcement: the
  /// realistic cost model for de-aggregation TE.
  std::size_t rib_delta = 0;
  double rib_cost_per_announcement = 0.0;
  double churn_per_announcement = 0.0;
  /// ASes whose post-event best route for a probe prefix prefers the
  /// actor (hijack: actor-originated; leak: path through the leaker;
  /// TE: path through the chosen provider), and the fraction of all ASes.
  std::size_t ases_preferring_actor = 0;
  double actor_preference_fraction = 0.0;
};

/// Converges the study with Gao-Rexford roles attached, applies the
/// configured PolicyEvent, reconverges, and measures the event's blast
/// radius.  Requires config.policy.roles, a kLegacyBgp scenario, and an
/// event kind != kNone (throws std::invalid_argument otherwise).
/// Deterministic for any shard/worker count, like every study here.
/// Thin wrapper over run_churn_plan with a single kPolicyIncident event.
[[nodiscard]] PolicyEventResult run_policy_event(const DfzStudyConfig& config);

// ---------------------------------------------------------------------------
// Unified churn surface: one declarative event vocabulary for everything
// that perturbs a converged DFZ.  The former hand-rolled flap loops and
// run_policy_event's direct speaker pokes all execute through
// run_churn_plan, which mutates the world exclusively via BgpFabric::apply
// (RouteDelta batches — the fabric's sole mutation entry point).
// ---------------------------------------------------------------------------

/// One post-convergence churn event.
///
///   kFlap           — the subject prefixes go down (converge), stay down
///                     for `hold`, come back (converge): the paper's §1
///                     churn unit, whose amortised cost the soak measures.
///   kRehome         — the §2 ingress-TE swing run_rehoming_churn always
///                     modelled: mechanically a whole-site flap with no
///                     hold (the stub withdraws and immediately re-enters
///                     via its new preference), kept as its own kind so
///                     plans and records name the intent.
///   kPrefixDown     — the subject prefixes are withdrawn and stay down.
///   kPrefixUp       — the subject prefixes are (re-)announced.
///   kPolicyIncident — fires the study's configured PolicyEvent
///                     (config.policy.event — the incident is wired into
///                     the policy table at build time, so its payload
///                     lives in the config, not here).
struct ChurnEvent {
  enum class Kind : std::uint8_t {
    kFlap,
    kRehome,
    kPrefixDown,
    kPrefixUp,
    kPolicyIncident,
  };
  /// prefix_index value meaning "every prefix the stub announces".
  static constexpr std::size_t kWholeSite = static_cast<std::size_t>(-1);

  Kind kind = Kind::kFlap;
  /// Subject stub (index into the graph's stub tier); ignored by
  /// kPolicyIncident.
  std::size_t stub = 0;
  /// Index into the stub's de-aggregated announcement list, or kWholeSite.
  std::size_t prefix_index = kWholeSite;
  /// kFlap: down-time between the withdrawal settling and re-announcement.
  sim::SimDuration hold{};
  /// Idle gap between the previous event settling and this one starting.
  sim::SimDuration spacing{};

  [[nodiscard]] static ChurnEvent flap(std::size_t stub,
                                       sim::SimDuration hold = {},
                                       sim::SimDuration spacing = {}) {
    return ChurnEvent{Kind::kFlap, stub, kWholeSite, hold, spacing};
  }
  [[nodiscard]] static ChurnEvent rehome(std::size_t stub) {
    return ChurnEvent{Kind::kRehome, stub, kWholeSite, {}, {}};
  }
  [[nodiscard]] static ChurnEvent prefix_down(std::size_t stub,
                                              std::size_t prefix_index) {
    return ChurnEvent{Kind::kPrefixDown, stub, prefix_index, {}, {}};
  }
  [[nodiscard]] static ChurnEvent prefix_up(std::size_t stub,
                                            std::size_t prefix_index) {
    return ChurnEvent{Kind::kPrefixUp, stub, prefix_index, {}, {}};
  }
  [[nodiscard]] static ChurnEvent policy_incident() {
    return ChurnEvent{Kind::kPolicyIncident, 0, kWholeSite, {}, {}};
  }
};

/// A declarative churn plan: events execute in order on one long-lived
/// converged fabric (incremental mode), or — `full_replay` — each against
/// a freshly rebuilt and re-converged world (the marginal-cost baseline).
/// For state-restoring plans (flaps, re-homes, down/up pairs) the two
/// modes measure byte-identical per-event deltas: a flap restores every
/// RIB, ledger, and pending set exactly, and event cascades are
/// time-translation invariant.  Plans with persistent events (a lone
/// kPrefixDown, a policy incident followed by more events) diverge by
/// construction — the baseline re-measures each from the pristine world.
struct ChurnPlan {
  std::vector<ChurnEvent> events;
  bool full_replay = false;
};

/// Per-event measured deltas, network-wide.
struct ChurnEventMeasure {
  ChurnEvent::Kind kind = ChurnEvent::Kind::kFlap;
  std::uint64_t update_messages = 0;
  std::uint64_t route_records = 0;
  /// Convergence time the event cost (hold/spacing excluded).
  double settle_ms = 0.0;
  std::size_t ases_touched = 0;
  /// Engine events the re-convergence fired: the incremental-cost metric.
  std::uint64_t engine_events = 0;
};

struct ChurnPlanResult {
  std::vector<ChurnEventMeasure> events;
  /// kFlap + kRehome events executed (the soak guard's flap count).
  std::size_t flaps = 0;
  std::uint64_t update_messages = 0;  ///< totals over all events
  std::uint64_t route_records = 0;
  std::uint64_t engine_events = 0;
  double mean_updates_per_flap = 0.0;
  double mean_records_per_flap = 0.0;
  double mean_settle_ms = 0.0;  ///< over flap events
  double max_settle_ms = 0.0;
  /// Simulated span of the whole plan: spacings + settles + holds.
  double span_ms = 0.0;
  /// Full blast-radius measurement of the last kPolicyIncident, if any.
  std::optional<PolicyEventResult> incident;
};

/// Executes the plan (see ChurnPlan) and measures every event.  Under
/// kLispRlocOnly the events are mapping-side (a PCE push no BGP speaker
/// hears): flaps are counted but every BGP-side measure is exactly zero,
/// the paper's churn-amortisation claim in one row.  Deterministic for any
/// shard/worker count; byte-identical across reruns and sweep --jobs.
[[nodiscard]] ChurnPlanResult run_churn_plan(const DfzStudyConfig& config,
                                             const ChurnPlan& plan);

/// Deterministic soak-plan generator: `flaps` whole-site kFlap events over
/// `stub_count` stubs (uniform via a derived sim::Rng stream), exponential
/// inter-arrival spacing with the given mean, fixed hold.  Same seed, same
/// plan — across reruns, --jobs, and machines.
[[nodiscard]] ChurnPlan make_flap_plan(std::size_t flaps,
                                       std::size_t stub_count,
                                       std::uint64_t seed,
                                       sim::SimDuration mean_spacing,
                                       sim::SimDuration hold);

/// The prefixes a stub injects under the given de-aggregation factor:
/// `factor` equal-sized sub-blocks of its /20 site block (factor 1 = the
/// block itself).  Exposed for tests.
[[nodiscard]] std::vector<net::Ipv4Prefix> stub_site_prefixes(
    std::size_t stub_index, std::size_t deaggregation_factor);

/// The aggregate a provider (tier-1 or transit) announces for its RLOC
/// space.  Exposed for tests.
[[nodiscard]] net::Ipv4Prefix provider_aggregate(AsNumber asn);

}  // namespace lispcp::routing
