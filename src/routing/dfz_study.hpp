// dfz_study.hpp — quantifying the paper's §1 premise on the BGP substrate.
//
// "The scaling benefits arise when EID addresses are not routable through
// the Internet — only the RLOCs are globally routable [2]."  This harness
// measures exactly that, on the same synthetic Internet, under two
// addressing scenarios:
//
//   kLegacyBgp   — every stub site injects its provider-independent prefix
//                  (times the de-aggregation factor, §3) into BGP, as the
//                  pre-LISP Internet does;
//   kLispRlocOnly — only providers announce their RLOC aggregates; stub EID
//                  blocks go to the LISP mapping system instead and never
//                  appear in a DFZ table.
//
// Outputs per run: DFZ table size (tier-1 Loc-RIB), mean/max RIB over all
// ASes, total update messages and route records to converge, convergence
// time, and — for the LISP scenario — how many entries moved into the
// mapping system.  A second harness measures re-homing churn: the update
// storm when one multihomed stub swings between providers (the event the
// paper's IRC/TE engine triggers on), legacy vs LISP.
#pragma once

#include <cstdint>
#include <vector>

#include "net/ipv4.hpp"
#include "routing/as_graph.hpp"
#include "routing/bgp.hpp"

namespace lispcp::routing {

enum class AddressingScenario : std::uint8_t { kLegacyBgp, kLispRlocOnly };

[[nodiscard]] std::string to_string(AddressingScenario scenario);

/// A declarative post-convergence policy scenario on the DFZ substrate.
/// Each kind is the textbook incident the policy layer exists to model:
///
///   kHijackMoreSpecific — the actor originates more-specifics of the
///       victim's block (split by deagg_factor); longest-prefix match pulls
///       traffic everywhere the announcement survives import filters.
///   kHijackSameSpecific — the actor originates the victim's exact
///       prefixes; capture is decided by the decision process, so it stays
///       distance-limited.  The paper-facing contrast with the above.
///   kRouteLeak — the actor (a multihomed stub) drops the valley-free gate
///       toward its last provider and refreshes the session, re-exporting
///       provider-learned routes upward (the classic type-1 leak).
///   kSelectiveDeagg — the victim splits its block and announces the
///       more-specifics toward ONE provider only (export maps deny them on
///       the other sessions): the paper's claim-(iii) TE knob, now with a
///       realistic per-announcement RIB/churn cost.
///   kBroadcastDeagg — the same split announced to every provider; the
///       baseline that prices what "selective" saves.
struct PolicyEvent {
  enum class Kind : std::uint8_t {
    kNone,
    kHijackMoreSpecific,
    kHijackSameSpecific,
    kRouteLeak,
    kSelectiveDeagg,
    kBroadcastDeagg,
  };
  Kind kind = Kind::kNone;
  /// Stub index owning the affected prefix block.
  std::size_t victim_stub = 0;
  /// Stub index of the attacker/leaker; SIZE_MAX = the last stub.
  std::size_t actor_stub = static_cast<std::size_t>(-1);
  /// More-specific split factor for the hijack/de-aggregation events,
  /// relative to the study's base deaggregation_factor.  Power of two.
  std::size_t deagg_factor = 2;
};

[[nodiscard]] std::string to_string(PolicyEvent::Kind kind);

/// Policy section of the DFZ study.  `roles` attaches the Gao-Rexford
/// table (policy::PolicyTable::gao_rexford) to every speaker — required by
/// run_policy_event.  `filtered_transit_fraction` puts IRR-style strict
/// customer-origin import prefix-lists on the stub sessions of the first
/// ceil(fraction * transit_count) transits: the containment knob the F2e
/// hijack series sweeps.
struct PolicyStudyConfig {
  bool roles = false;
  double filtered_transit_fraction = 0.0;
  PolicyEvent event;
};

struct DfzStudyConfig {
  SyntheticInternetConfig internet;
  AddressingScenario scenario = AddressingScenario::kLegacyBgp;
  /// §3: each stub splits its site block into this many more-specifics
  /// ("the world's largest IPv4 de-aggregation factor").  Power of two.
  std::size_t deaggregation_factor = 1;
  BgpConfig bgp;
  PolicyStudyConfig policy;
};

struct DfzStudyResult {
  std::size_t dfz_table_size = 0;       ///< tier-1 Loc-RIB entries
  double mean_rib_size = 0.0;           ///< over every AS
  std::size_t max_rib_size = 0;
  std::uint64_t update_messages = 0;    ///< MRAI flushes to converge
  std::uint64_t route_records = 0;      ///< announce records to converge
  double convergence_ms = 0.0;
  std::size_t mapping_system_entries = 0;  ///< EID prefixes kept out of BGP
  std::size_t bgp_origin_prefixes = 0;     ///< prefixes actually injected
};

/// Runs origination-to-convergence for the configured scenario.
[[nodiscard]] DfzStudyResult run_dfz_study(const DfzStudyConfig& config);

struct RehomingChurnResult {
  /// Update messages and route records triggered network-wide by one stub
  /// moving its traffic between providers.
  std::uint64_t update_messages = 0;
  std::uint64_t route_records = 0;
  double settle_ms = 0.0;
  /// ASes whose Loc-RIB changed at least once during the event.
  std::size_t ases_touched = 0;
};

/// After convergence, re-homes one multihomed stub (legacy: withdraw +
/// re-announce its prefixes; LISP: a mapping-system update that touches no
/// BGP speaker) and measures the churn.  The contrast is the paper's TE
/// argument: with LISP+PCE, moving ingress traffic is a mapping push, not a
/// BGP event.
[[nodiscard]] RehomingChurnResult run_rehoming_churn(const DfzStudyConfig& config);

struct PolicyEventResult {
  std::size_t dfz_table_before = 0;   ///< tier-1 Loc-RIB pre-event
  std::size_t dfz_table_after = 0;
  std::uint64_t update_messages = 0;  ///< event-triggered MRAI flushes
  std::uint64_t route_records = 0;    ///< announce+withdraw records
  double settle_ms = 0.0;
  std::size_t ases_touched = 0;       ///< Loc-RIB changed during the event
  /// Route records the event itself injected (hijack/TE originations, or
  /// the leaked session's refresh size) — the denominator of the
  /// per-announcement costs.
  std::size_t event_announcements = 0;
  /// Network-wide Loc-RIB growth, total and per injected announcement: the
  /// realistic cost model for de-aggregation TE.
  std::size_t rib_delta = 0;
  double rib_cost_per_announcement = 0.0;
  double churn_per_announcement = 0.0;
  /// ASes whose post-event best route for a probe prefix prefers the
  /// actor (hijack: actor-originated; leak: path through the leaker;
  /// TE: path through the chosen provider), and the fraction of all ASes.
  std::size_t ases_preferring_actor = 0;
  double actor_preference_fraction = 0.0;
};

/// Converges the study with Gao-Rexford roles attached, applies the
/// configured PolicyEvent, reconverges, and measures the event's blast
/// radius.  Requires config.policy.roles, a kLegacyBgp scenario, and an
/// event kind != kNone (throws std::invalid_argument otherwise).
/// Deterministic for any shard/worker count, like every study here.
[[nodiscard]] PolicyEventResult run_policy_event(const DfzStudyConfig& config);

/// The prefixes a stub injects under the given de-aggregation factor:
/// `factor` equal-sized sub-blocks of its /20 site block (factor 1 = the
/// block itself).  Exposed for tests.
[[nodiscard]] std::vector<net::Ipv4Prefix> stub_site_prefixes(
    std::size_t stub_index, std::size_t deaggregation_factor);

/// The aggregate a provider (tier-1 or transit) announces for its RLOC
/// space.  Exposed for tests.
[[nodiscard]] net::Ipv4Prefix provider_aggregate(AsNumber asn);

}  // namespace lispcp::routing
