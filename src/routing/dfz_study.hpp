// dfz_study.hpp — quantifying the paper's §1 premise on the BGP substrate.
//
// "The scaling benefits arise when EID addresses are not routable through
// the Internet — only the RLOCs are globally routable [2]."  This harness
// measures exactly that, on the same synthetic Internet, under two
// addressing scenarios:
//
//   kLegacyBgp   — every stub site injects its provider-independent prefix
//                  (times the de-aggregation factor, §3) into BGP, as the
//                  pre-LISP Internet does;
//   kLispRlocOnly — only providers announce their RLOC aggregates; stub EID
//                  blocks go to the LISP mapping system instead and never
//                  appear in a DFZ table.
//
// Outputs per run: DFZ table size (tier-1 Loc-RIB), mean/max RIB over all
// ASes, total update messages and route records to converge, convergence
// time, and — for the LISP scenario — how many entries moved into the
// mapping system.  A second harness measures re-homing churn: the update
// storm when one multihomed stub swings between providers (the event the
// paper's IRC/TE engine triggers on), legacy vs LISP.
#pragma once

#include <cstdint>
#include <vector>

#include "net/ipv4.hpp"
#include "routing/as_graph.hpp"
#include "routing/bgp.hpp"

namespace lispcp::routing {

enum class AddressingScenario : std::uint8_t { kLegacyBgp, kLispRlocOnly };

[[nodiscard]] std::string to_string(AddressingScenario scenario);

struct DfzStudyConfig {
  SyntheticInternetConfig internet;
  AddressingScenario scenario = AddressingScenario::kLegacyBgp;
  /// §3: each stub splits its site block into this many more-specifics
  /// ("the world's largest IPv4 de-aggregation factor").  Power of two.
  std::size_t deaggregation_factor = 1;
  BgpConfig bgp;
};

struct DfzStudyResult {
  std::size_t dfz_table_size = 0;       ///< tier-1 Loc-RIB entries
  double mean_rib_size = 0.0;           ///< over every AS
  std::size_t max_rib_size = 0;
  std::uint64_t update_messages = 0;    ///< MRAI flushes to converge
  std::uint64_t route_records = 0;      ///< announce records to converge
  double convergence_ms = 0.0;
  std::size_t mapping_system_entries = 0;  ///< EID prefixes kept out of BGP
  std::size_t bgp_origin_prefixes = 0;     ///< prefixes actually injected
};

/// Runs origination-to-convergence for the configured scenario.
[[nodiscard]] DfzStudyResult run_dfz_study(const DfzStudyConfig& config);

struct RehomingChurnResult {
  /// Update messages and route records triggered network-wide by one stub
  /// moving its traffic between providers.
  std::uint64_t update_messages = 0;
  std::uint64_t route_records = 0;
  double settle_ms = 0.0;
  /// ASes whose Loc-RIB changed at least once during the event.
  std::size_t ases_touched = 0;
};

/// After convergence, re-homes one multihomed stub (legacy: withdraw +
/// re-announce its prefixes; LISP: a mapping-system update that touches no
/// BGP speaker) and measures the churn.  The contrast is the paper's TE
/// argument: with LISP+PCE, moving ingress traffic is a mapping push, not a
/// BGP event.
[[nodiscard]] RehomingChurnResult run_rehoming_churn(const DfzStudyConfig& config);

/// The prefixes a stub injects under the given de-aggregation factor:
/// `factor` equal-sized sub-blocks of its /20 site block (factor 1 = the
/// block itself).  Exposed for tests.
[[nodiscard]] std::vector<net::Ipv4Prefix> stub_site_prefixes(
    std::size_t stub_index, std::size_t deaggregation_factor);

/// The aggregate a provider (tier-1 or transit) announces for its RLOC
/// space.  Exposed for tests.
[[nodiscard]] net::Ipv4Prefix provider_aggregate(AsNumber asn);

}  // namespace lispcp::routing
