// attr_table.hpp — hash-consed, refcounted BGP path-attribute sets.
//
// Every hop of a route's propagation used to deep-copy its
// `as_path`/`communities` vectors: once into Adj-RIB-In on receipt, once
// into the Loc-RIB on installation, and once **per neighbor** on export.
// But the value set is tiny — a converged mesh holds one distinct
// (as_path, communities, local_pref) triple per (origin, propagation path),
// shared by every RIB entry and in-flight advert that mentions it.  This
// table interns the triple the way quagga/FRR hash-cons `struct attr`:
//
//   * AttrTable::intern() returns an AttrRef to the canonical immutable
//     node for the triple, allocating only on first sight — prepending a
//     hop to an interned path costs one scratch-buffer probe and, for a
//     path the network has produced before, zero allocations;
//   * AttrRef is an intrusive refcounted handle.  Pointer equality implies
//     value equality (and, while any ref holds a node live, the converse:
//     re-interning equal content always finds the same node), which is what
//     lets the decision process compare routes without touching vectors;
//   * nodes are evicted when their last ref drops, so a long churn soak
//     does not accrete dead attribute sets.
//
// Thread safety: shard workers intern (export leg) and release (delivered
// message shells) concurrently.  The bucket array is striped — intern and
// eviction take one stripe mutex — and refcounts are atomic with the usual
// shared_ptr discipline.  A release racing an intern of the same node is
// benign: eviction re-checks the count under the stripe lock, so an intern
// that resurrects a dying node (count 0 -> 1 under the lock) simply aborts
// the eviction.
//
// Determinism: the table is invisible in every sanctioned output.  Hashes
// and bucket order are never observable; the records a fabric emits are
// value-equal whether attributes are shared or copied (the parity tests in
// tests/test_update_groups.cpp pin this).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "routing/as_graph.hpp"
#include "routing/policy.hpp"

namespace lispcp::routing {

class AttrTable;

namespace detail {

/// One canonical attribute set.  Immutable after construction; only the
/// refcount ever changes.
struct AttrNode {
  std::vector<AsNumber> as_path;
  std::vector<policy::Community> communities;
  std::uint32_t local_pref = 0;
  std::uint64_t hash = 0;
  std::atomic<std::uint32_t> refs{0};
  AttrTable* table = nullptr;
};

}  // namespace detail

/// Intrusive handle to an interned attribute set.  Copy = one atomic
/// increment; destruction of the last ref evicts the node from its table.
/// operator== is pointer identity, which the table makes equivalent to
/// value identity for live nodes.
class AttrRef {
 public:
  AttrRef() noexcept = default;
  AttrRef(const AttrRef& other) noexcept : node_(other.node_) { retain(); }
  AttrRef(AttrRef&& other) noexcept : node_(other.node_) {
    other.node_ = nullptr;
  }
  AttrRef& operator=(const AttrRef& other) noexcept {
    if (node_ != other.node_) {
      release();
      node_ = other.node_;
      retain();
    }
    return *this;
  }
  AttrRef& operator=(AttrRef&& other) noexcept {
    if (this != &other) {
      release();
      node_ = other.node_;
      other.node_ = nullptr;
    }
    return *this;
  }
  ~AttrRef() { release(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return node_ != nullptr;
  }
  void reset() noexcept {
    release();
    node_ = nullptr;
  }

  [[nodiscard]] const std::vector<AsNumber>& as_path() const noexcept {
    return node_->as_path;
  }
  [[nodiscard]] const std::vector<policy::Community>& communities()
      const noexcept {
    return node_->communities;
  }
  [[nodiscard]] std::uint32_t local_pref() const noexcept {
    return node_->local_pref;
  }

  /// Current reference count (relaxed read — exact only when no other
  /// thread is mutating refs; the churn tests run single-threaded).
  [[nodiscard]] std::uint32_t use_count() const noexcept {
    return node_ == nullptr
               ? 0
               : node_->refs.load(std::memory_order_relaxed);
  }

  friend bool operator==(const AttrRef& a, const AttrRef& b) noexcept {
    return a.node_ == b.node_;
  }

 private:
  friend class AttrTable;
  explicit AttrRef(detail::AttrNode* node) noexcept : node_(node) {}

  void retain() noexcept {
    if (node_ != nullptr) {
      node_->refs.fetch_add(1, std::memory_order_relaxed);
    }
  }
  void release() noexcept;

  detail::AttrNode* node_ = nullptr;
};

/// The per-fabric interning table.  Must outlive every AttrRef it hands
/// out (BgpFabric declares it before the engine and the speakers).
class AttrTable {
 public:
  AttrTable() = default;
  ~AttrTable();

  AttrTable(const AttrTable&) = delete;
  AttrTable& operator=(const AttrTable&) = delete;

  /// The canonical ref for (as_path, communities, local_pref): an existing
  /// node when the triple is live, a freshly allocated one otherwise.  The
  /// span overload is the hot-path entry — callers probe with scratch
  /// buffers and pay vector allocations only on a miss.
  [[nodiscard]] AttrRef intern(std::span<const AsNumber> as_path,
                               std::span<const policy::Community> communities,
                               std::uint32_t local_pref);
  [[nodiscard]] AttrRef intern(const std::vector<AsNumber>& as_path,
                               const std::vector<policy::Community>& communities,
                               std::uint32_t local_pref) {
    return intern(std::span<const AsNumber>(as_path),
                  std::span<const policy::Community>(communities), local_pref);
  }

  /// Distinct attribute sets currently live (refcount > 0).
  [[nodiscard]] std::size_t size() const;

  /// Lifetime counters (relaxed; for tests and the m1 micro): interns that
  /// found an existing node vs allocated a new one.
  [[nodiscard]] std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  friend class AttrRef;

  /// 16 stripes: enough to keep shard workers off each other's locks, few
  /// enough that size() stays a cheap sweep.
  static constexpr std::size_t kStripes = 16;

  struct Stripe {
    std::mutex mu;
    /// hash -> nodes with that hash (collisions resolved by value compare).
    std::unordered_multimap<std::uint64_t, detail::AttrNode*> nodes;
  };

  [[nodiscard]] static std::uint64_t hash_of(
      std::span<const AsNumber> as_path,
      std::span<const policy::Community> communities,
      std::uint32_t local_pref) noexcept;

  /// Last-ref drop: erase and delete unless a concurrent intern resurrected
  /// the node (checked under the stripe lock).
  void evict(detail::AttrNode* node);

  Stripe stripes_[kStripes];
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

inline void AttrRef::release() noexcept {
  if (node_ != nullptr &&
      node_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    node_->table->evict(node_);
  }
}

}  // namespace lispcp::routing
