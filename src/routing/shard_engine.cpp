#include "routing/shard_engine.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

namespace lispcp::routing {

namespace {

/// Which shard the current thread is driving, if any.  Lets schedule()
/// resolve the caller's clock and route cross-shard events through the
/// mailbox instead of racing on a foreign queue.
struct ActiveShard {
  const void* engine = nullptr;
  std::size_t shard = 0;
};
thread_local ActiveShard tl_active;

/// Clears the caller context even when an event action throws (a stale
/// entry would make a later engine at the same address misread it).
struct ActiveShardScope {
  ActiveShardScope(const void* engine, std::size_t shard) {
    tl_active = ActiveShard{engine, shard};
  }
  ~ActiveShardScope() { tl_active = ActiveShard{}; }
};

constexpr sim::SimTime kEndOfTime =
    sim::SimTime::from_ns(std::numeric_limits<std::int64_t>::max());

}  // namespace

ConvergenceEngine::ConvergenceEngine(const AsGraph& graph,
                                     ShardEngineConfig config)
    : epoch_(config.epoch) {
  const std::size_t shards = std::max<std::size_t>(1, config.shards);
  if (shards > 1 && epoch_ <= sim::SimDuration{}) {
    throw std::invalid_argument(
        "ConvergenceEngine: sharded execution needs a positive lookahead "
        "(epoch)");
  }
  queues_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    queues_.push_back(
        std::make_unique<sim::ShardQueue>(sim::Rng::derive_seed(config.seed, s)));
  }
  outbox_.resize(shards);
  fired_.assign(shards, 0);
  errors_.assign(shards, nullptr);

  // Deterministic placement, keyed only by (graph, K): tier-1s and transits
  // round-robin by tier-insertion index so the heavy provider RIBs spread
  // evenly, stubs hashed by ASN.
  std::size_t tier1 = 0;
  std::size_t transit = 0;
  home_.reserve(graph.ases().size());
  for (AsNumber asn : graph.ases()) {
    if (asn.value() >= (std::uint32_t{1} << 31)) {
      throw std::invalid_argument(
          "ConvergenceEngine: ASNs must be < 2^31 (event-tag encoding)");
    }
    std::size_t home = 0;
    switch (graph.tier(asn)) {
      case AsTier::kTier1: home = tier1++ % shards; break;
      case AsTier::kTransit: home = transit++ % shards; break;
      case AsTier::kStub: home = sim::Rng::splitmix64(asn.value()) % shards; break;
    }
    home_.insert_or_assign(asn.value(), static_cast<std::uint32_t>(home));
  }

  std::size_t workers =
      config.workers != 0
          ? config.workers
          : static_cast<std::size_t>(std::thread::hardware_concurrency());
  if (workers == 0) workers = 1;
  workers_ = std::min(workers, shards);
}

ConvergenceEngine::~ConvergenceEngine() {
  if (!threads_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_start_.notify_all();
    for (std::thread& t : threads_) t.join();
  }
}

std::size_t ConvergenceEngine::shard_of(AsNumber asn) const {
  const std::uint32_t* home = home_.find(asn.value());
  if (home == nullptr) {
    throw std::out_of_range("ConvergenceEngine: unknown " + asn.to_string());
  }
  return *home;
}

bool ConvergenceEngine::idle() const noexcept {
  for (const auto& queue : queues_) {
    if (!queue->empty()) return false;
  }
  return true;
}

void ConvergenceEngine::schedule(AsNumber asn, sim::SimDuration delay,
                                 std::uint64_t tag, sim::EventAction action) {
  if (delay < sim::SimDuration{}) {
    throw std::invalid_argument("ConvergenceEngine::schedule: negative delay");
  }
  const std::size_t dst = shard_of(asn);
  const bool in_run = tl_active.engine == this;
  const std::size_t src = in_run ? tl_active.shard : dst;
  const sim::SimTime cause = in_run ? queues_[src]->now() : now_;
  const sim::EventKey key{cause.ns(), tag};
  if (!in_run || src == dst) {
    // Quiescent engine (single caller) or the shard's own queue: insert
    // directly.
    queues_[dst]->schedule(cause + delay, key, std::move(action));
    return;
  }
  if (delay < epoch_) {
    throw std::logic_error(
        "ConvergenceEngine: cross-shard event inside the lookahead window");
  }
  outbox_[src].push_back(Mail{dst, cause + delay, key, std::move(action)});
}

std::uint64_t ConvergenceEngine::run_shard_window(std::size_t s,
                                                  sim::SimTime end,
                                                  std::uint64_t cap) {
  ActiveShardScope scope(this, s);
  return queues_[s]->run_window(end, cap);
}

std::uint64_t ConvergenceEngine::remaining_cap(std::uint64_t max_events) const {
  if (max_events == 0) return 0;
  return processed_ >= max_events ? 1 : max_events - processed_;
}

void ConvergenceEngine::check_budget(std::uint64_t max_events) const {
  if (max_events != 0 && processed_ >= max_events) {
    throw std::runtime_error("ConvergenceEngine::run: event budget exhausted");
  }
}

void ConvergenceEngine::advance(sim::SimDuration by) {
  if (by < sim::SimDuration{}) {
    throw std::invalid_argument("ConvergenceEngine::advance: negative duration");
  }
  if (!idle()) {
    throw std::logic_error(
        "ConvergenceEngine::advance: events pending (run to convergence "
        "first)");
  }
  now_ = now_ + by;
  for (const auto& queue : queues_) queue->set_now(now_);
}

sim::SimTime ConvergenceEngine::run(std::uint64_t max_events) {
  const std::uint64_t processed_at_entry = processed_;
  if (queues_.size() == 1) {
    sim::ShardQueue& queue = *queues_[0];
    while (!queue.empty()) {
      processed_ += run_shard_window(0, kEndOfTime, remaining_cap(max_events));
      check_budget(max_events);
    }
    now_ = std::max(now_, queue.now());
    queue.set_now(now_);
    last_run_processed_ = processed_ - processed_at_entry;
    return now_;
  }

  ensure_workers();
  for (;;) {
    bool any = false;
    sim::SimTime next;
    for (const auto& queue : queues_) {
      if (queue->empty()) continue;
      const sim::SimTime t = queue->next_time();
      if (!any || t < next) next = t;
      any = true;
    }
    if (!any) break;

    // Split the remaining budget across the shards (+1 so a small
    // remainder never becomes cap 0 = unlimited): the per-epoch overshoot
    // stays ~1x the budget instead of Kx.  A shard that stops mid-window
    // just resumes the same deterministic event order next epoch — fire
    // times don't change, so results are unaffected.
    std::uint64_t cap = remaining_cap(max_events);
    if (cap != 0) cap = cap / queues_.size() + 1;
    run_epoch(next + epoch_, cap);

    // The barrier has passed (no worker is still in a window): propagate
    // the first captured failure, lowest shard index first for
    // determinism.  The engine, like a half-run simulation, is not
    // reusable afterwards.
    for (std::exception_ptr& error : errors_) {
      if (error != nullptr) {
        const std::exception_ptr first = error;
        for (std::exception_ptr& e : errors_) e = nullptr;
        std::rethrow_exception(first);
      }
    }

    // Publish the cross-shard mail into the destination queues before the
    // next window opens.
    for (auto& box : outbox_) {
      for (Mail& mail : box) {
        queues_[mail.dst]->schedule(mail.at, mail.key, std::move(mail.action));
      }
      box.clear();
    }
    for (const std::uint64_t fired : fired_) processed_ += fired;
    check_budget(max_events);
  }

  sim::SimTime global = now_;
  for (const auto& queue : queues_) global = std::max(global, queue->now());
  now_ = global;
  for (const auto& queue : queues_) queue->set_now(global);
  last_run_processed_ = processed_ - processed_at_entry;
  return now_;
}

void ConvergenceEngine::run_epoch(sim::SimTime end, std::uint64_t cap) {
  // The window's worklist: shards that actually hold an event before `end`.
  // Running an idle shard was always a no-op (run_window pops nothing), so
  // skipping it is byte-identical — but an incremental delta (one flap)
  // touches only a couple of shards per window, and waking the worker pool
  // for the idle rest would spend a mutex round-trip per epoch on nothing.
  active_.clear();
  for (std::size_t s = 0; s < queues_.size(); ++s) {
    fired_[s] = 0;
    if (!queues_[s]->empty() && queues_[s]->next_time() < end) {
      active_.push_back(s);
    }
  }
  if (workers_ == 1 || active_.size() <= 1) {
    // Inline: exceptions propagate directly (no pool thread is mid-window).
    for (const std::size_t s : active_) {
      fired_[s] = run_shard_window(s, end, cap);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    window_end_ = end;
    window_cap_ = cap;
    ++generation_;
    pending_ = workers_ - 1;
  }
  cv_start_.notify_all();
  // The caller is worker 0.  Capture instead of throwing: the barrier
  // must complete before anything unwinds, or the pool would still be
  // firing events while the caller's state is being torn down.
  for (std::size_t s = 0; s < queues_.size(); s += workers_) {
    try {
      fired_[s] = run_shard_window(s, end, cap);
    } catch (...) {
      errors_[s] = std::current_exception();
    }
  }
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return pending_ == 0; });
}

void ConvergenceEngine::ensure_workers() {
  if (workers_ <= 1 || !threads_.empty()) return;
  threads_.reserve(workers_ - 1);
  for (std::size_t w = 1; w < workers_; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

void ConvergenceEngine::worker_loop(std::size_t w) {
  std::uint64_t seen = 0;
  for (;;) {
    sim::SimTime end;
    std::uint64_t cap = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      end = window_end_;
      cap = window_cap_;
    }
    for (std::size_t s = w; s < queues_.size(); s += workers_) {
      try {
        fired_[s] = run_shard_window(s, end, cap);
      } catch (...) {
        // Surfaced by run() after the barrier; an escape here would
        // std::terminate the process with no diagnostic.
        errors_[s] = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) cv_done_.notify_one();
    }
  }
}

}  // namespace lispcp::routing
