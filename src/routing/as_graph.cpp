#include "routing/as_graph.hpp"

#include <algorithm>

namespace lispcp::routing {

std::string to_string(AsTier tier) {
  switch (tier) {
    case AsTier::kTier1: return "tier1";
    case AsTier::kTransit: return "transit";
    case AsTier::kStub: return "stub";
  }
  return "?";
}

std::string to_string(NeighborKind kind) {
  switch (kind) {
    case NeighborKind::kCustomer: return "customer";
    case NeighborKind::kProvider: return "provider";
    case NeighborKind::kPeer: return "peer";
  }
  return "?";
}

void AsGraph::add_as(AsNumber asn, AsTier tier) {
  if (contains(asn)) {
    throw std::invalid_argument("AsGraph::add_as: duplicate " + asn.to_string());
  }
  ases_.push_back(asn);
  index_.emplace(asn.value(), Entry{tier, {}});
}

AsGraph::Entry& AsGraph::entry(AsNumber asn) {
  auto it = index_.find(asn.value());
  if (it == index_.end()) {
    throw std::out_of_range("AsGraph: unknown " + asn.to_string());
  }
  return it->second;
}

const AsGraph::Entry& AsGraph::entry(AsNumber asn) const {
  auto it = index_.find(asn.value());
  if (it == index_.end()) {
    throw std::out_of_range("AsGraph: unknown " + asn.to_string());
  }
  return it->second;
}

void AsGraph::add_edge(AsNumber a, NeighborKind a_sees_b, AsNumber b,
                       NeighborKind b_sees_a) {
  if (a == b) {
    throw std::invalid_argument("AsGraph: self edge at " + a.to_string());
  }
  Entry& ea = entry(a);
  Entry& eb = entry(b);
  const bool duplicate = std::any_of(
      ea.neighbors.begin(), ea.neighbors.end(),
      [b](const Neighbor& n) { return n.asn == b; });
  if (duplicate) {
    throw std::invalid_argument("AsGraph: duplicate edge " + a.to_string() +
                                " <-> " + b.to_string());
  }
  ea.neighbors.push_back(Neighbor{b, a_sees_b});
  eb.neighbors.push_back(Neighbor{a, b_sees_a});
  ++edges_;
}

void AsGraph::add_customer_provider(AsNumber customer, AsNumber provider) {
  add_edge(customer, NeighborKind::kProvider, provider, NeighborKind::kCustomer);
}

void AsGraph::add_peering(AsNumber a, AsNumber b) {
  add_edge(a, NeighborKind::kPeer, b, NeighborKind::kPeer);
}

AsTier AsGraph::tier(AsNumber asn) const { return entry(asn).tier; }

const std::vector<AsGraph::Neighbor>& AsGraph::neighbors(AsNumber asn) const {
  return entry(asn).neighbors;
}

std::optional<NeighborKind> AsGraph::kind_between(AsNumber a, AsNumber b) const {
  for (const Neighbor& n : entry(a).neighbors) {
    if (n.asn == b) return n.kind;
  }
  return std::nullopt;
}

std::vector<AsNumber> AsGraph::ases_of_tier(AsTier t) const {
  std::vector<AsNumber> out;
  for (AsNumber asn : ases_) {
    if (tier(asn) == t) out.push_back(asn);
  }
  return out;
}

AsGraph build_synthetic_internet(const SyntheticInternetConfig& config) {
  if (config.tier1_count == 0) {
    throw std::invalid_argument("build_synthetic_internet: need >= 1 tier-1");
  }
  if (config.providers_per_transit == 0 || config.providers_per_stub == 0) {
    throw std::invalid_argument(
        "build_synthetic_internet: every non-tier-1 AS needs >= 1 provider");
  }
  AsGraph graph;
  sim::Rng rng(config.seed);

  std::vector<AsNumber> tier1s;
  std::uint32_t next_asn = 1;
  for (std::size_t i = 0; i < config.tier1_count; ++i) {
    const AsNumber asn{next_asn++};
    graph.add_as(asn, AsTier::kTier1);
    tier1s.push_back(asn);
  }
  // Tier-1 full peering mesh: the default-free zone core.
  for (std::size_t i = 0; i < tier1s.size(); ++i) {
    for (std::size_t j = i + 1; j < tier1s.size(); ++j) {
      graph.add_peering(tier1s[i], tier1s[j]);
    }
  }

  // Picks `want` distinct providers from `pool` (deterministically random).
  const auto pick_providers = [&rng](const std::vector<AsNumber>& pool,
                                     std::size_t want) {
    std::vector<AsNumber> chosen;
    const std::size_t n = std::min(want, pool.size());
    std::vector<std::size_t> indices(pool.size());
    for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(
                  rng.uniform_int(0, indices.size() - 1 - i));
      std::swap(indices[i], indices[j]);
      chosen.push_back(pool[indices[i]]);
    }
    return chosen;
  };

  std::vector<AsNumber> transits;
  for (std::size_t i = 0; i < config.transit_count; ++i) {
    const AsNumber asn{next_asn++};
    graph.add_as(asn, AsTier::kTransit);
    transits.push_back(asn);
    for (AsNumber provider : pick_providers(tier1s, config.providers_per_transit)) {
      graph.add_customer_provider(asn, provider);
    }
  }
  // Lateral transit peering, sparsely.
  for (std::size_t i = 0; i < transits.size(); ++i) {
    for (std::size_t j = i + 1; j < transits.size(); ++j) {
      if (rng.chance(config.transit_peering_probability)) {
        graph.add_peering(transits[i], transits[j]);
      }
    }
  }

  const std::vector<AsNumber>& stub_provider_pool =
      transits.empty() ? tier1s : transits;
  for (std::size_t i = 0; i < config.stub_count; ++i) {
    const AsNumber asn{next_asn++};
    graph.add_as(asn, AsTier::kStub);
    for (AsNumber provider :
         pick_providers(stub_provider_pool, config.providers_per_stub)) {
      graph.add_customer_provider(asn, provider);
    }
  }
  return graph;
}

namespace {

core::SnapshotCache<SyntheticInternetConfig, AsGraph>& internet_cache() {
  static core::SnapshotCache<SyntheticInternetConfig, AsGraph> cache;
  return cache;
}

}  // namespace

std::shared_ptr<const AsGraph> shared_synthetic_internet(
    const SyntheticInternetConfig& config) {
  return internet_cache().acquire(
      config, [&config] { return build_synthetic_internet(config); });
}

SyntheticInternetScope::SyntheticInternetScope() : scope_(internet_cache()) {}

}  // namespace lispcp::routing
