#include "routing/bgp.hpp"

#include <algorithm>

#include "core/arena.hpp"

namespace lispcp::routing {

namespace {

/// Retired UpdateMessage shells, buffers intact: a flush reuses the vector
/// capacity a delivered message gave back instead of growing from zero.
/// Thread-local because shard workers flush and deliver concurrently; a
/// message released on the delivery thread simply seeds that worker's own
/// recycler.
core::Recycler<UpdateMessage>& message_recycler() {
  thread_local core::Recycler<UpdateMessage> recycler;
  return recycler;
}

bool same_route(const BgpSpeaker::BestRoute& a, const BgpSpeaker::BestRoute& b) {
  return a.local_origin == b.local_origin && a.learned_from == b.learned_from &&
         a.local_pref == b.local_pref && a.as_path == b.as_path &&
         a.communities == b.communities;
}

}  // namespace

BgpSpeaker::BgpSpeaker(BgpFabric& fabric, AsNumber asn)
    : fabric_(fabric), asn_(asn) {
  // Satellite of the policy PR: a known converged table size lets every
  // RIB jump straight to its final capacity instead of rehashing through
  // the origination storm.
  loc_rib_.reserve(fabric_.config().expected_prefixes);
}

BgpSpeaker::AdjIn& BgpSpeaker::adj_in(AsNumber from) {
  const auto [it, inserted] = adj_in_.try_emplace(from);
  if (inserted && fabric_.config().expected_prefixes > 0 &&
      fabric_.kind_of(asn_, from) != NeighborKind::kCustomer) {
    // Peer/provider sessions carry (close to) the full table; customer
    // sessions only their cone — reserving those would waste the memory.
    it->second.routes.reserve(fabric_.config().expected_prefixes);
  }
  return it->second;
}

BgpSpeaker::Outbound& BgpSpeaker::outbound(AsNumber neighbor) {
  const auto [it, inserted] = outbound_.try_emplace(neighbor);
  if (inserted && fabric_.config().expected_prefixes > 0 &&
      fabric_.kind_of(asn_, neighbor) == NeighborKind::kCustomer) {
    // Customers get the full table, so the Adj-RIB-Out ledger fills up.
    it->second.advertised.reserve(fabric_.config().expected_prefixes);
  }
  return it->second;
}

void BgpSpeaker::originate(const net::Ipv4Prefix& prefix) {
  origins_.insert(prefix);
  decide(prefix);
}

void BgpSpeaker::withdraw_origin(const net::Ipv4Prefix& prefix) {
  if (origins_.erase(prefix) == 0) return;
  decide(prefix);
}

void BgpSpeaker::handle_update(AsNumber from, const UpdateMessage& message) {
  ++stats_.updates_received;
  AdjIn& adj = adj_in(from);
  for (const net::Ipv4Prefix& prefix : message.withdraws) {
    if (adj.routes.erase(prefix) > 0) decide(prefix);
  }
  const policy::SessionPolicy* session = fabric_.session_policy(asn_, from);
  const policy::RouteMap* import =
      session == nullptr ? nullptr : session->import;
  for (const RouteAdvert& advert : message.announces) {
    const bool loops = std::find(advert.as_path.begin(), advert.as_path.end(),
                                 asn_) != advert.as_path.end();
    if (loops) {
      // A looped advert is unusable, and — update semantics — it implicitly
      // replaces whatever this neighbor said before, so the old path goes.
      ++stats_.loops_rejected;
      if (adj.routes.erase(advert.prefix) > 0) decide(advert.prefix);
      continue;
    }
    AdjRoute route{advert.as_path, advert.communities, 0};
    if (import != nullptr) {
      const auto actions = import->evaluate(policy::RouteContext{
          advert.prefix, route.as_path, route.communities});
      if (!actions.has_value()) {
        // Import-denied: like a loop reject, the advert still implicitly
        // withdraws whatever this neighbor previously offered.
        ++stats_.imports_filtered;
        if (adj.routes.erase(advert.prefix) > 0) decide(advert.prefix);
        continue;
      }
      route.local_pref = actions->local_pref;
      for (const policy::Community c : actions->add_communities) {
        policy::add_community(route.communities, c);
      }
      if (actions->prepend > 0) {
        // Import prepend inserts the *neighbor's* ASN, lengthening the
        // path this session offers to the decision process.
        route.as_path.insert(route.as_path.begin(), actions->prepend, from);
      }
    }
    adj.routes[advert.prefix] = std::move(route);
    decide(advert.prefix);
  }
}

const BgpSpeaker::BestRoute* BgpSpeaker::best(
    const net::Ipv4Prefix& prefix) const {
  return loc_rib_.find(prefix);
}

std::vector<net::Ipv4Prefix> BgpSpeaker::rib_prefixes() const {
  return loc_rib_.sorted_keys();
}

void BgpSpeaker::decide(const net::Ipv4Prefix& prefix) {
  // Gather candidates: local origination plus one per advertising neighbor,
  // iterated in graph order for determinism.
  std::optional<BestRoute> winner;
  const auto better = [](const BestRoute& a, const BestRoute& b) {
    // Local origin beats all; then highest local-pref (role defaults
    // reproduce the legacy relationship-preference order), path length,
    // lowest neighbor ASN.
    if (a.local_origin != b.local_origin) return a.local_origin;
    if (a.local_pref != b.local_pref) return a.local_pref > b.local_pref;
    if (a.as_path.size() != b.as_path.size()) {
      return a.as_path.size() < b.as_path.size();
    }
    return a.learned_from < b.learned_from;
  };

  if (origins_.contains(prefix)) {
    winner = BestRoute{{},
                       asn_,
                       NeighborKind::kCustomer,
                       /*local_origin=*/true,
                       policy::kCustomerLocalPref,
                       {}};
  }
  for (const AsGraph::Neighbor& neighbor : fabric_.graph().neighbors(asn_)) {
    auto adj = adj_in_.find(neighbor.asn);
    if (adj == adj_in_.end()) continue;
    const AdjRoute* route = adj->second.routes.find(prefix);
    if (route == nullptr) continue;
    BestRoute candidate{route->as_path,
                        neighbor.asn,
                        neighbor.kind,
                        /*local_origin=*/false,
                        route->local_pref != 0
                            ? route->local_pref
                            : policy::role_local_pref(neighbor.kind),
                        route->communities};
    if (!winner || better(candidate, *winner)) winner = std::move(candidate);
  }

  const BestRoute* installed = loc_rib_.find(prefix);
  const bool had = installed != nullptr;
  if (!winner) {
    if (!had) return;
    loc_rib_.erase(prefix);
    ++stats_.best_changes;
    for (const AsGraph::Neighbor& neighbor : fabric_.graph().neighbors(asn_)) {
      enqueue(neighbor.asn, prefix, std::nullopt);
    }
    return;
  }
  if (had && same_route(*installed, *winner)) return;

  loc_rib_[prefix] = *winner;
  ++stats_.best_changes;
  announce_best(prefix, *winner);
}

void BgpSpeaker::announce_best(const net::Ipv4Prefix& prefix,
                               const BestRoute& winner,
                               std::optional<AsNumber> only) {
  std::vector<AsNumber> path;
  path.reserve(winner.as_path.size() + 1);
  path.push_back(asn_);
  path.insert(path.end(), winner.as_path.begin(), winner.as_path.end());

  for (const AsGraph::Neighbor& neighbor : fabric_.graph().neighbors(asn_)) {
    if (only.has_value() && neighbor.asn != *only) continue;
    // Split horizon: never echo a route to the session it came from.  A
    // neighbor the new best is not exportable to gets a withdraw instead
    // (it may hold a previously exportable path).
    if (!winner.local_origin && neighbor.asn == winner.learned_from) {
      enqueue(neighbor.asn, prefix, std::nullopt);
      continue;
    }
    const policy::SessionPolicy* session =
        fabric_.session_policy(asn_, neighbor.asn);
    const bool role_ok = (session != nullptr && !session->valley_free) ||
                         exportable(winner, neighbor.kind);
    if (!role_ok) {
      enqueue(neighbor.asn, prefix, std::nullopt);
      continue;
    }
    if (session != nullptr && session->export_map != nullptr) {
      const auto actions = session->export_map->evaluate(
          policy::RouteContext{prefix, path, winner.communities});
      if (!actions.has_value()) {
        ++stats_.exports_filtered;
        enqueue(neighbor.asn, prefix, std::nullopt);
        continue;
      }
      RouteAdvert advert{prefix, path, winner.communities};
      if (actions->prepend > 0) {
        advert.as_path.insert(advert.as_path.begin(), actions->prepend, asn_);
      }
      for (const policy::Community c : actions->add_communities) {
        policy::add_community(advert.communities, c);
      }
      enqueue(neighbor.asn, prefix, std::move(advert));
      continue;
    }
    enqueue(neighbor.asn, prefix, RouteAdvert{prefix, path, winner.communities});
  }
}

void BgpSpeaker::refresh_exports(std::optional<AsNumber> only) {
  // Sorted snapshot: refresh order is observable through MRAI batching, so
  // it must not depend on table layout.
  for (const net::Ipv4Prefix& prefix : loc_rib_.sorted_keys()) {
    const BestRoute* installed = loc_rib_.find(prefix);
    if (installed != nullptr) announce_best(prefix, *installed, only);
  }
}

bool BgpSpeaker::exportable(const BestRoute& route, NeighborKind to) {
  if (to == NeighborKind::kCustomer) return true;
  return route.local_origin || route.neighbor_kind == NeighborKind::kCustomer;
}

void BgpSpeaker::enqueue(AsNumber neighbor, const net::Ipv4Prefix& prefix,
                         std::optional<RouteAdvert> advert) {
  Outbound& out = outbound(neighbor);
  if (!advert.has_value()) {
    const std::optional<RouteAdvert>* pending = out.pending.find(prefix);
    const bool pending_announce = pending != nullptr && pending->has_value();
    if (pending_announce) {
      // The announce never left this router: just cancel it.  A withdraw is
      // still owed if an *earlier* flush advertised the prefix.
      out.pending.erase(prefix);
    }
    if (out.advertised.contains(prefix)) {
      out.pending[prefix] = std::nullopt;
    } else if (!pending_announce) {
      return;  // neighbor never heard of it: nothing to retract
    }
  } else {
    out.pending[prefix] = std::move(advert);
  }
  if (!out.pending.empty() && !out.mrai_armed) {
    out.mrai_armed = true;
    fabric_.arm_mrai(asn_, neighbor, [this, neighbor] { flush(neighbor); });
  }
}

void BgpSpeaker::flush(AsNumber neighbor) {
  Outbound& out = outbound_[neighbor];
  out.mrai_armed = false;
  if (out.pending.empty()) return;
  // Sorted snapshot: the wire order (ascending prefix) is part of the
  // byte-identical-records contract and must not depend on table layout.
  const std::vector<net::Ipv4Prefix> prefixes = out.pending.sorted_keys();
  UpdateMessage message = message_recycler().acquire();
  message.announces.clear();
  message.withdraws.clear();
  message.announces.reserve(prefixes.size());
  for (const net::Ipv4Prefix& prefix : prefixes) {
    std::optional<RouteAdvert>& advert = *out.pending.find(prefix);
    if (advert.has_value()) {
      message.announces.push_back(std::move(*advert));
      out.advertised.insert(prefix);
    } else {
      message.withdraws.push_back(prefix);
      out.advertised.erase(prefix);
    }
  }
  out.pending.clear();
  ++stats_.updates_sent;
  stats_.routes_announced += message.announces.size();
  stats_.routes_withdrawn += message.withdraws.size();
  fabric_.send(asn_, neighbor, std::move(message));
}

namespace {

ShardEngineConfig engine_config(const BgpConfig& config) {
  ShardEngineConfig out;
  out.shards = config.shards;
  // Lookahead: every cross-shard delivery takes at least the base session
  // delay (jitter only adds).  MRAI timers are always shard-local.
  out.epoch = config.session_delay;
  out.workers = config.shard_workers;
  return out;
}

}  // namespace

BgpFabric::BgpFabric(const AsGraph& graph, BgpConfig config)
    : graph_(graph), config_(config), engine_(graph, engine_config(config)) {
  for (AsNumber asn : graph_.ases()) {
    speakers_.emplace(asn, std::make_unique<BgpSpeaker>(*this, asn));
  }
}

BgpSpeaker& BgpFabric::speaker(AsNumber asn) {
  auto it = speakers_.find(asn);
  if (it == speakers_.end()) {
    throw std::out_of_range("BgpFabric: unknown " + asn.to_string());
  }
  return *it->second;
}

const BgpSpeaker& BgpFabric::speaker(AsNumber asn) const {
  auto it = speakers_.find(asn);
  if (it == speakers_.end()) {
    throw std::out_of_range("BgpFabric: unknown " + asn.to_string());
  }
  return *it->second;
}

NeighborKind BgpFabric::kind_of(AsNumber self, AsNumber neighbor) const {
  for (const AsGraph::Neighbor& n : graph_.neighbors(self)) {
    if (n.asn == neighbor) return n.kind;
  }
  throw std::out_of_range("BgpFabric: no session " + self.to_string() + " <-> " +
                          neighbor.to_string());
}

sim::SimDuration BgpFabric::session_delay(AsNumber a, AsNumber b) const {
  if (config_.session_jitter.ns() == 0) return config_.session_delay;
  // Deterministic per-session jitter: hash the unordered pair.
  const std::uint64_t lo = std::min(a.value(), b.value());
  const std::uint64_t hi = std::max(a.value(), b.value());
  std::uint64_t x = (lo << 32) | hi;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  const auto jitter_ns = static_cast<std::int64_t>(
      x % static_cast<std::uint64_t>(config_.session_jitter.ns()));
  return config_.session_delay + sim::SimDuration::nanos(jitter_ns);
}

void BgpFabric::apply(const std::vector<RouteDelta>& batch) {
  // The batch is the dirty-prefix worklist: deltas run in order, each one
  // re-deciding exactly its own prefix.  decide() reads only per-prefix
  // state (the origin bit and the per-neighbor adj entries for that
  // prefix), so per-delta sequencing is byte-identical to any other
  // grouping of the same deltas — the contract the parity tests pin.
  for (const RouteDelta& delta : batch) {
    BgpSpeaker& owner = speaker(delta.owner);
    switch (delta.kind) {
      case RouteDelta::Kind::kAnnounce:
        owner.originate(delta.prefix);
        break;
      case RouteDelta::Kind::kWithdraw:
        owner.withdraw_origin(delta.prefix);
        break;
      case RouteDelta::Kind::kRefresh:
        owner.refresh_exports(delta.session);
        break;
    }
  }
}

void BgpFabric::send(AsNumber from, AsNumber to, UpdateMessage message) {
  // The message rides inside the event's inline capture — no shared_ptr,
  // no per-message heap allocation — and its shell (vector buffers) is
  // retired to the delivering worker's recycler after the update lands.
  engine_.schedule(to, session_delay(from, to),
                   ConvergenceEngine::delivery_tag(from, to),
                   [this, from, to, message = std::move(message)]() mutable {
                     speaker(to).handle_update(from, message);
                     message_recycler().release(std::move(message));
                   });
}

void BgpFabric::arm_mrai(AsNumber owner, AsNumber neighbor,
                         sim::EventAction flush) {
  engine_.schedule(owner, config_.mrai,
                   ConvergenceEngine::timer_tag(owner, neighbor),
                   std::move(flush));
}

sim::SimTime BgpFabric::run_to_convergence(std::uint64_t max_events) {
  return engine_.run(max_events);
}

// The totals are commutative sums, so any walk order gives the same value;
// they still walk in graph order as part of the repo-wide rule that no
// observable output may be produced by iterating an unordered container.

std::uint64_t BgpFabric::total_updates_sent() const {
  std::uint64_t total = 0;
  for (AsNumber asn : graph_.ases()) total += speaker(asn).stats().updates_sent;
  return total;
}

std::uint64_t BgpFabric::total_routes_announced() const {
  std::uint64_t total = 0;
  for (AsNumber asn : graph_.ases()) {
    total += speaker(asn).stats().routes_announced;
  }
  return total;
}

std::uint64_t BgpFabric::total_routes_withdrawn() const {
  std::uint64_t total = 0;
  for (AsNumber asn : graph_.ases()) {
    total += speaker(asn).stats().routes_withdrawn;
  }
  return total;
}

}  // namespace lispcp::routing
