#include "routing/bgp.hpp"

#include <algorithm>

#include "core/arena.hpp"

namespace lispcp::routing {

namespace {

/// Retired UpdateMessage shells, buffers intact: a flush reuses the vector
/// capacity a delivered message gave back instead of growing from zero.
/// Thread-local because shard workers flush and deliver concurrently; a
/// message released on the delivery thread simply seeds that worker's own
/// recycler.  Shells are released with their advert refs already cleared,
/// so a pooled shell never pins an attribute set (or a table) alive.
core::Recycler<UpdateMessage>& message_recycler() {
  thread_local core::Recycler<UpdateMessage> recycler;
  return recycler;
}

/// Scratch buffers for the export/import legs: the path is assembled here,
/// probed against the AttrTable, and only copied when the table has never
/// seen it.  Thread-local because shard workers run speakers concurrently;
/// each use is confined to one call, no reentrancy (announce/import legs
/// never nest).
std::vector<AsNumber>& path_scratch() {
  thread_local std::vector<AsNumber> scratch;
  return scratch;
}
std::vector<AsNumber>& modified_path_scratch() {
  thread_local std::vector<AsNumber> scratch;
  return scratch;
}
std::vector<policy::Community>& community_scratch() {
  thread_local std::vector<policy::Community> scratch;
  return scratch;
}

}  // namespace

BgpSpeaker::BgpSpeaker(BgpFabric& fabric, AsNumber asn)
    : fabric_(fabric), asn_(asn) {
  // A known converged table size lets every RIB jump straight to its final
  // capacity instead of rehashing through the origination storm.
  loc_rib_.reserve(fabric_.config().expected_prefixes);
  const std::vector<AsGraph::Neighbor>& neighbors =
      fabric_.graph().neighbors(asn_);
  neighbor_pos_.reserve(neighbors.size());
  for (std::uint32_t pos = 0; pos < neighbors.size(); ++pos) {
    neighbor_pos_.insert_or_assign(neighbors[pos].asn, pos);
  }
  adj_in_.resize(neighbors.size());
  outbound_.resize(neighbors.size());
  rebuild_export_groups();
}

std::uint32_t BgpSpeaker::neighbor_position(AsNumber neighbor) const {
  const std::uint32_t* pos = neighbor_pos_.find(neighbor);
  if (pos == nullptr) {
    throw std::out_of_range("BgpFabric: no session " + asn_.to_string() +
                            " <-> " + neighbor.to_string());
  }
  return *pos;
}

void BgpSpeaker::rebuild_export_groups() {
  export_groups_.clear();
  const std::vector<AsGraph::Neighbor>& neighbors =
      fabric_.graph().neighbors(asn_);
  for (std::uint32_t pos = 0; pos < neighbors.size(); ++pos) {
    const policy::SessionPolicy* session =
        fabric_.session_policy(asn_, neighbors[pos].asn);
    const NeighborKind kind = neighbors[pos].kind;
    const policy::RouteMap* map =
        session == nullptr ? nullptr : session->export_map;
    const bool valley_free = session == nullptr ? true : session->valley_free;
    ExportGroup* group = nullptr;
    for (ExportGroup& g : export_groups_) {
      if (g.kind == kind && g.export_map == map &&
          g.valley_free == valley_free) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      group = &export_groups_.emplace_back(
          ExportGroup{kind, map, valley_free, {}});
    }
    group->members.push_back(pos);
  }
}

BgpSpeaker::AdjIn& BgpSpeaker::adj_in(std::uint32_t pos) {
  AdjIn& adj = adj_in_[pos];
  if (!adj.sized) {
    adj.sized = true;
    if (fabric_.config().expected_prefixes > 0 &&
        fabric_.graph().neighbors(asn_)[pos].kind != NeighborKind::kCustomer) {
      // Peer/provider sessions carry (close to) the full table; customer
      // sessions only their cone — reserving those would waste the memory.
      adj.routes.reserve(fabric_.config().expected_prefixes);
    }
  }
  return adj;
}

BgpSpeaker::Outbound& BgpSpeaker::outbound(std::uint32_t pos) {
  Outbound& out = outbound_[pos];
  if (!out.sized) {
    out.sized = true;
    if (fabric_.config().expected_prefixes > 0 &&
        fabric_.graph().neighbors(asn_)[pos].kind == NeighborKind::kCustomer) {
      // Customers get the full table, so the Adj-RIB-Out ledger fills up.
      out.advertised.reserve(fabric_.config().expected_prefixes);
    }
  }
  return out;
}

void BgpSpeaker::originate(const net::Ipv4Prefix& prefix) {
  origins_.insert(prefix);
  decide(prefix);
}

void BgpSpeaker::withdraw_origin(const net::Ipv4Prefix& prefix) {
  if (origins_.erase(prefix) == 0) return;
  decide(prefix);
}

void BgpSpeaker::handle_update(AsNumber from, const UpdateMessage& message) {
  ++stats_.updates_received;
  AdjIn& adj = adj_in(neighbor_position(from));
  for (const net::Ipv4Prefix& prefix : message.withdraws) {
    if (adj.routes.erase(prefix) > 0) decide(prefix);
  }
  const policy::SessionPolicy* session = fabric_.session_policy(asn_, from);
  const policy::RouteMap* import =
      session == nullptr ? nullptr : session->import;
  for (const RouteAdvert& advert : message.announces) {
    const std::vector<AsNumber>& path = advert.as_path();
    const bool loops =
        std::find(path.begin(), path.end(), asn_) != path.end();
    if (loops) {
      // A looped advert is unusable, and — update semantics — it implicitly
      // replaces whatever this neighbor said before, so the old path goes.
      ++stats_.loops_rejected;
      if (adj.routes.erase(advert.prefix) > 0) decide(advert.prefix);
      continue;
    }
    AttrRef attrs;
    if (import != nullptr) {
      const auto actions = import->evaluate(policy::RouteContext{
          advert.prefix, path, advert.communities()});
      if (!actions.has_value()) {
        // Import-denied: like a loop reject, the advert still implicitly
        // withdraws whatever this neighbor previously offered.
        ++stats_.imports_filtered;
        if (adj.routes.erase(advert.prefix) > 0) decide(advert.prefix);
        continue;
      }
      if (actions->local_pref == 0 && actions->add_communities.empty() &&
          actions->prepend == 0) {
        attrs = advert.attrs;  // import changed nothing: share the wire attrs
      } else {
        // Import prepend inserts the *neighbor's* ASN, lengthening the
        // path this session offers to the decision process.
        std::vector<AsNumber>& in_path = modified_path_scratch();
        in_path.assign(actions->prepend, from);
        in_path.insert(in_path.end(), path.begin(), path.end());
        std::vector<policy::Community>& comm = community_scratch();
        comm.assign(advert.communities().begin(), advert.communities().end());
        for (const policy::Community c : actions->add_communities) {
          policy::add_community(comm, c);
        }
        attrs = fabric_.attrs().intern(in_path, comm, actions->local_pref);
      }
    } else {
      attrs = advert.attrs;
    }
    adj.routes[advert.prefix] = AdjRoute{std::move(attrs)};
    decide(advert.prefix);
  }
}

const BgpSpeaker::BestRoute* BgpSpeaker::best(
    const net::Ipv4Prefix& prefix) const {
  return loc_rib_.find(prefix);
}

std::vector<net::Ipv4Prefix> BgpSpeaker::rib_prefixes() const {
  return loc_rib_.sorted_keys();
}

void BgpSpeaker::decide(const net::Ipv4Prefix& prefix) {
  // Gather candidates: local origination plus one per advertising neighbor,
  // iterated in graph order for determinism.  Candidates borrow the adj
  // entries' attr refs — no refcount traffic until the winner installs.
  const AttrRef* win_attrs = nullptr;
  AsNumber win_from;
  NeighborKind win_kind = NeighborKind::kCustomer;
  bool win_origin = false;
  std::uint32_t win_pref = policy::kCustomerLocalPref;

  if (origins_.contains(prefix)) {
    win_attrs = &fabric_.origin_attrs();
    win_from = asn_;
    win_origin = true;
  }
  const std::vector<AsGraph::Neighbor>& neighbors =
      fabric_.graph().neighbors(asn_);
  for (std::uint32_t pos = 0; pos < neighbors.size(); ++pos) {
    const AdjRoute* route = adj_in_[pos].routes.find(prefix);
    if (route == nullptr) continue;
    // Local origin beats all; then highest local-pref (role defaults
    // reproduce the legacy relationship-preference order), path length,
    // lowest neighbor ASN.
    const std::uint32_t pref =
        route->attrs.local_pref() != 0
            ? route->attrs.local_pref()
            : policy::role_local_pref(neighbors[pos].kind);
    bool take;
    if (win_attrs == nullptr) {
      take = true;
    } else if (win_origin) {
      take = false;
    } else if (pref != win_pref) {
      take = pref > win_pref;
    } else if (route->attrs.as_path().size() != win_attrs->as_path().size()) {
      take = route->attrs.as_path().size() < win_attrs->as_path().size();
    } else {
      take = neighbors[pos].asn < win_from;
    }
    if (take) {
      win_attrs = &route->attrs;
      win_from = neighbors[pos].asn;
      win_kind = neighbors[pos].kind;
      win_pref = pref;
    }
  }

  const BestRoute* installed = loc_rib_.find(prefix);
  const bool had = installed != nullptr;
  if (win_attrs == nullptr) {
    if (!had) return;
    loc_rib_.erase(prefix);
    ++stats_.best_changes;
    for (std::uint32_t pos = 0; pos < neighbors.size(); ++pos) {
      enqueue(pos, neighbors[pos].asn, prefix, std::nullopt);
    }
    return;
  }
  // Interning makes route equality a pointer compare: while the installed
  // route holds its ref, re-interning equal content always resolves to the
  // same node, so attrs-pointer + provenance equality is exactly the old
  // field-by-field compare (effective local-pref is a pure function of the
  // raw interned pref and the — equal — session role).
  if (had && installed->local_origin == win_origin &&
      installed->learned_from == win_from && installed->attrs == *win_attrs) {
    return;
  }

  BestRoute& slot = loc_rib_[prefix];
  slot.attrs = *win_attrs;
  slot.learned_from = win_from;
  slot.neighbor_kind = win_kind;
  slot.local_origin = win_origin;
  slot.local_pref = win_pref;
  ++stats_.best_changes;
  announce_best(prefix, slot);
}

void BgpSpeaker::announce_best(const net::Ipv4Prefix& prefix,
                               const BestRoute& winner,
                               std::optional<AsNumber> only) {
  // The shared first hop — self prepended to the winner's path — is
  // assembled once in scratch; interning turns it into at most one
  // allocation per distinct path in the network.
  std::vector<AsNumber>& path = path_scratch();
  path.clear();
  path.reserve(winner.as_path().size() + 1);
  path.push_back(asn_);
  path.insert(path.end(), winner.as_path().begin(), winner.as_path().end());

  if (!fabric_.config().share_exports) {
    announce_best_per_neighbor(prefix, winner, path, only);
    return;
  }

  const std::vector<AsGraph::Neighbor>& neighbors =
      fabric_.graph().neighbors(asn_);
  for (const ExportGroup& group : export_groups_) {
    // One role-gate + export-map evaluation per group: every member shares
    // (kind, map, valley-free), so the decision is identical for all of
    // them.  The advert is computed lazily — a group whose members are all
    // split-horizon (or filtered by `only`) never runs the leg.
    const bool role_ok =
        !group.valley_free || exportable(winner, group.kind);
    bool computed = false;
    bool denied = false;
    AttrRef attrs;
    for (const std::uint32_t pos : group.members) {
      const AsNumber neighbor = neighbors[pos].asn;
      if (only.has_value() && neighbor != *only) continue;
      // Split horizon: never echo a route to the session it came from.  A
      // neighbor the new best is not exportable to gets a withdraw instead
      // (it may hold a previously exportable path).
      if (!winner.local_origin && neighbor == winner.learned_from) {
        enqueue(pos, neighbor, prefix, std::nullopt);
        continue;
      }
      if (!role_ok) {
        enqueue(pos, neighbor, prefix, std::nullopt);
        continue;
      }
      if (!computed) {
        computed = true;
        if (group.export_map != nullptr) {
          const auto actions = group.export_map->evaluate(
              policy::RouteContext{prefix, path, winner.communities()});
          if (!actions.has_value()) {
            denied = true;
          } else if (actions->prepend > 0 ||
                     !actions->add_communities.empty()) {
            std::vector<AsNumber>& out_path = modified_path_scratch();
            out_path.assign(actions->prepend, asn_);
            out_path.insert(out_path.end(), path.begin(), path.end());
            std::vector<policy::Community>& comm = community_scratch();
            comm.assign(winner.communities().begin(),
                        winner.communities().end());
            for (const policy::Community c : actions->add_communities) {
              policy::add_community(comm, c);
            }
            attrs = fabric_.attrs().intern(out_path, comm, 0);
          } else {
            attrs = fabric_.attrs().intern(path, winner.communities(), 0);
          }
        } else {
          attrs = fabric_.attrs().intern(path, winner.communities(), 0);
        }
      }
      if (denied) {
        ++stats_.exports_filtered;
        enqueue(pos, neighbor, prefix, std::nullopt);
        continue;
      }
      enqueue(pos, neighbor, prefix, RouteAdvert{prefix, attrs});
    }
  }
}

void BgpSpeaker::announce_best_per_neighbor(const net::Ipv4Prefix& prefix,
                                            const BestRoute& winner,
                                            const std::vector<AsNumber>& path,
                                            std::optional<AsNumber> only) {
  const std::vector<AsGraph::Neighbor>& neighbors =
      fabric_.graph().neighbors(asn_);
  for (std::uint32_t pos = 0; pos < neighbors.size(); ++pos) {
    const AsNumber neighbor = neighbors[pos].asn;
    if (only.has_value() && neighbor != *only) continue;
    if (!winner.local_origin && neighbor == winner.learned_from) {
      enqueue(pos, neighbor, prefix, std::nullopt);
      continue;
    }
    const policy::SessionPolicy* session =
        fabric_.session_policy(asn_, neighbor);
    const bool role_ok = (session != nullptr && !session->valley_free) ||
                         exportable(winner, neighbors[pos].kind);
    if (!role_ok) {
      enqueue(pos, neighbor, prefix, std::nullopt);
      continue;
    }
    if (session != nullptr && session->export_map != nullptr) {
      const auto actions = session->export_map->evaluate(
          policy::RouteContext{prefix, path, winner.communities()});
      if (!actions.has_value()) {
        ++stats_.exports_filtered;
        enqueue(pos, neighbor, prefix, std::nullopt);
        continue;
      }
      if (actions->prepend > 0 || !actions->add_communities.empty()) {
        std::vector<AsNumber>& out_path = modified_path_scratch();
        out_path.assign(actions->prepend, asn_);
        out_path.insert(out_path.end(), path.begin(), path.end());
        std::vector<policy::Community>& comm = community_scratch();
        comm.assign(winner.communities().begin(), winner.communities().end());
        for (const policy::Community c : actions->add_communities) {
          policy::add_community(comm, c);
        }
        enqueue(pos, neighbor, prefix,
                RouteAdvert{prefix, fabric_.attrs().intern(out_path, comm, 0)});
      } else {
        enqueue(pos, neighbor, prefix,
                RouteAdvert{prefix, fabric_.attrs().intern(
                                        path, winner.communities(), 0)});
      }
      continue;
    }
    enqueue(pos, neighbor, prefix,
            RouteAdvert{prefix,
                        fabric_.attrs().intern(path, winner.communities(), 0)});
  }
}

void BgpSpeaker::refresh_exports(std::optional<AsNumber> only) {
  // Sorted snapshot: refresh order is observable through MRAI batching, so
  // it must not depend on table layout.
  for (const net::Ipv4Prefix& prefix : loc_rib_.sorted_keys()) {
    const BestRoute* installed = loc_rib_.find(prefix);
    if (installed != nullptr) announce_best(prefix, *installed, only);
  }
}

bool BgpSpeaker::exportable(const BestRoute& route, NeighborKind to) {
  if (to == NeighborKind::kCustomer) return true;
  return route.local_origin || route.neighbor_kind == NeighborKind::kCustomer;
}

void BgpSpeaker::enqueue(std::uint32_t pos, AsNumber neighbor,
                         const net::Ipv4Prefix& prefix,
                         std::optional<RouteAdvert> advert) {
  Outbound& out = outbound(pos);
  if (!advert.has_value()) {
    const std::optional<RouteAdvert>* pending = out.pending.find(prefix);
    const bool pending_announce = pending != nullptr && pending->has_value();
    if (pending_announce) {
      // The announce never left this router: just cancel it.  A withdraw is
      // still owed if an *earlier* flush advertised the prefix.
      out.pending.erase(prefix);
    }
    if (out.advertised.contains(prefix)) {
      out.pending[prefix] = std::nullopt;
    } else if (!pending_announce) {
      return;  // neighbor never heard of it: nothing to retract
    }
  } else {
    out.pending[prefix] = std::move(advert);
  }
  if (!out.pending.empty() && !out.mrai_armed) {
    out.mrai_armed = true;
    fabric_.arm_mrai(asn_, neighbor,
                     [this, pos, neighbor] { flush(pos, neighbor); });
  }
}

void BgpSpeaker::flush(std::uint32_t pos, AsNumber neighbor) {
  Outbound& out = outbound_[pos];
  out.mrai_armed = false;
  if (out.pending.empty()) return;
  // Sorted snapshot: the wire order (ascending prefix) is part of the
  // byte-identical-records contract and must not depend on table layout.
  const std::vector<net::Ipv4Prefix> prefixes = out.pending.sorted_keys();
  UpdateMessage message = message_recycler().acquire();
  message.announces.clear();
  message.withdraws.clear();
  message.announces.reserve(prefixes.size());
  for (const net::Ipv4Prefix& prefix : prefixes) {
    std::optional<RouteAdvert>& advert = *out.pending.find(prefix);
    if (advert.has_value()) {
      message.announces.push_back(std::move(*advert));
      out.advertised.insert(prefix);
    } else {
      message.withdraws.push_back(prefix);
      out.advertised.erase(prefix);
    }
  }
  out.pending.clear();
  ++stats_.updates_sent;
  stats_.routes_announced += message.announces.size();
  stats_.routes_withdrawn += message.withdraws.size();
  fabric_.send(asn_, neighbor, std::move(message));
}

namespace {

ShardEngineConfig engine_config(const BgpConfig& config) {
  ShardEngineConfig out;
  out.shards = config.shards;
  // Lookahead: every cross-shard delivery takes at least the base session
  // delay (jitter only adds).  MRAI timers are always shard-local.
  out.epoch = config.session_delay;
  out.workers = config.shard_workers;
  return out;
}

}  // namespace

BgpFabric::BgpFabric(const AsGraph& graph, BgpConfig config)
    : graph_(graph), config_(config), engine_(graph, engine_config(config)) {
  origin_attrs_ = attrs_.intern(std::span<const AsNumber>{},
                                std::span<const policy::Community>{},
                                policy::kCustomerLocalPref);
  const std::vector<AsNumber>& ases = graph_.ases();
  as_index_.reserve(ases.size());
  speakers_.reserve(ases.size());
  for (std::uint32_t i = 0; i < ases.size(); ++i) {
    as_index_.insert_or_assign(ases[i], i);
    speakers_.push_back(std::make_unique<BgpSpeaker>(*this, ases[i]));
  }
}

BgpSpeaker& BgpFabric::speaker(AsNumber asn) {
  const std::uint32_t* index = as_index_.find(asn);
  if (index == nullptr) {
    throw std::out_of_range("BgpFabric: unknown " + asn.to_string());
  }
  return *speakers_[*index];
}

const BgpSpeaker& BgpFabric::speaker(AsNumber asn) const {
  const std::uint32_t* index = as_index_.find(asn);
  if (index == nullptr) {
    throw std::out_of_range("BgpFabric: unknown " + asn.to_string());
  }
  return *speakers_[*index];
}

NeighborKind BgpFabric::kind_of(AsNumber self, AsNumber neighbor) const {
  return graph_.neighbors(self)[speaker(self).neighbor_position(neighbor)].kind;
}

sim::SimDuration BgpFabric::session_delay(AsNumber a, AsNumber b) const {
  if (config_.session_jitter.ns() == 0) return config_.session_delay;
  // Deterministic per-session jitter: hash the unordered pair.
  const std::uint64_t lo = std::min(a.value(), b.value());
  const std::uint64_t hi = std::max(a.value(), b.value());
  std::uint64_t x = (lo << 32) | hi;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  const auto jitter_ns = static_cast<std::int64_t>(
      x % static_cast<std::uint64_t>(config_.session_jitter.ns()));
  return config_.session_delay + sim::SimDuration::nanos(jitter_ns);
}

void BgpFabric::apply(const std::vector<RouteDelta>& batch) {
  // The batch is the dirty-prefix worklist: deltas run in order, each one
  // re-deciding exactly its own prefix.  decide() reads only per-prefix
  // state (the origin bit and the per-neighbor adj entries for that
  // prefix), so per-delta sequencing is byte-identical to any other
  // grouping of the same deltas — the contract the parity tests pin.
  for (const RouteDelta& delta : batch) {
    BgpSpeaker& owner = speaker(delta.owner);
    switch (delta.kind) {
      case RouteDelta::Kind::kAnnounce:
        owner.originate(delta.prefix);
        break;
      case RouteDelta::Kind::kWithdraw:
        owner.withdraw_origin(delta.prefix);
        break;
      case RouteDelta::Kind::kRefresh:
        // A refresh is the one sanctioned policy-edit point, so the export
        // update-groups are recomputed before the export leg re-runs.
        owner.rebuild_export_groups();
        owner.refresh_exports(delta.session);
        break;
    }
  }
}

void BgpFabric::send(AsNumber from, AsNumber to, UpdateMessage message) {
  // The message rides inside the event's inline capture — no shared_ptr,
  // no per-message heap allocation — and its shell (vector buffers) is
  // retired to the delivering worker's recycler after the update lands.
  // The adverts' attr refs are dropped first (clear keeps the capacity):
  // a pooled shell must not pin attribute sets — or a destroyed fabric's
  // table — from a past life.
  engine_.schedule(to, session_delay(from, to),
                   ConvergenceEngine::delivery_tag(from, to),
                   [this, from, to, message = std::move(message)]() mutable {
                     speaker(to).handle_update(from, message);
                     message.announces.clear();
                     message.withdraws.clear();
                     message_recycler().release(std::move(message));
                   });
}

void BgpFabric::arm_mrai(AsNumber owner, AsNumber neighbor,
                         sim::EventAction flush) {
  engine_.schedule(owner, config_.mrai,
                   ConvergenceEngine::timer_tag(owner, neighbor),
                   std::move(flush));
}

sim::SimTime BgpFabric::run_to_convergence(std::uint64_t max_events) {
  return engine_.run(max_events);
}

// The totals are commutative sums, so any walk order gives the same value;
// they still walk in graph order as part of the repo-wide rule that no
// observable output may be produced by iterating an unordered container.

std::uint64_t BgpFabric::total_updates_sent() const {
  std::uint64_t total = 0;
  for (AsNumber asn : graph_.ases()) total += speaker(asn).stats().updates_sent;
  return total;
}

std::uint64_t BgpFabric::total_routes_announced() const {
  std::uint64_t total = 0;
  for (AsNumber asn : graph_.ases()) {
    total += speaker(asn).stats().routes_announced;
  }
  return total;
}

std::uint64_t BgpFabric::total_routes_withdrawn() const {
  std::uint64_t total = 0;
  for (AsNumber asn : graph_.ases()) {
    total += speaker(asn).stats().routes_withdrawn;
  }
  return total;
}

}  // namespace lispcp::routing
