// shard_engine.hpp — the sharded BGP convergence engine.
//
// The DFZ studies converge a path-vector mesh over 1k+ ASes, and the global
// single-threaded event queue made that the wall-clock bottleneck of the F
// benches.  This engine partitions the AS graph into K shards — tier-1 and
// transit ASes pinned round-robin by tier index, stubs hashed by ASN — and
// gives each shard its own sim::ShardQueue.  Shards advance through
// barrier-synchronised epochs of length `epoch` (the engine's lookahead,
// the minimum cross-shard message delay): within a window [T, T+epoch) a
// shard fires only its local events, and anything it schedules for another
// shard — always at least `epoch` in the future — is published to a
// mailbox that the epoch barrier drains into the destination queue before
// the next window opens.
//
// **Determinism.**  Results are byte-identical for every shard count and
// worker count, because event ordering never depends on execution:
//
//   * ShardQueue orders same-instant events by (cause time, content tag),
//     both pure simulation facts, not by insertion sequence;
//   * an event's handler touches only its owner's state, so the relative
//     order of same-instant events at *different* owners is immaterial;
//   * two distinct simultaneous events at the same owner always differ in
//     their key: deliveries are keyed by (from, to) and a session carries
//     at most one message per instant (MRAI serialises flushes), timers by
//     (owner, peer) and at most one MRAI timer per session is armed.
//
// With K=1 the engine degenerates to a single deterministic queue and
// reproduces the pre-sharding global-queue run (same event set; ties that
// the old queue broke by insertion order are broken by cause time, which
// coincides with insertion order for events scheduled at distinct
// instants).  See DESIGN.md §"Sharded BGP execution".
//
// Shard count (K, the determinism/partition parameter) is deliberately
// decoupled from worker count (W, the execution threads): K=8 on a 1-core
// host runs the same windows sequentially with zero barrier overhead and
// produces the same bytes as K=8 on 8 cores.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/flat_map.hpp"
#include "routing/as_graph.hpp"
#include "sim/shard_queue.hpp"

namespace lispcp::routing {

struct ShardEngineConfig {
  /// RIB partitions.  Results are identical for any value; > 1 enables
  /// intra-point parallelism.
  std::size_t shards = 1;
  /// Lookahead: lower bound on every cross-shard event delay.  Must be
  /// positive when shards > 1.
  sim::SimDuration epoch;
  /// Worker threads driving the shards (0 = min(shards, hardware)).
  std::size_t workers = 0;
  /// Root seed for the per-shard Rng streams (sim::Rng::derive).
  std::uint64_t seed = 1;
};

/// K deterministic shard queues plus the epoch-barrier run loop.
class ConvergenceEngine {
 public:
  ConvergenceEngine(const AsGraph& graph, ShardEngineConfig config);
  ~ConvergenceEngine();

  ConvergenceEngine(const ConvergenceEngine&) = delete;
  ConvergenceEngine& operator=(const ConvergenceEngine&) = delete;

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return queues_.size();
  }
  [[nodiscard]] std::size_t worker_count() const noexcept { return workers_; }
  /// Home shard of `asn`; throws std::out_of_range if absent.
  [[nodiscard]] std::size_t shard_of(AsNumber asn) const;

  /// The global clock: the latest event fired by any completed run().
  /// Meaningful between runs (all shard clocks are aligned to it).
  [[nodiscard]] sim::SimTime now() const noexcept { return now_; }

  /// True when no event is pending on any shard.
  [[nodiscard]] bool idle() const noexcept;

  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return processed_;
  }

  /// Events fired by the most recent run() — the incremental cost of the
  /// last re-convergence (a full origination storm and a single-prefix
  /// flap differ by orders of magnitude here; the churn studies record it
  /// per event).
  [[nodiscard]] std::uint64_t last_run_processed() const noexcept {
    return last_run_processed_;
  }

  /// Advances the idle engine's clock by `by` without firing anything —
  /// the gap between two churn events in a long-lived simulation.  All
  /// shard clocks move together, so everything scheduled afterwards is
  /// cause-keyed relative to the new instant; event *cascades* are
  /// time-translation invariant (per-session jitter is a pure pair hash,
  /// MRAI and delivery delays are relative), which is what makes a plan
  /// spread over simulated days byte-comparable to back-to-back replays.
  /// Throws std::logic_error if events are pending.
  void advance(sim::SimDuration by);

  /// Schedules an event owned by `asn` (it executes on `asn`'s shard)
  /// `delay` after the caller's current virtual time — the firing event's
  /// instant when called from inside a run, the global clock otherwise.
  /// `tag` must uniquely name the event among simultaneous same-cause
  /// events at the same owner (use delivery_tag/timer_tag).  Cross-shard
  /// scheduling requires delay >= the engine's epoch (the lookahead
  /// contract); violating it throws std::logic_error.
  void schedule(AsNumber asn, sim::SimDuration delay, std::uint64_t tag,
                sim::EventAction action);

  /// Runs until every shard queue drains; returns the global convergence
  /// instant (unchanged if nothing was pending).  `max_events` guards
  /// against runaway event chains (0 = unlimited), checked at epoch
  /// boundaries.
  sim::SimTime run(std::uint64_t max_events = 0);

  // Content tags (bit 63 = event kind; endpoints must be < 2^31, checked
  // at construction).
  [[nodiscard]] static constexpr std::uint64_t delivery_tag(
      AsNumber from, AsNumber to) noexcept {
    return (static_cast<std::uint64_t>(from.value()) << 31) | to.value();
  }
  [[nodiscard]] static constexpr std::uint64_t timer_tag(
      AsNumber owner, AsNumber peer) noexcept {
    return (std::uint64_t{1} << 63) |
           (static_cast<std::uint64_t>(owner.value()) << 31) | peer.value();
  }

 private:
  struct Mail {
    std::size_t dst;
    sim::SimTime at;
    sim::EventKey key;
    sim::EventAction action;
  };

  /// Fires shard `s`'s window with the thread-local caller context set.
  std::uint64_t run_shard_window(std::size_t s, sim::SimTime end,
                                 std::uint64_t cap);
  /// One barrier-synchronised window across all shards.
  void run_epoch(sim::SimTime end, std::uint64_t cap);
  void ensure_workers();
  void worker_loop(std::size_t w);
  [[nodiscard]] std::uint64_t remaining_cap(std::uint64_t max_events) const;
  void check_budget(std::uint64_t max_events) const;

  sim::SimDuration epoch_;
  std::size_t workers_ = 1;
  sim::SimTime now_;
  std::uint64_t processed_ = 0;
  std::uint64_t last_run_processed_ = 0;
  std::vector<std::unique_ptr<sim::ShardQueue>> queues_;
  /// ASN -> home shard (open-addressing: shard_of sits on every schedule()).
  core::FlatMap<std::uint32_t, std::uint32_t> home_;
  /// Per-source-shard mailboxes: written only by the worker driving the
  /// source shard during a window, drained by the barrier.
  std::vector<std::vector<Mail>> outbox_;
  std::vector<std::uint64_t> fired_;  ///< per-shard window event counts
  /// Scratch for run_epoch: shards holding an event before the window end.
  /// A small delta (one flap) leaves most shards idle; the epoch loop runs
  /// the active ones inline instead of waking the worker pool for them.
  std::vector<std::size_t> active_;
  /// Exceptions an event action raised on a pool thread, captured per
  /// shard so the barrier can complete before run() rethrows the first
  /// (lowest shard index — deterministic) on the caller.
  std::vector<std::exception_ptr> errors_;

  // Worker pool (spawned lazily; the run() caller acts as worker 0).
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;
  std::size_t pending_ = 0;
  bool stop_ = false;
  sim::SimTime window_end_;
  std::uint64_t window_cap_ = 0;
};

}  // namespace lispcp::routing
