// as_graph.hpp — the inter-domain topology at the autonomous-system level.
//
// The paper's §1 motivation is the scalability of inter-domain routing: "the
// scaling benefits arise when EID addresses are not routable through the
// Internet — only the RLOCs are globally routable".  Quantifying that claim
// (experiment F2) needs the substrate this module provides: an AS graph with
// business relationships (customer-provider / peer-peer, the Gao-Rexford
// model) over which the path-vector protocol in bgp.hpp propagates routes.
//
// This layer is deliberately separate from the packet-level topology in
// src/topo: DFZ routing-table scaling is a property of the AS-level control
// plane, and modelling it per-packet would add nothing but cost.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/snapshot_cache.hpp"
#include "sim/rng.hpp"

namespace lispcp::routing {

/// An autonomous-system number.  Strong type: never interchangeable with a
/// plain integer index.
class AsNumber {
 public:
  constexpr AsNumber() noexcept = default;
  constexpr explicit AsNumber(std::uint32_t value) noexcept : value_(value) {}

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }
  [[nodiscard]] std::string to_string() const {
    return "AS" + std::to_string(value_);
  }

  friend constexpr auto operator<=>(AsNumber, AsNumber) noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

/// The role an AS plays in the synthetic Internet.  Tier-1s form a full
/// peering mesh and have no providers; transits have providers among the
/// tier above and sell transit below; stubs (the LISP "sites") only buy.
enum class AsTier : std::uint8_t { kTier1, kTransit, kStub };

[[nodiscard]] std::string to_string(AsTier tier);

/// How a neighbor relates to *this* AS on a given session (Gao-Rexford).
enum class NeighborKind : std::uint8_t {
  kCustomer,  ///< the neighbor pays us for transit
  kProvider,  ///< we pay the neighbor for transit
  kPeer,      ///< settlement-free exchange of customer routes
};

[[nodiscard]] std::string to_string(NeighborKind kind);

/// An AS-level topology: nodes with tiers, edges with business
/// relationships.  Construction-only API — the graph is immutable once
/// handed to a BgpFabric.
class AsGraph {
 public:
  struct Neighbor {
    AsNumber asn;
    NeighborKind kind;
  };

  /// Adds an AS; throws std::invalid_argument on duplicates.
  void add_as(AsNumber asn, AsTier tier);

  /// Records that `customer` buys transit from `provider`.  Both endpoints
  /// must exist; duplicate or self edges throw.
  void add_customer_provider(AsNumber customer, AsNumber provider);

  /// Records a settlement-free peering between `a` and `b`.
  void add_peering(AsNumber a, AsNumber b);

  [[nodiscard]] bool contains(AsNumber asn) const noexcept {
    return index_.contains(asn.value());
  }
  [[nodiscard]] std::size_t size() const noexcept { return ases_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_; }

  /// Tier of `asn`; throws std::out_of_range if absent.
  [[nodiscard]] AsTier tier(AsNumber asn) const;

  /// All sessions of `asn`, each labelled from `asn`'s perspective.
  [[nodiscard]] const std::vector<Neighbor>& neighbors(AsNumber asn) const;

  /// Relationship of `b` as seen from `a`, or nullopt when no session
  /// exists (used by the policy layer's valley-free path checker).
  [[nodiscard]] std::optional<NeighborKind> kind_between(AsNumber a,
                                                         AsNumber b) const;

  /// Every AS, in insertion order (deterministic iteration).
  [[nodiscard]] const std::vector<AsNumber>& ases() const noexcept {
    return ases_;
  }

  /// All ASes of the given tier, in insertion order.
  [[nodiscard]] std::vector<AsNumber> ases_of_tier(AsTier tier) const;

 private:
  struct Entry {
    AsTier tier;
    std::vector<Neighbor> neighbors;
  };

  Entry& entry(AsNumber asn);
  [[nodiscard]] const Entry& entry(AsNumber asn) const;
  void add_edge(AsNumber a, NeighborKind a_sees_b, AsNumber b,
                NeighborKind b_sees_a);

  std::vector<AsNumber> ases_;
  std::unordered_map<std::uint32_t, Entry> index_;
  std::size_t edges_ = 0;
};

/// Parameters for the synthetic Internet used by the F2 study: a three-tier
/// hierarchy in the spirit of 2008-era topology surveys — a small clique of
/// tier-1s, a layer of regional transits, and the stub sites that LISP's
/// EID/RLOC split is about.
struct SyntheticInternetConfig {
  std::size_t tier1_count = 4;     ///< full peering mesh at the top
  std::size_t transit_count = 12;  ///< regional providers
  std::size_t stub_count = 100;    ///< edge sites (LISP domains)
  /// Providers per transit AS, drawn from the tier-1 set.
  std::size_t providers_per_transit = 2;
  /// Providers per stub (1 = single-homed, >= 2 = multihomed), drawn from
  /// the transit set.  The paper's TE claims presuppose multihoming.
  std::size_t providers_per_stub = 2;
  /// Probability that two transit ASes sharing a tier-1 provider also peer.
  double transit_peering_probability = 0.2;
  std::uint64_t seed = 1;

  /// Equality is the snapshot-cache key: the built graph is a pure function
  /// of these fields.
  friend bool operator==(const SyntheticInternetConfig&,
                         const SyntheticInternetConfig&) = default;
};

/// Builds the three-tier synthetic Internet.  Deterministic for a given
/// config (all randomness from the seeded Rng).
///
/// AS numbering: tier-1s get 1..T1, transits T1+1..T1+T, stubs follow.
[[nodiscard]] AsGraph build_synthetic_internet(const SyntheticInternetConfig& config);

/// Copy-on-write variant: inside a SyntheticInternetScope (opened by
/// scenario::Runner::run around its point loop), points whose configs are
/// equal fork one shared immutable graph instead of each rebuilding it —
/// the F2 sweep's (scenario × deaggregation) arms differ only in what they
/// originate, not in topology.  Outside any scope this is a plain build.
/// The graph is deterministic, so sharing can never change results.
[[nodiscard]] std::shared_ptr<const AsGraph> shared_synthetic_internet(
    const SyntheticInternetConfig& config);

/// Retains shared_synthetic_internet snapshots while alive (RAII).
class SyntheticInternetScope {
 public:
  SyntheticInternetScope();

 private:
  core::SnapshotCache<SyntheticInternetConfig, AsGraph>::Scope scope_;
};

}  // namespace lispcp::routing

template <>
struct std::hash<lispcp::routing::AsNumber> {
  std::size_t operator()(lispcp::routing::AsNumber asn) const noexcept {
    return std::hash<std::uint32_t>{}(asn.value());
  }
};
