// bgp.hpp — a path-vector inter-domain routing protocol (BGP-lite).
//
// Implements the parts of BGP that determine default-free-zone (DFZ)
// routing-table size and update churn — the quantities the paper's §1
// motivation is about:
//
//   * per-neighbor Adj-RIB-In and a Loc-RIB with the standard decision
//     process (relationship preference customer > peer > provider, then
//     shortest AS path, then lowest neighbor ASN as the deterministic
//     tie-break);
//   * Gao-Rexford export policy (customer routes go everywhere; peer and
//     provider routes go only to customers), which keeps paths valley-free
//     and guarantees convergence;
//   * AS-path loop detection on receipt;
//   * MRAI-style batching of outbound updates per session.
//
// Sessions exchange messages through the sharded convergence engine
// (routing/shard_engine.hpp) with a per-session propagation delay, so
// "convergence time" is a simulated-time measurement, and
// run_to_convergence() returning means the protocol has converged (no
// event pending on any shard).  Results are byte-identical for every
// shard count; K=1 reproduces the former global-queue run.
//
// The abstraction level is the AS, not the packet: updates are structs, not
// serialized TCP segments.  RIB sizes and message counts — the outputs of
// experiment F2 — do not depend on the octet encoding.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/flat_map.hpp"
#include "net/ipv4.hpp"
#include "routing/as_graph.hpp"
#include "routing/shard_engine.hpp"

namespace lispcp::routing {

class BgpFabric;

/// One reachability announcement inside an update message.  `as_path`
/// follows wire convention: front() is the most recently prepended AS (the
/// sender), back() is the origin.
struct RouteAdvert {
  net::Ipv4Prefix prefix;
  std::vector<AsNumber> as_path;
};

/// What one speaker sends a neighbor per MRAI flush.
struct UpdateMessage {
  std::vector<RouteAdvert> announces;
  std::vector<net::Ipv4Prefix> withdraws;
};

struct BgpConfig {
  /// One-way session propagation delay, plus deterministic per-session
  /// jitter in [0, session_jitter).
  sim::SimDuration session_delay = sim::SimDuration::millis(30);
  sim::SimDuration session_jitter = sim::SimDuration::millis(10);
  /// Outbound updates to one neighbor are batched for this long before a
  /// flush (the Min Route Advertisement Interval, abbreviated).
  sim::SimDuration mrai = sim::SimDuration::millis(100);
  /// Convergence-engine shards (per-AS RIB partitions).  Results are
  /// byte-identical for any value; > 1 parallelises convergence inside one
  /// sweep point and requires session_delay > 0 (the engine's lookahead).
  std::size_t shards = 1;
  /// Worker threads driving the shards (0 = min(shards, hardware)).  Never
  /// affects results — only wall-clock.
  std::size_t shard_workers = 0;
};

struct BgpSpeakerStats {
  std::uint64_t updates_sent = 0;        ///< update messages (flushes)
  std::uint64_t updates_received = 0;
  std::uint64_t routes_announced = 0;    ///< advert records sent
  std::uint64_t routes_withdrawn = 0;    ///< withdraw records sent
  std::uint64_t loops_rejected = 0;      ///< adverts dropped: own ASN in path
  std::uint64_t best_changes = 0;        ///< Loc-RIB best-route transitions
};

/// One AS's routing process.
class BgpSpeaker {
 public:
  BgpSpeaker(BgpFabric& fabric, AsNumber asn);

  BgpSpeaker(const BgpSpeaker&) = delete;
  BgpSpeaker& operator=(const BgpSpeaker&) = delete;

  [[nodiscard]] AsNumber asn() const noexcept { return asn_; }

  /// Injects a locally originated prefix and schedules its propagation.
  void originate(const net::Ipv4Prefix& prefix);

  /// Withdraws a locally originated prefix; no-op if never originated.
  void withdraw_origin(const net::Ipv4Prefix& prefix);

  /// Delivery hook used by the fabric.
  void handle_update(AsNumber from, const UpdateMessage& message);

  /// The best route currently installed for `prefix`, if any.
  struct BestRoute {
    std::vector<AsNumber> as_path;  ///< empty for locally originated
    AsNumber learned_from;          ///< == asn() for locally originated
    NeighborKind neighbor_kind = NeighborKind::kCustomer;
    bool local_origin = false;
  };
  [[nodiscard]] const BestRoute* best(const net::Ipv4Prefix& prefix) const;

  /// Loc-RIB size: the DFZ table when this AS is a tier-1.
  [[nodiscard]] std::size_t rib_size() const noexcept { return loc_rib_.size(); }

  /// All Loc-RIB prefixes, ascending (a sorted snapshot of the flat table —
  /// the same order the former std::map RIB iterated in).
  [[nodiscard]] std::vector<net::Ipv4Prefix> rib_prefixes() const;

  [[nodiscard]] const BgpSpeakerStats& stats() const noexcept { return stats_; }

 private:
  /// Re-runs the decision process for one prefix; if the best route
  /// changed, installs it and enqueues the delta to every eligible session.
  void decide(const net::Ipv4Prefix& prefix);

  /// Gao-Rexford: may `route` be told to a neighbor of kind `to`?
  [[nodiscard]] static bool exportable(const BestRoute& route, NeighborKind to);

  /// Queues an announce/withdraw for `neighbor` and arms its MRAI timer.
  void enqueue(AsNumber neighbor, const net::Ipv4Prefix& prefix,
               std::optional<RouteAdvert> advert);
  void flush(AsNumber neighbor);

  BgpFabric& fabric_;
  AsNumber asn_;

  // The RIB tables are open-addressing flat maps (core/flat_map.hpp): the
  // decision process and update handling only ever do point lookups, and
  // the two order-sensitive edges — MRAI flush emission and rib_prefixes()
  // — take an explicit sorted snapshot, so the emitted bytes match the
  // former std::map tables exactly while the hot path stops chasing
  // red-black-tree nodes.

  /// Adj-RIB-In: per neighbor, the paths it advertised.
  struct AdjIn {
    core::FlatMap<net::Ipv4Prefix, std::vector<AsNumber>> routes;
  };
  std::unordered_map<AsNumber, AdjIn> adj_in_;

  core::FlatMap<net::Ipv4Prefix, BestRoute> loc_rib_;
  core::FlatSet<net::Ipv4Prefix> origins_;

  /// Pending outbound deltas per neighbor: nullopt value = withdraw.
  /// `advertised` is the Adj-RIB-Out ledger, kept so a route that was never
  /// told to a neighbor is never withdrawn from it.  `mrai_armed` tracks
  /// the pending flush timer (cleared when it fires; a flush that finds
  /// nothing pending is a no-op, exactly like the un-cancelled timer of
  /// the old event-handle scheme).
  struct Outbound {
    core::FlatMap<net::Ipv4Prefix, std::optional<RouteAdvert>> pending;
    core::FlatSet<net::Ipv4Prefix> advertised;
    bool mrai_armed = false;
  };
  std::unordered_map<AsNumber, Outbound> outbound_;

  BgpSpeakerStats stats_;
};

/// Owns one speaker per AS, the sharded convergence engine they run on,
/// and the message plumbing between them.
class BgpFabric {
 public:
  explicit BgpFabric(const AsGraph& graph, BgpConfig config = {});

  BgpFabric(const BgpFabric&) = delete;
  BgpFabric& operator=(const BgpFabric&) = delete;

  [[nodiscard]] BgpSpeaker& speaker(AsNumber asn);
  [[nodiscard]] const BgpSpeaker& speaker(AsNumber asn) const;

  [[nodiscard]] const AsGraph& graph() const noexcept { return graph_; }
  [[nodiscard]] const BgpConfig& config() const noexcept { return config_; }
  [[nodiscard]] const ConvergenceEngine& engine() const noexcept {
    return engine_;
  }

  /// Current virtual time (the latest convergence instant).
  [[nodiscard]] sim::SimTime now() const noexcept { return engine_.now(); }

  /// Relationship of `neighbor` as seen from `self`; throws if no session.
  [[nodiscard]] NeighborKind kind_of(AsNumber self, AsNumber neighbor) const;

  /// Schedules delivery of `message` on the (from, to) session.
  void send(AsNumber from, AsNumber to, UpdateMessage message);

  /// Arms `owner`'s MRAI flush timer toward `neighbor` (speaker plumbing).
  void arm_mrai(AsNumber owner, AsNumber neighbor, sim::EventAction flush);

  /// Runs the engine until no work remains on any shard, i.e. until the
  /// protocol has converged.  Returns the convergence instant.
  sim::SimTime run_to_convergence(std::uint64_t max_events = 50'000'000);

  /// Messages in flight plus pending MRAI flushes are queued events, so
  /// this is exact, not heuristic.
  [[nodiscard]] bool converged() const { return engine_.idle(); }

  /// Sum of a stat over all speakers.
  [[nodiscard]] std::uint64_t total_updates_sent() const;
  [[nodiscard]] std::uint64_t total_routes_announced() const;
  [[nodiscard]] std::uint64_t total_routes_withdrawn() const;

 private:
  [[nodiscard]] sim::SimDuration session_delay(AsNumber a, AsNumber b) const;

  const AsGraph& graph_;
  BgpConfig config_;
  ConvergenceEngine engine_;
  std::unordered_map<AsNumber, std::unique_ptr<BgpSpeaker>> speakers_;
};

}  // namespace lispcp::routing
