// bgp.hpp — a path-vector inter-domain routing protocol (BGP-lite).
//
// Implements the parts of BGP that determine default-free-zone (DFZ)
// routing-table size and update churn — the quantities the paper's §1
// motivation is about:
//
//   * per-neighbor Adj-RIB-In and a Loc-RIB with the standard decision
//     process (highest local-pref — whose role defaults encode the
//     relationship preference customer > peer > provider — then shortest
//     AS path, then lowest neighbor ASN as the deterministic tie-break);
//   * Gao-Rexford export policy (customer routes go everywhere; peer and
//     provider routes go only to customers), which keeps paths valley-free
//     and guarantees convergence;
//   * an optional per-session policy layer (routing/policy.hpp): import/
//     export route-map chains and a per-session valley-free gate.  With
//     BgpConfig::policy null the speaker follows the exact legacy path —
//     records are byte-identical to pre-policy artifacts;
//   * AS-path loop detection on receipt;
//   * MRAI-style batching of outbound updates per session.
//
// Two shared structures keep the hot path allocation-free (DESIGN.md
// "Export update-groups and attribute interning"):
//
//   * path attributes are hash-consed: RouteAdvert, Adj-RIB-In, Loc-RIB,
//     and pending-delta entries hold refcounted AttrRefs into a per-fabric
//     AttrTable (routing/attr_table.hpp) instead of owning vectors, so
//     receiving, deciding, and re-advertising a route copies a pointer,
//     not a path;
//   * each speaker partitions its sessions into export update-groups —
//     equivalence classes under (NeighborKind, export-map identity,
//     valley-free flag) — and runs the export leg once per group, fanning
//     the shared interned advert out by reference.  Groups are rebuilt
//     only on policy edits (the RouteDelta kRefresh path).
//
// Sessions exchange messages through the sharded convergence engine
// (routing/shard_engine.hpp) with a per-session propagation delay, so
// "convergence time" is a simulated-time measurement, and
// run_to_convergence() returning means the protocol has converged (no
// event pending on any shard).  Results are byte-identical for every
// shard count; K=1 reproduces the former global-queue run.
//
// The abstraction level is the AS, not the packet: updates are structs, not
// serialized TCP segments.  RIB sizes and message counts — the outputs of
// experiment F2 — do not depend on the octet encoding.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/flat_map.hpp"
#include "net/ipv4.hpp"
#include "routing/as_graph.hpp"
#include "routing/attr_table.hpp"
#include "routing/policy.hpp"
#include "routing/shard_engine.hpp"

namespace lispcp::routing {

class BgpFabric;

/// One reachability announcement inside an update message.  The path
/// attributes are a shared interned ref: `as_path()` follows wire
/// convention — front() is the most recently prepended AS (the sender),
/// back() the origin — and `communities()` is sorted-unique, accumulating
/// along the propagation path (empty with policy off).  Build one by hand
/// via BgpFabric::make_advert (tests, micros).
struct RouteAdvert {
  net::Ipv4Prefix prefix;
  AttrRef attrs;

  [[nodiscard]] const std::vector<AsNumber>& as_path() const noexcept {
    return attrs.as_path();
  }
  [[nodiscard]] const std::vector<policy::Community>& communities()
      const noexcept {
    return attrs.communities();
  }
};

/// What one speaker sends a neighbor per MRAI flush.
struct UpdateMessage {
  std::vector<RouteAdvert> announces;
  std::vector<net::Ipv4Prefix> withdraws;
};

/// One element of a BgpFabric::apply batch — the unit of incremental
/// re-convergence, and the **only** way client code mutates routing state
/// after construction (the per-speaker originate/withdraw/refresh entry
/// points are private to the fabric; see BgpFabric::apply).
///
///   kAnnounce — `owner` originates `prefix` locally;
///   kWithdraw — `owner` retracts a local origination (no-op if absent);
///   kRefresh  — attribute/policy change: `owner` re-runs the export leg
///               for every installed route (the local half of an RFC 2918
///               route refresh), toward `session` only when set — the
///               usual scope of a post-convergence policy edit such as a
///               route-leak study dropping a session's valley-free gate.
struct RouteDelta {
  enum class Kind : std::uint8_t { kAnnounce, kWithdraw, kRefresh };
  Kind kind = Kind::kAnnounce;
  AsNumber owner;
  /// Subject prefix (kAnnounce/kWithdraw); ignored by kRefresh.
  net::Ipv4Prefix prefix;
  /// kRefresh: refresh only this session (nullopt = every session).
  std::optional<AsNumber> session;

  [[nodiscard]] static RouteDelta announce(AsNumber owner,
                                           const net::Ipv4Prefix& prefix) {
    return RouteDelta{Kind::kAnnounce, owner, prefix, std::nullopt};
  }
  [[nodiscard]] static RouteDelta withdraw(AsNumber owner,
                                           const net::Ipv4Prefix& prefix) {
    return RouteDelta{Kind::kWithdraw, owner, prefix, std::nullopt};
  }
  [[nodiscard]] static RouteDelta refresh(
      AsNumber owner, std::optional<AsNumber> session = std::nullopt) {
    return RouteDelta{Kind::kRefresh, owner, {}, session};
  }
};

struct BgpConfig {
  /// One-way session propagation delay, plus deterministic per-session
  /// jitter in [0, session_jitter).
  sim::SimDuration session_delay = sim::SimDuration::millis(30);
  sim::SimDuration session_jitter = sim::SimDuration::millis(10);
  /// Outbound updates to one neighbor are batched for this long before a
  /// flush (the Min Route Advertisement Interval, abbreviated).
  sim::SimDuration mrai = sim::SimDuration::millis(100);
  /// Convergence-engine shards (per-AS RIB partitions).  Results are
  /// byte-identical for any value; > 1 parallelises convergence inside one
  /// sweep point and requires session_delay > 0 (the engine's lookahead).
  std::size_t shards = 1;
  /// Worker threads driving the shards (0 = min(shards, hardware)).  Never
  /// affects results — only wall-clock.
  std::size_t shard_workers = 0;
  /// Per-session routing policy (route-maps, Gao-Rexford role gates).
  /// Null = policy off: the decision process and export defaults follow
  /// the exact legacy path, byte-identical to pre-policy artifacts.
  std::shared_ptr<const policy::PolicyTable> policy;
  /// Expected converged Loc-RIB size (0 = unknown).  When set, the fabric
  /// pre-sizes each speaker's flat RIB tables so origination storms fill
  /// them without intermediate rehashes; never affects results.
  std::size_t expected_prefixes = 0;
  /// Debug escape hatch: false runs the export leg once per neighbor (the
  /// pre-update-group path) instead of once per group.  Results are
  /// byte-identical either way — tests/test_update_groups.cpp diffs the
  /// two — so leave it on outside parity tests.
  bool share_exports = true;
};

struct BgpSpeakerStats {
  std::uint64_t updates_sent = 0;        ///< update messages (flushes)
  std::uint64_t updates_received = 0;
  std::uint64_t routes_announced = 0;    ///< advert records sent
  std::uint64_t routes_withdrawn = 0;    ///< withdraw records sent
  std::uint64_t loops_rejected = 0;      ///< adverts dropped: own ASN in path
  std::uint64_t best_changes = 0;        ///< Loc-RIB best-route transitions
  std::uint64_t imports_filtered = 0;    ///< adverts denied by import policy
  std::uint64_t exports_filtered = 0;    ///< exports denied by an export map
};

/// One AS's routing process.
class BgpSpeaker {
 public:
  BgpSpeaker(BgpFabric& fabric, AsNumber asn);

  BgpSpeaker(const BgpSpeaker&) = delete;
  BgpSpeaker& operator=(const BgpSpeaker&) = delete;

  [[nodiscard]] AsNumber asn() const noexcept { return asn_; }

  /// Delivery hook used by the fabric.
  void handle_update(AsNumber from, const UpdateMessage& message);

  /// The best route currently installed for `prefix`, if any.
  struct BestRoute {
    /// Shared attributes: (as_path, communities, raw import local-pref).
    /// Pointer equality is value equality (attr_table.hpp), which is how
    /// the decision process compares routes without touching vectors.
    AttrRef attrs;
    AsNumber learned_from;          ///< == asn() for locally originated
    NeighborKind neighbor_kind = NeighborKind::kCustomer;
    bool local_origin = false;
    /// Effective local-pref: an import map's set value, or the role
    /// default (policy::role_local_pref) — whose ordering reproduces the
    /// legacy customer > peer > provider comparison exactly.
    std::uint32_t local_pref = policy::kCustomerLocalPref;

    [[nodiscard]] const std::vector<AsNumber>& as_path() const noexcept {
      return attrs.as_path();
    }
    [[nodiscard]] const std::vector<policy::Community>& communities()
        const noexcept {
      return attrs.communities();
    }
  };
  [[nodiscard]] const BestRoute* best(const net::Ipv4Prefix& prefix) const;

  /// Loc-RIB size: the DFZ table when this AS is a tier-1.
  [[nodiscard]] std::size_t rib_size() const noexcept { return loc_rib_.size(); }

  /// All Loc-RIB prefixes, ascending (a sorted snapshot of the flat table —
  /// the same order the former std::map RIB iterated in).
  [[nodiscard]] std::vector<net::Ipv4Prefix> rib_prefixes() const;

  [[nodiscard]] const BgpSpeakerStats& stats() const noexcept { return stats_; }

  /// Position of `neighbor` in this speaker's graph-order session list —
  /// the index every per-neighbor table is keyed by.  Throws
  /// std::out_of_range when no session exists.
  [[nodiscard]] std::uint32_t neighbor_position(AsNumber neighbor) const;

  /// Export update-groups currently in effect (diagnostics/tests): the
  /// number of distinct export legs one best-route change runs.
  [[nodiscard]] std::size_t export_group_count() const noexcept {
    return export_groups_.size();
  }

 private:
  /// The fabric drives all state mutation (BgpFabric::apply) so every
  /// post-construction change goes through one audited batch surface.
  friend class BgpFabric;

  /// Injects a locally originated prefix and schedules its propagation.
  /// Reached via RouteDelta::Kind::kAnnounce.
  void originate(const net::Ipv4Prefix& prefix);

  /// Withdraws a locally originated prefix; no-op if never originated.
  /// Reached via RouteDelta::Kind::kWithdraw.
  void withdraw_origin(const net::Ipv4Prefix& prefix);

  /// Re-runs the export leg of the decision process for every installed
  /// route, in ascending prefix order (the local half of an RFC 2918 route
  /// refresh).  Used after a post-convergence policy change — e.g. a
  /// route-leak study toggling a session's valley-free gate — so the new
  /// policy's view propagates without re-originating anything.  When
  /// `only` is set, just that session is refreshed.  Reached via
  /// RouteDelta::Kind::kRefresh.
  void refresh_exports(std::optional<AsNumber> only = std::nullopt);

  /// Recomputes the export update-groups from the current policy table.
  /// Called at construction and on the kRefresh path — the only points a
  /// session's export policy may change.
  void rebuild_export_groups();

  /// Re-runs the decision process for one prefix; if the best route
  /// changed, installs it and enqueues the delta to every eligible session.
  void decide(const net::Ipv4Prefix& prefix);

  /// The export fan-out for an installed best route: split horizon, the
  /// valley-free role gate (per-session policy may relax it), then the
  /// session's export map — run once per update-group (or per neighbor
  /// with share_exports off), producing one shared interned advert that
  /// enqueue() fans out by reference.  Shared by decide() (all sessions)
  /// and refresh_exports() (optionally one).
  void announce_best(const net::Ipv4Prefix& prefix, const BestRoute& winner,
                     std::optional<AsNumber> only = std::nullopt);

  /// The per-neighbor legacy export path (share_exports == false).
  void announce_best_per_neighbor(const net::Ipv4Prefix& prefix,
                                  const BestRoute& winner,
                                  const std::vector<AsNumber>& path,
                                  std::optional<AsNumber> only);

  /// Gao-Rexford: may `route` be told to a neighbor of kind `to`?
  [[nodiscard]] static bool exportable(const BestRoute& route, NeighborKind to);

  /// Queues an announce/withdraw for the neighbor at session position
  /// `pos` and arms its MRAI timer.
  void enqueue(std::uint32_t pos, AsNumber neighbor,
               const net::Ipv4Prefix& prefix, std::optional<RouteAdvert> advert);
  void flush(std::uint32_t pos, AsNumber neighbor);

  BgpFabric& fabric_;
  AsNumber asn_;

  // The RIB tables are open-addressing flat maps (core/flat_map.hpp): the
  // decision process and update handling only ever do point lookups, and
  // the two order-sensitive edges — MRAI flush emission and rib_prefixes()
  // — take an explicit sorted snapshot, so the emitted bytes match the
  // former std::map tables exactly while the hot path stops chasing
  // red-black-tree nodes.  Per-neighbor tables (Adj-RIB-In, outbound) are
  // dense vectors indexed by session position — the session set is fixed
  // at construction.

  /// One Adj-RIB-In entry: the shared attributes the import chain resolved
  /// (local_pref 0 inside the ref = no import override, use the role
  /// default — the policy-off case never stores anything else).
  struct AdjRoute {
    AttrRef attrs;
  };

  /// Adj-RIB-In: per session position, the routes that neighbor advertised.
  /// `sized` defers the expected_prefixes reservation to first touch, so
  /// sessions that never carry a route cost nothing.
  struct AdjIn {
    core::FlatMap<net::Ipv4Prefix, AdjRoute> routes;
    bool sized = false;
  };
  std::vector<AdjIn> adj_in_;

  /// adj_in_[pos], pre-sizing the table on first touch when the session
  /// can carry a full table (peer/provider sessions under a known
  /// expected_prefixes).
  AdjIn& adj_in(std::uint32_t pos);

  core::FlatMap<net::Ipv4Prefix, BestRoute> loc_rib_;
  core::FlatSet<net::Ipv4Prefix> origins_;

  /// Pending outbound deltas per session position: nullopt value =
  /// withdraw.  `advertised` is the Adj-RIB-Out ledger, kept so a route
  /// that was never told to a neighbor is never withdrawn from it.
  /// `mrai_armed` tracks the pending flush timer (cleared when it fires; a
  /// flush that finds nothing pending is a no-op, exactly like the
  /// un-cancelled timer of the old event-handle scheme).
  struct Outbound {
    core::FlatMap<net::Ipv4Prefix, std::optional<RouteAdvert>> pending;
    core::FlatSet<net::Ipv4Prefix> advertised;
    bool mrai_armed = false;
    bool sized = false;
  };
  std::vector<Outbound> outbound_;

  /// outbound_[pos], pre-sizing the Adj-RIB-Out ledger on first touch for
  /// customer sessions (which receive the full table).
  Outbound& outbound(std::uint32_t pos);

  /// ASN -> session position for this speaker's neighbors.
  core::FlatMap<AsNumber, std::uint32_t> neighbor_pos_;

  /// One export equivalence class: sessions sharing (kind, export map,
  /// valley-free flag) see the same export decision for every route, so
  /// the leg runs once and the members share the interned advert.
  struct ExportGroup {
    NeighborKind kind = NeighborKind::kCustomer;
    const policy::RouteMap* export_map = nullptr;
    bool valley_free = true;
    std::vector<std::uint32_t> members;  ///< session positions, graph order
  };
  std::vector<ExportGroup> export_groups_;

  BgpSpeakerStats stats_;
};

/// Owns one speaker per AS, the sharded convergence engine they run on,
/// the attribute-interning table they share, and the message plumbing
/// between them.
///
/// **Mutation surface.**  After construction the fabric is the sole entry
/// point for routing-state changes: clients describe what changed as a
/// RouteDelta batch and call apply(); the per-speaker mutators are private.
/// This is the incremental re-convergence contract — a delta re-runs the
/// decision process for exactly the prefixes it names (the batch *is* the
/// dirty-prefix worklist) and seeds the engine's shard queues with the
/// resulting update cascade, so the next run_to_convergence() replays only
/// what the delta can reach instead of a full origination storm.  Results
/// keep the identity-keyed determinism contract: byte-identical for every
/// shard/worker count, and — because cascades are time-translation
/// invariant — byte-identical whether the delta lands on a long-lived
/// converged fabric or on a freshly rebuilt one (the CI parity gate).
class BgpFabric {
 public:
  explicit BgpFabric(const AsGraph& graph, BgpConfig config = {});

  BgpFabric(const BgpFabric&) = delete;
  BgpFabric& operator=(const BgpFabric&) = delete;

  [[nodiscard]] BgpSpeaker& speaker(AsNumber asn);
  [[nodiscard]] const BgpSpeaker& speaker(AsNumber asn) const;

  [[nodiscard]] const AsGraph& graph() const noexcept { return graph_; }
  [[nodiscard]] const BgpConfig& config() const noexcept { return config_; }
  [[nodiscard]] const ConvergenceEngine& engine() const noexcept {
    return engine_;
  }

  /// The attribute-interning table every advert/RIB entry refs into.
  [[nodiscard]] AttrTable& attrs() noexcept { return attrs_; }
  [[nodiscard]] const AttrTable& attrs() const noexcept { return attrs_; }

  /// The shared attrs of a locally originated route (empty path, empty
  /// communities, customer-grade local-pref).
  [[nodiscard]] const AttrRef& origin_attrs() const noexcept {
    return origin_attrs_;
  }

  /// Interns (as_path, communities) and wraps them as an advert — the way
  /// tests and micros hand-craft update messages.
  [[nodiscard]] RouteAdvert make_advert(
      const net::Ipv4Prefix& prefix, const std::vector<AsNumber>& as_path,
      const std::vector<policy::Community>& communities = {}) {
    return RouteAdvert{prefix, attrs_.intern(as_path, communities, 0)};
  }

  /// Current virtual time (the latest convergence instant).
  [[nodiscard]] sim::SimTime now() const noexcept { return engine_.now(); }

  /// Relationship of `neighbor` as seen from `self`; throws if no session.
  [[nodiscard]] NeighborKind kind_of(AsNumber self, AsNumber neighbor) const;

  /// The (self -> neighbor) session policy, or nullptr with policy off /
  /// no attachment.  One branch on the policy-off hot path.
  [[nodiscard]] const policy::SessionPolicy* session_policy(
      AsNumber self, AsNumber neighbor) const noexcept {
    return config_.policy == nullptr ? nullptr
                                     : config_.policy->find(self, neighbor);
  }

  /// Applies a batch of routing mutations in order — the only way to
  /// change routing state after construction.  Each delta stages its
  /// origin-set edit and immediately re-runs the decision process for its
  /// own prefix (a refresh rebuilds the owner's export update-groups, then
  /// re-runs the export leg per installed prefix); nothing outside the
  /// batch's dirty set is touched until run_to_convergence() drains the
  /// cascade the batch seeded.  Batches applied outside a run are
  /// cause-keyed at the current convergence instant; splitting one batch
  /// into several apply() calls (no run in between) is observationally
  /// identical to applying it whole.
  void apply(const std::vector<RouteDelta>& batch);

  /// Advances the idle fabric's clock without firing anything: the gap
  /// between churn events in a long-lived plan.  Cascades are
  /// time-translation invariant, so spacing never changes measured deltas.
  void advance(sim::SimDuration by) { engine_.advance(by); }

  /// Events the last run_to_convergence() fired: the incremental cost of
  /// the re-convergence a delta batch triggered.
  [[nodiscard]] std::uint64_t last_run_events() const noexcept {
    return engine_.last_run_processed();
  }

  /// Schedules delivery of `message` on the (from, to) session.
  void send(AsNumber from, AsNumber to, UpdateMessage message);

  /// Arms `owner`'s MRAI flush timer toward `neighbor` (speaker plumbing).
  void arm_mrai(AsNumber owner, AsNumber neighbor, sim::EventAction flush);

  /// Runs the engine until no work remains on any shard, i.e. until the
  /// protocol has converged.  Returns the convergence instant.
  sim::SimTime run_to_convergence(std::uint64_t max_events = 50'000'000);

  /// Messages in flight plus pending MRAI flushes are queued events, so
  /// this is exact, not heuristic.
  [[nodiscard]] bool converged() const { return engine_.idle(); }

  /// Sum of a stat over all speakers.
  [[nodiscard]] std::uint64_t total_updates_sent() const;
  [[nodiscard]] std::uint64_t total_routes_announced() const;
  [[nodiscard]] std::uint64_t total_routes_withdrawn() const;

 private:
  [[nodiscard]] sim::SimDuration session_delay(AsNumber a, AsNumber b) const;

  const AsGraph& graph_;
  BgpConfig config_;
  // attrs_ precedes everything that can hold an AttrRef (origin_attrs_,
  // the engine's queued messages, the speakers' RIBs): members destroy in
  // reverse order, so the table outlives every ref into it.
  AttrTable attrs_;
  AttrRef origin_attrs_;
  ConvergenceEngine engine_;
  /// AS -> dense index into speakers_ (the AS set is fixed at
  /// construction; one hash probe, then flat storage).
  core::FlatMap<AsNumber, std::uint32_t> as_index_;
  std::vector<std::unique_ptr<BgpSpeaker>> speakers_;
};

}  // namespace lispcp::routing
