// bgp.hpp — a path-vector inter-domain routing protocol (BGP-lite).
//
// Implements the parts of BGP that determine default-free-zone (DFZ)
// routing-table size and update churn — the quantities the paper's §1
// motivation is about:
//
//   * per-neighbor Adj-RIB-In and a Loc-RIB with the standard decision
//     process (relationship preference customer > peer > provider, then
//     shortest AS path, then lowest neighbor ASN as the deterministic
//     tie-break);
//   * Gao-Rexford export policy (customer routes go everywhere; peer and
//     provider routes go only to customers), which keeps paths valley-free
//     and guarantees convergence;
//   * AS-path loop detection on receipt;
//   * MRAI-style batching of outbound updates per session.
//
// Sessions exchange messages through the discrete-event simulator with a
// per-session propagation delay, so "convergence time" is a simulated-time
// measurement, and Simulator::run() returning means the protocol has
// converged (no foreground work left).
//
// The abstraction level is the AS, not the packet: updates are structs, not
// serialized TCP segments.  RIB sizes and message counts — the outputs of
// experiment F2 — do not depend on the octet encoding.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "net/ipv4.hpp"
#include "routing/as_graph.hpp"
#include "sim/simulator.hpp"

namespace lispcp::routing {

class BgpFabric;

/// One reachability announcement inside an update message.  `as_path`
/// follows wire convention: front() is the most recently prepended AS (the
/// sender), back() is the origin.
struct RouteAdvert {
  net::Ipv4Prefix prefix;
  std::vector<AsNumber> as_path;
};

/// What one speaker sends a neighbor per MRAI flush.
struct UpdateMessage {
  std::vector<RouteAdvert> announces;
  std::vector<net::Ipv4Prefix> withdraws;
};

struct BgpConfig {
  /// One-way session propagation delay, plus deterministic per-session
  /// jitter in [0, session_jitter).
  sim::SimDuration session_delay = sim::SimDuration::millis(30);
  sim::SimDuration session_jitter = sim::SimDuration::millis(10);
  /// Outbound updates to one neighbor are batched for this long before a
  /// flush (the Min Route Advertisement Interval, abbreviated).
  sim::SimDuration mrai = sim::SimDuration::millis(100);
};

struct BgpSpeakerStats {
  std::uint64_t updates_sent = 0;        ///< update messages (flushes)
  std::uint64_t updates_received = 0;
  std::uint64_t routes_announced = 0;    ///< advert records sent
  std::uint64_t routes_withdrawn = 0;    ///< withdraw records sent
  std::uint64_t loops_rejected = 0;      ///< adverts dropped: own ASN in path
  std::uint64_t best_changes = 0;        ///< Loc-RIB best-route transitions
};

/// One AS's routing process.
class BgpSpeaker {
 public:
  BgpSpeaker(BgpFabric& fabric, AsNumber asn);

  BgpSpeaker(const BgpSpeaker&) = delete;
  BgpSpeaker& operator=(const BgpSpeaker&) = delete;

  [[nodiscard]] AsNumber asn() const noexcept { return asn_; }

  /// Injects a locally originated prefix and schedules its propagation.
  void originate(const net::Ipv4Prefix& prefix);

  /// Withdraws a locally originated prefix; no-op if never originated.
  void withdraw_origin(const net::Ipv4Prefix& prefix);

  /// Delivery hook used by the fabric.
  void handle_update(AsNumber from, const UpdateMessage& message);

  /// The best route currently installed for `prefix`, if any.
  struct BestRoute {
    std::vector<AsNumber> as_path;  ///< empty for locally originated
    AsNumber learned_from;          ///< == asn() for locally originated
    NeighborKind neighbor_kind = NeighborKind::kCustomer;
    bool local_origin = false;
  };
  [[nodiscard]] const BestRoute* best(const net::Ipv4Prefix& prefix) const;

  /// Loc-RIB size: the DFZ table when this AS is a tier-1.
  [[nodiscard]] std::size_t rib_size() const noexcept { return loc_rib_.size(); }

  /// All Loc-RIB prefixes (deterministic order: map is ordered).
  [[nodiscard]] std::vector<net::Ipv4Prefix> rib_prefixes() const;

  [[nodiscard]] const BgpSpeakerStats& stats() const noexcept { return stats_; }

 private:
  /// Re-runs the decision process for one prefix; if the best route
  /// changed, installs it and enqueues the delta to every eligible session.
  void decide(const net::Ipv4Prefix& prefix);

  /// Gao-Rexford: may `route` be told to a neighbor of kind `to`?
  [[nodiscard]] static bool exportable(const BestRoute& route, NeighborKind to);

  /// Queues an announce/withdraw for `neighbor` and arms its MRAI timer.
  void enqueue(AsNumber neighbor, const net::Ipv4Prefix& prefix,
               std::optional<RouteAdvert> advert);
  void flush(AsNumber neighbor);

  BgpFabric& fabric_;
  AsNumber asn_;

  /// Adj-RIB-In: per neighbor, the paths it advertised.
  struct AdjIn {
    std::map<net::Ipv4Prefix, std::vector<AsNumber>> routes;
  };
  std::unordered_map<AsNumber, AdjIn> adj_in_;

  std::map<net::Ipv4Prefix, BestRoute> loc_rib_;
  std::set<net::Ipv4Prefix> origins_;

  /// Pending outbound deltas per neighbor: nullopt value = withdraw.
  /// `advertised` is the Adj-RIB-Out ledger, kept so a route that was never
  /// told to a neighbor is never withdrawn from it.
  struct Outbound {
    std::map<net::Ipv4Prefix, std::optional<RouteAdvert>> pending;
    std::set<net::Ipv4Prefix> advertised;
    sim::EventHandle mrai_timer;
  };
  std::unordered_map<AsNumber, Outbound> outbound_;

  BgpSpeakerStats stats_;
};

/// Owns one speaker per AS and the message plumbing between them.
class BgpFabric {
 public:
  BgpFabric(sim::Simulator& sim, const AsGraph& graph, BgpConfig config = {});

  BgpFabric(const BgpFabric&) = delete;
  BgpFabric& operator=(const BgpFabric&) = delete;

  [[nodiscard]] BgpSpeaker& speaker(AsNumber asn);
  [[nodiscard]] const BgpSpeaker& speaker(AsNumber asn) const;

  [[nodiscard]] const AsGraph& graph() const noexcept { return graph_; }
  [[nodiscard]] sim::Simulator& sim() noexcept { return sim_; }
  [[nodiscard]] const BgpConfig& config() const noexcept { return config_; }

  /// Relationship of `neighbor` as seen from `self`; throws if no session.
  [[nodiscard]] NeighborKind kind_of(AsNumber self, AsNumber neighbor) const;

  /// Schedules delivery of `message` on the (from, to) session.
  void send(AsNumber from, AsNumber to, UpdateMessage message);

  /// Runs the simulator until no foreground work remains, i.e. until the
  /// protocol has converged.  Returns the convergence instant.
  sim::SimTime run_to_convergence(std::uint64_t max_events = 50'000'000);

  /// Messages in flight plus pending MRAI flushes are foreground events, so
  /// this is exact, not heuristic.
  [[nodiscard]] bool converged() { return !sim_.queue().has_foreground(); }

  /// Sum of a stat over all speakers.
  [[nodiscard]] std::uint64_t total_updates_sent() const;
  [[nodiscard]] std::uint64_t total_routes_announced() const;
  [[nodiscard]] std::uint64_t total_routes_withdrawn() const;

 private:
  [[nodiscard]] sim::SimDuration session_delay(AsNumber a, AsNumber b) const;

  sim::Simulator& sim_;
  const AsGraph& graph_;
  BgpConfig config_;
  std::unordered_map<AsNumber, std::unique_ptr<BgpSpeaker>> speakers_;
};

}  // namespace lispcp::routing
