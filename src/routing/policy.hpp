// policy.hpp — per-session BGP routing policy: prefix-lists, communities,
// route-maps, and Gao-Rexford session roles.
//
// The BGP-lite mesh (routing/bgp.hpp) hard-codes the two policy facts that
// shape real DFZ tables: relationship preference in the decision process
// and valley-free export.  This module makes both first-class and
// configurable, following the classic quagga/FRR model:
//
//   * PrefixList — ordered permit/deny rules with ge/le length bounds,
//     first match wins, implicit deny at the end;
//   * Community — RFC 1997-style 32-bit tags ((asn << 16) | value), carried
//     in adverts and accumulated along the propagation path;
//   * AsPathPattern — the anchored subset of AS-path regexes the studies
//     need ("^N" first hop, "N$" origin, "N" contains, "^$" empty);
//   * RouteMap — ordered permit/deny clauses matching on prefix-list,
//     prefix length, communities, or AS-path, whose permit actions set
//     local-pref, add communities, or prepend;
//   * SessionPolicy / PolicyTable — import/export chains per (self,
//     neighbor) session plus the per-session valley-free export gate, with
//     PolicyTable::gao_rexford() synthesizing the role defaults (customer
//     200 / peer 100 / provider 50 local-pref, valley-free export on every
//     session) from the AsGraph's session relationships.
//
// Determinism contract: policy evaluation is a pure function of the route
// and the (immutable during convergence) table, so attaching policy keeps
// records byte-identical across shard/worker counts.  A null table in
// BgpConfig means policy off — the speaker then follows the exact legacy
// code path, and the role-default local-prefs are chosen so that the
// policy-off decision order (customer > peer > provider, then path length,
// then lowest neighbor ASN) is unchanged byte-for-byte.
//
// Local-pref set by an *export* map is ignored by design: LOCAL_PREF is not
// transitive across sessions, matching the real attribute's scope.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/ipv4.hpp"
#include "routing/as_graph.hpp"

namespace lispcp::routing {
class BgpFabric;  // for the valley-free checker; bgp.hpp includes us
}  // namespace lispcp::routing

namespace lispcp::routing::policy {

// ---------------------------------------------------------------------------
// Communities
// ---------------------------------------------------------------------------

/// RFC 1997 convention: high 16 bits name the tagging AS, low 16 the value.
using Community = std::uint32_t;

[[nodiscard]] constexpr Community make_community(std::uint16_t asn,
                                                 std::uint16_t value) noexcept {
  return (static_cast<Community>(asn) << 16) | value;
}

[[nodiscard]] std::string to_string(Community community);

/// Inserts `community` into a sorted-unique community vector (the canonical
/// on-route representation — sorted so records never depend on tag order).
void add_community(std::vector<Community>& communities, Community community);

/// Well-known tagging AS for the role communities gao_rexford() attaches.
constexpr std::uint16_t kRoleCommunityAsn = 65535;
constexpr Community kLearnedFromCustomer = make_community(kRoleCommunityAsn, 1);
constexpr Community kLearnedFromPeer = make_community(kRoleCommunityAsn, 2);
constexpr Community kLearnedFromProvider = make_community(kRoleCommunityAsn, 3);

// ---------------------------------------------------------------------------
// Prefix lists
// ---------------------------------------------------------------------------

/// An ordered permit/deny prefix filter with quagga ge/le semantics: a rule
/// matches a route whose prefix is covered by the rule's prefix and whose
/// length lies in [ge, le] (both default to the rule prefix's own length,
/// i.e. exact match).  First matching rule decides; no match = deny.
class PrefixList {
 public:
  PrefixList() = default;
  explicit PrefixList(std::string name) : name_(std::move(name)) {}

  PrefixList& permit(const net::Ipv4Prefix& prefix, int ge = -1, int le = -1) {
    return add(true, prefix, ge, le);
  }
  PrefixList& deny(const net::Ipv4Prefix& prefix, int ge = -1, int le = -1) {
    return add(false, prefix, ge, le);
  }

  [[nodiscard]] bool matches(const net::Ipv4Prefix& prefix) const;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t size() const noexcept { return rules_.size(); }

 private:
  struct Rule {
    bool permit = true;
    net::Ipv4Prefix prefix;
    int min_length = 0;  ///< resolved ge bound
    int max_length = 0;  ///< resolved le bound
  };

  PrefixList& add(bool permit, const net::Ipv4Prefix& prefix, int ge, int le);

  std::string name_;
  std::vector<Rule> rules_;
};

// ---------------------------------------------------------------------------
// AS-path patterns (regex-lite)
// ---------------------------------------------------------------------------

/// The anchored subset of AS-path regexes: "" (any), "^$" (empty path),
/// "^N" (first hop is N), "N$" (origin is N), "^N$" (the path is exactly
/// N), "N" (path contains N).  parse() throws std::invalid_argument on
/// anything else.
class AsPathPattern {
 public:
  AsPathPattern() = default;  ///< matches any path

  [[nodiscard]] static AsPathPattern parse(std::string_view text);

  [[nodiscard]] bool matches(const std::vector<AsNumber>& as_path) const;

  [[nodiscard]] const std::string& text() const noexcept { return text_; }

 private:
  enum class Kind : std::uint8_t {
    kAny,
    kEmpty,
    kFirstHop,
    kOrigin,
    kExact,
    kContains,
  };

  Kind kind_ = Kind::kAny;
  AsNumber asn_;
  std::string text_;
};

// ---------------------------------------------------------------------------
// Route maps
// ---------------------------------------------------------------------------

/// What a route-map clause sees: the route's prefix, its AS path as held in
/// the RIB being filtered (Adj-RIB-In on import, the outgoing path on
/// export), and its communities.
struct RouteContext {
  const net::Ipv4Prefix& prefix;
  const std::vector<AsNumber>& as_path;
  const std::vector<Community>& communities;
};

/// The accumulated `set` actions of the matching permit clause.
struct RouteActions {
  std::uint32_t local_pref = 0;  ///< 0 = not set (keep the role default)
  std::vector<Community> add_communities;
  std::size_t prepend = 0;  ///< extra copies of the prepending AS
};

/// An ordered list of permit/deny clauses, first match wins, implicit deny
/// when no clause matches (quagga semantics — attach no map at all for
/// "permit everything").
class RouteMap {
 public:
  enum class Action : std::uint8_t { kPermit, kDeny };

  /// One match/set clause.  All declared match conditions must hold (AND);
  /// a clause with no conditions matches every route.
  class Clause {
   public:
    explicit Clause(Action action) : action_(action) {}

    Clause& match_prefix_list(PrefixList list);
    Clause& match_prefix_length(int min_length, int max_length);
    Clause& match_community(Community community);
    Clause& match_as_path(AsPathPattern pattern);

    Clause& set_local_pref(std::uint32_t value);
    Clause& add_community(Community community);
    Clause& prepend(std::size_t count);

    [[nodiscard]] bool matches(const RouteContext& route) const;

   private:
    friend class RouteMap;

    Action action_;
    std::optional<PrefixList> prefix_list_;
    int min_length_ = -1;
    int max_length_ = -1;
    std::vector<Community> required_communities_;
    std::optional<AsPathPattern> as_path_;
    RouteActions actions_;
  };

  RouteMap() = default;
  explicit RouteMap(std::string name) : name_(std::move(name)) {}

  /// Appends a clause; the reference stays valid as clauses accumulate.
  Clause& add(Action action) { return clauses_.emplace_back(action); }

  /// First-match evaluation: the matching permit clause's actions, or
  /// nullopt if a deny clause matched or no clause did (implicit deny).
  [[nodiscard]] std::optional<RouteActions> evaluate(
      const RouteContext& route) const;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t size() const noexcept { return clauses_.size(); }

 private:
  std::string name_;
  std::deque<Clause> clauses_;  ///< deque: add() hands out stable references
};

// ---------------------------------------------------------------------------
// Session policy and the policy table
// ---------------------------------------------------------------------------

/// Role-default local-pref: the decision-process encoding of Gao-Rexford
/// relationship preference.  Chosen so that the ordering is identical to
/// the legacy customer(2) > peer(1) > provider(0) comparison — the
/// policy-off byte-parity contract rests on this.
constexpr std::uint32_t kCustomerLocalPref = 200;
constexpr std::uint32_t kPeerLocalPref = 100;
constexpr std::uint32_t kProviderLocalPref = 50;

[[nodiscard]] constexpr std::uint32_t role_local_pref(NeighborKind kind) noexcept {
  switch (kind) {
    case NeighborKind::kCustomer: return kCustomerLocalPref;
    case NeighborKind::kPeer: return kPeerLocalPref;
    case NeighborKind::kProvider: return kProviderLocalPref;
  }
  return 0;
}

/// Policy attached to one directed session (self -> neighbor).  `import`
/// runs when an advert from the neighbor enters Adj-RIB-In; `export_map`
/// runs when the decision process enqueues toward the neighbor, after the
/// role gate.  `valley_free` is that gate: when true (the Gao-Rexford
/// default) routes learned from a peer or provider are not exported to
/// peers or providers; switching it off on one session is precisely a
/// route leak.
struct SessionPolicy {
  const RouteMap* import = nullptr;
  const RouteMap* export_map = nullptr;
  bool valley_free = true;
};

/// Owns the route-maps and the per-session attachments for one fabric.
/// Immutable while the convergence engine runs (BgpConfig holds it const);
/// studies that model a policy *change* mutate it between convergence runs
/// and nudge the affected speaker (BgpSpeaker::refresh_exports).
class PolicyTable {
 public:
  PolicyTable() = default;
  PolicyTable(const PolicyTable&) = delete;
  PolicyTable& operator=(const PolicyTable&) = delete;

  /// Synthesizes the Gao-Rexford defaults from the graph's session roles:
  /// every session gets valley-free export and an import map that pins the
  /// role local-pref and tags routes with the role community (observable
  /// in BestRoute::communities).  The local-prefs reproduce the policy-off
  /// decision order exactly.
  [[nodiscard]] static std::shared_ptr<PolicyTable> gao_rexford(
      const AsGraph& graph);

  /// Creates an owned route-map; the reference is stable for the table's
  /// lifetime.
  RouteMap& add_map(std::string name) {
    return maps_.emplace_back(std::move(name));
  }

  /// The policy for (self -> neighbor), created default if absent.
  SessionPolicy& session(AsNumber self, AsNumber neighbor) {
    return sessions_[key(self, neighbor)];
  }

  /// Lookup without creation; nullptr when the session has no policy.
  [[nodiscard]] const SessionPolicy* find(AsNumber self,
                                          AsNumber neighbor) const noexcept {
    const auto it = sessions_.find(key(self, neighbor));
    return it == sessions_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] std::size_t session_count() const noexcept {
    return sessions_.size();
  }

 private:
  [[nodiscard]] static std::uint64_t key(AsNumber self,
                                         AsNumber neighbor) noexcept {
    return (static_cast<std::uint64_t>(self.value()) << 32) |
           neighbor.value();
  }

  std::deque<RouteMap> maps_;
  std::unordered_map<std::uint64_t, SessionPolicy> sessions_;
};

// ---------------------------------------------------------------------------
// Valley-free invariant checker
// ---------------------------------------------------------------------------

struct ValleyCheck {
  std::size_t paths_checked = 0;
  std::size_t violations = 0;  ///< paths with a customer->...->customer valley
};

/// True iff the best route installed at `at` is valley-free: walking the
/// propagation chain origin -> ... -> at, the per-hop roles must form
/// customer* peer? provider* (Gao-Rexford).  Paths crossing sessions the
/// graph does not know about count as violations.
[[nodiscard]] bool valley_free_path(const AsGraph& graph, AsNumber at,
                                    const std::vector<AsNumber>& as_path);

/// Walks every converged best route of every AS (sampling RIB prefixes at
/// the given stride) and counts valley violations.  With roles enabled and
/// no leak event this must come back all-clear; a route leak makes it go
/// red — both directions are pinned by tests/test_policy.cpp.
[[nodiscard]] ValleyCheck check_valley_free(const BgpFabric& fabric,
                                            std::size_t sample_stride = 1);

}  // namespace lispcp::routing::policy
