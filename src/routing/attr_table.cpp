#include "routing/attr_table.hpp"

#include <algorithm>

namespace lispcp::routing {

namespace {

/// splitmix64 finaliser — the same mix core/flat_map.hpp uses; the inputs
/// here (ASNs, communities) are small structured integers whose low bits
/// need spreading before they select a stripe/bucket.
std::uint64_t mix(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

bool equal_content(const detail::AttrNode& node,
                   std::span<const AsNumber> as_path,
                   std::span<const policy::Community> communities,
                   std::uint32_t local_pref) noexcept {
  return node.local_pref == local_pref &&
         node.as_path.size() == as_path.size() &&
         node.communities.size() == communities.size() &&
         std::equal(as_path.begin(), as_path.end(), node.as_path.begin()) &&
         std::equal(communities.begin(), communities.end(),
                    node.communities.begin());
}

}  // namespace

std::uint64_t AttrTable::hash_of(std::span<const AsNumber> as_path,
                                 std::span<const policy::Community> communities,
                                 std::uint32_t local_pref) noexcept {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ local_pref;
  for (const AsNumber asn : as_path) {
    h = mix(h ^ asn.value());
  }
  h = mix(h ^ (std::uint64_t{as_path.size()} << 32));
  for (const policy::Community c : communities) {
    h = mix(h ^ c);
  }
  return mix(h ^ communities.size());
}

AttrRef AttrTable::intern(std::span<const AsNumber> as_path,
                          std::span<const policy::Community> communities,
                          std::uint32_t local_pref) {
  const std::uint64_t hash = hash_of(as_path, communities, local_pref);
  Stripe& stripe = stripes_[hash % kStripes];
  std::lock_guard<std::mutex> lock(stripe.mu);
  const auto [begin, end] = stripe.nodes.equal_range(hash);
  for (auto it = begin; it != end; ++it) {
    detail::AttrNode* node = it->second;
    if (equal_content(*node, as_path, communities, local_pref)) {
      // May resurrect a node whose last ref just dropped: the increment
      // happens under the stripe lock, so the pending evict()'s re-check
      // sees it and backs off.
      node->refs.fetch_add(1, std::memory_order_relaxed);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return AttrRef(node);
    }
  }
  auto* node = new detail::AttrNode;
  node->as_path.assign(as_path.begin(), as_path.end());
  node->communities.assign(communities.begin(), communities.end());
  node->local_pref = local_pref;
  node->hash = hash;
  node->refs.store(1, std::memory_order_relaxed);
  node->table = this;
  stripe.nodes.emplace(hash, node);
  misses_.fetch_add(1, std::memory_order_relaxed);
  return AttrRef(node);
}

void AttrTable::evict(detail::AttrNode* node) {
  Stripe& stripe = stripes_[node->hash % kStripes];
  std::unique_lock<std::mutex> lock(stripe.mu);
  if (node->refs.load(std::memory_order_acquire) != 0) {
    return;  // resurrected by a concurrent intern
  }
  const auto [begin, end] = stripe.nodes.equal_range(node->hash);
  for (auto it = begin; it != end; ++it) {
    if (it->second == node) {
      stripe.nodes.erase(it);
      break;
    }
  }
  lock.unlock();
  delete node;
}

std::size_t AttrTable::size() const {
  std::size_t total = 0;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(const_cast<std::mutex&>(stripe.mu));
    total += stripe.nodes.size();
  }
  return total;
}

AttrTable::~AttrTable() {
  // All refs must be gone by now (the fabric destroys speakers and the
  // engine first, and message shells drop their refs before recycling).
  // Free whatever remains so a leaked ref corrupts nothing worse than the
  // leak itself.
  for (Stripe& stripe : stripes_) {
    for (auto& [hash, node] : stripe.nodes) delete node;
    stripe.nodes.clear();
  }
}

}  // namespace lispcp::routing
