#include "routing/dfz_study.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_map>
#include <stdexcept>

#include "routing/policy.hpp"
#include "sim/rng.hpp"

namespace lispcp::routing {

namespace {

/// Stub site blocks live in 100.0.0.0/8, one /20 per stub — disjoint from
/// the provider RLOC space by construction.
constexpr std::uint32_t kSiteSpaceBase = (100u << 24);
constexpr int kSiteBlockLength = 20;

/// Provider RLOC aggregates live in 60.0.0.0/8, one /12 per provider ASN.
constexpr std::uint32_t kRlocSpaceBase = (60u << 24);
constexpr int kProviderAggregateLength = 12;

[[nodiscard]] bool is_power_of_two(std::size_t v) {
  return v != 0 && (v & (v - 1)) == 0;
}

/// All tier-1 and transit ASes: the provider set that owns RLOC space.
[[nodiscard]] std::vector<AsNumber> providers_of(const AsGraph& graph) {
  std::vector<AsNumber> out = graph.ases_of_tier(AsTier::kTier1);
  const auto transits = graph.ases_of_tier(AsTier::kTransit);
  out.insert(out.end(), transits.begin(), transits.end());
  return out;
}

struct BuiltStudy {
  /// Shared immutable topology (copy-on-write fork: every point of a sweep
  /// with the same SyntheticInternetConfig reads one graph; the mutable
  /// per-run state — speakers, RIBs, queues — lives in the fabric).
  std::shared_ptr<const AsGraph> graph;
  std::unique_ptr<BgpFabric> fabric;
  /// Non-const handle on the fabric's policy table (null with roles off):
  /// event studies mutate it between convergence runs (engine idle).
  std::shared_ptr<policy::PolicyTable> table;
  std::vector<AsNumber> stubs;
  std::size_t origin_prefixes = 0;
  std::size_t mapping_entries = 0;
};

/// The event's more-specific split, relative to the study's base factor.
[[nodiscard]] std::size_t event_total_factor(const DfzStudyConfig& config) {
  const PolicyEvent& event = config.policy.event;
  switch (event.kind) {
    case PolicyEvent::Kind::kHijackMoreSpecific:
    case PolicyEvent::Kind::kSelectiveDeagg:
    case PolicyEvent::Kind::kBroadcastDeagg:
      return config.deaggregation_factor * event.deagg_factor;
    default:
      return config.deaggregation_factor;
  }
}

/// Resolves PolicyEvent::actor_stub's SIZE_MAX default to the last stub.
[[nodiscard]] std::size_t resolve_actor(const PolicyEvent& event,
                                        std::size_t stub_count) {
  return event.actor_stub == static_cast<std::size_t>(-1) ? stub_count - 1
                                                          : event.actor_stub;
}

/// The provider sessions of a stub, in graph order.
[[nodiscard]] std::vector<AsNumber> providers_of_stub(const AsGraph& graph,
                                                      AsNumber stub) {
  std::vector<AsNumber> out;
  for (const AsGraph::Neighbor& n : graph.neighbors(stub)) {
    if (n.kind == NeighborKind::kProvider) out.push_back(n.asn);
  }
  return out;
}

/// Attaches the Gao-Rexford table plus the study's policy wiring: IRR-style
/// strict customer-origin import filters on the configured transit
/// fraction, and — for the selective-TE event — export maps on the
/// victim's non-chosen provider sessions denying its more-specifics.
void wire_policy(const DfzStudyConfig& config, BuiltStudy& study,
                 BgpConfig& bgp) {
  study.table = policy::PolicyTable::gao_rexford(*study.graph);

  const AsGraph& graph = *study.graph;
  const auto transits = graph.ases_of_tier(AsTier::kTransit);
  const auto& stubs = study.stubs;
  std::unordered_map<std::uint32_t, std::size_t> stub_index;
  for (std::size_t i = 0; i < stubs.size(); ++i) {
    stub_index.emplace(stubs[i].value(), i);
  }

  const double fraction =
      std::clamp(config.policy.filtered_transit_fraction, 0.0, 1.0);
  const auto filtered = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(transits.size())));
  for (std::size_t t = 0; t < filtered; ++t) {
    for (const AsGraph::Neighbor& n : graph.neighbors(transits[t])) {
      if (n.kind != NeighborKind::kCustomer) continue;
      const auto it = stub_index.find(n.asn.value());
      if (it == stub_index.end()) continue;  // a transit customer: no filter
      const net::Ipv4Prefix block = stub_site_prefixes(it->second, 1).front();
      policy::RouteMap& map =
          study.table->add_map("customer-origin:" + n.asn.to_string());
      map.add(policy::RouteMap::Action::kPermit)
          .match_prefix_list(policy::PrefixList("own-block")
                                 .permit(block, block.length(), 32))
          .set_local_pref(policy::kCustomerLocalPref)
          .add_community(policy::kLearnedFromCustomer);
      study.table->session(transits[t], n.asn).import = &map;
    }
  }

  if (config.policy.event.kind == PolicyEvent::Kind::kSelectiveDeagg &&
      config.scenario == AddressingScenario::kLegacyBgp && !stubs.empty()) {
    const std::size_t victim = config.policy.event.victim_stub;
    if (victim < stubs.size()) {
      const auto providers = providers_of_stub(graph, stubs[victim]);
      const net::Ipv4Prefix block = stub_site_prefixes(victim, 1).front();
      const int base_length =
          stub_site_prefixes(victim, config.deaggregation_factor)
              .front()
              .length();
      for (std::size_t p = 1; p < providers.size(); ++p) {
        // Providers after the first (the TE choice) never hear the
        // more-specifics: deny anything in the victim's block longer than
        // its baseline announcements, pass the rest untouched.
        policy::RouteMap& map = study.table->add_map(
            "te-selective:" + providers[p].to_string());
        map.add(policy::RouteMap::Action::kDeny)
            .match_prefix_list(policy::PrefixList("own-more-specifics")
                                   .permit(block, base_length + 1, 32));
        map.add(policy::RouteMap::Action::kPermit);
        study.table->session(stubs[victim], providers[p]).export_map = &map;
      }
    }
  }

  bgp.policy = study.table;
}

/// Builds the Internet, originates prefixes per scenario, returns the
/// un-converged fabric.
[[nodiscard]] std::unique_ptr<BuiltStudy> build_study(const DfzStudyConfig& config) {
  if (!is_power_of_two(config.deaggregation_factor) ||
      config.deaggregation_factor > 4096) {
    throw std::invalid_argument(
        "DfzStudy: deaggregation_factor must be a power of two <= 4096");
  }
  auto study = std::make_unique<BuiltStudy>();
  study->graph = shared_synthetic_internet(config.internet);
  study->stubs = study->graph->ases_of_tier(AsTier::kStub);

  BgpConfig bgp = config.bgp;
  const std::size_t providers = providers_of(*study->graph).size();
  bgp.expected_prefixes =
      providers + (config.scenario == AddressingScenario::kLegacyBgp
                       ? study->stubs.size() * config.deaggregation_factor +
                             event_total_factor(config)
                       : 0);
  if (config.policy.roles) wire_policy(config, *study, bgp);

  study->fabric = std::make_unique<BgpFabric>(*study->graph, bgp);

  // The origination storm is one RouteDelta batch through the fabric's
  // mutation surface — the same per-delta sequence the old speaker loops
  // ran, so the converged state is byte-identical.
  std::vector<RouteDelta> originations;
  originations.reserve(bgp.expected_prefixes);
  for (AsNumber provider : providers_of(*study->graph)) {
    originations.push_back(
        RouteDelta::announce(provider, provider_aggregate(provider)));
    ++study->origin_prefixes;
  }
  const auto& stubs = study->stubs;
  for (std::size_t i = 0; i < stubs.size(); ++i) {
    const auto prefixes = stub_site_prefixes(i, config.deaggregation_factor);
    if (config.scenario == AddressingScenario::kLegacyBgp) {
      for (const net::Ipv4Prefix& prefix : prefixes) {
        originations.push_back(RouteDelta::announce(stubs[i], prefix));
        ++study->origin_prefixes;
      }
    } else {
      // LISP: the EID block is registered with the mapping system and never
      // enters a BGP session.
      study->mapping_entries += prefixes.size();
    }
  }
  study->fabric->apply(originations);
  return study;
}

/// Network-wide counters captured before an event and diffed afterwards.
/// best_changes is in graph order (the ases() iteration), matching the
/// touch scan — deterministic, no hashing.
struct FabricCounters {
  std::uint64_t updates = 0;
  std::uint64_t records = 0;
  std::vector<std::uint64_t> best_changes;
};

[[nodiscard]] FabricCounters snapshot_counters(const BuiltStudy& study) {
  FabricCounters counters;
  counters.updates = study.fabric->total_updates_sent();
  counters.records = study.fabric->total_routes_announced() +
                     study.fabric->total_routes_withdrawn();
  counters.best_changes.reserve(study.graph->size());
  for (AsNumber asn : study.graph->ases()) {
    counters.best_changes.push_back(
        study.fabric->speaker(asn).stats().best_changes);
  }
  return counters;
}

[[nodiscard]] std::size_t count_ases_touched(const BuiltStudy& study,
                                             const FabricCounters& before) {
  std::size_t touched = 0;
  std::size_t index = 0;
  for (AsNumber asn : study.graph->ases()) {
    if (study.fabric->speaker(asn).stats().best_changes >
        before.best_changes[index]) {
      ++touched;
    }
    ++index;
  }
  return touched;
}

/// The prefixes a churn event takes down or brings back up.
[[nodiscard]] std::vector<net::Ipv4Prefix> churn_subject_prefixes(
    const DfzStudyConfig& config, const ChurnEvent& event) {
  auto prefixes = stub_site_prefixes(event.stub, config.deaggregation_factor);
  if (event.prefix_index == ChurnEvent::kWholeSite) return prefixes;
  if (event.prefix_index >= prefixes.size()) {
    throw std::invalid_argument("run_churn_plan: prefix_index out of range");
  }
  return {prefixes[event.prefix_index]};
}

/// The pre-build half of the policy-incident validation, kept in the
/// legacy run_policy_event order and wording.
void validate_incident_config(const DfzStudyConfig& config) {
  const PolicyEvent& event = config.policy.event;
  if (!config.policy.roles) {
    throw std::invalid_argument(
        "run_policy_event: requires policy.roles (Gao-Rexford table)");
  }
  if (config.scenario != AddressingScenario::kLegacyBgp) {
    throw std::invalid_argument(
        "run_policy_event: events are BGP incidents; use kLegacyBgp");
  }
  if (event.kind == PolicyEvent::Kind::kNone) {
    throw std::invalid_argument("run_policy_event: event.kind is kNone");
  }
  if (!is_power_of_two(event.deagg_factor) || event.deagg_factor > 4096) {
    throw std::invalid_argument(
        "run_policy_event: event.deagg_factor must be a power of two <= 4096");
  }
}

/// The post-build half: the incident's stubs must exist in this graph.
void validate_incident_targets(const DfzStudyConfig& config,
                               const BuiltStudy& study) {
  const PolicyEvent& event = config.policy.event;
  if (event.victim_stub >= study.stubs.size()) {
    throw std::invalid_argument("run_policy_event: victim_stub out of range");
  }
  if (resolve_actor(event, study.stubs.size()) >= study.stubs.size()) {
    throw std::invalid_argument("run_policy_event: actor_stub out of range");
  }
}

/// Applies the configured PolicyEvent to a converged study and measures its
/// blast radius — the former run_policy_event body, now mutating the world
/// only through RouteDelta batches.
[[nodiscard]] PolicyEventResult execute_policy_incident(
    const DfzStudyConfig& config, BuiltStudy& study) {
  const PolicyEvent& event = config.policy.event;
  const std::vector<AsNumber>& stubs = study.stubs;
  const AsNumber victim = stubs[event.victim_stub];
  const AsNumber actor = stubs[resolve_actor(event, stubs.size())];

  PolicyEventResult result;
  const FabricCounters before = snapshot_counters(study);
  std::uint64_t rib_before = 0;
  for (AsNumber asn : study.graph->ases()) {
    rib_before += study.fabric->speaker(asn).rib_size();
  }
  const auto tier1s = study.graph->ases_of_tier(AsTier::kTier1);
  result.dfz_table_before = study.fabric->speaker(tier1s.front()).rib_size();
  const sim::SimTime t0 = study.fabric->now();

  // The probe prefixes the capture scan looks up afterwards, and the
  // predicate that says "this best route prefers the actor".
  std::vector<net::Ipv4Prefix> probes;
  enum class Capture : std::uint8_t { kOriginatedByActor, kPathThrough };
  Capture capture = Capture::kOriginatedByActor;
  AsNumber capture_asn = actor;
  std::vector<RouteDelta> batch;

  switch (event.kind) {
    case PolicyEvent::Kind::kHijackMoreSpecific: {
      // The attacker splits the victim's block one level finer than the
      // victim announces: every covered prefix is new, so longest-prefix
      // match hands over traffic wherever the announcement survives.
      probes = stub_site_prefixes(
          event.victim_stub, config.deaggregation_factor * event.deagg_factor);
      for (const net::Ipv4Prefix& prefix : probes) {
        batch.push_back(RouteDelta::announce(actor, prefix));
      }
      result.event_announcements = probes.size();
      break;
    }
    case PolicyEvent::Kind::kHijackSameSpecific: {
      // The attacker forges the victim's exact announcements; the decision
      // process arbitrates, so capture stays distance-limited.
      probes =
          stub_site_prefixes(event.victim_stub, config.deaggregation_factor);
      for (const net::Ipv4Prefix& prefix : probes) {
        batch.push_back(RouteDelta::announce(actor, prefix));
      }
      result.event_announcements = probes.size();
      break;
    }
    case PolicyEvent::Kind::kRouteLeak: {
      // The classic type-1 leak: the actor re-exports everything it knows
      // (including provider- and peer-learned routes) to one provider.
      const auto providers = providers_of_stub(*study.graph, actor);
      if (providers.empty()) {
        throw std::invalid_argument("run_policy_event: leaker has no provider");
      }
      const AsNumber target = providers.back();
      study.table->session(actor, target).valley_free = false;
      result.event_announcements = study.fabric->speaker(actor).rib_size();
      batch.push_back(RouteDelta::refresh(actor, target));
      // Leaked traffic detours through the actor: probe the provider
      // aggregates and count ASes whose best path transits the leaker.
      for (AsNumber provider : providers_of(*study.graph)) {
        probes.push_back(provider_aggregate(provider));
      }
      capture = Capture::kPathThrough;
      break;
    }
    case PolicyEvent::Kind::kSelectiveDeagg:
    case PolicyEvent::Kind::kBroadcastDeagg: {
      // TE by de-aggregation: the victim splits its own block finer.  The
      // selective variant's export maps (wired at build time) keep the
      // more-specifics off every provider session but the first, so only
      // the chosen ingress hears them; broadcast prices the naive version.
      probes = stub_site_prefixes(
          event.victim_stub, config.deaggregation_factor * event.deagg_factor);
      for (const net::Ipv4Prefix& prefix : probes) {
        batch.push_back(RouteDelta::announce(victim, prefix));
      }
      result.event_announcements = probes.size();
      // Steering success: the best path toward a more-specific transits the
      // chosen (first) provider.
      const auto providers = providers_of_stub(*study.graph, victim);
      if (providers.empty()) {
        throw std::invalid_argument("run_policy_event: victim has no provider");
      }
      capture = Capture::kPathThrough;
      capture_asn = providers.front();
      break;
    }
    case PolicyEvent::Kind::kNone:
      break;  // unreachable: rejected by validate_incident_config
  }

  study.fabric->apply(batch);
  study.fabric->run_to_convergence();

  result.update_messages =
      study.fabric->total_updates_sent() - before.updates;
  result.route_records = study.fabric->total_routes_announced() +
                         study.fabric->total_routes_withdrawn() -
                         before.records;
  result.settle_ms = (study.fabric->now() - t0).ms();
  result.dfz_table_after = study.fabric->speaker(tier1s.front()).rib_size();

  std::uint64_t rib_after = 0;
  std::size_t index = 0;
  for (AsNumber asn : study.graph->ases()) {
    const BgpSpeaker& speaker = study.fabric->speaker(asn);
    rib_after += speaker.rib_size();
    if (speaker.stats().best_changes > before.best_changes[index]) {
      ++result.ases_touched;
    }
    ++index;
    // Exact-prefix capture scan (the probes are the event's own
    // announcements, so LPM is unnecessary): does this AS's best route for
    // any probe prefer the actor?
    bool prefers = false;
    for (const net::Ipv4Prefix& probe : probes) {
      const BgpSpeaker::BestRoute* best = speaker.best(probe);
      if (best == nullptr) continue;
      if (capture == Capture::kOriginatedByActor) {
        const AsNumber origin =
            best->as_path().empty() ? asn : best->as_path().back();
        prefers = origin == capture_asn;
      } else {
        prefers = std::find(best->as_path().begin(), best->as_path().end(),
                            capture_asn) != best->as_path().end();
      }
      if (prefers) break;
    }
    if (prefers) ++result.ases_preferring_actor;
  }
  result.actor_preference_fraction =
      static_cast<double>(result.ases_preferring_actor) /
      static_cast<double>(study.graph->size());
  result.rib_delta =
      rib_after > rib_before ? static_cast<std::size_t>(rib_after - rib_before)
                             : 0;
  if (result.event_announcements > 0) {
    result.rib_cost_per_announcement =
        static_cast<double>(result.rib_delta) /
        static_cast<double>(result.event_announcements);
    result.churn_per_announcement =
        static_cast<double>(result.route_records) /
        static_cast<double>(result.event_announcements);
  }
  return result;
}

/// Executes one churn event against a converged study.  Flap-shaped events
/// are two RouteDelta batches around an idle-clock hold; the measured
/// settle excludes the hold, so a zero-hold flap costs exactly what the
/// legacy back-to-back withdraw/announce sequence did.
[[nodiscard]] ChurnEventMeasure execute_churn_event(
    const DfzStudyConfig& config, BuiltStudy& study, const ChurnEvent& event,
    std::optional<PolicyEventResult>& incident) {
  ChurnEventMeasure measure;
  measure.kind = event.kind;
  if (event.kind == ChurnEvent::Kind::kPolicyIncident) {
    PolicyEventResult incident_result = execute_policy_incident(config, study);
    measure.update_messages = incident_result.update_messages;
    measure.route_records = incident_result.route_records;
    measure.settle_ms = incident_result.settle_ms;
    measure.ases_touched = incident_result.ases_touched;
    measure.engine_events = study.fabric->last_run_events();
    incident = std::move(incident_result);
    return measure;
  }

  if (event.stub >= study.stubs.size()) {
    throw std::invalid_argument("run_churn_plan: event stub out of range");
  }
  const AsNumber subject = study.stubs[event.stub];
  const auto prefixes = churn_subject_prefixes(config, event);
  const FabricCounters before = snapshot_counters(study);
  const sim::SimTime t0 = study.fabric->now();
  sim::SimDuration held{};

  std::vector<RouteDelta> batch;
  batch.reserve(prefixes.size());
  if (event.kind != ChurnEvent::Kind::kPrefixUp) {
    for (const net::Ipv4Prefix& prefix : prefixes) {
      batch.push_back(RouteDelta::withdraw(subject, prefix));
    }
    study.fabric->apply(batch);
    study.fabric->run_to_convergence();
    measure.engine_events += study.fabric->last_run_events();
  }
  const bool comes_back = event.kind == ChurnEvent::Kind::kFlap ||
                          event.kind == ChurnEvent::Kind::kRehome ||
                          event.kind == ChurnEvent::Kind::kPrefixUp;
  if (comes_back) {
    if (event.kind != ChurnEvent::Kind::kPrefixUp &&
        event.hold > sim::SimDuration{}) {
      study.fabric->advance(event.hold);
      held = event.hold;
    }
    batch.clear();
    for (const net::Ipv4Prefix& prefix : prefixes) {
      batch.push_back(RouteDelta::announce(subject, prefix));
    }
    study.fabric->apply(batch);
    study.fabric->run_to_convergence();
    measure.engine_events += study.fabric->last_run_events();
  }

  measure.update_messages =
      study.fabric->total_updates_sent() - before.updates;
  measure.route_records = study.fabric->total_routes_announced() +
                          study.fabric->total_routes_withdrawn() -
                          before.records;
  measure.settle_ms = ((study.fabric->now() - t0) - held).ms();
  measure.ases_touched = count_ases_touched(study, before);
  return measure;
}

}  // namespace

std::string to_string(AddressingScenario scenario) {
  switch (scenario) {
    case AddressingScenario::kLegacyBgp: return "legacy-bgp";
    case AddressingScenario::kLispRlocOnly: return "lisp-rloc-only";
  }
  return "?";
}

std::string to_string(PolicyEvent::Kind kind) {
  switch (kind) {
    case PolicyEvent::Kind::kNone: return "none";
    case PolicyEvent::Kind::kHijackMoreSpecific: return "hijack-more-specific";
    case PolicyEvent::Kind::kHijackSameSpecific: return "hijack-same-specific";
    case PolicyEvent::Kind::kRouteLeak: return "route-leak";
    case PolicyEvent::Kind::kSelectiveDeagg: return "selective-deagg";
    case PolicyEvent::Kind::kBroadcastDeagg: return "broadcast-deagg";
  }
  return "?";
}

std::vector<net::Ipv4Prefix> stub_site_prefixes(std::size_t stub_index,
                                                std::size_t deaggregation_factor) {
  if (!is_power_of_two(deaggregation_factor) || deaggregation_factor > 4096) {
    throw std::invalid_argument(
        "stub_site_prefixes: factor must be a power of two <= 4096");
  }
  const std::uint64_t block_size = std::uint64_t{1} << (32 - kSiteBlockLength);
  const std::uint64_t base = kSiteSpaceBase + stub_index * block_size;
  if (base + block_size > (std::uint64_t{101} << 24)) {
    throw std::out_of_range("stub_site_prefixes: stub index exhausts 100/8");
  }
  const int extra_bits =
      static_cast<int>(std::lround(std::log2(deaggregation_factor)));
  const int length = kSiteBlockLength + extra_bits;
  const std::uint64_t piece = block_size >> extra_bits;
  std::vector<net::Ipv4Prefix> out;
  out.reserve(deaggregation_factor);
  for (std::size_t k = 0; k < deaggregation_factor; ++k) {
    out.emplace_back(net::Ipv4Address(static_cast<std::uint32_t>(base + k * piece)),
                     length);
  }
  return out;
}

net::Ipv4Prefix provider_aggregate(AsNumber asn) {
  const std::uint64_t block_size =
      std::uint64_t{1} << (32 - kProviderAggregateLength);
  const std::uint64_t base =
      kRlocSpaceBase + std::uint64_t{asn.value() - 1} * block_size;
  if (base + block_size > (std::uint64_t{61} << 24)) {
    throw std::out_of_range("provider_aggregate: ASN exhausts 60/8");
  }
  return {net::Ipv4Address(static_cast<std::uint32_t>(base)),
          kProviderAggregateLength};
}

DfzStudyResult run_dfz_study(const DfzStudyConfig& config) {
  auto study = build_study(config);
  const sim::SimTime converged = study->fabric->run_to_convergence();

  DfzStudyResult result;
  result.bgp_origin_prefixes = study->origin_prefixes;
  result.mapping_system_entries = study->mapping_entries;
  result.update_messages = study->fabric->total_updates_sent();
  result.route_records = study->fabric->total_routes_announced();
  result.convergence_ms = converged.ms();

  const auto tier1s = study->graph->ases_of_tier(AsTier::kTier1);
  result.dfz_table_size = study->fabric->speaker(tier1s.front()).rib_size();

  std::uint64_t total = 0;
  for (AsNumber asn : study->graph->ases()) {
    const std::size_t size = study->fabric->speaker(asn).rib_size();
    total += size;
    result.max_rib_size = std::max(result.max_rib_size, size);
  }
  result.mean_rib_size =
      static_cast<double>(total) / static_cast<double>(study->graph->size());
  return result;
}

RehomingChurnResult run_rehoming_churn(const DfzStudyConfig& config) {
  // The §2 ingress swing — the first stub takes its prefixes down
  // (converge) and brings them back (converge), the BGP cost the paper's
  // CP replaces with a mapping push — expressed as one declarative event
  // on the unified churn surface.  Outputs are byte-identical to the
  // former hand-rolled withdraw/announce sequence.
  ChurnPlan plan;
  plan.events.push_back(ChurnEvent::rehome(0));
  const ChurnPlanResult churn = run_churn_plan(config, plan);

  RehomingChurnResult result;
  const ChurnEventMeasure& swing = churn.events.front();
  result.update_messages = swing.update_messages;
  result.route_records = swing.route_records;
  result.settle_ms = swing.settle_ms;
  result.ases_touched = swing.ases_touched;
  return result;
}

ChurnPlanResult run_churn_plan(const DfzStudyConfig& config,
                               const ChurnPlan& plan) {
  bool has_incident = false;
  for (const ChurnEvent& event : plan.events) {
    if (event.kind == ChurnEvent::Kind::kPolicyIncident) has_incident = true;
  }
  if (has_incident) validate_incident_config(config);

  const auto is_flap = [](const ChurnEvent& event) {
    return event.kind == ChurnEvent::Kind::kFlap ||
           event.kind == ChurnEvent::Kind::kRehome;
  };

  ChurnPlanResult result;
  result.events.reserve(plan.events.size());

  if (config.scenario == AddressingScenario::kLispRlocOnly) {
    // Churn is a mapping update: the PCE pushes a new (ES, ED, RLOC_S,
    // RLOC_D) tuple (Step 7b) and no BGP speaker hears about it.  Every
    // BGP-side measure is identically zero — the paper's amortisation
    // claim in one row — but the plan's shape (flap count, span) is still
    // reported so soak series stay comparable across scenarios.  The
    // mapping-side latency is measured by bench/e4_traffic_engineering.
    for (const ChurnEvent& event : plan.events) {
      ChurnEventMeasure measure;
      measure.kind = event.kind;
      result.events.push_back(measure);
      if (is_flap(event)) ++result.flaps;
      result.span_ms +=
          event.spacing.ms() + (is_flap(event) ? event.hold.ms() : 0.0);
    }
    return result;
  }

  // Incremental mode converges one world and keeps it; full replay
  // rebuilds it per event — the pre-incremental measurement model, kept as
  // the CI parity baseline.  span_ms accumulates identically in both
  // modes (spacing + settle + hold, per event), so artifacts byte-match.
  std::unique_ptr<BuiltStudy> study;
  const auto fresh_world = [&] {
    study = build_study(config);
    if (has_incident) validate_incident_targets(config, *study);
    study->fabric->run_to_convergence();
  };
  if (!plan.full_replay) fresh_world();

  double flap_settle_sum = 0.0;
  std::uint64_t flap_updates = 0;
  std::uint64_t flap_records = 0;
  for (const ChurnEvent& event : plan.events) {
    if (plan.full_replay) fresh_world();
    if (event.spacing > sim::SimDuration{}) {
      study->fabric->advance(event.spacing);
    }
    const ChurnEventMeasure measure =
        execute_churn_event(config, *study, event, result.incident);

    result.update_messages += measure.update_messages;
    result.route_records += measure.route_records;
    result.engine_events += measure.engine_events;
    result.max_settle_ms = std::max(result.max_settle_ms, measure.settle_ms);
    result.span_ms += event.spacing.ms() + measure.settle_ms +
                      (is_flap(event) ? event.hold.ms() : 0.0);
    if (is_flap(event)) {
      ++result.flaps;
      flap_settle_sum += measure.settle_ms;
      flap_updates += measure.update_messages;
      flap_records += measure.route_records;
    }
    result.events.push_back(measure);
  }
  if (result.flaps > 0) {
    const auto flaps = static_cast<double>(result.flaps);
    result.mean_updates_per_flap = static_cast<double>(flap_updates) / flaps;
    result.mean_records_per_flap = static_cast<double>(flap_records) / flaps;
    result.mean_settle_ms = flap_settle_sum / flaps;
  }
  return result;
}

ChurnPlan make_flap_plan(std::size_t flaps, std::size_t stub_count,
                         std::uint64_t seed, sim::SimDuration mean_spacing,
                         sim::SimDuration hold) {
  if (stub_count == 0) {
    throw std::invalid_argument("make_flap_plan: stub_count must be > 0");
  }
  sim::Rng rng(seed);
  ChurnPlan plan;
  plan.events.reserve(flaps);
  for (std::size_t i = 0; i < flaps; ++i) {
    const auto stub =
        static_cast<std::size_t>(rng.uniform_int(0, stub_count - 1));
    const auto spacing_ns = static_cast<std::int64_t>(std::llround(
        rng.exponential(static_cast<double>(mean_spacing.ns()))));
    plan.events.push_back(
        ChurnEvent::flap(stub, hold, sim::SimDuration::nanos(spacing_ns)));
  }
  return plan;
}

PolicyEventResult run_policy_event(const DfzStudyConfig& config) {
  ChurnPlan plan;
  plan.events.push_back(ChurnEvent::policy_incident());
  ChurnPlanResult churn = run_churn_plan(config, plan);
  return *std::move(churn.incident);
}

}  // namespace lispcp::routing
