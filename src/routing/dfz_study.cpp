#include "routing/dfz_study.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_map>
#include <stdexcept>

namespace lispcp::routing {

namespace {

/// Stub site blocks live in 100.0.0.0/8, one /20 per stub — disjoint from
/// the provider RLOC space by construction.
constexpr std::uint32_t kSiteSpaceBase = (100u << 24);
constexpr int kSiteBlockLength = 20;

/// Provider RLOC aggregates live in 60.0.0.0/8, one /12 per provider ASN.
constexpr std::uint32_t kRlocSpaceBase = (60u << 24);
constexpr int kProviderAggregateLength = 12;

[[nodiscard]] bool is_power_of_two(std::size_t v) {
  return v != 0 && (v & (v - 1)) == 0;
}

/// All tier-1 and transit ASes: the provider set that owns RLOC space.
[[nodiscard]] std::vector<AsNumber> providers_of(const AsGraph& graph) {
  std::vector<AsNumber> out = graph.ases_of_tier(AsTier::kTier1);
  const auto transits = graph.ases_of_tier(AsTier::kTransit);
  out.insert(out.end(), transits.begin(), transits.end());
  return out;
}

struct BuiltStudy {
  /// Shared immutable topology (copy-on-write fork: every point of a sweep
  /// with the same SyntheticInternetConfig reads one graph; the mutable
  /// per-run state — speakers, RIBs, queues — lives in the fabric).
  std::shared_ptr<const AsGraph> graph;
  std::unique_ptr<BgpFabric> fabric;
  std::size_t origin_prefixes = 0;
  std::size_t mapping_entries = 0;
};

/// Builds the Internet, originates prefixes per scenario, returns the
/// un-converged fabric.
[[nodiscard]] std::unique_ptr<BuiltStudy> build_study(const DfzStudyConfig& config) {
  if (!is_power_of_two(config.deaggregation_factor) ||
      config.deaggregation_factor > 4096) {
    throw std::invalid_argument(
        "DfzStudy: deaggregation_factor must be a power of two <= 4096");
  }
  auto study = std::make_unique<BuiltStudy>();
  study->graph = shared_synthetic_internet(config.internet);
  study->fabric = std::make_unique<BgpFabric>(*study->graph, config.bgp);

  for (AsNumber provider : providers_of(*study->graph)) {
    study->fabric->speaker(provider).originate(provider_aggregate(provider));
    ++study->origin_prefixes;
  }
  const auto stubs = study->graph->ases_of_tier(AsTier::kStub);
  for (std::size_t i = 0; i < stubs.size(); ++i) {
    const auto prefixes = stub_site_prefixes(i, config.deaggregation_factor);
    if (config.scenario == AddressingScenario::kLegacyBgp) {
      for (const net::Ipv4Prefix& prefix : prefixes) {
        study->fabric->speaker(stubs[i]).originate(prefix);
        ++study->origin_prefixes;
      }
    } else {
      // LISP: the EID block is registered with the mapping system and never
      // enters a BGP session.
      study->mapping_entries += prefixes.size();
    }
  }
  return study;
}

}  // namespace

std::string to_string(AddressingScenario scenario) {
  switch (scenario) {
    case AddressingScenario::kLegacyBgp: return "legacy-bgp";
    case AddressingScenario::kLispRlocOnly: return "lisp-rloc-only";
  }
  return "?";
}

std::vector<net::Ipv4Prefix> stub_site_prefixes(std::size_t stub_index,
                                                std::size_t deaggregation_factor) {
  if (!is_power_of_two(deaggregation_factor) || deaggregation_factor > 4096) {
    throw std::invalid_argument(
        "stub_site_prefixes: factor must be a power of two <= 4096");
  }
  const std::uint64_t block_size = std::uint64_t{1} << (32 - kSiteBlockLength);
  const std::uint64_t base = kSiteSpaceBase + stub_index * block_size;
  if (base + block_size > (std::uint64_t{101} << 24)) {
    throw std::out_of_range("stub_site_prefixes: stub index exhausts 100/8");
  }
  const int extra_bits =
      static_cast<int>(std::lround(std::log2(deaggregation_factor)));
  const int length = kSiteBlockLength + extra_bits;
  const std::uint64_t piece = block_size >> extra_bits;
  std::vector<net::Ipv4Prefix> out;
  out.reserve(deaggregation_factor);
  for (std::size_t k = 0; k < deaggregation_factor; ++k) {
    out.emplace_back(net::Ipv4Address(static_cast<std::uint32_t>(base + k * piece)),
                     length);
  }
  return out;
}

net::Ipv4Prefix provider_aggregate(AsNumber asn) {
  const std::uint64_t block_size =
      std::uint64_t{1} << (32 - kProviderAggregateLength);
  const std::uint64_t base =
      kRlocSpaceBase + std::uint64_t{asn.value() - 1} * block_size;
  if (base + block_size > (std::uint64_t{61} << 24)) {
    throw std::out_of_range("provider_aggregate: ASN exhausts 60/8");
  }
  return {net::Ipv4Address(static_cast<std::uint32_t>(base)),
          kProviderAggregateLength};
}

DfzStudyResult run_dfz_study(const DfzStudyConfig& config) {
  auto study = build_study(config);
  const sim::SimTime converged = study->fabric->run_to_convergence();

  DfzStudyResult result;
  result.bgp_origin_prefixes = study->origin_prefixes;
  result.mapping_system_entries = study->mapping_entries;
  result.update_messages = study->fabric->total_updates_sent();
  result.route_records = study->fabric->total_routes_announced();
  result.convergence_ms = converged.ms();

  const auto tier1s = study->graph->ases_of_tier(AsTier::kTier1);
  result.dfz_table_size = study->fabric->speaker(tier1s.front()).rib_size();

  std::uint64_t total = 0;
  for (AsNumber asn : study->graph->ases()) {
    const std::size_t size = study->fabric->speaker(asn).rib_size();
    total += size;
    result.max_rib_size = std::max(result.max_rib_size, size);
  }
  result.mean_rib_size =
      static_cast<double>(total) / static_cast<double>(study->graph->size());
  return result;
}

RehomingChurnResult run_rehoming_churn(const DfzStudyConfig& config) {
  RehomingChurnResult result;
  if (config.scenario == AddressingScenario::kLispRlocOnly) {
    // Re-homing is a mapping update: the PCE pushes a new (ES, ED, RLOC_S,
    // RLOC_D) tuple (Step 7b) and no BGP speaker hears about it.  The BGP
    // side of the event is identically zero; the mapping-side latency is
    // measured by bench/e4_traffic_engineering on the packet simulator.
    return result;
  }

  auto study = build_study(config);
  study->fabric->run_to_convergence();

  const std::uint64_t updates_before = study->fabric->total_updates_sent();
  const std::uint64_t records_before = study->fabric->total_routes_announced() +
                                       study->fabric->total_routes_withdrawn();
  std::unordered_map<std::uint32_t, std::uint64_t> changes_before;
  for (AsNumber asn : study->graph->ases()) {
    changes_before[asn.value()] =
        study->fabric->speaker(asn).stats().best_changes;
  }
  const sim::SimTime t0 = study->fabric->now();

  // The flap: the first stub takes its prefixes down (converge), then brings
  // them back (converge) — the BGP cost of swinging ingress traffic that the
  // paper's CP replaces with a mapping push.
  const auto stubs = study->graph->ases_of_tier(AsTier::kStub);
  const auto prefixes = stub_site_prefixes(0, config.deaggregation_factor);
  BgpSpeaker& mover = study->fabric->speaker(stubs.front());
  for (const net::Ipv4Prefix& prefix : prefixes) mover.withdraw_origin(prefix);
  study->fabric->run_to_convergence();
  for (const net::Ipv4Prefix& prefix : prefixes) mover.originate(prefix);
  study->fabric->run_to_convergence();

  result.update_messages = study->fabric->total_updates_sent() - updates_before;
  result.route_records = study->fabric->total_routes_announced() +
                         study->fabric->total_routes_withdrawn() - records_before;
  result.settle_ms = (study->fabric->now() - t0).ms();
  for (AsNumber asn : study->graph->ases()) {
    if (study->fabric->speaker(asn).stats().best_changes >
        changes_before[asn.value()]) {
      ++result.ases_touched;
    }
  }
  return result;
}

}  // namespace lispcp::routing
