#include "routing/policy.hpp"

#include <algorithm>
#include <stdexcept>

#include "routing/bgp.hpp"

namespace lispcp::routing::policy {

std::string to_string(Community community) {
  return std::to_string(community >> 16) + ":" +
         std::to_string(community & 0xffffu);
}

void add_community(std::vector<Community>& communities, Community community) {
  const auto it =
      std::lower_bound(communities.begin(), communities.end(), community);
  if (it != communities.end() && *it == community) return;
  communities.insert(it, community);
}

// ---------------------------------------------------------------------------
// PrefixList
// ---------------------------------------------------------------------------

PrefixList& PrefixList::add(bool permit, const net::Ipv4Prefix& prefix, int ge,
                            int le) {
  Rule rule;
  rule.permit = permit;
  rule.prefix = prefix;
  rule.min_length = ge < 0 ? prefix.length() : ge;
  rule.max_length = le < 0 ? (ge < 0 ? prefix.length() : 32) : le;
  if (rule.min_length < prefix.length() || rule.max_length > 32 ||
      rule.min_length > rule.max_length) {
    throw std::invalid_argument("PrefixList: bad ge/le bounds for " +
                                prefix.to_string());
  }
  rules_.push_back(rule);
  return *this;
}

bool PrefixList::matches(const net::Ipv4Prefix& prefix) const {
  for (const Rule& rule : rules_) {
    if (prefix.length() < rule.min_length || prefix.length() > rule.max_length) {
      continue;
    }
    if (!rule.prefix.contains(prefix)) continue;
    return rule.permit;
  }
  return false;  // implicit deny
}

// ---------------------------------------------------------------------------
// AsPathPattern
// ---------------------------------------------------------------------------

AsPathPattern AsPathPattern::parse(std::string_view text) {
  AsPathPattern out;
  out.text_ = std::string(text);
  std::string_view body = text;
  const bool anchored_front = !body.empty() && body.front() == '^';
  if (anchored_front) body.remove_prefix(1);
  const bool anchored_back = !body.empty() && body.back() == '$';
  if (anchored_back) body.remove_suffix(1);

  if (body.empty()) {
    if (anchored_front && anchored_back) {
      out.kind_ = Kind::kEmpty;
      return out;
    }
    if (!anchored_front && !anchored_back) {
      out.kind_ = Kind::kAny;
      return out;
    }
    throw std::invalid_argument("AsPathPattern: bad pattern '" +
                                std::string(text) + "'");
  }

  std::uint32_t value = 0;
  for (const char c : body) {
    if (c < '0' || c > '9') {
      throw std::invalid_argument("AsPathPattern: bad pattern '" +
                                  std::string(text) + "'");
    }
    value = value * 10 + static_cast<std::uint32_t>(c - '0');
  }
  out.asn_ = AsNumber{value};
  if (anchored_front && anchored_back) {
    out.kind_ = Kind::kExact;
  } else if (anchored_front) {
    out.kind_ = Kind::kFirstHop;
  } else if (anchored_back) {
    out.kind_ = Kind::kOrigin;
  } else {
    out.kind_ = Kind::kContains;
  }
  return out;
}

bool AsPathPattern::matches(const std::vector<AsNumber>& as_path) const {
  switch (kind_) {
    case Kind::kAny:
      return true;
    case Kind::kEmpty:
      return as_path.empty();
    case Kind::kFirstHop:
      return !as_path.empty() && as_path.front() == asn_;
    case Kind::kOrigin:
      return !as_path.empty() && as_path.back() == asn_;
    case Kind::kExact:
      return as_path.size() == 1 && as_path.front() == asn_;
    case Kind::kContains:
      return std::find(as_path.begin(), as_path.end(), asn_) != as_path.end();
  }
  return false;
}

// ---------------------------------------------------------------------------
// RouteMap
// ---------------------------------------------------------------------------

RouteMap::Clause& RouteMap::Clause::match_prefix_list(PrefixList list) {
  prefix_list_ = std::move(list);
  return *this;
}

RouteMap::Clause& RouteMap::Clause::match_prefix_length(int min_length,
                                                        int max_length) {
  if (min_length < 0 || max_length > 32 || min_length > max_length) {
    throw std::invalid_argument("RouteMap: bad prefix-length bounds");
  }
  min_length_ = min_length;
  max_length_ = max_length;
  return *this;
}

RouteMap::Clause& RouteMap::Clause::match_community(Community community) {
  policy::add_community(required_communities_, community);
  return *this;
}

RouteMap::Clause& RouteMap::Clause::match_as_path(AsPathPattern pattern) {
  as_path_ = std::move(pattern);
  return *this;
}

RouteMap::Clause& RouteMap::Clause::set_local_pref(std::uint32_t value) {
  if (value == 0) {
    throw std::invalid_argument("RouteMap: local-pref 0 means 'unset'");
  }
  actions_.local_pref = value;
  return *this;
}

RouteMap::Clause& RouteMap::Clause::add_community(Community community) {
  policy::add_community(actions_.add_communities, community);
  return *this;
}

RouteMap::Clause& RouteMap::Clause::prepend(std::size_t count) {
  actions_.prepend = count;
  return *this;
}

bool RouteMap::Clause::matches(const RouteContext& route) const {
  if (prefix_list_ && !prefix_list_->matches(route.prefix)) return false;
  if (min_length_ >= 0 && (route.prefix.length() < min_length_ ||
                           route.prefix.length() > max_length_)) {
    return false;
  }
  for (const Community required : required_communities_) {
    if (!std::binary_search(route.communities.begin(), route.communities.end(),
                            required)) {
      return false;
    }
  }
  if (as_path_ && !as_path_->matches(route.as_path)) return false;
  return true;
}

std::optional<RouteActions> RouteMap::evaluate(const RouteContext& route) const {
  for (const Clause& clause : clauses_) {
    if (!clause.matches(route)) continue;
    if (clause.action_ == Action::kDeny) return std::nullopt;
    return clause.actions_;
  }
  return std::nullopt;  // implicit deny
}

// ---------------------------------------------------------------------------
// PolicyTable
// ---------------------------------------------------------------------------

std::shared_ptr<PolicyTable> PolicyTable::gao_rexford(const AsGraph& graph) {
  auto table = std::make_shared<PolicyTable>();

  // One shared import map per role: pin the role local-pref and tag the
  // route with the learned-from-role community.  The maps are the explicit
  // form of what the policy-off decision process hard-codes.
  const auto role_import = [&table](const char* name, std::uint32_t local_pref,
                                    Community tag) -> RouteMap& {
    RouteMap& map = table->add_map(name);
    map.add(RouteMap::Action::kPermit)
        .set_local_pref(local_pref)
        .add_community(tag);
    return map;
  };
  const RouteMap& from_customer = role_import(
      "role-import:customer", kCustomerLocalPref, kLearnedFromCustomer);
  const RouteMap& from_peer =
      role_import("role-import:peer", kPeerLocalPref, kLearnedFromPeer);
  const RouteMap& from_provider = role_import(
      "role-import:provider", kProviderLocalPref, kLearnedFromProvider);

  for (const AsNumber asn : graph.ases()) {
    for (const AsGraph::Neighbor& neighbor : graph.neighbors(asn)) {
      SessionPolicy& session = table->session(asn, neighbor.asn);
      session.valley_free = true;
      switch (neighbor.kind) {
        case NeighborKind::kCustomer: session.import = &from_customer; break;
        case NeighborKind::kPeer: session.import = &from_peer; break;
        case NeighborKind::kProvider: session.import = &from_provider; break;
      }
    }
  }
  return table;
}

// ---------------------------------------------------------------------------
// Valley-free checker
// ---------------------------------------------------------------------------

bool valley_free_path(const AsGraph& graph, AsNumber at,
                      const std::vector<AsNumber>& as_path) {
  if (as_path.empty()) return true;  // locally originated
  // Walk the propagation chain origin -> ... -> first hop -> at.  Each
  // step's role is how the *receiving* AS sees the AS it learned from;
  // Gao-Rexford permits customer* peer? provider* along that walk.
  enum class Phase { kUp, kAcross, kDown } phase = Phase::kUp;
  AsNumber current = at;
  for (const AsNumber prev : as_path) {  // front() is the nearest hop
    const auto kind = graph.kind_between(current, prev);
    if (!kind.has_value()) return false;  // path crosses a non-session edge
    // Reversed walk: at -> origin.  Seen in propagation order (origin ->
    // at) the roles read back-to-front, so classify against the reversed
    // automaton: provider* peer? customer* while walking away from `at`.
    switch (*kind) {
      case NeighborKind::kProvider:
        if (phase != Phase::kUp) return false;
        break;
      case NeighborKind::kPeer:
        if (phase != Phase::kUp) return false;  // at most one peer step
        phase = Phase::kAcross;
        break;
      case NeighborKind::kCustomer:
        phase = Phase::kDown;
        break;
    }
    current = prev;
  }
  return true;
}

ValleyCheck check_valley_free(const BgpFabric& fabric,
                              std::size_t sample_stride) {
  if (sample_stride == 0) sample_stride = 1;
  ValleyCheck out;
  const AsGraph& graph = fabric.graph();
  for (const AsNumber asn : graph.ases()) {
    const BgpSpeaker& speaker = fabric.speaker(asn);
    const std::vector<net::Ipv4Prefix> prefixes = speaker.rib_prefixes();
    for (std::size_t i = 0; i < prefixes.size(); i += sample_stride) {
      const BgpSpeaker::BestRoute* route = speaker.best(prefixes[i]);
      if (route == nullptr) continue;
      ++out.paths_checked;
      if (!valley_free_path(graph, asn, route->as_path())) ++out.violations;
    }
  }
  return out;
}

}  // namespace lispcp::routing::policy
