// time.hpp — simulated time strong types.
//
// The simulator runs on nanosecond-resolution virtual time.  `SimDuration`
// is a span, `SimTime` an instant; mixing them up is a compile error.  The
// distinction matters in this library because control-plane claims are about
// *slack between instants* (e.g. "mapping configured before the DNS answer
// arrives", paper claim (ii)).
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace lispcp::sim {

/// A span of simulated time (may be negative, e.g. slack computations).
class SimDuration {
 public:
  constexpr SimDuration() noexcept = default;

  static constexpr SimDuration nanos(std::int64_t n) noexcept { return SimDuration(n); }
  static constexpr SimDuration micros(std::int64_t n) noexcept {
    return SimDuration(n * 1'000);
  }
  static constexpr SimDuration millis(std::int64_t n) noexcept {
    return SimDuration(n * 1'000'000);
  }
  static constexpr SimDuration seconds(std::int64_t n) noexcept {
    return SimDuration(n * 1'000'000'000);
  }
  /// Fractional milliseconds, for latency parameters like 12.5 ms.
  static constexpr SimDuration millis_f(double ms) noexcept {
    return SimDuration(static_cast<std::int64_t>(ms * 1'000'000.0));
  }
  static constexpr SimDuration seconds_f(double s) noexcept {
    return SimDuration(static_cast<std::int64_t>(s * 1'000'000'000.0));
  }

  [[nodiscard]] constexpr std::int64_t ns() const noexcept { return ns_; }
  [[nodiscard]] constexpr double us() const noexcept { return static_cast<double>(ns_) / 1e3; }
  [[nodiscard]] constexpr double ms() const noexcept { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double sec() const noexcept { return static_cast<double>(ns_) / 1e9; }

  [[nodiscard]] std::string to_string() const;

  constexpr SimDuration& operator+=(SimDuration d) noexcept { ns_ += d.ns_; return *this; }
  constexpr SimDuration& operator-=(SimDuration d) noexcept { ns_ -= d.ns_; return *this; }

  friend constexpr SimDuration operator+(SimDuration a, SimDuration b) noexcept {
    return SimDuration(a.ns_ + b.ns_);
  }
  friend constexpr SimDuration operator-(SimDuration a, SimDuration b) noexcept {
    return SimDuration(a.ns_ - b.ns_);
  }
  friend constexpr SimDuration operator-(SimDuration a) noexcept {
    return SimDuration(-a.ns_);
  }
  friend constexpr SimDuration operator*(SimDuration a, std::int64_t k) noexcept {
    return SimDuration(a.ns_ * k);
  }
  friend constexpr SimDuration operator*(std::int64_t k, SimDuration a) noexcept {
    return a * k;
  }
  friend constexpr SimDuration operator/(SimDuration a, std::int64_t k) noexcept {
    return SimDuration(a.ns_ / k);
  }
  /// Ratio of two durations, e.g. T_map / T_DNS for claim (ii).
  friend constexpr double operator/(SimDuration a, SimDuration b) noexcept {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }

  friend constexpr auto operator<=>(SimDuration, SimDuration) noexcept = default;

 private:
  constexpr explicit SimDuration(std::int64_t ns) noexcept : ns_(ns) {}
  std::int64_t ns_ = 0;
};

/// An instant of simulated time, measured from simulation start (t = 0).
class SimTime {
 public:
  constexpr SimTime() noexcept = default;

  static constexpr SimTime zero() noexcept { return SimTime(); }
  static constexpr SimTime from_ns(std::int64_t n) noexcept { return SimTime(n); }

  [[nodiscard]] constexpr std::int64_t ns() const noexcept { return ns_; }
  [[nodiscard]] constexpr double ms() const noexcept { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double sec() const noexcept { return static_cast<double>(ns_) / 1e9; }

  /// Duration since simulation start.
  [[nodiscard]] constexpr SimDuration since_start() const noexcept {
    return SimDuration::nanos(ns_);
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr SimTime operator+(SimTime t, SimDuration d) noexcept {
    return SimTime(t.ns_ + d.ns());
  }
  friend constexpr SimTime operator-(SimTime t, SimDuration d) noexcept {
    return SimTime(t.ns_ - d.ns());
  }
  friend constexpr SimDuration operator-(SimTime a, SimTime b) noexcept {
    return SimDuration::nanos(a.ns_ - b.ns_);
  }
  constexpr SimTime& operator+=(SimDuration d) noexcept { ns_ += d.ns(); return *this; }

  friend constexpr auto operator<=>(SimTime, SimTime) noexcept = default;

 private:
  constexpr explicit SimTime(std::int64_t ns) noexcept : ns_(ns) {}
  std::int64_t ns_ = 0;
};

std::ostream& operator<<(std::ostream& os, SimDuration d);
std::ostream& operator<<(std::ostream& os, SimTime t);

}  // namespace lispcp::sim
