// simulator.hpp — the discrete-event simulation loop.
//
// Owns virtual time, the event queue, and the root RNG.  Everything else in
// the library (links, protocol nodes, workload generators) schedules
// callbacks here.  Single-threaded and deterministic: the same seed and the
// same construction order always produce the same run.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace lispcp::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `action` after `delay` (>= 0) from now.
  EventHandle schedule(SimDuration delay, EventAction action) {
    if (delay < SimDuration{}) {
      throw std::invalid_argument("Simulator::schedule: negative delay");
    }
    return queue_.schedule(now_ + delay, std::move(action));
  }

  /// Schedules `action` at absolute time `at` (>= now()).
  EventHandle schedule_at(SimTime at, EventAction action) {
    if (at < now_) {
      throw std::invalid_argument("Simulator::schedule_at: time in the past");
    }
    return queue_.schedule(at, std::move(action));
  }

  /// Schedules background maintenance after `delay`.  Daemon events fire in
  /// time order like regular events but never keep run() alive: once only
  /// daemons remain, run() returns.  Periodic self-rescheduling work (IRC
  /// refresh, RLOC probe cycles, NERD push timers) must use this, or an
  /// unbounded run() would spin on the maintenance loop forever.
  EventHandle schedule_daemon(SimDuration delay, EventAction action) {
    if (delay < SimDuration{}) {
      throw std::invalid_argument("Simulator::schedule_daemon: negative delay");
    }
    return queue_.schedule(now_ + delay, std::move(action), /*daemon=*/true);
  }

  /// Runs until all *foreground* work drains; pending daemon events are left
  /// queued (the simulation can be resumed).  `max_events` guards against
  /// accidental infinite event chains (0 = unlimited).
  void run(std::uint64_t max_events = 0) {
    EventQueue::Fired fired;
    while (queue_.has_foreground() && queue_.pop(fired)) {
      now_ = fired.time;
      fired.action();
      ++processed_;
      if (max_events != 0 && processed_ >= max_events) {
        throw std::runtime_error("Simulator::run: event budget exhausted");
      }
    }
  }

  /// Runs events with time <= `until`, then sets now() = until.  Events
  /// scheduled later stay queued, so the simulation can be resumed.
  void run_until(SimTime until) {
    while (!queue_.empty() && queue_.next_time() <= until) {
      EventQueue::Fired fired;
      queue_.pop(fired);
      now_ = fired.time;
      fired.action();
      ++processed_;
    }
    if (now_ < until) now_ = until;
  }

  /// Convenience: run_until(now() + d).
  void run_for(SimDuration d) { run_until(now_ + d); }

  [[nodiscard]] std::uint64_t events_processed() const noexcept { return processed_; }
  [[nodiscard]] bool idle() { return queue_.empty(); }
  [[nodiscard]] EventQueue& queue() noexcept { return queue_; }

  /// Root RNG.  Components should fork() child streams at construction.
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

 private:
  SimTime now_;
  EventQueue queue_;
  Rng rng_;
  std::uint64_t processed_ = 0;
};

}  // namespace lispcp::sim
