// failure.hpp — structured failure injection for experiments.
//
// Schedules deterministic link outages (down at T, up at T + duration),
// whole-node outages (every incident link), and randomized outage processes
// (exponential time-between-failures / time-to-repair) for soak tests.
// Failure events are foreground events on purpose: an injected outage is
// part of the experiment script, and a run() must not finish before the
// world has finished changing.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/link.hpp"
#include "sim/network.hpp"

namespace lispcp::sim {

class FailureSchedule {
 public:
  explicit FailureSchedule(Network& network) : network_(network) {}

  FailureSchedule(const FailureSchedule&) = delete;
  FailureSchedule& operator=(const FailureSchedule&) = delete;

  /// Takes `link` down at `at` and restores it `duration` later
  /// (duration <= 0 means the outage is permanent).
  void link_outage(Link& link, SimTime at,
                   SimDuration duration = SimDuration{});

  /// Fails every link incident to `node` for the given window — the
  /// standard model for a whole-router failure.
  void node_outage(NodeId node, SimTime at,
                   SimDuration duration = SimDuration{});

  /// Subjects `link` to a renewal outage process until `until`: up-times
  /// drawn from Exponential(mean_time_between_failures), down-times from
  /// Exponential(mean_time_to_repair).  Deterministic per `rng` stream.
  void random_outages(Link& link, SimTime until,
                      SimDuration mean_time_between_failures,
                      SimDuration mean_time_to_repair, Rng rng);

  [[nodiscard]] std::uint64_t outages_injected() const noexcept {
    return outages_injected_;
  }
  [[nodiscard]] std::uint64_t repairs_injected() const noexcept {
    return repairs_injected_;
  }

 private:
  void down(Link& link);
  void up(Link& link);
  void schedule_random_cycle(Link& link, SimTime until,
                             SimDuration mtbf, SimDuration mttr,
                             std::shared_ptr<Rng> rng);

  Network& network_;
  std::uint64_t outages_injected_ = 0;
  std::uint64_t repairs_injected_ = 0;
};

}  // namespace lispcp::sim
