#include "sim/rng.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lispcp::sim {

ZipfDistribution::ZipfDistribution(std::size_t n, double alpha) : alpha_(alpha) {
  if (n == 0) throw std::invalid_argument("ZipfDistribution: n must be > 0");
  if (alpha < 0) throw std::invalid_argument("ZipfDistribution: alpha must be >= 0");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), alpha);
    cdf_[k] = acc;
  }
  // Normalise so the final entry is exactly 1 and uniform() always lands.
  for (auto& c : cdf_) c /= acc;
  cdf_.back() = 1.0;
}

std::size_t ZipfDistribution::operator()(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfDistribution::pmf(std::size_t k) const {
  if (k >= cdf_.size()) return 0.0;
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace lispcp::sim
