#include "sim/shard_queue.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace lispcp::sim {

void ShardQueue::schedule(SimTime at, EventKey key, EventAction action) {
  if (at < now_) {
    throw std::invalid_argument("ShardQueue::schedule: time in the past");
  }
  heap_.push_back(Entry{at, key, seq_++, std::move(action)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

SimTime ShardQueue::next_time() const noexcept { return heap_.front().time; }

std::uint64_t ShardQueue::run_window(SimTime end, std::uint64_t max_events) {
  std::uint64_t fired = 0;
  while (!heap_.empty() && heap_.front().time < end) {
    if (max_events != 0 && fired >= max_events) break;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry entry = std::move(heap_.back());
    heap_.pop_back();
    now_ = entry.time;
    entry.action();
    ++fired;
  }
  return fired;
}

}  // namespace lispcp::sim
