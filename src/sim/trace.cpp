#include "sim/trace.hpp"

#include <ostream>

namespace lispcp::sim {

const char* to_string(TraceRecord::Kind kind) noexcept {
  switch (kind) {
    case TraceRecord::Kind::kSend: return "SEND";
    case TraceRecord::Kind::kDeliver: return "DELIVER";
    case TraceRecord::Kind::kForward: return "FORWARD";
    case TraceRecord::Kind::kConsume: return "CONSUME";
    case TraceRecord::Kind::kDrop: return "DROP";
  }
  return "?";
}

const char* to_string(DropReason reason) noexcept {
  switch (reason) {
    case DropReason::kNoRoute: return "no-route";
    case DropReason::kTtlExpired: return "ttl-expired";
    case DropReason::kQueueFull: return "queue-full";
    case DropReason::kRandomLoss: return "random-loss";
    case DropReason::kLinkDown: return "link-down";
    case DropReason::kMappingMiss: return "mapping-miss";
  }
  return "?";
}

std::string TraceRecord::to_string() const {
  std::string out = "[" + time.to_string() + "] ";
  out += sim::to_string(kind);
  if (kind == Kind::kDrop) {
    out += "(";
    out += sim::to_string(drop_reason);
    out += ")";
  }
  if (!node.empty()) out += " @" + node;
  out += " " + summary;
  return out;
}

void RecordingTracer::record(TraceRecord::Kind kind, SimTime t, std::string node,
                             const net::Packet& p, DropReason reason) {
  TraceRecord rec;
  rec.kind = kind;
  rec.time = t;
  rec.node = std::move(node);
  rec.drop_reason = reason;
  rec.packet_id = p.id();
  rec.summary = p.describe();
  if (filter_ && !filter_(rec)) return;
  ++total_;
  if (records_.size() >= capacity_) {
    records_.pop_front();
    ++overflowed_;
  }
  records_.push_back(std::move(rec));
}

std::vector<TraceRecord> RecordingTracer::packet_journey(
    std::uint64_t packet_id) const {
  std::vector<TraceRecord> out;
  for (const auto& rec : records_) {
    if (rec.packet_id == packet_id) out.push_back(rec);
  }
  return out;
}

void RecordingTracer::write_text(std::ostream& os) const {
  for (const auto& rec : records_) {
    os << rec.to_string() << "\n";
  }
}

}  // namespace lispcp::sim
