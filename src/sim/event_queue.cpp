#include "sim/event_queue.hpp"

#include <stdexcept>

namespace lispcp::sim {

EventHandle EventQueue::schedule(SimTime at, std::function<void()> action,
                                 bool daemon) {
  auto record = std::make_shared<EventHandle::Record>();
  record->action = std::move(action);
  record->daemon = daemon;
  record->foreground_live = &foreground_live_;
  if (!daemon) ++foreground_live_;
  heap_.push(Entry{at, seq_++, record});
  return EventHandle(record);
}

void EventQueue::prune() {
  // Cancelled entries already gave back their foreground count in
  // EventHandle::cancel(); here they are only physically discarded.
  while (!heap_.empty() && heap_.top().record->cancelled) {
    heap_.pop();
  }
}

bool EventQueue::pop(Fired& out) {
  prune();
  if (heap_.empty()) return false;
  Entry entry = heap_.top();
  heap_.pop();
  out.time = entry.time;
  out.action = std::move(entry.record->action);
  out.daemon = entry.record->daemon;
  entry.record->cancelled = true;  // a fired event is no longer pending
  if (!entry.record->daemon) --foreground_live_;
  return true;
}

SimTime EventQueue::next_time() {
  prune();
  if (heap_.empty()) {
    throw std::logic_error("EventQueue::next_time on empty queue");
  }
  return heap_.top().time;
}

bool EventQueue::empty() {
  prune();
  return heap_.empty();
}

}  // namespace lispcp::sim
