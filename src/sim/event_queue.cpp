#include "sim/event_queue.hpp"

#include <stdexcept>

namespace lispcp::sim {

EventHandle EventQueue::schedule(SimTime at, EventAction action, bool daemon) {
  const std::uint32_t index = pool_->records.allocate();
  auto& record = pool_->records[index];
  record.action = std::move(action);
  record.cancelled = false;
  record.daemon = daemon;
  if (!daemon) ++pool_->foreground_live;
  heap_.push(Entry{at, seq_++, index});
  return EventHandle(pool_, index, pool_->records.generation(index));
}

void EventQueue::prune() {
  // Cancelled entries already gave back their foreground count in
  // EventHandle::cancel(); here they are only physically discarded and
  // their slots returned to the pool.
  while (!heap_.empty() && pool_->records[heap_.top().index].cancelled) {
    pool_->records.release(heap_.top().index);
    heap_.pop();
  }
}

bool EventQueue::pop(Fired& out) {
  prune();
  if (heap_.empty()) return false;
  const Entry entry = heap_.top();
  heap_.pop();
  auto& record = pool_->records[entry.index];
  out.time = entry.time;
  out.action = std::move(record.action);
  out.daemon = record.daemon;
  record.action.reset();
  if (!record.daemon) --pool_->foreground_live;
  // Releasing bumps the generation, so handles to the fired event report
  // !pending() and cancel() returns false — same semantics as before.
  pool_->records.release(entry.index);
  return true;
}

SimTime EventQueue::next_time() {
  prune();
  if (heap_.empty()) {
    throw std::logic_error("EventQueue::next_time on empty queue");
  }
  return heap_.top().time;
}

bool EventQueue::empty() {
  prune();
  return heap_.empty();
}

}  // namespace lispcp::sim
