// link.hpp — point-to-point link with propagation delay, finite bandwidth
// and a drop-tail queue.
//
// Each link is bidirectional with two independent directions.  A direction
// models an output interface: packets serialize at `bandwidth_bps`, wait
// behind earlier packets (implicit FIFO via the `busy_until` horizon), and
// are tail-dropped when the backlog would exceed `queue_bytes`.  Per-
// direction counters feed the IRC link monitors and the TE benches (E4).
#pragma once

#include <cstdint>
#include <stdexcept>

#include "net/packet.hpp"
#include "sim/node.hpp"
#include "sim/time.hpp"

namespace lispcp::sim {

class Network;
class Simulator;

/// Link parameters.  Defaults model a 2008-era provider access link.
struct LinkConfig {
  SimDuration delay = SimDuration::millis(1);  ///< one-way propagation delay
  double bandwidth_bps = 1e9;                  ///< serialization rate
  std::size_t queue_bytes = 512 * 1024;        ///< drop-tail queue capacity
  double loss = 0.0;                           ///< random loss probability
};

/// Per-direction transmission statistics.
struct LinkStats {
  std::uint64_t tx_packets = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t drops_queue = 0;
  std::uint64_t drops_loss = 0;
  /// Cumulative time the transmitter was busy, for utilization.
  SimDuration busy;
};

/// Handle for resetting utilization measurement windows.
struct LinkWindow {
  SimTime start;
  std::uint64_t tx_bytes_at_start = 0;
};

class Link {
 public:
  Link(Network& network, NodeId a, NodeId b, LinkConfig config);

  /// Queues `packet` for transmission from endpoint `from` toward the other
  /// endpoint.  `from` must be one of the link's endpoints.
  void transmit(NodeId from, net::Packet packet);

  [[nodiscard]] NodeId endpoint_a() const noexcept { return a_; }
  [[nodiscard]] NodeId endpoint_b() const noexcept { return b_; }
  [[nodiscard]] NodeId peer_of(NodeId n) const;
  [[nodiscard]] bool connects(NodeId n) const noexcept { return n == a_ || n == b_; }
  [[nodiscard]] const LinkConfig& config() const noexcept { return config_; }

  /// Administrative state: a downed link silently drops everything offered
  /// to it (used by failover experiments).
  void set_up(bool up) noexcept { up_ = up; }
  [[nodiscard]] bool is_up() const noexcept { return up_; }

  /// Books `packets`/`bytes` of closed-form traffic onto the `from`
  /// direction's counters without scheduling any transmission events.  The
  /// flow-aggregate workload engine uses this so link windows, utilization
  /// probes and the IRC's load feedback see aggregate traffic exactly as
  /// they see per-packet traffic.  No queueing/serialization is modeled.
  void account_aggregate(NodeId from, std::uint64_t packets,
                         std::uint64_t bytes) {
    auto& stats = direction(from).stats;
    stats.tx_packets += packets;
    stats.tx_bytes += bytes;
  }

  /// Stats for the direction whose transmitter is `from`.
  [[nodiscard]] const LinkStats& stats(NodeId from) const {
    return direction(from).stats;
  }

  /// Opens a measurement window on the `from` direction.
  [[nodiscard]] LinkWindow open_window(NodeId from) const;

  /// Bytes transmitted in the window so far.
  [[nodiscard]] std::uint64_t bytes_in_window(NodeId from, const LinkWindow& w) const {
    return direction(from).stats.tx_bytes - w.tx_bytes_at_start;
  }

  /// Mean utilization (0..1) of the `from` direction over the window.
  [[nodiscard]] double utilization(NodeId from, const LinkWindow& w) const;

 private:
  struct Direction {
    NodeId to;
    SimTime busy_until;
    LinkStats stats;
  };

  [[nodiscard]] Direction& direction(NodeId from);
  [[nodiscard]] const Direction& direction(NodeId from) const;

  Network& network_;
  NodeId a_;
  NodeId b_;
  LinkConfig config_;
  Direction forward_;   // a -> b
  Direction backward_;  // b -> a
  bool up_ = true;
};

}  // namespace lispcp::sim
