#include "sim/time.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace lispcp::sim {

namespace {

std::string format_ns(std::int64_t ns) {
  char buf[64];
  const double abs_ns = std::abs(static_cast<double>(ns));
  if (abs_ns < 1e3) {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(ns));
  } else if (abs_ns < 1e6) {
    std::snprintf(buf, sizeof buf, "%.2fus", static_cast<double>(ns) / 1e3);
  } else if (abs_ns < 1e9) {
    std::snprintf(buf, sizeof buf, "%.3fms", static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.4fs", static_cast<double>(ns) / 1e9);
  }
  return buf;
}

}  // namespace

std::string SimDuration::to_string() const { return format_ns(ns_); }
std::string SimTime::to_string() const { return format_ns(ns_); }

std::ostream& operator<<(std::ostream& os, SimDuration d) {
  return os << d.to_string();
}

std::ostream& operator<<(std::ostream& os, SimTime t) {
  return os << t.to_string();
}

}  // namespace lispcp::sim
