#include "sim/failure.hpp"

namespace lispcp::sim {

void FailureSchedule::down(Link& link) {
  link.set_up(false);
  ++outages_injected_;
}

void FailureSchedule::up(Link& link) {
  link.set_up(true);
  ++repairs_injected_;
}

void FailureSchedule::link_outage(Link& link, SimTime at, SimDuration duration) {
  network_.sim().schedule_at(at, [this, &link] { down(link); });
  if (duration > SimDuration{}) {
    network_.sim().schedule_at(at + duration, [this, &link] { up(link); });
  }
}

void FailureSchedule::node_outage(NodeId node, SimTime at, SimDuration duration) {
  for (Link* link : network_.links_of(node)) {
    link_outage(*link, at, duration);
  }
}

void FailureSchedule::random_outages(Link& link, SimTime until,
                                     SimDuration mean_time_between_failures,
                                     SimDuration mean_time_to_repair, Rng rng) {
  if (mean_time_between_failures <= SimDuration{} ||
      mean_time_to_repair <= SimDuration{}) {
    throw std::invalid_argument("FailureSchedule::random_outages: means must "
                                "be positive");
  }
  schedule_random_cycle(link, until, mean_time_between_failures,
                        mean_time_to_repair, std::make_shared<Rng>(std::move(rng)));
}

void FailureSchedule::schedule_random_cycle(Link& link, SimTime until,
                                            SimDuration mtbf, SimDuration mttr,
                                            std::shared_ptr<Rng> rng) {
  const auto uptime = SimDuration::nanos(static_cast<std::int64_t>(
      rng->exponential(static_cast<double>(mtbf.ns()))));
  const SimTime fail_at = network_.sim().now() + uptime;
  if (fail_at >= until) return;  // process ends while the link is up
  network_.sim().schedule_at(fail_at, [this, &link, until, mtbf, mttr, rng] {
    down(link);
    const auto downtime = SimDuration::nanos(static_cast<std::int64_t>(
        rng->exponential(static_cast<double>(mttr.ns()))));
    network_.sim().schedule(downtime, [this, &link, until, mtbf, mttr, rng] {
      up(link);
      schedule_random_cycle(link, until, mtbf, mttr, rng);
    });
  });
}

}  // namespace lispcp::sim
