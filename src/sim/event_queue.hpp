// event_queue.hpp — the discrete-event scheduler core.
//
// A binary-heap priority queue of (time, sequence) ordered events.  The
// sequence number breaks ties FIFO, which makes simulations fully
// deterministic: two events scheduled for the same instant always fire in
// scheduling order.  Cancellation is O(1) via a tombstone flag; cancelled
// entries are discarded lazily when popped.
//
// Storage: event records live in a slab pool (core/arena.hpp) owned by the
// queue, not in one shared_ptr allocation per event — scheduling in steady
// state allocates nothing (the action's capture is inline in the pooled
// record, see core/inline_function.hpp).  Handles stay safe across every
// destruction order the nodes exercise: an EventHandle names a record by
// (pool, index, generation); firing or cancelling releases the slot and
// bumps its generation, so a stale handle to a recycled slot can never
// cancel the wrong event, and a handle that outlives the queue simply
// finds the pool gone.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "core/arena.hpp"
#include "core/inline_function.hpp"
#include "sim/time.hpp"

namespace lispcp::sim {

/// The event-closure type: captures up to the inline capacity live in the
/// pooled record itself (larger ones fall back to one heap allocation).
using EventAction = core::InlineFunction<void(), 88>;

namespace detail {

/// The pooled record store behind one EventQueue, shared (via weak_ptr)
/// with the handles it issued.
struct EventRecordPool {
  struct Record {
    EventAction action;
    bool cancelled = false;
    bool daemon = false;
  };

  core::Pool<Record> records;
  /// Exact live-foreground count (cancellation adjusts it immediately).
  std::uint64_t foreground_live = 0;

  [[nodiscard]] bool matches(std::uint32_t index,
                             std::uint32_t generation) const noexcept {
    return records.generation(index) == generation;
  }

  bool cancel(std::uint32_t index, std::uint32_t generation) noexcept {
    if (!matches(index, generation)) return false;
    Record& record = records[index];
    if (record.cancelled) return false;
    record.cancelled = true;
    record.action.reset();  // release captured state eagerly
    if (!record.daemon) --foreground_live;
    return true;
  }

  [[nodiscard]] bool pending(std::uint32_t index,
                             std::uint32_t generation) const noexcept {
    return matches(index, generation) && !records[index].cancelled;
  }
};

}  // namespace detail

/// Handle for cancelling a scheduled event.  Default-constructed handles are
/// inert; cancelling twice is harmless.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet.  Returns true iff this call
  /// transitioned the event from pending to cancelled.
  bool cancel() noexcept {
    auto pool = pool_.lock();
    return pool && pool->cancel(index_, generation_);
  }

  /// True while the event is still scheduled to fire.
  [[nodiscard]] bool pending() const noexcept {
    auto pool = pool_.lock();
    return pool && pool->pending(index_, generation_);
  }

 private:
  friend class EventQueue;
  EventHandle(std::weak_ptr<detail::EventRecordPool> pool, std::uint32_t index,
              std::uint32_t generation)
      : pool_(std::move(pool)), index_(index), generation_(generation) {}

  std::weak_ptr<detail::EventRecordPool> pool_;
  std::uint32_t index_ = 0;
  std::uint32_t generation_ = 0;
};

/// Time-ordered event queue.  Not thread-safe: the whole simulation is
/// single-threaded by design (see DESIGN.md, determinism).
class EventQueue {
 public:
  /// Enqueues `action` to fire at absolute time `at`.  A *daemon* event
  /// (periodic background maintenance: IRC refresh, RLOC probe cycles, NERD
  /// push timers) fires in time order like any other, but does not keep the
  /// simulation alive: Simulator::run() drains the queue only while
  /// foreground work remains.
  EventHandle schedule(SimTime at, EventAction action, bool daemon = false);

  /// Removes and returns the next live event, skipping tombstones.
  /// Returns false when the queue is empty (of live events).
  struct Fired {
    SimTime time;
    EventAction action;
    bool daemon = false;
  };
  bool pop(Fired& out);

  /// Time of the next live event without popping it; meaningful only when
  /// !empty().
  [[nodiscard]] SimTime next_time();

  [[nodiscard]] bool empty();

  /// True while at least one live non-daemon event is queued.  Exact (not
  /// lazy): cancellation adjusts the count immediately.
  [[nodiscard]] bool has_foreground() const noexcept {
    return pool_->foreground_live > 0;
  }

  /// Queued entries.  Upper bound on live events: cancelled entries that
  /// have not yet bubbled to the front are still counted (lazy deletion).
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Total events ever scheduled, for stats.
  [[nodiscard]] std::uint64_t scheduled_total() const noexcept { return seq_; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t index;  ///< record slot in the pool
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return a.time > b.time || (a.time == b.time && a.seq > b.seq);
    }
  };

  /// Drops cancelled entries from the front so top() is live.
  void prune();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::shared_ptr<detail::EventRecordPool> pool_ =
      std::make_shared<detail::EventRecordPool>();
  std::uint64_t seq_ = 0;
};

}  // namespace lispcp::sim
