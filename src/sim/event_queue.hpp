// event_queue.hpp — the discrete-event scheduler core.
//
// A binary-heap priority queue of (time, sequence) ordered events.  The
// sequence number breaks ties FIFO, which makes simulations fully
// deterministic: two events scheduled for the same instant always fire in
// scheduling order.  Cancellation is O(1) via a tombstone flag; cancelled
// entries are discarded lazily when popped.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace lispcp::sim {

/// Handle for cancelling a scheduled event.  Default-constructed handles are
/// inert; cancelling twice is harmless.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet.  Returns true iff this call
  /// transitioned the event from pending to cancelled.
  bool cancel() noexcept {
    auto record = record_.lock();
    if (!record || record->cancelled) return false;
    record->cancelled = true;
    record->action = nullptr;  // release captured state eagerly
    if (!record->daemon && record->foreground_live != nullptr) {
      --*record->foreground_live;
    }
    return true;
  }

  /// True while the event is still scheduled to fire.
  [[nodiscard]] bool pending() const noexcept {
    auto record = record_.lock();
    return record && !record->cancelled;
  }

 private:
  friend class EventQueue;
  struct Record {
    std::function<void()> action;
    bool cancelled = false;
    bool daemon = false;
    /// Exact live-foreground accounting at cancel time (see EventQueue).
    /// The record is owned by the queue's heap, so this pointer cannot
    /// outlive the counter it targets.
    std::uint64_t* foreground_live = nullptr;
  };
  explicit EventHandle(std::weak_ptr<Record> record) : record_(std::move(record)) {}
  std::weak_ptr<Record> record_;
};

/// Time-ordered event queue.  Not thread-safe: the whole simulation is
/// single-threaded by design (see DESIGN.md, determinism).
class EventQueue {
 public:
  /// Enqueues `action` to fire at absolute time `at`.  A *daemon* event
  /// (periodic background maintenance: IRC refresh, RLOC probe cycles, NERD
  /// push timers) fires in time order like any other, but does not keep the
  /// simulation alive: Simulator::run() drains the queue only while
  /// foreground work remains.
  EventHandle schedule(SimTime at, std::function<void()> action,
                       bool daemon = false);

  /// Removes and returns the next live event, skipping tombstones.
  /// Returns false when the queue is empty (of live events).
  struct Fired {
    SimTime time;
    std::function<void()> action;
    bool daemon = false;
  };
  bool pop(Fired& out);

  /// Time of the next live event without popping it; meaningful only when
  /// !empty().
  [[nodiscard]] SimTime next_time();

  [[nodiscard]] bool empty();

  /// True while at least one live non-daemon event is queued.  Exact (not
  /// lazy): cancellation adjusts the count immediately.
  [[nodiscard]] bool has_foreground() const noexcept {
    return foreground_live_ > 0;
  }

  /// Queued entries.  Upper bound on live events: cancelled entries that
  /// have not yet bubbled to the front are still counted (lazy deletion).
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Total events ever scheduled, for stats.
  [[nodiscard]] std::uint64_t scheduled_total() const noexcept { return seq_; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    std::shared_ptr<EventHandle::Record> record;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return a.time > b.time || (a.time == b.time && a.seq > b.seq);
    }
  };

  /// Drops cancelled entries from the front so top() is live.
  void prune();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t seq_ = 0;
  std::uint64_t foreground_live_ = 0;
};

}  // namespace lispcp::sim
