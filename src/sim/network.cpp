#include "sim/network.hpp"

#include <limits>
#include <queue>
#include <stdexcept>

namespace lispcp::sim {

namespace {

std::uint64_t adjacency_key(NodeId a, NodeId b) noexcept {
  auto lo = a.value();
  auto hi = b.value();
  if (lo > hi) std::swap(lo, hi);
  return (std::uint64_t{lo} << 32) | hi;
}

}  // namespace

NodeId Network::register_node(Node* node) {
  const NodeId id(static_cast<std::uint32_t>(nodes_.size()));
  nodes_.push_back(node);
  tables_.emplace_back();
  incident_.emplace_back();
  return id;
}

void Network::register_address(net::Ipv4Address address, NodeId owner) {
  auto [it, inserted] = address_index_.emplace(address, owner);
  if (!inserted) {
    throw std::logic_error("Network: address " + address.to_string() +
                           " already owned by node '" + node(it->second).name() +
                           "'");
  }
}

Node& Network::node(NodeId id) const {
  if (!id.valid() || id.value() >= nodes_.size()) {
    throw std::out_of_range("Network::node: bad NodeId");
  }
  return *nodes_[id.value()];
}

Node* Network::find_by_address(net::Ipv4Address address) const {
  auto it = address_index_.find(address);
  return it == address_index_.end() ? nullptr : nodes_[it->second.value()];
}

Link& Network::connect(NodeId a, NodeId b, LinkConfig config) {
  if (a == b) throw std::invalid_argument("Network::connect: self-link");
  if (link_between(a, b) != nullptr) {
    throw std::logic_error("Network::connect: nodes already adjacent");
  }
  links_.push_back(std::make_unique<Link>(*this, a, b, config));
  Link* link = links_.back().get();
  adjacency_[adjacency_key(a, b)] = link;
  incident_[a.value()].push_back(link);
  incident_[b.value()].push_back(link);
  return *link;
}

Link* Network::link_between(NodeId a, NodeId b) const {
  auto it = adjacency_.find(adjacency_key(a, b));
  return it == adjacency_.end() ? nullptr : it->second;
}

void Network::add_route(NodeId at, const net::Ipv4Prefix& prefix, NodeId next_hop) {
  if (link_between(at, next_hop) == nullptr) {
    throw std::logic_error("Network::add_route: next hop '" +
                           node(next_hop).name() + "' not adjacent to '" +
                           node(at).name() + "'");
  }
  tables_[at.value()].insert(prefix, next_hop);
}

std::vector<Network::SptEntry> Network::shortest_paths_from(NodeId source) const {
  std::vector<SptEntry> entries(nodes_.size());
  using QueueItem = std::pair<std::int64_t, std::uint32_t>;  // (dist ns, node)
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> frontier;

  entries[source.value()] = {SimDuration{}, source, true};
  frontier.emplace(0, source.value());

  while (!frontier.empty()) {
    auto [dist_ns, u] = frontier.top();
    frontier.pop();
    if (dist_ns > entries[u].distance.ns()) continue;  // stale entry
    // Relax every link incident to u.
    for (Link* link : incident_[u]) {
      if (!link->is_up()) continue;
      const NodeId v = link->peer_of(NodeId(u));
      const SimDuration alt =
          entries[u].distance + link->config().delay;
      SptEntry& ev = entries[v.value()];
      if (!ev.reachable || alt < ev.distance) {
        ev.distance = alt;
        ev.reachable = true;
        // v's next hop toward the source is u (paths are reversible:
        // links are symmetric in delay).
        ev.next_toward_source = NodeId(u);
        frontier.emplace(alt.ns(), v.value());
      }
    }
  }
  return entries;
}

void Network::install_routes_toward(NodeId target, const net::Ipv4Prefix& prefix,
                                    const std::unordered_set<NodeId>& scope) {
  const auto spt = shortest_paths_from(target);
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    const NodeId id(i);
    if (id == target) continue;
    if (!scope.empty() && !scope.contains(id)) continue;
    if (!spt[i].reachable) continue;
    tables_[i].insert(prefix, spt[i].next_toward_source);
  }
}

std::optional<SimDuration> Network::path_delay(NodeId from, NodeId to) const {
  if (from == to) return SimDuration{};
  const auto spt = shortest_paths_from(to);
  if (!spt[from.value()].reachable) return std::nullopt;
  return spt[from.value()].distance;
}

std::vector<std::optional<SimDuration>> Network::path_delays_from(
    NodeId source) const {
  // Link delays are symmetric per LinkConfig, so the reverse tree rooted at
  // `source` doubles as the forward one.
  const auto spt = shortest_paths_from(source);
  std::vector<std::optional<SimDuration>> out(spt.size());
  for (std::size_t i = 0; i < spt.size(); ++i) {
    if (spt[i].reachable) out[i] = spt[i].distance;
  }
  out[source.value()] = SimDuration{};
  return out;
}

void Network::inject(NodeId at, net::Packet packet) {
  Node& origin = node(at);
  if (tracer_ != nullptr) tracer_->on_send(sim_.now(), origin, packet);
  // Loopback: a node sending to one of its own addresses delivers locally.
  if (origin.owns(packet.outer_ip().dst)) {
    ++counters_.delivered;
    origin.deliver(std::move(packet));
    return;
  }
  forward(at, std::move(packet), /*decrement_ttl=*/false);
}

void Network::arrive(NodeId at, net::Packet packet) {
  Node& here = node(at);
  if (here.owns(packet.outer_ip().dst)) {
    ++counters_.delivered;
    if (tracer_ != nullptr) tracer_->on_deliver(sim_.now(), here, packet);
    here.deliver(std::move(packet));
    return;
  }
  if (here.transit(packet) == Node::TransitAction::kConsumed) {
    ++counters_.consumed;
    if (tracer_ != nullptr) tracer_->on_consume(sim_.now(), here, packet);
    return;
  }
  forward(at, std::move(packet), /*decrement_ttl=*/true);
}

void Network::forward(NodeId at, net::Packet packet, bool decrement_ttl) {
  if (decrement_ttl) {
    auto& ip = packet.outer_ip();
    if (ip.ttl <= 1) {
      ++counters_.drops_ttl;
      if (tracer_ != nullptr) {
        tracer_->on_drop(sim_.now(), DropReason::kTtlExpired, packet);
      }
      return;
    }
    --ip.ttl;
  }
  const NodeId* next = tables_[at.value()].lookup(packet.outer_ip().dst);
  if (next == nullptr) {
    ++counters_.drops_no_route;
    if (tracer_ != nullptr) {
      tracer_->on_drop(sim_.now(), DropReason::kNoRoute, packet);
    }
    return;
  }
  Link* link = link_between(at, *next);
  if (link == nullptr) {
    throw std::logic_error("Network::forward: route next hop not adjacent");
  }
  ++counters_.forwarded;
  if (tracer_ != nullptr) tracer_->on_forward(sim_.now(), node(at), packet);
  link->transmit(at, std::move(packet));
}

void Network::drop(DropReason reason, const net::Packet& packet) {
  switch (reason) {
    case DropReason::kNoRoute: ++counters_.drops_no_route; break;
    case DropReason::kTtlExpired: ++counters_.drops_ttl; break;
    case DropReason::kQueueFull: ++counters_.drops_queue; break;
    case DropReason::kRandomLoss: ++counters_.drops_loss; break;
    case DropReason::kLinkDown: ++counters_.drops_link_down; break;
    case DropReason::kMappingMiss: ++counters_.drops_mapping_miss; break;
  }
  if (tracer_ != nullptr) tracer_->on_drop(sim_.now(), reason, packet);
}

}  // namespace lispcp::sim
