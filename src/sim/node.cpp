#include "sim/node.hpp"

#include <stdexcept>

#include "net/echo.hpp"
#include "net/ports.hpp"
#include "sim/network.hpp"

namespace lispcp::sim {

Node::Node(Network& network, std::string name)
    : network_(&network), name_(std::move(name)) {
  id_ = network.register_node(this);
}

Simulator& Node::sim() const noexcept { return network_->sim(); }

void Node::add_address(net::Ipv4Address address) {
  addresses_.push_back(address);
  network_->register_address(address, id_);
}

net::Ipv4Address Node::address() const {
  if (addresses_.empty()) {
    throw std::logic_error("Node '" + name_ + "' has no address");
  }
  return addresses_.front();
}

bool Node::owns(net::Ipv4Address address) const noexcept {
  for (auto a : addresses_) {
    if (a == address) return true;
  }
  return false;
}

void Node::deliver(net::Packet packet) {
  // Every node speaks UDP Echo (RFC 862), the liveness primitive of the
  // failover machinery — as real routers answer ping.
  if (const auto* udp = packet.udp();
      udp != nullptr && udp->dst_port == net::ports::kEcho) {
    if (auto echo = packet.payload_as<net::EchoPayload>()) {
      if (!echo->is_reply()) {
        auto reply = std::make_shared<net::EchoPayload>(echo->nonce(),
                                                        /*is_reply=*/true);
        send(net::Packet::udp(packet.outer_ip().dst, packet.outer_ip().src,
                              net::ports::kEcho, net::ports::kEcho,
                              std::move(reply)));
      } else if (echo_reply_handler_) {
        echo_reply_handler_(packet.outer_ip().src, echo->nonce());
      }
      return;
    }
  }
  (void)packet;
  ++unexpected_deliveries_;
}

void Node::send(net::Packet packet) {
  network_->inject(id_, std::move(packet));
}

}  // namespace lispcp::sim
