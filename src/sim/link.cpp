#include "sim/link.hpp"

#include "sim/network.hpp"

namespace lispcp::sim {

Link::Link(Network& network, NodeId a, NodeId b, LinkConfig config)
    : network_(network), a_(a), b_(b), config_(config) {
  if (config_.bandwidth_bps <= 0) {
    throw std::invalid_argument("LinkConfig: bandwidth must be positive");
  }
  if (config_.delay < SimDuration{}) {
    throw std::invalid_argument("LinkConfig: negative delay");
  }
  forward_.to = b_;
  backward_.to = a_;
}

NodeId Link::peer_of(NodeId n) const {
  if (n == a_) return b_;
  if (n == b_) return a_;
  throw std::invalid_argument("Link::peer_of: node not an endpoint");
}

Link::Direction& Link::direction(NodeId from) {
  if (from == a_) return forward_;
  if (from == b_) return backward_;
  throw std::invalid_argument("Link: node is not an endpoint");
}

const Link::Direction& Link::direction(NodeId from) const {
  return const_cast<Link*>(this)->direction(from);
}

void Link::transmit(NodeId from, net::Packet packet) {
  Direction& dir = direction(from);
  Simulator& sim = network_.sim();
  const SimTime now = sim.now();

  if (!up_) {
    network_.drop(DropReason::kLinkDown, packet);
    return;
  }

  if (config_.loss > 0.0 && sim.rng().chance(config_.loss)) {
    ++dir.stats.drops_loss;
    network_.drop(DropReason::kRandomLoss, packet);
    return;
  }

  // Backlog currently awaiting serialization, implied by the busy horizon.
  const SimDuration backlog =
      dir.busy_until > now ? dir.busy_until - now : SimDuration{};
  const double backlog_bytes = backlog.sec() * config_.bandwidth_bps / 8.0;
  if (backlog_bytes > static_cast<double>(config_.queue_bytes)) {
    ++dir.stats.drops_queue;
    network_.drop(DropReason::kQueueFull, packet);
    return;
  }

  const std::size_t size = packet.wire_size();
  const SimDuration tx_time =
      SimDuration::seconds_f(static_cast<double>(size) * 8.0 / config_.bandwidth_bps);
  const SimTime start = dir.busy_until > now ? dir.busy_until : now;
  dir.busy_until = start + tx_time;
  dir.stats.busy += tx_time;
  ++dir.stats.tx_packets;
  dir.stats.tx_bytes += size;

  const SimTime arrival = dir.busy_until + config_.delay;
  const NodeId to = dir.to;
  sim.schedule_at(arrival, [this, to, p = std::move(packet)]() mutable {
    network_.arrive(to, std::move(p));
  });
}

LinkWindow Link::open_window(NodeId from) const {
  return LinkWindow{network_.sim().now(), direction(from).stats.tx_bytes};
}

double Link::utilization(NodeId from, const LinkWindow& w) const {
  const SimDuration elapsed = network_.sim().now() - w.start;
  if (elapsed <= SimDuration{}) return 0.0;
  const double bits = static_cast<double>(bytes_in_window(from, w)) * 8.0;
  return bits / (elapsed.sec() * config_.bandwidth_bps);
}

}  // namespace lispcp::sim
