// network.hpp — the forwarding fabric: nodes, links, routes, delivery.
//
// A Network is a graph of Nodes joined by Links, with a per-node
// longest-prefix-match forwarding table.  The forwarding semantics encode
// the architectural premise of LISP (paper §1): only prefixes installed in a
// node's table are reachable from it, so an EID-addressed packet escaping
// into the transit core — where only RLOC prefixes are routed — is dropped
// as "no route", exactly the behaviour that makes a mapping system
// necessary.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/ipv4.hpp"
#include "net/packet.hpp"
#include "net/prefix_trie.hpp"
#include "sim/link.hpp"
#include "sim/node.hpp"
#include "sim/simulator.hpp"

namespace lispcp::sim {

/// Reasons the fabric can drop a packet; reported to the tracer and counted.
enum class DropReason {
  kNoRoute,      ///< no forwarding entry (e.g. EID in the RLOC-only core)
  kTtlExpired,
  kQueueFull,    ///< link drop-tail queue overflow
  kRandomLoss,
  kLinkDown,
  kMappingMiss,  ///< dropped at an ITR during EID-to-RLOC resolution (§1)
};

/// Observer interface for packet-level events; used by tests, the Fig. 1
/// walk-through and debugging.  All callbacks are optional.
class Tracer {
 public:
  virtual ~Tracer() = default;
  virtual void on_send(SimTime, const Node&, const net::Packet&) {}
  virtual void on_deliver(SimTime, const Node&, const net::Packet&) {}
  virtual void on_forward(SimTime, const Node&, const net::Packet&) {}
  virtual void on_consume(SimTime, const Node&, const net::Packet&) {}
  virtual void on_drop(SimTime, DropReason, const net::Packet&) {}
};

/// Aggregate fabric-level drop counters.
struct NetworkCounters {
  std::uint64_t delivered = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t consumed = 0;
  std::uint64_t drops_no_route = 0;
  std::uint64_t drops_ttl = 0;
  std::uint64_t drops_queue = 0;
  std::uint64_t drops_loss = 0;
  std::uint64_t drops_link_down = 0;
  std::uint64_t drops_mapping_miss = 0;
};

class Network {
 public:
  explicit Network(Simulator& sim) : sim_(sim) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] Simulator& sim() const noexcept { return sim_; }

  /// Constructs a node of type T in place; T's constructor must take
  /// (Network&, ...).  The network owns the node.
  template <typename T, typename... Args>
  T& make(Args&&... args) {
    auto node = std::make_unique<T>(*this, std::forward<Args>(args)...);
    T& ref = *node;
    owned_.push_back(std::move(node));
    return ref;
  }

  /// Called by Node's constructor; assigns the NodeId.
  NodeId register_node(Node* node);

  /// Called by Node::add_address to index the address for delivery.
  void register_address(net::Ipv4Address address, NodeId owner);

  [[nodiscard]] Node& node(NodeId id) const;
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }

  /// Node owning `address`, if any.
  [[nodiscard]] Node* find_by_address(net::Ipv4Address address) const;

  /// Creates a bidirectional link between `a` and `b`.
  Link& connect(NodeId a, NodeId b, LinkConfig config = {});

  /// The link joining `a` and `b`; nullptr if they are not adjacent.
  [[nodiscard]] Link* link_between(NodeId a, NodeId b) const;

  [[nodiscard]] const std::vector<std::unique_ptr<Link>>& links() const noexcept {
    return links_;
  }

  /// Links incident to `node` (used by whole-node failure injection).
  [[nodiscard]] const std::vector<Link*>& links_of(NodeId node) const {
    return incident_.at(node.value());
  }

  /// Installs a forwarding entry at `at`: packets matching `prefix` go to
  /// adjacent node `next_hop`.
  void add_route(NodeId at, const net::Ipv4Prefix& prefix, NodeId next_hop);

  /// Installs a /32 route for `address`.
  void add_host_route(NodeId at, net::Ipv4Address address, NodeId next_hop) {
    add_route(at, net::Ipv4Prefix::host(address), next_hop);
  }

  /// Computes the shortest-path tree toward `target` (Dijkstra over link
  /// propagation delays) and installs a route for `prefix` at every node in
  /// `scope` (or every node when scope is empty).  This is how topology
  /// builders realise scoped reachability: EID prefixes routed only inside
  /// their domain, RLOC prefixes routed globally.
  void install_routes_toward(NodeId target, const net::Ipv4Prefix& prefix,
                             const std::unordered_set<NodeId>& scope = {});

  /// Shortest-path one-way delay between two nodes (propagation only), for
  /// computing the analytic OWD terms in the paper's formulas.  Returns
  /// nullopt if disconnected.
  [[nodiscard]] std::optional<SimDuration> path_delay(NodeId from, NodeId to) const;

  /// Entry point for packets originated by `at` (Node::send calls this).
  void inject(NodeId at, net::Packet packet);

  /// Called by Link when a packet reaches the far end.
  void arrive(NodeId at, net::Packet packet);

  /// Called by Link and the fabric when a packet dies.
  void drop(DropReason reason, const net::Packet& packet);

  void set_tracer(Tracer* tracer) noexcept { tracer_ = tracer; }
  [[nodiscard]] Tracer* tracer() const noexcept { return tracer_; }

  [[nodiscard]] const NetworkCounters& counters() const noexcept { return counters_; }

  /// One-way propagation delay from `source` to every node (indexed by
  /// NodeId value; nullopt = unreachable).  One Dijkstra amortized over all
  /// targets — the flow-aggregate world builder asks for thousands of
  /// node pairs sharing a root, where per-pair path_delay() would be
  /// quadratic in the topology size.
  [[nodiscard]] std::vector<std::optional<SimDuration>> path_delays_from(
      NodeId source) const;

  /// Allocates an identifier unique within this network (session ids).
  /// Per-network rather than process-global so that concurrently running
  /// simulations (parallel sweep points) stay independent and each run's
  /// ids are deterministic regardless of what else ran in the process.
  [[nodiscard]] std::uint64_t next_uid() noexcept { return ++uid_counter_; }

 private:
  /// Forwards `packet` out of `at` using the node's LPM table.
  void forward(NodeId at, net::Packet packet, bool decrement_ttl);

  /// Dijkstra from `source`; returns (distance, parent-toward-source) pairs.
  struct SptEntry {
    SimDuration distance;
    NodeId next_toward_source;
    bool reachable = false;
  };
  [[nodiscard]] std::vector<SptEntry> shortest_paths_from(NodeId source) const;

  Simulator& sim_;
  std::vector<Node*> nodes_;
  std::vector<std::unique_ptr<Node>> owned_;
  std::vector<std::unique_ptr<Link>> links_;
  std::unordered_map<std::uint64_t, Link*> adjacency_;  // key: a<<32|b, a<b
  std::vector<std::vector<Link*>> incident_;            // per-node link list
  std::unordered_map<net::Ipv4Address, NodeId> address_index_;
  std::vector<net::PrefixTrie<NodeId>> tables_;  // indexed by NodeId
  Tracer* tracer_ = nullptr;
  NetworkCounters counters_;
  std::uint64_t uid_counter_ = 0;
};

}  // namespace lispcp::sim
