// shard_queue.hpp — the per-shard event queue behind the sharded BGP
// convergence engine (routing/shard_engine.hpp).
//
// The global EventQueue breaks same-instant ties by insertion order, which
// makes a single-threaded run deterministic but couples the tie-break to
// *execution* order: partition the simulation across K queues and the
// insertion sequence — and with it the result — would depend on K.  This
// queue instead orders events by an **identity key** that is a pure
// function of simulation facts:
//
//     (fire time, cause time, content tag, insertion seq)
//
// where the cause time is the virtual instant the event was scheduled at
// and the tag names the event itself (message endpoints + event kind).  Two
// runs that generate the same event set — regardless of how the speakers
// are sharded or on how many workers the shards execute — fire the events
// in the same order.  The insertion seq is a last-resort stabiliser only:
// engine clients must choose tags so that no two distinct simultaneous
// events at the same state-carrying endpoint ever collide on (cause, tag)
// (see DESIGN.md §"Sharded BGP execution" for the BGP argument).
//
// The facade is seedable: each shard owns an Rng stream derived from the
// engine seed, so shard-local stochastic components (none in BGP-lite
// today) would stay deterministic and partition-independent too.
//
// Not thread-safe by itself: one worker drives a shard's window at a time,
// and the engine's epoch barrier publishes cross-shard insertions.
#pragma once

#include <compare>
#include <cstdint>
#include <vector>

#include "core/inline_function.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace lispcp::sim {

/// Same inline-capture closure type as the global EventQueue (the alias is
/// redeclared identically in event_queue.hpp; either header suffices).
using EventAction = core::InlineFunction<void(), 88>;

/// The execution-independent part of an event's ordering key.
struct EventKey {
  /// Virtual time the event was scheduled at (its cause's fire time).
  std::int64_t cause_ns = 0;
  /// Content tag naming the event (kind bit + endpoint ids); see
  /// routing::ConvergenceEngine for the BGP encoding.
  std::uint64_t tag = 0;

  friend constexpr auto operator<=>(const EventKey&,
                                    const EventKey&) noexcept = default;
};

/// A deterministic, identity-keyed event queue for one shard.
class ShardQueue {
 public:
  explicit ShardQueue(std::uint64_t seed = 1) : rng_(seed) {}

  ShardQueue(const ShardQueue&) = delete;
  ShardQueue& operator=(const ShardQueue&) = delete;

  /// Enqueues `action` to fire at absolute time `at` (>= now()).
  void schedule(SimTime at, EventKey key, EventAction action);

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Fire time of the earliest event; meaningful only when !empty().
  [[nodiscard]] SimTime next_time() const noexcept;

  /// Fires every event with time < `end` in (time, key, seq) order,
  /// advancing now() through each.  Events scheduled *during* the window
  /// with fire times before `end` fire in the same call.  Stops early once
  /// `max_events` have fired (0 = unlimited); returns the number fired.
  std::uint64_t run_window(SimTime end, std::uint64_t max_events = 0);

  /// The shard's local clock: the fire time of the last event run_window
  /// processed (or whatever set_now installed).
  [[nodiscard]] SimTime now() const noexcept { return now_; }
  /// Barrier synchronisation hook: the engine aligns all shard clocks to
  /// the global convergence instant when a run completes.
  void set_now(SimTime t) noexcept { now_ = t; }

  /// The shard's private random stream (seeded by the engine).
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

 private:
  struct Entry {
    SimTime time;
    EventKey key;
    std::uint64_t seq;
    EventAction action;
  };
  /// Min-heap order over (time, key, seq).
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      if (a.key != b.key) return a.key > b.key;
      return a.seq > b.seq;
    }
  };

  std::vector<Entry> heap_;
  SimTime now_;
  std::uint64_t seq_ = 0;
  Rng rng_;
};

}  // namespace lispcp::sim
