// rng.hpp — deterministic random number generation for experiments.
//
// Every stochastic element (workload arrivals, Zipf destination choice, link
// loss, jitter) draws from a seeded Rng so that runs are reproducible and
// benches can report paired comparisons across control planes on identical
// workloads.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace lispcp::sim {

/// Seeded Mersenne-Twister wrapper with the distributions the library needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : seed_(seed), engine_(seed) {}

  /// Derives an independent child stream (e.g. one per workload generator)
  /// so adding draws to one component does not perturb another.
  [[nodiscard]] Rng fork() { return Rng(engine_()); }

  /// splitmix64: the statelessly-seedable mixer used for stream derivation.
  [[nodiscard]] static constexpr std::uint64_t splitmix64(
      std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  /// Seed of the stream identified by `stream_id` under root seed `seed`.
  /// Pure function of (seed, stream_id): unlike fork(), unaffected by how
  /// many draws have been made, so callers that name their streams (e.g.
  /// sweep points keyed by axis coordinates) get stable seeds no matter in
  /// what order — or on how many threads — the streams are created.
  [[nodiscard]] static constexpr std::uint64_t derive_seed(
      std::uint64_t seed, std::uint64_t stream_id) noexcept {
    return splitmix64(splitmix64(seed) ^ splitmix64(stream_id));
  }

  /// Child stream `stream_id` of this Rng's *initial* seed (draw-count
  /// independent; see derive_seed).
  [[nodiscard]] Rng derive(std::uint64_t stream_id) const {
    return Rng(derive_seed(seed_, stream_id));
  }

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Uniform in [0, 1).
  [[nodiscard]] double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  /// Exponential with the given mean (> 0) — Poisson inter-arrival times.
  [[nodiscard]] double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Bernoulli trial with probability p.
  [[nodiscard]] bool chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Pareto with shape alpha and scale x_m — heavy-tailed flow sizes.
  [[nodiscard]] double pareto(double shape, double scale) {
    const double u = 1.0 - uniform();  // in (0, 1]
    return scale / std::pow(u, 1.0 / shape);
  }

  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::uint64_t seed_ = 1;  ///< the construction seed (for derive())
  std::mt19937_64 engine_;
};

/// Zipf-distributed ranks in [0, n): P(k) proportional to 1/(k+1)^alpha.
/// Sampling by inverse CDF over a precomputed table — O(log n) per draw,
/// exact, no rejection.  Models destination-EID popularity, the driver of
/// ITR map-cache hit ratios (experiment E1).
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double alpha);

  [[nodiscard]] std::size_t operator()(Rng& rng) const;

  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }

  /// P(rank == k), for analytic checks in tests.
  [[nodiscard]] double pmf(std::size_t k) const;

 private:
  double alpha_;
  std::vector<double> cdf_;
};

}  // namespace lispcp::sim
