// node.hpp — base class for every simulated network element.
//
// Hosts, routers, DNS servers, tunnel routers and PCEs all derive from Node.
// A node participates in forwarding through two hooks:
//
//   * deliver(pkt)  — the packet's outer destination is one of this node's
//                     addresses; the node is the endpoint.
//   * transit(pkt)  — the packet is passing through.  Returning kConsumed
//                     removes it from the forwarding path; this is how the
//                     PCE transparently intercepts DNS replies on their way
//                     to the local DNS server (paper Fig. 1, Steps 2-7), and
//                     how the ITR grabs outbound packets for encapsulation.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/ipv4.hpp"
#include "net/packet.hpp"

namespace lispcp::sim {

class Network;
class Simulator;

/// Index of a node within its Network.  Strong type to keep node indices,
/// link indices and counters from mixing.
class NodeId {
 public:
  constexpr NodeId() noexcept = default;
  constexpr explicit NodeId(std::uint32_t v) noexcept : value_(v) {}

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }
  [[nodiscard]] constexpr bool valid() const noexcept { return value_ != kInvalid; }

  friend constexpr auto operator<=>(NodeId, NodeId) noexcept = default;

 private:
  static constexpr std::uint32_t kInvalid = ~std::uint32_t{0};
  std::uint32_t value_ = kInvalid;
};

class Node {
 public:
  /// What a node tells the forwarding engine about a transiting packet.
  enum class TransitAction {
    kForward,   ///< keep forwarding toward the destination
    kConsumed,  ///< the node took ownership (intercepted / encapsulated)
  };

  /// Registers the node with `network` (assigning its NodeId).  `name` is
  /// for traces and error messages; uniqueness is not required but helps.
  Node(Network& network, std::string name);
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Network& network() const noexcept { return *network_; }
  [[nodiscard]] Simulator& sim() const noexcept;

  /// Adds an address owned by this node (also indexed by the Network for
  /// endpoint delivery).  The first address added is the primary one.
  void add_address(net::Ipv4Address address);

  /// Primary address; throws std::logic_error if none was assigned.
  [[nodiscard]] net::Ipv4Address address() const;

  [[nodiscard]] const std::vector<net::Ipv4Address>& addresses() const noexcept {
    return addresses_;
  }

  [[nodiscard]] bool owns(net::Ipv4Address address) const noexcept;

  /// Endpoint delivery.  The default counts the packet as unexpected —
  /// pure transit elements (routers) never legitimately terminate traffic.
  virtual void deliver(net::Packet packet);

  /// Transit hook; default is plain forwarding.
  virtual TransitAction transit(net::Packet& packet) {
    (void)packet;
    return TransitAction::kForward;
  }

  /// Originates `packet` from this node: it enters the forwarding engine
  /// here at the current simulation time.
  void send(net::Packet packet);

  /// Packets that hit the default deliver() (should stay 0 in a correctly
  /// wired topology; asserted by integration tests).
  [[nodiscard]] std::uint64_t unexpected_deliveries() const noexcept {
    return unexpected_deliveries_;
  }

  /// Observer for UDP Echo replies reaching this node (RFC 862; the base
  /// deliver() answers requests automatically and routes replies here).
  /// Used by core::LinkHealthMonitor for BFD-style liveness detection.
  using EchoReplyHandler =
      std::function<void(net::Ipv4Address from, std::uint64_t nonce)>;
  void set_echo_reply_handler(EchoReplyHandler handler) {
    echo_reply_handler_ = std::move(handler);
  }

 private:
  Network* network_;
  NodeId id_;
  std::string name_;
  std::vector<net::Ipv4Address> addresses_;
  std::uint64_t unexpected_deliveries_ = 0;
  EchoReplyHandler echo_reply_handler_;
};

}  // namespace lispcp::sim

template <>
struct std::hash<lispcp::sim::NodeId> {
  std::size_t operator()(lispcp::sim::NodeId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
