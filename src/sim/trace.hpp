// trace.hpp — packet-event recording and text trace output.
//
// A ready-made Tracer for debugging and examples: records every fabric
// event (optionally filtered) with timestamp, node and packet summary, and
// can dump a tcpdump-style text log.  Recording is bounded so a forgotten
// tracer cannot eat the heap on a long run.
#pragma once

#include <deque>
#include <functional>
#include <iosfwd>
#include <string>

#include "sim/network.hpp"

namespace lispcp::sim {

/// One recorded fabric event.
struct TraceRecord {
  enum class Kind { kSend, kDeliver, kForward, kConsume, kDrop };

  Kind kind = Kind::kSend;
  SimTime time;
  std::string node;             ///< empty for drops reported by links
  DropReason drop_reason = DropReason::kNoRoute;  ///< valid when kind==kDrop
  std::uint64_t packet_id = 0;
  std::string summary;          ///< Packet::describe() output

  [[nodiscard]] std::string to_string() const;
};

/// Filter callback: return true to record the event.
using TraceFilter = std::function<bool(const TraceRecord&)>;

class RecordingTracer final : public Tracer {
 public:
  /// `capacity` bounds the number of retained records (oldest dropped).
  explicit RecordingTracer(std::size_t capacity = 100'000)
      : capacity_(capacity) {}

  void set_filter(TraceFilter filter) { filter_ = std::move(filter); }

  void on_send(SimTime t, const Node& n, const net::Packet& p) override {
    record(TraceRecord::Kind::kSend, t, n.name(), p, DropReason::kNoRoute);
  }
  void on_deliver(SimTime t, const Node& n, const net::Packet& p) override {
    record(TraceRecord::Kind::kDeliver, t, n.name(), p, DropReason::kNoRoute);
  }
  void on_forward(SimTime t, const Node& n, const net::Packet& p) override {
    record(TraceRecord::Kind::kForward, t, n.name(), p, DropReason::kNoRoute);
  }
  void on_consume(SimTime t, const Node& n, const net::Packet& p) override {
    record(TraceRecord::Kind::kConsume, t, n.name(), p, DropReason::kNoRoute);
  }
  void on_drop(SimTime t, DropReason reason, const net::Packet& p) override {
    record(TraceRecord::Kind::kDrop, t, "", p, reason);
  }

  [[nodiscard]] const std::deque<TraceRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t recorded_total() const noexcept { return total_; }
  [[nodiscard]] std::size_t overflowed() const noexcept { return overflowed_; }

  /// All records following `packet_id` through the fabric, in order.
  [[nodiscard]] std::vector<TraceRecord> packet_journey(
      std::uint64_t packet_id) const;

  /// Writes one line per record.
  void write_text(std::ostream& os) const;

  void clear() {
    records_.clear();
    total_ = 0;
    overflowed_ = 0;
  }

 private:
  void record(TraceRecord::Kind kind, SimTime t, std::string node,
              const net::Packet& p, DropReason reason);

  std::size_t capacity_;
  TraceFilter filter_;
  std::deque<TraceRecord> records_;
  std::size_t total_ = 0;
  std::size_t overflowed_ = 0;
};

[[nodiscard]] const char* to_string(TraceRecord::Kind kind) noexcept;
[[nodiscard]] const char* to_string(DropReason reason) noexcept;

}  // namespace lispcp::sim
