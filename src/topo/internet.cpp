#include "topo/internet.hpp"

#include <stdexcept>

namespace lispcp::topo {

namespace {

/// The global EID superblock (RFC 6598 space, conveniently unused elsewhere
/// in the plan).
const net::Ipv4Prefix kEidSpace = net::Ipv4Prefix(net::Ipv4Address(100, 64, 0, 0), 10);

constexpr std::size_t kMaxDomains = 512;
constexpr std::size_t kMaxHosts = 200;
constexpr std::size_t kMaxProviders = 8;

}  // namespace

const char* to_string(ControlPlaneKind kind) {
  switch (kind) {
    case ControlPlaneKind::kPlainIp: return "plain-ip";
    case ControlPlaneKind::kAltDrop: return "lisp-alt(drop)";
    case ControlPlaneKind::kAltQueue: return "lisp-alt(queue)";
    case ControlPlaneKind::kAltForward: return "lisp-alt(cp-fwd)";
    case ControlPlaneKind::kCons: return "lisp-cons";
    case ControlPlaneKind::kNerd: return "lisp-nerd";
    case ControlPlaneKind::kMapServer: return "lisp-ms";
    case ControlPlaneKind::kPce: return "lisp-pce";
  }
  return "?";
}

InternetSpec InternetSpec::preset(ControlPlaneKind kind) {
  InternetSpec spec;
  switch (kind) {
    case ControlPlaneKind::kPlainIp:
      spec.enable_lisp = false;
      break;
    case ControlPlaneKind::kAltDrop:
      spec.enable_overlay = true;
      spec.miss_policy = lisp::MissPolicy::kDrop;
      break;
    case ControlPlaneKind::kAltQueue:
      spec.enable_overlay = true;
      spec.miss_policy = lisp::MissPolicy::kQueue;
      break;
    case ControlPlaneKind::kAltForward:
      spec.enable_overlay = true;
      spec.miss_policy = lisp::MissPolicy::kForwardOverlay;
      break;
    case ControlPlaneKind::kCons:
      spec.enable_overlay = true;
      spec.overlay_mode = mapping::OverlayMode::kCons;
      spec.miss_policy = lisp::MissPolicy::kDrop;
      break;
    case ControlPlaneKind::kNerd:
      spec.enable_nerd = true;
      break;
    case ControlPlaneKind::kMapServer:
      spec.enable_map_server = true;
      spec.miss_policy = lisp::MissPolicy::kDrop;
      break;
    case ControlPlaneKind::kPce:
      spec.enable_pce = true;
      break;
  }
  return spec;
}

Internet::Internet(InternetSpec spec) : spec_(std::move(spec)), sim_(spec_.seed),
                                        network_(sim_) {
  if (spec_.domains < 2 || spec_.domains > kMaxDomains) {
    throw std::invalid_argument("InternetSpec: domains must be in [2, 512]");
  }
  if (spec_.hosts_per_domain < 1 || spec_.hosts_per_domain > kMaxHosts) {
    throw std::invalid_argument("InternetSpec: hosts_per_domain must be in [1, 200]");
  }
  if (spec_.providers_per_domain < 1 || spec_.providers_per_domain > kMaxProviders) {
    throw std::invalid_argument(
        "InternetSpec: providers_per_domain must be in [1, 8]");
  }
  const auto k = spec_.deaggregation_factor;
  if (k < 1 || k > 64 || (k & (k - 1)) != 0) {
    throw std::invalid_argument(
        "InternetSpec: deaggregation_factor must be a power of two in [1, 64]");
  }
  build();
}

net::Ipv4Prefix Internet::domain_eid_prefix(std::size_t d) const {
  return net::Ipv4Prefix(
      net::Ipv4Address(100, static_cast<std::uint8_t>(64 + d / 256),
                       static_cast<std::uint8_t>(d % 256), 0),
      24);
}

net::Ipv4Address Internet::xtr_rloc(std::size_t d, std::size_t j) const {
  return net::Ipv4Address(10, static_cast<std::uint8_t>(d / 256),
                          static_cast<std::uint8_t>(d % 256),
                          static_cast<std::uint8_t>(1 + j));
}

namespace {

net::Ipv4Address domain_infra(std::size_t d, std::uint8_t octet) {
  return net::Ipv4Address(192, static_cast<std::uint8_t>(1 + d / 256),
                          static_cast<std::uint8_t>(d % 256), octet);
}

net::Ipv4Prefix domain_infra_prefix(std::size_t d) {
  return net::Ipv4Prefix(domain_infra(d, 0), 24);
}

const net::Ipv4Address kRootDns(192, 0, 1, 1);
const net::Ipv4Address kTldDns(192, 0, 1, 2);
const net::Ipv4Address kCoreAddress(192, 0, 0, 1);
const net::Ipv4Address kNerdAddr(192, 0, 4, 1);

net::Ipv4Address map_server_addr(std::size_t i) {
  return {192, 0, 5, static_cast<std::uint8_t>(i + 1)};
}
net::Ipv4Address map_resolver_addr(std::size_t i) {
  return {192, 0, 6, static_cast<std::uint8_t>(i + 1)};
}

net::Ipv4Address overlay_addr(std::size_t i) {
  return net::Ipv4Address(192, 0, static_cast<std::uint8_t>(8 + i / 254),
                          static_cast<std::uint8_t>(1 + i % 254));
}

}  // namespace

void Internet::build() {
  core_ = &network_.make<sim::Node>("core");
  // The core answers UDP Echo at this address: the far-end target for
  // border-link liveness detection (core::LinkHealthMonitor).
  core_->add_address(kCoreAddress);

  build_dns_hierarchy();
  domains_.resize(spec_.domains);
  for (std::size_t d = 0; d < spec_.domains; ++d) build_domain(d);
  register_mappings();
  if (spec_.enable_overlay) build_overlay();
  if (spec_.enable_nerd) build_nerd();
  if (spec_.enable_map_server) build_map_server();
  if (spec_.enable_pce) activate_pce();
}

void Internet::build_dns_hierarchy() {
  // Root serves "." and delegates the "example" TLD.
  dns::Zone root_zone{dns::DomainName()};
  root_zone.delegate(dns::Delegation{
      dns::DomainName::from_string("example"),
      {{dns::DomainName::from_string("ns.example"), kTldDns}}});
  root_dns_ = &network_.make<dns::DnsServer>("dns-root", kRootDns,
                                             std::move(root_zone));

  dns::Zone tld_zone{dns::DomainName::from_string("example")};
  tld_dns_ = &network_.make<dns::DnsServer>("dns-tld", kTldDns,
                                            std::move(tld_zone));

  sim::LinkConfig infra_link;
  infra_link.delay = spec_.dns_infra_delay;
  infra_link.bandwidth_bps = spec_.core_bandwidth_bps;
  network_.connect(core_->id(), root_dns_->id(), infra_link);
  network_.connect(core_->id(), tld_dns_->id(), infra_link);

  network_.add_host_route(core_->id(), kRootDns, root_dns_->id());
  network_.add_host_route(core_->id(), kTldDns, tld_dns_->id());
  network_.add_route(root_dns_->id(), net::Ipv4Prefix(), core_->id());
  network_.add_route(tld_dns_->id(), net::Ipv4Prefix(), core_->id());
}

void Internet::build_domain(std::size_t d) {
  DomainHandle& dom = domains_[d];
  dom.index = d;
  dom.name = "d" + std::to_string(d);
  dom.zone = dns::DomainName::from_string(dom.name + ".example");
  dom.eid_prefix = domain_eid_prefix(d);

  sim::LinkConfig lan;
  lan.delay = spec_.intra_domain_delay;
  lan.bandwidth_bps = spec_.lan_bandwidth_bps;
  sim::LinkConfig access;
  access.delay = spec_.core_link_delay;
  access.bandwidth_bps = spec_.access_bandwidth_bps;
  access.loss = spec_.access_loss;
  sim::LinkConfig dns_attach;
  dns_attach.delay = sim::SimDuration::micros(50);
  dns_attach.bandwidth_bps = spec_.lan_bandwidth_bps;

  sim::Node& r = network_.make<sim::Node>(dom.name + "-r");
  dom.internal_router = &r;

  // Border tunnel routers, one per provider.
  for (std::size_t j = 0; j < spec_.providers_per_domain; ++j) {
    lisp::XtrConfig xcfg;
    xcfg.itr_role = spec_.enable_lisp;
    xcfg.etr_role = spec_.enable_lisp;
    xcfg.local_eid_prefixes = {dom.eid_prefix};
    xcfg.eid_space = spec_.enable_lisp ? std::vector{kEidSpace}
                                       : std::vector<net::Ipv4Prefix>{};
    // NERD is a *database*, not a cache: consumers must hold the full
    // mapping set, so capacity eviction would break the protocol's premise
    // (that is precisely its memory-footprint drawback).
    xcfg.cache_capacity = spec_.enable_nerd ? 0 : spec_.cache_capacity;
    xcfg.miss_policy = spec_.miss_policy;
    xcfg.record_route = spec_.enable_overlay &&
                        spec_.overlay_mode == mapping::OverlayMode::kCons;
    auto& xtr = network_.make<lisp::TunnelRouter>(
        dom.name + "-xtr" + std::to_string(j), xtr_rloc(d, j), xcfg);
    dom.xtrs.push_back(&xtr);

    network_.connect(r.id(), xtr.id(), lan);
    sim::Link& uplink = network_.connect(xtr.id(), core_->id(), access);
    dom.provider_links.push_back(&uplink);

    // Core reaches this RLOC directly; the xTR defaults to the core and
    // hands domain-bound prefixes to the internal router.
    network_.add_host_route(core_->id(), xtr.rloc(), xtr.id());
    network_.add_route(xtr.id(), net::Ipv4Prefix(), core_->id());
    network_.add_route(xtr.id(), dom.eid_prefix, r.id());
    network_.add_route(xtr.id(), domain_infra_prefix(d), r.id());

    network_.add_host_route(r.id(), xtr.rloc(), xtr.id());
  }
  network_.add_route(r.id(), net::Ipv4Prefix(), dom.xtrs.front()->id());

  // Sibling border routers reach each other through the internal router,
  // not the provider core — the ETR-sync multicast (paper §2) must beat the
  // first return packet, and a 2x core RTT detour would lose that race.
  for (auto* a : dom.xtrs) {
    for (auto* b : dom.xtrs) {
      if (a != b) network_.add_host_route(a->id(), b->rloc(), r.id());
    }
  }

  // Plain-IP baseline: EIDs are globally routable (the pre-LISP Internet).
  if (!spec_.enable_lisp) {
    network_.add_route(core_->id(), dom.eid_prefix, dom.xtrs.front()->id());
  }

  // Authoritative zone and server.
  dns::Zone zone{dom.zone};
  for (std::size_t h = 0; h < spec_.hosts_per_domain; ++h) {
    zone.add_a(host_name(d, h), host_eid(d, h), /*ttl_seconds=*/300);
  }
  const auto auth_addr = domain_infra(d, 20);
  dom.authoritative = &network_.make<dns::DnsServer>(dom.name + "-auth", auth_addr,
                                                     std::move(zone));
  tld_dns_->zone().delegate(dns::Delegation{
      dom.zone, {{dom.zone.child("ns"), auth_addr}}});

  // Caching resolver.
  dns::ResolverConfig rcfg;
  rcfg.root_hints = {kRootDns};
  const auto resolver_addr = domain_infra(d, 10);
  dom.resolver = &network_.make<dns::DnsResolver>(dom.name + "-dns", resolver_addr,
                                                  rcfg);

  // DNS attachment: behind the PCE when the PCE control plane is on
  // ("the PCEs are in the data path of the DNS servers", Fig. 1),
  // directly on the internal router otherwise.
  if (spec_.enable_pce) {
    core::PceConfig pcfg;
    pcfg.resolver_address = resolver_addr;
    pcfg.authoritative_address = auth_addr;
    // The registered (possibly de-aggregated) prefixes: Step 6 advertises
    // the covering mapping at registration granularity.
    pcfg.local_eid_prefixes = site_prefixes(d);
    pcfg.snoop_enabled = spec_.pce_snoop;
    pcfg.on_demand_pcep = spec_.pce_on_demand;
    pcfg.push_all_itrs = spec_.pce_push_all_itrs;
    dom.pce = &network_.make<core::Pce>(dom.name + "-pce", domain_infra(d, 1),
                                        pcfg);
    network_.connect(r.id(), dom.pce->id(), dns_attach);
    network_.connect(dom.pce->id(), dom.resolver->id(), dns_attach);
    network_.connect(dom.pce->id(), dom.authoritative->id(), dns_attach);

    network_.add_route(r.id(), domain_infra_prefix(d), dom.pce->id());
    network_.add_host_route(dom.pce->id(), resolver_addr, dom.resolver->id());
    network_.add_host_route(dom.pce->id(), auth_addr, dom.authoritative->id());
    network_.add_route(dom.pce->id(), net::Ipv4Prefix(), r.id());
    network_.add_route(dom.resolver->id(), net::Ipv4Prefix(), dom.pce->id());
    network_.add_route(dom.authoritative->id(), net::Ipv4Prefix(), dom.pce->id());
  } else {
    network_.connect(r.id(), dom.resolver->id(), dns_attach);
    network_.connect(r.id(), dom.authoritative->id(), dns_attach);
    network_.add_host_route(r.id(), resolver_addr, dom.resolver->id());
    network_.add_host_route(r.id(), auth_addr, dom.authoritative->id());
    network_.add_route(dom.resolver->id(), net::Ipv4Prefix(), r.id());
    network_.add_route(dom.authoritative->id(), net::Ipv4Prefix(), r.id());
  }

  // End-hosts.
  workload::HostConfig hcfg;
  hcfg.resolver = resolver_addr;
  for (std::size_t h = 0; h < spec_.hosts_per_domain; ++h) {
    const auto eid = host_eid(d, h);
    auto& host = network_.make<workload::Host>(
        dom.name + "-h" + std::to_string(h), eid, hcfg, &metrics_);
    dom.hosts.push_back(&host);
    network_.connect(host.id(), r.id(), lan);
    network_.add_route(host.id(), net::Ipv4Prefix(), r.id());
    network_.add_host_route(r.id(), eid, host.id());
  }

  // Core can reach the domain's DNS infrastructure through its first xTR.
  network_.add_route(core_->id(), domain_infra_prefix(d),
                     dom.xtrs.front()->id());
}

void Internet::register_mappings() {
  for (auto& dom : domains_) {
    std::vector<lisp::MapEntry> site_entries;
    for (const auto& prefix : site_prefixes(dom.index)) {
      lisp::MapEntry entry;
      entry.eid_prefix = prefix;
      entry.ttl_seconds = spec_.mapping_ttl_seconds;
      for (std::size_t j = 0; j < dom.xtrs.size(); ++j) {
        lisp::Rloc rloc;
        rloc.address = dom.xtrs[j]->rloc();
        // Vanilla 2008 multihoming: primary/backup priorities.
        rloc.priority = j == 0 ? 1 : 2;
        rloc.weight = 100;
        entry.rlocs.push_back(rloc);
      }
      registry_.register_site(entry);
      if (const auto* registered = registry_.find(prefix)) {
        site_entries.push_back(*registered);
      }
    }
    for (auto* xtr : dom.xtrs) {
      xtr->set_site_mappings(site_entries);
    }
  }
}

void Internet::build_overlay() {
  // Aggregation tree bottom-up: leaves cover `overlay_fanout` domains each,
  // every level above covers `overlay_fanout` children.
  const std::size_t fanout = std::max<std::size_t>(2, spec_.overlay_fanout);
  sim::LinkConfig attach;
  attach.delay = spec_.overlay_link_delay;
  attach.bandwidth_bps = spec_.core_bandwidth_bps;

  mapping::OverlayRouterConfig orcfg;
  orcfg.mode = spec_.overlay_mode;

  std::size_t next_index = 0;
  auto make_router = [&]() -> mapping::OverlayRouter* {
    const auto addr = overlay_addr(next_index);
    auto& router = network_.make<mapping::OverlayRouter>(
        "ovl" + std::to_string(next_index), addr, orcfg);
    ++next_index;
    network_.connect(router.id(), core_->id(), attach);
    network_.add_host_route(core_->id(), addr, router.id());
    network_.add_route(router.id(), net::Ipv4Prefix(), core_->id());
    overlay_routers_.push_back(&router);
    return &router;
  };

  // Level 0: leaves.  leaf_cover[i] = domains it is responsible for.
  struct Level {
    std::vector<mapping::OverlayRouter*> routers;
    std::vector<std::vector<std::size_t>> covered;  // domain indices
  };
  Level level;
  overlay_leaf_of_domain_.resize(spec_.domains);
  for (std::size_t d = 0; d < spec_.domains; d += fanout) {
    mapping::OverlayRouter* leaf = make_router();
    std::vector<std::size_t> covered;
    for (std::size_t k = d; k < std::min(d + fanout, spec_.domains); ++k) {
      covered.push_back(k);
      // Leaf routes every registered (possibly de-aggregated) prefix
      // straight to the site's ETR.
      for (const auto& prefix : site_prefixes(k)) {
        leaf->add_overlay_route(prefix, xtr_rloc(k, 0));
      }
      overlay_leaf_of_domain_[k] = leaf->address();
    }
    level.routers.push_back(leaf);
    level.covered.push_back(std::move(covered));
  }

  // Build parents until a single root remains.
  while (level.routers.size() > 1) {
    Level parent_level;
    for (std::size_t c = 0; c < level.routers.size(); c += fanout) {
      mapping::OverlayRouter* parent = make_router();
      std::vector<std::size_t> covered;
      for (std::size_t k = c; k < std::min(c + fanout, level.routers.size()); ++k) {
        mapping::OverlayRouter* child = level.routers[k];
        child->set_parent(parent->address());
        for (std::size_t d : level.covered[k]) {
          parent->add_overlay_route(domains_[d].eid_prefix, child->address());
          covered.push_back(d);
        }
      }
      parent_level.routers.push_back(parent);
      parent_level.covered.push_back(std::move(covered));
    }
    level = std::move(parent_level);
  }

  // Attach every ITR to its regional leaf.
  for (std::size_t d = 0; d < spec_.domains; ++d) {
    for (auto* xtr : domains_[d].xtrs) {
      xtr->set_overlay_attachment(overlay_leaf_of_domain_[d]);
    }
  }
}

void Internet::build_nerd() {
  mapping::NerdConfig ncfg;
  ncfg.push_interval = spec_.nerd_push_interval;
  nerd_ = &network_.make<mapping::NerdAuthority>("nerd", kNerdAddr, ncfg);

  sim::LinkConfig attach;
  attach.delay = spec_.dns_infra_delay;
  attach.bandwidth_bps = spec_.core_bandwidth_bps;
  network_.connect(nerd_->id(), core_->id(), attach);
  network_.add_host_route(core_->id(), kNerdAddr, nerd_->id());
  network_.add_route(nerd_->id(), net::Ipv4Prefix(), core_->id());

  for (auto& dom : domains_) {
    for (auto* xtr : dom.xtrs) nerd_->subscribe(xtr->rloc());
  }
  // Database records do not age out between refreshes; only explicit
  // updates replace them.  (Cache-style TTLs would silently re-introduce
  // the miss behaviour NERD exists to eliminate.)
  auto database = registry_.all();
  for (auto& entry : database) {
    entry.ttl_seconds = 30 * 24 * 3600;
  }
  nerd_->load_database(std::move(database));
  nerd_->push_full();
  nerd_->start();
}

void Internet::activate_pce() {
  for (auto& dom : domains_) {
    std::vector<irc::BorderLink> border;
    for (std::size_t j = 0; j < dom.xtrs.size(); ++j) {
      irc::BorderLink bl;
      bl.rloc = dom.xtrs[j]->rloc();
      bl.link = dom.provider_links[j];
      bl.xtr = dom.xtrs[j]->id();
      bl.capacity_bps = spec_.access_bandwidth_bps;
      border.push_back(bl);
    }
    irc::IrcConfig icfg;
    icfg.policy = spec_.te_policy;
    dom.irc = std::make_unique<irc::IrcEngine>(network_, std::move(border), icfg);

    core::ControlPlaneConfig ccfg;
    ccfg.multicast_reverse = spec_.multicast_reverse;
    dom.control_plane = std::make_unique<core::PceControlPlane>(
        *dom.pce, *dom.resolver, dom.xtrs, *dom.irc, ccfg);
    dom.control_plane->activate();
  }

  // A5: PCE discovery substitute — every PCE learns which peer PCE is
  // authoritative for each remote EID prefix (RFC 5088/5089-style discovery
  // flattened into configuration; see DESIGN.md).
  if (spec_.pce_on_demand) {
    for (auto& dom : domains_) {
      for (const auto& other : domains_) {
        if (other.index == dom.index) continue;
        for (const auto& prefix : site_prefixes(other.index)) {
          dom.pce->add_pce_directory_entry(prefix, other.pce->address());
        }
      }
    }
  }
}

core::FailoverController& Internet::arm_failover(std::size_t d,
                                                 core::LinkHealthConfig health) {
  DomainHandle& dom = domains_.at(d);
  if (dom.control_plane == nullptr) {
    throw std::logic_error("arm_failover: domain " + dom.name +
                           " has no PCE control plane");
  }
  // The standard routing adapter: what the domain's IGP (and the provider
  // edge's BGP) would do — re-point the internal default route and the
  // core-side infrastructure route at the first surviving border router.
  auto link_up = std::make_shared<std::vector<bool>>(dom.xtrs.size(), true);
  const std::size_t domain_index = d;
  auto adapter = [this, domain_index, link_up](std::size_t index, bool up) {
    (*link_up)[index] = up;
    DomainHandle& dom = domains_[domain_index];
    for (std::size_t j = 0; j < dom.xtrs.size(); ++j) {
      if (!(*link_up)[j]) continue;
      network_.add_route(dom.internal_router->id(), net::Ipv4Prefix(),
                         dom.xtrs[j]->id());
      network_.add_route(core_->id(), domain_infra_prefix(domain_index),
                         dom.xtrs[j]->id());
      return;
    }
    // No survivor: leave the routes; the domain is partitioned either way.
  };
  dom.failover = std::make_unique<core::FailoverController>(
      *dom.control_plane, *dom.irc, dom.xtrs, kCoreAddress, health,
      std::move(adapter));
  dom.failover->start();
  return *dom.failover;
}

net::Ipv4Address Internet::core_address() const { return kCoreAddress; }

void Internet::build_map_server() {
  const std::size_t count = std::max<std::size_t>(1, spec_.map_server_count);
  sim::LinkConfig attach;
  attach.delay = spec_.dns_infra_delay;
  attach.bandwidth_bps = spec_.core_bandwidth_bps;

  // Map-Servers and (colocated, one per MS) Map-Resolvers on the core.
  mapping::MapServerConfig mscfg;
  mscfg.proxy_reply = spec_.ms_proxy_reply;
  for (std::size_t i = 0; i < count; ++i) {
    auto& ms = network_.make<mapping::MapServer>(
        "ms" + std::to_string(i), map_server_addr(i), mscfg);
    network_.connect(ms.id(), core_->id(), attach);
    network_.add_host_route(core_->id(), ms.address(), ms.id());
    network_.add_route(ms.id(), net::Ipv4Prefix(), core_->id());
    map_servers_.push_back(&ms);

    auto& mr = network_.make<mapping::MapResolver>("mr" + std::to_string(i),
                                                   map_resolver_addr(i));
    network_.connect(mr.id(), core_->id(), attach);
    network_.add_host_route(core_->id(), mr.address(), mr.id());
    network_.add_route(mr.id(), net::Ipv4Prefix(), core_->id());
    map_resolvers_.push_back(&mr);
  }

  // Every resolver knows which Map-Server each site registers with (the
  // MR-to-MS rendezvous that deployment runs over the ALT; see DESIGN.md).
  for (std::size_t d = 0; d < spec_.domains; ++d) {
    const auto ms_addr = map_server_addr(d % count);
    for (const auto& prefix : site_prefixes(d)) {
      for (auto* mr : map_resolvers_) {
        mr->add_map_server_route(prefix, ms_addr);
      }
    }
  }

  // Each domain's first border router runs the registration loop; ITRs use
  // their shard's resolver as the Map-Request target.
  mapping::RegistrarConfig rcfg;
  rcfg.ttl_seconds = spec_.ms_registration_ttl_seconds;
  rcfg.refresh_interval = spec_.ms_refresh_interval;
  for (std::size_t d = 0; d < spec_.domains; ++d) {
    DomainHandle& dom = domains_[d];
    std::vector<lisp::MapEntry> entries;
    for (const auto& prefix : site_prefixes(d)) {
      if (const auto* registered = registry_.find(prefix)) {
        entries.push_back(*registered);
      }
    }
    auto registrar = std::make_unique<mapping::EtrRegistrar>(
        *dom.xtrs.front(), map_server_addr(d % count), std::move(entries),
        rcfg);
    registrar->start();
    registrars_.push_back(std::move(registrar));
    for (auto* xtr : dom.xtrs) {
      xtr->set_overlay_attachment(map_resolver_addr(d % count));
    }
  }
}

dns::DomainName Internet::host_name(std::size_t domain, std::size_t host) const {
  return dns::DomainName::from_string("h" + std::to_string(host) + ".d" +
                                      std::to_string(domain) + ".example");
}

net::Ipv4Address Internet::host_eid(std::size_t domain, std::size_t host) const {
  // Spread hosts across the /24 so every de-aggregated sub-prefix carries
  // traffic; stride keeps addresses distinct for up to 200 hosts.
  const std::uint64_t stride =
      std::max<std::uint64_t>(1, 254 / spec_.hosts_per_domain);
  return domain_eid_prefix(domain).nth(2 + host * stride);
}

std::vector<net::Ipv4Prefix> Internet::site_prefixes(std::size_t domain) const {
  const auto base = domain_eid_prefix(domain);
  const auto k = spec_.deaggregation_factor;
  if (k == 1) return {base};
  int extra_bits = 0;
  while ((std::size_t{1} << extra_bits) < k) ++extra_bits;
  std::vector<net::Ipv4Prefix> out;
  out.reserve(k);
  const std::uint64_t block = base.size() / k;
  for (std::size_t i = 0; i < k; ++i) {
    out.emplace_back(base.nth(i * block), base.length() + extra_bits);
  }
  return out;
}

std::vector<dns::DomainName> Internet::destination_names(
    std::size_t exclude_domain) const {
  std::vector<dns::DomainName> out;
  // Interleave across domains so Zipf rank 0..k spreads over many sites.
  for (std::size_t h = 0; h < spec_.hosts_per_domain; ++h) {
    for (std::size_t d = 0; d < spec_.domains; ++d) {
      if (d == exclude_domain) continue;
      out.push_back(host_name(d, h));
    }
  }
  return out;
}

std::uint64_t Internet::total_miss_drops() const {
  std::uint64_t total = 0;
  for (const auto& dom : domains_) {
    for (const auto* xtr : dom.xtrs) {
      total += xtr->stats().miss_dropped + xtr->stats().queue_overflow_drops +
               xtr->stats().queue_timeout_drops;
    }
  }
  return total;
}

std::uint64_t Internet::total_miss_events() const {
  std::uint64_t total = 0;
  for (const auto& dom : domains_) {
    for (const auto* xtr : dom.xtrs) total += xtr->stats().miss_events;
  }
  return total;
}

std::uint64_t Internet::total_encapsulated() const {
  std::uint64_t total = 0;
  for (const auto& dom : domains_) {
    for (const auto* xtr : dom.xtrs) total += xtr->stats().encapsulated;
  }
  return total;
}

metrics::Histogram Internet::merged_queue_delay() const {
  metrics::Histogram merged;
  for (const auto& dom : domains_) {
    for (const auto* xtr : dom.xtrs) merged.merge(xtr->queue_delay());
  }
  return merged;
}

sim::SimDuration Internet::owd(std::size_t src_domain, std::size_t dst_domain) const {
  const auto delay = network_.path_delay(
      domains_.at(src_domain).hosts.front()->id(),
      domains_.at(dst_domain).hosts.front()->id());
  if (!delay) throw std::logic_error("Internet::owd: disconnected");
  return *delay;
}

}  // namespace lispcp::topo
