#include "topo/internet.hpp"

#include <stdexcept>

#include "topo/address_plan.hpp"

namespace lispcp::topo {

namespace {

constexpr std::size_t kMaxDomains = 512;
/// Flow-aggregate mode carries no per-packet events, so the topology (not
/// the event count) is the limit; 16k domains builds in seconds.
constexpr std::size_t kMaxDomainsAggregate = 16384;
constexpr std::size_t kMaxHosts = 200;
constexpr std::size_t kMaxProviders = 8;
constexpr std::size_t kMaxReplicas = 64;

}  // namespace

InternetSpec InternetSpec::preset(ControlPlaneKind kind) {
  InternetSpec spec;
  mapping::MappingSystemFactory::instance().apply_preset(kind, spec);
  return spec;
}

Internet::Internet(InternetSpec spec) : spec_(std::move(spec)), sim_(spec_.seed),
                                        network_(sim_) {
  const std::size_t max_domains =
      spec_.workload_mode == workload::Mode::kAggregate ? kMaxDomainsAggregate
                                                        : kMaxDomains;
  if (spec_.domains < 2 || spec_.domains > max_domains) {
    throw std::invalid_argument(
        spec_.workload_mode == workload::Mode::kAggregate
            ? "InternetSpec: domains must be in [2, 16384] (aggregate)"
            : "InternetSpec: domains must be in [2, 512]");
  }
  if (spec_.hosts_per_domain < 1 || spec_.hosts_per_domain > kMaxHosts) {
    throw std::invalid_argument("InternetSpec: hosts_per_domain must be in [1, 200]");
  }
  if (spec_.providers_per_domain < 1 || spec_.providers_per_domain > kMaxProviders) {
    throw std::invalid_argument(
        "InternetSpec: providers_per_domain must be in [1, 8]");
  }
  if (spec_.ms_replica_count < 1 || spec_.ms_replica_count > kMaxReplicas) {
    throw std::invalid_argument(
        "InternetSpec: ms_replica_count must be in [1, 64]");
  }
  const auto k = spec_.deaggregation_factor;
  if (k < 1 || k > 64 || (k & (k - 1)) != 0) {
    throw std::invalid_argument(
        "InternetSpec: deaggregation_factor must be a power of two in [1, 64]");
  }
  blueprint_ = Blueprint::shared(
      BlueprintShape{spec_.domains, spec_.hosts_per_domain,
                     spec_.deaggregation_factor});
  build();
}

void Internet::build() {
  // The factory throws on an unregistered kind before any node exists.
  system_ = mapping::MappingSystemFactory::instance().create(spec_);

  core_ = &network_.make<sim::Node>("core");
  // The core answers UDP Echo at this address: the far-end target for
  // border-link liveness detection (core::LinkHealthMonitor).
  core_->add_address(kCoreAddress);

  build_dns_hierarchy();
  domains_.resize(spec_.domains);
  for (std::size_t d = 0; d < spec_.domains; ++d) build_domain(d);
  register_mappings();

  // Mapping-system lifecycle: global infrastructure, then per-site
  // registration, then the ITR-side resolution strategies, then start-up.
  system_->build(*this);
  for (auto& dom : domains_) {
    system_->register_site(*this, dom, dom.registered_entries);
  }
  for (auto& dom : domains_) {
    for (auto* xtr : dom.xtrs) system_->attach_itr(*this, dom, *xtr);
  }
  system_->activate(*this);
}

void Internet::build_dns_hierarchy() {
  // Root serves "." and delegates the "example" TLD.
  dns::Zone root_zone{dns::DomainName()};
  root_zone.delegate(dns::Delegation{
      dns::DomainName::from_string("example"),
      {{dns::DomainName::from_string("ns.example"), kTldDns}}});
  root_dns_ = &network_.make<dns::DnsServer>("dns-root", kRootDns,
                                             std::move(root_zone));

  dns::Zone tld_zone{dns::DomainName::from_string("example")};
  tld_dns_ = &network_.make<dns::DnsServer>("dns-tld", kTldDns,
                                            std::move(tld_zone));

  sim::LinkConfig infra_link;
  infra_link.delay = spec_.dns_infra_delay;
  infra_link.bandwidth_bps = spec_.core_bandwidth_bps;
  network_.connect(core_->id(), root_dns_->id(), infra_link);
  network_.connect(core_->id(), tld_dns_->id(), infra_link);

  network_.add_host_route(core_->id(), kRootDns, root_dns_->id());
  network_.add_host_route(core_->id(), kTldDns, tld_dns_->id());
  network_.add_route(root_dns_->id(), net::Ipv4Prefix(), core_->id());
  network_.add_route(tld_dns_->id(), net::Ipv4Prefix(), core_->id());
}

void Internet::build_domain(std::size_t d) {
  DomainHandle& dom = domains_[d];
  dom.index = d;
  dom.name = "d" + std::to_string(d);
  dom.zone = dns::DomainName::from_string(dom.name + ".example");
  dom.eid_prefix = domain_eid_prefix(d);

  sim::LinkConfig lan;
  lan.delay = spec_.intra_domain_delay;
  lan.bandwidth_bps = spec_.lan_bandwidth_bps;
  sim::LinkConfig access;
  access.delay = spec_.core_link_delay;
  access.bandwidth_bps = spec_.access_bandwidth_bps;
  access.loss = spec_.access_loss;

  sim::Node& r = network_.make<sim::Node>(dom.name + "-r");
  dom.internal_router = &r;

  // Border tunnel routers, one per provider.  The mapping system tunes the
  // baseline config (plain-IP turns the LISP roles off, NERD lifts the
  // cache cap, ...).
  for (std::size_t j = 0; j < spec_.providers_per_domain; ++j) {
    lisp::XtrConfig xcfg;
    xcfg.itr_role = true;
    xcfg.etr_role = true;
    xcfg.local_eid_prefixes = {dom.eid_prefix};
    xcfg.eid_space = {kEidSpace};
    xcfg.cache_capacity = spec_.cache_capacity;
    xcfg.miss_policy = spec_.miss_policy;
    system_->configure_xtr(spec_, xcfg);
    auto& xtr = network_.make<lisp::TunnelRouter>(
        dom.name + "-xtr" + std::to_string(j), xtr_rloc(d, j), xcfg);
    dom.xtrs.push_back(&xtr);

    network_.connect(r.id(), xtr.id(), lan);
    sim::Link& uplink = network_.connect(xtr.id(), core_->id(), access);
    dom.provider_links.push_back(&uplink);

    // Core reaches this RLOC directly; the xTR defaults to the core and
    // hands domain-bound prefixes to the internal router.
    network_.add_host_route(core_->id(), xtr.rloc(), xtr.id());
    network_.add_route(xtr.id(), net::Ipv4Prefix(), core_->id());
    network_.add_route(xtr.id(), dom.eid_prefix, r.id());
    network_.add_route(xtr.id(), domain_infra_prefix(d), r.id());

    network_.add_host_route(r.id(), xtr.rloc(), xtr.id());
  }
  network_.add_route(r.id(), net::Ipv4Prefix(), dom.xtrs.front()->id());

  // Sibling border routers reach each other through the internal router,
  // not the provider core — the ETR-sync multicast (paper §2) must beat the
  // first return packet, and a 2x core RTT detour would lose that race.
  for (auto* a : dom.xtrs) {
    for (auto* b : dom.xtrs) {
      if (a != b) network_.add_host_route(a->id(), b->rloc(), r.id());
    }
  }

  // Authoritative zone and server.
  dns::Zone zone{dom.zone};
  for (std::size_t h = 0; h < spec_.hosts_per_domain; ++h) {
    zone.add_a(host_name(d, h), host_eid(d, h), /*ttl_seconds=*/300);
  }
  const auto auth_addr = domain_infra(d, 20);
  dom.authoritative = &network_.make<dns::DnsServer>(dom.name + "-auth", auth_addr,
                                                     std::move(zone));
  tld_dns_->zone().delegate(dns::Delegation{
      dom.zone, {{dom.zone.child("ns"), auth_addr}}});

  // Caching resolver.
  dns::ResolverConfig rcfg;
  rcfg.root_hints = {kRootDns};
  const auto resolver_addr = domain_infra(d, 10);
  dom.resolver = &network_.make<dns::DnsResolver>(dom.name + "-dns", resolver_addr,
                                                  rcfg);

  // DNS attachment: the mapping system wires it (the PCE control plane
  // interposes its PCE in the DNS data path, Fig. 1; everyone else attaches
  // both servers directly to the internal router).
  system_->attach_domain_dns(*this, dom);

  // End-hosts.
  workload::HostConfig hcfg;
  hcfg.resolver = resolver_addr;
  for (std::size_t h = 0; h < spec_.hosts_per_domain; ++h) {
    const auto eid = host_eid(d, h);
    auto& host = network_.make<workload::Host>(
        dom.name + "-h" + std::to_string(h), eid, hcfg, &metrics_);
    dom.hosts.push_back(&host);
    network_.connect(host.id(), r.id(), lan);
    network_.add_route(host.id(), net::Ipv4Prefix(), r.id());
    network_.add_host_route(r.id(), eid, host.id());
  }

  // Core can reach the domain's DNS infrastructure through its first xTR.
  network_.add_route(core_->id(), domain_infra_prefix(d),
                     dom.xtrs.front()->id());
}

void Internet::register_mappings() {
  for (auto& dom : domains_) {
    std::vector<lisp::MapEntry> site_entries;
    for (const auto& prefix : site_prefixes(dom.index)) {
      lisp::MapEntry entry;
      entry.eid_prefix = prefix;
      entry.ttl_seconds = spec_.mapping_ttl_seconds;
      for (std::size_t j = 0; j < dom.xtrs.size(); ++j) {
        lisp::Rloc rloc;
        rloc.address = dom.xtrs[j]->rloc();
        // Vanilla 2008 multihoming: primary/backup priorities.
        rloc.priority = j == 0 ? 1 : 2;
        rloc.weight = 100;
        entry.rlocs.push_back(rloc);
      }
      registry_.register_site(entry);
      if (const auto* registered = registry_.find(prefix)) {
        site_entries.push_back(*registered);
      }
    }
    for (auto* xtr : dom.xtrs) {
      xtr->set_site_mappings(site_entries);
    }
    dom.registered_entries = std::move(site_entries);
  }
}

core::FailoverController& Internet::arm_failover(std::size_t d,
                                                 core::LinkHealthConfig health) {
  DomainHandle& dom = domains_.at(d);
  if (dom.control_plane == nullptr) {
    throw std::logic_error("arm_failover: domain " + dom.name +
                           " has no PCE control plane");
  }
  // The standard routing adapter: what the domain's IGP (and the provider
  // edge's BGP) would do — re-point the internal default route and the
  // core-side infrastructure route at the first surviving border router.
  auto link_up = std::make_shared<std::vector<bool>>(dom.xtrs.size(), true);
  const std::size_t domain_index = d;
  auto adapter = [this, domain_index, link_up](std::size_t index, bool up) {
    (*link_up)[index] = up;
    DomainHandle& dom = domains_[domain_index];
    for (std::size_t j = 0; j < dom.xtrs.size(); ++j) {
      if (!(*link_up)[j]) continue;
      network_.add_route(dom.internal_router->id(), net::Ipv4Prefix(),
                         dom.xtrs[j]->id());
      network_.add_route(core_->id(), domain_infra_prefix(domain_index),
                         dom.xtrs[j]->id());
      return;
    }
    // No survivor: leave the routes; the domain is partitioned either way.
  };
  dom.failover = std::make_unique<core::FailoverController>(
      *dom.control_plane, *dom.irc, dom.xtrs, kCoreAddress, health,
      std::move(adapter));
  dom.failover->start();
  return *dom.failover;
}

net::Ipv4Address Internet::core_address() const { return kCoreAddress; }

dns::DomainName Internet::host_name(std::size_t domain, std::size_t host) const {
  return blueprint_->host_name(domain, host);
}

net::Ipv4Address Internet::host_eid(std::size_t domain, std::size_t host) const {
  return blueprint_->host_eid(domain, host);
}

std::vector<net::Ipv4Prefix> Internet::site_prefixes(std::size_t domain) const {
  return blueprint_->site_prefixes(domain);
}

std::vector<dns::DomainName> Internet::destination_names(
    std::size_t exclude_domain) const {
  return blueprint_->destination_names(exclude_domain);
}

std::uint64_t Internet::total_miss_drops() const {
  std::uint64_t total = 0;
  for (const auto& dom : domains_) {
    for (const auto* xtr : dom.xtrs) {
      total += xtr->stats().miss_dropped + xtr->stats().queue_overflow_drops +
               xtr->stats().queue_timeout_drops;
    }
  }
  return total;
}

std::uint64_t Internet::total_miss_events() const {
  std::uint64_t total = 0;
  for (const auto& dom : domains_) {
    for (const auto* xtr : dom.xtrs) total += xtr->stats().miss_events;
  }
  return total;
}

std::uint64_t Internet::total_encapsulated() const {
  std::uint64_t total = 0;
  for (const auto& dom : domains_) {
    for (const auto* xtr : dom.xtrs) total += xtr->stats().encapsulated;
  }
  return total;
}

metrics::Histogram Internet::merged_queue_delay() const {
  metrics::Histogram merged;
  for (const auto& dom : domains_) {
    for (const auto* xtr : dom.xtrs) merged.merge(xtr->queue_delay());
  }
  return merged;
}

sim::SimDuration Internet::owd(std::size_t src_domain, std::size_t dst_domain) const {
  const auto delay = network_.path_delay(
      domains_.at(src_domain).hosts.front()->id(),
      domains_.at(dst_domain).hosts.front()->id());
  if (!delay) throw std::logic_error("Internet::owd: disconnected");
  return *delay;
}

}  // namespace lispcp::topo
