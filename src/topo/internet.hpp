// internet.hpp — emulated multi-AS Internet topologies.
//
// Builds the paper's evaluation substrate: a transit core, N LISP domains
// (each with end-hosts, an internal router, one border xTR per provider, a
// caching resolver, an authoritative DNS server, and — under the PCE control
// plane — a PCE fronting both DNS servers, exactly as in Fig. 1), a DNS
// root/TLD hierarchy, and whichever mapping system the spec selects.
//
// The mapping system itself is pluggable: `InternetSpec::kind` names a
// mapping::ControlPlaneKind, the mapping::MappingSystemFactory instantiates
// the matching mapping::MappingSystem, and build() drives its lifecycle
// (configure_xtr / attach_domain_dns / build / register_site / attach_itr /
// activate).  The topology builder contains no per-system branching; adding
// a control plane is a factory registration, not a change here.
//
// Routing reproduces the LISP premise: provider (RLOC) space and DNS/PCE
// infrastructure are globally routable; domain EID prefixes are routable
// only inside their own domain, so an un-encapsulated EID packet reaching
// the core is dropped ("no route") — which is why a mapping system exists.
// The address plan lives in topo/address_plan.hpp.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/control_plane.hpp"
#include "core/failover.hpp"
#include "core/pce.hpp"
#include "dns/resolver.hpp"
#include "dns/server.hpp"
#include "irc/irc_engine.hpp"
#include "lisp/tunnel_router.hpp"
#include "mapping/map_server.hpp"
#include "mapping/mapping_system.hpp"
#include "mapping/nerd.hpp"
#include "mapping/overlay_router.hpp"
#include "mapping/registry.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "topo/blueprint.hpp"
#include "workload/host.hpp"
#include "workload/session.hpp"
#include "workload/traffic.hpp"

namespace lispcp::topo {

/// The compared control planes are defined (and extended) in the mapping
/// layer; the topology re-exports the names for convenience.
using ControlPlaneKind = mapping::ControlPlaneKind;
using mapping::to_string;

struct InternetSpec {
  std::size_t domains = 2;
  std::size_t hosts_per_domain = 2;
  std::size_t providers_per_domain = 1;  ///< multihoming degree = xTR count

  /// Which workload engine the scenario layer will drive over this topology.
  /// The topology itself is identical in both modes; the mode lifts the
  /// domain-count ceiling (per-packet simulation is capped at 512 domains,
  /// flow-aggregate scales to 16384) and is carried here so sweeps can flip
  /// it declaratively per point.
  workload::Mode workload_mode = workload::Mode::kPacket;

  // Latency knobs (2008-era defaults; see DESIGN.md calibration note).
  sim::SimDuration core_link_delay = sim::SimDuration::millis(20);
  sim::SimDuration intra_domain_delay = sim::SimDuration::micros(200);
  sim::SimDuration dns_infra_delay = sim::SimDuration::millis(5);
  sim::SimDuration overlay_link_delay = sim::SimDuration::millis(10);

  double access_bandwidth_bps = 100e6;  ///< provider links (TE bottleneck)
  double core_bandwidth_bps = 10e9;
  double lan_bandwidth_bps = 1e9;
  /// Random loss probability on provider access links (failure injection:
  /// exercises DNS retry and TCP retransmission recovery paths).
  double access_loss = 0.0;

  // LISP knobs.
  std::size_t cache_capacity = 0;  ///< ITR map-cache entries (0 = unlimited)
  std::uint32_t mapping_ttl_seconds = 900;
  lisp::MissPolicy miss_policy = lisp::MissPolicy::kDrop;

  /// Prefix de-aggregation factor (the paper's closing observation about
  /// Latin America's "world's largest IPv4 de-aggregation factor"): each
  /// site registers its /24 EID block as this many more-specific mappings
  /// instead of one aggregate.  Power of two in [1, 64].  Multiplies the
  /// mapping-system state (overlay routes, NERD database, cache entries)
  /// without changing the traffic — see bench/f1_deaggregation.
  std::size_t deaggregation_factor = 1;

  /// Mapping-system selection: the factory builds this kind.  The default
  /// is the degenerate no-distribution baseline; use preset() (or set the
  /// field) to select a real control plane.
  ControlPlaneKind kind = ControlPlaneKind::kNoMapping;

  // ALT/CONS overlay knobs.
  std::size_t overlay_fanout = 8;

  // Map-Server system knobs (draft-lisp-ms).
  std::size_t map_server_count = 2;     ///< domains shard across these
  bool ms_proxy_reply = false;          ///< MS answers from the registration
  std::uint32_t ms_registration_ttl_seconds = 180;
  sim::SimDuration ms_refresh_interval = sim::SimDuration::seconds(60);
  /// Replicated Map-Resolver tier (kMsReplicated): resolver replicas placed
  /// in evenly spaced home domains; ITRs pull from the nearest one.  More
  /// replicas than domains makes no placement sense, so the system clamps
  /// to `domains` — read the built count off Internet::map_resolvers().
  std::size_t ms_replica_count = 4;

  // PCE / IRC knobs.
  irc::TePolicy te_policy = irc::TePolicy::kLeastLoaded;
  bool pce_snoop = true;          ///< ablation A2
  /// Ablation A5: acquire mappings by explicit PCEP request/reply (one
  /// PCE-to-PCE RTT after the DNS answer) instead of Step-6 snooping.
  /// Typically combined with pce_snoop = false to isolate the transport.
  bool pce_on_demand = false;
  bool pce_push_all_itrs = true;  ///< ablation A1
  bool multicast_reverse = true;  ///< ablation A3

  sim::SimDuration nerd_push_interval = sim::SimDuration::seconds(60);

  std::uint64_t seed = 1;

  /// Canonical settings for each compared control plane, applied through
  /// the factory registration (so presets extend with registered kinds).
  static InternetSpec preset(ControlPlaneKind kind);
};

/// One built LISP domain and its components (non-owning pointers into the
/// Network, valid for the Internet's lifetime).
struct DomainHandle {
  std::size_t index = 0;
  std::string name;            ///< "d3"
  dns::DomainName zone;        ///< d3.example
  net::Ipv4Prefix eid_prefix;
  std::vector<workload::Host*> hosts;
  std::vector<lisp::TunnelRouter*> xtrs;
  std::vector<sim::Link*> provider_links;  ///< xTR <-> core, index-aligned
  sim::Node* internal_router = nullptr;
  dns::DnsResolver* resolver = nullptr;
  dns::DnsServer* authoritative = nullptr;
  /// The site's registered mapping records (possibly de-aggregated), as
  /// fed to the mapping system.
  std::vector<lisp::MapEntry> registered_entries;
  core::Pce* pce = nullptr;
  std::unique_ptr<irc::IrcEngine> irc;
  std::unique_ptr<core::PceControlPlane> control_plane;
  std::unique_ptr<core::FailoverController> failover;
};

class Internet {
 public:
  explicit Internet(InternetSpec spec);

  [[nodiscard]] sim::Simulator& sim() noexcept { return sim_; }
  [[nodiscard]] sim::Network& network() noexcept { return network_; }
  [[nodiscard]] const InternetSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::vector<DomainHandle>& domains() noexcept { return domains_; }
  [[nodiscard]] DomainHandle& domain(std::size_t i) { return domains_.at(i); }
  [[nodiscard]] mapping::MappingRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] workload::WorkloadMetrics& metrics() noexcept { return metrics_; }
  [[nodiscard]] sim::Node& core_router() noexcept { return *core_; }

  /// The mapping system the factory built for spec().kind.
  [[nodiscard]] mapping::MappingSystem& mapping_system() noexcept {
    return *system_;
  }

  /// The infrastructure the mapping system published while building
  /// (mutable: MappingSystem implementations fill it in build()).
  struct MappingInfra {
    mapping::NerdAuthority* nerd = nullptr;
    std::vector<mapping::MapServer*> map_servers;
    std::vector<mapping::MapResolver*> map_resolvers;
    std::vector<std::unique_ptr<mapping::EtrRegistrar>> registrars;
    std::vector<mapping::OverlayRouter*> overlay_routers;
  };
  [[nodiscard]] MappingInfra& mapping_infra() noexcept { return infra_; }

  [[nodiscard]] mapping::NerdAuthority* nerd() noexcept { return infra_.nerd; }
  [[nodiscard]] const std::vector<mapping::MapServer*>& map_servers() const noexcept {
    return infra_.map_servers;
  }
  [[nodiscard]] const std::vector<mapping::MapResolver*>& map_resolvers() const noexcept {
    return infra_.map_resolvers;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<mapping::EtrRegistrar>>&
  registrars() const noexcept {
    return infra_.registrars;
  }
  [[nodiscard]] const std::vector<mapping::OverlayRouter*>& overlay() const noexcept {
    return infra_.overlay_routers;
  }

  /// Arms automatic failure detection and TE recovery for domain `d`
  /// (requires the PCE control plane): one BFD-style monitor per border
  /// link, echoing off the core, wired to the standard routing adapter that
  /// moves the internal default and the core-side infra route onto a
  /// surviving border router.  Returns the controller (owned by the
  /// DomainHandle).  See bench/a4_failure_recovery.
  core::FailoverController& arm_failover(std::size_t d,
                                         core::LinkHealthConfig health = {});

  /// The core's echo-target address (border-link liveness probes).
  [[nodiscard]] net::Ipv4Address core_address() const;

  /// The shared DNS hierarchy (the aggregate workload engine computes its
  /// iterative-resolution legs from these nodes' positions).
  [[nodiscard]] dns::DnsServer& root_dns() noexcept { return *root_dns_; }
  [[nodiscard]] dns::DnsServer& tld_dns() noexcept { return *tld_dns_; }

  /// The shape-keyed immutable tables this Internet was built from (shared
  /// with sibling Internets of the same shape inside a BlueprintScope).
  [[nodiscard]] const std::shared_ptr<const Blueprint>& blueprint() const noexcept {
    return blueprint_;
  }

  /// DNS name of host h in domain d: "h<h>.d<d>.example".
  [[nodiscard]] dns::DomainName host_name(std::size_t domain, std::size_t host) const;

  /// EID of host h in domain d.  Hosts are spread across the domain's /24 so
  /// de-aggregated sub-prefixes all see traffic.
  [[nodiscard]] net::Ipv4Address host_eid(std::size_t domain, std::size_t host) const;

  /// The mapping prefixes domain d registers: its /24 when
  /// deaggregation_factor == 1, otherwise that many more-specifics.
  [[nodiscard]] std::vector<net::Ipv4Prefix> site_prefixes(std::size_t domain) const;

  /// Names of every host outside `exclude_domain` (destination population
  /// for the traffic generator; ranks are interleaved across domains so
  /// Zipf skew spreads over sites).
  [[nodiscard]] std::vector<dns::DomainName> destination_names(
      std::size_t exclude_domain) const;

  // -- Aggregates used by the benches --------------------------------------
  /// Sum of first-packet drops at all ITRs (mapping-miss drops).
  [[nodiscard]] std::uint64_t total_miss_drops() const;
  [[nodiscard]] std::uint64_t total_miss_events() const;
  [[nodiscard]] std::uint64_t total_encapsulated() const;
  /// Merged queueing-delay histogram over all ITRs (kQueue palliative).
  [[nodiscard]] metrics::Histogram merged_queue_delay() const;

  /// One-way propagation delay host(sd, 0) -> host(dd, 0): the OWD term of
  /// the paper's §1 formulas, computed from the topology.
  [[nodiscard]] sim::SimDuration owd(std::size_t src_domain,
                                     std::size_t dst_domain) const;

 private:
  void build();
  void build_dns_hierarchy();
  void build_domain(std::size_t d);
  void register_mappings();

  InternetSpec spec_;
  std::shared_ptr<const Blueprint> blueprint_;
  sim::Simulator sim_;
  sim::Network network_;
  mapping::MappingRegistry registry_;
  workload::WorkloadMetrics metrics_;
  std::unique_ptr<mapping::MappingSystem> system_;
  MappingInfra infra_;

  sim::Node* core_ = nullptr;
  dns::DnsServer* root_dns_ = nullptr;
  dns::DnsServer* tld_dns_ = nullptr;
  std::vector<DomainHandle> domains_;
};

}  // namespace lispcp::topo
