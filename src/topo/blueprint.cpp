#include "topo/blueprint.hpp"

#include <algorithm>
#include <string>

#include "topo/address_plan.hpp"

namespace lispcp::topo {

namespace {

core::SnapshotCache<BlueprintShape, Blueprint>& blueprint_cache() {
  static core::SnapshotCache<BlueprintShape, Blueprint> cache;
  return cache;
}

}  // namespace

Blueprint::Blueprint(const BlueprintShape& shape) : shape_(shape) {
  const std::size_t domains = shape.domains;
  const std::size_t hosts = shape.hosts_per_domain;
  // Identical formulas to the ones Internet used to evaluate per call; the
  // byte-parity pins depend on that.
  const std::uint64_t stride =
      std::max<std::uint64_t>(1, 254 / std::max<std::size_t>(1, hosts));

  host_names_.reserve(domains * hosts);
  host_eids_.reserve(domains * hosts);
  site_prefixes_.reserve(domains);
  for (std::size_t d = 0; d < domains; ++d) {
    const net::Ipv4Prefix base = domain_eid_prefix(d);
    for (std::size_t h = 0; h < hosts; ++h) {
      host_names_.push_back(dns::DomainName::from_string(
          "h" + std::to_string(h) + ".d" + std::to_string(d) + ".example"));
      host_eids_.push_back(base.nth(2 + h * stride));
    }

    const std::size_t k = shape.deaggregation_factor;
    std::vector<net::Ipv4Prefix> prefixes;
    if (k == 1) {
      prefixes.push_back(base);
    } else {
      int extra_bits = 0;
      while ((std::size_t{1} << extra_bits) < k) ++extra_bits;
      prefixes.reserve(k);
      const std::uint64_t block = base.size() / k;
      for (std::size_t i = 0; i < k; ++i) {
        prefixes.emplace_back(base.nth(i * block), base.length() + extra_bits);
      }
    }
    site_prefixes_.push_back(std::move(prefixes));
  }
}

std::shared_ptr<const Blueprint> Blueprint::shared(const BlueprintShape& shape) {
  return blueprint_cache().acquire(shape,
                                   [&shape] { return Blueprint(shape); });
}

std::vector<dns::DomainName> Blueprint::destination_names(
    std::size_t exclude_domain) const {
  std::vector<dns::DomainName> out;
  out.reserve(host_names_.size());
  // Interleave across domains so Zipf rank 0..k spreads over many sites.
  for (std::size_t h = 0; h < shape_.hosts_per_domain; ++h) {
    for (std::size_t d = 0; d < shape_.domains; ++d) {
      if (d == exclude_domain) continue;
      out.push_back(host_name(d, h));
    }
  }
  return out;
}

BlueprintScope::BlueprintScope() : scope_(blueprint_cache()) {}

}  // namespace lispcp::topo
