// address_plan.hpp — the emulated Internet's address plan, shared between
// the topology builder and the mapping-system builders.
//
//   EID space          100.64.0.0/10   domain d: 100.(64+d/256).(d%256).0/24
//   provider RLOCs     10.0.0.0/8      xTR j of domain d: 10.(d/256).(d%256).(1+j)
//   domain DNS/PCE     192.1.0.0/16    per domain d: pce .1, resolver .10, auth .20
//   global infra       192.0.0.0/16    core .0.1, root .1.1, TLD .1.2,
//                                      NERD .4.1, MS .5.x, MR .6.x,
//                                      replicated MR tier .7.x,
//                                      overlay routers .8.x
//
// The blocks are disjoint by construction (asserted in tests); every
// component derives addresses from these helpers so the plan cannot drift.
#pragma once

#include <cstddef>
#include <cstdint>

#include "net/ipv4.hpp"

namespace lispcp::topo {

/// The global EID superblock (RFC 6598 space, conveniently unused elsewhere
/// in the plan).
inline const net::Ipv4Prefix kEidSpace{net::Ipv4Address(100, 64, 0, 0), 10};

inline const net::Ipv4Address kRootDns{192, 0, 1, 1};
inline const net::Ipv4Address kTldDns{192, 0, 1, 2};
inline const net::Ipv4Address kCoreAddress{192, 0, 0, 1};
inline const net::Ipv4Address kNerdAddr{192, 0, 4, 1};

[[nodiscard]] inline net::Ipv4Prefix domain_eid_prefix(std::size_t d) {
  return net::Ipv4Prefix(
      net::Ipv4Address(100, static_cast<std::uint8_t>(64 + d / 256),
                       static_cast<std::uint8_t>(d % 256), 0),
      24);
}

[[nodiscard]] inline net::Ipv4Address xtr_rloc(std::size_t d, std::size_t j) {
  return net::Ipv4Address(10, static_cast<std::uint8_t>(d / 256),
                          static_cast<std::uint8_t>(d % 256),
                          static_cast<std::uint8_t>(1 + j));
}

[[nodiscard]] inline net::Ipv4Address domain_infra(std::size_t d,
                                                   std::uint8_t octet) {
  return net::Ipv4Address(192, static_cast<std::uint8_t>(1 + d / 256),
                          static_cast<std::uint8_t>(d % 256), octet);
}

[[nodiscard]] inline net::Ipv4Prefix domain_infra_prefix(std::size_t d) {
  return net::Ipv4Prefix(domain_infra(d, 0), 24);
}

[[nodiscard]] inline net::Ipv4Address map_server_addr(std::size_t i) {
  return {192, 0, 5, static_cast<std::uint8_t>(i + 1)};
}

[[nodiscard]] inline net::Ipv4Address map_resolver_addr(std::size_t i) {
  return {192, 0, 6, static_cast<std::uint8_t>(i + 1)};
}

/// Replicated Map-Resolver tier (mapping::ReplicatedResolverSystem).
[[nodiscard]] inline net::Ipv4Address replica_resolver_addr(std::size_t i) {
  return {192, 0, 7, static_cast<std::uint8_t>(i + 1)};
}

[[nodiscard]] inline net::Ipv4Address overlay_addr(std::size_t i) {
  return net::Ipv4Address(192, 0, static_cast<std::uint8_t>(8 + i / 254),
                          static_cast<std::uint8_t>(1 + i % 254));
}

}  // namespace lispcp::topo
