// blueprint.hpp — shape-keyed immutable topology tables.
//
// The parts of an Internet build that depend only on its *shape* — host DNS
// names (each a string parse), host EIDs, per-site registered prefixes, and
// the interleaved destination-name order — are pure functions of (domains,
// hosts_per_domain, deaggregation_factor).  A Blueprint precomputes them
// once; inside a BlueprintScope (opened by scenario::Runner::run around its
// point loop) every Internet of the same shape forks the same Blueprint
// instead of re-deriving the tables, which turns the per-point topology
// setup from O(domains * hosts) name parses into a shared-pointer copy.
// Outside any scope Blueprint::shared builds privately, so stand-alone
// constructions keep no global state alive.
//
// The tables are value-identical to the formulas they replace (the parity
// tests pin this): sharing can never change results.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/snapshot_cache.hpp"
#include "dns/name.hpp"
#include "net/ipv4.hpp"

namespace lispcp::topo {

/// The shape key: the InternetSpec fields the precomputed tables depend on.
struct BlueprintShape {
  std::size_t domains = 0;
  std::size_t hosts_per_domain = 0;
  std::size_t deaggregation_factor = 1;

  friend bool operator==(const BlueprintShape&, const BlueprintShape&) = default;
};

class Blueprint {
 public:
  explicit Blueprint(const BlueprintShape& shape);

  /// The shared snapshot for `shape`: cached inside a BlueprintScope, a
  /// private build otherwise.
  [[nodiscard]] static std::shared_ptr<const Blueprint> shared(
      const BlueprintShape& shape);

  [[nodiscard]] const BlueprintShape& shape() const noexcept { return shape_; }

  /// DNS name of host h in domain d: "h<h>.d<d>.example".
  [[nodiscard]] const dns::DomainName& host_name(std::size_t domain,
                                                 std::size_t host) const {
    return host_names_[domain * shape_.hosts_per_domain + host];
  }

  /// EID of host h in domain d (hosts strided across the domain's /24).
  [[nodiscard]] net::Ipv4Address host_eid(std::size_t domain,
                                          std::size_t host) const {
    return host_eids_[domain * shape_.hosts_per_domain + host];
  }

  /// The mapping prefixes domain d registers (de-aggregated per the shape).
  [[nodiscard]] const std::vector<net::Ipv4Prefix>& site_prefixes(
      std::size_t domain) const {
    return site_prefixes_[domain];
  }

  /// Names of every host outside `exclude_domain`, interleaved host-major
  /// (the traffic generator's Zipf rank order).
  [[nodiscard]] std::vector<dns::DomainName> destination_names(
      std::size_t exclude_domain) const;

 private:
  BlueprintShape shape_;
  std::vector<dns::DomainName> host_names_;   ///< [domain * hosts + host]
  std::vector<net::Ipv4Address> host_eids_;   ///< same layout
  std::vector<std::vector<net::Ipv4Prefix>> site_prefixes_;  ///< per domain
};

/// Retains Blueprint snapshots while alive (RAII; see file comment).
class BlueprintScope {
 public:
  BlueprintScope();

 private:
  core::SnapshotCache<BlueprintShape, Blueprint>::Scope scope_;
};

}  // namespace lispcp::topo
