// E3 — the §1 connection-setup formulas:
//   today      : T_setup = T_DNS + 2·OWD(S,D) + OWD(D,S)
//   vanilla LISP: T_setup = T_DNS + T_map_resol + 2·OWD(S,D) + OWD(D,S)
//   (and, when the first SYN is *dropped* rather than queued, T_map_resol
//    degenerates into a 3-second TCP retransmission timeout)
//
// Series E3a: measured T_setup against the analytic formula per control plane.
// Series E3b: cold vs warm cache.
// Series E3c: T_setup vs inter-domain OWD.
// Series E3d: packet vs flow-aggregate engine parity (the mode_parity guard).
// Series E3e: aggregate-only setup-latency scale series.
#include <iostream>

#include "bench_util.hpp"

namespace lispcp {
namespace {

using scenario::Axis;
using scenario::Experiment;
using scenario::ExperimentConfig;
using scenario::Record;
using scenario::Runner;
using scenario::RunPoint;
using scenario::SweepSpec;
using topo::ControlPlaneKind;

void make_cold(ExperimentConfig& config) {
  config.spec.cache_capacity = 2;  // nearly every flow misses
  config.spec.mapping_ttl_seconds = 5;
  config.traffic.zipf_alpha = 0.3;
}

void make_warm(ExperimentConfig& config) {
  config.spec.cache_capacity = 0;  // unlimited
  config.spec.mapping_ttl_seconds = 900;
  config.traffic.zipf_alpha = 1.2;
}

/// E3's slow-arrival workload on the canonical cold-resolution base (the
/// cache state is then an axis where the series sweeps it).
SweepSpec e3_base() {
  auto spec = SweepSpec::cold_resolution();
  spec.base([](ExperimentConfig& config) {
    config.spec.seed = 3;
    config.traffic.sessions_per_second = 10;
    config.traffic.duration = sim::SimDuration::seconds(40);
    config.drain = sim::SimDuration::seconds(60);
    make_cold(config);
  });
  return spec;
}

void setup_fields(Experiment& experiment, const RunPoint&, Record& record) {
  const auto s = experiment.summary();
  record.set_real("mean (ms)", s.t_setup_mean_ms);
  record.set_real("p99 (ms)", s.t_setup_p99_ms);
}

void series_formula(bench::BenchContext& ctx) {
  if (!ctx.enabled("E3a")) return;
  std::cout << "-- E3a: measured T_setup vs the paper's formula "
               "(OWD = 40.8 ms, cold caches) --\n\n";
  auto spec = e3_base().named("E3a").axis(Axis::control_planes(
      "control plane",
      {ControlPlaneKind::kPlainIp, ControlPlaneKind::kAltDrop,
       ControlPlaneKind::kAltQueue, ControlPlaneKind::kCons,
       ControlPlaneKind::kNerd, ControlPlaneKind::kPce}));
  ctx.maybe_quick(spec);
  Runner runner(std::move(spec));
  runner.probe([](Experiment& experiment, const RunPoint&, Record& record) {
    const auto s = experiment.summary();
    const double owd_ms = experiment.internet().owd(0, 1).ms();
    // Analytic formula with T_map = 0 (the "today" baseline the paper
    // compares against).
    record.set_real("T_DNS (ms)", s.t_dns_mean_ms);
    record.set_real("analytic T_setup (ms)", s.t_dns_mean_ms + 3.0 * owd_ms);
    record.set_real("measured mean (ms)", s.t_setup_mean_ms);
    record.set_real("p50 (ms)", s.t_setup_p50_ms);
    record.set_real("p99 (ms)", s.t_setup_p99_ms);
    record.set_int("retransmissions", s.syn_retransmissions);
  });
  const auto& result = ctx.run(runner);
  result.table().print(std::cout);
  std::cout << "\n";
}

void series_cold_warm(bench::BenchContext& ctx) {
  if (!ctx.enabled("E3b")) return;
  std::cout << "-- E3b: cold vs warm map-caches --\n\n";
  auto spec = e3_base()
                  .named("E3b")
                  .axis(Axis::control_planes(
                      "control plane",
                      {ControlPlaneKind::kAltDrop, ControlPlaneKind::kAltQueue,
                       ControlPlaneKind::kPce}))
                  .axis(Axis::labeled("cache state", {{"cold", make_cold},
                                                      {"warm", make_warm}}));
  ctx.maybe_quick(spec);
  Runner runner(std::move(spec));
  runner.probe(setup_fields);
  const auto& result = ctx.run(runner);
  result.pivot("control plane", "cache state", {"mean (ms)", "p99 (ms)"})
      .print(std::cout);
  std::cout << "\n";
}

void series_owd(bench::BenchContext& ctx) {
  if (!ctx.enabled("E3c")) return;
  std::cout << "-- E3c: mean T_setup vs inter-domain OWD (cold caches) --\n\n";
  auto spec = e3_base()
                  .named("E3c")
                  .axis(Axis::integers(
                      "OWD (ms)", {10, 40, 100, 150},
                      [](ExperimentConfig& config, std::uint64_t owd_ms) {
                        config.spec.core_link_delay =
                            sim::SimDuration::millis(static_cast<std::int64_t>(
                                owd_ms / 2));
                      }))
                  .axis(Axis::control_planes(
                      "control plane",
                      {ControlPlaneKind::kPlainIp, ControlPlaneKind::kAltDrop,
                       ControlPlaneKind::kAltQueue, ControlPlaneKind::kPce},
                      {"plain-ip", "alt-drop", "alt-queue", "pce"}));
  ctx.maybe_quick(spec);
  Runner runner(std::move(spec));
  runner.probe([](Experiment& experiment, const RunPoint&, Record& record) {
    record.set_real("T_setup mean (ms)", experiment.summary().t_setup_mean_ms);
  });
  const auto& result = ctx.run(runner);
  result.pivot("OWD (ms)", "control plane", {"T_setup mean (ms)"})
      .print(std::cout);
}

/// The same calibrated parity workload as bench e1's E1d (see the comment
/// there); E3d reads it through the latency lens.  Field names must match
/// check_bench.py's MODE_PARITY pins.
void parity_base(ExperimentConfig& config) {
  config.spec.hosts_per_domain = 2;
  config.spec.cache_capacity = 4096;
  config.spec.mapping_ttl_seconds = 86400;
  config.spec.seed = 42;
  config.traffic.sessions_per_second = 200;
  config.traffic.duration = sim::SimDuration::seconds(30);
  config.traffic.zipf_alpha = 0.9;
  config.traffic.aggregate_epoch = sim::SimDuration::millis(100);
  config.drain = sim::SimDuration::seconds(20);
}

void series_mode_parity(bench::BenchContext& ctx) {
  if (!ctx.enabled("E3d")) return;
  std::cout << "-- E3d: packet vs flow-aggregate parity on T_setup "
               "(warm caches, 200 f/s x 30s) --\n\n";
  SweepSpec spec;
  spec.named("E3d-parity")
      .base(parity_base)
      .axis(Axis::domains({8, 24, 64}))
      .axis(Axis::control_planes(
          "control plane",
          {ControlPlaneKind::kAltDrop, ControlPlaneKind::kAltQueue,
           ControlPlaneKind::kPce},
          {"alt-drop", "alt-queue", "pce"}))
      .axis(Axis::workload_modes());
  // Not ctx.maybe_quick(): the mode_parity guard's tolerances assume the
  // full 30 s arrival window (see E1d); the series costs only seconds.
  Runner runner(std::move(spec));
  runner.probe([](Experiment& experiment, const RunPoint&, Record& record) {
    const auto s = experiment.summary();
    record.set_int("sessions", s.sessions);
    record.set_percent("drop rate",
                       s.sessions ? static_cast<double>(s.miss_drops) /
                                        static_cast<double>(s.sessions)
                                  : 0.0,
                       4);
    record.set_real("t_setup mean (ms)", s.t_setup_mean_ms, 4);
    record.set_real("t_setup p99 (ms)", s.t_setup_p99_ms, 4);
    record.set_real("t_dns mean (ms)", s.t_dns_mean_ms, 4);
  });
  const auto& result = ctx.run(runner);
  result.table().print(std::cout);
  std::cout << "\n";
}

void series_scale(bench::BenchContext& ctx) {
  if (!ctx.enabled("E3e")) return;
  std::cout << "-- E3e: aggregate-engine setup latency at scale "
               "(20k f/s; unreachable in packet mode) --\n\n";
  SweepSpec spec;
  spec.named("E3e-scale")
      .base([](ExperimentConfig& config) {
        config.spec.workload_mode = workload::Mode::kAggregate;
        config.spec.hosts_per_domain = 2;
        config.spec.cache_capacity = 1024;
        config.spec.mapping_ttl_seconds = 60;
        config.spec.seed = 3;
        config.traffic.sessions_per_second = 20000;
        config.traffic.duration = sim::SimDuration::seconds(30);
        config.traffic.zipf_alpha = 0.9;
        config.traffic.aggregate_epoch = sim::SimDuration::millis(100);
        config.drain = sim::SimDuration::seconds(20);
      })
      .axis(Axis::domains({256, 1024, 4096}))
      .axis(Axis::control_planes(
          "control plane",
          {ControlPlaneKind::kAltDrop, ControlPlaneKind::kAltQueue,
           ControlPlaneKind::kPce},
          {"alt-drop", "alt-queue", "pce"}));
  ctx.maybe_quick(spec);
  Runner runner(std::move(spec));
  runner.probe([](Experiment& experiment, const RunPoint&, Record& record) {
    const auto s = experiment.summary();
    record.set_int("sessions", s.sessions);
    record.set_real("mean (ms)", s.t_setup_mean_ms);
    record.set_real("p50 (ms)", s.t_setup_p50_ms);
    record.set_real("p99 (ms)", s.t_setup_p99_ms);
  });
  const auto& result = ctx.run(runner);
  result
      .pivot("domains", "control plane",
             {"mean (ms)", "p50 (ms)", "p99 (ms)"})
      .print(std::cout);
}

}  // namespace
}  // namespace lispcp

int main(int argc, char** argv) {
  auto ctx = lispcp::bench::BenchContext("E3", lispcp::bench::parse_cli(argc, argv));
  lispcp::bench::print_header(
      "E3", "TCP connection-setup latency",
      "§1 formulas: T_setup = T_DNS + [T_map_resol] + 2·OWD(S,D) + OWD(D,S)");
  lispcp::series_formula(ctx);
  lispcp::series_cold_warm(ctx);
  lispcp::series_owd(ctx);
  lispcp::series_mode_parity(ctx);
  lispcp::series_scale(ctx);
  lispcp::bench::print_footer(
      "Shape check vs paper: plain-IP and PCE sit on the analytic formula "
      "(no T_map term); alt-queue adds one mapping RTT; alt-drop's mean is "
      "dragged by 3-second SYN retransmission timeouts (its p99 ~ 3s+), "
      "which is exactly the §1 argument for the new control plane.");
  ctx.finish();
  return 0;
}
