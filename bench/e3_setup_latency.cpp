// E3 — the §1 connection-setup formulas:
//   today      : T_setup = T_DNS + 2·OWD(S,D) + OWD(D,S)
//   vanilla LISP: T_setup = T_DNS + T_map_resol + 2·OWD(S,D) + OWD(D,S)
//   (and, when the first SYN is *dropped* rather than queued, T_map_resol
//    degenerates into a 3-second TCP retransmission timeout)
//
// Series E3a: measured T_setup against the analytic formula per control plane.
// Series E3b: cold vs warm cache.
// Series E3c: T_setup vs inter-domain OWD.
#include <iostream>

#include "bench_util.hpp"

namespace lispcp {
namespace {

using scenario::Axis;
using scenario::Experiment;
using scenario::ExperimentConfig;
using scenario::Record;
using scenario::Runner;
using scenario::RunPoint;
using scenario::SweepSpec;
using topo::ControlPlaneKind;

void make_cold(ExperimentConfig& config) {
  config.spec.cache_capacity = 2;  // nearly every flow misses
  config.spec.mapping_ttl_seconds = 5;
  config.traffic.zipf_alpha = 0.3;
}

void make_warm(ExperimentConfig& config) {
  config.spec.cache_capacity = 0;  // unlimited
  config.spec.mapping_ttl_seconds = 900;
  config.traffic.zipf_alpha = 1.2;
}

/// E3's slow-arrival workload on the canonical cold-resolution base (the
/// cache state is then an axis where the series sweeps it).
SweepSpec e3_base() {
  auto spec = SweepSpec::cold_resolution();
  spec.base([](ExperimentConfig& config) {
    config.spec.seed = 3;
    config.traffic.sessions_per_second = 10;
    config.traffic.duration = sim::SimDuration::seconds(40);
    config.drain = sim::SimDuration::seconds(60);
    make_cold(config);
  });
  return spec;
}

void setup_fields(Experiment& experiment, const RunPoint&, Record& record) {
  const auto s = experiment.summary();
  record.set_real("mean (ms)", s.t_setup_mean_ms);
  record.set_real("p99 (ms)", s.t_setup_p99_ms);
}

void series_formula(bench::BenchContext& ctx) {
  if (!ctx.enabled("E3a")) return;
  std::cout << "-- E3a: measured T_setup vs the paper's formula "
               "(OWD = 40.8 ms, cold caches) --\n\n";
  auto spec = e3_base().named("E3a").axis(Axis::control_planes(
      "control plane",
      {ControlPlaneKind::kPlainIp, ControlPlaneKind::kAltDrop,
       ControlPlaneKind::kAltQueue, ControlPlaneKind::kCons,
       ControlPlaneKind::kNerd, ControlPlaneKind::kPce}));
  ctx.maybe_quick(spec);
  Runner runner(std::move(spec));
  runner.probe([](Experiment& experiment, const RunPoint&, Record& record) {
    const auto s = experiment.summary();
    const double owd_ms = experiment.internet().owd(0, 1).ms();
    // Analytic formula with T_map = 0 (the "today" baseline the paper
    // compares against).
    record.set_real("T_DNS (ms)", s.t_dns_mean_ms);
    record.set_real("analytic T_setup (ms)", s.t_dns_mean_ms + 3.0 * owd_ms);
    record.set_real("measured mean (ms)", s.t_setup_mean_ms);
    record.set_real("p50 (ms)", s.t_setup_p50_ms);
    record.set_real("p99 (ms)", s.t_setup_p99_ms);
    record.set_int("retransmissions", s.syn_retransmissions);
  });
  const auto& result = ctx.run(runner);
  result.table().print(std::cout);
  std::cout << "\n";
}

void series_cold_warm(bench::BenchContext& ctx) {
  if (!ctx.enabled("E3b")) return;
  std::cout << "-- E3b: cold vs warm map-caches --\n\n";
  auto spec = e3_base()
                  .named("E3b")
                  .axis(Axis::control_planes(
                      "control plane",
                      {ControlPlaneKind::kAltDrop, ControlPlaneKind::kAltQueue,
                       ControlPlaneKind::kPce}))
                  .axis(Axis::labeled("cache state", {{"cold", make_cold},
                                                      {"warm", make_warm}}));
  ctx.maybe_quick(spec);
  Runner runner(std::move(spec));
  runner.probe(setup_fields);
  const auto& result = ctx.run(runner);
  result.pivot("control plane", "cache state", {"mean (ms)", "p99 (ms)"})
      .print(std::cout);
  std::cout << "\n";
}

void series_owd(bench::BenchContext& ctx) {
  if (!ctx.enabled("E3c")) return;
  std::cout << "-- E3c: mean T_setup vs inter-domain OWD (cold caches) --\n\n";
  auto spec = e3_base()
                  .named("E3c")
                  .axis(Axis::integers(
                      "OWD (ms)", {10, 40, 100, 150},
                      [](ExperimentConfig& config, std::uint64_t owd_ms) {
                        config.spec.core_link_delay =
                            sim::SimDuration::millis(static_cast<std::int64_t>(
                                owd_ms / 2));
                      }))
                  .axis(Axis::control_planes(
                      "control plane",
                      {ControlPlaneKind::kPlainIp, ControlPlaneKind::kAltDrop,
                       ControlPlaneKind::kAltQueue, ControlPlaneKind::kPce},
                      {"plain-ip", "alt-drop", "alt-queue", "pce"}));
  ctx.maybe_quick(spec);
  Runner runner(std::move(spec));
  runner.probe([](Experiment& experiment, const RunPoint&, Record& record) {
    record.set_real("T_setup mean (ms)", experiment.summary().t_setup_mean_ms);
  });
  const auto& result = ctx.run(runner);
  result.pivot("OWD (ms)", "control plane", {"T_setup mean (ms)"})
      .print(std::cout);
}

}  // namespace
}  // namespace lispcp

int main(int argc, char** argv) {
  auto ctx = lispcp::bench::BenchContext("E3", lispcp::bench::parse_cli(argc, argv));
  lispcp::bench::print_header(
      "E3", "TCP connection-setup latency",
      "§1 formulas: T_setup = T_DNS + [T_map_resol] + 2·OWD(S,D) + OWD(D,S)");
  lispcp::series_formula(ctx);
  lispcp::series_cold_warm(ctx);
  lispcp::series_owd(ctx);
  lispcp::bench::print_footer(
      "Shape check vs paper: plain-IP and PCE sit on the analytic formula "
      "(no T_map term); alt-queue adds one mapping RTT; alt-drop's mean is "
      "dragged by 3-second SYN retransmission timeouts (its p99 ~ 3s+), "
      "which is exactly the §1 argument for the new control plane.");
  ctx.finish();
  return 0;
}
