// E3 — the §1 connection-setup formulas:
//   today      : T_setup = T_DNS + 2·OWD(S,D) + OWD(D,S)
//   vanilla LISP: T_setup = T_DNS + T_map_resol + 2·OWD(S,D) + OWD(D,S)
//   (and, when the first SYN is *dropped* rather than queued, T_map_resol
//    degenerates into a 3-second TCP retransmission timeout)
//
// Series 1: measured T_setup against the analytic formula per control plane.
// Series 2: cold vs warm cache.
// Series 3: T_setup vs inter-domain OWD.
#include <iostream>

#include "bench_util.hpp"

namespace lispcp {
namespace {

using scenario::Experiment;
using scenario::ExperimentConfig;
using topo::ControlPlaneKind;
using topo::InternetSpec;

ExperimentConfig base_config(ControlPlaneKind kind, sim::SimDuration core_delay,
                             bool cold) {
  ExperimentConfig config;
  config.spec = InternetSpec::preset(kind);
  config.spec.domains = 12;
  config.spec.hosts_per_domain = 2;
  config.spec.providers_per_domain = 2;
  config.spec.core_link_delay = core_delay;
  if (cold) {
    config.spec.cache_capacity = 2;      // nearly every flow misses
    config.spec.mapping_ttl_seconds = 5;
  }
  config.spec.seed = 3;
  config.traffic.sessions_per_second = 10;
  config.traffic.duration = sim::SimDuration::seconds(40);
  config.traffic.zipf_alpha = cold ? 0.3 : 1.2;
  config.drain = sim::SimDuration::seconds(60);
  return config;
}

void series_formula() {
  std::cout << "-- E3a: measured T_setup vs the paper's formula "
               "(OWD = 40.8 ms, cold caches) --\n\n";
  metrics::Table table({"control plane", "T_DNS (ms)", "analytic T_setup (ms)",
                        "measured mean (ms)", "p50 (ms)", "p99 (ms)",
                        "retransmissions"});
  const std::vector<ControlPlaneKind> kinds = {
      ControlPlaneKind::kPlainIp, ControlPlaneKind::kAltDrop,
      ControlPlaneKind::kAltQueue, ControlPlaneKind::kCons,
      ControlPlaneKind::kNerd, ControlPlaneKind::kPce};
  for (auto kind : kinds) {
    Experiment experiment(
        base_config(kind, sim::SimDuration::millis(20), /*cold=*/true));
    const auto s = experiment.run();
    const double owd_ms = experiment.internet().owd(0, 1).ms();
    // Analytic formula with T_map = 0 (the "today" baseline the paper
    // compares against).
    const double analytic = s.t_dns_mean_ms + 3.0 * owd_ms;
    table.add_row({topo::to_string(kind), metrics::Table::num(s.t_dns_mean_ms),
                   metrics::Table::num(analytic),
                   metrics::Table::num(s.t_setup_mean_ms),
                   metrics::Table::num(s.t_setup_p50_ms),
                   metrics::Table::num(s.t_setup_p99_ms),
                   metrics::Table::integer(s.syn_retransmissions)});
  }
  table.print(std::cout);
  std::cout << "\n";
}

void series_cold_warm() {
  std::cout << "-- E3b: cold vs warm map-caches --\n\n";
  metrics::Table table({"control plane", "cold mean (ms)", "cold p99 (ms)",
                        "warm mean (ms)", "warm p99 (ms)"});
  for (auto kind :
       {ControlPlaneKind::kAltDrop, ControlPlaneKind::kAltQueue,
        ControlPlaneKind::kPce}) {
    const auto cold = Experiment(base_config(kind, sim::SimDuration::millis(20),
                                             /*cold=*/true))
                          .run();
    const auto warm = Experiment(base_config(kind, sim::SimDuration::millis(20),
                                             /*cold=*/false))
                          .run();
    table.add_row({topo::to_string(kind), metrics::Table::num(cold.t_setup_mean_ms),
                   metrics::Table::num(cold.t_setup_p99_ms),
                   metrics::Table::num(warm.t_setup_mean_ms),
                   metrics::Table::num(warm.t_setup_p99_ms)});
  }
  table.print(std::cout);
  std::cout << "\n";
}

void series_owd() {
  std::cout << "-- E3c: mean T_setup vs inter-domain OWD (cold caches) --\n\n";
  metrics::Table table({"OWD (ms)", "plain-ip", "alt-drop", "alt-queue", "pce"});
  for (int half_ms : {5, 20, 50, 75}) {
    std::vector<std::string> row{metrics::Table::integer(
        static_cast<std::uint64_t>(2 * half_ms))};
    for (auto kind : {ControlPlaneKind::kPlainIp, ControlPlaneKind::kAltDrop,
                      ControlPlaneKind::kAltQueue, ControlPlaneKind::kPce}) {
      const auto s = Experiment(base_config(kind,
                                            sim::SimDuration::millis(half_ms),
                                            /*cold=*/true))
                         .run();
      row.push_back(metrics::Table::num(s.t_setup_mean_ms));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace lispcp

int main() {
  lispcp::bench::print_header(
      "E3", "TCP connection-setup latency",
      "§1 formulas: T_setup = T_DNS + [T_map_resol] + 2·OWD(S,D) + OWD(D,S)");
  lispcp::series_formula();
  lispcp::series_cold_warm();
  lispcp::series_owd();
  lispcp::bench::print_footer(
      "Shape check vs paper: plain-IP and PCE sit on the analytic formula "
      "(no T_map term); alt-queue adds one mapping RTT; alt-drop's mean is "
      "dragged by 3-second SYN retransmission timeouts (its p99 ~ 3s+), "
      "which is exactly the §1 argument for the new control plane.");
  return 0;
}
