// A4 — failure recovery: the TE machinery as a repair mechanism.
//
// The paper's Step-7b design (every ITR holds every active flow's tuple;
// the PCE can re-push with fresh ingress/egress choices at any time) makes
// provider-link failover a pure control-plane action: no mapping is ever
// re-resolved.  This bench injects a provider-link outage into a loaded
// Fig. 1-style topology and compares:
//
//   no failure            the reference run
//   failure, no recovery  the outage blackholes the domain's primary egress
//   failure + controller  BFD-style detection (src/core/failover) drives
//                         IRC + locator-status + Step-7b re-push
//
// plus a detection-parameter sweep (hello interval x down threshold) and a
// repeated-outage soak (exponential MTBF/MTTR process).  All three series
// are declarative sweeps: the outage and the controller live in the
// config's FailurePlan, executed per point by scenario::FailureProbe —
// hello interval and down threshold are axes like any other knob.
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"

namespace lispcp {
namespace {

using scenario::Axis;
using scenario::Experiment;
using scenario::ExperimentConfig;
using scenario::FailurePlan;
using scenario::FailureProbe;
using scenario::Record;
using scenario::Runner;
using scenario::RunPoint;
using scenario::SweepSpec;
using topo::ControlPlaneKind;

SweepSpec a4_base() {
  SweepSpec spec;
  spec.base([](ExperimentConfig& config) {
    mapping::MappingSystemFactory::instance().apply_preset(
        ControlPlaneKind::kPce, config.spec);
    config.spec.domains = 6;
    config.spec.hosts_per_domain = 2;
    config.spec.providers_per_domain = 2;
    config.spec.te_policy = irc::TePolicy::kRoundRobin;
    config.spec.seed = 31;
    config.traffic.sessions_per_second = 40;
    config.traffic.duration = sim::SimDuration::seconds(40);
    config.drain = sim::SimDuration::seconds(20);
  });
  return spec;
}

core::LinkHealthConfig health(std::int64_t hello_ms, std::uint32_t threshold) {
  core::LinkHealthConfig config;
  config.hello_interval = sim::SimDuration::millis(hello_ms);
  config.reply_timeout = sim::SimDuration::millis(hello_ms / 2);
  config.down_threshold = threshold;
  return config;
}

/// The one-shot outage instant: t=15s on the full workload, clamped to half
/// the arrival window so --quick still fails the link mid-run.
void set_outage_time(ExperimentConfig& config) {
  config.failure.fail_at =
      sim::SimTime{} +
      std::min(sim::SimDuration::seconds(15), config.traffic.duration / 2);
}

void session_fields(Experiment& experiment, const RunPoint&, Record& record) {
  const auto s = experiment.summary();
  record.set_int("sessions", s.sessions);
  record.set_int("established", s.established);
  record.set_percent("est. rate",
                     s.sessions ? static_cast<double>(s.established) /
                                      static_cast<double>(s.sessions)
                                : 0.0);
}

void series_recovery_arms(bench::BenchContext& ctx) {
  if (!ctx.enabled("A4a")) return;
  std::cout << "\n-- A4a: recovery arms (one permanent provider-link failure "
               "at t=15s; --quick clamps it to half the arrival window) --\n";
  auto spec =
      a4_base()
          .named("A4a")
          .axis(Axis::labeled(
              "arm",
              {{"no failure", [](ExperimentConfig&) {}},
               {"failure, no recovery",
                [](ExperimentConfig& config) {
                  config.failure.mode = FailurePlan::Mode::kLinkOutage;
                }},
               {"failure + controller",
                [](ExperimentConfig& config) {
                  config.failure.mode = FailurePlan::Mode::kLinkOutage;
                  config.failure.arm_failover = true;
                  config.failure.health = health(300, 3);
                }}}))
          .tweak(set_outage_time);
  ctx.maybe_quick(spec);
  Runner runner(std::move(spec));
  runner.probe(session_fields);
  runner.probe_factory(FailureProbe::make);
  ctx.run(runner)
      .table()
      .print(std::cout);
}

void series_detection(bench::BenchContext& ctx) {
  if (!ctx.enabled("A4b")) return;
  std::cout << "\n-- A4b: detection sweep (hello interval x down threshold) "
               "--\n";
  auto spec =
      a4_base()
          .named("A4b")
          .base([](ExperimentConfig& config) {
            config.failure.mode = FailurePlan::Mode::kLinkOutage;
            config.failure.arm_failover = true;
          })
          .axis(Axis::integers("hello ms", {100, 300, 1000},
                               [](ExperimentConfig& config, std::uint64_t v) {
                                 config.failure.health = health(
                                     static_cast<std::int64_t>(v),
                                     config.failure.health.down_threshold);
                               }))
          .axis(Axis::integers(
              "threshold", {2, 3, 5},
              [](ExperimentConfig& config, std::uint64_t v) {
                config.failure.health.down_threshold =
                    static_cast<std::uint32_t>(v);
              }))
          .tweak(set_outage_time);
  ctx.maybe_quick(spec);
  Runner runner(std::move(spec));
  runner.probe(session_fields);
  runner.probe_factory(FailureProbe::make);
  ctx.run(runner)
      .table()
      .print(std::cout);
}

void series_soak(bench::BenchContext& ctx) {
  if (!ctx.enabled("A4c")) return;
  std::cout << "\n-- A4c: repeated-outage soak (MTBF 10s / MTTR 3s on the "
               "primary link) --\n";
  auto spec =
      a4_base()
          .named("A4c")
          .base([](ExperimentConfig& config) {
            config.failure.mode = FailurePlan::Mode::kRandomOutages;
            config.failure.mtbf = sim::SimDuration::seconds(10);
            config.failure.mttr = sim::SimDuration::seconds(3);
            config.failure.process_seed = 77;
          })
          .axis(Axis::labeled(
              "arm", {{"no recovery", [](ExperimentConfig&) {}},
                      {"controller",
                       [](ExperimentConfig& config) {
                         config.failure.arm_failover = true;
                         config.failure.health = health(300, 3);
                       }}}))
          .tweak([](ExperimentConfig& config) {
            // The renewal process runs over the arrival window (t=40s on
            // the full workload), scaling down with --quick.
            config.failure.until = sim::SimTime{} + config.traffic.duration;
          });
  ctx.maybe_quick(spec);
  Runner runner(std::move(spec));
  runner.probe(session_fields);
  runner.probe_factory(FailureProbe::make);
  ctx.run(runner)
      .table()
      .print(std::cout);
}

}  // namespace
}  // namespace lispcp

int main(int argc, char** argv) {
  auto ctx = lispcp::bench::BenchContext("A4", lispcp::bench::parse_cli(argc, argv));
  lispcp::bench::print_header(
      "A4", "failure recovery through Step-7b re-push",
      "claim (iii) machinery as a repair path: dynamic mapping management "
      "moves traffic off a failed provider link with no re-resolution");
  lispcp::series_recovery_arms(ctx);
  lispcp::series_detection(ctx);
  lispcp::series_soak(ctx);
  lispcp::bench::print_footer(
      "Shape check: without recovery the outage blackholes the domain "
      "(established rate collapses, link-down drops pile up); with the "
      "controller the loss is confined to the detection window, measured "
      "detection stays under the analytic bound, and tighter hellos buy "
      "faster detection at proportional hello overhead.");
  ctx.finish();
  return 0;
}
