// A4 — failure recovery: the TE machinery as a repair mechanism.
//
// The paper's Step-7b design (every ITR holds every active flow's tuple;
// the PCE can re-push with fresh ingress/egress choices at any time) makes
// provider-link failover a pure control-plane action: no mapping is ever
// re-resolved.  This bench injects a provider-link outage into a loaded
// Fig. 1-style topology and compares:
//
//   no failure            the reference run
//   failure, no recovery  the outage blackholes the domain's primary egress
//   failure + controller  BFD-style detection (src/core/failover) drives
//                         IRC + locator-status + Step-7b re-push
//
// plus a detection-parameter sweep (hello interval x down threshold) and a
// repeated-outage soak (exponential MTBF/MTTR process) to show the
// detection-latency / hello-overhead trade-off.
#include <iostream>

#include "bench_util.hpp"
#include "sim/failure.hpp"

namespace lispcp {
namespace {

using scenario::Experiment;
using scenario::ExperimentConfig;
using topo::ControlPlaneKind;

ExperimentConfig base_config() {
  ExperimentConfig config;
  config.spec = topo::InternetSpec::preset(ControlPlaneKind::kPce);
  config.spec.domains = 6;
  config.spec.hosts_per_domain = 2;
  config.spec.providers_per_domain = 2;
  config.spec.te_policy = irc::TePolicy::kRoundRobin;
  config.spec.seed = 31;
  config.traffic.sessions_per_second = 40;
  config.traffic.duration = sim::SimDuration::seconds(40);
  config.drain = sim::SimDuration::seconds(20);
  return config;
}

core::LinkHealthConfig health(std::int64_t hello_ms, std::uint32_t threshold) {
  core::LinkHealthConfig config;
  config.hello_interval = sim::SimDuration::millis(hello_ms);
  config.reply_timeout = sim::SimDuration::millis(hello_ms / 2);
  config.down_threshold = threshold;
  return config;
}

constexpr auto kFailAt = sim::SimTime::from_ns(15'000'000'000);

void recovery_arms() {
  metrics::Table table({"arm", "sessions", "established", "est. rate",
                        "link-down drops", "flows re-pushed",
                        "detect latency ms"});

  {
    Experiment reference(base_config());
    const auto summary = reference.run();
    table.add_row({"no failure", metrics::Table::integer(summary.sessions),
                   metrics::Table::integer(summary.established),
                   metrics::Table::percent(
                       static_cast<double>(summary.established) /
                       static_cast<double>(summary.sessions)),
                   metrics::Table::integer(
                       reference.internet().network().counters().drops_link_down),
                   "-", "-"});
  }
  {
    Experiment unprotected(base_config());
    sim::FailureSchedule failures(unprotected.internet().network());
    failures.link_outage(*unprotected.internet().domain(0).provider_links[0],
                         kFailAt);
    const auto summary = unprotected.run();
    table.add_row({"failure, no recovery",
                   metrics::Table::integer(summary.sessions),
                   metrics::Table::integer(summary.established),
                   metrics::Table::percent(
                       static_cast<double>(summary.established) /
                       static_cast<double>(summary.sessions)),
                   metrics::Table::integer(unprotected.internet()
                                               .network()
                                               .counters()
                                               .drops_link_down),
                   "-", "-"});
  }
  {
    Experiment protected_arm(base_config());
    auto& controller =
        protected_arm.internet().arm_failover(0, health(300, 3));
    sim::FailureSchedule failures(protected_arm.internet().network());
    failures.link_outage(*protected_arm.internet().domain(0).provider_links[0],
                         kFailAt);
    const auto summary = protected_arm.run();
    const double detect_ms =
        (controller.monitor(0).last_transition_at() - kFailAt).ms();
    table.add_row({"failure + controller",
                   metrics::Table::integer(summary.sessions),
                   metrics::Table::integer(summary.established),
                   metrics::Table::percent(
                       static_cast<double>(summary.established) /
                       static_cast<double>(summary.sessions)),
                   metrics::Table::integer(protected_arm.internet()
                                               .network()
                                               .counters()
                                               .drops_link_down),
                   metrics::Table::integer(controller.stats().flows_repushed),
                   metrics::Table::num(detect_ms, 1)});
  }
  table.print(std::cout);
}

void detection_sweep() {
  metrics::Table table({"hello ms", "threshold", "bound ms", "measured ms",
                        "hellos sent", "est. rate"});
  for (const std::int64_t hello_ms : {100, 300, 1000}) {
    for (const std::uint32_t threshold : {2u, 3u, 5u}) {
      Experiment experiment(base_config());
      auto& controller =
          experiment.internet().arm_failover(0, health(hello_ms, threshold));
      sim::FailureSchedule failures(experiment.internet().network());
      failures.link_outage(
          *experiment.internet().domain(0).provider_links[0], kFailAt);
      const auto summary = experiment.run();
      const double bound_ms = static_cast<double>(hello_ms) * threshold +
                              static_cast<double>(hello_ms) / 2.0 +
                              static_cast<double>(hello_ms);
      const double measured_ms =
          (controller.monitor(0).last_transition_at() - kFailAt).ms();
      std::uint64_t hellos = 0;
      for (std::size_t i = 0; i < controller.monitor_count(); ++i) {
        hellos += controller.monitor(i).stats().hellos_sent;
      }
      table.add_row({metrics::Table::integer(hello_ms),
                     metrics::Table::integer(threshold),
                     metrics::Table::num(bound_ms, 0),
                     metrics::Table::num(measured_ms, 1),
                     metrics::Table::integer(hellos),
                     metrics::Table::percent(
                         static_cast<double>(summary.established) /
                         static_cast<double>(summary.sessions))});
    }
  }
  table.print(std::cout);
}

void outage_soak() {
  metrics::Table table({"arm", "outages", "sessions", "established",
                        "est. rate"});
  for (const bool with_controller : {false, true}) {
    Experiment experiment(base_config());
    if (with_controller) {
      experiment.internet().arm_failover(0, health(300, 3));
    }
    sim::FailureSchedule failures(experiment.internet().network());
    failures.random_outages(*experiment.internet().domain(0).provider_links[0],
                            sim::SimTime::from_ns(40'000'000'000),
                            /*mtbf=*/sim::SimDuration::seconds(10),
                            /*mttr=*/sim::SimDuration::seconds(3),
                            sim::Rng(77));
    const auto summary = experiment.run();
    table.add_row({with_controller ? "controller" : "no recovery",
                   metrics::Table::integer(failures.outages_injected()),
                   metrics::Table::integer(summary.sessions),
                   metrics::Table::integer(summary.established),
                   metrics::Table::percent(
                       static_cast<double>(summary.established) /
                       static_cast<double>(summary.sessions))});
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace lispcp

int main() {
  lispcp::bench::print_header(
      "A4", "failure recovery through Step-7b re-push",
      "claim (iii) machinery as a repair path: dynamic mapping management "
      "moves traffic off a failed provider link with no re-resolution");
  std::cout << "\n-- Recovery arms (one permanent provider-link failure at "
               "t=15s) --\n";
  lispcp::recovery_arms();
  std::cout << "\n-- Detection sweep (hello interval x down threshold) --\n";
  lispcp::detection_sweep();
  std::cout << "\n-- Repeated-outage soak (MTBF 10s / MTTR 3s on the primary "
               "link) --\n";
  lispcp::outage_soak();
  lispcp::bench::print_footer(
      "Shape check: without recovery the outage blackholes the domain "
      "(established rate collapses, link-down drops pile up); with the "
      "controller the loss is confined to the detection window, measured "
      "detection stays under the analytic bound, and tighter hellos buy "
      "faster detection at proportional hello overhead.");
  return 0;
}
