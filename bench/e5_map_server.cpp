// E5 — the deployed alternative: Map-Server / Map-Resolver (draft-lisp-ms)
// against the paper's comparison set.
//
// The paper names ALT, CONS and NERD as "the current proposals" for the
// LISP control plane; the MS/MR architecture was the fourth — and the one
// the LISP community eventually standardized.  This bench extends the E1/E2
// comparison with it: same workload and topology, every control plane in
// the registry's comparison set, plus MS-specific tables (proxy vs
// non-proxy resolution, shard balance, the standing registration-refresh
// overhead that push/pull hybrids pay even when nobody sends traffic, and
// the replicated Map-Resolver tier's latency/load scaling).
#include <iostream>

#include "bench_util.hpp"

namespace lispcp {
namespace {

using scenario::Experiment;
using scenario::ExperimentConfig;
using topo::ControlPlaneKind;

ExperimentConfig base_config(ControlPlaneKind kind) {
  ExperimentConfig config;
  config.spec = topo::InternetSpec::preset(kind);
  config.spec.domains = 16;
  config.spec.hosts_per_domain = 2;
  config.spec.providers_per_domain = 2;
  config.spec.cache_capacity = 8;
  config.spec.mapping_ttl_seconds = 60;
  config.spec.seed = 8;
  config.traffic.sessions_per_second = 30;
  config.traffic.duration = sim::SimDuration::seconds(30);
  config.drain = sim::SimDuration::seconds(30);
  return config;
}

void comparison() {
  metrics::Table table({"control plane", "miss events", "drops",
                        "T_setup mean (ms)", "T_setup p95 (ms)",
                        "T_setup p99 (ms)"});
  for (const auto kind : bench::compared_control_planes()) {
    Experiment experiment(base_config(kind));
    const auto s = experiment.run();
    table.add_row({topo::to_string(kind), metrics::Table::integer(s.miss_events),
                   metrics::Table::integer(s.miss_drops),
                   metrics::Table::num(s.t_setup_mean_ms),
                   metrics::Table::num(s.t_setup_p95_ms),
                   metrics::Table::num(s.t_setup_p99_ms)});
  }
  table.print(std::cout);
}

void proxy_ablation() {
  metrics::Table table({"mode", "miss events", "forwards", "proxy replies",
                        "T_setup p95 (ms)", "T_setup p99 (ms)"});
  for (const bool proxy : {false, true}) {
    auto config = base_config(ControlPlaneKind::kMapServer);
    config.spec.ms_proxy_reply = proxy;
    Experiment experiment(config);
    const auto s = experiment.run();
    std::uint64_t forwards = 0, proxied = 0;
    for (auto* ms : experiment.internet().map_servers()) {
      forwards += ms->stats().requests_forwarded;
      proxied += ms->stats().proxy_replies;
    }
    table.add_row({proxy ? "proxy reply" : "forward to ETR",
                   metrics::Table::integer(s.miss_events),
                   metrics::Table::integer(forwards),
                   metrics::Table::integer(proxied),
                   metrics::Table::num(s.t_setup_p95_ms),
                   metrics::Table::num(s.t_setup_p99_ms)});
  }
  table.print(std::cout);
}

void shard_and_overhead() {
  metrics::Table table({"map servers", "regs/shard (max)", "registers rx",
                        "requests rx (max shard)", "register msgs/site/min"});
  for (const std::size_t shards : {1u, 2u, 4u}) {
    auto config = base_config(ControlPlaneKind::kMapServer);
    config.spec.map_server_count = shards;
    Experiment experiment(config);
    experiment.run();
    std::size_t max_regs = 0;
    std::uint64_t total_registers = 0, max_requests = 0;
    for (auto* ms : experiment.internet().map_servers()) {
      max_regs = std::max(max_regs, ms->registration_count());
      total_registers += ms->stats().registers_received;
      max_requests = std::max<std::uint64_t>(max_requests,
                                             ms->stats().requests_received);
    }
    // 60 s simulated minutes with a 60 s refresh interval -> ~1/site/min.
    const double per_site_per_min =
        static_cast<double>(total_registers) /
        static_cast<double>(experiment.internet().domains().size()) / 1.0;
    table.add_row({metrics::Table::integer(shards),
                   metrics::Table::integer(max_regs),
                   metrics::Table::integer(total_registers),
                   metrics::Table::integer(max_requests),
                   metrics::Table::num(per_site_per_min, 1)});
  }
  table.print(std::cout);
}

void replica_tier() {
  // The replicated-resolver tier (mapping::ReplicatedResolverSystem): how
  // mean resolution latency and per-replica load behave as the resolver
  // front end replicates out toward the sites.  Queue-at-ITR policy and
  // all-to-all traffic so the front-end hop is measurable everywhere.
  metrics::Table table({"MR replicas", "resolutions", "T_resol mean (ms)",
                        "hottest MR (reqs)", "hottest MR share"});
  for (const std::size_t replicas : {1u, 2u, 4u, 8u}) {
    auto config = base_config(ControlPlaneKind::kMsReplicated);
    config.spec.miss_policy = lisp::MissPolicy::kQueue;
    config.spec.ms_replica_count = replicas;
    config.mode = scenario::TrafficMode::kAllToAll;
    config.traffic.sessions_per_second = 40;
    Experiment experiment(config);
    experiment.run();
    const auto queue = experiment.internet().merged_queue_delay();
    std::uint64_t total = 0, hottest = 0;
    for (auto* mr : experiment.internet().map_resolvers()) {
      total += mr->stats().requests_received;
      hottest = std::max<std::uint64_t>(hottest, mr->stats().requests_received);
    }
    // Report what was actually built (the system clamps replicas to the
    // domain count), never the requested knob.
    table.add_row({metrics::Table::integer(
                       experiment.internet().map_resolvers().size()),
                   metrics::Table::integer(queue.count()),
                   metrics::Table::num(queue.mean() / 1000.0),
                   metrics::Table::integer(hottest),
                   metrics::Table::percent(
                       total ? static_cast<double>(hottest) /
                                   static_cast<double>(total)
                             : 0.0)});
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace lispcp

int main() {
  lispcp::bench::print_header(
      "E5", "Map-Server/Map-Resolver vs the paper's comparison set",
      "§1 \"current proposals for its control plane (e.g., ALT, CONS, "
      "NERD)\" — plus the one that shipped (draft-lisp-ms)");
  std::cout << "\n-- The registered control planes, identical workload --\n";
  lispcp::comparison();
  std::cout << "\n-- MS proxy-reply ablation --\n";
  lispcp::proxy_ablation();
  std::cout << "\n-- Sharding and standing registration overhead --\n";
  lispcp::shard_and_overhead();
  std::cout << "\n-- Replicated Map-Resolver tier (nearest-replica pull) --\n";
  lispcp::replica_tier();
  lispcp::bench::print_footer(
      "Shape check: MS/MR sits between ALT (no dedicated servers, full "
      "overlay traversal) and NERD (no misses, full database): it still "
      "drops first packets on cold flows but resolves in fewer control "
      "hops; proxy replies shave the ETR hop off the tail; registrations "
      "shard evenly and cost a constant per-site refresh stream that the "
      "PCE control plane does not pay.");
  return 0;
}
