// E5 — the deployed alternative: Map-Server / Map-Resolver (draft-lisp-ms)
// against the paper's comparison set.
//
// The paper names ALT, CONS and NERD as "the current proposals" for the
// LISP control plane; the MS/MR architecture was the fourth — and the one
// the LISP community eventually standardized.  This bench extends the E1/E2
// comparison with it: same workload and topology, every control plane in
// the registry's comparison set, plus MS-specific tables (proxy vs
// non-proxy resolution, shard balance, the standing registration-refresh
// overhead that push/pull hybrids pay even when nobody sends traffic, and
// the replicated Map-Resolver tier's latency/load scaling).
#include <iostream>

#include "bench_util.hpp"

namespace lispcp {
namespace {

using scenario::Axis;
using scenario::Experiment;
using scenario::ExperimentConfig;
using scenario::Record;
using scenario::Runner;
using scenario::RunPoint;
using scenario::SweepSpec;
using topo::ControlPlaneKind;

/// E5 runs the canonical steady-state base verbatim (it is E5's old
/// hand-rolled config, promoted to the shared preset).
SweepSpec e5_base() { return SweepSpec::steady_state(); }

/// Steady-state base pinned to one control plane (the MS-specific series).
SweepSpec e5_fixed_plane(ControlPlaneKind kind) {
  auto spec = e5_base();
  spec.base([kind](ExperimentConfig& config) {
    mapping::MappingSystemFactory::instance().apply_preset(kind, config.spec);
  });
  return spec;
}

void comparison(bench::BenchContext& ctx) {
  if (!ctx.enabled("E5a")) return;
  std::cout << "\n-- The registered control planes, identical workload --\n";
  auto spec = e5_base().named("E5a").axis(Axis::control_planes());
  ctx.maybe_quick(spec);
  Runner runner(std::move(spec));
  runner.probe([](Experiment& experiment, const RunPoint&, Record& record) {
    const auto s = experiment.summary();
    record.set_int("miss events", s.miss_events);
    record.set_int("drops", s.miss_drops);
    record.set_real("T_setup mean (ms)", s.t_setup_mean_ms);
    record.set_real("T_setup p95 (ms)", s.t_setup_p95_ms);
    record.set_real("T_setup p99 (ms)", s.t_setup_p99_ms);
  });
  ctx.run(runner).table().print(std::cout);
}

void proxy_ablation(bench::BenchContext& ctx) {
  if (!ctx.enabled("E5b")) return;
  std::cout << "\n-- MS proxy-reply ablation --\n";
  auto spec = e5_fixed_plane(ControlPlaneKind::kMapServer)
                  .named("E5b")
                  .axis(Axis::labeled(
                      "mode",
                      {{"forward to ETR",
                        [](ExperimentConfig& config) {
                          config.spec.ms_proxy_reply = false;
                        }},
                       {"proxy reply", [](ExperimentConfig& config) {
                          config.spec.ms_proxy_reply = true;
                        }}}));
  ctx.maybe_quick(spec);
  Runner runner(std::move(spec));
  runner.probe([](Experiment& experiment, const RunPoint&, Record& record) {
    const auto s = experiment.summary();
    std::uint64_t forwards = 0, proxied = 0;
    for (auto* ms : experiment.internet().map_servers()) {
      forwards += ms->stats().requests_forwarded;
      proxied += ms->stats().proxy_replies;
    }
    record.set_int("miss events", s.miss_events);
    record.set_int("forwards", forwards);
    record.set_int("proxy replies", proxied);
    record.set_real("T_setup p95 (ms)", s.t_setup_p95_ms);
    record.set_real("T_setup p99 (ms)", s.t_setup_p99_ms);
  });
  ctx.run(runner).table().print(std::cout);
}

void shard_and_overhead(bench::BenchContext& ctx) {
  if (!ctx.enabled("E5c")) return;
  std::cout << "\n-- Sharding and standing registration overhead --\n";
  auto spec = e5_fixed_plane(ControlPlaneKind::kMapServer)
                  .named("E5c")
                  .axis(Axis::integers(
                      "map servers", {1, 2, 4},
                      [](ExperimentConfig& config, std::uint64_t shards) {
                        config.spec.map_server_count = shards;
                      }));
  ctx.maybe_quick(spec);
  Runner runner(std::move(spec));
  runner.probe([](Experiment& experiment, const RunPoint& point, Record& record) {
    std::size_t max_regs = 0;
    std::uint64_t total_registers = 0, max_requests = 0;
    for (auto* ms : experiment.internet().map_servers()) {
      max_regs = std::max(max_regs, ms->registration_count());
      total_registers += ms->stats().registers_received;
      max_requests = std::max<std::uint64_t>(max_requests,
                                             ms->stats().requests_received);
    }
    // Rate over the simulated horizon (arrival window + drain).  The full
    // run (60 s horizon, 60 s refresh interval) shows ~1 register/site/min.
    // Short --quick horizons are dominated by the one-time initial
    // registration burst, so their absolute rate is higher; it is still
    // comparable across commits, which is what the CI trajectory needs.
    const double minutes =
        (point.config.traffic.duration + point.config.drain) /
        sim::SimDuration::seconds(60);
    const double per_site_per_min =
        static_cast<double>(total_registers) /
        static_cast<double>(experiment.internet().domains().size()) / minutes;
    record.set_int("regs/shard (max)", max_regs);
    record.set_int("registers rx", total_registers);
    record.set_int("requests rx (max shard)", max_requests);
    record.set_real("register msgs/site/min", per_site_per_min, 1);
  });
  ctx.run(runner).table().print(std::cout);
}

void replica_tier(bench::BenchContext& ctx) {
  if (!ctx.enabled("E5d")) return;
  std::cout << "\n-- Replicated Map-Resolver tier (nearest-replica pull) --\n";
  // The replicated-resolver tier (mapping::ReplicatedResolverSystem): how
  // mean resolution latency and per-replica load behave as the resolver
  // front end replicates out toward the sites.  Queue-at-ITR policy and
  // all-to-all traffic so the front-end hop is measurable everywhere.
  auto spec = e5_fixed_plane(ControlPlaneKind::kMsReplicated)
                  .named("E5d")
                  .base([](ExperimentConfig& config) {
                    config.spec.miss_policy = lisp::MissPolicy::kQueue;
                    config.mode = scenario::TrafficMode::kAllToAll;
                    config.traffic.sessions_per_second = 40;
                  })
                  .axis(Axis::integers(
                      "MR replicas", {1, 2, 4, 8},
                      [](ExperimentConfig& config, std::uint64_t replicas) {
                        config.spec.ms_replica_count = replicas;
                      }));
  ctx.maybe_quick(spec);
  Runner runner(std::move(spec));
  runner.probe([](Experiment& experiment, const RunPoint&, Record& record) {
    const auto queue = experiment.internet().merged_queue_delay();
    std::uint64_t total = 0, hottest = 0;
    for (auto* mr : experiment.internet().map_resolvers()) {
      total += mr->stats().requests_received;
      hottest = std::max<std::uint64_t>(hottest, mr->stats().requests_received);
    }
    // Report what was actually built (the system clamps replicas to the
    // domain count), never the requested knob: overwrite the axis field.
    record.set_int("MR replicas",
                   experiment.internet().map_resolvers().size());
    record.set_int("resolutions", queue.count());
    record.set_real("T_resol mean (ms)", queue.mean() / 1000.0);
    record.set_int("hottest MR (reqs)", hottest);
    record.set_percent("hottest MR share",
                       total ? static_cast<double>(hottest) /
                                   static_cast<double>(total)
                             : 0.0);
  });
  ctx.run(runner).table().print(std::cout);
}

}  // namespace
}  // namespace lispcp

int main(int argc, char** argv) {
  auto ctx = lispcp::bench::BenchContext("E5", lispcp::bench::parse_cli(argc, argv));
  lispcp::bench::print_header(
      "E5", "Map-Server/Map-Resolver vs the paper's comparison set",
      "§1 \"current proposals for its control plane (e.g., ALT, CONS, "
      "NERD)\" — plus the one that shipped (draft-lisp-ms)");
  lispcp::comparison(ctx);
  lispcp::proxy_ablation(ctx);
  lispcp::shard_and_overhead(ctx);
  lispcp::replica_tier(ctx);
  lispcp::bench::print_footer(
      "Shape check: MS/MR sits between ALT (no dedicated servers, full "
      "overlay traversal) and NERD (no misses, full database): it still "
      "drops first packets on cold flows but resolves in fewer control "
      "hops; proxy replies shave the ETR hop off the tail; registrations "
      "shard evenly and cost a constant per-site refresh stream that the "
      "PCE control plane does not pay.");
  ctx.finish();
  return 0;
}
