// E1 — claim (i): packets are neither dropped nor queued during mapping
// resolution under the PCE control plane, unlike the pull baselines and the
// palliatives the paper criticises.
//
// Series E1a: first-packet outcome per control plane at a fixed workload.
// Series E1b: drop rate vs map-cache capacity (ALT-drop) vs PCE.
// Series E1c: drop rate vs destination-popularity skew (Zipf alpha).
// Series E1d: packet vs flow-aggregate engine parity (the mode_parity guard).
// Series E1e: aggregate-only scale series (thousands of sites, 10^5+ flows).
//
// Declarative sweeps throughout: each series is a SweepSpec + probes; run
// with --jobs N for parallel points, --json/--csv for machine-readable
// output (see bench_util.hpp).
#include <iostream>

#include "bench_util.hpp"

namespace lispcp {
namespace {

using scenario::Axis;
using scenario::Experiment;
using scenario::ExperimentConfig;
using scenario::Record;
using scenario::Runner;
using scenario::RunPoint;
using scenario::SweepSpec;
using topo::ControlPlaneKind;

/// E1's workload on top of the canonical steady-state base: more sites, a
/// hotter arrival process, and a longer drain for the 3 s retransmission
/// timeouts to play out.
SweepSpec e1_base() {
  auto spec = SweepSpec::steady_state();
  spec.base([](ExperimentConfig& config) {
    config.spec.domains = 24;
    config.spec.cache_capacity = 8;  // small cache: misses matter
    config.spec.seed = 1;
    config.traffic.sessions_per_second = 40;
    config.traffic.zipf_alpha = 0.9;
    config.drain = sim::SimDuration::seconds(60);
  });
  return spec;
}

void drop_fields(Experiment& experiment, const RunPoint&, Record& record) {
  const auto s = experiment.summary();
  record.set_int("drops", s.miss_drops);
  record.set_int("affected", s.sessions_with_retransmission);
}

void series_control_planes(bench::BenchContext& ctx) {
  if (!ctx.enabled("E1a")) return;
  std::cout << "-- E1a: first-packet outcome by control plane "
               "(24 sites, cache=8 entries, ttl=60s, zipf 0.9, 40 f/s) --\n\n";
  auto spec = e1_base().named("E1a").axis(Axis::control_planes());
  ctx.maybe_quick(spec);
  Runner runner(std::move(spec));
  runner.probe([](Experiment& experiment, const RunPoint&, Record& record) {
    const auto s = experiment.summary();
    std::uint64_t queued = 0;
    for (auto& dom : experiment.internet().domains()) {
      for (auto* xtr : dom.xtrs) queued += xtr->stats().miss_queued;
    }
    const auto queue_delay = experiment.internet().merged_queue_delay();
    record.set_int("sessions", s.sessions);
    record.set_int("miss events", s.miss_events);
    record.set_int("drops", s.miss_drops);
    record.set_percent(
        "drop rate",
        s.sessions ? static_cast<double>(s.miss_drops) /
                         static_cast<double>(s.encapsulated + s.miss_drops + 1)
                   : 0.0);
    record.set_int("affected flows", s.sessions_with_retransmission);
    record.set_int("queued", queued);
    record.set_real("queue p95 (ms)", queue_delay.p95() / 1000.0);
    record.set_int("established", s.established);
  });
  const auto& result = ctx.run(runner);
  result.table().print(std::cout);
  std::cout << "\n";
}

void series_cache_capacity(bench::BenchContext& ctx) {
  if (!ctx.enabled("E1b")) return;
  std::cout << "-- E1b: drops vs ITR map-cache capacity (ALT-drop vs PCE) --\n\n";
  auto spec =
      e1_base()
          .named("E1b")
          .axis(Axis::integers(
              "cache entries", {2, 4, 8, 16, 32, 64},
              [](ExperimentConfig& config, std::uint64_t capacity) {
                config.spec.cache_capacity = capacity;
              }))
          .axis(Axis::control_planes(
              "control plane", {ControlPlaneKind::kAltDrop, ControlPlaneKind::kPce},
              {"alt-drop", "pce"}));
  ctx.maybe_quick(spec);
  Runner runner(std::move(spec));
  runner.probe(drop_fields);
  const auto& result = ctx.run(runner);
  result.pivot("cache entries", "control plane", {"drops", "affected"})
      .print(std::cout);
  std::cout << "\n";
}

void series_zipf(bench::BenchContext& ctx) {
  if (!ctx.enabled("E1c")) return;
  std::cout << "-- E1c: drops vs destination popularity skew (cache=8) --\n\n";
  auto spec =
      e1_base()
          .named("E1c")
          .axis(Axis::reals(
              "zipf alpha", {0.6, 0.8, 1.0, 1.2},
              [](ExperimentConfig& config, double alpha) {
                config.traffic.zipf_alpha = alpha;
              },
              /*precision=*/1))
          .axis(Axis::control_planes(
              "control plane", {ControlPlaneKind::kAltDrop, ControlPlaneKind::kPce},
              {"alt-drop", "pce"}));
  ctx.maybe_quick(spec);
  Runner runner(std::move(spec));
  runner.probe([](Experiment& experiment, const RunPoint& point, Record& record) {
    const auto s = experiment.summary();
    record.set_int("drops", s.miss_drops);
    // The paper's figure only breaks out affected sessions for the drop
    // baseline; the pivot omits the column for planes that never set it.
    if (point.config.spec.kind == ControlPlaneKind::kAltDrop) {
      record.set_int("drop sessions", s.sessions_with_retransmission);
    }
  });
  const auto& result = ctx.run(runner);
  result.pivot("zipf alpha", "control plane", {"drops", "drop sessions"})
      .print(std::cout);
}

/// The calibrated cross-mode parity workload shared by E1d and E3d: warm
/// caches (one cold resolution per name/prefix, then steady state) and an
/// uncongested arrival process, so every pinned metric is governed by the
/// session model rather than by packet-level congestion the aggregate
/// engine deliberately does not reproduce.  check_bench.py's mode_parity
/// guard pairs the packet/aggregate points of any series whose name
/// contains "parity" and enforces the 2% tolerance — keep the field names
/// below in sync with MODE_PARITY pins there.
void parity_base(scenario::ExperimentConfig& config) {
  config.spec.hosts_per_domain = 2;
  config.spec.cache_capacity = 4096;
  config.spec.mapping_ttl_seconds = 86400;
  config.spec.seed = 42;
  config.traffic.sessions_per_second = 200;
  config.traffic.duration = sim::SimDuration::seconds(30);
  config.traffic.zipf_alpha = 0.9;
  config.traffic.aggregate_epoch = sim::SimDuration::millis(100);
  config.drain = sim::SimDuration::seconds(20);
}

void parity_fields(Experiment& experiment, const RunPoint&, Record& record) {
  const auto s = experiment.summary();
  record.set_int("sessions", s.sessions);
  record.set_percent("drop rate",
                     s.sessions ? static_cast<double>(s.miss_drops) /
                                      static_cast<double>(s.sessions)
                                : 0.0,
                     4);
  record.set_real("t_setup mean (ms)", s.t_setup_mean_ms, 4);
  record.set_real("t_setup p99 (ms)", s.t_setup_p99_ms, 4);
  record.set_real("t_dns mean (ms)", s.t_dns_mean_ms, 4);
}

void series_mode_parity(bench::BenchContext& ctx) {
  if (!ctx.enabled("E1d")) return;
  std::cout << "-- E1d: packet vs flow-aggregate parity "
               "(cache=4096, mapping ttl=24h, 200 f/s x 30s) --\n\n";
  scenario::SweepSpec spec;
  spec.named("E1d-parity")
      .base(parity_base)
      .axis(Axis::domains({8, 24, 64}))
      .axis(Axis::control_planes(
          "control plane",
          {ControlPlaneKind::kAltDrop, ControlPlaneKind::kAltQueue,
           ControlPlaneKind::kPce},
          {"alt-drop", "alt-queue", "pce"}))
      .axis(Axis::workload_modes());
  // Deliberately not ctx.maybe_quick(): the guard's tolerances are
  // calibrated on the full 30 s arrival window (a 5 s window leaves the
  // drop counts inside Poisson noise), and the series costs only seconds.
  Runner runner(std::move(spec));
  runner.probe(parity_fields);
  const auto& result = ctx.run(runner);
  result.table().print(std::cout);
  std::cout << "\n";
}

void series_scale(bench::BenchContext& ctx) {
  if (!ctx.enabled("E1e")) return;
  std::cout << "-- E1e: aggregate-engine scale series (recurring misses, "
               "20k f/s; unreachable in packet mode) --\n\n";
  scenario::SweepSpec spec;
  spec.named("E1e-scale")
      .base([](ExperimentConfig& config) {
        config.spec.workload_mode = workload::Mode::kAggregate;
        config.spec.hosts_per_domain = 2;
        // Cache smaller than the prefix population plus a short mapping
        // TTL: misses recur throughout the run, so the drop-vs-scale curve
        // measures steady-state behaviour, not just the cold start.
        config.spec.cache_capacity = 1024;
        config.spec.mapping_ttl_seconds = 60;
        config.spec.seed = 1;
        config.traffic.sessions_per_second = 20000;
        config.traffic.duration = sim::SimDuration::seconds(30);
        config.traffic.zipf_alpha = 0.9;
        config.traffic.aggregate_epoch = sim::SimDuration::millis(100);
        config.drain = sim::SimDuration::seconds(20);
      })
      .axis(Axis::domains({256, 1024, 4096}))
      .axis(Axis::control_planes(
          "control plane", {ControlPlaneKind::kAltDrop, ControlPlaneKind::kPce},
          {"alt-drop", "pce"}));
  ctx.maybe_quick(spec);
  Runner runner(std::move(spec));
  runner.probe([](Experiment& experiment, const RunPoint&, Record& record) {
    const auto s = experiment.summary();
    record.set_int("sessions", s.sessions);
    record.set_int("miss events", s.miss_events);
    record.set_int("drops", s.miss_drops);
    record.set_percent("drop rate",
                       s.sessions ? static_cast<double>(s.miss_drops) /
                                        static_cast<double>(s.sessions)
                                  : 0.0,
                       4);
    record.set_real("t_setup mean (ms)", s.t_setup_mean_ms);
  });
  const auto& result = ctx.run(runner);
  result
      .pivot("domains", "control plane",
             {"sessions", "drops", "drop rate", "t_setup mean (ms)"})
      .print(std::cout);
}

}  // namespace
}  // namespace lispcp

int main(int argc, char** argv) {
  auto ctx = lispcp::bench::BenchContext("E1", lispcp::bench::parse_cli(argc, argv));
  lispcp::bench::print_header(
      "E1", "first-packet drops and queueing during mapping resolution",
      "claim (i): \"packets sourced from end-hosts are neither dropped nor "
      "queued during the mapping resolution\"");
  lispcp::series_control_planes(ctx);
  lispcp::series_cache_capacity(ctx);
  lispcp::series_zipf(ctx);
  lispcp::series_mode_parity(ctx);
  lispcp::series_scale(ctx);
  lispcp::bench::print_footer(
      "Shape check vs paper: pull systems (ALT/CONS) drop or queue first "
      "packets and the palliatives trade drops for queueing/overlay detours; "
      "NERD avoids misses by pushing the whole database; the PCE column is "
      "identically zero at every cache size and skew.");
  ctx.finish();
  return 0;
}
