// E1 — claim (i): packets are neither dropped nor queued during mapping
// resolution under the PCE control plane, unlike the pull baselines and the
// palliatives the paper criticises.
//
// Series 1: first-packet outcome per control plane at a fixed workload.
// Series 2: drop rate vs map-cache capacity (ALT-drop) vs PCE.
// Series 3: drop rate vs destination-popularity skew (Zipf alpha).
#include <iostream>

#include "bench_util.hpp"

namespace lispcp {
namespace {

using scenario::Experiment;
using scenario::ExperimentConfig;
using topo::ControlPlaneKind;
using topo::InternetSpec;

ExperimentConfig base_config(ControlPlaneKind kind) {
  ExperimentConfig config;
  config.spec = InternetSpec::preset(kind);
  config.spec.domains = 24;
  config.spec.hosts_per_domain = 2;
  config.spec.providers_per_domain = 2;
  config.spec.cache_capacity = 8;  // small cache: misses matter
  config.spec.mapping_ttl_seconds = 60;
  config.spec.seed = 1;
  config.traffic.sessions_per_second = 40;
  config.traffic.duration = sim::SimDuration::seconds(30);
  config.traffic.zipf_alpha = 0.9;
  config.drain = sim::SimDuration::seconds(60);
  return config;
}

void series_control_planes() {
  std::cout << "-- E1a: first-packet outcome by control plane "
               "(24 sites, cache=8 entries, ttl=60s, zipf 0.9, 40 f/s) --\n\n";
  metrics::Table table({"control plane", "sessions", "miss events", "drops",
                        "drop rate", "affected flows", "queued", "queue p95 (ms)",
                        "established"});
  for (auto kind : bench::compared_control_planes()) {
    Experiment experiment(base_config(kind));
    const auto s = experiment.run();
    const auto queue_delay = experiment.internet().merged_queue_delay();
    std::uint64_t queued = 0;
    for (auto& dom : experiment.internet().domains()) {
      for (auto* xtr : dom.xtrs) queued += xtr->stats().miss_queued;
    }
    table.add_row({topo::to_string(kind), metrics::Table::integer(s.sessions),
                   metrics::Table::integer(s.miss_events),
                   metrics::Table::integer(s.miss_drops),
                   metrics::Table::percent(
                       s.sessions ? static_cast<double>(s.miss_drops) /
                                        static_cast<double>(s.encapsulated +
                                                            s.miss_drops + 1)
                                  : 0.0),
                   metrics::Table::integer(s.sessions_with_retransmission),
                   metrics::Table::integer(queued),
                   metrics::Table::num(queue_delay.p95() / 1000.0),
                   metrics::Table::integer(s.established)});
  }
  table.print(std::cout);
  std::cout << "\n";
}

void series_cache_capacity() {
  std::cout << "-- E1b: drops vs ITR map-cache capacity (ALT-drop vs PCE) --\n\n";
  metrics::Table table({"cache entries", "alt-drop drops", "alt-drop affected",
                        "pce drops", "pce affected"});
  for (std::size_t capacity : {2u, 4u, 8u, 16u, 32u, 64u}) {
    auto alt_config = base_config(ControlPlaneKind::kAltDrop);
    alt_config.spec.cache_capacity = capacity;
    const auto alt = Experiment(alt_config).run();
    auto pce_config = base_config(ControlPlaneKind::kPce);
    pce_config.spec.cache_capacity = capacity;
    const auto pce = Experiment(pce_config).run();
    table.add_row({metrics::Table::integer(capacity),
                   metrics::Table::integer(alt.miss_drops),
                   metrics::Table::integer(alt.sessions_with_retransmission),
                   metrics::Table::integer(pce.miss_drops),
                   metrics::Table::integer(pce.sessions_with_retransmission)});
  }
  table.print(std::cout);
  std::cout << "\n";
}

void series_zipf() {
  std::cout << "-- E1c: drops vs destination popularity skew (cache=8) --\n\n";
  metrics::Table table({"zipf alpha", "alt-drop drops", "alt-drop drop sessions",
                        "pce drops"});
  for (double alpha : {0.6, 0.8, 1.0, 1.2}) {
    auto alt_config = base_config(ControlPlaneKind::kAltDrop);
    alt_config.traffic.zipf_alpha = alpha;
    const auto alt = Experiment(alt_config).run();
    auto pce_config = base_config(ControlPlaneKind::kPce);
    pce_config.traffic.zipf_alpha = alpha;
    const auto pce = Experiment(pce_config).run();
    table.add_row({metrics::Table::num(alpha, 1),
                   metrics::Table::integer(alt.miss_drops),
                   metrics::Table::integer(alt.sessions_with_retransmission),
                   metrics::Table::integer(pce.miss_drops)});
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace lispcp

int main() {
  lispcp::bench::print_header(
      "E1", "first-packet drops and queueing during mapping resolution",
      "claim (i): \"packets sourced from end-hosts are neither dropped nor "
      "queued during the mapping resolution\"");
  lispcp::series_control_planes();
  lispcp::series_cache_capacity();
  lispcp::series_zipf();
  lispcp::bench::print_footer(
      "Shape check vs paper: pull systems (ALT/CONS) drop or queue first "
      "packets and the palliatives trade drops for queueing/overlay detours; "
      "NERD avoids misses by pushing the whole database; the PCE column is "
      "identically zero at every cache size and skew.");
  return 0;
}
