// FIG1 — regenerates the paper's Figure 1 as an executable timeline: the
// 8-step control-plane walk-through on the two-domain, dual-provider scene
// (providers A,B on the source side and X,Y on the destination side).
//
// FIG1a prints every step with its simulated timestamp and location, then
// checks the paper's ordering guarantees:
//   * the Step-7b mapping push reaches the ITRs before the DNS answer
//     reaches the end-host (claim (ii): T_DNS + T_map ≈ T_DNS), and
//   * the first data packet is encapsulated without a single miss
//     (claim (i): neither dropped nor queued).
//
// FIG1b re-checks the ordering guarantee as a declarative sweep over
// topology size (site count x multihoming degree): the slack must stay
// positive and the miss count zero on every topology the walk-through's
// claim is supposed to cover.
#include <iomanip>
#include <iostream>
#include <optional>
#include <vector>

#include "bench_util.hpp"
#include "core/pce_message.hpp"
#include "dns/message.hpp"

namespace lispcp {
namespace {

struct StepEvent {
  std::string step;
  sim::SimTime time;
  std::string where;
  std::string what;
};

/// Watches the fabric and labels the Fig. 1 steps as they happen.
class StepTracer : public sim::Tracer {
 public:
  StepTracer(topo::Internet& internet) : internet_(internet) {}

  void on_send(sim::SimTime t, const sim::Node& node,
               const net::Packet& p) override {
    const auto dns = p.payload_as<dns::DnsMessage>();
    if (dns && !dns->is_response() && node.name() == "d0-h0") {
      add("1", t, node, "ES queries DNSS for " + dns->question().name.to_string());
    }
    if (dns && !dns->is_response() && node.name() == "d0-dns") {
      const auto dst = p.outer_ip().dst.to_string();
      add(dst.ends_with(".1.1")   ? "2"
          : dst.ends_with(".1.2") ? "3"
                                  : "4",
          t, node, "DNSS iterative query to " + dst);
    }
    if (dns && dns->is_response() && node.name() == "d1-auth") {
      add("5", t, node, "DNSD answers: " + dns->describe());
    }
    if (p.payload_as<core::PceMessage>() && node.name() == "d1-pce") {
      add("6", t, node,
          "PCED encapsulates the reply to DNSS on port P with the mapping");
    }
    if (dns && dns->is_response() && node.name() == "d0-pce") {
      add("7a", t, node, "PCES releases the original DNS reply to DNSS");
    }
    if (p.payload_as<lisp::FlowMappingPush>() && node.name() == "d0-pce") {
      add("7b", t, node,
          "PCES pushes (ES, ED, RLOC_S, RLOC_D) to ITR " +
              p.outer_ip().dst.to_string());
    }
    if (dns && dns->is_response() && node.name() == "d0-dns") {
      add("8", t, node, "DNSS responds to ES");
    }
  }

  void on_deliver(sim::SimTime t, const sim::Node& node,
                  const net::Packet& p) override {
    if (p.payload_as<lisp::FlowMappingPush>() &&
        node.name().starts_with("d0-xtr")) {
      // Pushes after the DNS answer are the ETR-sync reverse-mapping
      // multicast (two-way completion), not Step 7b.
      if (!dns_answered_at) {
        add("7b'", t, node, "mapping tuple installed at " + node.name());
        mapping_installed_at = mapping_installed_at
                                   ? std::max(*mapping_installed_at, t)
                                   : std::optional<sim::SimTime>(t);
      } else {
        add("sync", t, node,
            "reverse mapping (ETR multicast) installed at " + node.name());
      }
    }
    if (p.payload_as<dns::DnsMessage>() && node.name() == "d0-h0") {
      add("8'", t, node, "ES receives the DNS answer; data may flow");
      dns_answered_at = t;
    }
  }

  void on_consume(sim::SimTime t, const sim::Node& node,
                  const net::Packet& p) override {
    if (node.name() == "d0-xtr0" || node.name() == "d0-xtr1") {
      if (p.tcp() != nullptr && p.tcp()->flags.syn && !p.tcp()->flags.ack) {
        add("data", t, node, "first packet (SYN) intercepted for encapsulation");
      }
    }
  }

  void add(std::string step, sim::SimTime t, const sim::Node& node,
           std::string what) {
    events.push_back(StepEvent{std::move(step), t, node.name(), std::move(what)});
  }

  topo::Internet& internet_;
  std::vector<StepEvent> events;
  std::optional<sim::SimTime> mapping_installed_at;
  std::optional<sim::SimTime> dns_answered_at;
};

int timeline(bench::BenchContext& ctx) {
  if (!ctx.enabled("FIG1a")) return 0;

  auto spec = topo::InternetSpec::preset(topo::ControlPlaneKind::kPce);
  spec.domains = 2;
  spec.hosts_per_domain = 2;
  spec.providers_per_domain = 2;  // providers A,B / X,Y as in the figure
  topo::Internet internet(spec);

  StepTracer tracer(internet);
  internet.network().set_tracer(&tracer);

  // One session: ES = h0 in AS_S (domain 0), ED = h0.d1.example in AS_D.
  internet.domain(0).hosts[0]->start_session(internet.host_name(1, 0));
  internet.sim().run_until(internet.sim().now() + sim::SimDuration::seconds(30));

  metrics::Table table({"step", "t (ms)", "where", "event"});
  for (const auto& e : tracer.events) {
    table.add_row({e.step, metrics::Table::num(e.time.ms(), 3), e.where, e.what});
  }
  table.print(std::cout);

  // Claim (ii) verification.
  std::cout << "\n";
  if (!tracer.mapping_installed_at || !tracer.dns_answered_at) {
    std::cout << "ERROR: walk-through incomplete\n";
    return 1;
  }
  const auto t_map = *tracer.mapping_installed_at;
  const auto t_dns = *tracer.dns_answered_at;
  const auto slack = t_dns - t_map;
  std::cout << "mapping configured at ITRs : " << t_map.to_string() << "\n"
            << "DNS answer reaches ES      : " << t_dns.to_string() << "\n"
            << "slack (must be >= 0)       : " << slack.to_string() << "\n"
            << "T_map_config / T_DNS       : " << std::fixed
            << std::setprecision(3)
            << t_map.since_start() / t_dns.since_start() << "\n";

  const auto& itr_stats = internet.domain(0).xtrs[0]->stats();
  const auto& itr1_stats = internet.domain(0).xtrs[1]->stats();
  const bool no_miss = internet.total_miss_events() == 0;
  std::cout << "first-packet misses        : " << internet.total_miss_events()
            << (no_miss ? "  (claim (i) holds)" : "  (VIOLATION)") << "\n"
            << "flow tuples at ITR0/ITR1   : " << itr_stats.flow_pushes_received
            << "/" << itr1_stats.flow_pushes_received
            << "  (Step 7b pushed to all ITRs)\n";

  return slack >= sim::SimDuration{} && no_miss ? 0 : 1;
}

/// FIG1b instrumentation: watches the first (and only) session's Step-7b
/// pushes and DNS answer, reporting the claim-(ii) slack per topology.
class SlackProbe final : public scenario::Probe {
 public:
  void on_configured(scenario::Experiment& experiment,
                     const scenario::RunPoint&) override {
    tracer_ = std::make_unique<StepTracer>(experiment.internet());
    experiment.internet().network().set_tracer(tracer_.get());
  }

  void on_finished(scenario::Experiment& experiment,
                   const scenario::RunPoint&, scenario::Record& record) override {
    const auto s = experiment.summary();
    const bool complete =
        tracer_->mapping_installed_at && tracer_->dns_answered_at;
    record.set_bool("walk-through complete", complete);
    if (complete) {
      const auto slack =
          *tracer_->dns_answered_at - *tracer_->mapping_installed_at;
      record.set_real("slack (ms)", slack.ms(), 3);
      record.set_bool("mapping before answer",
                      slack >= sim::SimDuration{});
    }
    record.set_int("miss events", experiment.internet().total_miss_events());
    std::uint64_t min_pushes = ~0ull, max_pushes = 0;
    for (const auto* xtr : experiment.internet().domain(0).xtrs) {
      const auto pushes = xtr->stats().flow_pushes_received;
      min_pushes = std::min(min_pushes, pushes);
      max_pushes = std::max(max_pushes, pushes);
    }
    record.set_int("ITR tuples (min)", min_pushes);
    record.set_int("ITR tuples (max)", max_pushes);
    record.set_int("established", s.established);
  }

 private:
  std::unique_ptr<StepTracer> tracer_;
};

/// Returns 0 when every point upholds claim (ii): walk-through complete,
/// mapping installed before the DNS answer, zero misses.
int series_topology_slack(bench::BenchContext& ctx) {
  if (!ctx.enabled("FIG1b")) return 0;
  std::cout << "\n-- FIG1b: claim (ii) ordering across topology sizes "
               "(one session per point) --\n\n";
  scenario::SweepSpec spec;
  spec.named("FIG1b")
      .base([](scenario::ExperimentConfig& config) {
        mapping::MappingSystemFactory::instance().apply_preset(
            topo::ControlPlaneKind::kPce, config.spec);
        config.spec.hosts_per_domain = 2;
        config.spec.seed = 3;
        config.traffic.sessions_per_second = 4;
        config.traffic.max_sessions = 1;  // the figure's single session
        config.traffic.duration = sim::SimDuration::seconds(5);
        config.drain = sim::SimDuration::seconds(10);
      })
      .axis(scenario::Axis::domains({2, 4, 8}))
      .axis(scenario::Axis::providers_per_domain({1, 2}));
  ctx.maybe_quick(spec);
  scenario::Runner runner(std::move(spec));
  runner.probe_factory([] { return std::make_unique<SlackProbe>(); });
  const auto& result = ctx.run(runner);
  result.table().print(std::cout);
  int violations = 0;
  for (const auto& record : result.records()) {
    const auto* complete = record.find("walk-through complete");
    const auto* ordered = record.find("mapping before answer");
    const auto* misses = record.find("miss events");
    if (complete == nullptr || !complete->as_bool() || ordered == nullptr ||
        !ordered->as_bool() || misses == nullptr || misses->as_int() != 0) {
      ++violations;
    }
  }
  if (violations > 0) {
    std::cout << "\nERROR: claim (ii) violated at " << violations
              << " topology point(s)\n";
  }
  return violations == 0 ? 0 : 1;
}

}  // namespace
}  // namespace lispcp

int main(int argc, char** argv) {
  auto ctx =
      lispcp::bench::BenchContext("FIG1", lispcp::bench::parse_cli(argc, argv));
  lispcp::bench::print_header(
      "FIG1", "control-plane walk-through (Fig. 1)",
      "8-step architecture: ES->DNSS->root->TLD->DNSD, PCE encapsulation on "
      "port P, mapping push, DNS answer");
  int rc = lispcp::timeline(ctx);
  rc |= lispcp::series_topology_slack(ctx);
  lispcp::bench::print_footer(
      "Shape check vs paper: steps fire in order 1..8, the mapping is in "
      "place before the DNS answer (slack > 0), and the first data packet "
      "is neither dropped nor queued — at every topology size FIG1b visits.");
  ctx.finish();
  return rc;
}
