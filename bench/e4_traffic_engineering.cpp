// E4 — claim (iii): blending IRC with PCE enables upstream/downstream TE
// through dynamic mapping management, including *different LISP ingress and
// egress local routers for the same flow* (two independent one-way tunnels).
//
// Domain 0 is dual-homed and opens sessions to every other site; servers
// answer every data packet, so return traffic flows back *into* domain 0.
// We measure how that inbound load distributes over domain 0's two provider
// links:
//   * vanilla LISP (ALT): the ETRs at the remote side glean RLOC_S = the
//     address of the ITR the flow exited through, so all return traffic
//     enters through the same border router — no inbound TE;
//   * PCE: RLOC_S is chosen per flow by the background IRC engine, so the
//     inbound load follows the policy, even though egress stays pinned to
//     the primary border router by the domain's internal routing.
//
// Declarative sweeps: the policy comparison is a labelled axis; the
// link-window instrumentation and the mid-run reoptimize() are stateful
// probes (windows open before the workload, fields written after).
// Series E4d runs the inbound-split comparison at production scale (up to
// 10k sites, 10^6+ flows per point) on the flow-aggregate engine — the
// link windows read the same sim::Link byte counters either way.
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"

namespace lispcp {
namespace {

using scenario::Axis;
using scenario::Experiment;
using scenario::ExperimentConfig;
using scenario::Probe;
using scenario::Record;
using scenario::Runner;
using scenario::RunPoint;
using scenario::SweepSpec;
using topo::ControlPlaneKind;

SweepSpec e4_base() {
  SweepSpec spec;
  spec.base([](ExperimentConfig& config) {
    config.spec.domains = 10;
    config.spec.hosts_per_domain = 2;
    config.spec.providers_per_domain = 2;
    config.spec.seed = 4;
    config.traffic.sessions_per_second = 60;
    config.traffic.duration = sim::SimDuration::seconds(30);
    config.traffic.zipf_alpha = 0.8;
    config.drain = sim::SimDuration::seconds(30);
  });
  return spec;
}

std::function<void(ExperimentConfig&)> plane_and_policy(ControlPlaneKind kind,
                                                        irc::TePolicy policy) {
  return [kind, policy](ExperimentConfig& config) {
    mapping::MappingSystemFactory::instance().apply_preset(kind, config.spec);
    config.spec.te_policy = policy;
  };
}

/// Windows on the ingress direction (core -> xTR) of both of domain 0's
/// provider links, opened before the workload; the inbound byte split is
/// read back after the run.
class InboundSplitProbe final : public Probe {
 public:
  void on_configured(Experiment& experiment, const RunPoint&) override {
    auto& dom0 = experiment.internet().domain(0);
    for (std::size_t j = 0; j < dom0.provider_links.size(); ++j) {
      const auto far = dom0.provider_links[j]->peer_of(dom0.xtrs[j]->id());
      far_ends_.push_back(far);
      windows_.push_back(dom0.provider_links[j]->open_window(far));
    }
  }

  void on_finished(Experiment& experiment, const RunPoint&,
                   Record& record) override {
    auto& dom0 = experiment.internet().domain(0);
    const auto b0 =
        dom0.provider_links[0]->bytes_in_window(far_ends_[0], windows_[0]);
    const auto b1 =
        dom0.provider_links[1]->bytes_in_window(far_ends_[1], windows_[1]);
    const auto total = b0 + b1;
    const double share0 =
        total ? static_cast<double>(b0) / static_cast<double>(total) : 0.0;
    const double share1 =
        total ? static_cast<double>(b1) / static_cast<double>(total) : 0.0;
    record.set_percent("provider A share", share0);
    record.set_percent("provider B share", share1);
    record.set_real("imbalance (1.0=ideal)",
                    total ? std::max(share0, share1) / 0.5 : 0.0);
    record.set_int("inbound bytes", total);
  }

 private:
  std::vector<sim::LinkWindow> windows_;
  std::vector<sim::NodeId> far_ends_;
};

void series_inbound(bench::BenchContext& ctx) {
  if (!ctx.enabled("E4a")) return;
  std::cout << "-- E4a: inbound (return-traffic) split over domain 0's two "
               "provider links --\n\n";
  std::vector<std::pair<std::string, std::function<void(ExperimentConfig&)>>>
      arms;
  arms.emplace_back(
      "lisp-alt (gleaned, symmetric)",
      plane_and_policy(ControlPlaneKind::kAltQueue, irc::TePolicy::kLeastLoaded));
  for (auto policy :
       {irc::TePolicy::kPrimaryBackup, irc::TePolicy::kRoundRobin,
        irc::TePolicy::kCapacityWeighted, irc::TePolicy::kLeastLoaded}) {
    arms.emplace_back("lisp-pce / " + irc::to_string(policy),
                      plane_and_policy(ControlPlaneKind::kPce, policy));
  }
  auto spec = e4_base().named("E4a").axis(
      Axis::labeled("control plane / policy", std::move(arms)));
  ctx.maybe_quick(spec);
  Runner runner(std::move(spec));
  runner.probe_factory([] { return std::make_unique<InboundSplitProbe>(); });
  ctx.run(runner).table().print(std::cout);
  std::cout << "\n";
}

void series_one_way_tunnels(bench::BenchContext& ctx) {
  if (!ctx.enabled("E4b")) return;
  std::cout << "-- E4b: independent one-way tunnels (ingress != egress router "
               "for the same flow) --\n\n";
  // A single-point sweep: no axes, just the PCE round-robin configuration.
  auto spec = e4_base().named("E4b").base(
      plane_and_policy(ControlPlaneKind::kPce, irc::TePolicy::kRoundRobin));
  ctx.maybe_quick(spec);
  Runner runner(std::move(spec));
  runner.probe([](Experiment& experiment, const RunPoint&, Record& record) {
    const auto s = experiment.summary();
    auto& internet = experiment.internet();
    auto& dom0 = internet.domain(0);
    // Egress is pinned by internal routing to xtr0; count flows whose tuple
    // advertises the *other* RLOC as ingress.
    std::uint64_t asymmetric = 0;
    std::uint64_t total = 0;
    for (std::size_t h = 0; h < dom0.hosts.size(); ++h) {
      for (std::size_t d = 1; d < internet.domains().size(); ++d) {
        for (std::size_t p = 0; p < 2; ++p) {
          const auto* tuple = dom0.xtrs[0]->find_flow_mapping(
              dom0.hosts[h]->address(), internet.domain(d).hosts[p]->address());
          if (tuple == nullptr) continue;
          ++total;
          if (tuple->source_rloc != dom0.xtrs[0]->rloc()) ++asymmetric;
        }
      }
    }
    record.set_int("configured flows inspected", total);
    record.set_int("flows with ingress != egress router", asymmetric);
    record.set_percent("asymmetric share",
                       total ? static_cast<double>(asymmetric) /
                                   static_cast<double>(total)
                             : 0.0);
    record.set_int("first-packet drops (must stay 0)", s.miss_drops);
  });
  ctx.run(runner).table().print(std::cout);
  std::cout << "\n";
}

/// E4c instrumentation: mid-run (half the arrival window), fail provider A
/// for selection purposes and re-push every active flow (the paper's
/// "local TE actions"); link windows bracket the two phases.
class ReoptimizeProbe final : public Probe {
 public:
  void on_configured(Experiment& experiment, const RunPoint& point) override {
    auto& internet = experiment.internet();
    auto& dom0 = internet.domain(0);
    const auto switch_at = point.config.traffic.duration / 2;
    internet.sim().schedule(switch_at, [&dom0] {
      dom0.irc->set_link_usable(0, false);
      dom0.control_plane->reoptimize();
    });
    for (std::size_t j = 0; j < dom0.provider_links.size(); ++j) {
      far_ends_.push_back(dom0.provider_links[j]->peer_of(dom0.xtrs[j]->id()));
      first_half_.push_back(dom0.provider_links[j]->open_window(far_ends_[j]));
    }
    internet.sim().schedule(switch_at, [this, &dom0] {
      for (std::size_t j = 0; j < dom0.provider_links.size(); ++j) {
        second_half_.push_back(dom0.provider_links[j]->open_window(far_ends_[j]));
      }
    });
  }

  void on_finished(Experiment& experiment, const RunPoint&,
                   Record& record) override {
    auto& dom0 = experiment.internet().domain(0);
    const auto first = [&](std::size_t j) {
      return dom0.provider_links[j]->bytes_in_window(far_ends_[j],
                                                     first_half_[j]) -
             dom0.provider_links[j]->bytes_in_window(far_ends_[j],
                                                     second_half_[j]);
    };
    const auto second = [&](std::size_t j) {
      return dom0.provider_links[j]->bytes_in_window(far_ends_[j],
                                                     second_half_[j]);
    };
    record.set_int("phase 1 provider A bytes", first(0));
    record.set_int("phase 1 provider B bytes", first(1));
    record.set_int("phase 2 provider A bytes", second(0));
    record.set_int("phase 2 provider B bytes", second(1));
  }

 private:
  std::vector<sim::LinkWindow> first_half_;
  std::vector<sim::LinkWindow> second_half_;
  std::vector<sim::NodeId> far_ends_;
};

void series_scale(bench::BenchContext& ctx) {
  if (!ctx.enabled("E4d")) return;
  std::cout << "-- E4d: inbound TE split at production scale "
               "(flow-aggregate engine, 40k f/s -> 1.2M flows/point) --\n\n";
  std::vector<std::pair<std::string, std::function<void(ExperimentConfig&)>>>
      arms;
  arms.emplace_back("lisp-alt (gleaned, symmetric)",
                    plane_and_policy(ControlPlaneKind::kAltQueue,
                                     irc::TePolicy::kLeastLoaded));
  arms.emplace_back("lisp-pce / least-loaded",
                    plane_and_policy(ControlPlaneKind::kPce,
                                     irc::TePolicy::kLeastLoaded));
  auto spec = e4_base()
                  .named("E4d-scale")
                  .base([](ExperimentConfig& config) {
                    config.spec.workload_mode = workload::Mode::kAggregate;
                    config.traffic.sessions_per_second = 40000;
                    config.traffic.duration = sim::SimDuration::seconds(30);
                    config.traffic.aggregate_epoch =
                        sim::SimDuration::millis(100);
                    config.drain = sim::SimDuration::seconds(20);
                  })
                  .axis(Axis::domains({1000, 10000}))
                  .axis(Axis::labeled("control plane / policy",
                                      std::move(arms)));
  ctx.maybe_quick(spec);
  Runner runner(std::move(spec));
  runner.probe([](Experiment& experiment, const RunPoint&, Record& record) {
    record.set_int("sessions", experiment.summary().sessions);
  });
  runner.probe_factory([] { return std::make_unique<InboundSplitProbe>(); });
  ctx.run(runner).table().print(std::cout);
  std::cout << "\n";
}

void series_reoptimization(bench::BenchContext& ctx) {
  if (!ctx.enabled("E4c")) return;
  std::cout << "-- E4c: dynamic TE — re-pushing mappings moves live inbound "
               "traffic (phase 1: primary only; phase 2: after reoptimize "
               "to B) --\n\n";
  auto spec = e4_base()
                  .named("E4c")
                  .base(plane_and_policy(ControlPlaneKind::kPce,
                                         irc::TePolicy::kPrimaryBackup))
                  .base([](ExperimentConfig& config) {
                    config.traffic.duration = sim::SimDuration::seconds(60);
                  });
  ctx.maybe_quick(spec);
  Runner runner(std::move(spec));
  runner.probe_factory([] { return std::make_unique<ReoptimizeProbe>(); });
  ctx.run(runner).table().print(std::cout);
}

}  // namespace
}  // namespace lispcp

int main(int argc, char** argv) {
  auto ctx = lispcp::bench::BenchContext("E4", lispcp::bench::parse_cli(argc, argv));
  lispcp::bench::print_header(
      "E4", "upstream/downstream traffic engineering via dynamic mappings",
      "claim (iii): IRC+PCE TE, \"utilization of different LISP ingress and "
      "egress local routers for the same flow\"");
  lispcp::series_inbound(ctx);
  lispcp::series_one_way_tunnels(ctx);
  lispcp::series_reoptimization(ctx);
  lispcp::series_scale(ctx);
  lispcp::bench::print_footer(
      "Shape check vs paper: vanilla LISP concentrates ~100% of return "
      "traffic on the primary border router (ingress forced == egress); the "
      "PCE splits it per policy (~50/50 round-robin, capacity-weighted 2:1 "
      "when capacities differ), flows routinely use ingress != egress, and a "
      "reoptimize() call moves live traffic between providers without any "
      "re-resolution.");
  ctx.finish();
  return 0;
}
