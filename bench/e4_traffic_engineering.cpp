// E4 — claim (iii): blending IRC with PCE enables upstream/downstream TE
// through dynamic mapping management, including *different LISP ingress and
// egress local routers for the same flow* (two independent one-way tunnels).
//
// Domain 0 is dual-homed and opens sessions to every other site; servers
// answer every data packet, so return traffic flows back *into* domain 0.
// We measure how that inbound load distributes over domain 0's two provider
// links:
//   * vanilla LISP (ALT): the ETRs at the remote side glean RLOC_S = the
//     address of the ITR the flow exited through, so all return traffic
//     enters through the same border router — no inbound TE;
//   * PCE: RLOC_S is chosen per flow by the background IRC engine, so the
//     inbound load follows the policy, even though egress stays pinned to
//     the primary border router by the domain's internal routing.
#include <iostream>

#include "bench_util.hpp"

namespace lispcp {
namespace {

using scenario::Experiment;
using scenario::ExperimentConfig;
using topo::ControlPlaneKind;
using topo::InternetSpec;

ExperimentConfig base_config(ControlPlaneKind kind, irc::TePolicy policy) {
  ExperimentConfig config;
  config.spec = InternetSpec::preset(kind);
  config.spec.domains = 10;
  config.spec.hosts_per_domain = 2;
  config.spec.providers_per_domain = 2;
  config.spec.te_policy = policy;
  config.spec.seed = 4;
  config.traffic.sessions_per_second = 60;
  config.traffic.duration = sim::SimDuration::seconds(30);
  config.traffic.zipf_alpha = 0.8;
  config.drain = sim::SimDuration::seconds(30);
  return config;
}

struct InboundSplit {
  double share0 = 0.0;
  double share1 = 0.0;
  std::uint64_t total_bytes = 0;
  double imbalance = 0.0;  ///< max share / ideal share (1.0 = perfect)
};

InboundSplit measure(ExperimentConfig config) {
  Experiment experiment(std::move(config));
  auto& dom0 = experiment.internet().domain(0);
  // Windows on the ingress direction (core -> xTR) of both provider links.
  std::vector<sim::LinkWindow> windows;
  std::vector<sim::NodeId> far_ends;
  for (std::size_t j = 0; j < dom0.provider_links.size(); ++j) {
    const auto far = dom0.provider_links[j]->peer_of(dom0.xtrs[j]->id());
    far_ends.push_back(far);
    windows.push_back(dom0.provider_links[j]->open_window(far));
  }
  experiment.run();
  InboundSplit split;
  const auto b0 = dom0.provider_links[0]->bytes_in_window(far_ends[0], windows[0]);
  const auto b1 = dom0.provider_links[1]->bytes_in_window(far_ends[1], windows[1]);
  split.total_bytes = b0 + b1;
  if (split.total_bytes > 0) {
    split.share0 = static_cast<double>(b0) / static_cast<double>(split.total_bytes);
    split.share1 = static_cast<double>(b1) / static_cast<double>(split.total_bytes);
    split.imbalance = std::max(split.share0, split.share1) / 0.5;
  }
  return split;
}

void series_inbound() {
  std::cout << "-- E4a: inbound (return-traffic) split over domain 0's two "
               "provider links --\n\n";
  metrics::Table table({"control plane / policy", "provider A share",
                        "provider B share", "imbalance (1.0=ideal)",
                        "inbound bytes"});
  {
    const auto split =
        measure(base_config(ControlPlaneKind::kAltQueue, irc::TePolicy::kLeastLoaded));
    table.add_row({"lisp-alt (gleaned, symmetric)",
                   metrics::Table::percent(split.share0),
                   metrics::Table::percent(split.share1),
                   metrics::Table::num(split.imbalance),
                   metrics::Table::integer(split.total_bytes)});
  }
  for (auto policy :
       {irc::TePolicy::kPrimaryBackup, irc::TePolicy::kRoundRobin,
        irc::TePolicy::kCapacityWeighted, irc::TePolicy::kLeastLoaded}) {
    const auto split = measure(base_config(ControlPlaneKind::kPce, policy));
    table.add_row({"lisp-pce / " + irc::to_string(policy),
                   metrics::Table::percent(split.share0),
                   metrics::Table::percent(split.share1),
                   metrics::Table::num(split.imbalance),
                   metrics::Table::integer(split.total_bytes)});
  }
  table.print(std::cout);
  std::cout << "\n";
}

void series_one_way_tunnels() {
  std::cout << "-- E4b: independent one-way tunnels (ingress != egress router "
               "for the same flow) --\n\n";
  Experiment experiment(
      base_config(ControlPlaneKind::kPce, irc::TePolicy::kRoundRobin));
  const auto summary = experiment.run();
  auto& dom0 = experiment.internet().domain(0);

  // Egress is pinned by internal routing to xtr0; count flows whose tuple
  // advertises the *other* RLOC as ingress.
  std::uint64_t asymmetric = 0;
  std::uint64_t total = 0;
  for (std::size_t h = 0; h < dom0.hosts.size(); ++h) {
    for (std::size_t d = 1; d < experiment.internet().domains().size(); ++d) {
      for (std::size_t p = 0; p < 2; ++p) {
        const auto* tuple = dom0.xtrs[0]->find_flow_mapping(
            dom0.hosts[h]->address(),
            experiment.internet().domain(d).hosts[p]->address());
        if (tuple == nullptr) continue;
        ++total;
        if (tuple->source_rloc != dom0.xtrs[0]->rloc()) ++asymmetric;
      }
    }
  }
  metrics::Table table({"metric", "value"});
  table.add_row({"configured flows inspected", metrics::Table::integer(total)});
  table.add_row({"flows with ingress != egress router",
                 metrics::Table::integer(asymmetric)});
  table.add_row({"asymmetric share",
                 metrics::Table::percent(
                     total ? static_cast<double>(asymmetric) /
                                 static_cast<double>(total)
                           : 0.0)});
  table.add_row({"first-packet drops (must stay 0)",
                 metrics::Table::integer(summary.miss_drops)});
  table.print(std::cout);
  std::cout << "\n";
}

void series_reoptimization() {
  std::cout << "-- E4c: dynamic TE — re-pushing mappings moves live inbound "
               "traffic --\n\n";
  auto config = base_config(ControlPlaneKind::kPce, irc::TePolicy::kPrimaryBackup);
  config.traffic.duration = sim::SimDuration::seconds(60);
  Experiment experiment(std::move(config));
  auto& internet = experiment.internet();
  auto& dom0 = internet.domain(0);

  // Mid-run, switch every active flow's ingress by failing provider A for
  // selection purposes and re-pushing (the paper's "local TE actions").
  internet.sim().schedule(sim::SimDuration::seconds(30), [&dom0] {
    dom0.irc->set_link_usable(0, false);
    dom0.control_plane->reoptimize();
  });

  std::vector<sim::LinkWindow> first_half;
  std::vector<sim::LinkWindow> second_half;
  std::vector<sim::NodeId> far_ends;
  for (std::size_t j = 0; j < dom0.provider_links.size(); ++j) {
    far_ends.push_back(dom0.provider_links[j]->peer_of(dom0.xtrs[j]->id()));
    first_half.push_back(dom0.provider_links[j]->open_window(far_ends[j]));
  }
  internet.sim().schedule(sim::SimDuration::seconds(30), [&] {
    for (std::size_t j = 0; j < dom0.provider_links.size(); ++j) {
      second_half.push_back(dom0.provider_links[j]->open_window(far_ends[j]));
    }
  });

  experiment.run();

  metrics::Table table({"phase", "provider A bytes", "provider B bytes"});
  const auto a1 = dom0.provider_links[0]->bytes_in_window(far_ends[0], first_half[0]) -
                  dom0.provider_links[0]->bytes_in_window(far_ends[0], second_half[0]);
  const auto b1 = dom0.provider_links[1]->bytes_in_window(far_ends[1], first_half[1]) -
                  dom0.provider_links[1]->bytes_in_window(far_ends[1], second_half[1]);
  const auto a2 = dom0.provider_links[0]->bytes_in_window(far_ends[0], second_half[0]);
  const auto b2 = dom0.provider_links[1]->bytes_in_window(far_ends[1], second_half[1]);
  table.add_row({"0-30s (policy: primary only)", metrics::Table::integer(a1),
                 metrics::Table::integer(b1)});
  table.add_row({"30-60s (after reoptimize to B)", metrics::Table::integer(a2),
                 metrics::Table::integer(b2)});
  table.print(std::cout);
}

}  // namespace
}  // namespace lispcp

int main() {
  lispcp::bench::print_header(
      "E4", "upstream/downstream traffic engineering via dynamic mappings",
      "claim (iii): IRC+PCE TE, \"utilization of different LISP ingress and "
      "egress local routers for the same flow\"");
  lispcp::series_inbound();
  lispcp::series_one_way_tunnels();
  lispcp::series_reoptimization();
  lispcp::bench::print_footer(
      "Shape check vs paper: vanilla LISP concentrates ~100% of return "
      "traffic on the primary border router (ingress forced == egress); the "
      "PCE splits it per policy (~50/50 round-robin, capacity-weighted 2:1 "
      "when capacities differ), flows routinely use ingress != egress, and a "
      "reoptimize() call moves live traffic between providers without any "
      "re-resolution.");
  return 0;
}
