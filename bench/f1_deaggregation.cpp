// F1 — the paper's future-work experiment: prefix de-aggregation.
//
// §3 closes with the authors' plan to study the control plane in Latin
// America, which has "the world's largest IPv4 de-aggregation factor".
// De-aggregation multiplies the number of mappings each site registers,
// which stresses every pull/push mapping system:
//   * ALT/CONS overlay routers carry k× the routes, and ITR map-caches see
//     k× the working set (more misses at a fixed capacity);
//   * NERD must push and store a k× larger database at every consumer;
//   * the PCE control plane distributes *per-flow tuples* derived from
//     whatever mapping granularity exists, so its first-packet behaviour is
//     unchanged — exactly the regime where its design pays off.
#include <iostream>

#include "bench_util.hpp"

namespace lispcp {
namespace {

using scenario::Experiment;
using scenario::ExperimentConfig;
using topo::ControlPlaneKind;
using topo::InternetSpec;

ExperimentConfig config_with(ControlPlaneKind kind, std::size_t factor) {
  ExperimentConfig config;
  config.spec = InternetSpec::preset(kind);
  config.spec.domains = 16;
  config.spec.hosts_per_domain = 8;  // hosts spread across the sub-prefixes
  config.spec.providers_per_domain = 2;
  config.spec.deaggregation_factor = factor;
  config.spec.cache_capacity = 24;  // fixed cache while state grows
  config.spec.mapping_ttl_seconds = 120;
  config.spec.seed = 12;
  config.traffic.sessions_per_second = 40;
  config.traffic.duration = sim::SimDuration::seconds(30);
  config.traffic.zipf_alpha = 0.8;
  config.drain = sim::SimDuration::seconds(40);
  return config;
}

void sweep() {
  metrics::Table table({"deagg factor", "registered mappings",
                        "alt miss events", "alt drops", "alt overlay routes",
                        "nerd entries pushed", "pce drops"});
  for (std::size_t factor : {1u, 2u, 4u, 8u, 16u}) {
    Experiment alt(config_with(ControlPlaneKind::kAltDrop, factor));
    const auto alt_summary = alt.run();
    std::uint64_t overlay_routes = 0;
    for (const auto* router : alt.internet().overlay()) {
      overlay_routes += router->route_count();
    }
    const auto registered = alt.internet().registry().size();

    Experiment nerd(config_with(ControlPlaneKind::kNerd, factor));
    nerd.run();
    const auto nerd_pushed = nerd.internet().nerd()->stats().entries_pushed;

    Experiment pce(config_with(ControlPlaneKind::kPce, factor));
    const auto pce_summary = pce.run();

    table.add_row({metrics::Table::integer(factor),
                   metrics::Table::integer(registered),
                   metrics::Table::integer(alt_summary.miss_events),
                   metrics::Table::integer(alt_summary.miss_drops),
                   metrics::Table::integer(overlay_routes),
                   metrics::Table::integer(nerd_pushed),
                   metrics::Table::integer(pce_summary.miss_drops)});
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace lispcp

int main() {
  lispcp::bench::print_header(
      "F1", "future work: prefix de-aggregation",
      "§3: TE study \"in the context of Latin America ... the world's "
      "largest IPv4 de-aggregation factor\"");
  lispcp::sweep();
  lispcp::bench::print_footer(
      "Shape check: de-aggregation multiplies mapping-system state "
      "(registered mappings, overlay routes, NERD push volume) and drives "
      "up ALT's cache misses and drops at fixed capacity, while the PCE "
      "column stays zero — per-flow push distribution is insensitive to "
      "registration granularity.");
  return 0;
}
