// F1 — the paper's future-work experiment: prefix de-aggregation.
//
// §3 closes with the authors' plan to study the control plane in Latin
// America, which has "the world's largest IPv4 de-aggregation factor".
// De-aggregation multiplies the number of mappings each site registers,
// which stresses every pull/push mapping system:
//   * ALT/CONS overlay routers carry k× the routes, and ITR map-caches see
//     k× the working set (more misses at a fixed capacity);
//   * NERD must push and store a k× larger database at every consumer;
//   * the PCE control plane distributes *per-flow tuples* derived from
//     whatever mapping granularity exists, so its first-packet behaviour is
//     unchanged — exactly the regime where its design pays off.
//
// Declarative sweep: de-aggregation factor x control plane, pivoted so each
// plane's stress metrics line up per factor.  A second series (F1b) takes
// the same §3 observation to the BGP substrate: de-aggregated stub prefixes
// multiply the DFZ table and the convergence traffic under legacy
// addressing while the LISP DFZ stays at the provider-aggregate count —
// measured up to 1k stub sites on the sharded convergence engine
// (--shards K; records are byte-identical for any K).
#include <iostream>

#include "bench_util.hpp"
#include "scenario/dfz_adapter.hpp"

namespace lispcp {
namespace {

using scenario::Axis;
using scenario::Experiment;
using scenario::ExperimentConfig;
using scenario::Record;
using scenario::Runner;
using scenario::RunPoint;
using scenario::SweepSpec;
using topo::ControlPlaneKind;

SweepSpec f1_base() {
  SweepSpec spec;
  spec.base([](ExperimentConfig& config) {
    config.spec.domains = 16;
    config.spec.hosts_per_domain = 8;  // hosts spread across the sub-prefixes
    config.spec.providers_per_domain = 2;
    config.spec.cache_capacity = 24;  // fixed cache while state grows
    config.spec.mapping_ttl_seconds = 120;
    config.spec.seed = 12;
    config.traffic.sessions_per_second = 40;
    config.traffic.duration = sim::SimDuration::seconds(30);
    config.traffic.zipf_alpha = 0.8;
    config.drain = sim::SimDuration::seconds(40);
  });
  return spec;
}

void series_deaggregation(bench::BenchContext& ctx) {
  if (!ctx.enabled("F1a")) return;
  auto spec =
      f1_base()
          .named("F1a")
          .axis(Axis::integers("deagg factor", {1, 2, 4, 8, 16},
                               [](ExperimentConfig& config, std::uint64_t v) {
                                 config.spec.deaggregation_factor =
                                     static_cast<std::size_t>(v);
                               }))
          .axis(Axis::control_planes(
              "control plane",
              {ControlPlaneKind::kAltDrop, ControlPlaneKind::kNerd,
               ControlPlaneKind::kPce}));
  ctx.maybe_quick(spec);
  Runner runner(std::move(spec));
  runner.probe([](Experiment& experiment, const RunPoint& point, Record& record) {
    const auto s = experiment.summary();
    record.set_int("drops", s.miss_drops);
    switch (point.config.spec.kind) {
      case ControlPlaneKind::kAltDrop: {
        std::uint64_t overlay_routes = 0;
        for (const auto* router : experiment.internet().overlay()) {
          overlay_routes += router->route_count();
        }
        record.set_int("registered mappings",
                       experiment.internet().registry().size());
        record.set_int("miss events", s.miss_events);
        record.set_int("overlay routes", overlay_routes);
        break;
      }
      case ControlPlaneKind::kNerd:
        record.set_int("entries pushed",
                       experiment.internet().nerd()->stats().entries_pushed);
        break;
      default:
        break;
    }
  });
  const auto& result = ctx.run(runner);
  result
      .pivot("deagg factor", "control plane",
             {"registered mappings", "miss events", "drops", "overlay routes",
              "entries pushed"})
      .print(std::cout);
}

void series_dfz_deaggregation(bench::BenchContext& ctx) {
  if (!ctx.enabled("F1b")) return;
  std::cout << "\n-- F1b: de-aggregation in the DFZ — stub sites x factor, "
               "legacy BGP vs Loc/ID split --\n";
  const bool quick = ctx.quick();
  SweepSpec spec;
  spec.named("F1b")
      .base([quick](ExperimentConfig& config) {
        config.dfz.internet.tier1_count = 4;
        config.dfz.internet.transit_count = quick ? 6 : 10;
        config.dfz.internet.providers_per_stub = 2;
        config.dfz.internet.seed = 12;
        config.spec.seed = config.dfz.internet.seed;
      })
      .base(scenario::dfz::sharded(ctx.shards(), ctx.shard_workers()))
      .axis(scenario::dfz::stub_sites(
          quick ? std::vector<std::uint64_t>{30, 60}
                : std::vector<std::uint64_t>{150, 1000}))
      .axis(scenario::dfz::deaggregation({1, 4}))
      .axis(scenario::dfz::scenarios());
  Runner runner(std::move(spec));
  runner.execute(scenario::dfz::run_study);
  ctx.run(runner).table().print(std::cout);
}

void series_te_deaggregation_cost(bench::BenchContext& ctx) {
  if (!ctx.enabled("F1c")) return;
  std::cout << "\n-- F1c: the claim-(iii) TE knob priced — selective vs "
               "broadcast de-aggregation, per-announcement RIB/churn cost "
               "(Gao-Rexford roles + export maps) --\n";
  const bool quick = ctx.quick();
  SweepSpec spec;
  spec.named("F1c")
      .base([quick](ExperimentConfig& config) {
        config.dfz.internet.tier1_count = 4;
        config.dfz.internet.transit_count = quick ? 6 : 10;
        config.dfz.internet.providers_per_stub = 2;
        config.dfz.internet.seed = 12;
        config.spec.seed = config.dfz.internet.seed;
        config.dfz.scenario = routing::AddressingScenario::kLegacyBgp;
        config.dfz.deaggregation_factor = 1;
        config.dfz.policy.event.victim_stub = 0;
      })
      .base(scenario::dfz::sharded(ctx.shards(), ctx.shard_workers()))
      .base(scenario::dfz::roles_enabled())
      .axis(scenario::dfz::stub_sites(
          quick ? std::vector<std::uint64_t>{30, 60}
                : std::vector<std::uint64_t>{100, 400}))
      .axis(scenario::dfz::event_deagg(quick ? std::vector<std::uint64_t>{2, 8}
                                             : std::vector<std::uint64_t>{2, 8, 32}))
      .axis(scenario::dfz::policy_events(
          {routing::PolicyEvent::Kind::kBroadcastDeagg,
           routing::PolicyEvent::Kind::kSelectiveDeagg}));
  Runner runner(std::move(spec));
  runner.execute(scenario::dfz::run_policy_event);
  ctx.run(runner).table().print(std::cout);
}

}  // namespace
}  // namespace lispcp

int main(int argc, char** argv) {
  auto ctx = lispcp::bench::BenchContext("F1", lispcp::bench::parse_cli(argc, argv));
  lispcp::bench::print_header(
      "F1", "future work: prefix de-aggregation",
      "§3: TE study \"in the context of Latin America ... the world's "
      "largest IPv4 de-aggregation factor\"");
  lispcp::series_deaggregation(ctx);
  lispcp::series_dfz_deaggregation(ctx);
  lispcp::series_te_deaggregation_cost(ctx);
  lispcp::bench::print_footer(
      "Shape check: de-aggregation multiplies mapping-system state "
      "(registered mappings, overlay routes, NERD push volume) and drives "
      "up ALT's cache misses and drops at fixed capacity, while the PCE "
      "column stays zero — per-flow push distribution is insensitive to "
      "registration granularity.");
  ctx.finish();
  return 0;
}
