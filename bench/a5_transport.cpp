// A5 — ablation: how should the mapping travel between PCEs?
//
// The paper's Step 6 rides the mapping on the DNS reply itself (the port-P
// encapsulation): zero extra round trips, but it requires the PCE to sit in
// the DNS data path at *both* domains.  The standards-flavoured alternative
// is an explicit PCEP request/reply (RFC 5440 messages, src/pcep): the
// source PCE asks the destination PCE for the mapping after it sees the DNS
// answer — one PCE-to-PCE RTT later.  Three arms on identical workloads:
//
//   snooped port-P   (paper)      mapping ready before the DNS answer
//   PCEP on-demand   (A5)         mapping ready ~1 PCE RTT after the answer
//   reactive pull    (ALT queue)  mapping fetched by the ITR on first packet
//
// The gap between the arms is pure transport: everything else (topology,
// IRC engine, push machinery, workload seed) is identical.
#include <iostream>

#include "bench_util.hpp"

namespace lispcp {
namespace {

using scenario::Experiment;
using scenario::ExperimentConfig;
using topo::ControlPlaneKind;

enum class Arm { kSnoop, kPcepOnDemand, kReactivePull };

ExperimentConfig arm(Arm which) {
  ExperimentConfig config;
  config.spec = topo::InternetSpec::preset(which == Arm::kReactivePull
                                               ? ControlPlaneKind::kAltQueue
                                               : ControlPlaneKind::kPce);
  if (which == Arm::kPcepOnDemand) {
    config.spec.pce_snoop = false;
    config.spec.pce_on_demand = true;
  }
  config.spec.domains = 16;
  config.spec.hosts_per_domain = 2;
  config.spec.providers_per_domain = 2;
  config.spec.cache_capacity = 8;
  config.spec.mapping_ttl_seconds = 60;
  config.spec.seed = 8;
  config.traffic.sessions_per_second = 30;
  config.traffic.duration = sim::SimDuration::seconds(30);
  config.drain = sim::SimDuration::seconds(30);
  return config;
}

}  // namespace
}  // namespace lispcp

int main() {
  using lispcp::metrics::Table;
  lispcp::bench::print_header(
      "A5", "ablation: mapping transport between PCEs",
      "Step 6 port-P encapsulation vs explicit PCEP (RFC 5440) request/reply "
      "vs reactive pull");

  lispcp::Experiment snoop(lispcp::arm(lispcp::Arm::kSnoop));
  const auto s = snoop.run();
  lispcp::Experiment pcep(lispcp::arm(lispcp::Arm::kPcepOnDemand));
  const auto p = pcep.run();
  lispcp::Experiment pull(lispcp::arm(lispcp::Arm::kReactivePull));
  const auto r = pull.run();

  Table table({"metric", "snooped port-P", "PCEP on-demand", "reactive pull"});
  table.add_row({"sessions", Table::integer(s.sessions), Table::integer(p.sessions),
                 Table::integer(r.sessions)});
  table.add_row({"first-packet miss events", Table::integer(s.miss_events),
                 Table::integer(p.miss_events), Table::integer(r.miss_events)});
  table.add_row({"drops", Table::integer(s.miss_drops),
                 Table::integer(p.miss_drops), Table::integer(r.miss_drops)});
  table.add_row({"sessions w/ retransmission",
                 Table::integer(s.sessions_with_retransmission),
                 Table::integer(p.sessions_with_retransmission),
                 Table::integer(r.sessions_with_retransmission)});
  table.add_row({"T_setup mean (ms)", Table::num(s.t_setup_mean_ms),
                 Table::num(p.t_setup_mean_ms), Table::num(r.t_setup_mean_ms)});
  table.add_row({"T_setup p95 (ms)", Table::num(s.t_setup_p95_ms),
                 Table::num(p.t_setup_p95_ms), Table::num(r.t_setup_p95_ms)});
  table.add_row({"T_setup p99 (ms)", Table::num(s.t_setup_p99_ms),
                 Table::num(p.t_setup_p99_ms), Table::num(r.t_setup_p99_ms)});

  // PCEP-side accounting, summed over domains.
  std::uint64_t requests = 0, learned = 0, failures = 0;
  for (const auto& dom : pcep.internet().domains()) {
    requests += dom.pce->stats().pcep_requests;
    learned += dom.pce->stats().pcep_mappings_learned;
    failures += dom.pce->stats().pcep_failures;
  }
  table.add_row({"PCEP requests issued", "0", Table::integer(requests), "-"});
  table.add_row({"PCEP mappings learned", "0", Table::integer(learned), "-"});
  table.add_row({"PCEP failures", "0", Table::integer(failures), "-"});
  table.print(std::cout);

  lispcp::bench::print_footer(
      "Shape check: snooping pre-positions every mapping (0 miss events); "
      "PCEP on-demand closes most of the gap to reactive pull — the mapping "
      "arrives one PCE RTT after the DNS answer, so only flows whose first "
      "packet beats that RTT still miss; reactive pull pays the full mapping "
      "resolution on every cold flow.");
  return 0;
}
