// A5 — ablation: how should the mapping travel between PCEs?
//
// The paper's Step 6 rides the mapping on the DNS reply itself (the port-P
// encapsulation): zero extra round trips, but it requires the PCE to sit in
// the DNS data path at *both* domains.  The standards-flavoured alternative
// is an explicit PCEP request/reply (RFC 5440 messages, src/pcep): the
// source PCE asks the destination PCE for the mapping after it sees the DNS
// answer — one PCE-to-PCE RTT later.  Three arms on identical workloads:
//
//   snooped port-P   (paper)      mapping ready before the DNS answer
//   PCEP on-demand   (A5)         mapping ready ~1 PCE RTT after the answer
//   reactive pull    (ALT queue)  mapping fetched by the ITR on first packet
//
// The gap between the arms is pure transport: everything else (topology,
// IRC engine, push machinery, workload seed) is identical — one labelled
// transport axis on the canonical steady-state base.
#include <iostream>

#include "bench_util.hpp"

namespace lispcp {
namespace {

using scenario::Axis;
using scenario::Experiment;
using scenario::ExperimentConfig;
using scenario::Record;
using scenario::Runner;
using scenario::RunPoint;
using scenario::SweepSpec;
using topo::ControlPlaneKind;

void apply_plane(ExperimentConfig& config, ControlPlaneKind kind) {
  mapping::MappingSystemFactory::instance().apply_preset(kind, config.spec);
}

void series_transport(bench::BenchContext& ctx) {
  if (!ctx.enabled("A5a")) return;
  auto spec = SweepSpec::steady_state().named("A5a").axis(Axis::labeled(
      "transport",
      {{"snooped port-P",
        [](ExperimentConfig& config) {
          apply_plane(config, ControlPlaneKind::kPce);
        }},
       {"PCEP on-demand",
        [](ExperimentConfig& config) {
          apply_plane(config, ControlPlaneKind::kPce);
          config.spec.pce_snoop = false;
          config.spec.pce_on_demand = true;
        }},
       {"reactive pull", [](ExperimentConfig& config) {
          apply_plane(config, ControlPlaneKind::kAltQueue);
        }}}));
  ctx.maybe_quick(spec);
  Runner runner(std::move(spec));
  runner.probe([](Experiment& experiment, const RunPoint& point, Record& record) {
    const auto s = experiment.summary();
    record.set_int("sessions", s.sessions);
    record.set_int("first-packet miss events", s.miss_events);
    record.set_int("drops", s.miss_drops);
    record.set_int("sessions w/ retransmission", s.sessions_with_retransmission);
    record.set_real("T_setup mean (ms)", s.t_setup_mean_ms);
    record.set_real("T_setup p95 (ms)", s.t_setup_p95_ms);
    record.set_real("T_setup p99 (ms)", s.t_setup_p99_ms);
    // PCEP-side accounting, summed over domains.  Only the PCE arms run
    // PCEs at all; the pull arm's record simply omits the fields (the
    // snooped arm reports its structural zeros, as the paper table does).
    if (point.config.spec.kind == ControlPlaneKind::kPce) {
      std::uint64_t requests = 0, learned = 0, failures = 0;
      for (const auto& dom : experiment.internet().domains()) {
        requests += dom.pce->stats().pcep_requests;
        learned += dom.pce->stats().pcep_mappings_learned;
        failures += dom.pce->stats().pcep_failures;
      }
      record.set_int("PCEP requests issued", requests);
      record.set_int("PCEP mappings learned", learned);
      record.set_int("PCEP failures", failures);
    }
  });
  ctx.run(runner).table().print(std::cout);
}

}  // namespace
}  // namespace lispcp

int main(int argc, char** argv) {
  auto ctx = lispcp::bench::BenchContext("A5", lispcp::bench::parse_cli(argc, argv));
  lispcp::bench::print_header(
      "A5", "ablation: mapping transport between PCEs",
      "Step 6 port-P encapsulation vs explicit PCEP (RFC 5440) request/reply "
      "vs reactive pull");
  lispcp::series_transport(ctx);
  lispcp::bench::print_footer(
      "Shape check: snooping pre-positions every mapping (0 miss events); "
      "PCEP on-demand closes most of the gap to reactive pull — the mapping "
      "arrives one PCE RTT after the DNS answer, so only flows whose first "
      "packet beats that RTT still miss; reactive pull pays the full mapping "
      "resolution on every cold flow.");
  ctx.finish();
  return 0;
}
