// A1 — ablation of DESIGN.md decision 3: Step 7b pushes the mapping tuple
// to *all* ITRs (paper) vs only the ITR the flow currently exits through.
//
// The paper's rationale: "PCES can carry out local TE actions, and move part
// of its internal traffic, without caring whether a mapping will be in place
// in the relevant ITRs after the TE optimization."  We reproduce exactly
// that scenario: mid-run, domain 0 moves its internal egress from ITR0 to
// ITR1 (an IGP change).  With push-to-all the mapping is already there; with
// push-to-one the moved flows miss and drop.
#include <iostream>

#include "bench_util.hpp"

namespace lispcp {
namespace {

using scenario::Experiment;
using scenario::ExperimentConfig;
using topo::ControlPlaneKind;

ExperimentConfig config_with(bool push_all) {
  ExperimentConfig config;
  config.spec = topo::InternetSpec::preset(ControlPlaneKind::kPce);
  config.spec.domains = 16;
  config.spec.hosts_per_domain = 8;  // 960 (ES, ED) pairs: new flows all run long
  config.spec.providers_per_domain = 2;
  config.spec.pce_push_all_itrs = push_all;
  // Isolation note: for flows established *before* the TE move, the ETR
  // reverse multicast (decision 5) has already replicated tuples to every
  // border, so the push scope is irrelevant to them — itself a finding,
  // recorded in EXPERIMENTS.md.  The discriminating population is flows
  // whose *first* packet leaves after the move: low Zipf skew keeps new
  // (ES, ED) pairs appearing throughout the run.
  config.spec.seed = 6;
  config.traffic.sessions_per_second = 40;
  config.traffic.duration = sim::SimDuration::seconds(40);
  config.traffic.zipf_alpha = 0.3;  // new destination pairs keep appearing
  config.drain = sim::SimDuration::seconds(40);
  return config;
}

struct Outcome {
  std::uint64_t drops = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t push_messages = 0;
  std::uint64_t established = 0;
  std::uint64_t sessions = 0;
};

Outcome run_arm(bool push_all) {
  Experiment experiment(config_with(push_all));
  auto& internet = experiment.internet();
  auto& dom0 = internet.domain(0);

  // The TE move at t = 20 s: internal egress flips from xtr0 to xtr1.
  // (Modelled as the IGP default-route change the paper alludes to.)
  internet.sim().schedule(sim::SimDuration::seconds(20), [&internet, &dom0] {
    auto& net = internet.network();
    const auto r = dom0.internal_router->id();
    net.add_route(r, net::Ipv4Prefix(), dom0.xtrs[1]->id());
  });

  const auto summary = experiment.run();
  Outcome out;
  out.drops = summary.miss_drops;
  out.retransmissions = summary.syn_retransmissions;
  out.established = summary.established;
  out.sessions = summary.sessions;
  for (auto& dom : internet.domains()) {
    out.push_messages += dom.pce->stats().tuples_pushed;
  }
  return out;
}

}  // namespace
}  // namespace lispcp

int main() {
  lispcp::bench::print_header(
      "A1", "ablation: Step-7b push scope (all ITRs vs one)",
      "DESIGN.md decision 3; paper: \"the advantage of pushing the mapping "
      "to all ITRs\"");

  const auto all = lispcp::run_arm(/*push_all=*/true);
  const auto one = lispcp::run_arm(/*push_all=*/false);

  lispcp::metrics::Table table(
      {"push scope", "sessions", "push messages", "drops after TE move",
       "SYN retransmissions", "established"});
  table.add_row({"all ITRs (paper)", lispcp::metrics::Table::integer(all.sessions),
                 lispcp::metrics::Table::integer(all.push_messages),
                 lispcp::metrics::Table::integer(all.drops),
                 lispcp::metrics::Table::integer(all.retransmissions),
                 lispcp::metrics::Table::integer(all.established)});
  table.add_row({"one ITR", lispcp::metrics::Table::integer(one.sessions),
                 lispcp::metrics::Table::integer(one.push_messages),
                 lispcp::metrics::Table::integer(one.drops),
                 lispcp::metrics::Table::integer(one.retransmissions),
                 lispcp::metrics::Table::integer(one.established)});
  table.print(std::cout);

  lispcp::bench::print_footer(
      "Shape check: push-to-all costs ~2x the push messages and survives "
      "the internal TE move (every ITR already holds every tuple); with "
      "push-to-one, each flow born after the move has its first packets "
      "exit through the un-provisioned ITR and die there — drops, "
      "retransmission storms and failed connections, exactly the paper\'s "
      "rationale for Step 7b.");
  return 0;
}
