// A1 — ablation of DESIGN.md decision 3: Step 7b pushes the mapping tuple
// to *all* ITRs (paper) vs only the ITR the flow currently exits through.
//
// The paper's rationale: "PCES can carry out local TE actions, and move part
// of its internal traffic, without caring whether a mapping will be in place
// in the relevant ITRs after the TE optimization."  We reproduce exactly
// that scenario: mid-run, domain 0 moves its internal egress from ITR0 to
// ITR1 (an IGP change).  With push-to-all the mapping is already there; with
// push-to-one the moved flows miss and drop.
//
// Declarative sweep: one labelled push-scope axis; the TE move is a
// stateful probe scheduling the IGP change at half the arrival window.
#include <iostream>

#include "bench_util.hpp"

namespace lispcp {
namespace {

using scenario::Axis;
using scenario::Experiment;
using scenario::ExperimentConfig;
using scenario::Probe;
using scenario::Record;
using scenario::Runner;
using scenario::RunPoint;
using scenario::SweepSpec;
using topo::ControlPlaneKind;

SweepSpec a1_base() {
  SweepSpec spec;
  spec.base([](ExperimentConfig& config) {
    mapping::MappingSystemFactory::instance().apply_preset(
        ControlPlaneKind::kPce, config.spec);
    config.spec.domains = 16;
    config.spec.hosts_per_domain = 8;  // 960 (ES, ED) pairs: new flows all run long
    config.spec.providers_per_domain = 2;
    // Isolation note: for flows established *before* the TE move, the ETR
    // reverse multicast (decision 5) has already replicated tuples to every
    // border, so the push scope is irrelevant to them — itself a finding,
    // recorded in EXPERIMENTS.md.  The discriminating population is flows
    // whose *first* packet leaves after the move: low Zipf skew keeps new
    // (ES, ED) pairs appearing throughout the run.
    config.spec.seed = 6;
    config.traffic.sessions_per_second = 40;
    config.traffic.duration = sim::SimDuration::seconds(40);
    config.traffic.zipf_alpha = 0.3;  // new destination pairs keep appearing
    config.drain = sim::SimDuration::seconds(40);
  });
  return spec;
}

/// Schedules the TE move at half the arrival window: internal egress flips
/// from xtr0 to xtr1.  (Modelled as the IGP default-route change the paper
/// alludes to.)  Half-window keeps the move meaningful under --quick.
class TeMoveProbe final : public Probe {
 public:
  void on_configured(Experiment& experiment, const RunPoint& point) override {
    auto& internet = experiment.internet();
    auto& dom0 = internet.domain(0);
    internet.sim().schedule(point.config.traffic.duration / 2,
                            [&internet, &dom0] {
                              auto& net = internet.network();
                              const auto r = dom0.internal_router->id();
                              net.add_route(r, net::Ipv4Prefix(),
                                            dom0.xtrs[1]->id());
                            });
  }

  void on_finished(Experiment& experiment, const RunPoint&,
                   Record& record) override {
    const auto s = experiment.summary();
    std::uint64_t pushes = 0;
    for (auto& dom : experiment.internet().domains()) {
      pushes += dom.pce->stats().tuples_pushed;
    }
    record.set_int("sessions", s.sessions);
    record.set_int("push messages", pushes);
    record.set_int("drops after TE move", s.miss_drops);
    record.set_int("SYN retransmissions", s.syn_retransmissions);
    record.set_int("established", s.established);
  }
};

void series_push_scope(bench::BenchContext& ctx) {
  if (!ctx.enabled("A1a")) return;
  auto spec = a1_base().named("A1a").axis(Axis::labeled(
      "push scope",
      {{"all ITRs (paper)",
        [](ExperimentConfig& config) { config.spec.pce_push_all_itrs = true; }},
       {"one ITR", [](ExperimentConfig& config) {
          config.spec.pce_push_all_itrs = false;
        }}}));
  ctx.maybe_quick(spec);
  Runner runner(std::move(spec));
  runner.probe_factory([] { return std::make_unique<TeMoveProbe>(); });
  ctx.run(runner).table().print(std::cout);
}

}  // namespace
}  // namespace lispcp

int main(int argc, char** argv) {
  auto ctx = lispcp::bench::BenchContext("A1", lispcp::bench::parse_cli(argc, argv));
  lispcp::bench::print_header(
      "A1", "ablation: Step-7b push scope (all ITRs vs one)",
      "DESIGN.md decision 3; paper: \"the advantage of pushing the mapping "
      "to all ITRs\"");
  lispcp::series_push_scope(ctx);
  lispcp::bench::print_footer(
      "Shape check: push-to-all costs ~2x the push messages and survives "
      "the internal TE move (every ITR already holds every tuple); with "
      "push-to-one, each flow born after the move has its first packets "
      "exit through the un-provisioned ITR and die there — drops, "
      "retransmission storms and failed connections, exactly the paper\'s "
      "rationale for Step 7b.");
  ctx.finish();
  return 0;
}
