// bench_util.hpp — shared helpers for the experiment harness binaries.
//
// Each bench regenerates one table/figure from DESIGN.md's per-experiment
// index and prints it via metrics::Table so EXPERIMENTS.md can quote the
// output verbatim.
#pragma once

#include <iostream>
#include <string>

#include "mapping/mapping_system.hpp"
#include "metrics/table.hpp"
#include "scenario/experiment.hpp"

namespace lispcp::bench {

inline void print_header(const std::string& id, const std::string& title,
                         const std::string& claim) {
  std::cout << "\n=== " << id << ": " << title << " ===\n";
  if (!claim.empty()) std::cout << "Paper artifact: " << claim << "\n";
  std::cout << "\n";
}

inline void print_footer(const std::string& note) {
  if (!note.empty()) std::cout << "\n" << note << "\n";
  std::cout << std::endl;
}

/// The control planes compared throughout the evaluation: whatever the
/// mapping-system registry marks as comparable.  A newly registered system
/// shows up in every comparative bench without touching it.
inline std::vector<topo::ControlPlaneKind> compared_control_planes() {
  return mapping::MappingSystemFactory::instance().comparison_kinds();
}

}  // namespace lispcp::bench
