// bench_util.hpp — shared helpers for the experiment harness binaries.
//
// Each bench regenerates one table/figure from DESIGN.md's per-experiment
// index and prints it via metrics::Table so EXPERIMENTS.md can quote the
// output verbatim.  The comparative benches declare scenario::SweepSpecs and
// run them through this file's BenchContext, which owns the shared CLI:
//
//   --jobs N         run sweep points on N threads (default 1; 0 rejected)
//   --shards K       BGP convergence-engine shards for the DFZ benches
//                    (default 1; records are byte-identical for any K)
//   --json <path>    archive every executed ResultSet as JSON (the CI perf
//                    trajectory artifact, BENCH_<id>.json)
//   --csv <path>     same, as CSV sections
//   --filter <str>   run only series whose name contains <str> (matched
//                    case-insensitively), and only points whose series
//                    label contains it when it names a registered control
//                    plane
//   --quick          reduced sweep (short arrival window) for smoke runs
//   --full-replay    DFZ churn plans rebuild the world per event (parity
//                    baseline for the incremental engine; same records)
//   --list           enumerate the bench's series names (the --filter
//                    vocabulary) without running anything, then exit 0
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "mapping/mapping_system.hpp"
#include "metrics/table.hpp"
#include "scenario/sweep.hpp"

namespace lispcp::bench {

/// ASCII lower-casing: --filter matches series, plane and point names
/// case-insensitively ("--filter PCE" and "--filter pce" are equivalent).
inline std::string ascii_lower(std::string s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return s;
}

inline void print_header(const std::string& id, const std::string& title,
                         const std::string& claim) {
  std::cout << "\n=== " << id << ": " << title << " ===\n";
  if (!claim.empty()) std::cout << "Paper artifact: " << claim << "\n";
  std::cout << "\n";
}

inline void print_footer(const std::string& note) {
  if (!note.empty()) std::cout << "\n" << note << "\n";
  std::cout << std::endl;
}

struct BenchOptions {
  std::size_t jobs = 1;
  /// BGP convergence-engine shards, plumbed into the DFZ studies' BgpConfig
  /// by the f benches.  Never changes records — only wall-clock.
  std::size_t shards = 1;
  std::string json_path;
  std::string csv_path;
  /// Wall-clock sidecar (TIMING_<id>.json) for the CI perf ratchet.  A
  /// separate file — never part of BENCH_<id>.json — so the records stay
  /// byte-comparable across machines and runs.
  std::string timing_path;
  std::string filter;
  bool quick = false;
  /// DFZ churn plans re-measure every event against a freshly rebuilt
  /// world instead of the incremental long-lived fabric (the parity
  /// baseline; records are byte-identical for state-restoring plans).
  bool full_replay = false;
  /// Enumerate series names instead of running (the --filter vocabulary).
  bool list = false;
};

inline BenchOptions parse_cli(int argc, char** argv) {
  BenchOptions options;
  auto value = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc) {
      std::cerr << argv[0] << ": " << flag << " needs a value\n";
      std::exit(2);
    }
    return argv[++i];
  };
  auto positive = [&](int& i, const char* flag) -> std::size_t {
    const std::string raw = value(i, flag);
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(raw.c_str(), &end, 10);
    // A silent clamp here used to hide typos like "--jobs 0"; reject
    // anything that is not a plain positive decimal ("-1" would wrap,
    // "3x" would truncate), and absurd counts before they hit a reserve().
    if (raw.empty() || raw[0] == '-' || end == raw.c_str() || *end != '\0' ||
        parsed == 0 || parsed > 1'000'000) {
      std::cerr << argv[0] << ": " << flag << " needs a positive integer, got '"
                << raw << "'\n";
      std::exit(2);
    }
    return static_cast<std::size_t>(parsed);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs") {
      options.jobs = positive(i, "--jobs");
    } else if (arg == "--shards") {
      options.shards = positive(i, "--shards");
    } else if (arg == "--json") {
      options.json_path = value(i, "--json");
    } else if (arg == "--csv") {
      options.csv_path = value(i, "--csv");
    } else if (arg == "--timing") {
      options.timing_path = value(i, "--timing");
    } else if (arg == "--filter") {
      options.filter = value(i, "--filter");
    } else if (arg == "--quick") {
      options.quick = true;
    } else if (arg == "--full-replay") {
      options.full_replay = true;
    } else if (arg == "--list") {
      options.list = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0]
                << " [--jobs N] [--shards K] [--json path] [--csv path]"
                   " [--timing path] [--filter series] [--quick]"
                   " [--full-replay] [--list]\n";
      std::exit(0);
    } else {
      std::cerr << argv[0] << ": unknown flag '" << arg << "'\n";
      std::exit(2);
    }
  }
  return options;
}

/// Drives a bench's series: applies the CLI to each declared sweep, prints
/// the rendered tables, and flushes the machine-readable sinks at the end.
class BenchContext {
 public:
  BenchContext(std::string bench_id, BenchOptions options)
      : bench_id_(std::move(bench_id)),
        options_(std::move(options)),
        started_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] const BenchOptions& options() const noexcept { return options_; }
  [[nodiscard]] bool quick() const noexcept { return options_.quick; }
  [[nodiscard]] bool full_replay() const noexcept {
    return options_.full_replay;
  }
  [[nodiscard]] std::size_t shards() const noexcept { return options_.shards; }

  /// Per-point convergence-engine worker budget: --jobs already
  /// parallelises points, so divide the host's cores across them instead
  /// of letting every point spawn min(shards, cores) threads (--jobs N x
  /// --shards K would oversubscribe multiplicatively).  0 = engine
  /// default (all cores), used when points run serially.
  [[nodiscard]] std::size_t shard_workers() const {
    if (options_.jobs <= 1) return 0;
    const auto hw = static_cast<std::size_t>(
        std::max(1u, std::thread::hardware_concurrency()));
    return std::max<std::size_t>(1, hw / options_.jobs);
  }

  /// Whether a series should run under --filter.  A filter naming (part
  /// of) a control plane ("pce", "lisp-ms") still runs every series —
  /// point filtering narrows within them instead.  Under --list nothing
  /// runs: the name is recorded for finish()'s listing instead.
  [[nodiscard]] bool enabled(const std::string& series_name) const {
    if (options_.list) {
      listed_.push_back(series_name);
      return false;
    }
    if (options_.filter.empty()) return true;
    if (plane_filter()) return true;
    return ascii_lower(series_name).find(ascii_lower(options_.filter)) !=
           std::string::npos;
  }

  /// Executes a declared sweep with the CLI's jobs/filter applied (the
  /// returned reference stays valid for the context's lifetime).  When
  /// --quick is set, the arrival window and drain shrink first.  A filter
  /// that matches no point is reported on stderr instead of silently
  /// producing an empty table/artifact.
  [[nodiscard]] const scenario::ResultSet& run(scenario::Runner& runner) {
    scenario::RunOptions run_options;
    run_options.jobs = options_.jobs;
    if (plane_filter()) run_options.filter = options_.filter;
    results_.push_back(runner.run(run_options));
    if (results_.back().size() == 0 && !options_.filter.empty()) {
      std::cerr << "warning: --filter '" << options_.filter
                << "' matched no points in series " << runner.spec().name()
                << "\n";
    }
    return results_.back();
  }

  /// The canonical --quick reduction: same topology and seeds, a sixth of
  /// the arrival window.
  static void apply_quick(scenario::ExperimentConfig& config) {
    config.traffic.duration = sim::SimDuration::seconds(5);
    config.drain = sim::SimDuration::seconds(10);
  }

  /// Shrinks the sweep's base when --quick is set; call while declaring.
  void maybe_quick(scenario::SweepSpec& spec) const {
    if (options_.quick) spec.base(apply_quick);
  }

  /// Writes the collected ResultSets to the --json/--csv sinks.  Under
  /// --list, prints the recorded series names instead and writes nothing.
  void finish() const {
    if (options_.list) {
      std::cout << bench_id_ << " series (use with --filter):\n";
      for (const std::string& name : listed_) std::cout << "  " << name << "\n";
      std::cout.flush();
      return;
    }
    if (!options_.filter.empty()) {
      std::size_t total_points = 0;
      for (const auto& result : results_) total_points += result.size();
      if (total_points == 0) {
        std::cerr << "warning: --filter '" << options_.filter
                  << "' selected no series and no points; nothing ran "
                     "(series names and control-plane names match by "
                     "substring)\n";
      }
    }
    if (!options_.json_path.empty()) {
      std::ofstream os(options_.json_path);
      if (!os) {
        std::cerr << "cannot open " << options_.json_path << "\n";
        std::exit(1);
      }
      os << "{\"bench\": \"" << bench_id_ << "\", \"series\": [";
      for (std::size_t i = 0; i < results_.size(); ++i) {
        if (i > 0) os << ",";
        os << "\n";
        results_[i].to_json(os);
      }
      os << "]}\n";
    }
    if (!options_.csv_path.empty()) {
      std::ofstream os(options_.csv_path);
      if (!os) {
        std::cerr << "cannot open " << options_.csv_path << "\n";
        std::exit(1);
      }
      for (const auto& result : results_) {
        os << "# " << result.name() << "\n";
        result.to_csv(os);
        os << "\n";
      }
    }
    if (!options_.timing_path.empty()) {
      std::ofstream os(options_.timing_path);
      if (!os) {
        std::cerr << "cannot open " << options_.timing_path << "\n";
        std::exit(1);
      }
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        started_)
              .count();
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.3f", elapsed);
      os << "{\"bench\": \"" << bench_id_ << "\", \"jobs\": " << options_.jobs
         << ", \"shards\": " << options_.shards
         << ", \"quick\": " << (options_.quick ? "true" : "false")
         << ", \"elapsed_s\": " << buf << "}\n";
    }
  }

 private:
  /// True when --filter looks like a control plane — a substring of a
  /// registered name ("pce", "lisp-ms") — so it should narrow points
  /// rather than select series.
  [[nodiscard]] bool plane_filter() const {
    auto& factory = mapping::MappingSystemFactory::instance();
    const std::string needle = ascii_lower(options_.filter);
    if (factory.find_kind(needle).has_value()) return true;
    for (const auto kind : factory.kinds()) {
      if (ascii_lower(topo::to_string(kind)).find(needle) !=
          std::string::npos) {
        return true;
      }
    }
    return false;
  }

  std::string bench_id_;
  BenchOptions options_;
  std::chrono::steady_clock::time_point started_;
  /// Deque: run() hands out references that must survive later push_backs.
  std::deque<scenario::ResultSet> results_;
  /// Series names seen by enabled() under --list (mutable: recording a
  /// name is not an observable state change for the run itself).
  mutable std::vector<std::string> listed_;
};

}  // namespace lispcp::bench
