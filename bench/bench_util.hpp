// bench_util.hpp — shared helpers for the experiment harness binaries.
//
// Each bench regenerates one table/figure from DESIGN.md's per-experiment
// index and prints it via metrics::Table so EXPERIMENTS.md can quote the
// output verbatim.
#pragma once

#include <iostream>
#include <string>

#include "metrics/table.hpp"
#include "scenario/experiment.hpp"

namespace lispcp::bench {

inline void print_header(const std::string& id, const std::string& title,
                         const std::string& claim) {
  std::cout << "\n=== " << id << ": " << title << " ===\n";
  if (!claim.empty()) std::cout << "Paper artifact: " << claim << "\n";
  std::cout << "\n";
}

inline void print_footer(const std::string& note) {
  if (!note.empty()) std::cout << "\n" << note << "\n";
  std::cout << std::endl;
}

/// The five control planes compared throughout the evaluation.
inline const std::vector<topo::ControlPlaneKind>& compared_control_planes() {
  static const std::vector<topo::ControlPlaneKind> kinds = {
      topo::ControlPlaneKind::kAltDrop,  topo::ControlPlaneKind::kAltQueue,
      topo::ControlPlaneKind::kAltForward, topo::ControlPlaneKind::kCons,
      topo::ControlPlaneKind::kNerd,     topo::ControlPlaneKind::kPce,
  };
  return kinds;
}

}  // namespace lispcp::bench
